package mpn

import (
	"errors"
	"testing"
	"time"
)

// The public failure-semantics surface: fail-fast admission sheds with
// ErrOverloaded and counts it in ShardStats, post-Close operations
// return ErrServerClosed, and both sentinels compose with errors.Is.
func TestAdmissionAndCloseErrors(t *testing.T) {
	srv, err := NewServer(testPOIs(400, 3),
		WithShards(1), WithQueueDepth(1),
		WithAdmissionWait(-1), // fail-fast: shed instead of waiting
		WithCloseTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	users := []Point{Pt(0.30, 0.30), Pt(0.32, 0.31)}
	g, err := srv.Register(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Register more groups than the depth-1 queue can hold and submit
	// from all of them back to back: with one worker busy at most one
	// submission can queue, so the burst must shed at least once.
	groups := []*Group{g}
	for i := 0; i < 8; i++ {
		off := 0.05 * float64(i+1)
		g2, err := srv.Register([]Point{Pt(0.3+off, 0.3), Pt(0.31+off, 0.31)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, g2)
	}
	sawOverload := false
	for round := 0; round < 50 && !sawOverload; round++ {
		for _, g := range groups {
			err := g.SubmitUpdate([]Point{Pt(0.31, 0.31), Pt(0.33, 0.32)}, nil)
			if errors.Is(err, ErrOverloaded) {
				sawOverload = true
			} else if err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
	}
	if !sawOverload {
		t.Fatal("fail-fast admission never shed a submission")
	}
	var shed uint64
	for _, st := range srv.ShardStats() {
		shed += st.Shed
	}
	if shed == 0 {
		t.Fatal("shed submission not counted in ShardStats")
	}

	srv.Close()
	err = g.SubmitUpdate(users, nil)
	if !errors.Is(err, ErrServerClosed) {
		t.Fatalf("post-Close submit: %v", err)
	}
}
