// This file regenerates every figure of the paper's evaluation as Go
// benchmarks (one per figure, at the reduced Bench scale; run cmd/mpnbench
// for the full tables) plus the ablation benchmarks called out in
// DESIGN.md. Each figure benchmark reports the headline series values via
// b.ReportMetric so `go test -bench` output shows the paper's comparison
// directly:
//
//	Circle-upd/k, Tile-upd/k, TileD-upd/k   update frequency per method
//	...-pkt/k                               packets per 1k timestamps
//	...-cpu-ms                              CPU ms per update
package mpn

import (
	"math/rand"
	"testing"

	"mpn/internal/core"
	"mpn/internal/experiments"
)

// benchSuite is built once and shared across figure benchmarks.
var benchSuiteCache *experiments.Suite

func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	if benchSuiteCache == nil {
		s, err := experiments.NewSuite(experiments.Bench)
		if err != nil {
			b.Fatal(err)
		}
		// Trim sweeps to the ends of each range: benchmarks check shape,
		// cmd/mpnbench prints the full grid.
		s.Params.GroupSizes = []int{2, 6}
		s.Params.DataFracs = []float64{0.25, 1.0}
		s.Params.SpeedFracs = []float64{0.25, 1.0}
		s.Params.Buffers = []int{10, 100}
		benchSuiteCache = s
	}
	return benchSuiteCache
}

// reportFigure pushes the last row of the first sub-figure (the paper's
// headline comparison at the largest x) into the benchmark metrics.
func reportFigure(b *testing.B, figs []experiments.Figure, unit string) {
	b.Helper()
	if len(figs) == 0 || len(figs[0].Rows) == 0 {
		b.Fatal("empty figure")
	}
	row := figs[0].Rows[len(figs[0].Rows)-1]
	for _, s := range figs[0].Series {
		b.ReportMetric(row.Get(s), s+"-"+unit)
	}
}

func benchFigure(b *testing.B, gen func() ([]experiments.Figure, error), unit string) {
	var figs []experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		figs, err = gen()
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, figs, unit)
}

func BenchmarkFig13GroupSize(b *testing.B) {
	s := benchSuite(b)
	benchFigure(b, s.Fig13, "upd/k")
}

func BenchmarkFig14DataSize(b *testing.B) {
	s := benchSuite(b)
	benchFigure(b, s.Fig14, "upd/k")
}

func BenchmarkFig15Speed(b *testing.B) {
	s := benchSuite(b)
	benchFigure(b, s.Fig15, "upd/k")
}

func BenchmarkFig16Buffer(b *testing.B) {
	s := benchSuite(b)
	benchFigure(b, s.Fig16, "cpu-ms")
}

func BenchmarkFig17SumGroupSize(b *testing.B) {
	s := benchSuite(b)
	benchFigure(b, s.Fig17, "upd/k")
}

func BenchmarkFig18SumDataSize(b *testing.B) {
	s := benchSuite(b)
	benchFigure(b, s.Fig18, "upd/k")
}

func BenchmarkFig19SumBuffer(b *testing.B) {
	s := benchSuite(b)
	benchFigure(b, s.Fig19, "cpu-ms")
}

// --- ablation benchmarks ---------------------------------------------------
//
// These isolate one safe-region computation (no trajectory replay) and
// toggle a single design choice, quantifying the optimizations the paper
// motivates: GT-Verify vs IT-Verify, Theorem 3 index pruning, the
// directed ordering, the split level L, and the tile limit α.

func ablationPlanner(b *testing.B, n int, mod func(*core.Options)) (*core.Planner, []Point) {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	pois := make([]Point, n)
	for i := range pois {
		pois[i] = Pt(rng.Float64(), rng.Float64())
	}
	opts := core.DefaultOptions()
	opts.TileLimit = 10
	if mod != nil {
		mod(&opts)
	}
	pl, err := core.NewPlanner(pois, opts)
	if err != nil {
		b.Fatal(err)
	}
	users := []Point{Pt(0.48, 0.5), Pt(0.52, 0.49), Pt(0.5, 0.53)}
	return pl, users
}

func benchTilePlan(b *testing.B, n int, mod func(*core.Options)) {
	pl, users := ablationPlanner(b, n, mod)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.TileMSR(users, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationVerify(b *testing.B) {
	b.Run("GT-Verify", func(b *testing.B) {
		benchTilePlan(b, 2000, func(o *core.Options) { o.GroupVerify = true })
	})
	b.Run("IT-Verify", func(b *testing.B) {
		benchTilePlan(b, 2000, func(o *core.Options) { o.GroupVerify = false })
	})
}

func BenchmarkAblationPruning(b *testing.B) {
	b.Run("pruning-on", func(b *testing.B) {
		benchTilePlan(b, 8000, func(o *core.Options) { o.IndexPruning = true })
	})
	b.Run("pruning-off", func(b *testing.B) {
		benchTilePlan(b, 8000, func(o *core.Options) { o.IndexPruning = false })
	})
}

func BenchmarkAblationOrdering(b *testing.B) {
	b.Run("undirected", func(b *testing.B) {
		benchTilePlan(b, 8000, nil)
	})
	b.Run("directed", func(b *testing.B) {
		pl, users := ablationPlanner(b, 8000, func(o *core.Options) { o.Directed = true })
		dirs := []core.Direction{{Angle: 0.3}, {Angle: 0.4}, {Angle: 0.2}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pl.TileMSR(users, dirs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationSplitLevel(b *testing.B) {
	for _, l := range []int{0, 1, 2, 3} {
		level := l
		b.Run(string(rune('L'))+string(rune('0'+level)), func(b *testing.B) {
			benchTilePlan(b, 8000, func(o *core.Options) { o.SplitLevel = level })
		})
	}
}

func BenchmarkAblationTileLimit(b *testing.B) {
	for _, a := range []int{10, 20, 30, 40} {
		alpha := a
		name := "alpha" + string(rune('0'+alpha/10)) + "0"
		b.Run(name, func(b *testing.B) {
			benchTilePlan(b, 8000, func(o *core.Options) { o.TileLimit = alpha })
		})
	}
}

func BenchmarkAblationBuffering(b *testing.B) {
	b.Run("unbuffered", func(b *testing.B) {
		benchTilePlan(b, 8000, nil)
	})
	b.Run("buffered-b100", func(b *testing.B) {
		benchTilePlan(b, 8000, func(o *core.Options) { o.Buffer = 100 })
	})
}

// benchServer builds a default server over paper-scale n with a fixed
// random POI set.
func benchServer(b *testing.B) (*Server, []Point) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	pois := make([]Point, 21287)
	for i := range pois {
		pois[i] = Pt(rng.Float64(), rng.Float64())
	}
	server, err := NewServer(pois)
	if err != nil {
		b.Fatal(err)
	}
	users := []Point{Pt(0.5, 0.5), Pt(0.51, 0.52), Pt(0.49, 0.53)}
	return server, users
}

// BenchmarkPublicAPIPlan measures the end-user Plan call with the default
// (directed, buffered) configuration at paper-scale n.
func BenchmarkPublicAPIPlan(b *testing.B) {
	server, users := benchServer(b)
	defer server.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := server.Plan(users, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteadyStateUpdate measures the engine's synchronous
// recomputation path as a long-lived group sees it: one registered group,
// no subscribers, repeated Group.Update calls with slightly jittered
// locations. This is the hot loop whose steady-state allocation rate the
// workspace reuse drives to ~zero.
func BenchmarkSteadyStateUpdate(b *testing.B) {
	server, users := benchServer(b)
	defer server.Close()
	group, err := server.Register(users, nil)
	if err != nil {
		b.Fatal(err)
	}
	locs := make([]Point, len(users))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jitter := 1e-5 * float64(i%7)
		for j, u := range users {
			locs[j] = Pt(u.X+jitter, u.Y-jitter)
		}
		if err := group.Update(locs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteadyStateUpdateIncremental is BenchmarkSteadyStateUpdate on
// a WithIncremental server: the identical jittered report stream leaves
// every member inside her retained region, so each update pays only the
// result-set recomputation and the containment re-verification instead
// of regrowing all regions — the paper's claim that most reports should
// cost next to nothing, measured end to end.
func BenchmarkSteadyStateUpdateIncremental(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pois := make([]Point, 21287)
	for i := range pois {
		pois[i] = Pt(rng.Float64(), rng.Float64())
	}
	server, err := NewServer(pois, WithIncremental())
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	users := []Point{Pt(0.5, 0.5), Pt(0.51, 0.52), Pt(0.49, 0.53)}
	group, err := server.Register(users, nil)
	if err != nil {
		b.Fatal(err)
	}
	locs := make([]Point, len(users))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jitter := 1e-5 * float64(i%7)
		for j, u := range users {
			locs[j] = Pt(u.X+jitter, u.Y-jitter)
		}
		if err := group.Update(locs, nil); err != nil {
			b.Fatal(err)
		}
	}
}
