package mpn

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestWithSharedGNNCacheDifferential: a server with the shared GNN
// cache must produce byte-identical meeting points and regions to an
// uncached server over the same co-located multi-group workload, and
// its cache must report cross-group hits.
func TestWithSharedGNNCacheDifferential(t *testing.T) {
	pois := testPOIs(3000, 7)
	build := func(opts ...Option) *Server {
		s, err := NewServer(pois, append([]Option{
			WithTileLimit(5), WithBuffer(10), WithIncremental(),
		}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cached := build(WithSharedGNNCache(4 << 20))
	defer cached.Close()
	plain := build()
	defer plain.Close()

	if _, ok := plain.GNNCacheStats(); ok {
		t.Fatal("uncached server reports cache stats")
	}

	rng := rand.New(rand.NewSource(3))
	const G = 6
	users := make([][]Point, G)
	cg := make([]*Group, G)
	pg := make([]*Group, G)
	for g := 0; g < G; g++ {
		users[g] = []Point{
			Pt(0.4+0.001*float64(g), 0.4),
			Pt(0.401, 0.399+0.001*float64(g)),
		}
		var err error
		if cg[g], err = cached.Register(users[g], nil); err != nil {
			t.Fatal(err)
		}
		if pg[g], err = plain.Register(users[g], nil); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; step < 20; step++ {
		for g := 0; g < G; g++ {
			for i := range users[g] {
				users[g][i] = Pt(users[g][i].X+1e-4*(rng.Float64()-0.5), users[g][i].Y+1e-4*(rng.Float64()-0.5))
			}
			if err := cg[g].Update(users[g], nil); err != nil {
				t.Fatal(err)
			}
			if err := pg[g].Update(users[g], nil); err != nil {
				t.Fatal(err)
			}
			if cg[g].MeetingPoint() != pg[g].MeetingPoint() {
				t.Fatalf("step %d group %d: meeting points diverged", step, g)
			}
			if !reflect.DeepEqual(cg[g].Regions(), pg[g].Regions()) {
				t.Fatalf("step %d group %d: regions diverged", step, g)
			}
		}
	}
	st, ok := cached.GNNCacheStats()
	if !ok {
		t.Fatal("cached server lost its cache")
	}
	if st.Hits == 0 {
		t.Fatalf("no cross-group hits on a co-located workload: %+v", st)
	}
}

// TestWithSharedGNNCacheValidation: a non-positive budget is rejected.
func TestWithSharedGNNCacheValidation(t *testing.T) {
	if _, err := NewServer(testPOIs(50, 1), WithSharedGNNCache(0)); err == nil {
		t.Fatal("zero cache budget accepted")
	}
	if _, err := NewServer(testPOIs(50, 1), WithIncrementalCostRatio(-1)); err != nil {
		t.Fatalf("negative cost ratio (heuristic off) rejected: %v", err)
	}
}
