package mpn

import (
	"math/rand"
	"runtime"
	"testing"
)

// TestSteadyStateUpdateAllocs gates the end-to-end allocation budget of
// the hot server path: a registered group's synchronous Update with no
// subscribers attached. After warm-up the engine borrows a pooled
// workspace, the planner reuses all scratch, and the zero-subscriber fast
// path skips notification assembly, so each recomputation may allocate
// only the freshly exported safe regions — a small constant. This fence
// keeps future PRs from silently re-introducing per-update churn.
func TestSteadyStateUpdateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	rng := rand.New(rand.NewSource(3))
	pois := make([]Point, 4000)
	for i := range pois {
		pois[i] = Pt(rng.Float64(), rng.Float64())
	}
	server, err := NewServer(pois, WithTileLimit(10))
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	users := []Point{Pt(0.5, 0.5), Pt(0.51, 0.52), Pt(0.49, 0.53)}
	group, err := server.Register(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	locs := make([]Point, len(users))
	step := 0
	run := func() {
		step++
		jitter := 1e-5 * float64(step%5)
		for i, u := range users {
			locs[i] = Pt(u.X+jitter, u.Y-jitter)
		}
		if err := group.Update(locs, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		run() // warm the pooled workspace to its working size
	}
	// A GC clears sync.Pool victims; run one now so the measurement
	// window starts with the warmed workspace freshly promoted and is
	// unlikely to see another collection.
	runtime.GC()
	run()
	allocs := testing.AllocsPerRun(100, run)
	const budget = 8
	if allocs > budget {
		t.Errorf("steady-state Group.Update allocates %.1f/op, budget %d", allocs, budget)
	}
}
