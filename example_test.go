package mpn_test

import (
	"fmt"
	"math/rand"

	"mpn"
)

// ExampleNewServer shows the full registration / escape / update cycle.
func ExampleNewServer() {
	// A deterministic POI grid so the output is stable.
	var pois []mpn.Point
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			pois = append(pois, mpn.Pt(float64(i)/10+0.05, float64(j)/10+0.05))
		}
	}
	server, err := mpn.NewServer(pois, mpn.WithMethod(mpn.Circle))
	if err != nil {
		panic(err)
	}

	users := []mpn.Point{mpn.Pt(0.22, 0.22), mpn.Pt(0.28, 0.28)}
	group, err := server.Register(users, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("meeting point:", group.MeetingPoint())
	fmt.Println("user 0 inside own region:", !group.NeedsUpdate(0, users[0]))
	fmt.Println("far location escapes:", group.NeedsUpdate(0, mpn.Pt(0.9, 0.9)))
	// Output:
	// meeting point: (0.25, 0.25)
	// user 0 inside own region: true
	// far location escapes: true
}

// ExampleWithAggregate contrasts the two objectives on a skewed group.
func ExampleWithAggregate() {
	pois := []mpn.Point{mpn.Pt(0.2, 0), mpn.Pt(0.45, 0)}
	// Two users far apart: u1 at 0, u2 at 1 (on the x axis).
	users := []mpn.Point{mpn.Pt(0, 0), mpn.Pt(1, 0)}

	maxServer, _ := mpn.NewServer(pois, mpn.WithAggregate(mpn.MinimizeMax), mpn.WithMethod(mpn.Circle))
	g1, _ := maxServer.Register(users, nil)
	fmt.Println("minimize-max picks:", g1.MeetingPoint()) // closest to the midpoint

	sumServer, _ := mpn.NewServer(pois, mpn.WithAggregate(mpn.MinimizeSum), mpn.WithMethod(mpn.Circle))
	g2, _ := sumServer.Register(users, nil)
	// Between the users every point has the same sum, so both lots tie;
	// the reported one still minimizes the sum.
	p := g2.MeetingPoint()
	fmt.Println("minimize-sum total:", p.Dist(users[0])+p.Dist(users[1]))
	// Output:
	// minimize-max picks: (0.45, 0)
	// minimize-sum total: 1
}

// ExampleEncodeRegion round-trips a safe region through the wire format.
func ExampleEncodeRegion() {
	rng := rand.New(rand.NewSource(1))
	pois := make([]mpn.Point, 200)
	for i := range pois {
		pois[i] = mpn.Pt(rng.Float64(), rng.Float64())
	}
	server, _ := mpn.NewServer(pois, mpn.WithMethod(mpn.Tile), mpn.WithTileLimit(5))
	group, _ := server.Register([]mpn.Point{mpn.Pt(0.5, 0.5)}, nil)

	region := group.Region(0)
	payload := mpn.EncodeRegion(region)
	decoded, err := mpn.DecodeRegion(payload)
	if err != nil {
		panic(err)
	}
	fmt.Println("tiles survive round trip:", decoded.NumTiles() == region.NumTiles())
	fmt.Println("payload under a packet:", len(payload) < 536)
	// Output:
	// tiles survive round trip: true
	// payload under a packet: true
}
