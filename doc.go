// Package mpn is a library for Meeting Point Notification: continuously
// reporting the optimal meeting point for a group of moving users, with
// independent safe regions that minimize client–server communication.
//
// It reproduces the system of Li, Thomsen, Yiu and Mamoulis, "Efficient
// Notification of Meeting Points for Moving Groups via Independent Safe
// Regions" (ICDE 2013 / TKDE 2015). Given a set of points of interest P
// and a group of users U, the server reports the POI minimizing the
// maximum user distance (or, in the sum-optimal variant, the total user
// distance) together with one safe region per user: as long as every user
// stays inside her own region, the reported meeting point is guaranteed to
// remain optimal and nobody needs to contact the server.
//
// # Quick start
//
//	server, err := mpn.NewServer(pois, mpn.WithMethod(mpn.TileDirected))
//	group, err := server.Register(userLocations, nil) // dirs optional
//	p := group.MeetingPoint()          // the current optimum
//	r := group.Region(0)               // user 0's safe region
//	// ... user 0 moves to loc ...
//	if group.NeedsUpdate(0, loc) {
//	    group.Update(allCurrentLocations, dirs)
//	}
//
// Three safe-region strategies are provided: Circle (cheap to compute,
// escapes often), Tile (tile-based regions approximating the maximal safe
// region), and TileDirected (tiles grown toward each user's travel
// direction — the paper's best method). The buffering optimization
// (WithBuffer) makes tile computation touch the POI index exactly once per
// update.
//
// The internal packages implement the full substrate from scratch: an
// R-tree (internal/rtree), top-k group nearest neighbor search
// (internal/gnn), the safe-region algorithms (internal/core), a compact
// safe-region wire codec (internal/tileenc), synthetic road networks and
// mobility models (internal/roadnet, internal/mobility), and the
// experiment harness reproducing every figure of the paper
// (internal/experiments, cmd/mpnbench).
package mpn
