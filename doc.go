// Package mpn is a library for Meeting Point Notification: continuously
// reporting the optimal meeting point for a group of moving users, with
// independent safe regions that minimize client–server communication.
//
// It reproduces the system of Li, Thomsen, Yiu and Mamoulis, "Efficient
// Notification of Meeting Points for Moving Groups via Independent Safe
// Regions" (ICDE 2013 / TKDE 2015). Given a set of points of interest P
// and a group of users U, the server reports the POI minimizing the
// maximum user distance (or, in the sum-optimal variant, the total user
// distance) together with one safe region per user: as long as every user
// stays inside her own region, the reported meeting point is guaranteed to
// remain optimal and nobody needs to contact the server.
//
// # Quick start
//
//	server, err := mpn.NewServer(pois, mpn.WithMethod(mpn.TileDirected))
//	group, err := server.Register(userLocations, nil) // dirs optional
//	p := group.MeetingPoint()          // the current optimum
//	r := group.Region(0)               // user 0's safe region
//	// ... user 0 moves to loc ...
//	if group.NeedsUpdate(0, loc) {
//	    group.Update(allCurrentLocations, dirs)
//	}
//
// Three safe-region strategies are provided: Circle (cheap to compute,
// escapes often), Tile (tile-based regions approximating the maximal safe
// region), and TileDirected (tiles grown toward each user's travel
// direction — the paper's best method). The buffering optimization
// (WithBuffer) makes tile computation touch the POI index exactly once per
// update.
//
// # The concurrent group engine
//
// Registered groups live in a sharded, lock-striped engine
// (internal/engine): groups hash over WithShards independent registry
// shards, each with a bounded work queue drained by WithWorkers
// recomputation workers, so operations on different shards never contend
// and total asynchronous compute parallelism is shards × workers.
//
// Group.Update recomputes synchronously on the caller's goroutine, as in
// the quick start above. Under heavy traffic, use the asynchronous path:
// Group.SubmitUpdate enqueues the fresh locations and returns
// immediately, workers recompute in the background, and results arrive on
// the notification stream:
//
//	sub := server.Subscribe(256)
//	go func() {
//	    for n := range sub.C {
//	        // n.Group, n.Meeting, n.Regions, n.Changed, n.Coalesced
//	    }
//	}()
//	group.SubmitUpdate(allCurrentLocations, dirs) // returns immediately
//
// Bursts of submissions for the same group coalesce: the engine keeps
// only the latest location snapshot per group and recomputes it once
// (Notification.Coalesced reports how many submissions a recomputation
// covered), so a storm of escape reports costs one safe-region
// computation instead of one per report. Per group there is at most one
// in-flight recomputation and notifications carry strictly increasing
// sequence numbers; subscription sends never block, with drops counted on
// the Subscription. With no subscribers attached, notification payloads
// are never assembled at all. Server.Close releases the worker pool.
//
// # Zero-allocation steady-state planning
//
// Every safe-region recomputation draws its scratch state — the R-tree
// best-first heap and traversal stack, the GNN result buffer, candidate
// and bound slices, hypothetical tile sets, tile orderings, and the
// Sum-MPN memo tables — from a reusable core.Workspace rather than the
// heap. Each engine worker owns one workspace for its whole lifetime and
// the synchronous paths (Group.Update, Server.Plan) borrow one from a
// pool, so steady-state planning allocates only the returned safe
// regions: two allocations per plan (one region-header slice and one
// shared tile arena), ~3 allocations per end-to-end update, down from
// thousands. Returned plans are exported by copy and never alias
// workspace memory, so they are safe to retain indefinitely. Long-lived
// custom compute loops use core.NewWorkspace with the planner's
// TileMSRInto/CircleMSRInto entry points; TestSteadyStateUpdateAllocs and
// the core-level allocation fence gate the budget so regressions fail CI.
//
// cmd/mpnbench's -json mode benchmarks this path (planner kernel and
// engine update, swept over group size) and writes the ns/op, throughput,
// and allocs/op series to BENCH_plan.json — the committed baseline that
// cmd/benchgate enforces in CI (a series failing by more than 25% ns/op,
// or allocating more, fails the build).
//
// All planning flows through one entry point, core.Planner.Plan, which
// takes a PlanRequest naming the region kind (tiles, circles, or network
// ranges), the optional shared cache, and the optional PlanState for
// incremental maintenance; the older TileMSR*/CircleMSR* methods remain
// as deprecated thin wrappers over Plan and CI rejects new in-repo call
// sites of them.
//
// # Road-network backend
//
// WithRoadNetwork(net, poiNodes) switches a server from Euclidean
// planning to the paper's network variant: distances are shortest-path
// distances over a road graph, POIs sit on graph nodes, and each user's
// safe region is a network range — the set of road segments within a
// safe radius of her snapped position (network distance is a metric, so
// the paper's Theorem 1 radii carry over unchanged). The backend
// (internal/netmpn over internal/roadnet) is a production peer of the
// Euclidean one, reachable through the same Server/engine/wire stack
// and the same Planner.Plan entry point (core.KindNetRange):
//
//   - ALT landmarks: NewServer precomputes shortest-path trees from a
//     few far-apart landmark nodes (WithNetLandmarks); per-query work
//     examines POI candidates in ascending landmark-lower-bound order
//     and terminates early, with one resumable truncated Dijkstra per
//     member instead of per (member, POI) pair. Selection replays the
//     naive oracle's comparison order over the examined subset, so
//     plans are byte-identical to per-query Dijkstra over all POIs —
//     the differential fence asserts it. A uniform edge grid makes
//     position snapping sublinear, again bit-identical to the
//     exhaustive scan.
//   - Workspace and epochs: network planning draws its heaps, distance
//     maps, and candidate buffers from the same core.Workspace scratch
//     as the Euclidean planners and stamps per-member region epochs
//     into core.PlanState, so zero-allocation steady state, kept/partial
//     incremental outcomes, and the delta wire protocol all work
//     unchanged. Cleanliness is judged at the member's snapped network
//     position, so an off-road GPS report a snap away from a covered
//     segment does not spuriously dirty her.
//   - Network neighborhood cache: WithNetCache keys recent top-k results
//     by nearest node; a hit is certified by landmark lower bounds (the
//     nbrcache triangle trick, transferred to network distance) and
//     falls back to a real search when certification fails, so cached
//     plans stay byte-identical to uncached ones.
//
// Network regions encode with a dedicated 'N'-tagged wire codec
// (segments plus a center/radius summary) understood by EncodeRegion /
// DecodeRegion and the coordinator. cmd/mpnserver -network serves the
// network backend over TCP; the net_* series in BENCH_plan.json track
// the ALT planner against the naive oracle (benchgate enforces ≥5×),
// the incremental path, and the cache.
//
// # Incremental vs full replanning
//
// By default every report recomputes the whole plan: a fresh result set
// and fresh regions for all m members. WithIncremental turns on
// incremental maintenance, the protocol the paper's independent safe
// regions exist for. The server retains each group's last plan; on a
// report it recomputes the result set (one GNN traversal — the
// irreducible cost of knowing whether the optimum moved) and then:
//
//   - Result set unchanged, every member still inside her region: the
//     whole retained plan stands (Notification.Outcome = ReplanKept).
//     Nothing is regrown; subscribers receive the retained regions
//     unchanged, and on the wire the delta protocol (below) ships a
//     handful of bytes instead of re-encoded regions.
//   - Result set unchanged, some members escaped: only the escapees'
//     regions are regrown, verified against the other members' retained
//     regions (ReplanPartial). The clean majority stays silent.
//   - Result set churned (or the retained regions leave an escapee no
//     room): full replan (ReplanFull).
//
// Incremental and full plans are equivalent — both are valid safe-region
// sets for the same optimal meeting point, so correctness is unaffected —
// but not byte-identical: a retained region was grown around an older
// location, so a full replan at the current locations would shape it
// differently. Plans produced on the ReplanFull path are byte-identical
// to what the non-incremental server would compute. Group.UpdateFull
// (synchronous) and Group.SubmitUpdateFull (asynchronous) are the escape
// hatch that forces the full path for one update, e.g. to hand a
// rejoining client fresh regions; the forced-full demand survives
// submission coalescing. In the
// steady-state benchmark the kept path turns a multi-millisecond
// recomputation into ~10µs, and a single escaping member costs a regrow
// of one region instead of m.
//
// The partial path is guarded by an up-front cost heuristic: a regrown
// tile is verified against every tile the clean members retained, so
// when the retained regions hold more tiles than the frontier a fresh
// plan would build (about TileLimit+1 tiles per member, scaled by a
// measured crossover ratio), an untrimmed partial regrow is predicted
// slower than replanning. Instead of abandoning the partial path, the
// server shrinks each oversized clean region down to the fresh-frontier
// budget — keeping the tiles nearest the member; a subset of a valid
// tile-region set is itself valid, it only cedes territory — and
// regrows the escapees against the trimmed set, preserving the partial
// outcome's communication win (the clean majority still keeps regions,
// merely smaller ones). WithIncrementalCostRatio tunes the crossover; a
// negative ratio disables the trim and always regrows against the
// untrimmed retained regions.
//
// # Delta notifications on the wire
//
// Incremental maintenance makes the server cheap; the delta protocol
// makes the wire cheap. The paper's cost model is communication — safe
// regions exist to suppress messages — yet a kept plan whose regions
// changed not at all would still ship every member her full encoded
// region on every notification. The protocol layer (internal/proto,
// cmd/mpnserver -delta, on by default) closes that gap end to end:
//
//   - Epoch stamping: core.PlanState tags every member slot with a
//     monotone epoch that advances exactly when that slot's region
//     content changes — a kept plan advances nothing, a partial regrow
//     advances only the regrown members. The engine snapshots the
//     vector into Notification.Epochs.
//   - Lazy encoding: the coordinator caches each member's encoded
//     region keyed by its epoch. An unchanged region is never re-encoded
//     — the kept path's serialization cost is one integer compare per
//     member — and the cached bytes are shared across deliveries.
//     Backends without epochs still work: the coordinator compares
//     encodings and mints its own epochs, saving the bytes if not the
//     encode.
//   - Delta frames: clients negotiate with a Register flag; the server
//     then sends a compact TNotifyDelta (~10 bytes when nothing
//     changed) carrying only the changed regions as (member, epoch,
//     full encoded region) records. Records are complete regions, so
//     one frame repairs any epoch gap.
//   - Full-frame fallback: registrations, clients that did not
//     negotiate, reconnects, any frame dropped at the member's outbox,
//     and client NACKs all force a full TNotify. The server never
//     assumes a client holds state it cannot prove was enqueued, and a
//     client never exposes state it cannot verify — so the reassembled
//     plan is byte-identical to the full protocol's at every step (the
//     differential fence in cmd/mpnserver drives both protocols over
//     the same report streams, both aggregates, both region shapes,
//     with a forced mid-stream reconnect, and compares after every
//     round).
//
// Beyond its members, a group can be watched: a connection registering
// with proto.FlagObserver (proto.AsObserver on the client) subscribes to
// the group without joining it — it is never probed, never reports, and
// does not count toward the group size. Each notify fans one
// TNotifyDelta to every observer carrying all member regions that
// changed since that observer's last delivery (all of them on
// subscription, after a drop, or after a membership change, flagged so
// the client resets its retained map); the observer reassembles the
// whole group's state from the same epoch machinery members use.
// Observers are torn down with the group when its last member leaves.
//
// On the kept-path steady state at m=6 the notification round shrinks
// from ~1.3 KB to ~60 B (≈20×) and serialization from ~17µs to ~250ns;
// the notify_bytes_*/notify_encode_* series in BENCH_plan.json carry
// the numbers and cmd/benchgate enforces both the regression bound and
// the ≥10× reduction. The simulator and experiment harness account the
// same protocol (sim.Config.DeltaWire, mpnbench -delta), so the paper's
// communication figures reflect what the coordinator actually ships.
//
// # The shared GNN neighborhood cache
//
// Every recomputation — full, partial, or kept — starts with a top-k
// GNN search over the POI R-tree, and with buffering on it is the only
// index traversal an update performs; at scale, co-located groups
// repeat the same traversals endlessly. WithSharedGNNCache(maxBytes)
// installs one concurrency-safe, lock-striped cache (internal/nbrcache)
// shared by all engine shards and the synchronous paths. Entries are
// keyed by the group centroid's quantized tile plus the aggregate and
// k, and store the J nearest POIs to the tile center together with a
// guarantee radius (every uncached POI is provably farther) and the
// R-tree version they were computed against.
//
// Three properties make a hit safe:
//
//   - Exactness per group: a hit recomputes every cached candidate's
//     true aggregate distance for the requesting group's actual member
//     locations, and the selection is certified by the triangle
//     inequality against the guarantee radius — if certification fails
//     (the group is too spread for the entry), the lookup falls back to
//     a real traversal. Cached plans are byte-identical to uncached
//     ones; a differential fence asserts this across aggregates, region
//     shapes, and hit/miss/stale paths.
//   - Verification downstream: safe-region tiles are still
//     Divide-Verified against the group's own members, so planner
//     correctness never rests on the cache at all.
//   - Churn invalidation by locality: a POI mutation batch tells the
//     cache exactly which locations changed; an entry is evicted only if
//     a mutated location falls within its guarantee radius (where it
//     could appear among, or displace, the cached candidates) or the
//     entry claims completeness. Every other entry migrates to the new
//     index snapshot untouched, so localized churn leaves distant areas
//     of the cache hot. Entries recording an unknown (tree, version)
//     pair — e.g. on a cache not registered for notifications — are
//     still discarded on their next lookup, so correctness never
//     depends on the migration.
//
// The cache is bounded by an LRU byte budget (lock-striped, evictions
// counted) and observable through Server.GNNCacheStats. On the
// cmd/mpnbench multi_group series — eight co-located incremental groups
// jittering inside their regions — the shared cache turns every
// steady-state update's index traversal into a few hundred distance
// computations, roughly doubling planning throughput and reaching a
// 100% hit rate after the first group's miss populates the tile.
//
// # Live POI churn and snapshot semantics
//
// The POI set is mutable while the server runs: Server.InsertPOI,
// Server.DeletePOI, and the batched Server.UpdatePOIs apply venue churn
// without stopping — or even pausing — planning. The index is published
// as immutable snapshots behind one atomic pointer (an RCU-style
// double buffer in internal/core):
//
//   - What readers pin: every safe-region computation acquires the
//     current snapshot — an R-tree, the id-indexed POI table, the
//     tombstone set, and the mutation version, all internally consistent
//     — and runs against it for its whole duration. A computation never
//     observes a half-applied batch, and concurrent computations may run
//     against different versions; Stats.IndexVersion reports which one
//     each plan saw.
//   - How writers publish: mutations serialize on a writer lock and are
//     applied to a shadow copy of the index (the tree retired two
//     publishes ago, caught up by replaying the batch it missed), then
//     published with a single pointer swap — the tree's version is
//     advanced strictly after its structure, so no reader can pair a new
//     version with old contents. Readers never block, and the writer
//     waits on at most one retired snapshot's readers. When accumulated
//     churn exceeds the live set size, the shadow is re-packed with the
//     STR bulk loader to restore load balance.
//   - What survives a mutation: shared-cache entries outside the reach
//     of every mutated location migrate to the new snapshot (see above);
//     retained incremental plans do not — the next update for each group
//     replans fully, because retained tiles were verified against a
//     candidate set the mutation may have changed. Deleted POI ids are
//     never reused, and a pinned snapshot keeps its entire state valid
//     until released.
//
// The churn differential fence asserts that after any interleaving of
// inserts and deletes, every planner variant produces plans identical
// to a freshly built server over the surviving POI set — deletions
// leave no trace — and the churn_* benchmark series gate the cost:
// localized churn keeps the shared cache above an 80% hit rate.
//
// # Failure semantics
//
// The serving stack degrades predictably under overload, slow or silent
// peers, planner bugs, and process restarts; every policy below is
// exercised by the chaos suite in cmd/mpnserver, which drives the full
// TCP stack through deterministic fault schedules (internal/faultinject)
// and then fences the surviving clients' final plans byte-for-byte
// against a fault-free run.
//
//   - Overload: Group.SubmitUpdate waits at most WithAdmissionWait for
//     queue space, then sheds with ErrOverloaded (negative wait = shed
//     immediately). Shedding is harmless by construction — coalescing
//     keeps the group's retained plan valid and the next accepted update
//     carries the latest locations — so callers treat ErrOverloaded as
//     backpressure, not failure. Shed and abandoned counts are visible
//     per shard in Server.ShardStats; cmd/mpnserver counts sheds without
//     disconnecting the reporting client.
//   - Panic isolation: a panic inside a planner recomputation is
//     recovered by the owning worker and converted into an
//     error-carrying notification for that group (repeating the last
//     good sequence number); other groups, the shard, and the process
//     are unaffected, and the group's retained incremental state is
//     invalidated so the next update replans fully.
//   - Shutdown: Server.Close drains queued recomputations for at most
//     WithCloseTimeout before abandoning the remainder (counted in
//     ShardStats), then rejects further operations with ErrServerClosed
//     — including callers already blocked in admission, which unblock
//     promptly rather than leak.
//   - Dead and slow peers: cmd/mpnserver arms a read deadline covering
//     idle time (-read-timeout) and a write deadline per flush
//     (-write-timeout); clients send varint Ping heartbeats
//     (proto.WithHeartbeat) so an idle-but-alive client is never reaped
//     while a silent TCP hole is, on both ends. A client too slow to
//     drain its outbox first has deliveries coalesced (newest plan
//     wins), then is disconnected with an observable reason; per-connection
//     byte and error accounting distinguishes peer-closed, protocol
//     error, and idle timeout.
//   - Restarts: proto.ReconnectClient redials with exponential backoff
//     plus seeded jitter, re-registers, and resumes via the server's
//     full-snapshot-on-register path; across a server restart the client
//     keeps serving its retained plan and converges to the fresh one —
//     invisible to the application beyond latency and a Reconnects
//     counter. Corrupt or truncated frames surface as ErrCorruptFrame
//     (never a panic; FuzzFrame enforces this), which tears down only
//     the one connection.
//
// # Durability and crash recovery
//
// cmd/mpnserver -state-dir makes the serving state crash-safe: a
// CRC-framed append-only write-ahead log plus periodic snapshot
// compaction (internal/durable) persist every durably significant
// transition — group registrations with member ids and last committed
// locations, group unregistrations, and applied POI mutation batches
// (stamped with the external-id base so replay reproduces id
// assignment). The engine emits these through a journal hook at its
// commit sites; the hook only encodes and enqueues to a bounded queue
// drained by one writer goroutine, so the update hot path never touches
// a file — when the queue is full, records are shed and counted rather
// than ever blocking serving (the next commit re-records the group's
// current state, so a shed is lost freshness, not corruption).
//
// -fsync picks the loss window: "always" fsyncs every write batch (a
// crash loses only records still queued), "interval" (the default)
// fsyncs at most once per interval (a crash loses at most one interval),
// "off" never fsyncs until clean close. On boot the server replays
// snapshot plus log, re-applies POI batches, re-registers every durable
// group into the engine, and only then arms the journal and accepts
// connections — reconnecting clients resume through the same
// full-snapshot-on-register path an ordinary reconnect uses, and a
// group whose membership changed across the restart is retired and
// re-registered on its first report.
//
// Recovery tolerates torn writes by construction: the log is scanned
// frame by frame and truncated at the first bad length, CRC, or short
// frame — the valid prefix is the recovered state, never a panic, never
// a phantom record (FuzzWALRecover feeds arbitrary corruption to the
// recovery path to enforce exactly this; snapshots are written to a
// temp file, fsynced, and atomically renamed, so a torn snapshot cannot
// exist). The chaos suite's kill-and-restore schedules crash the server
// mid-churn — including through injected torn tails and
// crash-before-fsync faults — restart it from the state directory, and
// fence the restored server's plans byte-for-byte against a fault-free
// run. The durable_update and wal_append series in BENCH_plan.json
// price the journal on the steady-state update path and the store's
// sustained append rate; cmd/benchgate enforces the disclosed overhead
// ceiling against update_inc.
//
// # Replication and failover
//
// cmd/mpnserver -replicate-to turns a durable server into a replicating
// primary: internal/replica ships the WAL record stream — the same
// CRC-framed records -state-dir journals — to any number of followers
// over TCP. Each follower connection gets a consistent snapshot seed
// (the store's folded mirror at a stream position) followed by the live
// record tail from exactly that position, and acks applied positions
// back; StreamPos minus the lowest follower ack is the primary's lag
// bound in records, visible in the stats endpoint. A follower that
// falls behind its subscription buffer is cut and reseeds on reconnect,
// so a slow standby can never stall the primary's write path.
//
// A standby (-standby-of, pointed at the primary's replication address)
// replays every shipped record through exactly the paths boot-time
// recovery uses — POI batches through the planner, group records into
// the engine with synchronous plans — so its engine is warm the moment
// it is asked to serve. While following, it refuses client writes with
// a redirect at the primary. Promotion (automatic after -promote-after
// of primary silence, and never after a fatal divergence) bumps a
// fencing epoch above everything the primary ever presented, journals
// it, and best-effort fences the old primary, which refuses writes from
// then on and redirects clients at its successor. Epochs ride the
// journal, the snapshot, and every replication handshake, so fencing
// survives crashes of either node: a deposed primary that restarts from
// its own state directory comes back already fenced out by any follower
// that promoted past it.
//
// Clients built on proto.NewReconnectClientAddrs carry the address list
// and adopt server-pushed peer frames (epoch-gated, so a stale list
// never overrides a newer one), failing over without operator
// involvement: a write refused by a standby or fenced node arrives with
// the peer list naming who can serve it, and observer subscriptions
// re-attach through the ordinary re-register path. The loss window on
// failover is the replication lag at the moment the primary died, on
// top of the -fsync window: with fsync=always a promoted follower is
// missing at most the records the primary had not yet streamed; with
// fsync=interval a crashed-and-restarted primary may itself have lost
// up to one interval that its follower retained — the failover chaos
// suite (TestFailover*/TestFollowerCatchUp in cmd/mpnserver) fences
// both directions byte-for-byte, and FuzzReplStream feeds arbitrary
// corruption to the stream consumer. The repl_ship and repl_lag series
// in BENCH_plan.json price shipping on the update path and the
// follower's drain rate; cmd/benchgate enforces the disclosed ceiling
// against update_inc.
//
// The internal packages implement the full substrate from scratch: an
// R-tree (internal/rtree), top-k group nearest neighbor search
// (internal/gnn), the safe-region algorithms (internal/core), the sharded
// concurrent group engine (internal/engine), a compact safe-region wire
// codec (internal/tileenc), the client/server wire protocol and
// coordinator (internal/proto, cmd/mpnserver), synthetic road networks
// and mobility models (internal/roadnet, internal/mobility), and the
// experiment harness reproducing every figure of the paper
// (internal/experiments, cmd/mpnbench; see also cmd/mpnbench -engine for
// the concurrent-groups throughput benchmark).
package mpn
