package mpn

import (
	"math/rand"
	"testing"
)

// TestWithTileAffinity exercises the full public lifecycle on a server
// whose engine places groups by centroid tile: registration, synchronous
// and asynchronous updates, notifications, and unregistration must all
// work through the shard-encoding group ids, and co-located groups must
// produce identical plans to a default server's.
func TestWithTileAffinity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pois := make([]Point, 3000)
	for i := range pois {
		pois[i] = Pt(rng.Float64(), rng.Float64())
	}
	affinity, err := NewServer(pois, WithTileLimit(8), WithTileAffinity(), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer affinity.Close()
	plain, err := NewServer(pois, WithTileLimit(8), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()

	users := [][]Point{
		{Pt(0.5001, 0.5001), Pt(0.5003, 0.5002)},
		{Pt(0.5002, 0.5003), Pt(0.5004, 0.5001)},
		{Pt(0.1, 0.9), Pt(0.102, 0.898)},
	}
	for _, us := range users {
		ga, err := affinity.Register(us, nil)
		if err != nil {
			t.Fatal(err)
		}
		gp, err := plain.Register(us, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ga.MeetingPoint() != gp.MeetingPoint() {
			t.Fatalf("affinity server computed a different meeting point: %v vs %v",
				ga.MeetingPoint(), gp.MeetingPoint())
		}
		if err := ga.Update(us, nil); err != nil {
			t.Fatal(err)
		}
		if !ga.Region(0).Contains(us[0]) {
			t.Fatal("region misses its own user")
		}
		sub := affinity.Subscribe(4)
		if err := ga.SubmitUpdate(us, nil); err != nil {
			t.Fatal(err)
		}
		if n := <-sub.C; n.Group != ga.ID() {
			t.Fatalf("notification for group %d, want %d", n.Group, ga.ID())
		}
		sub.Close()
		ga.Unregister()
	}
}
