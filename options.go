package mpn

import (
	"fmt"
	"math"
	"time"

	"mpn/internal/core"
	"mpn/internal/engine"
	"mpn/internal/gnn"
	"mpn/internal/roadnet"
)

// Aggregate selects the meeting-point objective.
type Aggregate int

const (
	// MinimizeMax reports the POI minimizing the maximum user distance —
	// the meeting time objective (MPN, MAX-GNN).
	MinimizeMax Aggregate = iota
	// MinimizeSum reports the POI minimizing the total user distance —
	// the fuel/fairness objective (Sum-MPN, SUM-GNN).
	MinimizeSum
)

// String implements fmt.Stringer.
func (a Aggregate) String() string {
	if a == MinimizeMax {
		return "minimize-max"
	}
	return "minimize-sum"
}

func (a Aggregate) gnn() gnn.Aggregate {
	if a == MinimizeMax {
		return gnn.Max
	}
	return gnn.Sum
}

// Method selects the safe-region strategy.
type Method int

const (
	// TileDirected grows tile-based regions toward each user's travel
	// direction — the paper's best-performing method and the default.
	TileDirected Method = iota
	// Tile grows tile-based regions in all directions.
	Tile
	// Circle assigns every user a circle of the maximal common radius:
	// cheapest to compute, most frequent updates.
	Circle
	// NetRange computes the meeting point and safe regions under
	// shortest-path distance on a road network instead of Euclidean
	// distance: each user's region is the set of network positions within
	// a common network radius of her location. Requires WithRoadNetwork.
	NetRange
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Circle:
		return "circle"
	case Tile:
		return "tile"
	case NetRange:
		return "net-range"
	default:
		return "tile-directed"
	}
}

// config is the resolved server configuration.
type config struct {
	method       Method
	core         core.Options
	incremental  bool
	cacheBytes   int64
	tileAffinity float64

	// Engine sizing; zero selects the engine's defaults (GOMAXPROCS
	// shards, 1 worker per shard, queue depth 1024).
	shards     int
	workers    int
	queueDepth int

	// Failure-semantics bounds; zero selects the engine's defaults (1s
	// admission wait, 5s close drain).
	admissionWait time.Duration
	closeTimeout  time.Duration

	// Road-network backend (NetRange method only).
	network         *roadnet.Network
	poiNodes        []int
	landmarks       int
	netCacheEntries int
	netCacheK       int
}

func defaultConfig() config {
	opts := core.DefaultOptions()
	opts.Directed = true
	opts.Buffer = 100 // the paper's recommended buffering default
	return config{method: TileDirected, core: opts}
}

// Option customizes a Server.
type Option func(*config) error

// WithMethod selects the safe-region strategy (default TileDirected).
func WithMethod(m Method) Option {
	return func(c *config) error {
		switch m {
		case Circle, Tile, TileDirected, NetRange:
			c.method = m
			c.core.Directed = m == TileDirected
			return nil
		default:
			return fmt.Errorf("mpn: unknown method %d", m)
		}
	}
}

// WithRoadNetwork supplies the road network the NetRange method plans
// over and selects that method. The POI set is the given network nodes
// (by index into net's node slice); the pois argument of NewServer is
// ignored for planning and may be nil. Safe regions become network range
// regions: the covered road segments within a common shortest-path
// radius of each member, encoded on the wire with the 'N' tag.
func WithRoadNetwork(net *RoadNetwork, poiNodes []int) Option {
	return func(c *config) error {
		if net == nil {
			return fmt.Errorf("mpn: nil road network")
		}
		if len(poiNodes) == 0 {
			return fmt.Errorf("mpn: road network POI node set is empty")
		}
		for _, n := range poiNodes {
			if n < 0 || n >= net.NumNodes() {
				return fmt.Errorf("mpn: POI node %d out of range [0, %d)", n, net.NumNodes())
			}
		}
		c.network = net
		c.poiNodes = poiNodes
		c.method = NetRange
		c.core.Directed = false
		return nil
	}
}

// WithNetLandmarks sets the ALT landmark count for the road-network
// backend's lower-bound pruning (default 8). More landmarks tighten the
// bounds at higher preprocessing and per-query cost. Only meaningful
// together with WithRoadNetwork.
func WithNetLandmarks(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("mpn: landmark count %d must be positive", n)
		}
		c.landmarks = n
		return nil
	}
}

// WithNetCache enables the road-network neighborhood cache: entries keyed
// by each group's nearest network node certify cached candidate POIs with
// landmark lower bounds, so clustered groups skip most shortest-path
// work. Cached plans are byte-identical to uncached ones (every hit is
// certified exactly; uncertifiable hits fall back to the full search).
// entries bounds the LRU entry count; k is how many network-nearest POIs
// each entry certifies (0 selects the backend default). Only meaningful
// together with WithRoadNetwork.
func WithNetCache(entries, k int) Option {
	return func(c *config) error {
		if entries < 1 {
			return fmt.Errorf("mpn: net cache entry bound %d must be positive", entries)
		}
		if k < 0 {
			return fmt.Errorf("mpn: net cache k %d must be non-negative", k)
		}
		c.netCacheEntries = entries
		c.netCacheK = k
		return nil
	}
}

// WithAggregate selects the objective (default MinimizeMax).
func WithAggregate(a Aggregate) Option {
	return func(c *config) error {
		if a != MinimizeMax && a != MinimizeSum {
			return fmt.Errorf("mpn: unknown aggregate %d", a)
		}
		c.core.Aggregate = a.gnn()
		return nil
	}
}

// WithTileLimit sets α, the number of tile-growing rounds per user
// (default 30). Larger values yield larger regions and fewer updates at
// higher server cost.
func WithTileLimit(alpha int) Option {
	return func(c *config) error {
		if alpha < 1 {
			return fmt.Errorf("mpn: tile limit %d must be positive", alpha)
		}
		c.core.TileLimit = alpha
		return nil
	}
}

// WithSplitLevel sets L, how many times a rejected tile is quartered and
// retried (default 2).
func WithSplitLevel(l int) Option {
	return func(c *config) error {
		if l < 0 {
			return fmt.Errorf("mpn: split level %d must be non-negative", l)
		}
		c.core.SplitLevel = l
		return nil
	}
}

// WithBuffer sets b, the buffering parameter: the server retrieves the
// best b+1 meeting points once per update and verifies tiles against that
// buffer only (default 100; 0 disables buffering).
func WithBuffer(b int) Option {
	return func(c *config) error {
		if b < 0 {
			return fmt.Errorf("mpn: buffer %d must be non-negative", b)
		}
		c.core.Buffer = b
		return nil
	}
}

// WithIncremental enables incremental safe-region maintenance: the
// server retains each group's last plan, and an update whose recomputed
// result set is unchanged regrows only the regions it invalidates —
// every member still inside her region keeps it (the paper's
// independent-safe-region protocol; verbatim, except that oversized
// retained regions may be trimmed to the fresh-plan tile budget, see
// WithIncrementalCostRatio), falling back to a full replan when the
// optimum churns or the POI set mutated since the retained plan. Notification.Outcome reports which path each
// recomputation took; Group.UpdateFull forces the full path for one
// update. Incremental and full plans are equivalent (both are valid
// safe-region sets for the same meeting point) but not byte-identical:
// retained regions were grown around older locations.
func WithIncremental() Option {
	return func(c *config) error {
		c.incremental = true
		return nil
	}
}

// WithSharedGNNCache enables the cross-group neighborhood cache: one
// concurrency-safe, tile-keyed cache of GNN result sets shared by every
// group and every engine worker, bounded by the given LRU byte budget.
// Groups whose centroids fall in the same quantized tile reuse each
// other's index traversals instead of recomputing them — the dominant
// server cost when many groups cluster in the same urban areas. Cached
// retrieval is exact (every hit is certified against the requesting
// group's actual member locations, and safe-region tiles are still
// verified per group), so plans are byte-identical to an uncached
// server's. Under POI churn (InsertPOI, DeletePOI, UpdatePOIs) the
// cache is invalidated by locality, not wholesale: each mutation batch
// evicts only the entries whose cached guarantee a mutated location
// could actually violate, and every other entry migrates to the new
// index snapshot untouched — localized churn leaves distant areas of
// the cache hot. See Server.GNNCacheStats for hit/miss/churn
// observability.
func WithSharedGNNCache(maxBytes int) Option {
	return func(c *config) error {
		if maxBytes < 1 {
			return fmt.Errorf("mpn: GNN cache budget %d must be positive", maxBytes)
		}
		c.cacheBytes = int64(maxBytes)
		return nil
	}
}

// WithIncrementalCostRatio tunes the incremental planner's up-front
// cost heuristic: when the retained clean regions hold more than ratio
// times the tile frontier a fresh plan would build — oversized retained
// regions make the partial regrow verify more than a full replan
// computes — the clean regions are first shrunk to the fresh-frontier
// budget (each member keeps the tiles nearest her; a subset of a valid
// region set is itself valid) and the partial regrow proceeds against
// the trimmed set. Zero selects the measured default crossover; a
// negative ratio disables the heuristic and always regrows against the
// untrimmed retained regions. Only meaningful together with
// WithIncremental.
func WithIncrementalCostRatio(ratio float64) Option {
	return func(c *config) error {
		c.core.IncCostRatio = ratio
		return nil
	}
}

// WithTileAffinity places newly registered groups onto engine shards by
// their quantized centroid tile instead of hashing the group id: groups
// meeting in the same area land on the same shard, so they share that
// shard's worker-local workspace state (scratch warmed to the local
// geometry) on top of the global GNN cache's result sharing. The tile
// side matches the shared cache's default quantization, so "same cache
// tile" and "same shard" coincide. The trade-off is load skew under
// heavily clustered workloads — shard counts sized for the number of
// active areas, not the number of groups, keep workers busy.
func WithTileAffinity() Option {
	return func(c *config) error {
		c.tileAffinity = engine.DefaultTileAffinity
		return nil
	}
}

// WithShards sets the number of independent registry shards in the
// server's concurrent group engine (default GOMAXPROCS). Groups hash over
// shards; operations on different shards never contend.
func WithShards(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("mpn: shard count %d must be positive", n)
		}
		c.shards = n
		return nil
	}
}

// WithWorkers sets the number of recomputation workers per shard (default
// 1). Total asynchronous compute parallelism is shards × workers.
func WithWorkers(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("mpn: worker count %d must be positive", n)
		}
		c.workers = n
		return nil
	}
}

// WithQueueDepth bounds each shard's pending-update queue (default 1024).
// Submissions block while the shard queue is full, pushing backpressure
// toward the transport; coalescing keeps at most one queue entry per
// group, so a depth of at least the groups-per-shard count never blocks.
func WithQueueDepth(depth int) Option {
	return func(c *config) error {
		if depth < 1 {
			return fmt.Errorf("mpn: queue depth %d must be positive", depth)
		}
		c.queueDepth = depth
		return nil
	}
}

// WithAdmissionWait bounds how long Group.SubmitUpdate may wait for
// space when its shard's run queue is full: once the wait expires the
// submission is shed with ErrOverloaded instead of queued, so a
// saturated server degrades into bounded-latency rejections rather than
// unbounded caller stalls (coalescing makes shedding safe — the group's
// retained plan stays valid and the next accepted update carries the
// latest locations). The default is 1 second; a negative wait sheds
// immediately (fail-fast admission). Shed counts are visible in
// Server.ShardStats.
func WithAdmissionWait(d time.Duration) Option {
	return func(c *config) error {
		if d == 0 {
			return nil // keep the engine default
		}
		c.admissionWait = d
		return nil
	}
}

// WithCloseTimeout bounds how long Server.Close drains queued
// recomputations before abandoning them (abandoned counts are visible
// in Server.ShardStats). The default is 5 seconds; a negative timeout
// waits unboundedly.
func WithCloseTimeout(d time.Duration) Option {
	return func(c *config) error {
		if d == 0 {
			return nil // keep the engine default
		}
		c.closeTimeout = d
		return nil
	}
}

// WithTheta sets the default angular half-width (radians) of the directed
// ordering's travel cone, used when a caller does not supply per-user
// deviation bounds (default π/4).
func WithTheta(theta float64) Option {
	return func(c *config) error {
		if theta <= 0 || theta > math.Pi {
			return fmt.Errorf("mpn: theta %v out of (0, π]", theta)
		}
		c.core.Theta = theta
		return nil
	}
}
