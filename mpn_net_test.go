package mpn

// Public-API tests for the road-network backend (WithRoadNetwork /
// NetRange): option validation, end-to-end serving with incremental
// maintenance under concurrent group churn (run with -race), and the 'N'
// wire codec round trip.

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"mpn/internal/proto"
)

func testRoadNet(t *testing.T) *RoadNetwork {
	t.Helper()
	cfg := DefaultRoadNetConfig()
	cfg.Rows, cfg.Cols = 16, 16
	cfg.Seed = 7
	net, err := GenerateRoadNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func netPOINodes(net *RoadNetwork, every int) []int {
	var nodes []int
	for i := 0; i < net.NumNodes(); i += every {
		nodes = append(nodes, i)
	}
	return nodes
}

func TestNetRangeOptionValidation(t *testing.T) {
	net := testRoadNet(t)
	if _, err := NewServer(nil, WithMethod(NetRange)); err == nil {
		t.Fatal("NetRange without WithRoadNetwork accepted")
	}
	if _, err := NewServer(nil, WithRoadNetwork(net, netPOINodes(net, 7)), WithMethod(Circle)); err == nil {
		t.Fatal("WithRoadNetwork with a Euclidean method accepted")
	}
	if _, err := NewServer(nil, WithRoadNetwork(net, netPOINodes(net, 7)), WithSharedGNNCache(1<<20)); err == nil {
		t.Fatal("WithSharedGNNCache on a network server accepted")
	}
	if _, err := NewServer(nil, WithRoadNetwork(net, nil)); err == nil {
		t.Fatal("empty POI node set accepted")
	}
	if _, err := NewServer(nil, WithRoadNetwork(net, []int{net.NumNodes()})); err == nil {
		t.Fatal("out-of-range POI node accepted")
	}
	if _, err := NewServer(nil, WithRoadNetwork(nil, []int{0})); err == nil {
		t.Fatal("nil network accepted")
	}
	if NetRange.String() != "net-range" {
		t.Fatalf("NetRange.String() = %q", NetRange.String())
	}
}

func TestNetRangeServer(t *testing.T) {
	net := testRoadNet(t)
	s, err := NewServer(nil,
		WithRoadNetwork(net, netPOINodes(net, 9)),
		WithIncremental(),
		WithNetCache(64, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(41))
	users := []Point{Pt(0.42, 0.40), Pt(0.45, 0.44), Pt(0.40, 0.46)}
	g, err := s.Register(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 3 {
		t.Fatalf("group size %d", g.Size())
	}
	meeting := g.MeetingPoint()
	if meeting == (Point{}) {
		t.Fatal("zero meeting point after registration")
	}
	for step := 0; step < 40; step++ {
		for i := range users {
			users[i] = Pt(
				users[i].X+(rng.Float64()-0.5)*0.003,
				users[i].Y+(rng.Float64()-0.5)*0.003,
			)
		}
		if err := g.Update(users, nil); err != nil {
			t.Fatal(err)
		}
		regions := g.Regions()
		if len(regions) != len(users) {
			t.Fatalf("step %d: %d regions for %d users", step, len(regions), len(users))
		}
		for i, r := range regions {
			if r.Net == nil {
				t.Fatalf("step %d: region %d is not a network region", step, i)
			}
			// The member's on-network position must lie inside her region:
			// moving along the reported location's snapped roads cannot
			// escape unnoticed.
			enc := EncodeRegion(r)
			if len(enc) == 0 || enc[0] != 'N' {
				t.Fatalf("step %d: region %d encoded with tag %q", step, i, enc[:1])
			}
			dec, err := DecodeRegion(enc)
			if err != nil {
				t.Fatal(err)
			}
			if !dec.Net.EqualRegion(r.Net) {
				t.Fatalf("step %d: region %d round trip changed the region", step, i)
			}
		}
	}
	if g.Updates() < 40 {
		t.Fatalf("only %d updates recorded", g.Updates())
	}
}

// TestNetRangeServerParallel hammers a network-backed incremental server
// from many goroutines; run with -race.
func TestNetRangeServerParallel(t *testing.T) {
	net := testRoadNet(t)
	s, err := NewServer(nil,
		WithRoadNetwork(net, netPOINodes(net, 9)),
		WithIncremental(),
		WithNetCache(128, 8),
		WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const groups, writers, rounds = 12, 6, 10
	gs := make([]*Group, groups)
	for i := range gs {
		base := Pt(0.2+0.05*float64(i%5), 0.2+0.05*float64(i/5))
		g, err := s.Register([]Point{base, Pt(base.X+0.02, base.Y+0.01)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		gs[i] = g
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				g := gs[rng.Intn(groups)]
				switch rng.Intn(3) {
				case 0:
					locs := []Point{
						Pt(0.2+0.6*rng.Float64(), 0.2+0.6*rng.Float64()),
						Pt(0.2+0.6*rng.Float64(), 0.2+0.6*rng.Float64()),
					}
					if err := g.Update(locs, nil); err != nil {
						t.Error(err)
						return
					}
				case 1:
					g.NeedsUpdate(0, Pt(rng.Float64(), rng.Float64()))
				default:
					if regions := g.Regions(); len(regions) != 2 {
						t.Errorf("got %d regions", len(regions))
						return
					}
				}
			}
		}(int64(100 + w))
	}
	wg.Wait()
}

// TestNetRegionProtoInterop pins that the protocol layer ships network
// regions with the same bytes as the public codec and decodes them back.
func TestNetRegionProtoInterop(t *testing.T) {
	net := testRoadNet(t)
	s, err := NewServer(nil, WithRoadNetwork(net, netPOINodes(net, 9)))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	users := []Point{Pt(0.5, 0.5), Pt(0.53, 0.48)}
	_, regions, _, err := s.Plan(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range regions {
		pub := EncodeRegion(r)
		wire := proto.EncodeRegion(r)
		if !bytes.Equal(pub, wire) {
			t.Fatalf("region %d: public and proto encodings differ", i)
		}
		dec, err := proto.DecodeRegion(wire)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Net == nil || !dec.Net.EqualRegion(r.Net) {
			t.Fatalf("region %d: proto round trip changed the region", i)
		}
		if _, err := proto.DecodeRegion(wire[:len(wire)-3]); err == nil {
			t.Fatalf("region %d: truncated payload accepted", i)
		}
	}
}
