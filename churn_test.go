package mpn

import (
	"sync"
	"testing"
)

// TestServerPOIChurn exercises the public mutation API end to end:
// inserts and deletes change what groups see, batched mutations are
// atomic, validation failures apply nothing, and a cached server under
// localized churn keeps serving exact plans while distant cache entries
// survive.
func TestServerPOIChurn(t *testing.T) {
	s, err := NewServer(testPOIs(600, 41),
		WithTileLimit(6), WithBuffer(20),
		WithIncremental(), WithSharedGNNCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	users := []Point{Pt(0.4, 0.4), Pt(0.42, 0.39)}
	g, err := s.Register(users, nil)
	if err != nil {
		t.Fatal(err)
	}

	// An insert between the users must become the optimum at the next
	// update.
	id := s.InsertPOI(Pt(0.41, 0.395))
	if id != 600 || s.NumPOIs() != 601 {
		t.Fatalf("id=%d NumPOIs=%d", id, s.NumPOIs())
	}
	if err := g.Update(users, nil); err != nil {
		t.Fatal(err)
	}
	if mp := g.MeetingPoint(); mp != Pt(0.41, 0.395) {
		t.Fatalf("inserted POI not the meeting point: %v", mp)
	}

	// Deleting it must hand the optimum back to the original set.
	if !s.DeletePOI(id) {
		t.Fatal("DeletePOI failed")
	}
	if s.DeletePOI(id) {
		t.Fatal("double delete succeeded")
	}
	if err := g.Update(users, nil); err != nil {
		t.Fatal(err)
	}
	if mp := g.MeetingPoint(); mp == Pt(0.41, 0.395) {
		t.Fatal("deleted POI still the meeting point")
	}

	// Batched mutation: applied atomically, ids returned in order.
	ids, err := s.UpdatePOIs([]Point{Pt(0.1, 0.1), Pt(0.9, 0.9)}, []int{0, 1})
	if err != nil || len(ids) != 2 || ids[0] != 601 || ids[1] != 602 {
		t.Fatalf("UpdatePOIs ids=%v err=%v", ids, err)
	}
	if s.NumPOIs() != 600 {
		t.Fatalf("NumPOIs=%d after balanced batch", s.NumPOIs())
	}

	// Invalid batches are rejected as a whole.
	if _, err := s.UpdatePOIs([]Point{Pt(0.5, 0.5)}, []int{0}); err == nil {
		t.Fatal("delete of already-deleted id accepted")
	}
	if _, err := s.UpdatePOIs(nil, []int{10, 10}); err == nil {
		t.Fatal("duplicate delete ids accepted")
	}
	if s.NumPOIs() != 600 {
		t.Fatalf("rejected batches changed NumPOIs: %d", s.NumPOIs())
	}
}

// TestServerChurnCacheLocality: localized churn must only cool the
// cache near the mutations — a group planning far away keeps hitting
// its migrated entries.
func TestServerChurnCacheLocality(t *testing.T) {
	s, err := NewServer(testPOIs(4000, 42),
		WithTileLimit(4), WithSharedGNNCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	users := []Point{Pt(0.2, 0.2), Pt(0.21, 0.19)}
	if _, _, _, err := s.Plan(users, nil); err != nil {
		t.Fatal(err)
	}

	// Churn confined to the far corner.
	var ids []int
	for i := 0; i < 10; i++ {
		got, err := s.UpdatePOIs([]Point{Pt(0.9+0.01*float64(i), 0.9)}, ids)
		if err != nil {
			t.Fatal(err)
		}
		ids = got
	}

	before, _ := s.GNNCacheStats()
	if _, _, _, err := s.Plan(users, nil); err != nil {
		t.Fatal(err)
	}
	after, ok := s.GNNCacheStats()
	if !ok {
		t.Fatal("cache stats unavailable")
	}
	if after.Hits <= before.Hits {
		t.Fatalf("far-away churn cooled the local entry: before %+v after %+v", before, after)
	}
	if after.ChurnMigrated == 0 {
		t.Fatalf("no entries migrated under churn: %+v", after)
	}
}

// TestServerChurnConcurrent races the public mutation API against
// group updates; meaningful mainly under -race.
func TestServerChurnConcurrent(t *testing.T) {
	s, err := NewServer(testPOIs(1000, 43),
		WithTileLimit(4), WithBuffer(10),
		WithIncremental(), WithSharedGNNCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	users := []Point{Pt(0.5, 0.5), Pt(0.51, 0.49), Pt(0.49, 0.52)}
	g, err := s.Register(users, nil)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if err := g.Update(users, nil); err != nil {
				t.Errorf("update: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		var last int
		for i := 0; i < 40; i++ {
			var del []int
			if last != 0 {
				del = []int{last}
			}
			ids, err := s.UpdatePOIs([]Point{Pt(0.8, 0.2)}, del)
			if err != nil {
				t.Errorf("mutate: %v", err)
				return
			}
			last = ids[0]
		}
	}()
	wg.Wait()

	if err := g.Update(users, nil); err != nil {
		t.Fatal(err)
	}
	for i, u := range users {
		if !g.Region(i).Contains(u) {
			t.Fatalf("region %d misses its user after churn", i)
		}
	}
}
