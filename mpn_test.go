package mpn

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func testPOIs(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(rng.Float64(), rng.Float64())
	}
	return pts
}

func TestNewServerDefaults(t *testing.T) {
	s, err := NewServer(testPOIs(500, 1))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPOIs() != 500 {
		t.Fatalf("NumPOIs=%d", s.NumPOIs())
	}
}

func TestNewServerErrors(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Fatal("empty POI set accepted")
	}
	bad := []Option{
		WithMethod(Method(99)),
		WithAggregate(Aggregate(99)),
		WithTileLimit(0),
		WithSplitLevel(-1),
		WithBuffer(-1),
		WithTheta(0),
		WithTheta(4),
	}
	for i, o := range bad {
		if _, err := NewServer(testPOIs(5, 2), o); err == nil {
			t.Fatalf("bad option %d accepted", i)
		}
	}
}

func TestRegisterAndUpdateLifecycle(t *testing.T) {
	for _, method := range []Method{Circle, Tile, TileDirected} {
		s, err := NewServer(testPOIs(800, 3),
			WithMethod(method), WithTileLimit(6), WithBuffer(20))
		if err != nil {
			t.Fatal(err)
		}
		users := []Point{Pt(0.2, 0.2), Pt(0.3, 0.25), Pt(0.25, 0.35)}
		g, err := s.Register(users, nil)
		if err != nil {
			t.Fatal(err)
		}
		if g.Size() != 3 || g.Updates() != 1 {
			t.Fatalf("%v: size=%d updates=%d", method, g.Size(), g.Updates())
		}
		mp := g.MeetingPoint()
		if mp == (Point{}) {
			t.Fatalf("%v: zero meeting point", method)
		}
		for i, u := range users {
			if !g.Region(i).Contains(u) {
				t.Fatalf("%v: region %d misses its user", method, i)
			}
			if g.NeedsUpdate(i, u) {
				t.Fatalf("%v: in-region location flagged", method)
			}
		}
		// A far-away location must trigger.
		if !g.NeedsUpdate(0, Pt(0.9, 0.9)) {
			t.Fatalf("%v: escape not detected", method)
		}
		// Out-of-range index is conservative.
		if !g.NeedsUpdate(99, users[0]) {
			t.Fatal("bad index should report needs-update")
		}
		// Update with moved users.
		moved := []Point{Pt(0.5, 0.5), Pt(0.55, 0.5), Pt(0.5, 0.55)}
		if err := g.Update(moved, nil); err != nil {
			t.Fatal(err)
		}
		if g.Updates() != 2 {
			t.Fatalf("updates=%d", g.Updates())
		}
		if err := g.Update(moved[:2], nil); err == nil {
			t.Fatal("wrong group size accepted")
		}
	}
}

func TestRegisterEmpty(t *testing.T) {
	s, _ := NewServer(testPOIs(10, 4))
	if _, err := s.Register(nil, nil); err != ErrNoGroup {
		t.Fatalf("want ErrNoGroup got %v", err)
	}
	if _, _, _, err := s.Plan(nil, nil); err != ErrNoGroup {
		t.Fatalf("want ErrNoGroup got %v", err)
	}
}

func TestMeetingPointIsOptimal(t *testing.T) {
	pois := testPOIs(400, 5)
	users := []Point{Pt(0.4, 0.4), Pt(0.6, 0.6)}

	maxServer, _ := NewServer(pois, WithAggregate(MinimizeMax), WithMethod(Circle))
	mp, _, _, err := maxServer.Plan(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	var bestP Point
	for _, p := range pois {
		d := math.Max(p.Dist(users[0]), p.Dist(users[1]))
		if d < best {
			best, bestP = d, p
		}
	}
	if mp != bestP {
		t.Fatalf("max meeting point %v want %v", mp, bestP)
	}

	sumServer, _ := NewServer(pois, WithAggregate(MinimizeSum), WithMethod(Circle))
	mp, _, _, err = sumServer.Plan(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	best = math.Inf(1)
	for _, p := range pois {
		d := p.Dist(users[0]) + p.Dist(users[1])
		if d < best {
			best, bestP = d, p
		}
	}
	if mp != bestP {
		t.Fatalf("sum meeting point %v want %v", mp, bestP)
	}
}

func TestDirectedUsesHeadings(t *testing.T) {
	s, err := NewServer(testPOIs(600, 6), WithMethod(TileDirected), WithTileLimit(8))
	if err != nil {
		t.Fatal(err)
	}
	users := []Point{Pt(0.3, 0.3), Pt(0.4, 0.35)}
	dirs := []Direction{{Angle: 0, Theta: math.Pi / 4}, {Angle: math.Pi / 2, Theta: math.Pi / 4}}
	g, err := s.Register(users, dirs)
	if err != nil {
		t.Fatal(err)
	}
	// The region should extend farther along the heading than against it.
	r := g.Region(0)
	br := r.BoundingRect()
	forward := br.Max.X - users[0].X
	backward := users[0].X - br.Min.X
	if forward < backward {
		t.Fatalf("directed region not biased toward heading: fwd=%v back=%v", forward, backward)
	}
}

func TestEncodeDecodeRegion(t *testing.T) {
	s, _ := NewServer(testPOIs(500, 7), WithMethod(TileDirected), WithTileLimit(6))
	users := []Point{Pt(0.5, 0.5), Pt(0.52, 0.51)}
	g, err := s.Register(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range users {
		r := g.Region(i)
		enc := EncodeRegion(r)
		dec, err := DecodeRegion(enc)
		if err != nil {
			t.Fatal(err)
		}
		if dec.NumTiles() != r.NumTiles() {
			t.Fatalf("tile count %d != %d", dec.NumTiles(), r.NumTiles())
		}
		// Decoded (inward-quantized) region stays within the original's
		// bounding box and still contains the user's location (which sits
		// strictly inside the seed tile).
		if !r.BoundingRect().ContainsRect(dec.BoundingRect()) {
			t.Fatal("decoded region escapes original bounds")
		}
		if !dec.Contains(users[i]) {
			t.Fatal("decoded region lost the user location")
		}
	}
	// Circle round trip is exact.
	cs, _ := NewServer(testPOIs(500, 8), WithMethod(Circle))
	cg, err := cs.Register(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := cg.Region(0)
	dec, err := DecodeRegion(EncodeRegion(r))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Circle != r.Circle {
		t.Fatalf("circle round trip %v != %v", dec.Circle, r.Circle)
	}
	if _, err := DecodeRegion([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestGroupConcurrency(t *testing.T) {
	s, _ := NewServer(testPOIs(500, 9), WithMethod(Circle))
	users := []Point{Pt(0.4, 0.4), Pt(0.5, 0.5)}
	g, err := s.Register(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for k := 0; k < 50; k++ {
				if rng.Intn(2) == 0 {
					_ = g.MeetingPoint()
					_ = g.NeedsUpdate(0, Pt(rng.Float64(), rng.Float64()))
					_ = g.Regions()
					_ = g.Stats()
				} else {
					locs := []Point{
						Pt(rng.Float64(), rng.Float64()),
						Pt(rng.Float64(), rng.Float64()),
					}
					if err := g.Update(locs, nil); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if g.Updates() < 2 {
		t.Fatal("no concurrent updates recorded")
	}
}

func TestStringers(t *testing.T) {
	if MinimizeMax.String() != "minimize-max" || MinimizeSum.String() != "minimize-sum" {
		t.Fatal("Aggregate strings")
	}
	if Circle.String() != "circle" || Tile.String() != "tile" || TileDirected.String() != "tile-directed" {
		t.Fatal("Method strings")
	}
}

func TestWithIncrementalLifecycle(t *testing.T) {
	for _, method := range []Method{Circle, Tile, TileDirected} {
		s, err := NewServer(testPOIs(800, 5),
			WithMethod(method), WithTileLimit(6), WithBuffer(20), WithIncremental())
		if err != nil {
			t.Fatal(err)
		}
		sub := s.Subscribe(16)
		users := []Point{Pt(0.4, 0.4), Pt(0.45, 0.42), Pt(0.42, 0.46)}
		g, err := s.Register(users, nil)
		if err != nil {
			t.Fatal(err)
		}
		if n := <-sub.C; n.Outcome != ReplanFull || n.Seq != 1 {
			t.Fatalf("%v registration: %+v", method, n)
		}

		// A duplicate report keeps the whole plan.
		if err := g.Update(users, nil); err != nil {
			t.Fatal(err)
		}
		if n := <-sub.C; n.Outcome != ReplanKept {
			t.Fatalf("%v duplicate report: outcome %v", method, n.Outcome)
		}
		for i, u := range users {
			if g.NeedsUpdate(i, u) {
				t.Fatalf("%v: kept plan misses user %d", method, i)
			}
		}

		// The forced-full escape hatch replans from scratch regardless,
		// on both the synchronous and the asynchronous path.
		if err := g.UpdateFull(users, nil); err != nil {
			t.Fatal(err)
		}
		if n := <-sub.C; n.Outcome != ReplanFull {
			t.Fatalf("%v forced full: outcome %v", method, n.Outcome)
		}
		if err := g.UpdateFull(users[:1], nil); err == nil {
			t.Fatalf("%v: UpdateFull accepted a short location slice", method)
		}
		if err := g.SubmitUpdateFull(users, nil); err != nil {
			t.Fatal(err)
		}
		if n := <-sub.C; n.Outcome != ReplanFull {
			t.Fatalf("%v forced full (async): outcome %v", method, n.Outcome)
		}
		if err := g.SubmitUpdateFull(users[:1], nil); err == nil {
			t.Fatalf("%v: SubmitUpdateFull accepted a short location slice", method)
		}

		// A whole-group teleport churns the result set: full replan with
		// fresh regions around the new locations.
		moved := []Point{Pt(0.72, 0.7), Pt(0.76, 0.72), Pt(0.74, 0.75)}
		if err := g.Update(moved, nil); err != nil {
			t.Fatal(err)
		}
		n := <-sub.C
		if n.Outcome != ReplanFull {
			t.Fatalf("%v teleport: outcome %v", method, n.Outcome)
		}
		for i, u := range moved {
			if !n.Regions[i].Contains(u) {
				t.Fatalf("%v teleport region %d misses its user", method, i)
			}
		}
		sub.Close()
		s.Close()
	}
}
