// Command trajgen emits synthetic trajectories as CSV (id,t,x,y per line)
// using either the GeoLife-style waypoint model or the Oldenburg-style
// road-network model.
//
// Usage:
//
//	trajgen [-model geolife|oldenburg] [-num 60] [-steps 10000]
//	        [-speed 0.0004] [-seed 7] [-o FILE]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"mpn/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trajgen: ")

	model := flag.String("model", "geolife", "mobility model: geolife or oldenburg")
	num := flag.Int("num", 60, "number of trajectories")
	steps := flag.Int("steps", 10000, "timestamps per trajectory")
	speed := flag.Float64("speed", 0.0004, "speed limit V (distance per timestamp)")
	seed := flag.Int64("seed", 7, "random seed")
	outPath := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	cfg := workload.SetConfig{
		NumTrajectories: *num, Steps: *steps, Speed: *speed, Seed: *seed,
	}
	var set *workload.TrajectorySet
	var err error
	switch *model {
	case "geolife":
		set, err = workload.GenerateGeoLifeSet(cfg)
	case "oldenburg":
		set, err = workload.GenerateOldenburgSet(cfg)
	default:
		log.Fatalf("unknown model %q", *model)
	}
	if err != nil {
		log.Fatal(err)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	fmt.Fprintln(w, "id,t,x,y")
	for id, tr := range set.Trajs {
		for t, p := range tr {
			fmt.Fprintf(w, "%d,%d,%.9f,%.9f\n", id, t, p.X, p.Y)
		}
	}
}
