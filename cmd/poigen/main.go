// Command poigen emits a synthetic POI data set as CSV (x,y per line),
// mimicking the clustered density of the paper's pocketgpsworld.com
// snapshot.
//
// Usage:
//
//	poigen [-n 21287] [-clusters 40] [-sigma 0.03] [-uniform 0.25] [-seed 42] [-o FILE]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"mpn/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("poigen: ")

	n := flag.Int("n", workload.DefaultPOICount, "number of POIs")
	clusters := flag.Int("clusters", 40, "number of city clusters")
	sigma := flag.Float64("sigma", 0.03, "cluster standard deviation")
	uniform := flag.Float64("uniform", 0.25, "uniform background fraction")
	seed := flag.Int64("seed", 42, "random seed")
	outPath := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	pts, err := workload.GeneratePOIs(workload.POIConfig{
		N: *n, Clusters: *clusters, Sigma: *sigma, UniformFrac: *uniform, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	fmt.Fprintln(w, "x,y")
	for _, p := range pts {
		fmt.Fprintf(w, "%.9f,%.9f\n", p.X, p.Y)
	}
}
