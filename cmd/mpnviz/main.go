// Command mpnviz renders the safe regions of one meeting-point
// computation as ASCII art, making the shapes of Sections 4–5 visible:
// the rmax circles, the tile regions grown around each user (with their
// quarter-tile fringes), and the directed variant's travel-cone bias.
//
// Usage:
//
//	mpnviz [-method circle|tile|tiled] [-m 3] [-n 4000] [-alpha 20]
//	       [-seed 7] [-width 72]
//
// Legend: digits 1..m mark user locations, '*' the optimal meeting point,
// '·' POIs, and each user's region is shaded with her own letter
// (a, b, c, …).
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"mpn/internal/core"
	"mpn/internal/geom"
	"mpn/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mpnviz: ")

	method := flag.String("method", "tiled", "circle, tile, or tiled")
	m := flag.Int("m", 3, "group size")
	n := flag.Int("n", 4000, "POI count")
	alpha := flag.Int("alpha", 20, "tile limit α")
	seed := flag.Int64("seed", 7, "random seed")
	width := flag.Int("width", 72, "viewport width in characters")
	flag.Parse()

	poiCfg := workload.DefaultPOIConfig()
	poiCfg.N = *n
	poiCfg.Seed = *seed
	pois, err := workload.GeneratePOIs(poiCfg)
	if err != nil {
		log.Fatal(err)
	}

	opts := core.DefaultOptions()
	opts.TileLimit = *alpha
	opts.Directed = *method == "tiled"
	planner, err := core.NewPlanner(pois, opts)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(*seed))
	center := geom.Pt(0.3+0.4*rng.Float64(), 0.3+0.4*rng.Float64())
	users := make([]geom.Point, *m)
	dirs := make([]core.Direction, *m)
	for i := range users {
		users[i] = geom.Pt(
			center.X+(rng.Float64()-0.5)*0.06,
			center.Y+(rng.Float64()-0.5)*0.06,
		)
		dirs[i] = core.Direction{Angle: rng.Float64() * 2 * math.Pi, Theta: math.Pi / 3}
	}

	kind := core.KindTiles
	if *method == "circle" {
		kind = core.KindCircle
	}
	ws := core.GetWorkspace()
	plan, _, err := planner.Plan(ws, core.PlanRequest{Kind: kind, Users: users, Dirs: dirs})
	core.PutWorkspace(ws)
	if err != nil {
		log.Fatal(err)
	}

	// Viewport: the union of all regions plus margin.
	view := plan.Regions[0].BoundingRect()
	for _, r := range plan.Regions[1:] {
		view = view.Union(r.BoundingRect())
	}
	view = view.UnionPoint(plan.Best.Item.P)
	margin := 0.15 * math.Max(view.Width(), view.Height())
	view.Min = view.Min.Add(geom.Pt(-margin, -margin))
	view.Max = view.Max.Add(geom.Pt(margin, margin))

	w := *width
	h := int(float64(w) * view.Height() / view.Width() / 2) // terminal cells are ~2:1
	if h < 8 {
		h = 8
	}
	grid := make([][]byte, h)
	for y := range grid {
		grid[y] = make([]byte, w)
		for x := range grid[y] {
			grid[y][x] = ' '
		}
	}
	cell := func(p geom.Point) (int, int, bool) {
		cx := int((p.X - view.Min.X) / view.Width() * float64(w))
		cy := int((p.Y - view.Min.Y) / view.Height() * float64(h))
		if cx < 0 || cx >= w || cy < 0 || cy >= h {
			return 0, 0, false
		}
		return cx, h - 1 - cy, true // y grows upward on screen
	}

	// Shade regions (sampling the center of every character cell).
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			p := geom.Pt(
				view.Min.X+(float64(x)+0.5)/float64(w)*view.Width(),
				view.Min.Y+(float64(h-1-y)+0.5)/float64(h)*view.Height(),
			)
			for i, r := range plan.Regions {
				if r.Contains(p) {
					if grid[y][x] == ' ' {
						grid[y][x] = byte('a' + i%26)
					} else {
						grid[y][x] = '+' // overlap of two users' regions
					}
				}
			}
		}
	}
	// POIs.
	for _, p := range pois {
		if cx, cy, ok := cell(p); ok && grid[cy][cx] == ' ' {
			grid[cy][cx] = '.'
		}
	}
	// Users and the meeting point.
	for i, u := range users {
		if cx, cy, ok := cell(u); ok {
			grid[cy][cx] = byte('1' + i%9)
		}
	}
	if cx, cy, ok := cell(plan.Best.Item.P); ok {
		grid[cy][cx] = '*'
	}

	fmt.Printf("method=%s m=%d n=%d  meeting=* at %v\n", *method, *m, len(pois), plan.Best.Item.P)
	fmt.Printf("viewport %v\n", view)
	for _, row := range grid {
		fmt.Println(string(row))
	}
	for i, r := range plan.Regions {
		fmt.Printf("user %d (%c): %v, heading %.2f rad\n", i+1, 'a'+i%26, r, dirs[i].Angle)
	}
}
