// Command benchgate is the benchmark-regression gate: it compares a
// freshly produced cmd/mpnbench -json report against the committed
// baseline (BENCH_plan.json) and exits non-zero when any series
// regresses beyond tolerance — more than -tol relative ns/op increase
// (default 0.25), or any allocs/op increase at all (allocation counts
// are deterministic, so even +1 is a real regression; the churn_*
// series alone get a slack of 2, see allocSlack). It also enforces five
// machine-independent in-report bounds on the current report: the delta
// notification protocol's wire-byte reduction (enforceDeltaReduction),
// the shared cache's hit rate under localized POI churn
// (enforceChurnHitRate), the road-network backend's speedup over the
// per-member full-SSSP oracle (enforceNetSpeedup), the WAL journal's
// overhead ceiling on the steady-state update path
// (enforceDurableOverhead), and the hot-standby replication overhead
// ceiling on that same path (enforceReplOverhead).
//
// The baseline is typically produced on a different machine than the
// gate run (a developer box vs a CI runner), so raw ns/op ratios mostly
// measure hardware. With -normalize (the default) every per-series ratio
// is divided by the median of all ratios first: a uniformly slower
// machine scales every series alike and normalizes away, while a
// regression in one code path sticks out against the others. The median
// (rather than a mean) keeps a large genuine improvement or regression
// in a minority of series from dragging the scale and flagging the
// untouched majority. The remaining blind spot is a uniform shift in
// code shared by every series, which normalization would also cancel —
// so the scale itself is bounded, symmetrically: deviating from 1 by
// more than -warn-scale in either direction prints a loud warning, more
// than -max-scale fails (hardware accounts for a few ×; more than that
// is the code, or a baseline overdue for a refresh). Disable
// normalization (-normalize=false) when baseline and current come from
// the same machine. The allocs/op half of the gate is
// machine-independent and always exact.
//
// Usage:
//
//	benchgate -baseline BENCH_plan.json -current bench_current.json [-tol 0.25]
//
// Series are matched by (name, group_size). A series present in the
// baseline but missing from the current report fails the gate (coverage
// must not silently shrink); a series only in the current report is
// reported but passes (it has no baseline yet — refresh the baseline to
// start gating it).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"mpn/internal/benchfmt"
)

type key struct {
	name string
	m    int
}

func load(path string) (map[key]benchfmt.Series, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchfmt.Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[key]benchfmt.Series, len(r.Series))
	for _, s := range r.Series {
		out[key{s.Name, s.GroupSize}] = s
	}
	return out, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_plan.json", "committed baseline report")
	currentPath := flag.String("current", "", "freshly produced report to gate")
	tol := flag.Float64("tol", 0.25, "maximum tolerated relative ns/op regression")
	normalize := flag.Bool("normalize", true, "divide ns/op ratios by their median to cancel uniform machine-speed differences")
	warnScale := flag.Float64("warn-scale", 1.5, "warn when the machine-speed scale (or its inverse) exceeds this — a uniform shift could be hiding in the normalization")
	maxScale := flag.Float64("max-scale", 3.0, "fail when the machine-speed scale (or its inverse) exceeds this — a uniform shift that large is the code or a stale baseline, not hardware")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	// Machine-speed scale: the median of cur/base ns ratios over the
	// series present in both reports. 1.0 when not normalizing.
	scale := 1.0
	if *normalize {
		var ratios []float64
		for k, base := range baseline {
			if cur, ok := current[k]; ok && base.NsPerOp > 0 && cur.NsPerOp > 0 {
				ratios = append(ratios, cur.NsPerOp/base.NsPerOp)
			}
		}
		if len(ratios) > 0 {
			sort.Float64s(ratios)
			mid := len(ratios) / 2
			if len(ratios)%2 == 1 {
				scale = ratios[mid]
			} else {
				scale = (ratios[mid-1] + ratios[mid]) / 2
			}
		}
		fmt.Printf("machine-speed scale (median cur/base): %.3f — deltas below are relative to it\n", scale)
	}

	failures := 0
	if dev := math.Max(scale, 1/scale); dev > *maxScale {
		fmt.Printf("FAIL: scale %.2f deviates from 1 beyond -max-scale %.2f — most series shifted together; that is the code (or a stale baseline), not the runner\n",
			scale, *maxScale)
		failures++
	} else if dev > *warnScale {
		fmt.Printf("WARNING: scale %.2f deviates from 1 beyond -warn-scale %.2f — a uniform shift could be hiding in the normalization; compare on matching hardware or refresh the baseline\n",
			scale, *warnScale)
	}
	fmt.Printf("%-22s %3s  %14s %14s %8s  %s\n",
		"series", "m", "base ns/op", "cur ns/op", "delta", "allocs base→cur")
	for _, base := range sortedSeries(baseline) {
		k := key{base.Name, base.GroupSize}
		cur, ok := current[k]
		if !ok {
			fmt.Printf("%-22s %3d  MISSING from current report\n", base.Name, base.GroupSize)
			failures++
			continue
		}
		if base.WireBytes > 0 {
			// Wire-byte series are deterministic and machine-independent:
			// no normalization, and only a small slack for frame-size
			// drift from workload perturbations.
			growth := cur.WireBytes/base.WireBytes - 1
			verdict := ""
			if growth > wireBytesTol {
				verdict = fmt.Sprintf("  FAIL wire bytes +%.0f%% > %.0f%%", 100*growth, 100*wireBytesTol)
				failures++
			}
			fmt.Printf("%-22s %3d  %11.0f B  %11.0f B %+7.1f%%%s\n",
				base.Name, base.GroupSize, base.WireBytes, cur.WireBytes, 100*growth, verdict)
			continue
		}
		delta := 0.0
		if base.NsPerOp > 0 {
			delta = cur.NsPerOp/base.NsPerOp/scale - 1
		}
		verdict := ""
		if delta > *tol {
			verdict = fmt.Sprintf("  FAIL ns/op +%.0f%% > %.0f%%", 100*delta, 100**tol)
			failures++
		}
		if cur.AllocsPerOp > base.AllocsPerOp+allocSlack(base.Name) {
			verdict += fmt.Sprintf("  FAIL allocs/op %d→%d", base.AllocsPerOp, cur.AllocsPerOp)
			failures++
		}
		fmt.Printf("%-22s %3d  %14.0f %14.0f %+7.1f%%  %d→%d%s\n",
			base.Name, base.GroupSize, base.NsPerOp, cur.NsPerOp, 100*delta,
			base.AllocsPerOp, cur.AllocsPerOp, verdict)
	}
	for _, cur := range sortedSeries(current) {
		if _, ok := baseline[key{cur.Name, cur.GroupSize}]; !ok {
			fmt.Printf("%-22s %3d  new series (no baseline; refresh BENCH_plan.json to gate it)\n",
				cur.Name, cur.GroupSize)
		}
	}
	failures += enforceDeltaReduction(current)
	failures += enforceChurnHitRate(current)
	failures += enforceNetSpeedup(current)
	failures += enforceDurableOverhead(current)
	failures += enforceReplOverhead(current)
	if failures > 0 {
		fmt.Printf("\nbenchgate: %d regression(s) beyond tolerance\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nbenchgate: all series within tolerance")
}

// wireBytesTol is the slack on deterministic wire-byte series (region
// shapes shift slightly when the planner workload is perturbed).
const wireBytesTol = 0.10

// minDeltaReduction is the enforced steady-state win of the delta
// notification protocol at the largest benchmarked group size: the
// full-protocol bytes per kept-path notification round must be at least
// this many times the delta protocol's.
const (
	minDeltaReduction  = 10.0
	deltaReductionAtM  = 6
	notifyBytesFullSer = "notify_bytes_full"
	notifyBytesDeltaSr = "notify_bytes_delta"
)

// enforceDeltaReduction checks the current report's notify_bytes series
// pair: at m=6 the delta protocol must keep its ≥10× reduction. Returns
// the number of failures.
func enforceDeltaReduction(current map[key]benchfmt.Series) int {
	failures := 0
	for m := 2; m <= deltaReductionAtM; m++ {
		full, okF := current[key{notifyBytesFullSer, m}]
		delta, okD := current[key{notifyBytesDeltaSr, m}]
		if !okF || !okD || delta.WireBytes <= 0 {
			continue
		}
		ratio := full.WireBytes / delta.WireBytes
		status := ""
		if m == deltaReductionAtM && ratio < minDeltaReduction {
			status = fmt.Sprintf("  FAIL reduction %.1fx < %.0fx", ratio, minDeltaReduction)
			failures++
		}
		fmt.Printf("notify delta reduction m=%d: %.0f B → %.0f B (%.1fx)%s\n",
			m, full.WireBytes, delta.WireBytes, ratio, status)
	}
	return failures
}

// allocSlack returns the allocs/op headroom a series gets on top of its
// baseline. The churn_* series interleave mutation batches with the
// measured iterations, so their allocs/op is an amortized average whose
// integer rounding can wobble with the harness-chosen iteration count —
// a slack of 2 absorbs the rounding without hiding a real per-op leak
// (one new allocation on the plan path shows up 8×, not 1×). Every
// other series is exactly repeatable and gets none.
func allocSlack(name string) int64 {
	if strings.HasPrefix(name, "churn_") {
		return 2
	}
	return 0
}

// minChurnHitRate is the enforced shared-cache hit-rate floor of the
// churn_plan_cached series: under localized POI churn the dirty-tile
// invalidation must keep distant cache entries alive, so the planning
// group far from the mutations keeps hitting. A wholesale
// version-mismatch invalidation drives this to ~12% (one miss per
// mutation batch, churnEvery-1 hits between batches at best — in
// practice every lookup misses because the version never stops moving);
// locality-aware migration keeps it near 100%.
const (
	minChurnHitRate   = 0.80
	churnCachedSeries = "churn_plan_cached"
)

// enforceChurnHitRate checks the current report's churn_plan_cached
// cache counters against the hit-rate floor. Returns the number of
// failures.
func enforceChurnHitRate(current map[key]benchfmt.Series) int {
	failures := 0
	for _, s := range sortedSeries(current) {
		if s.Name != churnCachedSeries {
			continue
		}
		total := s.CacheHits + s.CacheMisses + s.CacheRejected
		if total == 0 {
			fmt.Printf("churn cache hit rate m=%d: no lookups recorded  FAIL (counters missing from report)\n", s.GroupSize)
			failures++
			continue
		}
		rate := float64(s.CacheHits) / float64(total)
		status := ""
		if rate < minChurnHitRate {
			status = fmt.Sprintf("  FAIL hit rate %.1f%% < %.0f%%", 100*rate, 100*minChurnHitRate)
			failures++
		}
		fmt.Printf("churn cache hit rate m=%d: %.1f%% (%d hit / %d miss / %d rejected)%s\n",
			s.GroupSize, 100*rate, s.CacheHits, s.CacheMisses, s.CacheRejected, status)
	}
	return failures
}

// minNetSpeedup is the enforced win of the ALT landmark-pruned network
// backend over the per-member full-SSSP oracle at the default network
// size. Both series run in the same process on the same machine, so the
// ratio is machine-independent; losing it means the landmark pruning (or
// the truncated resumable search behind it) stopped cutting work.
const (
	minNetSpeedup  = 5.0
	netPlanSeries  = "net_plan"
	netNaiveSeries = "net_plan_naive"
)

// enforceNetSpeedup checks the current report's net_plan series against
// the naive-oracle floor. Returns the number of failures.
func enforceNetSpeedup(current map[key]benchfmt.Series) int {
	failures := 0
	for _, s := range sortedSeries(current) {
		if s.Name != netPlanSeries {
			continue
		}
		naive, ok := current[key{netNaiveSeries, s.GroupSize}]
		if !ok || s.NsPerOp <= 0 {
			fmt.Printf("net plan speedup m=%d: naive baseline missing  FAIL\n", s.GroupSize)
			failures++
			continue
		}
		ratio := naive.NsPerOp / s.NsPerOp
		status := ""
		if ratio < minNetSpeedup {
			status = fmt.Sprintf("  FAIL speedup %.1fx < %.0fx", ratio, minNetSpeedup)
			failures++
		}
		fmt.Printf("net plan speedup m=%d: %.0f ns/op → %.0f ns/op (%.1fx)%s\n",
			s.GroupSize, naive.NsPerOp, s.NsPerOp, ratio, status)
	}
	return failures
}

// maxDurableOverhead is the enforced ceiling on what WAL journaling may
// cost the steady-state update path: durable_update (update_inc's exact
// workload with the group-state journal attached at fsync=interval) may
// take at most this many times update_inc's ns/op. The hook only
// encodes and enqueues — file I/O runs on the store's writer goroutine —
// so the true per-update cost is a record encode plus a channel send
// (~hundreds of ns on a multi-µs update). The ceiling is deliberately
// coarse: on shared CI runners the writer goroutine's background I/O
// adds scheduler noise well above the hook's own cost, and what the
// fence exists to catch — an fsync or compaction accidentally moved
// onto the update's critical path — is a 10×+ effect, not a 2× one.
const (
	maxDurableOverhead  = 2.0
	durableUpdateSeries = "durable_update"
	updateIncSeries     = "update_inc"
)

// enforceDurableOverhead checks the current report's durable_update
// series against the update_inc baseline at the same group size. Both
// run in the same process on the same machine, so the ratio is
// machine-independent. A missing pair fails — the durability series must
// not silently drop out of the report. Returns the number of failures.
func enforceDurableOverhead(current map[key]benchfmt.Series) int {
	failures := 0
	seen := false
	for _, s := range sortedSeries(current) {
		if s.Name != durableUpdateSeries {
			continue
		}
		seen = true
		inc, ok := current[key{updateIncSeries, s.GroupSize}]
		if !ok || inc.NsPerOp <= 0 {
			fmt.Printf("durable overhead m=%d: update_inc baseline missing  FAIL\n", s.GroupSize)
			failures++
			continue
		}
		ratio := s.NsPerOp / inc.NsPerOp
		status := ""
		if ratio > maxDurableOverhead {
			status = fmt.Sprintf("  FAIL overhead %.2fx > %.2fx", ratio, maxDurableOverhead)
			failures++
		}
		fmt.Printf("durable update overhead m=%d: %.0f ns/op → %.0f ns/op (%.2fx, ceiling %.2fx)%s\n",
			s.GroupSize, inc.NsPerOp, s.NsPerOp, ratio, maxDurableOverhead, status)
	}
	if !seen {
		fmt.Printf("durable overhead: durable_update series missing from report  FAIL\n")
		failures++
	}
	return failures
}

// maxReplOverhead is the enforced ceiling on what hot-standby
// replication may cost the steady-state update path: repl_ship
// (update_inc's exact workload with the WAL journal attached AND a live
// follower tailing the record stream over loopback, lag-bounded) may
// take at most this many times update_inc's ns/op. Shipping rides the
// store's existing stream fan-out — the update path pays the same
// encode-and-enqueue the durable fence already prices, and the shipper
// writes frames on its own goroutine — so the honest cost is the
// durable overhead plus stream-forward contention, not a wire round
// trip. The ceiling sits above maxDurableOverhead by half a turn: what
// it exists to catch is shipping leaking onto the update's critical
// path (a synchronous write or an ack wait), which is a 10×+ effect.
const (
	maxReplOverhead = 2.5
	replShipSeries  = "repl_ship"
	replLagSeries   = "repl_lag"
)

// enforceReplOverhead checks the current report's repl_ship series
// against the update_inc baseline at the same group size, same-process
// same-machine so the ratio is machine-independent. A missing repl
// series pair fails — replication coverage must not silently drop out
// of the report. Returns the number of failures.
func enforceReplOverhead(current map[key]benchfmt.Series) int {
	failures := 0
	seen := false
	for _, s := range sortedSeries(current) {
		if s.Name != replShipSeries {
			continue
		}
		seen = true
		inc, ok := current[key{updateIncSeries, s.GroupSize}]
		if !ok || inc.NsPerOp <= 0 {
			fmt.Printf("repl ship overhead m=%d: update_inc baseline missing  FAIL\n", s.GroupSize)
			failures++
			continue
		}
		ratio := s.NsPerOp / inc.NsPerOp
		status := ""
		if ratio > maxReplOverhead {
			status = fmt.Sprintf("  FAIL overhead %.2fx > %.2fx", ratio, maxReplOverhead)
			failures++
		}
		fmt.Printf("repl ship overhead m=%d: %.0f ns/op → %.0f ns/op (%.2fx, ceiling %.2fx)%s\n",
			s.GroupSize, inc.NsPerOp, s.NsPerOp, ratio, maxReplOverhead, status)
		if _, ok := current[key{replLagSeries, s.GroupSize}]; !ok {
			fmt.Printf("repl lag m=%d: repl_lag series missing from report  FAIL\n", s.GroupSize)
			failures++
		}
	}
	if !seen {
		fmt.Printf("repl ship overhead: repl_ship series missing from report  FAIL\n")
		failures++
	}
	return failures
}

// sortedSeries returns the map's series in a stable name-then-size order.
func sortedSeries(m map[key]benchfmt.Series) []benchfmt.Series {
	out := make([]benchfmt.Series, 0, len(m))
	for _, s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].GroupSize < out[j].GroupSize
	})
	return out
}
