// Command mpnsim runs a single Meeting Point Notification simulation and
// prints the full metric breakdown: update frequency, message and packet
// counts, region payload bytes, server CPU, and planner work counters.
//
// Usage:
//
//	mpnsim [-method circle|tile|tiled] [-agg max|sum] [-m 3] [-n 21287]
//	       [-steps 2000] [-speed 0.0004] [-buffer 0] [-alpha 30] [-level 2]
//	       [-dataset geolife|oldenburg] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"mpn/internal/gnn"
	"mpn/internal/sim"
	"mpn/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mpnsim: ")

	method := flag.String("method", "tiled", "safe-region method: circle, tile, or tiled")
	agg := flag.String("agg", "max", "objective: max (MPN) or sum (Sum-MPN)")
	m := flag.Int("m", 3, "user group size")
	n := flag.Int("n", workload.DefaultPOICount, "POI cardinality")
	steps := flag.Int("steps", 2000, "timestamps to simulate")
	speed := flag.Float64("speed", 0.0004, "speed limit V (distance per timestamp)")
	buffer := flag.Int("buffer", 0, "buffering parameter b (0 disables)")
	alpha := flag.Int("alpha", 30, "tile limit α")
	level := flag.Int("level", 2, "split level L")
	dataset := flag.String("dataset", "geolife", "trajectory model: geolife or oldenburg")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()

	var simMethod sim.Method
	switch *method {
	case "circle":
		simMethod = sim.MethodCircle
	case "tile":
		simMethod = sim.MethodTile
	case "tiled":
		simMethod = sim.MethodTileD
	default:
		log.Fatalf("unknown method %q", *method)
	}
	var aggregate gnn.Aggregate
	switch *agg {
	case "max":
		aggregate = gnn.Max
	case "sum":
		aggregate = gnn.Sum
	default:
		log.Fatalf("unknown aggregate %q", *agg)
	}

	poiCfg := workload.DefaultPOIConfig()
	poiCfg.N = *n
	poiCfg.Seed = *seed
	pois, err := workload.GeneratePOIs(poiCfg)
	if err != nil {
		log.Fatal(err)
	}

	setCfg := workload.SetConfig{
		NumTrajectories: *m, Steps: *steps, Speed: *speed, Seed: *seed,
	}
	var set *workload.TrajectorySet
	switch *dataset {
	case "geolife":
		set, err = workload.GenerateGeoLifeSet(setCfg)
	case "oldenburg":
		set, err = workload.GenerateOldenburgSet(setCfg)
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}
	if err != nil {
		log.Fatal(err)
	}

	cfg := sim.MethodConfig(simMethod, aggregate, *buffer)
	cfg.Core.TileLimit = *alpha
	cfg.Core.SplitLevel = *level

	fmt.Printf("config: %s on %s, m=%d, n=%d, %d steps, V=%g, α=%d, L=%d\n\n",
		sim.Describe(cfg), set.Name, *m, len(pois), *steps, *speed, *alpha, *level)

	start := time.Now()
	met, err := sim.Run(pois, set.Trajs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	fmt.Printf("timestamps:        %d\n", met.Timestamps)
	fmt.Printf("updates:           %d (%.1f per 1k timestamps)\n", met.Updates, met.UpdateFrequency())
	fmt.Printf("uplink messages:   %d\n", met.UplinkMessages)
	fmt.Printf("downlink messages: %d\n", met.DownlinkMessages)
	fmt.Printf("packets:           %d (%.1f per 1k timestamps)\n", met.Packets, met.PacketsPerK())
	fmt.Printf("region bytes:      %d\n", met.RegionBytes)
	fmt.Printf("server CPU:        %v total, %v per update\n", met.ServerCPU.Round(time.Microsecond), met.CPUPerUpdate().Round(time.Microsecond))
	fmt.Printf("wall clock:        %v\n\n", wall.Round(time.Millisecond))
	fmt.Printf("planner: %d GNN calls, %d index accesses, %d candidates, %d tile verifies, %d tiles accepted, %d rejected\n",
		met.PlanStats.GNNCalls, met.PlanStats.IndexAccesses, met.PlanStats.CandidatesChecked,
		met.PlanStats.TileVerifies, met.PlanStats.TilesAccepted, met.PlanStats.TilesRejected)
}
