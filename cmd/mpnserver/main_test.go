package main

import (
	"io"
	"log"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"mpn/internal/core"
	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/proto"
)

// e2eUser is one protocol client over a real TCP connection.
type e2eUser struct {
	client *proto.Client
	conn   net.Conn
	mu     sync.Mutex
	loc    geom.Point
	notify chan geom.Point
	runErr chan error
}

func dialUser(t *testing.T, addr string, group, user uint32, start geom.Point, opts ...proto.ClientOption) *e2eUser {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	u := &e2eUser{loc: start, notify: make(chan geom.Point, 64), runErr: make(chan error, 1)}
	u.conn = conn
	t.Cleanup(func() { conn.Close() })
	u.client, err = proto.NewClient(conn, group, user,
		func() geom.Point {
			u.mu.Lock()
			defer u.mu.Unlock()
			return u.loc
		},
		func(meeting geom.Point, _ core.SafeRegion) { u.notify <- meeting },
		opts...,
	)
	if err != nil {
		t.Fatal(err)
	}
	go func() { u.runErr <- u.client.Run() }()
	return u
}

func (u *e2eUser) setLoc(p geom.Point) {
	u.mu.Lock()
	u.loc = p
	u.mu.Unlock()
}

func (u *e2eUser) waitNotify(t *testing.T) geom.Point {
	t.Helper()
	select {
	case p := <-u.notify:
		return p
	case err := <-u.runErr:
		t.Fatalf("client stopped: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for notification")
	}
	return geom.Point{}
}

// TestEndToEndTCP drives the full engine-backed server over loopback TCP:
// a group registers, one member escapes her safe region and reports, and
// every member receives a recomputed meeting point with a re-encoded safe
// region that contains her fresh location. It runs twice: against the
// default full-replan server and against -incremental maintenance (the
// recomputed meeting point must match an independent planner run either
// way, because the incremental path recomputes the result set fresh).
func TestEndToEndTCP(t *testing.T) {
	t.Run("full", func(t *testing.T) { testEndToEndTCP(t, false) })
	t.Run("incremental", func(t *testing.T) { testEndToEndTCP(t, true) })
}

func testEndToEndTCP(t *testing.T, incremental bool) {
	rng := rand.New(rand.NewSource(7))
	pois := make([]geom.Point, 800)
	for i := range pois {
		pois[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	srv, err := newServer(serverConfig{
		pois: pois, method: "tiled", agg: "max",
		alpha: 5, buffer: 20, shards: 2, workers: 1,
		incremental: incremental,
		cacheBytes:  1 << 20, // exercise the shared GNN cache on the deployed path
		logger:      log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.serve(ln) }()
	addr := ln.Addr().String()

	starts := []geom.Point{geom.Pt(0.30, 0.30), geom.Pt(0.35, 0.32), geom.Pt(0.31, 0.36)}
	users := make([]*e2eUser, len(starts))
	for i, p := range starts {
		users[i] = dialUser(t, addr, 1, uint32(i), p)
	}
	for i, u := range users {
		if err := u.client.Register(uint32(len(users))); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
	}

	// The engine's registration plan fans out to every member.
	first := make([]geom.Point, len(users))
	for i, u := range users {
		first[i] = u.waitNotify(t)
	}
	if first[0] != first[1] || first[1] != first[2] {
		t.Fatalf("members notified of different meeting points: %v", first)
	}
	for i, u := range users {
		if u.client.NeedsUpdate(starts[i]) {
			t.Fatalf("user %d: fresh region misses her own location", i)
		}
	}

	// User 0 escapes; everyone else drifts slightly. The report triggers
	// probe → reply → engine submission → notification fan-out.
	moved := []geom.Point{geom.Pt(0.70, 0.70), geom.Pt(0.36, 0.33), geom.Pt(0.30, 0.37)}
	if !users[0].client.NeedsUpdate(moved[0]) {
		t.Fatal("far jump did not escape the safe region")
	}
	for i, u := range users {
		u.setLoc(moved[i])
	}
	if err := users[0].client.Report(); err != nil {
		t.Fatal(err)
	}
	second := make([]geom.Point, len(users))
	for i, u := range users {
		second[i] = u.waitNotify(t)
	}
	if second[0] != second[1] || second[1] != second[2] {
		t.Fatalf("post-escape meeting points diverge: %v", second)
	}

	// The recomputed meeting point must match an independent planner run
	// over the same POIs, options, and fresh locations.
	opts := core.DefaultOptions()
	opts.TileLimit = 5
	opts.Buffer = 20
	opts.Directed = true
	opts.Aggregate = gnn.Max
	planner, err := core.NewPlanner(pois, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := planner.TileMSR(moved, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second[0] != want.Best.Item.P {
		t.Fatalf("recomputed meeting %v, want %v", second[0], want.Best.Item.P)
	}

	// The re-encoded regions decoded by the clients contain each member's
	// fresh location.
	for i, u := range users {
		if !u.client.Region().Contains(moved[i]) {
			t.Fatalf("user %d: delivered region misses her fresh location", i)
		}
	}
}

// TestEndToEndBurstCoalesces fires a burst of reports from one member and
// checks the server survives and converges: the engine may collapse the
// burst into fewer recomputations, but the final notification must cover
// the final locations.
func TestEndToEndBurstCoalesces(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pois := make([]geom.Point, 500)
	for i := range pois {
		pois[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	srv, err := newServer(serverConfig{
		pois: pois, method: "circle", agg: "max",
		alpha: 5, buffer: 10, shards: 1, workers: 1,
		logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.serve(ln) }()

	u := dialUser(t, ln.Addr().String(), 9, 0, geom.Pt(0.2, 0.2))
	if err := u.client.Register(1); err != nil {
		t.Fatal(err)
	}
	u.waitNotify(t)

	final := geom.Pt(0.8, 0.8)
	for i := 0; i < 20; i++ {
		u.setLoc(geom.Pt(0.2+0.03*float64(i), 0.2))
		if err := u.client.Report(); err != nil {
			t.Fatal(err)
		}
	}
	u.setLoc(final)
	if err := u.client.Report(); err != nil {
		t.Fatal(err)
	}
	// Drain notifications until the delivered region contains the final
	// location (the last report is never lost).
	deadline := time.Now().Add(10 * time.Second)
	for {
		u.waitNotify(t)
		if u.client.Region().Contains(final) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never converged on the final location")
		}
	}
}
