// Command mpnserver serves the Meeting Point Notification protocol over
// TCP: one connection per user, groups assembled by group id, safe regions
// computed with the configured method and shipped in the compact region
// encoding (the Fig. 3 architecture as a real network service).
//
// Usage:
//
//	mpnserver [-listen :7464] [-method circle|tile|tiled] [-agg max|sum]
//	          [-n 21287] [-alpha 30] [-buffer 100] [-seed 42] [-pois FILE.csv]
//
// POIs are generated synthetically unless -pois points to a CSV of "x,y"
// lines (as produced by cmd/poigen).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"

	"mpn/internal/core"
	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/proto"
	"mpn/internal/workload"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("mpnserver: ")

	listen := flag.String("listen", ":7464", "TCP listen address")
	method := flag.String("method", "tiled", "safe-region method: circle, tile, or tiled")
	agg := flag.String("agg", "max", "objective: max or sum")
	n := flag.Int("n", workload.DefaultPOICount, "synthetic POI count (ignored with -pois)")
	alpha := flag.Int("alpha", 30, "tile limit α")
	buffer := flag.Int("buffer", 100, "buffering parameter b")
	seed := flag.Int64("seed", 42, "synthetic POI seed")
	poiPath := flag.String("pois", "", "CSV file of x,y POIs (optional)")
	flag.Parse()

	pois, err := loadPOIs(*poiPath, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}

	opts := core.DefaultOptions()
	opts.TileLimit = *alpha
	opts.Buffer = *buffer
	opts.Directed = *method == "tiled"
	switch *agg {
	case "max":
		opts.Aggregate = gnn.Max
	case "sum":
		opts.Aggregate = gnn.Sum
	default:
		log.Fatalf("unknown aggregate %q", *agg)
	}
	planner, err := core.NewPlanner(pois, opts)
	if err != nil {
		log.Fatal(err)
	}

	plan := func(users []geom.Point) (geom.Point, []core.SafeRegion, error) {
		var p core.Plan
		var perr error
		if *method == "circle" {
			p, perr = planner.CircleMSR(users)
		} else {
			p, perr = planner.TileMSR(users, nil)
		}
		if perr != nil {
			return geom.Point{}, nil, perr
		}
		return p.Best.Item.P, p.Regions, nil
	}

	coord := proto.NewCoordinator(plan, log.Default())
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %d POIs with %s/%s on %s", len(pois), *method, *agg, ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			if err := coord.ServeConn(conn); err != nil {
				log.Printf("conn %v: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// loadPOIs reads a poigen CSV or generates a synthetic set.
func loadPOIs(path string, n int, seed int64) ([]geom.Point, error) {
	if path == "" {
		cfg := workload.DefaultPOIConfig()
		cfg.N = n
		cfg.Seed = seed
		return workload.GeneratePOIs(cfg)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pts []geom.Point
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text == "x,y" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("%s:%d: want x,y", path, line)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		pts = append(pts, geom.Pt(x, y))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pts, nil
}
