// Command mpnserver serves the Meeting Point Notification protocol over
// TCP: one connection per user, groups assembled by group id, safe regions
// computed with the configured method and shipped in the compact region
// encoding (the Fig. 3 architecture as a real network service).
//
// Compute runs on the sharded concurrent group engine (internal/engine):
// an escape report submits the group's fresh locations to a per-shard
// work queue and returns immediately, worker goroutines recompute safe
// regions asynchronously (coalescing bursts for the same group into one
// recomputation), and a notification fan-out goroutine delivers results
// back to the members' connections. After a group's one-time registration
// plan (computed synchronously so its delivery is guaranteed), connection
// read loops never wait on the planner, and a burst of reports costs one
// recomputation.
//
// Notifications default to the delta wire protocol (-delta): clients
// that negotiate it receive epoch-tracked region diffs — only regions
// whose content changed travel, a steady-state "nothing changed" frame
// is ~10 bytes — with automatic full-frame fallback on registration,
// reconnect, dropped frames, and client NACKs.
//
// With -state-dir the server's authoritative state — group
// registrations and membership, last committed member locations, and
// POI mutations — is journaled to a CRC-framed write-ahead log with
// periodic snapshot compaction (internal/durable). On boot the
// directory is replayed (a torn tail from a crash is truncated, never
// fatal) and every recovered group is re-registered with the compute
// engine, so reconnecting clients resume through the ordinary
// full-snapshot-on-register path. -fsync picks the loss window:
// "always" survives any crash minus the queued tail, "interval"
// (default) bounds loss to one sync period, "off" defers to the OS.
// Journaling runs behind a bounded queue off the planning path — under
// pressure records are shed and counted, never blocking a replan.
//
// Hot-standby replication (internal/replica) rides on the durable log:
// a primary started with -replicate-to streams its record log —
// snapshot seed plus live tail, CRC-framed, position-acked — to any
// number of followers, and a node started with -standby-of follows a
// primary, continuously replaying the stream through the same recovery
// paths boot uses, so it serves the instant it is promoted. A standby
// refuses client writes with a redirect at the primary; on promotion
// (manual, or -promote-after of primary silence) it adopts a fencing
// epoch above everything it has seen, journals it, and fences the old
// primary, which from then on refuses writes and redirects clients at
// its successor. Clients built on proto.ReconnectClient receive pushed
// peer lists (-advertise) and fail over without operator involvement.
//
// Usage:
//
//	mpnserver [-listen :7464] [-method circle|tile|tiled|net] [-agg max|sum]
//	          [-n 21287] [-alpha 30] [-buffer 100] [-seed 42] [-pois FILE.csv]
//	          [-shards N] [-workers N] [-queue N] [-incremental] [-gnncache N]
//	          [-delta=true] [-affinity] [-network] [-poi-every 9]
//	          [-state-dir DIR] [-fsync always|interval|off]
//	          [-replicate-to ADDR] [-standby-of ADDR] [-advertise ADDR]
//	          [-promote-after 10s]
//
// POIs are generated synthetically unless -pois points to a CSV of "x,y"
// lines (as produced by cmd/poigen). With -network (or -method net) the
// server plans under shortest-path distance on a synthetic road network:
// POIs sit on every k-th network node (-poi-every), safe regions are
// covered road segments shipped with the 'N' wire tag, and -pois/-n are
// ignored.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mpn/internal/core"
	"mpn/internal/durable"
	"mpn/internal/engine"
	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/nbrcache"
	"mpn/internal/netmpn"
	"mpn/internal/proto"
	"mpn/internal/replica"
	"mpn/internal/roadnet"
	"mpn/internal/workload"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("mpnserver: ")

	listen := flag.String("listen", ":7464", "TCP listen address")
	method := flag.String("method", "tiled", "safe-region method: circle, tile, tiled, or net")
	network := flag.Bool("network", false, "plan under shortest-path distance on a synthetic road network (same as -method net); POIs live on network nodes and safe regions are covered road segments")
	poiEvery := flag.Int("poi-every", 9, "with -network, place a POI on every k-th network node")
	agg := flag.String("agg", "max", "objective: max or sum")
	n := flag.Int("n", workload.DefaultPOICount, "synthetic POI count (ignored with -pois)")
	alpha := flag.Int("alpha", 30, "tile limit α")
	buffer := flag.Int("buffer", 100, "buffering parameter b")
	seed := flag.Int64("seed", 42, "synthetic POI seed")
	poiPath := flag.String("pois", "", "CSV file of x,y POIs (optional)")
	shards := flag.Int("shards", 0, "engine registry shards (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 0, "recompute workers per shard (0 = 1)")
	queue := flag.Int("queue", 0, "per-shard work queue depth (0 = 1024)")
	incremental := flag.Bool("incremental", false, "incremental safe-region maintenance: keep retained regions and regrow only what a report invalidates")
	cacheBytes := flag.Int64("gnncache", 0, "shared GNN neighborhood cache byte budget, 0 disables (co-located groups reuse each other's index traversals)")
	delta := flag.Bool("delta", true, "delta notifications: clients that negotiate receive epoch-tracked region diffs (only changed regions travel), with automatic full-frame fallback and repair")
	tileAffinity := flag.Bool("affinity", false, "place new groups onto engine shards by quantized centroid tile, so co-located groups share worker-local state")
	readTimeout := flag.Duration("read-timeout", 2*time.Minute, "idle deadline armed before every connection read; a peer silent this long is disconnected (0 disables)")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "deadline armed before every connection write; a peer that stops draining this long is disconnected (0 disables)")
	slowLimit := flag.Int("slow-limit", 0, "consecutive outbox drops before a slow client is disconnected (0 = default, negative = never)")
	admissionWait := flag.Duration("admission-wait", 0, "how long a report may wait for shard queue space before being shed (0 = engine default, negative = shed immediately)")
	closeTimeout := flag.Duration("close-timeout", 0, "how long shutdown drains queued recomputations before abandoning them (0 = engine default, negative = unbounded)")
	stateDir := flag.String("state-dir", "", "durable state directory (write-ahead log + snapshots); restored on boot, empty disables durability")
	fsync := flag.String("fsync", "interval", "WAL fsync policy: always (per write batch), interval (periodic, bounded loss), off (clean close only)")
	replicateTo := flag.String("replicate-to", "", "serve the replication (WAL-shipping) stream to hot-standby followers on this address; requires -state-dir")
	standbyOf := flag.String("standby-of", "", "follow the primary at this replication address as a hot standby: client writes are refused with a redirect until promotion")
	advertise := flag.String("advertise", "", "this node's client-facing address, pushed to clients in peer frames so they can fail over")
	promoteAfter := flag.Duration("promote-after", 0, "auto-promote a standby whose primary has been unreachable this long (0 = never promote automatically)")
	flag.Parse()

	if *network {
		*method = "net"
	}
	pois, err := loadPOIs(*poiPath, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := newServer(serverConfig{
		pois: pois, method: *method, agg: *agg, netPOIEvery: *poiEvery,
		alpha: *alpha, buffer: *buffer,
		shards: *shards, workers: *workers, queue: *queue,
		incremental: *incremental,
		cacheBytes:  *cacheBytes,
		delta:       *delta,
		affinity:    *tileAffinity,
		readTimeout: *readTimeout, writeTimeout: *writeTimeout,
		slowLimit:     *slowLimit,
		admissionWait: *admissionWait, closeTimeout: *closeTimeout,
		stateDir: *stateDir, fsync: *fsync,
		replicateTo: *replicateTo, standbyOf: *standbyOf,
		advertise: *advertise, promoteAfter: *promoteAfter,
		logger: log.Default(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	eo := srv.eng.Options()
	mode := "full-replan"
	if *incremental {
		mode = "incremental"
	}
	wire := "full notifications"
	if *delta {
		wire = "delta notifications"
	}
	log.Printf("serving %d POIs with %s/%s on %s (%d shards × %d workers, %s, %s)",
		len(pois), *method, *agg, ln.Addr(), eo.Shards, eo.Workers, mode, wire)
	if err := srv.serve(ln); err != nil {
		log.Fatal(err)
	}
}

// serverConfig parameterizes a server instance (flags in production, a
// small synthetic setup in the end-to-end test).
type serverConfig struct {
	pois                   []geom.Point
	method, agg            string
	netPOIEvery            int // "net" method: POI on every k-th network node (0 = 9)
	alpha, buffer          int
	shards, workers, queue int
	incremental            bool
	cacheBytes             int64
	delta                  bool
	affinity               bool
	// Failure-semantics knobs (zero values keep prior behavior for
	// timeouts and pick engine/coordinator defaults for the rest).
	readTimeout, writeTimeout   time.Duration
	slowLimit                   int
	admissionWait, closeTimeout time.Duration
	// Durability (empty stateDir disables): fsync is the WAL sync
	// policy ("" = interval), fsyncEvery shortens the interval period
	// (0 = store default; tests use milliseconds to tighten the crash
	// loss window deterministically).
	stateDir   string
	fsync      string
	fsyncEvery time.Duration
	// Replication (hot standby): replicateTo serves the WAL record
	// stream to followers on this address (requires stateDir — the
	// stream is the durable record log); standbyOf makes this node a
	// standby following that primary replication address, refusing
	// client writes with a redirect until promoted; advertise is this
	// node's client-facing address, pushed to clients in peer frames
	// and presented to the peer in replication handshakes;
	// promoteAfter auto-promotes a standby whose primary has been
	// unreachable that long (0 = manual promotion only).
	// replRetry/replAck tighten the tailer's reconnect backoff and
	// ack cadence (0 = package defaults; tests use milliseconds).
	replicateTo, standbyOf, advertise string
	promoteAfter                      time.Duration
	replRetry, replAck                time.Duration
	logger                            *log.Logger
}

// server wires the protocol coordinator to the sharded group engine: the
// coordinator submits replans, the engine computes them on its worker
// pool, and the fan-out goroutine delivers notifications back to the
// members' connections.
type server struct {
	eng     *engine.Engine
	coord   *proto.Coordinator
	sub     *engine.Subscription
	planner *core.Planner
	logger  *log.Logger

	// store journals group/POI state when durability is on (nil
	// otherwise); journalOn gates the engine's journal hook so
	// boot-time restore — whose state is already in the log — is not
	// re-journaled while it re-registers recovered groups.
	store     *durable.Store
	stateDir  string
	journalOn atomic.Bool

	readTimeout  time.Duration
	writeTimeout time.Duration
	cstats       connStats
	shedReports  atomic.Uint64 // reports shed by engine admission control

	// mu guards the protocol-group ↔ engine-group id mappings; it is also
	// held across engine registration so a group's initial notification
	// cannot outrun the mapping it needs.
	mu          sync.Mutex
	gidToEngine map[uint32]engine.GroupID
	engineToGid map[engine.GroupID]uint32

	fanoutDone chan struct{}

	// Replication (see replication.go): role gates client writes
	// through writeGate, epoch is the monotone fencing epoch, ship
	// streams the WAL to followers, tail follows a primary while
	// standby. fencedEpoch/fencedPeer remember who deposed this node
	// so refused writes still redirect clients at the winner.
	role         *replica.RoleState
	epoch        atomic.Uint64
	ship         *replica.Shipper
	shipLn       net.Listener
	tail         *replica.Tailer
	advertise    string
	standbyOf    string
	promoteAfter time.Duration
	poiBase      int
	fencedEpoch  atomic.Uint64
	fencedPeer   atomic.Value // string
	replMu       sync.Mutex   // serializes promotion
	replStop     chan struct{}
	replOnce     sync.Once
}

// reportTag travels with every engine registration and submission for a
// protocol group: the protocol group id plus the ascending member-id
// ordering the location snapshot was computed for. The fan-out fences
// deliveries against membership churn with ids; the durable journal
// logs committed state under gid, the group's stable identity.
type reportTag struct {
	gid uint32
	ids []uint32
}

// serverJournal adapts engine.Journal to the durable store. The store's
// hooks encode and enqueue without blocking, so these run safely under
// the engine's group lock.
type serverJournal struct{ s *server }

func (j serverJournal) GroupCommitted(tag any, users []geom.Point, _ []core.Direction) {
	if !j.s.journalOn.Load() {
		return
	}
	if rt, ok := tag.(reportTag); ok {
		j.s.store.GroupUpsert(rt.gid, rt.ids, users)
	}
}

func (j serverJournal) GroupRemoved(tag any) {
	if !j.s.journalOn.Load() {
		return
	}
	if rt, ok := tag.(reportTag); ok {
		j.s.store.GroupUnregister(rt.gid)
	}
}

func newServer(cfg serverConfig) (*server, error) {
	opts := core.DefaultOptions()
	opts.TileLimit = cfg.alpha
	opts.Buffer = cfg.buffer
	opts.Directed = cfg.method == "tiled"
	switch cfg.agg {
	case "max":
		opts.Aggregate = gnn.Max
	case "sum":
		opts.Aggregate = gnn.Sum
	default:
		return nil, fmt.Errorf("unknown aggregate %q", cfg.agg)
	}
	var backend *netmpn.Backend
	if cfg.method == "net" {
		netw, err := roadnet.Generate(roadnet.DefaultConfig())
		if err != nil {
			return nil, err
		}
		every := cfg.netPOIEvery
		if every <= 0 {
			every = 9
		}
		var poiNodes []int
		for i := 0; i < netw.NumNodes(); i += every {
			poiNodes = append(poiNodes, i)
		}
		// The planner indexes the POI nodes' embedded coordinates; network
		// planning itself runs against the backend's shortest-path state.
		cfg.pois = make([]geom.Point, len(poiNodes))
		for i, node := range poiNodes {
			cfg.pois[i] = netw.Nodes[node].P
		}
		bagg := netmpn.Max
		if opts.Aggregate == gnn.Sum {
			bagg = netmpn.Sum
		}
		backend, err = netmpn.NewBackend(netw, poiNodes, netmpn.BackendConfig{
			Aggregate: bagg, CacheEntries: 256,
		})
		if err != nil {
			return nil, err
		}
	}
	planner, err := core.NewPlanner(cfg.pois, opts)
	if err != nil {
		return nil, err
	}
	if cfg.logger == nil {
		cfg.logger = log.New(os.Stderr, "", 0)
	}

	// Durable state: recover whatever a previous process persisted —
	// truncating a torn tail from an unclean death — before any plan
	// is computed, so restored groups plan against the restored POI
	// set. The recorded POI base fences config drift: a state
	// directory from a different -n/-seed/-pois boot is refused rather
	// than silently merged.
	var (
		store    *durable.Store
		restored *durable.State
	)
	if cfg.stateDir != "" {
		pol := durable.PolicyInterval
		if cfg.fsync != "" {
			p, perr := durable.ParsePolicy(cfg.fsync)
			if perr != nil {
				return nil, perr
			}
			pol = p
		}
		var info durable.RecoverInfo
		store, restored, info, err = durable.Open(durable.Config{
			Dir: cfg.stateDir, Fsync: pol, Interval: cfg.fsyncEvery,
			POIBase: len(cfg.pois),
		})
		if err != nil {
			return nil, fmt.Errorf("durable state %s: %w", cfg.stateDir, err)
		}
		if info.TornBytes > 0 {
			cfg.logger.Printf("durable log had a torn tail: truncated %dB after %d valid records", info.TornBytes, info.LogRecords)
		}
		if len(restored.POIInserts) > 0 || len(restored.POIDeleted) > 0 {
			if backend != nil {
				store.Close()
				return nil, fmt.Errorf("durable state %s holds POI churn, which the net method cannot replay", cfg.stateDir)
			}
			if _, aerr := planner.ApplyPOIs(restored.POIInserts, restored.POIDeleted); aerr != nil {
				store.Close()
				return nil, fmt.Errorf("durable state %s: POI replay: %w", cfg.stateDir, aerr)
			}
		}
		// From here on, every applied POI batch is journaled (replay
		// above predates the hook on purpose — it is already logged).
		planner.OnMutate(store.POIBatch)
	}

	var cache *nbrcache.Cache // nil degrades the cached adapters below
	if cfg.cacheBytes > 0 {
		cache = nbrcache.New(nbrcache.Config{MaxBytes: cfg.cacheBytes})
	}
	var plan engine.PlanWSFunc
	if backend != nil {
		planner.RegisterNetBackend(backend)
		plan = engine.PlannerKindWSFunc(planner, core.KindNetRange, nil)
	} else {
		plan = engine.PlannerCachedWSFunc(planner, cfg.method == "circle", cache)
	}
	eopts := engine.Options{
		Shards: cfg.shards, Workers: cfg.workers, QueueDepth: cfg.queue,
		AdmissionWait: cfg.admissionWait, CloseTimeout: cfg.closeTimeout,
	}
	if cfg.incremental {
		if backend != nil {
			eopts.Replan = engine.PlannerKindIncFunc(planner, core.KindNetRange, nil)
		} else {
			eopts.Replan = engine.PlannerIncCachedFunc(planner, cfg.method == "circle", cache)
		}
	}
	if cfg.affinity {
		eopts.TileAffinity = engine.DefaultTileAffinity
	}
	s := &server{
		planner:      planner,
		store:        store,
		stateDir:     cfg.stateDir,
		logger:       cfg.logger,
		readTimeout:  cfg.readTimeout,
		writeTimeout: cfg.writeTimeout,
		gidToEngine:  map[uint32]engine.GroupID{},
		engineToGid:  map[engine.GroupID]uint32{},
		fanoutDone:   make(chan struct{}),
	}
	if store != nil {
		eopts.Journal = serverJournal{s}
	}
	s.eng = engine.NewWS(plan, eopts)

	// Re-own every recovered group before taking traffic: each is
	// registered with its last committed member locations and retained
	// id ordering, and its plan recomputes synchronously, so a member
	// reconnecting a moment later resumes through the ordinary
	// full-snapshot-on-register path as if the process never died. The
	// journal stays disarmed — this state is already in the log.
	if restored != nil && len(restored.Groups) > 0 {
		gids := make([]uint32, 0, len(restored.Groups))
		for gid := range restored.Groups {
			gids = append(gids, gid)
		}
		sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
		ok := 0
		for _, gid := range gids {
			g := restored.Groups[gid]
			eid, rerr := s.eng.RegisterTag(g.Locs, nil, reportTag{gid: gid, ids: g.IDs})
			if rerr != nil {
				cfg.logger.Printf("group %d: restore failed: %v", gid, rerr)
				continue
			}
			s.gidToEngine[gid] = eid
			s.engineToGid[eid] = gid
			ok++
		}
		cfg.logger.Printf("restored %d/%d durable groups", ok, len(gids))
	}
	s.journalOn.Store(true)

	s.coord = proto.NewAsyncCoordinator(s.submit, cfg.logger)
	s.coord.SetGroupEmptyHook(s.onGroupEmpty)
	s.coord.SetDeltaEnabled(cfg.delta)
	s.coord.SetSlowClientLimit(cfg.slowLimit)
	s.sub = s.eng.Subscribe(1024)
	go s.fanout()
	s.poiBase = len(cfg.pois)
	if err := s.initReplication(cfg, restored); err != nil {
		s.close()
		return nil, err
	}
	return s, nil
}

// submit is the coordinator's replan hook, called with the coordinator
// lock held — that lock is what keeps a group's snapshots ordered, so the
// engine's coalescing slot always ends on the latest locations. First
// contact registers the group: the engine computes the initial plan
// synchronously and submit returns it for inline delivery, so the one
// notification clients cannot recover from losing never rides the lossy
// subscription stream. Every later report is a plain bounded enqueue, so
// after registration the read loops never wait on the planner; a full
// shard queue blocks here, backpressure toward the transport. The
// member-id ordering travels as the submission tag so deliveries can be
// verified against membership churn.
func (s *server) submit(gid uint32, ids []uint32, users []geom.Point) (geom.Point, []core.SafeRegion, []uint64, bool) {
	s.mu.Lock()
	eid, ok := s.gidToEngine[gid]
	if ok && s.eng.Size(eid) != len(users) {
		// The engine group was restored from the durable log with a
		// member count the reconnecting clients no longer have (the
		// group changed shape while the server was down). Retire the
		// stale engine group — journaled, so a crash right here does
		// not resurrect it — and register afresh from current state.
		delete(s.gidToEngine, gid)
		delete(s.engineToGid, eid)
		s.eng.Unregister(eid)
		ok = false
	}
	if !ok {
		var err error
		eid, err = s.eng.RegisterTag(users, nil, reportTag{gid: gid, ids: ids})
		if err != nil {
			s.mu.Unlock()
			s.deliverError(gid, err)
			return geom.Point{}, nil, nil, false
		}
		s.gidToEngine[gid] = eid
		s.engineToGid[eid] = gid
		meeting := s.eng.Meeting(eid)
		regions := s.eng.Regions(eid)
		epochs := s.eng.Epochs(eid)
		s.mu.Unlock()
		// Hand the initial plan back for inline delivery; the fan-out
		// skips the matching Seq-1 notification.
		return meeting, regions, epochs, true
	}
	s.mu.Unlock()
	if err := s.eng.SubmitTag(eid, users, nil, reportTag{gid: gid, ids: ids}); err != nil {
		s.deliverError(gid, err)
	}
	return geom.Point{}, nil, nil, false
}

// deliverError reports a submission failure to the group's members. It
// must run off the submit path: submit holds the coordinator lock and
// Deliver re-acquires it.
//
// Overload is the exception: a shed report is not a group failure — the
// members still hold valid safe regions, and whoever escaped will escape
// again and resubmit once the queue drains — so broadcasting it as a
// fatal TError would turn transient pressure into a mass disconnect.
// Shed reports are counted and logged instead.
func (s *server) deliverError(gid uint32, err error) {
	if errors.Is(err, engine.ErrOverloaded) {
		if n := s.shedReports.Add(1); n == 1 || n%100 == 0 {
			s.logger.Printf("group %d: report shed under overload (%d shed so far)", gid, n)
		}
		return
	}
	go s.coord.Deliver(gid, nil, geom.Point{}, nil, err)
}

// fanout pumps engine notifications into the coordinator's delivery path.
// A dropped steady-state notification self-heals — the member still holds
// her old region, escapes it, and her report triggers a fresh replan —
// but it is logged so sustained overload is visible.
func (s *server) fanout() {
	defer close(s.fanoutDone)
	var dropped uint64
	for n := range s.sub.C {
		if d := s.sub.Dropped(); d != dropped {
			s.logger.Printf("notification fan-out overloaded: %d dropped so far", d)
			dropped = d
		}
		if n.Seq == 1 {
			continue // the registration plan was delivered inline by submit
		}
		s.mu.Lock()
		gid, ok := s.engineToGid[n.Group]
		s.mu.Unlock()
		if !ok {
			continue // group already unregistered
		}
		rt, _ := n.Tag.(reportTag) // id ordering the snapshot was computed for
		s.coord.DeliverEpochs(gid, rt.ids, n.Meeting, n.Regions, n.Epochs, n.Err)
		if n.Coalesced > 1 {
			s.logger.Printf("group %d: recompute covered %d coalesced reports", gid, n.Coalesced)
		}
	}
}

// onGroupEmpty releases the engine group when its last member leaves.
func (s *server) onGroupEmpty(gid uint32) {
	s.mu.Lock()
	eid, ok := s.gidToEngine[gid]
	if ok {
		delete(s.gidToEngine, gid)
		delete(s.engineToGid, eid)
	}
	s.mu.Unlock()
	if ok {
		s.eng.Unregister(eid)
	}
}

// serve accepts connections until the listener closes. Every connection
// is wrapped in a guardedConn: idle and write deadlines bound how long a
// dead or stalled peer can hold resources, and byte/error accounting
// feeds the per-connection disconnect log and the server stats.
func (s *server) serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		gc := newGuardedConn(conn, s.readTimeout, s.writeTimeout, &s.cstats)
		go func() {
			err := s.coord.ServeConn(gc)
			if err != nil || gc.errs.Load() > 0 {
				s.logger.Printf("conn %v: %s (read %dB, wrote %dB, %d conn errors): %v",
					conn.RemoteAddr(), gc.reason(err), gc.rBytes.Load(), gc.wBytes.Load(), gc.errs.Load(), err)
			}
		}()
	}
}

// serverStats is a point-in-time roll-up of every fault/overload counter
// the serving stack keeps: engine admission control, coordinator delivery
// policy, and connection-level accounting.
type serverStats struct {
	ShedReports   uint64 // reports shed by engine admission control
	EngineShed    uint64 // shard-level shed submissions
	EngineAbandon uint64 // recomputations abandoned at Close
	Coord         proto.CoordStats
	ConnsAccepted uint64
	ReadBytes     uint64
	WriteBytes    uint64
	ReadErrors    uint64
	WriteErrors   uint64
	IdleTimeouts  uint64
	FanoutDropped uint64        // engine→coordinator notification drops
	WAL           durable.Stats // zero when durability is off
	// Replication roll-up (zero values when replication is off).
	Role  string // current replication role
	Epoch uint64 // fencing epoch
	Ship  replica.ShipperStats
	Tail  replica.TailerStats
}

func (s *server) stats() serverStats {
	var shed, abandoned uint64
	for _, sh := range s.eng.ShardStats() {
		shed += sh.Shed
		abandoned += sh.Abandoned
	}
	st := serverStats{
		ShedReports:   s.shedReports.Load(),
		EngineShed:    shed,
		EngineAbandon: abandoned,
		Coord:         s.coord.Stats(),
		ConnsAccepted: s.cstats.accepted.Load(),
		ReadBytes:     s.cstats.readBytes.Load(),
		WriteBytes:    s.cstats.writeBytes.Load(),
		ReadErrors:    s.cstats.readErrors.Load(),
		WriteErrors:   s.cstats.writeErrors.Load(),
		IdleTimeouts:  s.cstats.idleTimeouts.Load(),
		FanoutDropped: s.sub.Dropped(),
	}
	if s.store != nil {
		st.WAL = s.store.Stats()
	}
	if s.role != nil {
		st.Role = s.role.Get().String()
		st.Epoch = s.epoch.Load()
	}
	if s.ship != nil {
		st.Ship = s.ship.Stats()
	}
	if s.tail != nil {
		st.Tail = s.tail.Stats()
	}
	return st
}

// close stops the engine (draining queued recomputations up to the
// configured deadline), waits for the fan-out goroutine, and logs the
// final fault counters so overload during the run is visible post-hoc.
func (s *server) close() {
	s.stopRepl()
	s.eng.Close()
	<-s.fanoutDone
	st := s.stats()
	if s.store != nil {
		// After the engine drained: the final journal records are
		// queued, and a clean close fsyncs them.
		if err := s.store.Close(); err != nil {
			s.logger.Printf("durable close: %v", err)
		}
		w := s.store.Stats()
		s.logger.Printf("wal: appended=%d shed=%d syncs=%d compactions=%d errors=%d wedged=%v",
			w.Appended, w.Shed, w.Syncs, w.Compactions, w.Errors, w.Wedged)
	}
	s.logger.Printf("served %d conns (%dB in, %dB out); shed=%d abandoned=%d slow-kicks=%d dropped-frames=%d idle-timeouts=%d read-errs=%d write-errs=%d",
		st.ConnsAccepted, st.ReadBytes, st.WriteBytes,
		st.ShedReports+st.EngineShed, st.EngineAbandon,
		st.Coord.SlowClientDisconnects, st.Coord.DroppedFrames,
		st.IdleTimeouts, st.ReadErrors, st.WriteErrors)
}

// crash tears the server down as if the process died at this instant:
// the WAL is wedged at its last fsynced byte first — nothing appended
// after the crash point may persist — and only then is the serving
// stack dismantled (so the test harness leaks no goroutines). The
// kill-and-restore chaos schedule drives recovery through this.
func (s *server) crash() {
	s.stopRepl()
	if s.store != nil {
		s.store.Crash()
	}
	s.eng.Close()
	<-s.fanoutDone
}

// loadPOIs reads a poigen CSV or generates a synthetic set.
func loadPOIs(path string, n int, seed int64) ([]geom.Point, error) {
	if path == "" {
		cfg := workload.DefaultPOIConfig()
		cfg.N = n
		cfg.Seed = seed
		return workload.GeneratePOIs(cfg)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pts []geom.Point
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text == "x,y" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("%s:%d: want x,y", path, line)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		pts = append(pts, geom.Pt(x, y))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pts, nil
}
