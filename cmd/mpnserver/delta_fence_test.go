package main

import (
	"io"
	"log"
	"math/rand"
	"net"
	"reflect"
	"testing"

	"mpn/internal/geom"
	"mpn/internal/proto"
)

// TestDeltaDifferentialFence is the acceptance fence of the delta
// protocol: for the same report stream, a delta-protocol client's
// reassembled plan must be byte-identical to a full-Notify client's at
// every step. Two groups with identical member locations run against
// one delta-enabled incremental server — group 1's clients negotiate
// deltas, group 2's force full frames — and after every notification
// round the decoded regions and meeting points are compared. The stream
// exercises kept (in-region report), partial (minimal escape), and full
// (result-set churn) outcomes, plus a forced reconnect mid-stream; the
// matrix covers both aggregates and both region shapes.
func TestDeltaDifferentialFence(t *testing.T) {
	for _, tc := range []struct{ method, agg string }{
		{"tiled", "max"},
		{"tiled", "sum"},
		{"circle", "max"},
		{"circle", "sum"},
	} {
		t.Run(tc.method+"/"+tc.agg, func(t *testing.T) {
			runDeltaFence(t, tc.method, tc.agg)
		})
	}
}

// fencePair is the same logical user in the delta group and the full
// group: identical start location, identical movement.
type fencePair struct {
	delta *e2eUser
	full  *e2eUser
}

func (p *fencePair) setLoc(loc geom.Point) {
	p.delta.setLoc(loc)
	p.full.setLoc(loc)
}

func runDeltaFence(t *testing.T, method, agg string) {
	rng := rand.New(rand.NewSource(17))
	pois := make([]geom.Point, 800)
	for i := range pois {
		pois[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	srv, err := newServer(serverConfig{
		pois: pois, method: method, agg: agg,
		alpha: 5, buffer: 20, shards: 2, workers: 1,
		incremental: true,
		delta:       true,
		logger:      log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.serve(ln) }()
	addr := ln.Addr().String()

	starts := []geom.Point{geom.Pt(0.30, 0.30), geom.Pt(0.35, 0.32), geom.Pt(0.31, 0.36)}
	m := len(starts)
	pairs := make([]*fencePair, m)
	dial := func(i int, start geom.Point) *fencePair {
		return &fencePair{
			delta: dialUser(t, addr, 1, uint32(i), start),
			full:  dialUser(t, addr, 2, uint32(i), start, proto.WithoutDelta()),
		}
	}
	for i, s := range starts {
		pairs[i] = dial(i, s)
	}
	register := func(p *fencePair) {
		if err := p.delta.client.Register(uint32(m)); err != nil {
			t.Fatal(err)
		}
		if err := p.full.client.Register(uint32(m)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range pairs {
		register(p)
	}

	// waitRound consumes one notification per client in both groups and
	// compares the reassembled plans pairwise.
	waitRound := func(step string) {
		t.Helper()
		for i, p := range pairs {
			dm := p.delta.waitNotify(t)
			fm := p.full.waitNotify(t)
			if dm != fm {
				t.Fatalf("%s: member %d meeting diverged: delta %v vs full %v", step, i, dm, fm)
			}
			dr, fr := p.delta.client.Region(), p.full.client.Region()
			if !reflect.DeepEqual(dr, fr) {
				t.Fatalf("%s: member %d region diverged:\n delta %v\n full  %v", step, i, dr, fr)
			}
			if p.delta.client.Meeting() != p.full.client.Meeting() {
				t.Fatalf("%s: member %d retained meeting diverged", step, i)
			}
		}
	}
	waitRound("registration")

	// report makes the same member file the same report in both groups
	// (locations must be set on the pairs first).
	report := func(i int) {
		t.Helper()
		if err := pairs[i].delta.client.Report(); err != nil {
			t.Fatal(err)
		}
		if err := pairs[i].full.client.Report(); err != nil {
			t.Fatal(err)
		}
	}

	// Round 1 — kept: member 0 reports from a position still inside her
	// region (a spurious report; nothing regrows, deltas carry nothing).
	jit := geom.Pt(starts[0].X+1e-6, starts[0].Y-1e-6)
	if pairs[0].delta.client.NeedsUpdate(jit) {
		t.Skip("jitter escaped the region; workload unsuitable")
	}
	pairs[0].setLoc(jit)
	report(0)
	waitRound("kept")

	// Round 2 — minimal escape: walk member 0 just past her boundary
	// (partial regrow on the tile methods when the optimum survives).
	esc := jit
	step := 1e-4
	for !pairs[0].delta.client.NeedsUpdate(esc) {
		esc = geom.Pt(esc.X+step, esc.Y+step)
		step *= 2
		if step > 1 {
			t.Fatal("could not escape region")
		}
	}
	pairs[0].setLoc(esc)
	report(0)
	waitRound("partial")

	// Round 3 — churn: member 0 jumps far, moving the optimum (full
	// replan, every region regrows).
	far := geom.Pt(0.70, 0.70)
	pairs[0].setLoc(far)
	pairs[1].setLoc(geom.Pt(0.36, 0.33))
	pairs[2].setLoc(geom.Pt(0.30, 0.37))
	report(0)
	waitRound("full")

	// Round 4 — forced reconnect mid-stream: member 2 drops in both
	// groups and rejoins at her current location. Re-completion triggers
	// a replan round; the rejoined delta client must be repaired with a
	// full snapshot and stay byte-identical from then on.
	loc2 := geom.Pt(0.30, 0.37)
	pairs[2].delta.conn.Close()
	pairs[2].full.conn.Close()
	<-pairs[2].delta.runErr
	<-pairs[2].full.runErr
	pairs[2] = dial(2, loc2)
	register(pairs[2])
	waitRound("reconnect")

	// Round 5 — kept after reconnect: everyone reports in place; the
	// rejoined client now rides deltas again and must stay identical.
	report(1)
	waitRound("kept-after-reconnect")
}
