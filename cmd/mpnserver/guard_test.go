package main

import (
	"io"
	"log"
	"math/rand"
	"net"
	"testing"
	"time"

	"mpn/internal/geom"
	"mpn/internal/proto"
)

// A connection that goes silent — no reports, no heartbeats — must be
// reaped by the idle deadline instead of holding its member slot and
// goroutines forever, and the teardown must be visible in the stats.
func TestIdleConnectionReaped(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pois := make([]geom.Point, 300)
	for i := range pois {
		pois[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	srv, err := newServer(serverConfig{
		pois: pois, method: "circle", agg: "max",
		alpha: 5, buffer: 10, shards: 1, workers: 1,
		readTimeout: 200 * time.Millisecond,
		logger:      log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.serve(ln) }()

	u := dialUser(t, ln.Addr().String(), 1, 0, geom.Pt(0.3, 0.3))
	if err := u.client.Register(1); err != nil {
		t.Fatal(err)
	}
	u.waitNotify(t)
	// Silence. The server must cut the connection within the idle window
	// (the client sees the severed stream as EOF or a reset).
	select {
	case <-u.runErr:
	case <-time.After(5 * time.Second):
		t.Fatal("idle connection never reaped")
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.stats().IdleTimeouts == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle teardown not recorded in stats")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A heartbeating client under the same deadline survives arbitrarily
	// long silence at the application layer: pings keep the reads alive.
	hb := dialUser(t, ln.Addr().String(), 2, 0, geom.Pt(0.4, 0.4), proto.WithHeartbeat(50*time.Millisecond))
	if err := hb.client.Register(1); err != nil {
		t.Fatal(err)
	}
	hb.waitNotify(t)
	select {
	case err := <-hb.runErr:
		t.Fatalf("heartbeating client reaped: %v", err)
	case <-time.After(600 * time.Millisecond): // 3× the idle window
	}
	if hb.client.Pongs() == 0 {
		t.Fatal("no pongs on the surviving connection")
	}
}
