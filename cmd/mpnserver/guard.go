package main

import (
	"errors"
	"io"
	"net"
	"sync/atomic"
	"time"
)

// connStats aggregates connection-level accounting across the whole
// server: byte totals, error totals, and how many connections were torn
// down by the idle deadline. All counters are lock-free.
type connStats struct {
	accepted     atomic.Uint64
	readBytes    atomic.Uint64
	writeBytes   atomic.Uint64
	readErrors   atomic.Uint64
	writeErrors  atomic.Uint64
	idleTimeouts atomic.Uint64
}

// guardedConn wraps an accepted connection with deadline discipline and
// accounting. Every Read arms an idle deadline — a peer that sends
// nothing (not even a heartbeat) within idleTimeout fails the read with a
// timeout instead of holding the connection open forever. Every Write
// arms a write deadline — a peer that stops draining cannot pin the
// member writer goroutine indefinitely; the write fails, the coordinator
// tears the member down, and the outbox is released. Both timeouts are
// optional (non-positive disables).
//
// Per-connection byte and error counts feed the disconnect log line;
// totals roll up into the server-wide connStats.
type guardedConn struct {
	net.Conn
	idleTimeout  time.Duration
	writeTimeout time.Duration
	stats        *connStats

	rBytes  atomic.Uint64
	wBytes  atomic.Uint64
	errs    atomic.Uint64
	timeout atomic.Bool // last read failed on the idle deadline
}

func newGuardedConn(conn net.Conn, idle, write time.Duration, stats *connStats) *guardedConn {
	stats.accepted.Add(1)
	return &guardedConn{Conn: conn, idleTimeout: idle, writeTimeout: write, stats: stats}
}

func (g *guardedConn) Read(p []byte) (int, error) {
	if g.idleTimeout > 0 {
		_ = g.Conn.SetReadDeadline(time.Now().Add(g.idleTimeout))
	}
	n, err := g.Conn.Read(p)
	g.rBytes.Add(uint64(n))
	g.stats.readBytes.Add(uint64(n))
	if err != nil && !isClosed(err) {
		g.errs.Add(1)
		g.stats.readErrors.Add(1)
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			g.timeout.Store(true)
			g.stats.idleTimeouts.Add(1)
		}
	}
	return n, err
}

func (g *guardedConn) Write(p []byte) (int, error) {
	if g.writeTimeout > 0 {
		_ = g.Conn.SetWriteDeadline(time.Now().Add(g.writeTimeout))
	}
	n, err := g.Conn.Write(p)
	g.wBytes.Add(uint64(n))
	g.stats.writeBytes.Add(uint64(n))
	if err != nil && !isClosed(err) {
		g.errs.Add(1)
		g.stats.writeErrors.Add(1)
	}
	return n, err
}

// reason classifies why the connection ended, for the disconnect log.
func (g *guardedConn) reason(err error) string {
	switch {
	case g.timeout.Load():
		return "idle timeout"
	case err != nil:
		return "protocol error"
	default:
		return "peer closed"
	}
}

// isClosed reports the benign end-of-life errors that should not count
// as connection faults: EOF is how clients hang up, net.ErrClosed is how
// the server hangs up on them.
func isClosed(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed)
}
