package main

// Chaos end-to-end suite: the full TCP stack — reconnecting clients,
// guarded connections, coordinator, sharded engine — driven through
// deterministic fault schedules (frame drops/tears/delays, mid-stream
// connection cuts, planner panics, queue saturation, server restart).
// After the churn the faults are disarmed and every surviving client is
// fenced differentially: its final meeting point and re-encoded safe
// region must be byte-identical to a fault-free computation over the
// same final locations. Faults may cost latency and retries; they must
// never cost correctness.
//
// Seeds come from CHAOS_SEEDS (comma-separated, default "1") so CI can
// run a fixed matrix.

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mpn/internal/core"
	"mpn/internal/faultinject"
	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/proto"
)

// chaosSchedule is one named fault configuration.
type chaosSchedule struct {
	name string
	// connOpts builds the per-dial transport fault schedule; nil leaves
	// connections clean. Applied only while the harness faults are live.
	connOpts func(seed int64, user uint32) faultinject.ConnOpts
	// script arms process-wide failpoints for the churn phase; nil arms
	// nothing.
	script func(seed int64) faultinject.Script
	// restart kills the server mid-churn and brings a fresh one up on a
	// new port (clients must re-register and rebuild the group).
	restart bool
	// durable runs the server with a state directory shared across the
	// restart: the kill is a simulated crash (WAL truncated to its last
	// fsynced byte, nothing drained), and the replacement server must
	// re-own every durable group from the recovered log before taking
	// traffic.
	durable bool
	// tweak adjusts the server config (e.g. a starved queue).
	tweak func(*serverConfig)
}

func chaosSchedules() []chaosSchedule {
	return []chaosSchedule{
		{
			// The fault-free anchor: same script, no faults. Its fence
			// against the independent planner is what makes the faulted
			// runs' fences differential — everyone must match the same
			// fault-free computation.
			name: "clean",
		},
		{
			name: "frame-faults",
			connOpts: func(seed int64, user uint32) faultinject.ConnOpts {
				return faultinject.ConnOpts{
					Seed:         seed*100 + int64(user),
					DropEveryNth: 7,
					TearEveryNth: 5, TearPause: time.Millisecond,
					DelayEveryNth: 3, Delay: 2 * time.Millisecond,
				}
			},
		},
		{
			name: "conn-cut",
			connOpts: func(seed int64, user uint32) faultinject.ConnOpts {
				return faultinject.ConnOpts{Seed: seed, CutAfter: 25}
			},
		},
		{
			name: "planner-panic",
			script: func(seed int64) faultinject.Script {
				return faultinject.Script{
					faultinject.EnginePlan: faultinject.PanicEvery(4, "chaos: injected planner fault"),
				}
			},
		},
		{
			name: "stall-overload",
			script: func(seed int64) faultinject.Script {
				return faultinject.Script{
					faultinject.EnginePlan: faultinject.StallEvery(1, 30*time.Millisecond),
				}
			},
			tweak: func(cfg *serverConfig) {
				cfg.shards = 1
				cfg.queue = 1
				cfg.admissionWait = -1 // shed immediately: overload must be survivable
			},
		},
		{
			name:    "server-restart",
			restart: true,
		},
		{
			// Kill-and-restore: crash the durable server mid-churn and
			// fence the restored one against the same fault-free plan.
			name:    "kill-restore",
			restart: true,
			durable: true,
		},
		{
			// Same, with a torn write on disk: one WAL append persists
			// only its first 5 bytes (a frame header cut mid-field, as a
			// real power cut can leave), then the writer wedges. Recovery
			// must truncate the torn tail and restore the valid prefix.
			name:    "kill-restore-torn",
			restart: true,
			durable: true,
			script: func(seed int64) faultinject.Script {
				return faultinject.Script{
					faultinject.WALAppend: func(hit uint64) faultinject.Effect {
						if hit == 3 {
							return faultinject.Effect{ShortWrite: 5}
						}
						return faultinject.Effect{}
					},
				}
			},
		},
		{
			// Same, crashing before the fsync can run: the sync path
			// panics (recovered by the writer as a crash), so everything
			// after the last completed sync is lost — recovery must come
			// up from the older prefix without phantom state.
			name:    "kill-restore-nosync",
			restart: true,
			durable: true,
			script: func(seed int64) faultinject.Script {
				return faultinject.Script{
					faultinject.WALSync: faultinject.PanicOn(2, "chaos: injected crash before fsync"),
				}
			},
		},
	}
}

// chaosHarness runs the real server behind a restartable TCP listener.
type chaosHarness struct {
	t    *testing.T
	cfg  serverConfig
	mu   sync.Mutex
	srv  *server
	ln   net.Listener
	live bool
	// faultsLive gates transport fault injection: dials during the fence
	// phase come up clean.
	fmu        sync.Mutex
	faultsLive bool
}

// trackingListener records accepted connections so kill() can sever them
// like a crashed process would.
type trackingListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *trackingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.conns = append(l.conns, c)
	l.mu.Unlock()
	return c, nil
}

func (l *trackingListener) killConns() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
	l.conns = nil
}

func (h *chaosHarness) start() {
	h.t.Helper()
	srv, err := newServer(h.cfg)
	if err != nil {
		h.t.Fatal(err)
	}
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		h.t.Fatal(err)
	}
	ln := &trackingListener{Listener: raw}
	h.mu.Lock()
	h.srv, h.ln, h.live = srv, ln, true
	h.mu.Unlock()
	go func() { _ = srv.serve(ln) }()
}

func (h *chaosHarness) addr() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ln.Addr().String()
}

// kill tears the server down like a crash: listener gone, every live
// connection severed, engine closed.
func (h *chaosHarness) kill() {
	h.mu.Lock()
	srv, ln, live := h.srv, h.ln, h.live
	h.live = false
	h.mu.Unlock()
	if !live {
		return
	}
	ln.Close()
	ln.(*trackingListener).killConns()
	srv.close()
}

// crash is kill without the clean shutdown: the WAL is truncated to its
// last fsynced byte before anything drains, so the replacement server
// recovers exactly what a dead process would have left on disk.
func (h *chaosHarness) crash() {
	h.mu.Lock()
	srv, ln, live := h.srv, h.ln, h.live
	h.live = false
	h.mu.Unlock()
	if !live {
		return
	}
	// Wedge the WAL before severing connections: a dead process cannot
	// journal the group teardowns its disappearing clients would cause.
	// (Severing first would fsync those unregistrations and durably
	// dissolve groups the crash should have preserved.)
	srv.crash()
	ln.Close()
	ln.(*trackingListener).killConns()
}

// ownsGroup reports whether the current server holds an engine mapping
// for the protocol group (i.e. re-owns it after a durable restore).
func (h *chaosHarness) ownsGroup(gid uint32) bool {
	h.mu.Lock()
	srv := h.srv
	h.mu.Unlock()
	srv.mu.Lock()
	defer srv.mu.Unlock()
	_, ok := srv.gidToEngine[gid]
	return ok
}

func (h *chaosHarness) setFaultsLive(v bool) {
	h.fmu.Lock()
	h.faultsLive = v
	h.fmu.Unlock()
}

func (h *chaosHarness) faultsAreLive() bool {
	h.fmu.Lock()
	defer h.fmu.Unlock()
	return h.faultsLive
}

// chaosUser is one reconnecting client with a scripted location.
type chaosUser struct {
	id uint32
	rc *proto.ReconnectClient
	mu sync.Mutex
	pt geom.Point
}

func (u *chaosUser) setLoc(p geom.Point) { u.mu.Lock(); u.pt = p; u.mu.Unlock() }
func (u *chaosUser) loc() geom.Point     { u.mu.Lock(); defer u.mu.Unlock(); return u.pt }

// report delivers one escape report, retrying through disconnects; under
// chaos a report may still be lost after a successful write — the fence
// loop's re-reports are the safety net, so losing this one is fine.
func (u *chaosUser) report() {
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := u.rc.Report(); err == nil || time.Now().After(deadline) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func newChaosUser(t *testing.T, h *chaosHarness, sched chaosSchedule, seed int64, id uint32, start geom.Point, groupSize uint32) *chaosUser {
	t.Helper()
	u := &chaosUser{id: id, pt: start}
	dial := func() (io.ReadWriteCloser, error) {
		conn, err := net.Dial("tcp", h.addr())
		if err != nil {
			return nil, err
		}
		if sched.connOpts != nil && h.faultsAreLive() {
			return faultinject.WrapConn(conn, sched.connOpts(seed, id)), nil
		}
		return conn, nil
	}
	rc, err := proto.NewReconnectClient(dial, 1, id, groupSize, u.loc, nil,
		proto.Backoff{Min: 10 * time.Millisecond, Max: 250 * time.Millisecond, Factor: 2, Jitter: 0.2, Seed: seed*10 + int64(id)},
		proto.WithHeartbeat(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	u.rc = rc
	rc.Start()
	return u
}

// chaosExpect computes the fault-free final plan with an independent
// planner over the same POIs, options, and final locations — the fence
// target every run, clean or faulted, must match byte for byte.
type chaosExpect struct {
	meeting geom.Point
	regions [][]byte
}

func chaosExpected(t *testing.T, pois []geom.Point, finals []geom.Point) chaosExpect {
	t.Helper()
	opts := core.DefaultOptions()
	opts.TileLimit = 5
	opts.Buffer = 20
	opts.Directed = true
	opts.Aggregate = gnn.Max
	planner, err := core.NewPlanner(pois, opts)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := planner.TileMSR(finals, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Regions) != len(finals) {
		t.Fatalf("planner produced %d regions for %d users", len(plan.Regions), len(finals))
	}
	exp := chaosExpect{meeting: plan.Best.Item.P}
	for _, r := range plan.Regions {
		// One decode/encode cycle normalizes the wire form (the planner's
		// native encoding and the re-encoded decoded form differ in
		// representation, stably, after the first cycle) — clients hold
		// decoded regions, so the fence compares in that space.
		dec, err := proto.DecodeRegion(proto.EncodeRegion(r))
		if err != nil {
			t.Fatal(err)
		}
		exp.regions = append(exp.regions, proto.EncodeRegion(dec))
	}
	return exp
}

func chaosSeeds(t *testing.T) []int64 {
	spec := os.Getenv("CHAOS_SEEDS")
	if spec == "" {
		spec = "1"
	}
	var seeds []int64
	for _, part := range strings.Split(spec, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEEDS: %v", err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// scriptLoc is the deterministic churn trajectory (no shared state, no
// randomness: the same round always yields the same point).
func scriptLoc(round int) geom.Point {
	frac := func(x float64) float64 { return x - float64(int(x)) }
	return geom.Pt(0.1+0.8*frac(float64(round)*0.37), 0.1+0.8*frac(float64(round)*0.61))
}

func TestChaos(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pois := make([]geom.Point, 500)
	for i := range pois {
		pois[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	starts := []geom.Point{geom.Pt(0.30, 0.30), geom.Pt(0.35, 0.32), geom.Pt(0.31, 0.36)}
	finals := []geom.Point{geom.Pt(0.30, 0.30), geom.Pt(0.60, 0.35), geom.Pt(0.40, 0.65)}
	want := chaosExpected(t, pois, finals)
	seeds := chaosSeeds(t)

	for _, sched := range chaosSchedules() {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed=%d", sched.name, seed), func(t *testing.T) {
				runChaosSchedule(t, sched, seed, pois, starts, finals, want)
			})
		}
	}
}

func runChaosSchedule(t *testing.T, sched chaosSchedule, seed int64, pois, starts, finals []geom.Point, want chaosExpect) {
	baseGoroutines := runtime.NumGoroutine()

	cfg := serverConfig{
		pois: pois, method: "tiled", agg: "max",
		alpha: 5, buffer: 20, shards: 2, workers: 1,
		readTimeout: 2 * time.Second, writeTimeout: 2 * time.Second,
		logger: log.New(io.Discard, "", 0),
	}
	if sched.durable {
		// One state directory across the whole schedule: the restarted
		// server recovers from it. A short fsync interval keeps the
		// crash loss window tight relative to the 20ms churn cadence.
		cfg.stateDir = t.TempDir()
		cfg.fsync = "interval"
		cfg.fsyncEvery = 2 * time.Millisecond
	}
	if sched.tweak != nil {
		sched.tweak(&cfg)
	}
	h := &chaosHarness{t: t, cfg: cfg}
	h.setFaultsLive(true)
	if sched.script != nil {
		faultinject.Arm(sched.script(seed))
	}
	defer faultinject.Disarm()
	h.start()
	defer h.kill()

	users := make([]*chaosUser, len(starts))
	for i, p := range starts {
		users[i] = newChaosUser(t, h, sched, seed, uint32(i), p, uint32(len(starts)))
	}
	defer func() {
		for _, u := range users {
			u.rc.Stop()
		}
	}()

	// The overload schedule needs competing groups: one group can never
	// overflow its own coalescing slot, so a fleet of single-user groups
	// burst-reports into the starved, stalled shard to force sheds.
	var aux []*e2eUser
	if sched.name == "stall-overload" {
		for i := 0; i < 6; i++ {
			a := dialUser(t, h.addr(), uint32(100+i), 0, geom.Pt(0.2+0.1*float64(i), 0.2))
			if err := a.client.Register(1); err != nil {
				t.Fatal(err)
			}
			a.waitNotify(t)
			aux = append(aux, a)
		}
	}

	// Churn: scripted movement and reports while the faults are live. No
	// assertions here — under chaos any individual round may be lost; the
	// system just has to survive it.
	const rounds = 18
	for r := 0; r < rounds; r++ {
		if sched.restart && r == rounds/2 {
			if sched.durable {
				h.crash()
				h.start() // recovers the state directory on boot
				// The group was journaled and fsynced long before the
				// crash (registration commits at round 0, the fsync
				// interval is milliseconds), so the restored server must
				// already own it — before any client reconnects.
				if !h.ownsGroup(1) {
					t.Fatal("restored server does not own the durable group")
				}
			} else {
				h.kill()
				h.start() // fresh port; the dial function re-reads addr()
			}
		}
		u := users[r%len(users)]
		u.setLoc(scriptLoc(r))
		u.report()
		for k, a := range aux {
			// Back-to-back reports from distinct groups against a depth-1
			// queue whose only worker is stalled: most must shed.
			a.setLoc(geom.Pt(0.2+0.1*float64(k), 0.2+0.01*float64(r+1)))
			if err := a.client.Report(); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Fence: faults off, everyone at their final location. A report over
	// the final locations recomputes the deterministic final plan; retry
	// until every surviving client exposes it byte-identically.
	faultinject.Disarm()
	h.setFaultsLive(false)
	for i, u := range users {
		u.setLoc(finals[i])
	}
	deadline := time.Now().Add(45 * time.Second)
	for {
		users[0].report()
		time.Sleep(150 * time.Millisecond)
		if chaosConverged(users, want) {
			break
		}
		if time.Now().After(deadline) {
			for i, u := range users {
				t.Logf("user %d: meeting=%v want=%v region-match=%v reconnects=%d connected=%v",
					i, u.rc.Meeting(), want.meeting,
					bytes.Equal(proto.EncodeRegion(u.rc.Region()), want.regions[i]),
					u.rc.Reconnects(), u.rc.Connected())
			}
			t.Fatal("fence never converged on the fault-free plan")
		}
	}

	// Under the starved-queue schedule the overload must have been both
	// survivable (fence held above) and observable: shed reports show up
	// in the server stats instead of being broadcast as fatal errors, and
	// none of the shed groups' clients died for it.
	if sched.name == "stall-overload" {
		st := h.srv.stats()
		t.Logf("overload: shed=%d engine-shed=%d", st.ShedReports, st.EngineShed)
		if st.ShedReports == 0 || st.EngineShed == 0 {
			t.Fatal("starved queue never shed a report: overload was not exercised")
		}
		for k, a := range aux {
			select {
			case err := <-a.runErr:
				t.Fatalf("aux client %d died under overload: %v", k, err)
			default:
			}
		}
	}

	// Teardown everything and require the goroutine count to return to
	// its pre-test baseline: no leaked writers, pingers, workers, or
	// reconnect loops under any schedule.
	for _, u := range users {
		u.rc.Stop()
	}
	h.kill()
	leakDeadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines+4 {
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseGoroutines, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func chaosConverged(users []*chaosUser, want chaosExpect) bool {
	for i, u := range users {
		if u.rc.Meeting() != want.meeting {
			return false
		}
		if !bytes.Equal(proto.EncodeRegion(u.rc.Region()), want.regions[i]) {
			return false
		}
	}
	return true
}
