// Hot-standby replication wiring: the primary ships its durable record
// stream to followers (internal/replica.Shipper over the WAL store),
// a standby tails that stream and replays every record through the
// same paths boot-time recovery uses, and a fencing epoch — journaled,
// shipped, and presented in every replication handshake — keeps a
// deposed primary from accepting writes after its follower promoted.
//
// Role state gates client writes (see writeGate): a primary admits
// them and pushes its peer list, a standby refuses them with a
// redirect at the primary, a fenced node refuses them with a redirect
// at whoever deposed it. Clients built on proto.ReconnectClient adopt
// pushed peer lists and fail over without operator involvement.
package main

import (
	"errors"
	"fmt"
	"net"
	"time"

	"mpn/internal/durable"
	"mpn/internal/engine"
	"mpn/internal/replica"
)

// initReplication starts the shipper and/or tailer per config. Called
// once from newServer after the coordinator exists; returns an error
// only for a bad config or a dead replication listener.
func (s *server) initReplication(cfg serverConfig, restored *durable.State) error {
	s.advertise = cfg.advertise
	s.standbyOf = cfg.standbyOf
	s.promoteAfter = cfg.promoteAfter
	s.replStop = make(chan struct{})
	role := replica.RolePrimary
	if cfg.standbyOf != "" {
		role = replica.RoleStandby
	}
	s.role = replica.NewRoleState(role)
	if restored != nil {
		s.epoch.Store(restored.Epoch)
	}
	if cfg.replicateTo == "" && cfg.standbyOf == "" {
		return nil
	}
	s.coord.SetWriteGate(s.writeGate)

	if cfg.replicateTo != "" {
		if s.store == nil {
			return errors.New("-replicate-to requires -state-dir: the replication stream is the durable record log")
		}
		if role == replica.RolePrimary && s.epoch.Load() == 0 {
			// A replicating primary always holds a concrete epoch so a
			// promoted follower can fence it by presenting a higher one.
			s.epoch.Store(1)
			s.store.EpochRecord(1)
		}
		s.ship = replica.NewShipper(replica.ShipperConfig{
			Store:     s.store,
			Epoch:     s.epoch.Load,
			Advertise: cfg.advertise,
			OnFenced:  s.onFenced,
		})
		ln, err := net.Listen("tcp", cfg.replicateTo)
		if err != nil {
			return fmt.Errorf("replication listener: %w", err)
		}
		s.shipLn = ln
		go s.ship.Serve(ln)
		s.logger.Printf("replication: shipping WAL to followers on %s", ln.Addr())
	}

	if cfg.standbyOf != "" {
		var initial *durable.State
		if restored != nil {
			initial = restored.Clone()
		}
		s.tail = replica.StartTailer(replica.TailerConfig{
			PrimaryAddr:  cfg.standbyOf,
			Advertise:    cfg.advertise,
			Epoch:        s.epoch.Load,
			OnRecord:     s.applyReplicated,
			Initial:      initial,
			RetryBackoff: cfg.replRetry,
			AckInterval:  cfg.replAck,
		})
		s.logger.Printf("replication: standby of %s (client writes refused until promotion)", cfg.standbyOf)
		if cfg.promoteAfter > 0 {
			go s.autoPromote()
		}
	}
	return nil
}

// stopRepl tears the replication plumbing down; safe to call more
// than once and with replication off.
func (s *server) stopRepl() {
	s.replOnce.Do(func() {
		if s.replStop != nil {
			close(s.replStop)
		}
		if s.tail != nil {
			s.tail.Stop()
		}
		if s.ship != nil {
			s.ship.Close()
		}
	})
}

// writeGate is the coordinator's write-admission hook: only a primary
// admits registrations and reports; everyone else refuses with a peer
// list redirecting the client at the node that can.
func (s *server) writeGate() (peers []string, epoch uint64, err error) {
	switch s.role.Get() {
	case replica.RolePrimary:
		if s.advertise != "" {
			peers = append(peers, s.advertise)
		}
		if s.ship != nil {
			peers = append(peers, s.ship.FollowerAddrs()...)
		}
		return peers, s.epoch.Load(), nil
	case replica.RoleStandby:
		if s.tail != nil {
			if a := s.tail.PrimaryAdvertise(); a != "" {
				peers = append(peers, a)
			}
		}
		if s.advertise != "" {
			peers = append(peers, s.advertise)
		}
		return peers, s.epoch.Load(), errors.New("standby: not accepting writes, use the primary")
	default: // RoleFenced
		if p, _ := s.fencedPeer.Load().(string); p != "" {
			peers = append(peers, p)
		}
		epoch = s.epoch.Load()
		if f := s.fencedEpoch.Load(); f > epoch {
			epoch = f
		}
		return peers, epoch, errors.New("fenced: a newer primary exists")
	}
}

// onFenced runs when a replication handshake presents an epoch above
// ours: this node has been deposed and must refuse writes from now on,
// redirecting clients at the fencer.
func (s *server) onFenced(epoch uint64, advertise string) {
	s.fencedEpoch.Store(epoch)
	if advertise != "" {
		s.fencedPeer.Store(advertise)
	}
	if s.role.Fence() {
		s.logger.Printf("replication: fenced by epoch %d (new primary %q); refusing writes", epoch, advertise)
	}
}

// promote lifts a standby to primary: stop following, adopt a fencing
// epoch above everything seen, journal it, flip the role, and
// best-effort fence the old primary so it refuses writes even if it
// comes back from the dead. Reports whether a promotion happened.
func (s *server) promote() bool {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if s.role.Get() != replica.RoleStandby {
		return false
	}
	epoch := s.epoch.Load()
	if s.tail != nil {
		// Stop() waits the tail loop out, so no replicated record can
		// land after the epoch bump below.
		s.tail.Stop()
		if pe := s.tail.PrimaryEpoch(); pe > epoch {
			epoch = pe
		}
	}
	epoch++
	s.epoch.Store(epoch)
	if s.store != nil {
		s.store.EpochRecord(epoch)
	}
	s.role.Promote()
	s.logger.Printf("replication: promoted to primary at epoch %d", epoch)
	if s.standbyOf != "" {
		go func(addr string, e uint64, adv string) {
			if err := replica.Fence(addr, e, adv, 2*time.Second); err != nil {
				s.logger.Printf("replication: fencing old primary %s: %v", addr, err)
			}
		}(s.standbyOf, epoch, s.advertise)
	}
	return true
}

// autoPromote watches the tail's liveness and promotes after the
// primary has been unreachable for promoteAfter. A fatal tail error
// (fenced or diverged) disables auto-promotion: a node that cannot
// prove it converged must not claim the primary role.
func (s *server) autoPromote() {
	tick := s.promoteAfter / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	lastLive := time.Now()
	for {
		select {
		case <-s.replStop:
			return
		case <-t.C:
		}
		if s.role.Get() != replica.RoleStandby {
			return
		}
		if s.tail.Err() != nil {
			s.logger.Printf("replication: auto-promotion disabled: %v", s.tail.Err())
			return
		}
		if s.tail.Stats().Connected {
			lastLive = time.Now()
			continue
		}
		if time.Since(lastLive) >= s.promoteAfter {
			s.promote()
			return
		}
	}
}

// applyReplicated replays one replicated record into the serving
// stack, strictly in stream order on the tailer goroutine. It reuses
// exactly the paths boot-time recovery uses — ApplyPOIs for POI
// batches, RegisterTag/SubmitTag for group state — and the engine's
// journal hook re-journals each application locally, so a promoted
// standby's own durable state is as authoritative as the primary's
// was. An error return is fatal to the tail (ErrDiverged): replay can
// no longer converge.
func (s *server) applyReplicated(rec durable.Record) error {
	switch rec.Type {
	case durable.RecEpoch:
		s.adoptEpoch(rec.Epoch)
		return nil
	case durable.RecMeta:
		if rec.POIBase != s.poiBase {
			return fmt.Errorf("primary POI base %d, ours %d (different -n/-seed/-pois boot)", rec.POIBase, s.poiBase)
		}
		return nil
	case durable.RecPOIs:
		// The planner's OnMutate hook journals the applied batch under
		// our own WAL; version alignment is checked inside ApplyPOIs.
		_, err := s.planner.ApplyPOIs(rec.Inserts, rec.Deletes)
		return err
	case durable.RecUnreg:
		// Releases the engine group; the engine's GroupRemoved hook
		// journals the unregistration under our own WAL.
		s.onGroupEmpty(rec.GID)
		return nil
	case durable.RecGroup:
		return s.applyReplGroup(rec)
	}
	return fmt.Errorf("unknown replicated record type %d", rec.Type)
}

// adoptEpoch raises the node's fencing epoch to e (never lowers it)
// and journals the adoption.
func (s *server) adoptEpoch(e uint64) {
	for {
		cur := s.epoch.Load()
		if e <= cur {
			return
		}
		if s.epoch.CompareAndSwap(cur, e) {
			if s.store != nil {
				s.store.EpochRecord(e)
			}
			return
		}
	}
}

// applyReplGroup mirrors submit()'s registration logic for a
// replicated group record: first sight registers (synchronous plan,
// so the standby is warm), a shape change retires the stale engine
// group first, and later records are ordinary submissions. The
// engine's admission control can shed a submission under load — on
// the replication path that must never surface as divergence, so
// overload retries until the queue drains or the server stops.
func (s *server) applyReplGroup(rec durable.Record) error {
	s.mu.Lock()
	eid, ok := s.gidToEngine[rec.GID]
	if ok && s.eng.Size(eid) != len(rec.Locs) {
		delete(s.gidToEngine, rec.GID)
		delete(s.engineToGid, eid)
		s.eng.Unregister(eid)
		ok = false
	}
	if !ok {
		eid, err := s.eng.RegisterTag(rec.Locs, nil, reportTag{gid: rec.GID, ids: rec.IDs})
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("replicated group %d: register: %w", rec.GID, err)
		}
		s.gidToEngine[rec.GID] = eid
		s.engineToGid[eid] = rec.GID
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	for {
		err := s.eng.SubmitTag(eid, rec.Locs, nil, reportTag{gid: rec.GID, ids: rec.IDs})
		if err == nil {
			return nil
		}
		if !errors.Is(err, engine.ErrOverloaded) {
			return fmt.Errorf("replicated group %d: submit: %w", rec.GID, err)
		}
		select {
		case <-s.replStop:
			return nil // shutting down; the stream dies with us anyway
		case <-time.After(time.Millisecond):
		}
	}
}

// replAddr returns the replication listener's bound address ("" when
// not shipping) — tests listen on :0 and need the port.
func (s *server) replAddr() string {
	if s.shipLn == nil {
		return ""
	}
	return s.shipLn.Addr().String()
}
