package main

// Failover end-to-end suite: two real servers — a replicating primary
// and a hot standby tailing its WAL stream — driven over real TCP with
// reconnecting multi-address clients. The schedules cover the whole
// failover story: primary crash with automatic standby promotion and
// client failover (fenced differentially against a fault-free oracle,
// like the chaos suite), deliberate promotion with the old primary
// still alive (fencing epoch, write refusal, client redirect), an
// observer subscription surviving the failover, and a follower
// catch-up differential that byte-compares the two nodes' canonical
// durable states after interleaved group and POI churn.
//
// Seeds come from CHAOS_SEEDS like the chaos suite, so CI runs the
// same matrix.

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"runtime"
	"testing"
	"time"

	"mpn/internal/durable"
	"mpn/internal/geom"
	"mpn/internal/proto"
	"mpn/internal/replica"
)

// waitCond polls cond until it holds or the deadline passes.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// failoverNode is one server of a replicated pair, listening for
// clients on a pre-bound loopback port so the config can advertise the
// real address before the server boots.
type failoverNode struct {
	t    *testing.T
	srv  *server
	ln   *trackingListener
	addr string // client-facing address (also the advertise)
}

func startFailoverNode(t *testing.T, cfg serverConfig) *failoverNode {
	t.Helper()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg.advertise = raw.Addr().String()
	srv, err := newServer(cfg)
	if err != nil {
		raw.Close()
		t.Fatal(err)
	}
	ln := &trackingListener{Listener: raw}
	go func() { _ = srv.serve(ln) }()
	return &failoverNode{t: t, srv: srv, ln: ln, addr: raw.Addr().String()}
}

// crash tears the node down like a dead process: WAL wedged at its
// last fsynced byte, then listener and connections severed.
func (n *failoverNode) crash() {
	n.srv.crash()
	n.ln.Close()
	n.ln.killConns()
}

// kill is the clean shutdown.
func (n *failoverNode) kill() {
	n.ln.Close()
	n.ln.killConns()
	n.srv.close()
}

// failoverConfig is the shared base config: durable, fast fsync, fast
// replication retry/ack so failover settles in test time.
func failoverConfig(t *testing.T, pois []geom.Point) serverConfig {
	t.Helper()
	return serverConfig{
		pois: pois, method: "tiled", agg: "max",
		alpha: 5, buffer: 20, shards: 2, workers: 1,
		readTimeout: 2 * time.Second, writeTimeout: 2 * time.Second,
		stateDir: t.TempDir(), fsync: "interval", fsyncEvery: 2 * time.Millisecond,
		replRetry: 10 * time.Millisecond, replAck: 5 * time.Millisecond,
		logger: log.New(io.Discard, "", 0),
	}
}

// startReplicatedPair boots a primary shipping its WAL and a standby
// tailing it, and waits for the stream to be live.
func startReplicatedPair(t *testing.T, pois []geom.Point, promoteAfter time.Duration) (primary, standby *failoverNode) {
	t.Helper()
	pcfg := failoverConfig(t, pois)
	pcfg.replicateTo = "127.0.0.1:0"
	primary = startFailoverNode(t, pcfg)

	scfg := failoverConfig(t, pois)
	scfg.standbyOf = primary.srv.replAddr()
	scfg.promoteAfter = promoteAfter
	standby = startFailoverNode(t, scfg)

	waitCond(t, "standby connected to primary", func() bool {
		return standby.srv.tail.Stats().Connected
	})
	return primary, standby
}

func failoverPOIs() []geom.Point {
	rng := rand.New(rand.NewSource(9))
	pois := make([]geom.Point, 500)
	for i := range pois {
		pois[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	return pois
}

// newFailoverUser is a chaosUser dialing through the multi-address
// reconnect client: it knows both nodes up front and additionally
// adopts every server-pushed peer list.
func newFailoverUser(t *testing.T, addrs []string, seed int64, id uint32, start geom.Point, groupSize uint32) *chaosUser {
	t.Helper()
	u := &chaosUser{id: id, pt: start}
	dial := func(addr string) (io.ReadWriteCloser, error) {
		return net.Dial("tcp", addr)
	}
	rc, err := proto.NewReconnectClientAddrs(dial, addrs, 1, id, groupSize, u.loc, nil,
		proto.Backoff{Min: 10 * time.Millisecond, Max: 250 * time.Millisecond, Factor: 2, Jitter: 0.2, Seed: seed*10 + int64(id)},
		proto.WithHeartbeat(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	u.rc = rc
	rc.Start()
	return u
}

// TestFailoverKillPrimary is the kill-primary-failover schedule: churn
// against the primary, crash it mid-churn, let the standby auto-promote,
// and fence every surviving client against the fault-free oracle — the
// same differential bar the chaos suite holds single-server recovery to.
func TestFailoverKillPrimary(t *testing.T) {
	pois := failoverPOIs()
	starts := []geom.Point{geom.Pt(0.30, 0.30), geom.Pt(0.35, 0.32), geom.Pt(0.31, 0.36)}
	finals := []geom.Point{geom.Pt(0.30, 0.30), geom.Pt(0.60, 0.35), geom.Pt(0.40, 0.65)}
	want := chaosExpected(t, pois, finals)
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runFailoverKillPrimary(t, seed, pois, starts, finals, want)
		})
	}
}

func runFailoverKillPrimary(t *testing.T, seed int64, pois, starts, finals []geom.Point, want chaosExpect) {
	baseGoroutines := runtime.NumGoroutine()
	primary, standby := startReplicatedPair(t, pois, 300*time.Millisecond)
	defer standby.kill()
	primaryDead := false
	defer func() {
		if !primaryDead {
			primary.kill()
		}
	}()

	addrs := []string{primary.addr, standby.addr}
	users := make([]*chaosUser, len(starts))
	for i, p := range starts {
		users[i] = newFailoverUser(t, addrs, seed, uint32(i), p, uint32(len(starts)))
	}
	defer func() {
		for _, u := range users {
			u.rc.Stop()
		}
	}()

	// Churn against the primary; the standby replays the WAL stream
	// live. Mid-churn the primary dies like a crashed process.
	const rounds = 18
	for r := 0; r < rounds; r++ {
		if r == rounds/2 {
			primary.crash()
			primaryDead = true
		}
		u := users[r%len(users)]
		u.setLoc(scriptLoc(r))
		u.report()
		time.Sleep(20 * time.Millisecond)
	}

	// Fence: everyone at their final location; the promoted standby
	// must serve the exact fault-free plan to every failed-over client.
	for i, u := range users {
		u.setLoc(finals[i])
	}
	deadline := time.Now().Add(45 * time.Second)
	for {
		users[0].report()
		time.Sleep(150 * time.Millisecond)
		if chaosConverged(users, want) {
			break
		}
		if time.Now().After(deadline) {
			st := standby.srv.stats()
			for i, u := range users {
				t.Logf("user %d: meeting=%v want=%v region-match=%v reconnects=%d connected=%v addrs=%v",
					i, u.rc.Meeting(), want.meeting,
					bytes.Equal(proto.EncodeRegion(u.rc.Region()), want.regions[i]),
					u.rc.Reconnects(), u.rc.Connected(), u.rc.Addrs())
			}
			t.Fatalf("failover fence never converged (standby role=%s epoch=%d tail=%+v)",
				st.Role, st.Epoch, st.Tail)
		}
	}

	// The standby must have promoted itself past the primary's epoch.
	st := standby.srv.stats()
	if st.Role != "primary" {
		t.Fatalf("standby role after failover: %s", st.Role)
	}
	if st.Epoch < 2 {
		t.Fatalf("promoted epoch %d, want >= 2", st.Epoch)
	}

	// Full teardown returns the goroutine count to its baseline: no
	// leaked tailer, shipper, promotion watcher, or client loops.
	for _, u := range users {
		u.rc.Stop()
	}
	standby.kill()
	leakDeadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines+4 {
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseGoroutines, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestFailoverFencing promotes the standby while the primary is still
// alive: the fencing handshake must depose the primary — byte-identical
// epochs on both sides — after which the deposed node refuses every
// write with a redirect at its successor, and a client that only knows
// the old primary still converges on the new one.
func TestFailoverFencing(t *testing.T) {
	pois := failoverPOIs()
	finals := []geom.Point{geom.Pt(0.30, 0.30), geom.Pt(0.60, 0.35), geom.Pt(0.40, 0.65)}
	want := chaosExpected(t, pois, finals)

	primary, standby := startReplicatedPair(t, pois, 0) // manual promotion only
	defer standby.kill()
	defer primary.kill()

	users := make([]*chaosUser, len(finals))
	for i := range finals {
		// These clients know only the old primary; every address they
		// learn afterwards arrives through pushed peer frames.
		users[i] = newFailoverUser(t, []string{primary.addr}, 7, uint32(i), finals[i], uint32(len(finals)))
	}
	defer func() {
		for _, u := range users {
			u.rc.Stop()
		}
	}()
	waitCond(t, "group registered on primary", func() bool {
		for _, u := range users {
			if len(u.rc.Region().Tiles) == 0 {
				return false
			}
		}
		return true
	})
	// Let the replicated registrations reach the standby before the
	// promotion cuts the stream.
	waitCond(t, "standby caught up", func() bool {
		st := primary.srv.ship.Stats()
		return st.StreamPos > 0 && st.AckPos == st.StreamPos
	})

	if !standby.srv.promote() {
		t.Fatal("promote refused")
	}
	if standby.srv.promote() {
		t.Fatal("second promote should be a no-op")
	}
	newEpoch := standby.srv.epoch.Load()
	if newEpoch < 2 {
		t.Fatalf("promoted epoch %d, want >= 2", newEpoch)
	}

	// The promotion fences the old primary over the replication port:
	// the deposed side must hold the promoted side's exact epoch and
	// learn its client-facing address.
	waitCond(t, "old primary fenced", func() bool {
		return primary.srv.role.Get() == replica.RoleFenced
	})
	if got := primary.srv.fencedEpoch.Load(); got != newEpoch {
		t.Fatalf("fenced epoch %d, promoted epoch %d — must be byte-identical", got, newEpoch)
	}
	if got, _ := primary.srv.fencedPeer.Load().(string); got != standby.addr {
		t.Fatalf("fenced peer %q, want %q", got, standby.addr)
	}

	// Every client knew only the old primary; refused writes carry the
	// successor's address, so they all converge on the promoted node.
	deadline := time.Now().Add(30 * time.Second)
	for {
		users[0].report()
		time.Sleep(100 * time.Millisecond)
		if chaosConverged(users, want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("clients never failed over to the promoted standby (primary refusals=%d)",
				primary.srv.stats().Coord.WriteRefusals)
		}
	}
	if got := primary.srv.stats().Coord.WriteRefusals; got == 0 {
		t.Fatal("deposed primary never refused a write")
	}
	if st := standby.srv.stats(); st.Role != "primary" {
		t.Fatalf("standby role: %s", st.Role)
	}

	// A fresh client that has never heard of the standby: the deposed
	// primary's refusal must redirect it to the successor.
	late := newFailoverUser(t, []string{primary.addr}, 11, 50, geom.Pt(0.5, 0.5), 1)
	defer late.rc.Stop()
	// Fresh single-user group (gid travels via the chaosUser's rc,
	// which is pinned to group 1) — use the region converging instead:
	// group 1 is full, so this user joins as a 4th member of a 3-group
	// and must be rejected by size; instead just assert the peer list
	// was adopted from the refusal.
	waitCond(t, "late client adopts the successor", func() bool {
		for _, a := range late.rc.Addrs() {
			if a == standby.addr {
				return true
			}
		}
		return false
	})
}

// TestFailoverObserver: an observer subscription — registered through
// the multi-address client before the crash — survives the failover
// and converges on the promoted node's full group view.
func TestFailoverObserver(t *testing.T) {
	pois := failoverPOIs()
	finals := []geom.Point{geom.Pt(0.30, 0.30), geom.Pt(0.60, 0.35), geom.Pt(0.40, 0.65)}
	want := chaosExpected(t, pois, finals)

	primary, standby := startReplicatedPair(t, pois, 250*time.Millisecond)
	defer standby.kill()
	primaryDead := false
	defer func() {
		if !primaryDead {
			primary.kill()
		}
	}()

	addrs := []string{primary.addr, standby.addr}
	users := make([]*chaosUser, len(finals))
	for i := range finals {
		users[i] = newFailoverUser(t, addrs, 13, uint32(i), finals[i], uint32(len(finals)))
	}
	defer func() {
		for _, u := range users {
			u.rc.Stop()
		}
	}()
	waitCond(t, "members registered", func() bool {
		for _, u := range users {
			if len(u.rc.Region().Tiles) == 0 {
				return false
			}
		}
		return true
	})

	obs, err := proto.NewReconnectClientAddrs(
		func(addr string) (io.ReadWriteCloser, error) { return net.Dial("tcp", addr) },
		addrs, 1, 90, uint32(len(finals)),
		func() geom.Point { return geom.Point{} }, nil,
		proto.Backoff{Min: 10 * time.Millisecond, Max: 250 * time.Millisecond, Factor: 2, Seed: 13},
		proto.AsObserver(), proto.WithHeartbeat(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	obs.Start()
	defer obs.Stop()
	waitCond(t, "observer sees the group", func() bool {
		return len(obs.GroupRegions()) == len(finals)
	})

	// Kill the primary mid-observation. The standby promotes, members
	// fail over and re-report; the observer must follow and converge on
	// the promoted node's view of the exact fault-free plan.
	primary.crash()
	primaryDead = true

	deadline := time.Now().Add(45 * time.Second)
	for {
		users[0].report()
		time.Sleep(150 * time.Millisecond)
		if chaosConverged(users, want) {
			regions := obs.GroupRegions()
			match := len(regions) == len(finals)
			for i := range finals {
				r, ok := regions[uint32(i)]
				if !ok || !bytes.Equal(proto.EncodeRegion(r), want.regions[i]) {
					match = false
					break
				}
			}
			if match {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("observer never converged after failover: holds %d regions, reconnects=%d, addrs=%v",
				len(obs.GroupRegions()), obs.Reconnects(), obs.Addrs())
		}
	}
	if obs.Reconnects() == 0 {
		t.Fatal("observer never reconnected — the failover was not exercised")
	}
}

// TestFollowerCatchUpDifferential: interleaved group churn and POI
// mutations against the primary; after the stream quiesces the two
// nodes' canonical durable states must be byte-identical — live
// (stream position acked through) and again after a clean close and
// recovery of both state directories.
func TestFollowerCatchUpDifferential(t *testing.T) {
	pois := failoverPOIs()
	primary, standby := startReplicatedPair(t, pois, 0)
	pDir, sDir := primary.srv.stateDir, standby.srv.stateDir
	standbyDead, primaryDead := false, false
	defer func() {
		if !standbyDead {
			standby.kill()
		}
		if !primaryDead {
			primary.kill()
		}
	}()

	users := make([]*chaosUser, 3)
	for i := range users {
		users[i] = newFailoverUser(t, []string{primary.addr}, 17, uint32(i), scriptLoc(i), 3)
	}
	waitCond(t, "group registered", func() bool {
		for _, u := range users {
			if len(u.rc.Region().Tiles) == 0 {
				return false
			}
		}
		return true
	})

	// Interleave movement reports with live POI churn: inserts extend
	// the external id space, deletes tombstone one synthetic and one
	// inserted POI. Every mutation is journaled, shipped, and replayed.
	for r := 0; r < 12; r++ {
		u := users[r%len(users)]
		u.setLoc(scriptLoc(100 + r))
		u.report()
		switch r {
		case 3:
			if _, err := primary.srv.planner.ApplyPOIs([]geom.Point{geom.Pt(0.11, 0.12), geom.Pt(0.13, 0.14)}, nil); err != nil {
				t.Fatal(err)
			}
		case 6:
			if _, err := primary.srv.planner.ApplyPOIs(nil, []int{3, len(pois)}); err != nil {
				t.Fatal(err)
			}
		case 9:
			if _, err := primary.srv.planner.ApplyPOIs([]geom.Point{geom.Pt(0.15, 0.16)}, nil); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	// One final report round after the last POI batch so every group
	// record the standby replays postdates the final POI version.
	for _, u := range users {
		u.report()
	}

	// Quiesce: the standby has acked everything the primary shipped,
	// and the position is stable.
	var quiescedAt uint64
	waitCond(t, "stream quiesced", func() bool {
		st := primary.srv.ship.Stats()
		if st.Followers != 1 || st.AckPos != st.StreamPos || st.StreamPos == 0 {
			return false
		}
		if quiescedAt != st.StreamPos {
			quiescedAt = st.StreamPos
			return false // hold one extra poll to see it stable
		}
		return true
	})

	// Live differential: canonical serialized states byte-identical.
	pState, _, pSub := primary.srv.store.StreamFrom(1)
	pSub.Close()
	sState, _, sSub := standby.srv.store.StreamFrom(1)
	sSub.Close()
	if !bytes.Equal(durable.AppendStateFrames(nil, pState), durable.AppendStateFrames(nil, sState)) {
		t.Fatalf("live follower state diverged from primary:\nprimary:  %+v\nfollower: %+v", pState, sState)
	}

	// Disconnect everyone; the primary journals the group teardown and
	// ships it, so both nodes converge on the empty-group state.
	for _, u := range users {
		u.rc.Stop()
	}
	waitCond(t, "group torn down on primary", func() bool {
		primary.srv.mu.Lock()
		n := len(primary.srv.gidToEngine)
		primary.srv.mu.Unlock()
		return n == 0
	})
	waitCond(t, "teardown replicated", func() bool {
		st := primary.srv.ship.Stats()
		return st.Followers == 1 && st.AckPos == st.StreamPos
	})

	// Clean close both; recover both directories; the recovered states
	// must again be byte-identical (POI history, epoch, no groups).
	standby.kill()
	standbyDead = true
	primary.kill()
	primaryDead = true
	pFinal, _, err := durable.Recover(pDir)
	if err != nil {
		t.Fatal(err)
	}
	sFinal, _, err := durable.Recover(sDir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(durable.AppendStateFrames(nil, pFinal), durable.AppendStateFrames(nil, sFinal)) {
		t.Fatalf("recovered follower state diverged from primary:\nprimary:  %+v\nfollower: %+v", pFinal, sFinal)
	}
	if len(pFinal.Groups) != 0 {
		t.Fatalf("clean close left %d groups in the primary log", len(pFinal.Groups))
	}
	if pFinal.Epoch == 0 {
		t.Fatal("replicating primary never journaled its epoch")
	}
}
