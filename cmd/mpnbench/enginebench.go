package main

// The -engine mode: a concurrent-groups throughput benchmark for the
// sharded group engine, comparing the pre-engine baseline (every
// recomputation serialized behind one registry mutex, as the synchronous
// coordinator did) against the engine at increasing shard counts. Each
// configuration drives the same workload — P producer goroutines firing
// location updates at G live groups for a fixed duration — and reports
// sustained submission and recomputation rates plus the coalescing
// factor.

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mpn/internal/core"
	"mpn/internal/engine"
	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/workload"
)

type engineBenchConfig struct {
	POIs      int
	Groups    int
	GroupSize int
	Producers int
	Duration  time.Duration
	Alpha     int
	Buffer    int
}

func defaultEngineBenchConfig() engineBenchConfig {
	return engineBenchConfig{
		POIs:      workload.DefaultPOICount,
		Groups:    64,
		GroupSize: 3,
		Producers: 4 * runtime.GOMAXPROCS(0),
		Duration:  2 * time.Second,
		Alpha:     8,
		Buffer:    50,
	}
}

// benchLocs returns a clustered random group near base.
func benchGroupLocs(rng *rand.Rand, m int) []geom.Point {
	base := geom.Pt(0.1+0.8*rng.Float64(), 0.1+0.8*rng.Float64())
	users := make([]geom.Point, m)
	for i := range users {
		users[i] = geom.Pt(base.X+0.02*rng.Float64(), base.Y+0.02*rng.Float64())
	}
	return users
}

func runEngineBench(out io.Writer, cfg engineBenchConfig) error {
	pcfg := workload.DefaultPOIConfig()
	pcfg.N = cfg.POIs
	pois, err := workload.GeneratePOIs(pcfg)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.Aggregate = gnn.Max
	opts.TileLimit = cfg.Alpha
	opts.Buffer = cfg.Buffer
	opts.Directed = true
	planner, err := core.NewPlanner(pois, opts)
	if err != nil {
		return err
	}
	plan := engine.PlannerFunc(planner, false)     // mutex baseline: pooled workspace per call
	planWS := engine.PlannerWSFunc(planner, false) // engine: one workspace per worker

	fmt.Fprintf(out, "engine throughput: %d POIs, %d groups × %d users, %d producers, %v per config (α=%d, b=%d)\n\n",
		len(pois), cfg.Groups, cfg.GroupSize, cfg.Producers, cfg.Duration, cfg.Alpha, cfg.Buffer)
	fmt.Fprintf(out, "  %-28s %14s %14s %10s\n", "config", "submissions/s", "recomputes/s", "coalesce")

	// Baseline: one registry mutex held across every recomputation.
	subs, recs := runMutexBaseline(plan, cfg)
	printEngineRow(out, "single mutex (baseline)", subs, recs, cfg.Duration)

	procs := runtime.GOMAXPROCS(0)
	shardSweep := []int{1, 2, 4}
	if procs > 4 {
		shardSweep = append(shardSweep, procs)
	}
	for _, shards := range shardSweep {
		subs, recs := runEngineConfig(planWS, cfg, shards)
		printEngineRow(out, fmt.Sprintf("engine %d shard × 1 worker", shards), subs, recs, cfg.Duration)
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, "coalesce = submissions per recomputation; >1 means the engine collapsed")
	fmt.Fprintln(out, "bursts for the same group into one safe-region computation.")
	return nil
}

func printEngineRow(out io.Writer, name string, subs, recs int, dur time.Duration) {
	sec := dur.Seconds()
	coalesce := 0.0
	if recs > 0 {
		coalesce = float64(subs) / float64(recs)
	}
	fmt.Fprintf(out, "  %-28s %14.0f %14.0f %9.1fx\n",
		name, float64(subs)/sec, float64(recs)/sec, coalesce)
}

// runMutexBaseline replays the pre-engine server: producers contend on a
// single mutex and each submission recomputes inline while holding it.
func runMutexBaseline(plan engine.PlanFunc, cfg engineBenchConfig) (subs, recs int) {
	var mu sync.Mutex
	type groupSlot struct {
		meeting geom.Point
		regions []core.SafeRegion
	}
	groups := make([]groupSlot, cfg.Groups)
	rng := rand.New(rand.NewSource(1))
	for i := range groups {
		m, r, _, err := plan(benchGroupLocs(rng, cfg.GroupSize), nil)
		if err != nil {
			return 0, 0
		}
		groups[i] = groupSlot{m, r}
	}
	var stop atomic.Bool
	var done, computed atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < cfg.Producers; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				i := rng.Intn(cfg.Groups)
				locs := benchGroupLocs(rng, cfg.GroupSize)
				mu.Lock()
				m, r, _, err := plan(locs, nil)
				if err == nil {
					groups[i] = groupSlot{m, r}
				}
				mu.Unlock()
				done.Add(1)
				computed.Add(1)
			}
		}(int64(p))
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	return int(done.Load()), int(computed.Load())
}

// runEngineConfig drives the sharded engine asynchronously: producers
// submit, the worker pool recomputes, coalescing absorbs bursts.
func runEngineConfig(plan engine.PlanWSFunc, cfg engineBenchConfig, shards int) (subs, recs int) {
	eng := engine.NewWS(plan, engine.Options{Shards: shards, Workers: 1, QueueDepth: 4 * cfg.Groups})
	defer eng.Close()
	rng := rand.New(rand.NewSource(1))
	ids := make([]engine.GroupID, cfg.Groups)
	for i := range ids {
		id, err := eng.Register(benchGroupLocs(rng, cfg.GroupSize), nil)
		if err != nil {
			return 0, 0
		}
		ids[i] = id
	}
	before := 0
	for _, id := range ids {
		before += eng.Updates(id)
	}
	var stop atomic.Bool
	var done atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < cfg.Producers; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				i := rng.Intn(cfg.Groups)
				if err := eng.Submit(ids[i], benchGroupLocs(rng, cfg.GroupSize), nil); err != nil {
					return
				}
				done.Add(1)
			}
		}(int64(p))
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	after := 0
	for _, id := range ids {
		after += eng.Updates(id)
	}
	return int(done.Load()), after - before
}
