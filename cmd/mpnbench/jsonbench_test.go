package main

import (
	"testing"

	"mpn/internal/benchfmt"
)

// mergeReports must take the per-field median across rounds, keep the
// round-1 series order, and recompute OpsPerSec from the median ns/op.
func TestMergeReports(t *testing.T) {
	mk := func(ns float64, allocs int64, hits uint64) benchfmt.Report {
		return benchfmt.Report{
			Description: "d", POIs: 10,
			Series: []benchfmt.Series{
				{Name: "plan", GroupSize: 2, NsPerOp: ns, OpsPerSec: 1e9 / ns, AllocsPerOp: allocs},
				{Name: "churn_plan_cached", GroupSize: 3, NsPerOp: ns * 2, CacheHits: hits},
				{Name: "notify_bytes_full", GroupSize: 2, WireBytes: 500},
			},
		}
	}
	// ns medians: plan=100 (from round 2), allocs median=7 (round 3),
	// hits median=20 (round 1) — medians are per field, so a single round
	// need not win every field.
	merged := mergeReports([]benchfmt.Report{
		mk(300, 5, 20), mk(100, 9, 10), mk(200, 7, 30),
	})
	if len(merged.Series) != 3 {
		t.Fatalf("series=%d", len(merged.Series))
	}
	plan := merged.Series[0]
	if plan.Name != "plan" || plan.NsPerOp != 200 || plan.AllocsPerOp != 7 {
		t.Fatalf("plan merged wrong: %+v", plan)
	}
	if got, want := plan.OpsPerSec, 1e9/200.0; got != want {
		t.Fatalf("OpsPerSec=%v want %v", got, want)
	}
	cached := merged.Series[1]
	if cached.NsPerOp != 400 || cached.CacheHits != 20 {
		t.Fatalf("cached merged wrong: %+v", cached)
	}
	if merged.Series[2].WireBytes != 500 {
		t.Fatalf("wire bytes lost: %+v", merged.Series[2])
	}

	// A single round passes through untouched.
	one := mergeReports([]benchfmt.Report{mk(123, 4, 5)})
	if one.Series[0].NsPerOp != 123 || one.Series[0].AllocsPerOp != 4 {
		t.Fatalf("single round altered: %+v", one.Series[0])
	}
}
