// Command mpnbench regenerates the figures of the paper's evaluation
// (Section 7) as text tables: update frequency, communication cost
// (packets), and server CPU time for Circle, Tile, Tile-D and the buffered
// Tile-D-b across group size, data size, user speed, and buffer sweeps —
// for both the MPN and Sum-MPN objectives.
//
// Usage:
//
//	mpnbench [-scale quick|full|bench] [-fig all|13|14|15|16|17|18|19] [-o FILE]
//	mpnbench -engine [-egroups N] [-edur D]   concurrent-engine throughput
//	mpnbench -json [-rounds N] [-o FILE]      plan/update series → BENCH_plan.json
//
// The -json mode micro-benchmarks steady-state safe-region planning (the
// workspace-reusing TileMSRInto kernel and the engine's synchronous
// update path) across group sizes and writes the ns/op, throughput, and
// allocs/op series as JSON — the repo's benchmark baseline format. The
// sweep runs -rounds times end to end (interleaved, so a load spike
// perturbs at most one measurement per series) and each series reports
// the per-field median across rounds.
//
// The quick scale (default) keeps the POI cardinality and every algorithm
// parameter at the paper's values but shortens trajectories so the whole
// suite completes in minutes on one core; -scale full reproduces the
// paper's 60×10,000-timestamp workloads.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"mpn/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mpnbench: ")

	scaleName := flag.String("scale", "quick", "workload scale: quick, full, or bench")
	figArg := flag.String("fig", "all", "figure to regenerate: all or one of 13,14,15,16,17,18,19")
	outPath := flag.String("o", "", "write tables to this file instead of stdout")
	steps := flag.Int("steps", 0, "override trajectory length (0 = scale default)")
	groups := flag.Int("groups", 0, "override group count averaged over (0 = scale default)")
	incremental := flag.Bool("incremental", true, "replay figures under the paper's incremental maintenance protocol (false = historical full-replan accounting)")
	deltaWire := flag.Bool("delta", true, "account notification bytes/packets under the delta wire protocol (unchanged regions ship a tiny delta frame; requires -incremental)")
	cacheBytes := flag.Int64("gnncache", 0, "shared GNN neighborhood cache byte budget per figure run (0 = no cache)")
	engineMode := flag.Bool("engine", false, "run the concurrent-engine throughput benchmark instead of the figures")
	engineGroups := flag.Int("egroups", 0, "engine benchmark: live group count (0 = 64)")
	engineDur := flag.Duration("edur", 0, "engine benchmark: measurement window per config (0 = 2s)")
	jsonMode := flag.Bool("json", false, "write the plan/update benchmark series as JSON (default BENCH_plan.json; -o overrides)")
	jsonRounds := flag.Int("rounds", 3, "-json: interleaved sweep repetitions merged by per-series median (1 = historical single-shot)")
	flag.Parse()

	if *jsonMode {
		path := *outPath
		if path == "" {
			path = "BENCH_plan.json"
		}
		fmt.Printf("plan/update benchmark series → %s\n", path)
		// Buffer the whole report and write the file only after the sweep
		// succeeds, so a failed or interrupted run never truncates an
		// existing baseline.
		var buf bytes.Buffer
		if err := runPlanJSONBench(&buf, os.Stdout, *jsonRounds); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *engineMode {
		var out io.Writer = os.Stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		cfg := defaultEngineBenchConfig()
		if *engineGroups > 0 {
			cfg.Groups = *engineGroups
		}
		if *engineDur > 0 {
			cfg.Duration = *engineDur
		}
		if err := runEngineBench(out, cfg); err != nil {
			log.Fatal(err)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	case "bench":
		scale = experiments.Bench
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	if *steps > 0 {
		scale.Steps = *steps
	}
	if *groups > 0 {
		scale.NumGroups = *groups
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}

	start := time.Now()
	suite, err := experiments.NewSuite(scale)
	if err != nil {
		log.Fatal(err)
	}
	suite.Incremental = *incremental
	suite.GNNCacheBytes = *cacheBytes
	suite.DeltaWire = *deltaWire && *incremental
	protocol := "incremental maintenance"
	if !*incremental {
		protocol = "full replan per update"
	} else if suite.DeltaWire {
		protocol = "incremental maintenance, delta wire"
	}
	fmt.Fprintf(out, "workloads ready in %v: %d POIs, 2×%d trajectories × %d steps, %d groups (%s)\n\n",
		time.Since(start).Round(time.Millisecond), len(suite.POIs),
		scale.NumTrajectories, scale.Steps, scale.NumGroups, protocol)

	gens := map[string]func() ([]experiments.Figure, error){
		"13": suite.Fig13, "14": suite.Fig14, "15": suite.Fig15,
		"16": suite.Fig16, "17": suite.Fig17, "18": suite.Fig18,
		"19": suite.Fig19,
	}
	order := []string{"13", "14", "15", "16", "17", "18", "19"}

	var selected []string
	if *figArg == "all" {
		selected = order
	} else {
		for _, f := range strings.Split(*figArg, ",") {
			if _, ok := gens[f]; !ok {
				log.Fatalf("unknown figure %q (valid: %s)", f, strings.Join(order, ","))
			}
			selected = append(selected, f)
		}
	}

	var all []experiments.Figure
	for _, id := range selected {
		figStart := time.Now()
		figs, err := gens[id]()
		if err != nil {
			log.Fatalf("figure %s: %v", id, err)
		}
		for _, f := range figs {
			fmt.Fprintln(out, f.Table())
		}
		all = append(all, figs...)
		fmt.Fprintf(out, "(figure %s regenerated in %v)\n\n", id, time.Since(figStart).Round(time.Millisecond))
	}

	// Verdicts on the paper's qualitative claims.
	fmt.Fprintln(out, "shape checks (paper's qualitative claims):")
	passed, failed := 0, 0
	for _, r := range experiments.CheckShapes(all) {
		fmt.Fprintf(out, "  %s\n", r)
		if r.Pass {
			passed++
		} else {
			failed++
		}
	}
	fmt.Fprintf(out, "shapes: %d passed, %d failed\n\n", passed, failed)
	fmt.Fprintf(out, "total: %v\n", time.Since(start).Round(time.Millisecond))
}
