package main

// The -json mode: machine-readable micro-benchmarks of the two hottest
// server paths — one-shot safe-region planning (TileMSRInto on an owned
// workspace, exactly what an engine worker runs per recomputation) and
// the end-to-end synchronous engine update — swept over group size. The
// ns/op, throughput, and allocs/op series are written as JSON so CI and
// future PRs can diff against the committed baseline (BENCH_plan.json).

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"mpn/internal/benchfmt"
	"mpn/internal/core"
	"mpn/internal/durable"
	"mpn/internal/engine"
	"mpn/internal/geom"
	"mpn/internal/nbrcache"
	"mpn/internal/netmpn"
	"mpn/internal/proto"
	"mpn/internal/replica"
	"mpn/internal/roadnet"
	"mpn/internal/stats"
	"mpn/internal/workload"
)

// jsonBenchGroup returns a deterministic clustered group of m users with
// headings, centered mid-domain.
func jsonBenchGroup(m int) ([]geom.Point, []core.Direction) {
	users := make([]geom.Point, m)
	dirs := make([]core.Direction, m)
	for i := range users {
		users[i] = geom.Pt(0.5+0.01*float64(i), 0.5-0.008*float64(i))
		dirs[i] = core.Direction{Angle: 0.3 * float64(i)}
	}
	return users, dirs
}

// toSeries converts one benchmark result into the shared report format
// (see internal/benchfmt for the series names).
func toSeries(name string, m int, r testing.BenchmarkResult) benchfmt.Series {
	ns := float64(r.NsPerOp())
	ops := 0.0
	if ns > 0 {
		ops = 1e9 / ns
	}
	return benchfmt.Series{
		Name: name, GroupSize: m,
		NsPerOp: ns, OpsPerSec: ops,
		AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
	}
}

// probeEscapeAmp finds, for group size m, the per-axis oscillation
// amplitude that takes user 0 just outside her safe region — the minimal
// escape report, the regime the dirty-user partial regrow accelerates.
// It computes the exact exit distance along the oscillation diagonal by
// binary search on the region boundary, then replays a short oscillation
// stream to report the outcome mix (escaping minimally keeps the result
// set stable, so the mix is typically partial-dominated; whatever it is,
// the log discloses it). Everything is deterministic, so the choice is
// stable across runs on the same workload.
func probeEscapeAmp(planner *core.Planner, m int) (amp float64, partialFrac float64) {
	users, dirs := jsonBenchGroup(m)
	replan := engine.PlannerIncFunc(planner, false)
	ws := core.NewWorkspace()
	var st core.PlanState
	locs := make([]geom.Point, m)
	copy(locs, users)
	if _, _, _, _, err := replan(ws, &st, locs, dirs); err != nil {
		return 0.001, 0
	}
	region := st.Regions()[0]

	// Exit distance along (+1, −1): grow until outside, then bisect.
	at := func(a float64) geom.Point { return geom.Pt(users[0].X+a, users[0].Y-a) }
	hi := 1e-4
	for region.Contains(at(hi)) && hi < 1 {
		hi *= 2
	}
	lo := hi / 2
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if region.Contains(at(mid)) {
			lo = mid
		} else {
			hi = mid
		}
	}
	amp = hi * 1.05 // just past the boundary

	const steps = 16
	partial := 0
	for i := 0; i < steps; i++ {
		copy(locs, users)
		if i%2 == 1 {
			locs[0] = at(amp)
		}
		_, _, _, out, err := replan(ws, &st, locs, dirs)
		if err != nil {
			return amp, 0
		}
		if out == core.IncPartial {
			partial++
		}
	}
	return amp, float64(partial) / steps
}

// runPlanJSONBench measures the plan and update series over `rounds`
// interleaved sweeps and writes the JSON report. Interleaving means the
// whole sweep repeats end to end — not the same benchmark back to back —
// so a transient machine-load spike lands on at most one measurement of
// every series rather than all measurements of one; the per-series
// median then discards it. A single round keeps the historical one-shot
// behavior (and the report format is unchanged either way, so committed
// baselines stay comparable).
func runPlanJSONBench(out io.Writer, log io.Writer, rounds int) error {
	if rounds < 1 {
		rounds = 1
	}
	var reports []benchfmt.Report
	for r := 0; r < rounds; r++ {
		if rounds > 1 {
			fmt.Fprintf(log, "round %d/%d:\n", r+1, rounds)
		}
		rep, err := collectPlanReport(log)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
	}
	merged := mergeReports(reports)
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(merged)
}

// mergeReports folds N sweeps into one report: every (Name, GroupSize)
// series takes the per-field median across rounds. Medians are taken
// per field, not per run — ns/op and allocs/op may peak in different
// rounds, and each field should get its own robust center. OpsPerSec is
// recomputed from the median ns/op so the two stay consistent.
func mergeReports(reports []benchfmt.Report) benchfmt.Report {
	merged := reports[0]
	if len(reports) == 1 {
		return merged
	}
	type key struct {
		name string
		m    int
	}
	byKey := map[key][]benchfmt.Series{}
	for _, rep := range reports {
		for _, s := range rep.Series {
			k := key{s.Name, s.GroupSize}
			byKey[k] = append(byKey[k], s)
		}
	}
	med := func(pick func(benchfmt.Series) float64, group []benchfmt.Series) float64 {
		xs := make([]float64, len(group))
		for i, s := range group {
			xs[i] = pick(s)
		}
		return stats.Median(xs)
	}
	out := merged.Series[:0:0]
	for _, s := range merged.Series { // keep the round-1 series order
		group := byKey[key{s.Name, s.GroupSize}]
		s.NsPerOp = med(func(x benchfmt.Series) float64 { return x.NsPerOp }, group)
		if s.NsPerOp > 0 {
			s.OpsPerSec = 1e9 / s.NsPerOp
		}
		s.AllocsPerOp = int64(med(func(x benchfmt.Series) float64 { return float64(x.AllocsPerOp) }, group))
		s.BytesPerOp = int64(med(func(x benchfmt.Series) float64 { return float64(x.BytesPerOp) }, group))
		s.WireBytes = med(func(x benchfmt.Series) float64 { return x.WireBytes }, group)
		s.CacheHits = uint64(med(func(x benchfmt.Series) float64 { return float64(x.CacheHits) }, group))
		s.CacheMisses = uint64(med(func(x benchfmt.Series) float64 { return float64(x.CacheMisses) }, group))
		s.CacheRejected = uint64(med(func(x benchfmt.Series) float64 { return float64(x.CacheRejected) }, group))
		out = append(out, s)
	}
	merged.Series = out
	return merged
}

// collectPlanReport runs one full sweep of every series.
func collectPlanReport(log io.Writer) (benchfmt.Report, error) {
	const (
		tileLimit = 10
		buffer    = 50
	)
	pcfg := workload.DefaultPOIConfig()
	pois, err := workload.GeneratePOIs(pcfg)
	if err != nil {
		return benchfmt.Report{}, err
	}
	opts := core.DefaultOptions()
	opts.TileLimit = tileLimit
	opts.Buffer = buffer
	opts.Directed = true
	planner, err := core.NewPlanner(pois, opts)
	if err != nil {
		return benchfmt.Report{}, err
	}

	report := benchfmt.Report{
		Description: "steady-state safe-region planning: ns/op, throughput, allocs/op by group size",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		POIs:        len(pois),
		TileLimit:   tileLimit,
		Buffer:      buffer,
	}

	for m := 2; m <= 6; m++ {
		users, dirs := jsonBenchGroup(m)

		// Planner kernel: one long-lived workspace, as an engine worker
		// holds it.
		r := testing.Benchmark(func(b *testing.B) {
			ws := core.NewWorkspace()
			locs := make([]geom.Point, len(users))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jitter := 1e-5 * float64(i%7)
				for j, u := range users {
					locs[j] = geom.Pt(u.X+jitter, u.Y-jitter)
				}
				if _, _, err := planner.Plan(ws, core.PlanRequest{Kind: core.KindTiles, Users: locs, Dirs: dirs}); err != nil {
					b.Fatal(err)
				}
			}
		})
		s := toSeries("plan", m, r)
		report.Series = append(report.Series, s)
		fmt.Fprintf(log, "  plan   m=%d  %12.0f ns/op %8.0f plans/s %6d allocs/op\n",
			m, s.NsPerOp, s.OpsPerSec, s.AllocsPerOp)

		// End-to-end engine update: registered group, synchronous
		// recomputation, no subscribers.
		r = testing.Benchmark(func(b *testing.B) {
			eng := engine.NewWS(engine.PlannerWSFunc(planner, false), engine.Options{Shards: 1})
			defer eng.Close()
			id, err := eng.Register(users, dirs)
			if err != nil {
				b.Fatal(err)
			}
			locs := make([]geom.Point, len(users))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jitter := 1e-5 * float64(i%7)
				for j, u := range users {
					locs[j] = geom.Pt(u.X+jitter, u.Y-jitter)
				}
				if err := eng.Update(id, locs, dirs); err != nil {
					b.Fatal(err)
				}
			}
		})
		s = toSeries("update", m, r)
		report.Series = append(report.Series, s)
		fmt.Fprintf(log, "  update m=%d  %12.0f ns/op %8.0f upd/s   %6d allocs/op\n",
			m, s.NsPerOp, s.OpsPerSec, s.AllocsPerOp)

		// Incremental engine, same in-region jitter: every update
		// re-verifies and keeps the whole retained plan (the paper's
		// silence regime — only the result-set check is paid).
		r = testing.Benchmark(func(b *testing.B) {
			eng := engine.NewWS(engine.PlannerWSFunc(planner, false), engine.Options{
				Shards: 1, Replan: engine.PlannerIncFunc(planner, false),
			})
			defer eng.Close()
			id, err := eng.Register(users, dirs)
			if err != nil {
				b.Fatal(err)
			}
			locs := make([]geom.Point, len(users))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jitter := 1e-5 * float64(i%7)
				for j, u := range users {
					locs[j] = geom.Pt(u.X+jitter, u.Y-jitter)
				}
				if err := eng.Update(id, locs, dirs); err != nil {
					b.Fatal(err)
				}
			}
		})
		s = toSeries("update_inc", m, r)
		report.Series = append(report.Series, s)
		fmt.Fprintf(log, "  update_inc m=%d  %8.0f ns/op %8.0f upd/s   %6d allocs/op (kept path)\n",
			m, s.NsPerOp, s.OpsPerSec, s.AllocsPerOp)

		// Escaping-user oscillation: user 0 steps just outside her region
		// on every other report. Measured twice over the identical
		// stream — full-replan engine vs incremental engine — so the two
		// series isolate exactly what dirty-user replanning saves.
		amp, partialFrac := probeEscapeAmp(planner, m)
		escapeBench := func(incremental bool) testing.BenchmarkResult {
			return testing.Benchmark(func(b *testing.B) {
				eopts := engine.Options{Shards: 1}
				if incremental {
					eopts.Replan = engine.PlannerIncFunc(planner, false)
				}
				eng := engine.NewWS(engine.PlannerWSFunc(planner, false), eopts)
				defer eng.Close()
				id, err := eng.Register(users, dirs)
				if err != nil {
					b.Fatal(err)
				}
				locs := make([]geom.Point, len(users))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					copy(locs, users)
					if i%2 == 1 {
						locs[0] = geom.Pt(users[0].X+amp, users[0].Y-amp)
					}
					if err := eng.Update(id, locs, dirs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		s = toSeries("update_escape", m, escapeBench(false))
		report.Series = append(report.Series, s)
		fmt.Fprintf(log, "  update_escape m=%d  %8.0f ns/op %8.0f upd/s %6d allocs/op (amp %.5f)\n",
			m, s.NsPerOp, s.OpsPerSec, s.AllocsPerOp, amp)
		s = toSeries("update_inc_escape", m, escapeBench(true))
		report.Series = append(report.Series, s)
		fmt.Fprintf(log, "  update_inc_escape m=%d  %8.0f ns/op %8.0f upd/s %6d allocs/op (%.0f%% partial)\n",
			m, s.NsPerOp, s.OpsPerSec, s.AllocsPerOp, 100*partialFrac)
	}

	runMultiGroupBench(&report, planner, log)
	if err := runNotifyBench(&report, planner, log); err != nil {
		return benchfmt.Report{}, err
	}
	runChurnBench(&report, pois, opts, log)
	if err := runDurableBench(&report, planner, log); err != nil {
		return benchfmt.Report{}, err
	}
	if err := runReplBench(&report, planner, log); err != nil {
		return benchfmt.Report{}, err
	}
	if err := runNetBench(&report, log); err != nil {
		return benchfmt.Report{}, err
	}
	return report, nil
}

// durTag is the engine tag the durable bench registers groups with —
// the same shape a serving layer uses: group id plus the member ids the
// journaled locations align with.
type durTag struct {
	gid uint32
	ids []uint32
}

// durJournal bridges engine.Journal to a durable.Store, as the server's
// journal adapter does.
type durJournal struct{ store *durable.Store }

func (j durJournal) GroupCommitted(tag any, users []geom.Point, _ []core.Direction) {
	dt := tag.(durTag)
	j.store.GroupUpsert(dt.gid, dt.ids, users)
}

func (j durJournal) GroupRemoved(tag any) {
	if dt, ok := tag.(durTag); ok {
		j.store.GroupUnregister(dt.gid)
	}
}

// runDurableBench appends the durability series. durable_update is
// update_inc's exact workload (incremental engine, kept-path jitter)
// with the WAL journal attached at fsync=interval — the steady-state
// serving configuration — so the pair prices what crash safety costs on
// the hot path: one group-state record encoded and enqueued per
// committed update, file I/O entirely off the update's critical path
// (cmd/benchgate enforces the disclosed overhead ceiling). wal_append
// prices the store itself: enqueue of b.N group records plus the
// drain-and-fsync of the clean close, amortized per record.
func runDurableBench(report *benchfmt.Report, planner *core.Planner, log io.Writer) error {
	const m = 3
	users, dirs := jsonBenchGroup(m)
	ids := []uint32{0, 1, 2}

	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		dir, err := os.MkdirTemp("", "mpnbench-durable-*")
		if err != nil {
			benchErr = err
			b.Skip(err)
		}
		defer os.RemoveAll(dir)
		store, _, _, err := durable.Open(durable.Config{
			Dir: dir, Fsync: durable.PolicyInterval, Queue: 1 << 14, POIBase: -1,
		})
		if err != nil {
			benchErr = err
			b.Skip(err)
		}
		defer store.Close()
		eng := engine.NewWS(engine.PlannerWSFunc(planner, false), engine.Options{
			Shards: 1, Replan: engine.PlannerIncFunc(planner, false),
			Journal: durJournal{store},
		})
		defer eng.Close()
		id, err := eng.RegisterTag(users, dirs, durTag{gid: 1, ids: ids})
		if err != nil {
			benchErr = err
			b.Skip(err)
		}
		locs := make([]geom.Point, len(users))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			jitter := 1e-5 * float64(i%7)
			for j, u := range users {
				locs[j] = geom.Pt(u.X+jitter, u.Y-jitter)
			}
			if err := eng.Update(id, locs, dirs); err != nil {
				b.Fatal(err)
			}
		}
	})
	if benchErr != nil {
		return benchErr
	}
	s := toSeries("durable_update", m, r)
	report.Series = append(report.Series, s)
	ratio := 0.0
	for _, inc := range report.Series {
		if inc.Name == "update_inc" && inc.GroupSize == m && inc.NsPerOp > 0 {
			ratio = s.NsPerOp / inc.NsPerOp
		}
	}
	fmt.Fprintf(log, "  %-18s m=%d  %10.0f ns/op %8.0f upd/s %4d allocs/op (%.2fx vs update_inc)\n",
		"durable_update", m, s.NsPerOp, s.OpsPerSec, s.AllocsPerOp, ratio)

	var shed uint64
	r = testing.Benchmark(func(b *testing.B) {
		dir, err := os.MkdirTemp("", "mpnbench-wal-*")
		if err != nil {
			benchErr = err
			b.Skip(err)
		}
		defer os.RemoveAll(dir)
		const window = 1 << 12
		store, _, _, err := durable.Open(durable.Config{
			Dir: dir, Fsync: durable.PolicyInterval, Queue: 4 * window, POIBase: -1,
		})
		if err != nil {
			benchErr = err
			b.Skip(err)
		}
		locs := append([]geom.Point(nil), users...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			store.GroupUpsert(uint32(i&63), ids, locs)
			// Pace the producer so the series prices the writer, not the
			// shed path: a raw enqueue loop overruns any writer and would
			// measure the cost of dropping records. Keeping at most one
			// window in flight makes ns/op the store's sustained
			// append-to-disk rate under the interval fsync policy.
			if i%window == window-1 && i >= window {
				floor := uint64(i) - window
				for {
					st := store.Stats()
					if st.Appended+st.Shed >= floor {
						break
					}
					time.Sleep(20 * time.Microsecond)
				}
			}
		}
		// The close drains the queue and fsyncs the tail on the clock, so
		// the tail records are fully priced too.
		_ = store.Close()
		b.StopTimer()
		shed = store.Stats().Shed
	})
	if benchErr != nil {
		return benchErr
	}
	s = toSeries("wal_append", m, r)
	report.Series = append(report.Series, s)
	extra := ""
	if shed > 0 {
		extra = fmt.Sprintf(" (%d shed — queue overran the writer)", shed)
	}
	fmt.Fprintf(log, "  %-18s m=%d  %10.0f ns/op %8.0f rec/s %4d allocs/op%s\n",
		"wal_append", m, s.NsPerOp, s.OpsPerSec, s.AllocsPerOp, extra)
	return nil
}

// benchFollower attaches one follower to a durable store over real
// loopback TCP — a Shipper serving the store's record stream and a
// Tailer folding it into a bare state mirror, exactly the standby's
// data path minus the engine replay. It returns once the stream is
// live, along with the tailer (for lag reads) and a teardown.
func benchFollower(b *testing.B, store *durable.Store) (*replica.Tailer, func()) {
	ship := replica.NewShipper(replica.ShipperConfig{
		Store:  store,
		Epoch:  func() uint64 { return 1 },
		Buffer: 1 << 15,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go ship.Serve(ln)
	mirror := durable.NewState()
	tl := replica.StartTailer(replica.TailerConfig{
		PrimaryAddr:  ln.Addr().String(),
		Epoch:        func() uint64 { return 0 },
		OnRecord:     mirror.ApplyRecord,
		RetryBackoff: 5 * time.Millisecond,
		AckInterval:  2 * time.Millisecond,
	})
	deadline := time.Now().Add(5 * time.Second)
	for !tl.Stats().Connected {
		if time.Now().After(deadline) {
			tl.Stop()
			ship.Close()
			b.Fatal("replication follower never connected")
		}
		time.Sleep(100 * time.Microsecond)
	}
	return tl, func() {
		tl.Stop()
		ship.Close()
	}
}

// replDrain waits (on the benchmark clock) until the follower has
// applied everything the store has streamed and the stream position is
// quiescent, so the tail of the pipeline is fully priced.
func replDrain(store *durable.Store, tl *replica.Tailer) {
	for {
		sp := store.StreamPos()
		if tl.Stats().Pos >= sp {
			// Settle: records still in the store queue haven't reached
			// the mirror yet; only a stable position means drained.
			time.Sleep(200 * time.Microsecond)
			if sp2 := store.StreamPos(); sp2 == sp && tl.Stats().Pos >= sp2 {
				return
			}
			continue
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// runReplBench appends the hot-standby replication series. repl_ship is
// durable_update's exact workload (incremental engine, WAL journal at
// fsync=interval) with a live follower tailing the record stream over
// loopback TCP, producer paced so the follower stays within a bounded
// lag window and the final drain on the clock — it prices what shipping
// to a caught-up standby costs per committed update (cmd/benchgate
// enforces the ceiling vs update_inc). repl_lag strips the engine away
// and pushes bare group records through the same pipeline — ns/op is
// the sustained ship→apply→ack rate, i.e. how fast a follower's lag
// drains in records.
func runReplBench(report *benchfmt.Report, planner *core.Planner, log io.Writer) error {
	const m = 3
	users, dirs := jsonBenchGroup(m)
	ids := []uint32{0, 1, 2}
	const window = 1 << 11

	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		dir, err := os.MkdirTemp("", "mpnbench-repl-*")
		if err != nil {
			benchErr = err
			b.Skip(err)
		}
		defer os.RemoveAll(dir)
		store, _, _, err := durable.Open(durable.Config{
			Dir: dir, Fsync: durable.PolicyInterval, Queue: 1 << 14, POIBase: -1,
		})
		if err != nil {
			benchErr = err
			b.Skip(err)
		}
		defer store.Close()
		tl, stop := benchFollower(b, store)
		defer stop()
		eng := engine.NewWS(engine.PlannerWSFunc(planner, false), engine.Options{
			Shards: 1, Replan: engine.PlannerIncFunc(planner, false),
			Journal: durJournal{store},
		})
		defer eng.Close()
		id, err := eng.RegisterTag(users, dirs, durTag{gid: 1, ids: ids})
		if err != nil {
			benchErr = err
			b.Skip(err)
		}
		locs := make([]geom.Point, len(users))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			jitter := 1e-5 * float64(i%7)
			for j, u := range users {
				locs[j] = geom.Pt(u.X+jitter, u.Y-jitter)
			}
			if err := eng.Update(id, locs, dirs); err != nil {
				b.Fatal(err)
			}
			// Keep the follower within one lag window so the series
			// prices sustained shipping, not an unbounded queue (an
			// overrun would cut the stream and measure reseeds instead).
			if i%window == window-1 {
				for store.StreamPos() > tl.Stats().Pos+window {
					time.Sleep(20 * time.Microsecond)
				}
			}
		}
		replDrain(store, tl)
	})
	if benchErr != nil {
		return benchErr
	}
	s := toSeries("repl_ship", m, r)
	report.Series = append(report.Series, s)
	incRatio, durRatio := 0.0, 0.0
	for _, prev := range report.Series {
		if prev.GroupSize != m || prev.NsPerOp <= 0 {
			continue
		}
		switch prev.Name {
		case "update_inc":
			incRatio = s.NsPerOp / prev.NsPerOp
		case "durable_update":
			durRatio = s.NsPerOp / prev.NsPerOp
		}
	}
	fmt.Fprintf(log, "  %-18s m=%d  %10.0f ns/op %8.0f upd/s %4d allocs/op (%.2fx vs update_inc, %.2fx vs durable_update)\n",
		"repl_ship", m, s.NsPerOp, s.OpsPerSec, s.AllocsPerOp, incRatio, durRatio)

	var shed uint64
	r = testing.Benchmark(func(b *testing.B) {
		dir, err := os.MkdirTemp("", "mpnbench-repllag-*")
		if err != nil {
			benchErr = err
			b.Skip(err)
		}
		defer os.RemoveAll(dir)
		store, _, _, err := durable.Open(durable.Config{
			Dir: dir, Fsync: durable.PolicyInterval, Queue: 4 * window, POIBase: -1,
		})
		if err != nil {
			benchErr = err
			b.Skip(err)
		}
		defer store.Close()
		tl, stop := benchFollower(b, store)
		defer stop()
		locs := append([]geom.Point(nil), users...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			store.GroupUpsert(uint32(i&63), ids, locs)
			// Pace the producer against BOTH stages: the store writer
			// (appended+shed, as wal_append does — a raw enqueue loop
			// overruns any writer and prices the shed path) and the
			// follower's applied position (so the series prices sustained
			// ship→apply→ack, not an unbounded lag that would cut the
			// stream and measure reseeds).
			if i%window == window-1 && i >= window {
				floor := uint64(i) - window
				for {
					st := store.Stats()
					if st.Appended+st.Shed >= floor && store.StreamPos() <= tl.Stats().Pos+window {
						break
					}
					time.Sleep(20 * time.Microsecond)
				}
			}
		}
		replDrain(store, tl)
		b.StopTimer()
		shed = store.Stats().Shed
	})
	if benchErr != nil {
		return benchErr
	}
	s = toSeries("repl_lag", m, r)
	report.Series = append(report.Series, s)
	extra := ""
	if shed > 0 {
		extra = fmt.Sprintf(" (%d shed — producer overran the writer)", shed)
	}
	fmt.Fprintf(log, "  %-18s m=%d  %10.0f ns/op %8.0f rec/s %4d allocs/op%s\n",
		"repl_lag", m, s.NsPerOp, s.OpsPerSec, s.AllocsPerOp, extra)
	return nil
}

// runNetBench appends the road-network backend series at the default
// network size: net_plan_naive (the per-member full-SSSP oracle the
// paper's network variant starts from), net_plan (the production ALT
// landmark-pruned backend through the core dispatch — byte-identical
// plans, see internal/netmpn's differential fences), net_update_inc (the
// incremental kept/partial protocol over a small-drift location stream),
// and net_plan_cached (the nearest-node neighborhood cache under
// clustered groups). CI gates net_plan_naive/net_plan at ≥5× (see
// cmd/benchgate).
func runNetBench(report *benchfmt.Report, log io.Writer) error {
	const (
		netM        = 3
		netPOIEvery = 9
	)
	netw, err := roadnet.Generate(roadnet.DefaultConfig())
	if err != nil {
		return err
	}
	var poiNodes []int
	for i := 0; i < netw.NumNodes(); i += netPOIEvery {
		poiNodes = append(poiNodes, i)
	}
	pois := make([]geom.Point, len(poiNodes))
	for i, n := range poiNodes {
		pois[i] = netw.Nodes[n].P
	}
	newNetPlanner := func(cacheEntries int) (*core.Planner, *netmpn.Backend, error) {
		planner, err := core.NewPlanner(pois, core.DefaultOptions())
		if err != nil {
			return nil, nil, err
		}
		backend, err := netmpn.NewBackend(netw, poiNodes, netmpn.BackendConfig{
			Aggregate: netmpn.Max, CacheEntries: cacheEntries, CacheK: 8,
		})
		if err != nil {
			return nil, nil, err
		}
		planner.RegisterNetBackend(backend)
		return planner, backend, nil
	}
	planner, backend, err := newNetPlanner(0)
	if err != nil {
		return err
	}
	users, _ := jsonBenchGroup(netM)

	// Naive oracle: one full SSSP per member per plan (snapping included,
	// as the backend path snaps too).
	naive := testing.Benchmark(func(b *testing.B) {
		srv := backend.Server()
		locs := make([]netmpn.Position, netM)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			jitter := 1e-5 * float64(i%7)
			for j, u := range users {
				locs[j] = backend.Snap(geom.Pt(u.X+jitter, u.Y-jitter))
			}
			if _, _, err := srv.Plan(locs, netmpn.Max); err != nil {
				b.Fatal(err)
			}
		}
	})
	sNaive := toSeries("net_plan_naive", netM, naive)
	report.Series = append(report.Series, sNaive)
	fmt.Fprintf(log, "  %-18s m=%d  %10.0f ns/op %8.0f plans/s %4d allocs/op\n",
		"net_plan_naive", netM, sNaive.NsPerOp, sNaive.OpsPerSec, sNaive.AllocsPerOp)

	planBench := func(pl *core.Planner) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			ws := core.NewWorkspace()
			locs := make([]geom.Point, netM)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jitter := 1e-5 * float64(i%7)
				for j, u := range users {
					locs[j] = geom.Pt(u.X+jitter, u.Y-jitter)
				}
				if _, _, err := pl.Plan(ws, core.PlanRequest{Kind: core.KindNetRange, Users: locs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	sPlan := toSeries("net_plan", netM, planBench(planner))
	report.Series = append(report.Series, sPlan)
	speedup := 0.0
	if sPlan.NsPerOp > 0 {
		speedup = sNaive.NsPerOp / sPlan.NsPerOp
	}
	fmt.Fprintf(log, "  %-18s m=%d  %10.0f ns/op %8.0f plans/s %4d allocs/op (%.1fx vs naive)\n",
		"net_plan", netM, sPlan.NsPerOp, sPlan.OpsPerSec, sPlan.AllocsPerOp, speedup)

	inc := testing.Benchmark(func(b *testing.B) {
		ws := core.NewWorkspace()
		var st core.PlanState
		locs := make([]geom.Point, netM)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Locations advance every 4th report: the coalesced-burst
			// regime (identical repeats) the kept path accelerates.
			jitter := 1e-5 * float64((i/4)%7)
			for j, u := range users {
				locs[j] = geom.Pt(u.X+jitter, u.Y-jitter)
			}
			if _, _, err := planner.Plan(ws, core.PlanRequest{Kind: core.KindNetRange, Users: locs, State: &st}); err != nil {
				b.Fatal(err)
			}
		}
	})
	sInc := toSeries("net_update_inc", netM, inc)
	report.Series = append(report.Series, sInc)
	fmt.Fprintf(log, "  %-18s m=%d  %10.0f ns/op %8.0f upd/s %4d allocs/op\n",
		"net_update_inc", netM, sInc.NsPerOp, sInc.OpsPerSec, sInc.AllocsPerOp)

	cachedPlanner, cachedBackend, err := newNetPlanner(256)
	if err != nil {
		return err
	}
	hits0, misses0, rejected0 := cachedBackend.CacheStats()
	sCached := toSeries("net_plan_cached", netM, planBench(cachedPlanner))
	hits, misses, rejected := cachedBackend.CacheStats()
	sCached.CacheHits = hits - hits0
	sCached.CacheMisses = misses - misses0
	sCached.CacheRejected = rejected - rejected0
	report.Series = append(report.Series, sCached)
	extra := ""
	if total := sCached.CacheHits + sCached.CacheMisses + sCached.CacheRejected; total > 0 {
		extra = fmt.Sprintf(" (cache %.1f%% hit)", 100*float64(sCached.CacheHits)/float64(total))
	}
	fmt.Fprintf(log, "  %-18s m=%d  %10.0f ns/op %8.0f plans/s %4d allocs/op%s\n",
		"net_plan_cached", netM, sCached.NsPerOp, sCached.OpsPerSec, sCached.AllocsPerOp, extra)
	return nil
}

// runNotifyBench appends the notification wire series: what one
// kept-path recomputation costs to put on the wire, fanned out to all m
// members, under the historical full protocol (re-encode every region
// into a TNotify per member, every time) versus the epoch-tracked delta
// protocol (one epoch compare per member; unchanged regions ship a
// record-less TNotifyDelta and are never re-encoded). notify_bytes_*
// carry the deterministic frame bytes per notification round;
// notify_encode_* carry the server-side serialization ns/op.
func runNotifyBench(report *benchfmt.Report, planner *core.Planner, log io.Writer) error {
	for m := 2; m <= 6; m++ {
		users, dirs := jsonBenchGroup(m)
		ws := core.NewWorkspace()
		var st core.PlanState
		replan := engine.PlannerIncFunc(planner, false)
		locs := append([]geom.Point(nil), users...)
		if _, _, _, _, err := replan(ws, &st, locs, dirs); err != nil {
			return err
		}
		// One kept-path step: in-region jitter, result set unchanged.
		for j, u := range users {
			locs[j] = geom.Pt(u.X+1e-6, u.Y-1e-6)
		}
		meeting, regions, _, outcome, err := replan(ws, &st, locs, dirs)
		if err != nil {
			return err
		}
		if outcome != core.IncKept {
			fmt.Fprintf(log, "  notify m=%d: jitter step was %v, not kept; series measures that outcome\n", m, outcome)
		}
		epochs := append([]uint64(nil), st.Epochs()...)

		// Deterministic wire bytes of this notification round.
		var buf []byte
		fullBytes, deltaBytes := 0, 0
		for i, r := range regions {
			full := proto.Message{
				Type: proto.TNotify, Group: 1, User: uint32(i),
				Meeting: meeting, Epoch: epochs[i], Region: proto.EncodeRegion(r),
			}
			if buf, err = full.AppendFrame(buf[:0]); err != nil {
				return err
			}
			fullBytes += len(buf)
			delta := proto.Message{Type: proto.TNotifyDelta, Group: 1, User: uint32(i), Epoch: epochs[i]}
			if buf, err = delta.AppendFrame(buf[:0]); err != nil {
				return err
			}
			deltaBytes += len(buf)
		}
		report.Series = append(report.Series,
			benchfmt.Series{Name: "notify_bytes_full", GroupSize: m, WireBytes: float64(fullBytes)},
			benchfmt.Series{Name: "notify_bytes_delta", GroupSize: m, WireBytes: float64(deltaBytes)},
		)

		// Serialization cost per notification round. Full: encode every
		// region and frame it (what every pre-delta notification paid).
		rFull := testing.Benchmark(func(b *testing.B) {
			var fb []byte
			for i := 0; i < b.N; i++ {
				for j, r := range regions {
					msg := proto.Message{
						Type: proto.TNotify, Group: 1, User: uint32(j),
						Meeting: meeting, Epoch: epochs[j], Region: proto.EncodeRegion(r),
					}
					fb, _ = msg.AppendFrame(fb[:0])
				}
			}
		})
		// Delta kept path: the coordinator's epoch compare finds every
		// region unchanged; nothing is encoded, a record-less frame goes
		// out.
		rDelta := testing.Benchmark(func(b *testing.B) {
			delivered := append([]uint64(nil), epochs...)
			var fb []byte
			for i := 0; i < b.N; i++ {
				for j := range regions {
					msg := proto.Message{Type: proto.TNotifyDelta, Group: 1, User: uint32(j), Epoch: epochs[j]}
					if epochs[j] != delivered[j] {
						msg.Deltas = []proto.RegionDelta{{Member: uint32(j), Epoch: epochs[j], Region: proto.EncodeRegion(regions[j])}}
						delivered[j] = epochs[j]
					}
					fb, _ = msg.AppendFrame(fb[:0])
				}
			}
		})
		sFull := toSeries("notify_encode_full", m, rFull)
		sDelta := toSeries("notify_encode_delta", m, rDelta)
		report.Series = append(report.Series, sFull, sDelta)
		fmt.Fprintf(log, "  notify m=%d  bytes %5d → %3d (%5.1fx)  encode %8.0f → %4.0f ns/op\n",
			m, fullBytes, deltaBytes, float64(fullBytes)/float64(deltaBytes),
			sFull.NsPerOp, sDelta.NsPerOp)
	}
	return nil
}

// Multi-group workload shape: mgGroups incremental groups of mgM members
// each on one engine, every update an in-region jitter (the kept-path
// steady state whose floor is the GNN index traversal). Clustered groups
// all fall in one cache tile around (0.504, 0.504); dispersed groups get
// one tile each.
const (
	mgGroups = 8
	mgM      = 3
)

func multiGroupUsers(g int, clustered bool) ([]geom.Point, []core.Direction) {
	var base geom.Point
	if clustered {
		base = geom.Pt(0.5030+0.0006*float64(g%4), 0.5028+0.0006*float64(g/4))
	} else {
		base = geom.Pt(0.11+0.094*float64(g), 0.13+0.087*float64(g))
	}
	users := make([]geom.Point, mgM)
	dirs := make([]core.Direction, mgM)
	for i := range users {
		users[i] = geom.Pt(base.X+0.0011*float64(i), base.Y-0.0009*float64(i))
		dirs[i] = core.Direction{Angle: 0.4 * float64(i)}
	}
	return users, dirs
}

// runMultiGroupBench appends the multi_group series: the cross-group
// sharing regime (clustered, one tile for all groups), the no-sharing
// regime (uniform, one tile per group), each with the shared GNN cache
// on and off, plus a forced-miss series (a one-entry cache budget
// evicts on every lookup) pricing the worst-case miss path. Cache
// hit/miss/rejected counters are attached to the cached series so a
// hit-rate regression shows up in the committed artifacts.
func runMultiGroupBench(report *benchfmt.Report, planner *core.Planner, log io.Writer) {
	bench := func(clustered bool, cache *nbrcache.Cache) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			replan := engine.PlannerIncCachedFunc(planner, false, cache)
			eng := engine.NewWS(engine.PlannerWSFunc(planner, false), engine.Options{
				Shards: 1, Replan: replan,
			})
			defer eng.Close()
			ids := make([]engine.GroupID, mgGroups)
			users := make([][]geom.Point, mgGroups)
			dirs := make([][]core.Direction, mgGroups)
			for g := range ids {
				users[g], dirs[g] = multiGroupUsers(g, clustered)
				id, err := eng.Register(users[g], dirs[g])
				if err != nil {
					b.Fatal(err)
				}
				ids[g] = id
			}
			locs := make([]geom.Point, mgM)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := i % mgGroups
				jitter := 1e-5 * float64(i%7)
				for j, u := range users[g] {
					locs[j] = geom.Pt(u.X+jitter, u.Y-jitter)
				}
				if err := eng.Update(ids[g], locs, dirs[g]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	emit := func(name string, clustered bool, cache *nbrcache.Cache) {
		before := cache.Stats()
		s := toSeries(name, mgM, bench(clustered, cache))
		after := cache.Stats()
		s.CacheHits = after.Hits - before.Hits
		s.CacheMisses = after.Misses - before.Misses
		s.CacheRejected = after.Rejected - before.Rejected
		report.Series = append(report.Series, s)
		extra := ""
		if cache != nil {
			total := s.CacheHits + s.CacheMisses + s.CacheRejected
			if total > 0 {
				extra = fmt.Sprintf(" (cache %.0f%% hit, %d miss, %d rejected)",
					100*float64(s.CacheHits)/float64(total), s.CacheMisses, s.CacheRejected)
			}
		}
		fmt.Fprintf(log, "  %-26s G=%d m=%d %10.0f ns/op %8.0f upd/s %4d allocs/op%s\n",
			name, mgGroups, mgM, s.NsPerOp, s.OpsPerSec, s.AllocsPerOp, extra)
	}

	emit("multi_group_clustered", true, nil)
	emit("multi_group_clustered_cached", true, nbrcache.New(nbrcache.Config{}))
	emit("multi_group_uniform", false, nil)
	emit("multi_group_uniform_cached", false, nbrcache.New(nbrcache.Config{}))
	// One-entry budget: every lookup evicts the previous group's entry,
	// so each update pays populate + certify + evict — the miss ceiling.
	emit("multi_group_miss", false, nbrcache.New(nbrcache.Config{MaxBytes: 1, Stripes: 1}))
}

// Churn workload shape: one group of churnM members planning in place
// mid-domain while localized mutation batches land in the far corner —
// every churnEvery-th plan is preceded by a batch of churnOps mutations
// (half inserts on a lattice around (0.9, 0.9), half deletes of the
// oldest surviving churn inserts once enough have accumulated, so the
// live set stays bounded). The mutations sit far outside the group's
// neighborhood, the regime the locality-aware cache invalidation is
// built for: entries the batch provably cannot affect must migrate to
// the new snapshot and keep hitting.
const (
	churnM            = 3
	churnEvery        = 8
	churnOps          = 8
	churnResetBatches = 4096
)

// churnState drives the deterministic mutation stream: a monotone
// counter places inserts on the far-corner lattice, and pending queues
// the inserted ids until they are old enough to delete. The slices are
// reused, so a steady-state batch allocates only inside ApplyPOIs.
type churnState struct {
	ins     []geom.Point
	del     []int
	pending []int
	n       int
}

// batch applies one churn batch to the planner.
func (c *churnState) batch(planner *core.Planner) error {
	c.ins = c.ins[:0]
	for j := 0; j < churnOps/2; j++ {
		c.n++
		c.ins = append(c.ins, geom.Pt(
			0.88+0.0005*float64(c.n%89),
			0.90+0.0004*float64(c.n%97)))
	}
	c.del = c.del[:0]
	if len(c.pending) >= 8*churnOps {
		c.del = append(c.del, c.pending[:churnOps/2]...)
		rest := copy(c.pending, c.pending[churnOps/2:])
		c.pending = c.pending[:rest]
	}
	ids, err := planner.ApplyPOIs(c.ins, c.del)
	if err != nil {
		return err
	}
	c.pending = append(c.pending, ids...)
	return nil
}

// runChurnBench appends the churn_* series: planning under live POI
// churn. churn_plan and churn_plan_cached time the planner kernel with
// a mutation batch landing every churnEvery iterations — uncached vs
// the shared GNN cache, whose hit/miss/rejected counters are attached
// (cmd/benchgate enforces the hit-rate floor under this localized
// churn). churn_mutate times the ApplyPOIs batch itself: the full RCU
// publication — reader drain, shadow catch-up, batched R-tree
// insert/delete, tombstone re-publication, the atomic snapshot swap,
// and the cache Advance. Every series runs a fresh planner over the
// same POIs so churn never perturbs the shared planner the other
// series measure.
func runChurnBench(report *benchfmt.Report, pois []geom.Point, opts core.Options, log io.Writer) {
	users, dirs := jsonBenchGroup(churnM)

	plan := func(cache *nbrcache.Cache) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			planner, err := core.NewPlanner(pois, opts)
			if err != nil {
				b.Fatal(err)
			}
			planner.ShareCache(cache)
			ws := core.NewWorkspace()
			locs := make([]geom.Point, churnM)
			var st churnState
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%churnEvery == churnEvery-1 {
					if err := st.batch(planner); err != nil {
						b.Fatal(err)
					}
				}
				jitter := 1e-5 * float64(i%7)
				for j, u := range users {
					locs[j] = geom.Pt(u.X+jitter, u.Y-jitter)
				}
				_, _, err = planner.Plan(ws, core.PlanRequest{Kind: core.KindTiles, Users: locs, Dirs: dirs, Cache: cache})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	emit := func(name string, cache *nbrcache.Cache) {
		before := cache.Stats()
		s := toSeries(name, churnM, plan(cache))
		after := cache.Stats()
		s.CacheHits = after.Hits - before.Hits
		s.CacheMisses = after.Misses - before.Misses
		s.CacheRejected = after.Rejected - before.Rejected
		report.Series = append(report.Series, s)
		extra := ""
		if total := s.CacheHits + s.CacheMisses + s.CacheRejected; total > 0 {
			extra = fmt.Sprintf(" (cache %.1f%% hit, %d miss, %d rejected)",
				100*float64(s.CacheHits)/float64(total), s.CacheMisses, s.CacheRejected)
		}
		fmt.Fprintf(log, "  %-18s m=%d  %10.0f ns/op %8.0f plans/s %4d allocs/op%s\n",
			name, churnM, s.NsPerOp, s.OpsPerSec, s.AllocsPerOp, extra)
	}
	emit("churn_plan", nil)
	emit("churn_plan_cached", nbrcache.New(nbrcache.Config{}))

	mutate := testing.Benchmark(func(b *testing.B) {
		// The external id space is append-only, but long sessions no
		// longer pay for it per batch: tombstones are shared between
		// publishes (copied only on delete) and the slot table compacts
		// once tombstones outnumber live points. The off-clock reset
		// every churnResetBatches batches is kept so the measured regime
		// stays comparable with historical baselines.
		var planner *core.Planner
		var st churnState
		reset := func() {
			p, err := core.NewPlanner(pois, opts)
			if err != nil {
				b.Fatal(err)
			}
			planner, st = p, churnState{}
		}
		reset()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%churnResetBatches == 0 {
				b.StopTimer()
				reset()
				b.StartTimer()
			}
			if err := st.batch(planner); err != nil {
				b.Fatal(err)
			}
		}
	})
	s := toSeries("churn_mutate", churnM, mutate)
	report.Series = append(report.Series, s)
	fmt.Fprintf(log, "  %-18s m=%d  %10.0f ns/op %8.0f batches/s %4d allocs/op (%d-op batches)\n",
		"churn_mutate", churnM, s.NsPerOp, s.OpsPerSec, s.AllocsPerOp, churnOps)
}
