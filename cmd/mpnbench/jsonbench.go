package main

// The -json mode: machine-readable micro-benchmarks of the two hottest
// server paths — one-shot safe-region planning (TileMSRInto on an owned
// workspace, exactly what an engine worker runs per recomputation) and
// the end-to-end synchronous engine update — swept over group size. The
// ns/op, throughput, and allocs/op series are written as JSON so CI and
// future PRs can diff against the committed baseline (BENCH_plan.json).

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"mpn/internal/core"
	"mpn/internal/engine"
	"mpn/internal/geom"
	"mpn/internal/workload"
)

type planBenchSeries struct {
	// Name is "plan" (planner kernel, owned workspace) or "update"
	// (engine synchronous recomputation, pooled workspace, no
	// subscribers).
	Name        string  `json:"name"`
	GroupSize   int     `json:"group_size"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type planBenchReport struct {
	Description string            `json:"description"`
	GoMaxProcs  int               `json:"gomaxprocs"`
	POIs        int               `json:"pois"`
	TileLimit   int               `json:"tile_limit"`
	Buffer      int               `json:"buffer"`
	Series      []planBenchSeries `json:"series"`
}

// jsonBenchGroup returns a deterministic clustered group of m users with
// headings, centered mid-domain.
func jsonBenchGroup(m int) ([]geom.Point, []core.Direction) {
	users := make([]geom.Point, m)
	dirs := make([]core.Direction, m)
	for i := range users {
		users[i] = geom.Pt(0.5+0.01*float64(i), 0.5-0.008*float64(i))
		dirs[i] = core.Direction{Angle: 0.3 * float64(i)}
	}
	return users, dirs
}

func toSeries(name string, m int, r testing.BenchmarkResult) planBenchSeries {
	ns := float64(r.NsPerOp())
	ops := 0.0
	if ns > 0 {
		ops = 1e9 / ns
	}
	return planBenchSeries{
		Name: name, GroupSize: m,
		NsPerOp: ns, OpsPerSec: ops,
		AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
	}
}

// runPlanJSONBench measures the plan and update series and writes the
// JSON report.
func runPlanJSONBench(out io.Writer, log io.Writer) error {
	const (
		tileLimit = 10
		buffer    = 50
	)
	pcfg := workload.DefaultPOIConfig()
	pois, err := workload.GeneratePOIs(pcfg)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.TileLimit = tileLimit
	opts.Buffer = buffer
	opts.Directed = true
	planner, err := core.NewPlanner(pois, opts)
	if err != nil {
		return err
	}

	report := planBenchReport{
		Description: "steady-state safe-region planning: ns/op, throughput, allocs/op by group size",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		POIs:        len(pois),
		TileLimit:   tileLimit,
		Buffer:      buffer,
	}

	for m := 2; m <= 6; m++ {
		users, dirs := jsonBenchGroup(m)

		// Planner kernel: one long-lived workspace, as an engine worker
		// holds it.
		r := testing.Benchmark(func(b *testing.B) {
			ws := core.NewWorkspace()
			locs := make([]geom.Point, len(users))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jitter := 1e-5 * float64(i%7)
				for j, u := range users {
					locs[j] = geom.Pt(u.X+jitter, u.Y-jitter)
				}
				if _, err := planner.TileMSRInto(ws, locs, dirs); err != nil {
					b.Fatal(err)
				}
			}
		})
		s := toSeries("plan", m, r)
		report.Series = append(report.Series, s)
		fmt.Fprintf(log, "  plan   m=%d  %12.0f ns/op %8.0f plans/s %6d allocs/op\n",
			m, s.NsPerOp, s.OpsPerSec, s.AllocsPerOp)

		// End-to-end engine update: registered group, synchronous
		// recomputation, no subscribers.
		r = testing.Benchmark(func(b *testing.B) {
			eng := engine.NewWS(engine.PlannerWSFunc(planner, false), engine.Options{Shards: 1})
			defer eng.Close()
			id, err := eng.Register(users, dirs)
			if err != nil {
				b.Fatal(err)
			}
			locs := make([]geom.Point, len(users))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jitter := 1e-5 * float64(i%7)
				for j, u := range users {
					locs[j] = geom.Pt(u.X+jitter, u.Y-jitter)
				}
				if err := eng.Update(id, locs, dirs); err != nil {
					b.Fatal(err)
				}
			}
		})
		s = toSeries("update", m, r)
		report.Series = append(report.Series, s)
		fmt.Fprintf(log, "  update m=%d  %12.0f ns/op %8.0f upd/s   %6d allocs/op\n",
			m, s.NsPerOp, s.OpsPerSec, s.AllocsPerOp)
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
