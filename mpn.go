package mpn

import (
	"errors"
	"fmt"
	"sync"

	"mpn/internal/core"
	"mpn/internal/geom"
	"mpn/internal/tileenc"
)

// Point is a planar location. It aliases the internal geometry type so
// values flow between the public API and the internal packages without
// conversion.
type Point = geom.Point

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// SafeRegion is one user's safe region: as long as the user stays inside
// it, the group's meeting point cannot change. It aliases the internal
// region type; see Contains, MinDist, MaxDist.
type SafeRegion = core.SafeRegion

// Direction is a user's recent travel direction for the directed tile
// ordering: heading angle in radians and learned angular deviation bound.
type Direction = core.Direction

// Stats counts the work performed by safe-region computations.
type Stats = core.Stats

// ErrNoGroup is returned when operating on an empty user group.
var ErrNoGroup = errors.New("mpn: empty user group")

// Server owns a POI data set and answers meeting-point registrations. It
// is safe for concurrent use by multiple groups.
type Server struct {
	cfg     config
	planner *core.Planner
}

// NewServer indexes the POI set and returns a server. The default
// configuration is the paper's best method (directed tiles, α=30, L=2,
// buffering b=100, max-distance objective).
func NewServer(pois []Point, opts ...Option) (*Server, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	planner, err := core.NewPlanner(pois, cfg.core)
	if err != nil {
		return nil, fmt.Errorf("mpn: %w", err)
	}
	return &Server{cfg: cfg, planner: planner}, nil
}

// NumPOIs returns the indexed data set size.
func (s *Server) NumPOIs() int { return s.planner.NumPOIs() }

// Register creates a monitored group from the users' current locations and
// computes its first meeting point and safe regions. dirs may be nil; it
// is only consulted by the TileDirected method.
func (s *Server) Register(users []Point, dirs []Direction) (*Group, error) {
	if len(users) == 0 {
		return nil, ErrNoGroup
	}
	g := &Group{server: s, size: len(users)}
	if err := g.Update(users, dirs); err != nil {
		return nil, err
	}
	return g, nil
}

// Plan computes a one-shot meeting point and safe regions without creating
// a group. It is the stateless core of Register/Update.
func (s *Server) Plan(users []Point, dirs []Direction) (Point, []SafeRegion, Stats, error) {
	if len(users) == 0 {
		return Point{}, nil, Stats{}, ErrNoGroup
	}
	var plan core.Plan
	var err error
	switch s.cfg.method {
	case Circle:
		plan, err = s.planner.CircleMSR(users)
	default:
		plan, err = s.planner.TileMSR(users, dirs)
	}
	if err != nil {
		return Point{}, nil, Stats{}, err
	}
	return plan.Best.Item.P, plan.Regions, plan.Stats, nil
}

// Group is one monitored user group. Its methods are safe for concurrent
// use.
type Group struct {
	server *Server
	size   int

	mu      sync.RWMutex
	meeting Point
	regions []SafeRegion
	stats   Stats
	updates int
}

// Size returns the number of users m.
func (g *Group) Size() int { return g.size }

// MeetingPoint returns the currently reported optimal meeting point.
func (g *Group) MeetingPoint() Point {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.meeting
}

// Region returns user i's current safe region.
func (g *Group) Region(i int) SafeRegion {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.regions[i]
}

// Regions returns a copy of all safe regions.
func (g *Group) Regions() []SafeRegion {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]SafeRegion, len(g.regions))
	copy(out, g.regions)
	return out
}

// NeedsUpdate reports whether user i moving to loc escapes her safe region
// — the client-side trigger of the Fig. 3 protocol.
func (g *Group) NeedsUpdate(i int, loc Point) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if i < 0 || i >= len(g.regions) {
		return true
	}
	return !g.regions[i].Contains(loc)
}

// Update recomputes the meeting point and safe regions from all users'
// current locations (the server-side step after an escape). dirs may be
// nil unless the server uses TileDirected and per-user headings are
// available.
func (g *Group) Update(users []Point, dirs []Direction) error {
	if len(users) != g.size {
		return fmt.Errorf("mpn: group has %d users, got %d locations", g.size, len(users))
	}
	meeting, regions, stats, err := g.server.Plan(users, dirs)
	if err != nil {
		return err
	}
	g.mu.Lock()
	g.meeting = meeting
	g.regions = regions
	g.stats.Add(stats)
	g.updates++
	g.mu.Unlock()
	return nil
}

// Updates returns how many times the group's result was recomputed.
func (g *Group) Updates() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.updates
}

// Stats returns the accumulated computation counters.
func (g *Group) Stats() Stats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.stats
}

// EncodeRegion serializes a safe region for transmission: 24 bytes for a
// circle, the compact tile codec otherwise. DecodeRegion reverses it.
func EncodeRegion(r SafeRegion) []byte {
	if r.Kind == core.KindCircle {
		buf := make([]byte, 0, 25)
		buf = append(buf, 'C')
		buf = appendFloat(buf, r.Circle.C.X)
		buf = appendFloat(buf, r.Circle.C.Y)
		buf = appendFloat(buf, r.Circle.R)
		return buf
	}
	delta := 0.0
	for _, t := range r.Tiles {
		if w := t.Width(); w > delta {
			delta = w
		}
	}
	return tileenc.Encode(r.Tiles, delta)
}

// DecodeRegion parses an EncodeRegion payload.
func DecodeRegion(data []byte) (SafeRegion, error) {
	if len(data) == 25 && data[0] == 'C' {
		return core.CircleRegion(
			Pt(floatAt(data, 1), floatAt(data, 9)),
			floatAt(data, 17),
		), nil
	}
	tiles, err := tileenc.Decode(data)
	if err != nil {
		return SafeRegion{}, err
	}
	return core.TileRegion(tiles...), nil
}
