package mpn

import (
	"errors"
	"fmt"

	"mpn/internal/core"
	"mpn/internal/engine"
	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/nbrcache"
	"mpn/internal/netmpn"
	"mpn/internal/roadnet"
	"mpn/internal/tileenc"
)

// RoadNetwork is an embedded road network for the NetRange method (see
// WithRoadNetwork). It aliases the internal type, so generated or
// hand-built networks flow into the public API without conversion.
type RoadNetwork = roadnet.Network

// RoadNetConfig parameterizes GenerateRoadNetwork.
type RoadNetConfig = roadnet.Config

// DefaultRoadNetConfig returns the standard synthetic grid-with-defects
// road network configuration.
func DefaultRoadNetConfig() RoadNetConfig { return roadnet.DefaultConfig() }

// GenerateRoadNetwork builds a synthetic embedded road network.
func GenerateRoadNetwork(cfg RoadNetConfig) (*RoadNetwork, error) { return roadnet.Generate(cfg) }

// Point is a planar location. It aliases the internal geometry type so
// values flow between the public API and the internal packages without
// conversion.
type Point = geom.Point

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// SafeRegion is one user's safe region: as long as the user stays inside
// it, the group's meeting point cannot change. It aliases the internal
// region type; see Contains, MinDist, MaxDist.
type SafeRegion = core.SafeRegion

// Direction is a user's recent travel direction for the directed tile
// ordering: heading angle in radians and learned angular deviation bound.
type Direction = core.Direction

// Stats counts the work performed by safe-region computations.
type Stats = core.Stats

// ErrNoGroup is returned when operating on an empty user group.
var ErrNoGroup = errors.New("mpn: empty user group")

// ErrOverloaded is returned by Group.SubmitUpdate when the target
// shard's run queue stayed full for the whole admission wait (see
// WithAdmissionWait): the submission was shed, not queued. The group's
// retained plan is untouched — members still hold valid safe regions —
// so the natural recovery is to resubmit after backoff, or simply wait
// for the next escape report. It aliases the engine's sentinel, so
// errors.Is works across layers.
var ErrOverloaded = engine.ErrOverloaded

// ErrServerClosed is returned by group operations after Server.Close.
// It aliases the engine's sentinel, so errors.Is works across layers.
var ErrServerClosed = engine.ErrClosed

// GroupID identifies a registered group within a Server's engine; it
// appears in notifications so subscribers can route them.
type GroupID = engine.GroupID

// Notification reports one completed recomputation on the engine's
// subscription stream: the group, its recomputation sequence number, the
// fresh meeting point and safe regions, how many submissions coalesced
// into the recomputation, whether the meeting point moved, and — on
// servers with WithIncremental — how much of the previous plan the
// recomputation reused (Notification.Outcome).
type Notification = engine.Notification

// ReplanOutcome reports how an incremental recomputation satisfied an
// update: ReplanFull (from-scratch replan), ReplanPartial (only
// invalidated regions regrown), or ReplanKept (the whole retained plan
// was still valid). Non-incremental servers always report ReplanFull.
type ReplanOutcome = core.IncOutcome

// Replan outcomes carried on Notification.Outcome.
const (
	ReplanFull    = core.IncFull
	ReplanPartial = core.IncPartial
	ReplanKept    = core.IncKept
)

// Subscription is one listener on a Server's notification stream; read
// Notification values from its C channel and Close it when done.
type Subscription = engine.Subscription

// Server owns a POI data set and answers meeting-point registrations. It
// is safe for concurrent use by multiple groups: registered groups live
// in a sharded concurrent engine whose worker pool recomputes safe
// regions asynchronously (see Group.SubmitUpdate and Subscribe).
type Server struct {
	cfg     config
	planner *core.Planner
	planWS  engine.PlanWSFunc
	engine  *engine.Engine
	cache   *nbrcache.Cache // non-nil iff WithSharedGNNCache was given
}

// CacheStats is a snapshot of the shared GNN cache's counters (see
// WithSharedGNNCache and Server.GNNCacheStats).
type CacheStats = nbrcache.Stats

// NewServer indexes the POI set and returns a server. The default
// configuration is the paper's best method (directed tiles, α=30, L=2,
// buffering b=100, max-distance objective). Close releases the engine's
// worker goroutines.
func NewServer(pois []Point, opts ...Option) (*Server, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.method == NetRange {
		if cfg.network == nil {
			return nil, fmt.Errorf("mpn: method %v requires WithRoadNetwork", NetRange)
		}
		if cfg.cacheBytes > 0 {
			return nil, fmt.Errorf("mpn: WithSharedGNNCache applies to Euclidean planning; use WithNetCache with %v", NetRange)
		}
		// The indexed POI set is the network POI nodes' embedded
		// coordinates; the pois argument is ignored (see WithRoadNetwork).
		pois = make([]Point, len(cfg.poiNodes))
		for i, n := range cfg.poiNodes {
			pois[i] = cfg.network.Nodes[n].P
		}
	} else if cfg.network != nil {
		return nil, fmt.Errorf("mpn: WithRoadNetwork requires method %v, got %v", NetRange, cfg.method)
	}
	planner, err := core.NewPlanner(pois, cfg.core)
	if err != nil {
		return nil, fmt.Errorf("mpn: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		planner: planner,
	}
	circle := cfg.method == Circle
	if cfg.cacheBytes > 0 {
		s.cache = nbrcache.New(nbrcache.Config{MaxBytes: cfg.cacheBytes})
		// Register the cache for mutation notifications: POI churn then
		// evicts only the entries a mutation could actually affect
		// (dirty-tile invalidation) instead of cooling the whole cache.
		planner.ShareCache(s.cache)
	}
	eopts := engine.Options{
		Shards: cfg.shards, Workers: cfg.workers, QueueDepth: cfg.queueDepth,
		AdmissionWait: cfg.admissionWait, CloseTimeout: cfg.closeTimeout,
		TileAffinity: cfg.tileAffinity,
	}
	if cfg.method == NetRange {
		agg := netmpn.Max
		if cfg.core.Aggregate == gnn.Sum {
			agg = netmpn.Sum
		}
		backend, err := netmpn.NewBackend(cfg.network, cfg.poiNodes, netmpn.BackendConfig{
			Aggregate:    agg,
			Landmarks:    cfg.landmarks,
			CacheEntries: cfg.netCacheEntries,
			CacheK:       cfg.netCacheK,
		})
		if err != nil {
			return nil, fmt.Errorf("mpn: %w", err)
		}
		planner.RegisterNetBackend(backend)
		s.planWS = engine.PlannerKindWSFunc(planner, core.KindNetRange, nil)
		if cfg.incremental {
			eopts.Replan = engine.PlannerKindIncFunc(planner, core.KindNetRange, nil)
		}
	} else {
		s.planWS = engine.PlannerCachedWSFunc(planner, circle, s.cache)
		if cfg.incremental {
			eopts.Replan = engine.PlannerIncCachedFunc(planner, circle, s.cache)
		}
	}
	s.engine = engine.NewWS(s.planWS, eopts)
	return s, nil
}

// ShardStats is a snapshot of one engine shard's admission counters:
// queued recomputations, submissions shed by admission control, and
// recomputations abandoned by the Close drain deadline.
type ShardStats = engine.ShardStats

// ShardStats reports every engine shard's admission counters — the
// observability face of WithAdmissionWait and WithCloseTimeout.
func (s *Server) ShardStats() []ShardStats { return s.engine.ShardStats() }

// GNNCacheStats reports the shared neighborhood cache's counters and
// occupancy; ok is false (and the snapshot zero) when the server was
// built without WithSharedGNNCache.
func (s *Server) GNNCacheStats() (stats CacheStats, ok bool) {
	if s.cache == nil {
		return CacheStats{}, false
	}
	return s.cache.Stats(), true
}

// NumPOIs returns the indexed data set size.
func (s *Server) NumPOIs() int { return s.planner.NumPOIs() }

// InsertPOI adds one POI to the live data set and returns its id (ids
// are assigned sequentially and never reused). It is safe to call
// concurrently with planning and with other mutations: the index is
// published as immutable snapshots, every computation runs entirely
// against the snapshot it started on, and the mutation becomes visible
// to computations that start after it. Groups keep their current safe
// regions until their next update recomputes them against the new set;
// on incremental servers that next update is a full replan (the
// retained plan's certificate does not cover the mutation). Each call
// publishes a snapshot — batch through UpdatePOIs when changing many.
func (s *Server) InsertPOI(p Point) int { return s.planner.InsertPOI(p) }

// DeletePOI removes the POI with the given id from the live data set.
// It reports false — and changes nothing — when id is out of range,
// already deleted, or the last remaining POI (the data set may never
// become empty). Concurrency semantics are those of InsertPOI.
func (s *Server) DeletePOI(id int) bool { return s.planner.DeletePOI(id) }

// UpdatePOIs applies one batched mutation — inserts added to the data
// set, deleteIDs removed — atomically: the whole batch becomes visible
// as a single snapshot publication, and no computation ever observes a
// prefix of it. It returns the inserted POIs' ids, in order. The batch
// is rejected as a whole (with nothing applied) when a delete id is out
// of range, already deleted, repeated, or when the batch would empty
// the data set. Safe to call concurrently with planning and with other
// mutations.
func (s *Server) UpdatePOIs(inserts []Point, deleteIDs []int) ([]int, error) {
	ids, err := s.planner.ApplyPOIs(inserts, deleteIDs)
	if err != nil {
		return nil, fmt.Errorf("mpn: %w", err)
	}
	return ids, nil
}

// Register creates a monitored group from the users' current locations and
// computes its first meeting point and safe regions. dirs may be nil; it
// is only consulted by the TileDirected method. The registration plan is
// also emitted to subscribers as the group's Seq-1 notification.
func (s *Server) Register(users []Point, dirs []Direction) (*Group, error) {
	if len(users) == 0 {
		return nil, ErrNoGroup
	}
	id, err := s.engine.Register(users, dirs)
	if err != nil {
		return nil, err
	}
	return &Group{server: s, id: id, size: len(users)}, nil
}

// Subscribe attaches a listener to the server's notification stream with
// the given channel buffer. Every recomputation — synchronous or
// asynchronous, for any group — emits one Notification. Sends never
// block: a subscriber that falls behind drops frames (Subscription
// counts them).
func (s *Server) Subscribe(buffer int) *Subscription {
	return s.engine.Subscribe(buffer)
}

// Close stops the engine's workers — queued recomputations complete, but
// a submission accepted while its group was being recomputed may be
// discarded — and closes all subscription channels.
func (s *Server) Close() { s.engine.Close() }

// Plan computes a one-shot meeting point and safe regions without creating
// a group. It is the stateless core of Register/Update; scratch state is
// borrowed from the planning workspace pool, so repeated calls reach a
// steady state of a few allocations per plan (just the returned regions).
func (s *Server) Plan(users []Point, dirs []Direction) (Point, []SafeRegion, Stats, error) {
	if len(users) == 0 {
		return Point{}, nil, Stats{}, ErrNoGroup
	}
	ws := core.GetWorkspace()
	defer core.PutWorkspace(ws)
	return s.planWS(ws, users, dirs)
}

// Group is one monitored user group: a handle over the server engine's
// sharded registry. Its methods are safe for concurrent use.
type Group struct {
	server *Server
	id     engine.GroupID
	size   int
}

// ID returns the group's engine identifier, matching Notification.Group
// on the subscription stream.
func (g *Group) ID() GroupID { return g.id }

// Size returns the number of users m.
func (g *Group) Size() int { return g.size }

// MeetingPoint returns the currently reported optimal meeting point.
func (g *Group) MeetingPoint() Point {
	return g.server.engine.Meeting(g.id)
}

// Region returns user i's current safe region.
func (g *Group) Region(i int) SafeRegion {
	return g.server.engine.Region(g.id, i)
}

// Regions returns a copy of all safe regions.
func (g *Group) Regions() []SafeRegion {
	return g.server.engine.Regions(g.id)
}

// NeedsUpdate reports whether user i moving to loc escapes her safe region
// — the client-side trigger of the Fig. 3 protocol.
func (g *Group) NeedsUpdate(i int, loc Point) bool {
	return g.server.engine.NeedsUpdate(g.id, i, loc)
}

// Update recomputes the meeting point and safe regions from all users'
// current locations (the server-side step after an escape), on the
// caller's goroutine. dirs may be nil unless the server uses TileDirected
// and per-user headings are available. The result is visible through the
// accessors when Update returns, and is also emitted to subscribers.
func (g *Group) Update(users []Point, dirs []Direction) error {
	if len(users) != g.size {
		return fmt.Errorf("mpn: group has %d users, got %d locations", g.size, len(users))
	}
	return g.server.engine.Update(g.id, users, dirs)
}

// UpdateFull is Update with the server's retained incremental state for
// this group invalidated first, forcing a from-scratch replan of every
// member's region — the escape hatch when a client wants fresh regions
// regardless of what the incremental maintenance would keep (for
// example, after rejoining from a long disconnect). On servers without
// WithIncremental it is identical to Update.
func (g *Group) UpdateFull(users []Point, dirs []Direction) error {
	if len(users) != g.size {
		return fmt.Errorf("mpn: group has %d users, got %d locations", g.size, len(users))
	}
	return g.server.engine.UpdateFull(g.id, users, dirs)
}

// SubmitUpdate schedules an asynchronous recomputation on the engine's
// worker pool and returns immediately. Bursts of submissions for the same
// group coalesce into a single recomputation over the latest locations;
// results arrive on the Server.Subscribe stream. SubmitUpdate blocks only
// when the group's shard queue is full (backpressure).
func (g *Group) SubmitUpdate(users []Point, dirs []Direction) error {
	if len(users) != g.size {
		return fmt.Errorf("mpn: group has %d users, got %d locations", g.size, len(users))
	}
	return g.server.engine.Submit(g.id, users, dirs)
}

// SubmitUpdateFull is SubmitUpdate with the retained incremental state
// invalidated when the recomputation runs — the asynchronous counterpart
// of UpdateFull, for callers on the Subscribe/SubmitUpdate pattern whose
// read loops must never block on a replan. The forced-full demand
// survives coalescing: if the submission collapses into a burst, the
// burst's one recomputation is full.
func (g *Group) SubmitUpdateFull(users []Point, dirs []Direction) error {
	if len(users) != g.size {
		return fmt.Errorf("mpn: group has %d users, got %d locations", g.size, len(users))
	}
	return g.server.engine.SubmitFull(g.id, users, dirs)
}

// Unregister removes the group from the server's engine; queued
// recomputations for it are discarded and its accessors become
// conservative zero values.
func (g *Group) Unregister() { g.server.engine.Unregister(g.id) }

// Updates returns how many times the group's result was recomputed
// (registration counts as the first).
func (g *Group) Updates() int {
	return g.server.engine.Updates(g.id)
}

// Stats returns the accumulated computation counters.
func (g *Group) Stats() Stats {
	return g.server.engine.Stats(g.id)
}

// EncodeRegion serializes a safe region for transmission: 25 bytes for a
// circle (1 tag byte + 3 little-endian float64s), a tagged
// covered-segment encoding for a network range region, the compact tile
// codec otherwise. DecodeRegion reverses it.
func EncodeRegion(r SafeRegion) []byte {
	if r.Kind == core.KindCircle {
		buf := make([]byte, 0, 25)
		buf = append(buf, 'C')
		buf = appendFloat(buf, r.Circle.C.X)
		buf = appendFloat(buf, r.Circle.C.Y)
		buf = appendFloat(buf, r.Circle.R)
		return buf
	}
	if r.Kind == core.KindNetRange {
		return r.Net.AppendEncode(nil)
	}
	delta := 0.0
	for _, t := range r.Tiles {
		if w := t.Width(); w > delta {
			delta = w
		}
	}
	return tileenc.Encode(r.Tiles, delta)
}

// DecodeRegion parses an EncodeRegion payload.
func DecodeRegion(data []byte) (SafeRegion, error) {
	if len(data) == 25 && data[0] == 'C' {
		return core.CircleRegion(
			Pt(floatAt(data, 1), floatAt(data, 9)),
			floatAt(data, 17),
		), nil
	}
	if len(data) > 0 && data[0] == 'N' {
		nr, err := netmpn.DecodeRegion(data)
		if err != nil {
			return SafeRegion{}, err
		}
		return core.NetRegion(nr), nil
	}
	tiles, err := tileenc.Decode(data)
	if err != nil {
		return SafeRegion{}, err
	}
	return core.TileRegion(tiles...), nil
}
