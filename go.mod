module mpn

go 1.24
