package mpn

import (
	"encoding/binary"
	"math"
)

// appendFloat appends a little-endian IEEE-754 float64.
func appendFloat(buf []byte, v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return append(buf, b[:]...)
}

// floatAt reads a little-endian float64 at offset.
func floatAt(data []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
}
