//go:build !race

package mpn

// raceEnabled lets allocation-budget tests skip under the race detector,
// whose instrumentation perturbs allocation accounting.
const raceEnabled = false
