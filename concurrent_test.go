package mpn

// Concurrency and property tests for the engine-backed public API: many
// groups hammered from many goroutines (run with -race), the asynchronous
// SubmitUpdate/Subscribe path, the engine options, and a testing/quick
// property asserting the paper's core invariant — after every update,
// each user's current location lies inside her own safe region.

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOptions(t *testing.T) {
	s, err := NewServer(testPOIs(200, 30),
		WithShards(4), WithWorkers(2), WithQueueDepth(64))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, o := range []Option{WithShards(0), WithWorkers(0), WithQueueDepth(0)} {
		if _, err := NewServer(testPOIs(5, 31), o); err == nil {
			t.Fatalf("bad engine option %d accepted", i)
		}
	}
}

// TestManyGroupsParallel exercises shard contention: parallel Update /
// NeedsUpdate / Regions / MeetingPoint across many groups and goroutines.
func TestManyGroupsParallel(t *testing.T) {
	s, err := NewServer(testPOIs(600, 32), WithMethod(Circle), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const groups, writers, rounds = 24, 6, 12
	gs := make([]*Group, groups)
	for i := range gs {
		g, err := s.Register([]Point{Pt(0.3, 0.3), Pt(0.35, 0.32)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		gs[i] = g
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				g := gs[rng.Intn(groups)]
				switch rng.Intn(3) {
				case 0:
					locs := []Point{
						Pt(rng.Float64(), rng.Float64()),
						Pt(rng.Float64(), rng.Float64()),
					}
					if err := g.Update(locs, nil); err != nil {
						t.Error(err)
						return
					}
				case 1:
					locs := []Point{
						Pt(rng.Float64(), rng.Float64()),
						Pt(rng.Float64(), rng.Float64()),
					}
					if err := g.SubmitUpdate(locs, nil); err != nil {
						t.Error(err)
						return
					}
				default:
					_ = g.MeetingPoint()
					_ = g.NeedsUpdate(0, Pt(rng.Float64(), rng.Float64()))
					_ = g.Regions()
					_ = g.Stats()
				}
			}
		}(int64(w))
	}
	wg.Wait()
	for i, g := range gs {
		if g.Updates() < 1 {
			t.Fatalf("group %d lost its registration plan", i)
		}
	}
}

// TestSubmitUpdateNotifies drives the asynchronous path end to end
// through the public API.
func TestSubmitUpdateNotifies(t *testing.T) {
	s, err := NewServer(testPOIs(500, 33), WithMethod(TileDirected), WithTileLimit(5))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sub := s.Subscribe(16)
	defer sub.Close()
	users := []Point{Pt(0.3, 0.3), Pt(0.34, 0.31)}
	g, err := s.Register(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := <-sub.C
	if n.Group != g.ID() || n.Seq != 1 {
		t.Fatalf("bad registration notification %+v", n)
	}
	moved := []Point{Pt(0.6, 0.6), Pt(0.63, 0.58)}
	if err := g.SubmitUpdate(moved, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-sub.C:
		if n.Group != g.ID() || n.Seq != 2 {
			t.Fatalf("bad async notification %+v", n)
		}
		for i, u := range moved {
			if !n.Regions[i].Contains(u) {
				t.Fatalf("async region %d misses its user", i)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no async notification")
	}
	if err := g.SubmitUpdate(moved[:1], nil); err == nil {
		t.Fatal("size mismatch accepted")
	}
	g.Unregister()
	if !g.NeedsUpdate(0, moved[0]) {
		t.Fatal("unregistered group must be conservative")
	}
	if err := g.SubmitUpdate(moved, nil); err == nil {
		t.Fatal("submit to unregistered group accepted")
	}
}

// quickGroup is a random group of 1–5 users in the unit square, shaped
// for testing/quick.
type quickGroup struct {
	Users []Point
}

// Generate implements quick.Generator: sizes and coordinates stay inside
// the POI domain so every plan is feasible.
func (quickGroup) Generate(rng *rand.Rand, _ int) reflect.Value {
	m := 1 + rng.Intn(5)
	users := make([]Point, m)
	for i := range users {
		users[i] = Pt(0.05+0.9*rng.Float64(), 0.05+0.9*rng.Float64())
	}
	return reflect.ValueOf(quickGroup{Users: users})
}

// TestQuickLocationInsideOwnRegion is the paper's safe-region soundness
// property as a quick check: whatever the group looks like and wherever
// it moves, after an update each user's current location is inside her
// own safe region (Definition 3 requires regions to cover the users they
// were computed for).
func TestQuickLocationInsideOwnRegion(t *testing.T) {
	pois := testPOIs(700, 34)
	for _, method := range []Method{Circle, Tile, TileDirected} {
		s, err := NewServer(pois, WithMethod(method), WithTileLimit(4), WithBuffer(10))
		if err != nil {
			t.Fatal(err)
		}
		property := func(first, second quickGroup) bool {
			g, err := s.Register(first.Users, nil)
			if err != nil {
				return false
			}
			defer g.Unregister()
			for i, u := range first.Users {
				if !g.Region(i).Contains(u) || g.NeedsUpdate(i, u) {
					return false
				}
			}
			// Move everyone (reusing the first group's size) and update.
			moved := make([]Point, len(first.Users))
			for i := range moved {
				moved[i] = second.Users[i%len(second.Users)]
			}
			if err := g.Update(moved, nil); err != nil {
				return false
			}
			for i, u := range moved {
				if !g.Region(i).Contains(u) || g.NeedsUpdate(i, u) {
					return false
				}
			}
			return true
		}
		cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(int64(method) + 99))}
		if err := quick.Check(property, cfg); err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		s.Close()
	}
}
