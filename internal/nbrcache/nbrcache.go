// Package nbrcache is a shared, concurrency-safe neighborhood cache for
// group nearest neighbor searches: co-located groups planning over one
// POI index stop recomputing the same best-first R-tree traversals.
//
// # Keying and what an entry stores
//
// The cache quantizes a group's centroid to a square tile of side
// Config.TileSize. An entry is keyed by (tile, aggregate, k) and stores
// the J ≥ k POIs nearest to the *tile center* q, in ascending distance
// order, together with the distance of the J-th (the guarantee radius:
// every POI absent from the entry is at least that far from q) and the
// R-tree version the traversal ran against. The entry therefore depends
// only on the tile and the index — not on any particular group — so
// every group whose centroid falls in the tile can be served from it.
//
// # Why a hit is still exact
//
// A cached entry is a candidate superset, not an answer: the top-k
// result set of a specific group depends on its exact member locations.
// On a hit the cache computes the true aggregate distance of every
// cached POI for the requesting members (the same float arithmetic as
// the traversal) and selects the best k. The selection is then
// certified with the triangle inequality: for any uncached POI p and
// member u, ‖p,u‖ ≥ ‖p,q‖ − ‖u,q‖ ≥ last − ‖u,q‖, so
//
//	MAX: ‖p,U‖max ≥ last − min_i ‖u_i,q‖  (the max dominates every member,
//	     so the bound through the member nearest q is the tight one)
//	SUM: ‖p,U‖sum ≥ m·last − Σ_i ‖u_i,q‖
//
// where last is the guarantee radius. If the k-th best cached aggregate
// beats that bound strictly, no uncached POI can enter the top-k and
// the extracted set is byte-identical to what the traversal would
// return: distances come from the identical gnn.Aggregate.PointDist
// calls, order is ascending, and a selection containing (or bounded by)
// an exact distance tie — whose order the traversal's heap would decide
// — is never certified. When certification fails, for spread or for
// ties, the lookup falls back to the real traversal (a hit that fails
// counts as a rejection).
//
// Downstream, safe-region planning re-verifies every tile against the
// requesting group's actual members (Divide-Verify), so even the
// certified result set is never trusted blindly by the planner.
//
// # Adaptive entry depth
//
// A rejection is informative: once the fallback traversal reveals the
// group's true k-th aggregate distance, the exact guarantee radius that
// WOULD have certified the group is known (kth + min_i‖u_i,q‖ for MAX,
// (kth + Σ_i‖u_i,q‖)/m for SUM). The cache records the deepest such
// radius per key (bounded per stripe) and the key's next repopulation
// grows J geometrically until the retrieved radius covers it — capped
// by Config.MaxDepthFactor — so tiles frequented by spread-out groups
// converge to a depth that serves them instead of rejecting forever,
// while tight-group tiles stay at the cheap static depth.
//
// Depth also decays. Every certified hit on a deepened entry reveals the
// radius that certification actually used; when a sustained streak of
// hits never needs more than half the recorded radius — the spread-out
// groups that forced the depth have moved on — the hint decays to what
// the streak needed, and the key's next repopulation lands back near the
// static depth instead of paying the deep traversal forever.
// Stats.DepthHints, Stats.DepthGrows, and Stats.DepthShrinks count the
// feedback loop.
//
// # Invalidation
//
// Entries record the exact (tree, version) pair they were computed
// from, so a lookup against any other index state observes the mismatch
// and repopulates — a stale entry can never be served. How entries cross
// a version transition depends on the writer:
//
//   - Unaware writers (anyone mutating a tree in place without telling
//     the cache) get the conservative behavior: the version mismatch
//     kills the entry on its next lookup.
//   - Snapshot writers (core.Planner's batched mutation path) call
//     Advance with the mutated POI locations. An entry's guarantee
//     radius localizes what it depends on: the entry asserts facts only
//     about POIs within distance last of its tile center, so a mutation
//     strictly outside that disk cannot change the entry's items or
//     weaken its guarantee. Advance therefore evicts only entries that a
//     mutated point actually reaches (or complete entries, which assert
//     the absence of any uncached POI) and migrates every other entry to
//     the new (tree, version) in place — localized churn leaves the rest
//     of the cache hot. Stats.ChurnEvicted and Stats.ChurnMigrated count
//     the split.
//
// A migrated entry also remembers the one (tree, version) it migrated
// away from: a straggler reader still pinned to the previous snapshot
// recognizes the entry as migrated-forward and treats it as a plain miss
// instead of destroying it, and its repopulation is served privately
// rather than displacing the newer entry. One generation of memory
// suffices because the snapshot writer never publishes version N+1 until
// all readers of N−1 have drained.
//
// # Concurrency and memory
//
// The table is lock-striped by key hash. An entry's payload (items,
// guarantee radius, tile center) is immutable once published; only its
// (tree, version) pinning mutates, and only under the stripe lock that
// every lookup's staleness check already holds. Distance arithmetic
// never runs under a lock, so lookups from many engine workers contend
// only on the few nanoseconds of LRU touch. Each stripe evicts
// least-recently-used entries beyond its share of Config.MaxBytes.
package nbrcache

import (
	"math"
	"sync"
	"sync/atomic"

	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/rtree"
)

// Config sizes the cache. The zero value of any field selects its
// default.
type Config struct {
	// TileSize is the quantization of group centroids: groups whose
	// centroids share a tile share entries. Smaller tiles tighten the
	// certification bound (higher hit rate for tight groups) but fragment
	// sharing. Default 1/128 of the unit domain.
	TileSize float64
	// MaxBytes bounds the cache's retained entry bytes (approximate:
	// items plus fixed per-entry overhead), split evenly across stripes.
	// Default 8 MiB.
	MaxBytes int64
	// Stripes is the lock-stripe count. Default 16.
	Stripes int
	// DepthFactor and DepthSlack set an entry's starting depth J =
	// k·DepthFactor + DepthSlack. Deeper entries certify more spread-out
	// groups at the cost of more distance computations per hit. Defaults
	// 4 and 16.
	DepthFactor int
	DepthSlack  int
	// MaxDepthFactor bounds the adaptive entry depth: a certification
	// rejection records the guarantee radius the rejecting group would
	// have needed, and the key's next repopulation deepens J
	// geometrically (one extra point-kNN per doubling) until that radius
	// is covered, capped at k·MaxDepthFactor + DepthSlack. Values at or
	// below DepthFactor disable growth. Default 64.
	MaxDepthFactor int
}

func (c Config) withDefaults() Config {
	if c.TileSize <= 0 {
		c.TileSize = 1.0 / 128
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 8 << 20
	}
	if c.Stripes <= 0 {
		c.Stripes = 16
	}
	if c.DepthFactor <= 0 {
		c.DepthFactor = 4
	}
	if c.DepthSlack <= 0 {
		c.DepthSlack = 16
	}
	if c.MaxDepthFactor <= 0 {
		c.MaxDepthFactor = 64
	}
	return c
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	// Hits counts lookups served (and certified) from a pre-existing
	// entry — each one is an index traversal that never happened.
	Hits uint64
	// Misses counts lookups that found no usable entry (absent or stale)
	// and populated one with a fresh point-kNN traversal; when the fresh
	// entry cannot certify the requesting group, the extra fallback
	// traversal is part of the miss. Hits+Misses+Rejected is the total
	// lookup count: each lookup increments exactly one.
	Misses uint64
	// Stale counts the subset of misses whose entry existed but recorded
	// an old R-tree version.
	Stale uint64
	// Rejected counts lookups that found a pre-existing entry but could
	// not certify the requesting group against it — too spread for the
	// entry depth — and fell back to a full aggregate traversal.
	Rejected uint64
	// Evictions counts entries dropped by the LRU byte budget.
	Evictions uint64
	// DepthHints counts certification rejections that recorded (or
	// deepened) the guarantee radius the rejecting group would have
	// needed — the adaptive-depth feedback signal.
	DepthHints uint64
	// DepthGrows counts repopulations that deepened an entry beyond the
	// static k·DepthFactor+DepthSlack to satisfy a recorded hint.
	DepthGrows uint64
	// DepthShrinks counts depth-hint decays: a sustained streak of
	// certified hits on a deepened entry never needed the recorded
	// radius, so the hint decayed and the key's next repopulation lands
	// back toward the static depth.
	DepthShrinks uint64
	// ChurnEvicted and ChurnMigrated split the entries that Advance saw
	// on an index version transition: evicted entries were within a
	// mutated point's reach (or complete) and died; migrated entries were
	// provably unaffected and survived onto the new (tree, version).
	ChurnEvicted  uint64
	ChurnMigrated uint64
	// Entries and Bytes describe current occupancy.
	Entries int
	Bytes   int64
}

// Scratch carries one goroutine's reusable lookup state. The zero value
// is ready to use; not safe for concurrent use.
type Scratch struct {
	qpt  [1]geom.Point
	fill []gnn.Result
}

type key struct {
	tx, ty int32
	agg    gnn.Aggregate
	k      int32
}

// entry is a cached neighborhood. Its payload (q, items, last, complete)
// is immutable once published, so readers use it without holding the
// stripe lock; the (tree, version) pinning mutates when Advance migrates
// the entry across an index version transition, but only under the
// stripe lock that every lookup's staleness check holds anyway.
type entry struct {
	key key
	// tree and version pin the entry to the exact index it was computed
	// from (or migrated to): a version number alone cannot distinguish
	// two different trees (every fresh bulk load restarts at version 0),
	// so a cache shared across planners would otherwise serve one tree's
	// neighborhoods — and certify against its guarantee radius — for
	// another's. Holding the pointer (rather than an address-derived id)
	// also rules out ABA reuse; it pins a replaced tree until the entry
	// is evicted or invalidated, which the LRU bounds.
	tree    *rtree.Tree
	version uint64
	// prevTree and prevVersion remember the one index state the entry
	// last migrated away from, so a straggler reader still pinned to the
	// previous snapshot sees a miss instead of destroying the migrated
	// entry. One generation suffices: the snapshot writer drains readers
	// of N−1 before publishing N+1.
	prevTree    *rtree.Tree
	prevVersion uint64

	q        geom.Point   // tile center the items were retrieved around
	items    []rtree.Item // J nearest POIs to q, ascending distance
	last     float64      // distance of items[len-1] to q (guarantee radius)
	complete bool         // the whole data set is cached: no uncached POI exists
	bytes    int64

	prev, next *entry // stripe LRU list (most recent at head)
}

const entryOverhead = 96 // approximate fixed entry + map slot cost

// maxNeedPerStripe bounds the adaptive-depth hint map: a stripe tracks
// at most this many keys' needed radii, so a scan over many tiles cannot
// grow unbounded bookkeeping.
const maxNeedPerStripe = 512

// depthHint is one key's adaptive-depth state: the guarantee radius the
// next repopulation must cover (grown by rejections, decayed by hit
// streaks) and the running shrink window over certified hits on a
// deepened entry.
type depthHint struct {
	radius float64 // guarantee radius repopulation must cover
	streak uint32  // consecutive certified hits on a deepened entry
	hitMax float64 // deepest radius any hit in the streak actually needed
}

type stripe struct {
	mu     sync.Mutex
	table  map[key]*entry
	head   *entry // most recently used
	tail   *entry // least recently used
	bytes  int64
	budget int64
	// need records, per key, the adaptive-depth hint (see recordNeed and
	// recordHitDepth); the key's next repopulation grows its depth until
	// the hinted radius is covered.
	need map[key]depthHint
}

// Cache is the shared neighborhood cache. All methods are safe for
// concurrent use. A nil *Cache is valid and degrades every lookup to
// the plain traversal.
type Cache struct {
	cfg     Config
	stripes []stripe

	hits          atomic.Uint64
	misses        atomic.Uint64
	stale         atomic.Uint64
	rejected      atomic.Uint64
	evictions     atomic.Uint64
	depthHints    atomic.Uint64
	depthGrows    atomic.Uint64
	depthShrinks  atomic.Uint64
	churnEvicted  atomic.Uint64
	churnMigrated atomic.Uint64
}

// New builds a cache from cfg (zero fields select defaults).
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	c := &Cache{cfg: cfg, stripes: make([]stripe, cfg.Stripes)}
	budget := cfg.MaxBytes / int64(cfg.Stripes)
	if budget < 1 {
		budget = 1
	}
	for i := range c.stripes {
		c.stripes[i].table = make(map[key]*entry)
		c.stripes[i].budget = budget
	}
	return c
}

// Stats returns a snapshot of the counters and occupancy.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	s := Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Stale:         c.stale.Load(),
		Rejected:      c.rejected.Load(),
		Evictions:     c.evictions.Load(),
		DepthHints:    c.depthHints.Load(),
		DepthGrows:    c.depthGrows.Load(),
		DepthShrinks:  c.depthShrinks.Load(),
		ChurnEvicted:  c.churnEvicted.Load(),
		ChurnMigrated: c.churnMigrated.Load(),
	}
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		s.Entries += len(st.table)
		s.Bytes += st.bytes
		st.mu.Unlock()
	}
	return s
}

// TileSize returns the resolved centroid quantization.
func (c *Cache) TileSize() float64 { return c.cfg.TileSize }

// keyFor quantizes the group centroid and returns the key and the tile
// center q.
func (c *Cache) keyFor(users []geom.Point, agg gnn.Aggregate, k int) (key, geom.Point) {
	var cx, cy float64
	for _, u := range users {
		cx += u.X
		cy += u.Y
	}
	inv := 1 / float64(len(users))
	cx *= inv
	cy *= inv
	tx := int32(math.Floor(cx / c.cfg.TileSize))
	ty := int32(math.Floor(cy / c.cfg.TileSize))
	q := geom.Pt((float64(tx)+0.5)*c.cfg.TileSize, (float64(ty)+0.5)*c.cfg.TileSize)
	return key{tx: tx, ty: ty, agg: agg, k: int32(k)}, q
}

func (c *Cache) stripeOf(k key) *stripe {
	h := uint64(uint32(k.tx))*0x9e3779b97f4a7c15 ^
		uint64(uint32(k.ty))*0xc2b2ae3d27d4eb4f ^
		uint64(k.agg)<<32 ^ uint64(uint32(k.k))
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return &c.stripes[h%uint64(len(c.stripes))]
}

// TopKInto returns the top-k aggregate nearest neighbors for users,
// byte-identical to gnn.TopKInto over the same tree: served from the
// cache when an entry for the group's centroid tile certifies the
// result, populated (one point-kNN traversal around the tile center)
// on a miss, and computed with the plain aggregate traversal when
// certification fails. out is the caller-owned result buffer, cs the
// caller's reusable scratch; after both have grown to working size the
// hit path performs no allocations.
func (c *Cache) TopKInto(t *rtree.Tree, gs *gnn.Scratch, cs *Scratch, users []geom.Point, agg gnn.Aggregate, k int, out []gnn.Result) []gnn.Result {
	if c == nil || k <= 0 || len(users) == 0 {
		return gnn.TopKInto(t, gs, users, agg, k, out)
	}
	ky, q := c.keyFor(users, agg, k)
	ver := t.Version()
	st := c.stripeOf(ky)

	st.mu.Lock()
	e := st.table[ky]
	if e != nil && (e.tree != t || e.version != ver) {
		if e.prevTree == t && e.prevVersion == ver {
			// The entry migrated forward past this reader's pinned
			// snapshot. The reader is the straggler, not the entry: treat
			// it as a plain miss and leave the migrated entry alone.
			e = nil
		} else {
			st.remove(e)
			e = nil
		}
		c.stale.Add(1)
	}
	if e != nil {
		st.touch(e)
	}
	st.mu.Unlock()

	// Counter discipline: every lookup increments exactly one of Hits
	// (served from a pre-existing entry), Rejected (a pre-existing entry
	// could not certify this group), or Misses (no usable entry; the
	// fallback traversal after a fresh entry fails certification is part
	// of the miss cost) — so Hits+Misses+Rejected is the lookup count.
	hit := e != nil
	if e == nil {
		c.misses.Add(1)
		e = c.populate(t, gs, cs, ky, q, k, ver)
	}
	if e != nil {
		if res, ok := extract(e, users, agg, k, out); ok {
			if hit {
				c.hits.Add(1)
			}
			if len(e.items) > k*c.cfg.DepthFactor+c.cfg.DepthSlack && len(res) >= k {
				// A certified hit on a deepened entry reveals how much
				// radius this group actually needed; feed the shrink
				// window so depth forced by long-gone spread-out groups
				// decays instead of taxing every repopulation forever.
				c.recordHitDepth(ky, e.q, users, agg, res[k-1].Dist)
			}
			return res
		}
		if hit {
			c.rejected.Add(1)
		}
	}
	res := gnn.TopKInto(t, gs, users, agg, k, out)
	if e != nil && !e.complete && len(res) >= k {
		// The entry could not certify this group. The fallback traversal
		// just revealed the true k-th aggregate, which pins down exactly
		// the guarantee radius a deeper entry would have needed; record
		// it so the key's next repopulation grows to cover groups like
		// this one.
		c.recordNeed(ky, e.q, users, agg, res[k-1].Dist)
	}
	return res
}

// needFor is the guarantee radius that certifies a lookup whose k-th
// aggregate distance is kth: from the certification bound, an entry
// certifies the group iff its radius exceeds kth + min_i‖u_i,q‖ (MAX)
// or (kth + Σ_i‖u_i,q‖)/m (SUM).
func needFor(q geom.Point, users []geom.Point, agg gnn.Aggregate, kth float64) float64 {
	minD := math.Inf(1)
	sumD := 0.0
	for _, u := range users {
		d := u.Dist(q)
		sumD += d
		if d < minD {
			minD = d
		}
	}
	if agg == gnn.Sum {
		return (kth + sumD) / float64(len(users))
	}
	return kth + minD
}

// recordNeed stores (or deepens) the guarantee radius that would have
// certified a rejected lookup. Bounded per stripe; an existing hint's
// radius only deepens here (decay is recordHitDepth's job), but any
// rejection closes the running shrink window — the key evidently still
// serves groups its depth cannot certify.
func (c *Cache) recordNeed(ky key, q geom.Point, users []geom.Point, agg gnn.Aggregate, kth float64) {
	need := needFor(q, users, agg, kth)
	st := c.stripeOf(ky)
	st.mu.Lock()
	h, known := st.need[ky]
	if known || len(st.need) < maxNeedPerStripe {
		grew := need > h.radius
		if grew {
			h.radius = need
		}
		h.streak, h.hitMax = 0, 0
		if grew || known {
			if st.need == nil {
				st.need = make(map[key]depthHint)
			}
			st.need[ky] = h
		}
		if grew {
			c.depthHints.Add(1)
		}
	}
	st.mu.Unlock()
}

// shrinkStreak is how many consecutive certified hits a deepened entry
// must serve — none needing more than half the hinted radius — before
// the hint decays to what the streak actually needed.
const shrinkStreak = 32

// recordHitDepth feeds the adaptive-depth shrink window after a
// certified hit on a deepened entry: when shrinkStreak consecutive hits
// all certified with at most half the hinted radius, the groups that
// forced the depth are gone, so the hint decays to the streak's deepest
// actual need and the key's next repopulation lands back toward the
// static depth.
func (c *Cache) recordHitDepth(ky key, q geom.Point, users []geom.Point, agg gnn.Aggregate, kth float64) {
	need := needFor(q, users, agg, kth)
	st := c.stripeOf(ky)
	st.mu.Lock()
	h, known := st.need[ky]
	if !known {
		// Nothing to decay: the depth did not come from a live hint.
		st.mu.Unlock()
		return
	}
	if need > h.hitMax {
		h.hitMax = need
	}
	h.streak++
	if h.streak >= shrinkStreak {
		if h.hitMax <= h.radius/2 {
			h.radius = h.hitMax
			c.depthShrinks.Add(1)
		}
		h.streak, h.hitMax = 0, 0
	}
	st.need[ky] = h
	st.mu.Unlock()
}

// populate retrieves the J nearest POIs to the tile center with a
// point-kNN traversal and publishes the entry. J starts at the static
// k·DepthFactor+DepthSlack; when a prior rejection recorded the radius a
// spread-out group needed (see recordNeed), the retrieval doubles J —
// one extra traversal per doubling, repopulations are rare — until the
// entry's guarantee radius strictly exceeds it, the data set is
// exhausted, or the MaxDepthFactor bound is hit. Returns nil on an
// empty tree.
func (c *Cache) populate(t *rtree.Tree, gs *gnn.Scratch, cs *Scratch, ky key, q geom.Point, k int, ver uint64) *entry {
	st0 := c.stripeOf(ky)
	st0.mu.Lock()
	need := st0.need[ky].radius
	st0.mu.Unlock()

	j := k*c.cfg.DepthFactor + c.cfg.DepthSlack
	maxJ := k*c.cfg.MaxDepthFactor + c.cfg.DepthSlack
	cs.qpt[0] = q
	grew := false
	for {
		// A single-user MAX aggregate is a plain distance: the traversal
		// is an ordinary point kNN from the tile center.
		cs.fill = gnn.TopKInto(t, gs, cs.qpt[:1], gnn.Max, j, cs.fill[:0])
		if len(cs.fill) == 0 {
			return nil
		}
		if need == 0 || cs.fill[len(cs.fill)-1].Dist > need ||
			len(cs.fill) < j || j >= maxJ {
			break
		}
		j = min(j*2, maxJ)
		grew = true
	}
	if grew {
		c.depthGrows.Add(1)
	}
	items := make([]rtree.Item, len(cs.fill))
	for i, r := range cs.fill {
		items[i] = r.Item
	}
	e := &entry{
		key:      ky,
		tree:     t,
		version:  ver,
		q:        q,
		items:    items,
		last:     cs.fill[len(cs.fill)-1].Dist,
		complete: len(items) >= t.Len(),
		bytes:    entryOverhead + int64(len(items))*24,
	}
	st := c.stripeOf(ky)
	st.mu.Lock()
	if old := st.table[ky]; old != nil {
		if old.tree != t && old.prevTree == t && old.prevVersion == ver {
			// The published entry has already migrated past this reader's
			// pinned snapshot. Serve the straggler from its private entry
			// without displacing the newer one.
			st.mu.Unlock()
			return e
		}
		// A concurrent populate won the race; replace it (contents for
		// one (key, version) are identical) to keep accounting simple.
		st.remove(old)
	}
	st.insert(e)
	for st.bytes > st.budget && st.tail != nil && st.tail != e {
		st.remove(st.tail)
		c.evictions.Add(1)
	}
	st.mu.Unlock()
	return e
}

// Invalidation describes one published index mutation batch to Advance:
// the (tree, version) pair being retired, the pair that replaces it, and
// the locations every mutated POI (inserted or deleted) occupies. The
// snapshot writer guarantees the old pair is never planned against again
// once Advance returns.
type Invalidation struct {
	OldTree    *rtree.Tree
	OldVersion uint64
	NewTree    *rtree.Tree
	NewVersion uint64
	// Points holds the location of every POI the batch inserted or
	// deleted.
	Points []geom.Point
}

// Advance carries the cache across an index version transition. An entry
// pinned to the retired (tree, version) asserts facts only about the
// disk of radius last around its tile center — its items all lie inside
// it, and no uncached POI does — so a mutation strictly outside that
// disk can neither change the entry's items nor weaken its guarantee.
// Entries some mutated point reaches (boundary inclusive: an insert
// exactly at the guarantee radius could tie into the items) are evicted,
// as are complete entries, whose no-uncached-POI claim any insert
// violates; every other entry migrates to the new (tree, version) in
// place, remembering the retired pair for one generation so straggler
// readers miss instead of destroying it. Entries pinned to any other
// index state (older generations, unrelated planners) are untouched —
// their own staleness checks retire them.
func (c *Cache) Advance(inv Invalidation) {
	if c == nil {
		return
	}
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		for _, e := range st.table {
			if e.tree != inv.OldTree || e.version != inv.OldVersion {
				continue
			}
			if churnReaches(e, inv.Points) {
				st.remove(e)
				c.churnEvicted.Add(1)
			} else {
				e.prevTree, e.prevVersion = e.tree, e.version
				e.tree, e.version = inv.NewTree, inv.NewVersion
				c.churnMigrated.Add(1)
			}
		}
		st.mu.Unlock()
	}
}

// churnReaches reports whether any mutated point can affect e: complete
// entries are reached by construction (they claim no uncached POI
// exists anywhere), others iff a point lands within the guarantee
// radius of the tile center.
func churnReaches(e *entry, pts []geom.Point) bool {
	if e.complete {
		return true
	}
	for _, p := range pts {
		if p.Dist(e.q) <= e.last {
			return true
		}
	}
	return false
}

// extract computes the exact aggregate distance of every cached POI for
// the requesting members, selects the best k in ascending order into
// out, and certifies that no uncached POI could displace any of them.
// On failure the returned slice is garbage the caller discards (the
// fallback traversal re-appends from the original buffer).
func extract(e *entry, users []geom.Point, agg gnn.Aggregate, k int, out []gnn.Result) ([]gnn.Result, bool) {
	// Select one past k so a tie sitting exactly on the k boundary is
	// observable below.
	out = out[:0]
	for _, it := range e.items {
		out = gnn.PushTopK(out, it, agg.PointDist(it.P, users), k+1)
	}
	// Exact aggregate-distance ties (duplicate POI coordinates, symmetric
	// layouts) are ordered by entry order here but by heap pop order in
	// the traversal, so byte-identity cannot be promised: a result set
	// containing (or bounded by) a tie is never certified.
	for i := 1; i < len(out); i++ {
		if out[i].Dist == out[i-1].Dist {
			return out, false
		}
	}
	if len(out) > k {
		out = out[:k]
	}
	if e.complete {
		// The entry holds the entire data set: out is exactly the
		// traversal's min(k, n) results.
		return out, true
	}
	if len(out) < k {
		return out, false
	}
	// Lower-bound the aggregate of every uncached POI from the guarantee
	// radius and the members' distances to the tile center. For MAX the
	// bound through the member NEAREST the tile center is the tight one:
	// max_i ‖p,u_i‖ ≥ ‖p,u_j‖ ≥ last − ‖u_j,q‖ for every j, maximized at
	// the smallest ‖u_j,q‖ — so one member near the tile center certifies
	// even a spread-out group.
	var minD, sumD float64
	minD = math.Inf(1)
	for _, u := range users {
		d := u.Dist(e.q)
		sumD += d
		if d < minD {
			minD = d
		}
	}
	lb := e.last - minD
	if agg == gnn.Sum {
		lb = float64(len(users))*e.last - sumD
	}
	// Strict: on a tie an uncached POI could legitimately appear in the
	// traversal's output, so equality does not certify.
	if out[k-1].Dist < lb {
		return out, true
	}
	return out, false
}

// insert links e at the LRU head and accounts its bytes. Caller holds mu.
func (st *stripe) insert(e *entry) {
	st.table[e.key] = e
	e.prev = nil
	e.next = st.head
	if st.head != nil {
		st.head.prev = e
	}
	st.head = e
	if st.tail == nil {
		st.tail = e
	}
	st.bytes += e.bytes
}

// remove unlinks e and drops it from the table. Caller holds mu.
func (st *stripe) remove(e *entry) {
	delete(st.table, e.key)
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		st.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		st.tail = e.prev
	}
	e.prev, e.next = nil, nil
	st.bytes -= e.bytes
}

// touch moves e to the LRU head. Caller holds mu.
func (st *stripe) touch(e *entry) {
	if st.head == e {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		st.tail = e.prev
	}
	e.prev = nil
	e.next = st.head
	if st.head != nil {
		st.head.prev = e
	}
	st.head = e
}
