package nbrcache

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/rtree"
)

func buildTree(n int, seed int64) (*rtree.Tree, []geom.Point) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	items := make([]rtree.Item, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
		items[i] = rtree.Item{P: pts[i], ID: i}
	}
	return rtree.Bulk(items, rtree.DefaultMaxEntries), pts
}

func randGroup(rng *rand.Rand, m int, spread float64) []geom.Point {
	c := geom.Pt(0.1+0.8*rng.Float64(), 0.1+0.8*rng.Float64())
	users := make([]geom.Point, m)
	for i := range users {
		users[i] = geom.Pt(c.X+spread*(rng.Float64()-0.5), c.Y+spread*(rng.Float64()-0.5))
	}
	return users
}

// TestCachedTopKMatchesTraversal is the cache's own differential fence:
// whatever mix of misses, hits and rejected certifications a lookup
// stream produces, every result must byte-match the plain traversal.
func TestCachedTopKMatchesTraversal(t *testing.T) {
	tree, _ := buildTree(4000, 1)
	for _, agg := range []gnn.Aggregate{gnn.Max, gnn.Sum} {
		for _, k := range []int{1, 2, 9, 51} {
			c := New(Config{})
			rng := rand.New(rand.NewSource(int64(k) + 100*int64(agg)))
			var cs Scratch
			var gs, gsRef gnn.Scratch
			var out, ref []gnn.Result
			for step := 0; step < 200; step++ {
				// Tight groups revisit a handful of tiles so later lookups
				// hit entries populated by earlier, different groups.
				rng2 := rand.New(rand.NewSource(int64(step % 11)))
				users := randGroup(rng2, 2+rng.Intn(4), 0.01)
				out = c.TopKInto(tree, &gs, &cs, users, agg, k, out[:0])
				ref = gnn.TopKInto(tree, &gsRef, users, agg, k, ref[:0])
				if !reflect.DeepEqual(out, ref) {
					t.Fatalf("agg=%v k=%d step %d: cached %v != traversal %v", agg, k, step, out, ref)
				}
			}
			st := c.Stats()
			if st.Hits == 0 {
				t.Fatalf("agg=%v k=%d: stream produced no hits (%+v)", agg, k, st)
			}
			if st.Misses == 0 {
				t.Fatalf("agg=%v k=%d: stream produced no misses (%+v)", agg, k, st)
			}
		}
	}
}

// TestSpreadGroupsRejected: a group whose every member is far from its
// centroid tile's center cannot be certified by the entry depth; after
// the first lookup populates the tile, subsequent lookups find the
// pre-existing entry, fail certification (counted Rejected), fall back
// to the traversal, and still return exact results. The members sit on
// a rotating symmetric cross so the centroid — and hence the tile —
// stays pinned while the geometry varies.
func TestSpreadGroupsRejected(t *testing.T) {
	tree, _ := buildTree(4000, 2)
	c := New(Config{})
	rng := rand.New(rand.NewSource(3))
	var cs Scratch
	var gs, gsRef gnn.Scratch
	var out, ref []gnn.Result
	center := geom.Pt(0.3527, 0.5531)
	const radius = 0.25 // every member this far out: min_i ‖u_i,q‖ ≈ radius
	for step := 0; step < 50; step++ {
		theta := rng.Float64() * math.Pi / 2
		users := make([]geom.Point, 4)
		for i := range users {
			a := theta + float64(i)*math.Pi/2
			users[i] = geom.Pt(center.X+radius*math.Cos(a), center.Y+radius*math.Sin(a))
		}
		out = c.TopKInto(tree, &gs, &cs, users, gnn.Max, 8, out[:0])
		ref = gnn.TopKInto(tree, &gsRef, users, gnn.Max, 8, ref[:0])
		if !reflect.DeepEqual(out, ref) {
			t.Fatalf("step %d: cached result diverged", step)
		}
	}
	st := c.Stats()
	if st.Rejected == 0 {
		t.Fatalf("wide-spread groups never rejected: %+v", st)
	}
	if got := st.Hits + st.Misses + st.Rejected; got != 50 {
		t.Fatalf("counters double- or under-count lookups: %d != 50 (%+v)", got, st)
	}
}

// TestStaleVersionInvalidates: a POI mutation must invalidate entries —
// the next lookup observes the version bump, repopulates, and reflects
// the new point.
func TestStaleVersionInvalidates(t *testing.T) {
	tree, _ := buildTree(2000, 4)
	c := New(Config{})
	var cs Scratch
	var gs, gsRef gnn.Scratch
	users := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.505, 0.497)}

	out := c.TopKInto(tree, &gs, &cs, users, gnn.Max, 4, nil)
	if len(out) != 4 {
		t.Fatalf("got %d results", len(out))
	}
	// Second lookup: a hit from the entry just populated.
	out = c.TopKInto(tree, &gs, &cs, users, gnn.Max, 4, out[:0])
	if st := c.Stats(); st.Hits == 0 {
		t.Fatalf("warm lookup did not hit: %+v", st)
	}

	// Insert a POI that must become the new best answer.
	tree.Insert(rtree.Item{P: geom.Pt(0.5001, 0.4999), ID: tree.Len()})
	out = c.TopKInto(tree, &gs, &cs, users, gnn.Max, 4, out[:0])
	ref := gnn.TopKInto(tree, &gsRef, users, gnn.Max, 4, nil)
	if !reflect.DeepEqual(out, ref) {
		t.Fatalf("post-mutation cached %v != traversal %v", out, ref)
	}
	if out[0].Item.ID != tree.Len()-1 {
		t.Fatalf("inserted POI not the new optimum: %+v", out[0])
	}
	if st := c.Stats(); st.Stale == 0 {
		t.Fatalf("mutation not observed as staleness: %+v", st)
	}
}

// TestEvictionBoundsAndCorrectness: a cache under a tiny byte budget
// must evict, stay within (one entry of) budget, and never serve an
// evicted entry — lookups after eviction are misses that repopulate and
// still match the traversal exactly.
func TestEvictionBoundsAndCorrectness(t *testing.T) {
	tree, _ := buildTree(3000, 5)
	// Budget fits roughly two entries per stripe; one stripe keeps the
	// LRU churn deterministic-ish.
	c := New(Config{MaxBytes: 2 * (entryOverhead + 24*(2*4+16)), Stripes: 1})
	var cs Scratch
	var gs, gsRef gnn.Scratch
	var out, ref []gnn.Result
	for step := 0; step < 300; step++ {
		// Cycle through many distinct tiles to force eviction.
		tileIdx := step % 23
		c2 := geom.Pt(0.05+0.04*float64(tileIdx), 0.5)
		users := []geom.Point{c2, geom.Pt(c2.X+0.002, c2.Y-0.002)}
		out = c.TopKInto(tree, &gs, &cs, users, gnn.Max, 2, out[:0])
		ref = gnn.TopKInto(tree, &gsRef, users, gnn.Max, 2, ref[:0])
		if !reflect.DeepEqual(out, ref) {
			t.Fatalf("step %d: cached result diverged after eviction churn", step)
		}
		st := c.Stats()
		if st.Bytes > c.stripes[0].budget+entryOverhead+24*1000 {
			t.Fatalf("step %d: bytes %d far beyond budget %d", step, st.Bytes, c.stripes[0].budget)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("budget churn produced no evictions: %+v", st)
	}
	if st.Entries > 2 {
		t.Fatalf("stripe holds %d entries beyond its two-entry budget", st.Entries)
	}
}

// TestNilCacheDelegates: a nil *Cache is a valid degraded cache.
func TestNilCacheDelegates(t *testing.T) {
	tree, _ := buildTree(500, 7)
	var c *Cache
	var cs Scratch
	var gs, gsRef gnn.Scratch
	users := []geom.Point{geom.Pt(0.3, 0.3)}
	out := c.TopKInto(tree, &gs, &cs, users, gnn.Sum, 3, nil)
	ref := gnn.TopKInto(tree, &gsRef, users, gnn.Sum, 3, nil)
	if !reflect.DeepEqual(out, ref) {
		t.Fatal("nil cache diverged from traversal")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats %+v", st)
	}
}

// TestCompleteDataSetAlwaysCertifies: when the entry depth covers the
// whole data set, every group certifies regardless of spread.
func TestCompleteDataSetAlwaysCertifies(t *testing.T) {
	tree, _ := buildTree(20, 8) // J = k·4+16 ≥ 20 for k ≥ 1
	c := New(Config{})
	rng := rand.New(rand.NewSource(9))
	var cs Scratch
	var gs, gsRef gnn.Scratch
	var out, ref []gnn.Result
	for step := 0; step < 40; step++ {
		users := randGroup(rng, 3, 0.9)
		for _, k := range []int{1, 5, 25} { // 25 > n: short results too
			out = c.TopKInto(tree, &gs, &cs, users, gnn.Max, k, out[:0])
			ref = gnn.TopKInto(tree, &gsRef, users, gnn.Max, k, ref[:0])
			if !reflect.DeepEqual(out, ref) {
				t.Fatalf("step %d k=%d: diverged", step, k)
			}
		}
	}
	if st := c.Stats(); st.Rejected != 0 {
		t.Fatalf("complete entries rejected certification: %+v", st)
	}
}

// TestConcurrentStress hammers one shared cache from many goroutines —
// lookups over co-located and disjoint groups, Stats snapshots, and
// periodic POI insertions — under the discipline a live server must
// follow (an RWMutex serializing index mutation against traversal).
// Every result is compared against a traversal taken under the same
// read lock. Run with -race.
func TestConcurrentStress(t *testing.T) {
	tree, _ := buildTree(3000, 10)
	c := New(Config{MaxBytes: 64 << 10, Stripes: 4})
	var treeMu sync.RWMutex

	const workers = 8
	const steps = 400
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var cs Scratch
			var gs, gsRef gnn.Scratch
			var out, ref []gnn.Result
			for s := 0; s < steps; s++ {
				var users []geom.Point
				if s%2 == 0 {
					// Half the lookups share a hotspot with every worker.
					users = []geom.Point{
						geom.Pt(0.42+0.001*float64(w%3), 0.42),
						geom.Pt(0.423, 0.418),
					}
				} else {
					users = randGroup(rng, 2+rng.Intn(3), 0.02)
				}
				agg := gnn.Max
				if s%3 == 0 {
					agg = gnn.Sum
				}
				treeMu.RLock()
				out = c.TopKInto(tree, &gs, &cs, users, agg, 1+s%6, out[:0])
				ref = gnn.TopKInto(tree, &gsRef, users, agg, 1+s%6, ref[:0])
				treeMu.RUnlock()
				if !reflect.DeepEqual(out, ref) {
					errs <- "cached result diverged under concurrency"
					return
				}
				if s%50 == 0 {
					_ = c.Stats()
				}
			}
		}(w)
	}
	// Mutator: periodically insert POIs, invalidating entries.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 20; i++ {
			treeMu.Lock()
			tree.Insert(rtree.Item{P: geom.Pt(rng.Float64(), rng.Float64()), ID: tree.Len()})
			treeMu.Unlock()
		}
	}()
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("stress stream too uniform: %+v", st)
	}
}

// TestDuplicatePOITiesNeverCertified: duplicated POI coordinates
// produce exact aggregate-distance ties whose order the traversal's
// heap decides; the cache must refuse to certify such selections and
// fall back, keeping cached results byte-identical anyway.
func TestDuplicatePOITiesNeverCertified(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	items := make([]rtree.Item, 0, 4004)
	for i := 0; i < 4000; i++ {
		items = append(items, rtree.Item{P: geom.Pt(rng.Float64(), rng.Float64()), ID: i})
	}
	// Two duplicate pairs right next to the probe group: they land in
	// the top ranks of every nearby lookup.
	dup1 := geom.Pt(0.7012, 0.7015)
	dup2 := geom.Pt(0.7021, 0.7008)
	for i, p := range []geom.Point{dup1, dup1, dup2, dup2} {
		items = append(items, rtree.Item{P: p, ID: 4000 + i})
	}
	tree := rtree.Bulk(items, rtree.DefaultMaxEntries)

	c := New(Config{})
	var cs Scratch
	var gs, gsRef gnn.Scratch
	var out, ref []gnn.Result
	users := []geom.Point{geom.Pt(0.7011, 0.7013), geom.Pt(0.7019, 0.7010)}
	for step := 0; step < 10; step++ {
		for _, k := range []int{2, 5} {
			out = c.TopKInto(tree, &gs, &cs, users, gnn.Max, k, out[:0])
			ref = gnn.TopKInto(tree, &gsRef, users, gnn.Max, k, ref[:0])
			if !reflect.DeepEqual(out, ref) {
				t.Fatalf("step %d k=%d: tie-bearing cached result diverged", step, k)
			}
		}
	}
	if st := c.Stats(); st.Hits != 0 {
		t.Fatalf("tie-bearing selections were certified as hits: %+v", st)
	}
}

// TestCrossTreeIsolation: entries are pinned to the tree they were
// computed from — two different trees (both at version 0) sharing one
// cache and one tile key must never serve each other's neighborhoods.
func TestCrossTreeIsolation(t *testing.T) {
	treeA, _ := buildTree(1500, 13)
	treeB, _ := buildTree(1500, 14) // different point set, same version 0
	c := New(Config{})
	var cs Scratch
	var gs, gsRef gnn.Scratch
	users := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.503, 0.498)}
	for step := 0; step < 4; step++ {
		tree := treeA
		if step%2 == 1 {
			tree = treeB
		}
		out := c.TopKInto(tree, &gs, &cs, users, gnn.Max, 4, nil)
		ref := gnn.TopKInto(tree, &gsRef, users, gnn.Max, 4, nil)
		if !reflect.DeepEqual(out, ref) {
			t.Fatalf("step %d: lookup served another tree's neighborhood", step)
		}
	}
	if st := c.Stats(); st.Hits != 0 {
		// Alternating trees on one key: every lookup must be a miss (the
		// other tree's entry is stale by identity).
		t.Fatalf("cross-tree lookups hit: %+v", st)
	}
}

// TestAdaptiveDepthGrows closes the rejection feedback loop: a
// spread-out group is rejected at the static entry depth, the rejection
// records the guarantee radius it needed, and after the entry
// invalidates (POI insert bumps the version) the repopulation grows the
// entry deep enough to certify the very same group — whose cached
// result must still byte-match the traversal.
func TestAdaptiveDepthGrows(t *testing.T) {
	tree, _ := buildTree(3000, 5)
	// Members far from the tile center on a symmetric cross: minD is
	// large, so certification needs a guarantee radius the static
	// k·4+16 depth cannot reach, but a deeper entry can.
	const d = 0.04
	center := geom.Pt(0.5, 0.5)
	users := []geom.Point{
		geom.Pt(center.X+d, center.Y), geom.Pt(center.X-d, center.Y),
		geom.Pt(center.X, center.Y+d), geom.Pt(center.X, center.Y-d),
	}
	for _, agg := range []gnn.Aggregate{gnn.Max, gnn.Sum} {
		c := New(Config{TileSize: 1.0 / 64, MaxDepthFactor: 4096})
		var cs Scratch
		var gs, gsRef gnn.Scratch
		var out, ref []gnn.Result
		k := 2

		// Lookup 1: miss, populate at static depth; certification of this
		// spread group fails either immediately (part of the miss) or on
		// lookup 2 (a rejection) — both record the needed radius.
		out = c.TopKInto(tree, &gs, &cs, users, agg, k, out[:0])
		ref = gnn.TopKInto(tree, &gsRef, users, agg, k, ref[:0])
		if !reflect.DeepEqual(out, ref) {
			t.Fatalf("agg=%v lookup 1 mismatch", agg)
		}
		out = c.TopKInto(tree, &gs, &cs, users, agg, k, out[:0])
		if !reflect.DeepEqual(out, ref) {
			t.Fatalf("agg=%v lookup 2 mismatch", agg)
		}
		st := c.Stats()
		if st.Hits != 0 {
			t.Skipf("agg=%v: static depth certified this group (hits=%d); geometry unsuitable", agg, st.Hits)
		}
		if st.DepthHints == 0 {
			t.Fatalf("agg=%v: rejection recorded no depth hint (%+v)", agg, st)
		}

		// Invalidate the entry; the repopulation must grow and then
		// certify the same group.
		tree.Insert(rtree.Item{P: geom.Pt(0.95, 0.95), ID: tree.Len()})
		out = c.TopKInto(tree, &gs, &cs, users, agg, k, out[:0])
		ref = gnn.TopKInto(tree, &gsRef, users, agg, k, ref[:0])
		if !reflect.DeepEqual(out, ref) {
			t.Fatalf("agg=%v post-grow lookup mismatch", agg)
		}
		st = c.Stats()
		if st.DepthGrows == 0 {
			t.Fatalf("agg=%v: repopulation did not grow (%+v)", agg, st)
		}
		// The grown entry now serves this group from the cache.
		out = c.TopKInto(tree, &gs, &cs, users, agg, k, out[:0])
		if !reflect.DeepEqual(out, ref) {
			t.Fatalf("agg=%v grown-hit mismatch", agg)
		}
		if got := c.Stats().Hits; got == 0 {
			t.Fatalf("agg=%v: grown entry still cannot certify (stats %+v)", agg, c.Stats())
		}
	}
}

// TestAdaptiveDepthBounded: with MaxDepthFactor at the static factor,
// growth is disabled — the same spread group keeps being rejected, and
// results stay exact.
func TestAdaptiveDepthBounded(t *testing.T) {
	tree, _ := buildTree(3000, 5)
	const d = 0.04
	users := []geom.Point{
		geom.Pt(0.5+d, 0.5), geom.Pt(0.5-d, 0.5),
		geom.Pt(0.5, 0.5+d), geom.Pt(0.5, 0.5-d),
	}
	c := New(Config{TileSize: 1.0 / 64, MaxDepthFactor: 4})
	var cs Scratch
	var gs, gsRef gnn.Scratch
	var out, ref []gnn.Result
	k := 2
	for i := 0; i < 3; i++ {
		out = c.TopKInto(tree, &gs, &cs, users, gnn.Max, k, out[:0])
		ref = gnn.TopKInto(tree, &gsRef, users, gnn.Max, k, ref[:0])
		if !reflect.DeepEqual(out, ref) {
			t.Fatalf("lookup %d mismatch", i)
		}
		tree.Insert(rtree.Item{P: geom.Pt(0.9, 0.9+0.01*float64(i)), ID: tree.Len()})
	}
	if st := c.Stats(); st.DepthGrows != 0 {
		t.Fatalf("bounded config grew anyway: %+v", st)
	}
}
