package nbrcache

import (
	"reflect"
	"testing"

	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/rtree"
)

// transition simulates one published snapshot-writer mutation batch:
// a new tree holding base plus the inserted points, its version
// continuing the old tree's count, and the Invalidation describing it.
func transition(old *rtree.Tree, base []geom.Point, inserted ...geom.Point) (*rtree.Tree, Invalidation) {
	items := make([]rtree.Item, 0, len(base)+len(inserted))
	for i, p := range base {
		items = append(items, rtree.Item{P: p, ID: i})
	}
	for j, p := range inserted {
		items = append(items, rtree.Item{P: p, ID: len(base) + j})
	}
	nt := rtree.Bulk(items, rtree.DefaultMaxEntries)
	nt.SetVersion(old.Version() + uint64(len(inserted)))
	return nt, Invalidation{
		OldTree: old, OldVersion: old.Version(),
		NewTree: nt, NewVersion: nt.Version(),
		Points: inserted,
	}
}

// TestAdvanceMigratesUnreachedEntries: a mutation outside an entry's
// guarantee radius must not cost the entry — Advance migrates it to the
// new (tree, version) and the next lookup is a certified hit whose
// result still byte-matches the traversal over the new tree.
func TestAdvanceMigratesUnreachedEntries(t *testing.T) {
	tree, pts := buildTree(3000, 7)
	c := New(Config{})
	var cs Scratch
	var gs, gsRef gnn.Scratch
	users := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.503, 0.498)}

	out := c.TopKInto(tree, &gs, &cs, users, gnn.Max, 4, nil)
	if len(out) != 4 {
		t.Fatalf("got %d results", len(out))
	}

	// Insert far from the entry's tile: outside any plausible guarantee
	// radius of a 3000-point neighborhood.
	newTree, inv := transition(tree, pts, geom.Pt(0.95, 0.95))
	c.Advance(inv)
	st := c.Stats()
	if st.ChurnMigrated == 0 || st.ChurnEvicted != 0 {
		t.Fatalf("far mutation: migrated=%d evicted=%d", st.ChurnMigrated, st.ChurnEvicted)
	}

	out = c.TopKInto(newTree, &gs, &cs, users, gnn.Max, 4, out[:0])
	ref := gnn.TopKInto(newTree, &gsRef, users, gnn.Max, 4, nil)
	if !reflect.DeepEqual(out, ref) {
		t.Fatalf("migrated entry served %v want %v", out, ref)
	}
	if st = c.Stats(); st.Hits == 0 || st.Stale != 0 {
		t.Fatalf("migrated entry did not survive the transition: %+v", st)
	}
}

// TestAdvanceEvictsReachedEntries: a mutation inside the guarantee
// radius invalidates the entry's claims, so Advance must evict it; the
// next lookup repopulates and reflects the new POI.
func TestAdvanceEvictsReachedEntries(t *testing.T) {
	tree, pts := buildTree(3000, 8)
	c := New(Config{})
	var cs Scratch
	var gs, gsRef gnn.Scratch
	users := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.503, 0.498)}
	c.TopKInto(tree, &gs, &cs, users, gnn.Max, 4, nil)

	// Land the insert right next to the members: well within the radius,
	// and the new optimum.
	p := geom.Pt(0.5005, 0.4995)
	newTree, inv := transition(tree, pts, p)
	c.Advance(inv)
	st := c.Stats()
	if st.ChurnEvicted == 0 {
		t.Fatalf("reaching mutation did not evict: %+v", st)
	}

	out := c.TopKInto(newTree, &gs, &cs, users, gnn.Max, 4, nil)
	ref := gnn.TopKInto(newTree, &gsRef, users, gnn.Max, 4, nil)
	if !reflect.DeepEqual(out, ref) {
		t.Fatalf("post-eviction lookup %v want %v", out, ref)
	}
	if out[0].Item.P != p {
		t.Fatalf("inserted POI not the new optimum: %+v", out[0])
	}
}

// TestAdvanceEvictsCompleteEntries: an entry caching the whole data set
// asserts no uncached POI exists anywhere, so any insert — however far —
// must evict it.
func TestAdvanceEvictsCompleteEntries(t *testing.T) {
	tree, pts := buildTree(20, 9) // static depth ≥ 24 items: entry is complete
	c := New(Config{})
	var cs Scratch
	var gs gnn.Scratch
	users := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.503, 0.498)}
	c.TopKInto(tree, &gs, &cs, users, gnn.Max, 2, nil)

	_, inv := transition(tree, pts, geom.Pt(0.99, 0.99))
	c.Advance(inv)
	if st := c.Stats(); st.ChurnEvicted == 0 || st.ChurnMigrated != 0 {
		t.Fatalf("complete entry survived an insert: %+v", st)
	}
}

// TestAdvanceStragglerReader: after a migration, a reader still pinned
// to the retired snapshot must get a plain miss — served privately, with
// the migrated entry left in place for current readers.
func TestAdvanceStragglerReader(t *testing.T) {
	tree, pts := buildTree(3000, 10)
	c := New(Config{})
	var cs Scratch
	var gs, gsRef gnn.Scratch
	users := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.503, 0.498)}
	c.TopKInto(tree, &gs, &cs, users, gnn.Max, 4, nil)

	newTree, inv := transition(tree, pts, geom.Pt(0.95, 0.95))
	c.Advance(inv)

	// Straggler: still planning against the retired snapshot. Its result
	// must match the old tree's traversal, not the new one's.
	out := c.TopKInto(tree, &gs, &cs, users, gnn.Max, 4, nil)
	ref := gnn.TopKInto(tree, &gsRef, users, gnn.Max, 4, nil)
	if !reflect.DeepEqual(out, ref) {
		t.Fatalf("straggler lookup %v want %v", out, ref)
	}
	stMid := c.Stats()
	if stMid.Stale == 0 {
		t.Fatalf("straggler not counted as a stale miss: %+v", stMid)
	}

	// The migrated entry must have survived the straggler: a current
	// reader still hits it.
	out = c.TopKInto(newTree, &gs, &cs, users, gnn.Max, 4, out[:0])
	ref = gnn.TopKInto(newTree, &gsRef, users, gnn.Max, 4, ref[:0])
	if !reflect.DeepEqual(out, ref) {
		t.Fatalf("current-reader lookup %v want %v", out, ref)
	}
	if st := c.Stats(); st.Hits <= stMid.Hits {
		t.Fatalf("straggler destroyed the migrated entry: %+v", st)
	}
}

// TestAdaptiveDepthShrinks closes the other half of the depth feedback
// loop: a spread-out group grows the entry, a sustained streak of tight
// certified hits proves the depth is no longer needed, the hint decays
// (DepthShrinks), and the next repopulation lands back at the static
// depth.
func TestAdaptiveDepthShrinks(t *testing.T) {
	tree, _ := buildTree(3000, 5)
	const k = 2
	cfg := Config{TileSize: 1.0 / 64, MaxDepthFactor: 4096}
	staticJ := k*4 + 16 // resolved DepthFactor/DepthSlack defaults

	// Spread cross around the tile holding (0.5, 0.5): rejected at static
	// depth, records a deep hint.
	const d = 0.06
	spread := []geom.Point{
		geom.Pt(0.5+d, 0.5), geom.Pt(0.5-d, 0.5),
		geom.Pt(0.5, 0.5+d), geom.Pt(0.5, 0.5-d),
	}
	// Tight pair whose centroid falls in the same tile as the cross's
	// (both coordinates just above 0.5): certifies against any depth.
	tight := []geom.Point{geom.Pt(0.501, 0.501), geom.Pt(0.503, 0.502)}

	c := New(cfg)
	var cs Scratch
	var gs, gsRef gnn.Scratch
	var out, ref []gnn.Result

	lookupEq := func(users []geom.Point, label string) {
		t.Helper()
		out = c.TopKInto(tree, &gs, &cs, users, gnn.Max, k, out[:0])
		ref = gnn.TopKInto(tree, &gsRef, users, gnn.Max, k, ref[:0])
		if !reflect.DeepEqual(out, ref) {
			t.Fatalf("%s: cached %v != traversal %v", label, out, ref)
		}
	}
	entryLen := func() int {
		ky, _ := c.keyFor(tight, gnn.Max, k)
		st := c.stripeOf(ky)
		st.mu.Lock()
		defer st.mu.Unlock()
		if e := st.table[ky]; e != nil {
			return len(e.items)
		}
		return 0
	}

	// Grow: two spread lookups record the hint, a mutation forces the
	// repopulation that honors it.
	lookupEq(spread, "spread 1")
	lookupEq(spread, "spread 2")
	if st := c.Stats(); st.Hits != 0 {
		t.Skipf("static depth certified the spread group (hits=%d); geometry unsuitable", st.Hits)
	}
	tree.Insert(rtree.Item{P: geom.Pt(0.95, 0.95), ID: tree.Len()})
	lookupEq(spread, "spread regrow")
	if st := c.Stats(); st.DepthGrows == 0 {
		t.Fatalf("entry did not grow (%+v)", st)
	}
	if got := entryLen(); got <= staticJ {
		t.Fatalf("grown entry holds %d items, want > %d", got, staticJ)
	}

	// Streak: tight hits on the deepened entry. Two full shrink windows,
	// since the spread regrow hit above may pollute the first.
	for i := 0; i < 2*shrinkStreak+2; i++ {
		lookupEq(tight, "tight streak")
	}
	st := c.Stats()
	if st.DepthShrinks == 0 {
		t.Fatalf("sustained tight streak never shrank the hint (%+v)", st)
	}

	// Shrink lands: the next repopulation is back at the static depth and
	// still exact.
	grows := st.DepthGrows
	tree.Insert(rtree.Item{P: geom.Pt(0.96, 0.96), ID: tree.Len()})
	lookupEq(tight, "post-shrink repopulation")
	if got := entryLen(); got != staticJ {
		t.Fatalf("post-shrink entry holds %d items, want static %d", got, staticJ)
	}
	if c.Stats().DepthGrows != grows {
		t.Fatalf("post-shrink repopulation grew again (%+v)", c.Stats())
	}
}
