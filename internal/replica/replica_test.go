package replica

import (
	"bytes"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"mpn/internal/durable"
	"mpn/internal/faultinject"
	"mpn/internal/geom"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// primaryNode bundles a store and shipper listening on a loopback port.
type primaryNode struct {
	store     *durable.Store
	state     *durable.State
	ship      *Shipper
	addr      string
	epoch     atomic.Uint64
	fencedAt  atomic.Uint64
	fencedAdv atomic.Value // string: the fencer's advertised address
	dir       string
}

func startPrimary(t *testing.T, poiBase int) *primaryNode {
	t.Helper()
	p := &primaryNode{dir: t.TempDir()}
	var err error
	p.store, p.state, _, err = durable.Open(durable.Config{
		Dir: p.dir, Fsync: durable.PolicyAlways, POIBase: poiBase, Queue: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.epoch.Store(1)
	p.ship = NewShipper(ShipperConfig{
		Store:     p.store,
		Epoch:     p.epoch.Load,
		Advertise: "primary.example:9000",
		OnFenced: func(epoch uint64, advertise string) {
			p.fencedAdv.Store(advertise)
			p.fencedAt.Store(epoch)
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.addr = ln.Addr().String()
	go p.ship.Serve(ln)
	t.Cleanup(func() { p.ship.Close(); p.store.Close() })
	return p
}

// followTo starts a tailer applying everything into target (a state the
// test compares against the primary at the end). target must carry the
// same POI base the primary booted with.
func followTo(t *testing.T, addr string, target *durable.State) *Tailer {
	t.Helper()
	tl := StartTailer(TailerConfig{
		PrimaryAddr:  addr,
		Advertise:    "standby.example:9001",
		Epoch:        func() uint64 { return 0 },
		OnRecord:     target.ApplyRecord,
		Initial:      target.Clone(),
		RetryBackoff: 10 * time.Millisecond,
		AckInterval:  5 * time.Millisecond,
	})
	t.Cleanup(tl.Stop)
	return tl
}

// statesEqual compares two states by their canonical serialization.
func statesEqual(a, b *durable.State) bool {
	return bytes.Equal(durable.AppendStateFrames(nil, a), durable.AppendStateFrames(nil, b))
}

// TestShipAndTail: a follower that connects mid-history must converge —
// seed plus live tail — to the primary's exact state, and acks must
// drain the lag to zero.
func TestShipAndTail(t *testing.T) {
	p := startPrimary(t, 10)
	loc := []geom.Point{geom.Pt(0.5, 0.5)}
	for i := 1; i <= 5; i++ {
		p.store.GroupUpsert(uint32(i), []uint32{uint32(i)}, loc)
	}
	p.store.POIBatch(10, []geom.Point{geom.Pt(0.2, 0.2)}, []int{3})
	waitFor(t, "pre-seed records", func() bool { return p.store.StreamPos() == 6 })

	target := durable.NewState()
	target.POIBase = 10
	tl := followTo(t, p.addr, target)
	waitFor(t, "seed", func() bool { return tl.Stats().Connected })

	// Live tail after the seed.
	p.store.GroupUpsert(6, []uint32{6}, loc)
	p.store.GroupUnregister(1)
	p.store.POIBatch(11, nil, []int{10})
	waitFor(t, "tail catch-up", func() bool { return tl.Stats().Pos == 9 })
	waitFor(t, "acks drain lag", func() bool {
		st := p.ship.Stats()
		return st.Followers == 1 && st.StreamPos == 9 && st.AckPos == 9
	})
	if got := tl.PrimaryAdvertise(); got != "primary.example:9000" {
		t.Fatalf("primary advertise: %q", got)
	}
	if tl.PrimaryEpoch() != 1 {
		t.Fatalf("primary epoch: %d", tl.PrimaryEpoch())
	}

	tl.Stop()
	p.ship.Close()
	p.store.Close()
	final, _, err := durable.Recover(p.dir)
	if err != nil {
		t.Fatal(err)
	}
	// The primary journaled no epoch record, so the replica's view of
	// epoch matches (both zero in durable state).
	if !statesEqual(target, final) {
		t.Fatalf("follower state diverged:\nfollower: %+v\nprimary:  %+v", target, final)
	}
}

// TestReseedAfterCut: a mid-stream cut (injected at the shipper) must
// force the follower through a reconnect and full reseed, after which
// it still converges exactly.
func TestReseedAfterCut(t *testing.T) {
	p := startPrimary(t, -1)
	loc := []geom.Point{geom.Pt(0.5, 0.5)}
	p.store.GroupUpsert(1, []uint32{1}, loc)
	waitFor(t, "first record", func() bool { return p.store.StreamPos() == 1 })

	faultinject.Arm(faultinject.Script{
		faultinject.ReplShip: func(hit uint64) faultinject.Effect {
			if hit == 2 {
				return faultinject.Effect{Drop: true}
			}
			return faultinject.Effect{}
		},
	})
	defer faultinject.Disarm()

	target := durable.NewState()
	tl := followTo(t, p.addr, target)
	waitFor(t, "first seed", func() bool { return tl.Stats().Seeds >= 1 })
	for i := 2; i <= 6; i++ {
		p.store.GroupUpsert(uint32(i), []uint32{uint32(i)}, loc)
	}
	waitFor(t, "reseed after cut", func() bool { return tl.Stats().Seeds >= 2 })
	waitFor(t, "converged", func() bool {
		return p.store.StreamPos() == 6 && tl.Stats().Pos == 6
	})
	if p.ship.Stats().Cuts == 0 {
		t.Fatal("injected cut not accounted")
	}

	tl.Stop()
	p.ship.Close()
	p.store.Close()
	final, _, err := durable.Recover(p.dir)
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(target, final) {
		t.Fatalf("state after reseed diverged:\nfollower: %+v\nprimary:  %+v", target, final)
	}
}

// TestTailSideCut: the same guarantee when the stream is cut from the
// follower side (ReplTail fault).
func TestTailSideCut(t *testing.T) {
	p := startPrimary(t, -1)
	loc := []geom.Point{geom.Pt(0.5, 0.5)}
	faultinject.Arm(faultinject.Script{
		faultinject.ReplTail: func(hit uint64) faultinject.Effect {
			if hit == 1 {
				return faultinject.Effect{Drop: true}
			}
			return faultinject.Effect{}
		},
	})
	defer faultinject.Disarm()

	target := durable.NewState()
	tl := followTo(t, p.addr, target)
	waitFor(t, "first seed", func() bool { return tl.Stats().Seeds >= 1 })
	for i := 1; i <= 4; i++ {
		p.store.GroupUpsert(uint32(i), []uint32{uint32(i)}, loc)
	}
	waitFor(t, "reseed after follower-side cut", func() bool { return tl.Stats().Seeds >= 2 })
	waitFor(t, "converged", func() bool {
		return p.store.StreamPos() == 4 && tl.Stats().Pos == 4
	})

	tl.Stop()
	p.ship.Close()
	p.store.Close()
	final, _, err := durable.Recover(p.dir)
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(target, final) {
		t.Fatal("state diverged after follower-side cut")
	}
}

// TestFencingEpoch: a handshake carrying a higher epoch must depose the
// primary (OnFenced fires, stream refused); a stale (lower or zero)
// epoch must be accepted and corrected by the header.
func TestFencingEpoch(t *testing.T) {
	p := startPrimary(t, -1)
	p.epoch.Store(3)

	// Stale follower (epoch 0 < 3): accepted, learns epoch 3.
	target := durable.NewState()
	tl := followTo(t, p.addr, target)
	waitFor(t, "stale follower accepted", func() bool { return tl.Stats().Connected })
	if tl.PrimaryEpoch() != 3 {
		t.Fatalf("follower learned epoch %d, want 3", tl.PrimaryEpoch())
	}
	tl.Stop()

	// A promoted node fences with epoch 4 > 3.
	if err := Fence(p.addr, 4, "standby.example:9001", time.Second); err != nil {
		t.Fatalf("Fence: %v", err)
	}
	waitFor(t, "primary deposed", func() bool { return p.fencedAt.Load() == 4 })
	if p.ship.Stats().FencedBy != 4 {
		t.Fatalf("FencedBy: %d", p.ship.Stats().FencedBy)
	}
	if got, _ := p.fencedAdv.Load().(string); got != "standby.example:9001" {
		t.Fatalf("fencer advertise %q, want standby.example:9001", got)
	}
}

// TestStaleHelloFault: the ReplHello failpoint downgrades the presented
// epoch to zero — a rejoining follower that forgot its fence — which a
// live primary must still accept (zero is stale, not superior).
func TestStaleHelloFault(t *testing.T) {
	p := startPrimary(t, -1)
	p.epoch.Store(2)
	faultinject.Arm(faultinject.Script{
		faultinject.ReplHello: func(uint64) faultinject.Effect { return faultinject.Effect{Drop: true} },
	})
	defer faultinject.Disarm()

	target := durable.NewState()
	tl := StartTailer(TailerConfig{
		PrimaryAddr: p.addr,
		// The node believes it is at epoch 9, but the fault makes the
		// hello present 0 — the primary must accept, and the header's
		// epoch (2) must NOT be refused since the hello carried 0.
		Epoch:        func() uint64 { return 9 },
		OnRecord:     target.ApplyRecord,
		RetryBackoff: 10 * time.Millisecond,
		AckInterval:  5 * time.Millisecond,
	})
	defer tl.Stop()
	waitFor(t, "stale hello accepted", func() bool { return tl.Stats().Connected })
	if tl.PrimaryEpoch() != 2 {
		t.Fatalf("learned epoch %d, want 2", tl.PrimaryEpoch())
	}
}

// TestDiffStatesDivergence: every way a "new" state can fail to extend
// the mirror must be ErrDiverged, and a clean extension must produce
// records that converge a copy of the mirror exactly.
func TestDiffStatesDivergence(t *testing.T) {
	base := durable.NewState()
	base.POIBase = 5
	base.POIInserts = []geom.Point{geom.Pt(0.1, 0.1)}
	base.POIDeleted = []int{2}
	base.Groups[1] = durable.GroupState{IDs: []uint32{1}, Locs: []geom.Point{geom.Pt(0.3, 0.3)}}

	t.Run("extension-converges", func(t *testing.T) {
		next := base.Clone()
		next.POIInserts = append(next.POIInserts, geom.Pt(0.9, 0.9))
		next.POIDeleted = append(next.POIDeleted, 0)
		next.Groups[2] = durable.GroupState{IDs: []uint32{2}, Locs: []geom.Point{geom.Pt(0.4, 0.4)}}
		delete(next.Groups, 1)
		next.Epoch = 7

		recs, err := diffStates(base, next)
		if err != nil {
			t.Fatal(err)
		}
		replay := base.Clone()
		for _, rec := range recs {
			if err := replay.ApplyRecord(rec); err != nil {
				t.Fatalf("replaying diff: %v", err)
			}
		}
		if !statesEqual(replay, next) {
			t.Fatalf("diff replay diverged: %+v vs %+v", replay, next)
		}
	})

	bad := []struct {
		name   string
		mutate func(st *durable.State)
	}{
		{"poi-base-changed", func(st *durable.State) { st.POIBase = 6 }},
		{"inserts-shrank", func(st *durable.State) { st.POIInserts = nil }},
		{"insert-rewritten", func(st *durable.State) { st.POIInserts[0] = geom.Pt(0.8, 0.8) }},
		{"delete-undone", func(st *durable.State) { st.POIDeleted = nil }},
		{"epoch-regressed", func(st *durable.State) { st.Epoch = 0 }},
	}
	withEpoch := base.Clone()
	withEpoch.Epoch = 3
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			next := withEpoch.Clone()
			tc.mutate(next)
			if _, err := diffStates(withEpoch, next); !errors.Is(err, ErrDiverged) {
				t.Fatalf("err=%v, want ErrDiverged", err)
			}
		})
	}
}

// TestCatchUpRace is the race-enabled catch-up fence: a writer churning
// groups and POIs while the follower tails (through at least one seed)
// must still leave the follower byte-identical to the primary once the
// stream drains.
func TestCatchUpRace(t *testing.T) {
	p := startPrimary(t, 0)
	target := durable.NewState()
	target.POIBase = 0
	tl := followTo(t, p.addr, target)

	loc := func(i int) []geom.Point { return []geom.Point{geom.Pt(float64(i%97)/97, 0.5)} }
	done := make(chan struct{})
	go func() {
		defer close(done)
		next := 0
		for i := 0; i < 400; i++ {
			switch i % 7 {
			case 3:
				p.store.POIBatch(next, []geom.Point{geom.Pt(0.25, 0.75)}, nil)
				next++
			case 5:
				if next > 0 {
					p.store.POIBatch(next, nil, []int{next - 1})
				}
			case 6:
				p.store.GroupUnregister(uint32(i % 13))
			default:
				p.store.GroupUpsert(uint32(i%13), []uint32{uint32(i % 5)}, loc(i))
			}
		}
	}()
	<-done
	// All 400 ops settle in the store (nothing sheds with the deep
	// queue) before the stream position is final.
	waitFor(t, "store drain", func() bool {
		st := p.store.Stats()
		return st.Appended+st.Shed == 400
	})
	if p.store.Stats().Shed != 0 {
		t.Fatalf("churn shed records: %+v", p.store.Stats())
	}
	waitFor(t, "follower drain", func() bool {
		return tl.Stats().Pos == p.store.StreamPos()
	})

	tl.Stop()
	p.ship.Close()
	p.store.Close()
	final, _, err := durable.Recover(p.dir)
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(target, final) {
		t.Fatal("follower diverged from primary under churn")
	}
}
