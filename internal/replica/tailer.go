package replica

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync/atomic"
	"time"

	"mpn/internal/durable"
	"mpn/internal/faultinject"
)

// errStreamCut is the non-fatal "reconnect and reseed" condition: the
// connection died or a ReplTail fault cut it.
var errStreamCut = errors.New("replica: stream cut")

// TailerConfig configures the follower-side stream tailer.
type TailerConfig struct {
	// PrimaryAddr is the primary's replication listen address.
	PrimaryAddr string
	// Advertise is this standby's client-facing address, presented in
	// the handshake so the primary can include it in peer frames.
	Advertise string
	// Epoch returns this node's current fencing epoch for the
	// handshake.
	Epoch func() uint64
	// OnRecord applies one replicated record to the serving engine. It
	// runs on the tailer goroutine, strictly in stream order; an error
	// is fatal (the standby can no longer converge by replay).
	OnRecord func(durable.Record) error
	// Initial is the follower's starting mirror (its own recovered
	// state); nil starts empty. Seeds are diffed against the mirror so
	// only the delta reaches OnRecord.
	Initial *durable.State
	// Dial overrides the TCP dialer (tests inject pipes/faults).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// DialTimeout bounds each dial. Default 2s.
	DialTimeout time.Duration
	// RetryBackoff is the pause between reconnect attempts. Default
	// 100ms.
	RetryBackoff time.Duration
	// AckInterval is how often the tailer acks its applied position.
	// Default 50ms.
	AckInterval time.Duration
}

// TailerStats is a point-in-time read of catch-up progress.
type TailerStats struct {
	// Connected reports a live stream.
	Connected bool
	// Pos is the last stream position applied.
	Pos uint64
	// Seeds counts full-state seeds consumed (connects and reseeds).
	Seeds uint64
	// Records counts tail records applied.
	Records uint64
	// PrimaryEpoch is the fencing epoch the primary presented.
	PrimaryEpoch uint64
}

// Tailer follows a primary's replication stream: it dials, presents its
// epoch, consumes the snapshot seed, diffs it against its mirror so the
// engine converges without a restart, then applies the live tail and
// acks positions. It reconnects (with a full reseed) whenever the
// stream drops, until Stop — or until a fatal divergence, after which
// Err reports why.
type Tailer struct {
	cfg TailerConfig

	quit chan struct{}
	done chan struct{}

	mirror *durable.State // run-goroutine owned

	connected        atomic.Bool
	pos              atomic.Uint64
	seeds, records   atomic.Uint64
	primaryEpoch     atomic.Uint64
	primaryAdvertise atomic.Value // string
	fatal            atomic.Value // error
}

// StartTailer launches the tail loop.
func StartTailer(cfg TailerConfig) *Tailer {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if cfg.AckInterval <= 0 {
		cfg.AckInterval = 50 * time.Millisecond
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	t := &Tailer{
		cfg:    cfg,
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
		mirror: cfg.Initial,
	}
	if t.mirror == nil {
		t.mirror = durable.NewState()
	}
	t.primaryAdvertise.Store("")
	go t.run()
	return t
}

// Stop ends the tail loop and waits for it to exit. Idempotent.
func (t *Tailer) Stop() {
	select {
	case <-t.quit:
	default:
		close(t.quit)
	}
	<-t.done
}

// Stats returns a snapshot of catch-up progress.
func (t *Tailer) Stats() TailerStats {
	return TailerStats{
		Connected:    t.connected.Load(),
		Pos:          t.pos.Load(),
		Seeds:        t.seeds.Load(),
		Records:      t.records.Load(),
		PrimaryEpoch: t.primaryEpoch.Load(),
	}
}

// PrimaryEpoch returns the fencing epoch the primary last presented.
func (t *Tailer) PrimaryEpoch() uint64 { return t.primaryEpoch.Load() }

// PrimaryAdvertise returns the primary's client-facing address from the
// stream header.
func (t *Tailer) PrimaryAdvertise() string { return t.primaryAdvertise.Load().(string) }

// Err returns the fatal error that stopped the tailer, nil while it is
// still trying.
func (t *Tailer) Err() error {
	if e := t.fatal.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// run is the reconnect loop.
func (t *Tailer) run() {
	defer close(t.done)
	for {
		select {
		case <-t.quit:
			return
		default:
		}
		conn, err := t.cfg.Dial(t.cfg.PrimaryAddr, t.cfg.DialTimeout)
		if err == nil {
			err = t.stream(conn)
			t.connected.Store(false)
		}
		if errors.Is(err, ErrDiverged) || errors.Is(err, ErrFenced) {
			t.fatal.Store(err)
			return
		}
		select {
		case <-t.quit:
			return
		case <-time.After(t.cfg.RetryBackoff):
		}
	}
}

// stream runs one connection: handshake, seed, tail. Non-fatal returns
// trigger a reconnect; ErrDiverged/ErrFenced stop the tailer.
func (t *Tailer) stream(conn net.Conn) error {
	frames := make(chan []byte, 64)
	errc := make(chan error, 1)
	readerDone := func() {
		conn.Close()
		for {
			select {
			case <-frames:
			case <-errc:
				return
			}
		}
	}
	defer readerDone()

	helloEpoch := uint64(0)
	if t.cfg.Epoch != nil {
		helloEpoch = t.cfg.Epoch()
	}
	if eff := faultinject.FireEffect(faultinject.ReplHello); eff.Drop {
		// Model a rejoining follower that forgot its fence.
		helloEpoch = 0
	}
	conn.SetWriteDeadline(time.Now().Add(t.cfg.DialTimeout))
	if _, err := conn.Write([]byte(streamMagic)); err != nil {
		return err
	}
	if err := writeFrame(conn, appendHello(nil, helloEpoch, t.cfg.Advertise), t.cfg.DialTimeout); err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Time{})

	// The reader goroutine owns every read on the connection: the
	// primary's magic first, then frames, pushed through a channel so
	// the apply loop can multiplex with acks and shutdown without read
	// deadlines tearing frames mid-parse.
	rd := NewReader(conn)
	go func() {
		if err := rd.Magic(); err != nil {
			errc <- err
			return
		}
		for {
			p, err := rd.Next()
			if err != nil {
				errc <- err
				return
			}
			select {
			case frames <- p:
			case <-t.quit:
				errc <- errStreamCut
				return
			}
		}
	}()

	next := func() ([]byte, error) {
		select {
		case <-t.quit:
			return nil, errStreamCut
		case err := <-errc:
			errc <- err // keep readerDone's drain loop terminating
			return nil, err
		case p := <-frames:
			return p, nil
		}
	}

	p, err := next()
	if err != nil {
		return err
	}
	headerEpoch, seedPos, primaryAdv, err := parseHeader(p)
	if err != nil {
		return err
	}
	if headerEpoch < helloEpoch {
		// A primary below our fence is deposed; refuse to follow it.
		return fmt.Errorf("%w: primary epoch %d below ours %d", ErrFenced, headerEpoch, helloEpoch)
	}
	t.primaryEpoch.Store(headerEpoch)
	t.primaryAdvertise.Store(primaryAdv)

	// Seed: rebuild the primary's state, then converge the engine by
	// diffing it against our mirror.
	seed := durable.NewState()
	for {
		p, err := next()
		if err != nil {
			return err
		}
		if len(p) > 0 && p[0] == ctrlSeedEnd {
			if _, err := parseSeedEnd(p); err != nil {
				return err
			}
			break
		}
		if err := seed.Apply(p); err != nil {
			return err
		}
	}
	recs, err := diffStates(t.mirror, seed)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := t.cfg.OnRecord(rec); err != nil {
			return fmt.Errorf("%w: applying seed diff: %v", ErrDiverged, err)
		}
	}
	t.mirror = seed
	t.pos.Store(seedPos)
	t.seeds.Add(1)
	t.connected.Store(true)
	writeFrame(conn, appendAck(nil, seedPos), t.cfg.DialTimeout)
	lastAck := seedPos

	ticker := time.NewTicker(t.cfg.AckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.quit:
			if cur := t.pos.Load(); cur != lastAck {
				writeFrame(conn, appendAck(nil, cur), t.cfg.DialTimeout)
			}
			return errStreamCut
		case err := <-errc:
			errc <- err
			return err
		case p := <-frames:
			if eff := faultinject.FireEffect(faultinject.ReplTail); eff.Drop {
				return errStreamCut
			}
			rec, err := durable.DecodeRecord(p)
			if err != nil {
				return err
			}
			if err := t.mirror.ApplyRecord(rec); err != nil {
				return err
			}
			if err := t.cfg.OnRecord(rec); err != nil {
				return fmt.Errorf("%w: applying tail record: %v", ErrDiverged, err)
			}
			t.pos.Add(1)
			t.records.Add(1)
		case <-ticker.C:
			if cur := t.pos.Load(); cur != lastAck {
				if err := writeFrame(conn, appendAck(nil, cur), t.cfg.DialTimeout); err != nil {
					return err
				}
				lastAck = cur
			}
		}
	}
}

// diffStates computes the records that take a follower from old to new.
// new must be a history-extension of old — same POI base, old's inserts
// a prefix of new's, old's deletes a subset, epoch not regressed —
// otherwise the follower has diverged and replay cannot converge
// (ErrDiverged). The emitted order is: epoch, POI batch, group
// upserts (sorted), unregisters (sorted).
func diffStates(old, new *durable.State) ([]durable.Record, error) {
	var recs []durable.Record
	if new.Epoch < old.Epoch {
		return nil, fmt.Errorf("%w: epoch %d below mirror's %d", ErrDiverged, new.Epoch, old.Epoch)
	}
	if new.Epoch > old.Epoch {
		recs = append(recs, durable.Record{Type: durable.RecEpoch, Epoch: new.Epoch})
	}

	oldBase, newBase := old.POIBase, new.POIBase
	if newBase < 0 {
		newBase = 0
	}
	if oldBase < 0 {
		if len(old.POIInserts) > 0 || len(old.POIDeleted) > 0 {
			return nil, fmt.Errorf("%w: mirror has POI churn but no base", ErrDiverged)
		}
		oldBase = newBase
	}
	if oldBase != newBase {
		return nil, fmt.Errorf("%w: POI base %d vs mirror's %d", ErrDiverged, newBase, oldBase)
	}
	if len(new.POIInserts) < len(old.POIInserts) {
		return nil, fmt.Errorf("%w: POI inserts shrank (%d -> %d)", ErrDiverged, len(old.POIInserts), len(new.POIInserts))
	}
	for i, p := range old.POIInserts {
		if new.POIInserts[i] != p {
			return nil, fmt.Errorf("%w: POI insert %d rewritten", ErrDiverged, i)
		}
	}
	oldDel := make(map[int]bool, len(old.POIDeleted))
	for _, id := range old.POIDeleted {
		oldDel[id] = true
	}
	newDel := make(map[int]bool, len(new.POIDeleted))
	var freshDels []int
	for _, id := range new.POIDeleted {
		newDel[id] = true
		if !oldDel[id] {
			freshDels = append(freshDels, id)
		}
	}
	for _, id := range old.POIDeleted {
		if !newDel[id] {
			return nil, fmt.Errorf("%w: POI delete %d undone", ErrDiverged, id)
		}
	}
	freshIns := new.POIInserts[len(old.POIInserts):]
	if len(freshIns) > 0 || len(freshDels) > 0 {
		sort.Ints(freshDels)
		recs = append(recs, durable.Record{
			Type:    durable.RecPOIs,
			POIBase: oldBase + len(old.POIInserts),
			Inserts: freshIns,
			Deletes: freshDels,
		})
	}

	var upserts, gones []uint32
	for gid, g := range new.Groups {
		og, ok := old.Groups[gid]
		if !ok || !groupEqual(og, g) {
			upserts = append(upserts, gid)
		}
	}
	for gid := range old.Groups {
		if _, ok := new.Groups[gid]; !ok {
			gones = append(gones, gid)
		}
	}
	sort.Slice(upserts, func(i, j int) bool { return upserts[i] < upserts[j] })
	sort.Slice(gones, func(i, j int) bool { return gones[i] < gones[j] })
	for _, gid := range upserts {
		g := new.Groups[gid]
		recs = append(recs, durable.Record{Type: durable.RecGroup, GID: gid, IDs: g.IDs, Locs: g.Locs})
	}
	for _, gid := range gones {
		recs = append(recs, durable.Record{Type: durable.RecUnreg, GID: gid})
	}
	return recs, nil
}

// groupEqual compares two group states by value.
func groupEqual(a, b durable.GroupState) bool {
	if len(a.IDs) != len(b.IDs) || len(a.Locs) != len(b.Locs) {
		return false
	}
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] {
			return false
		}
	}
	for i := range a.Locs {
		if a.Locs[i] != b.Locs[i] {
			return false
		}
	}
	return true
}
