// Package replica is the hot-standby replication subsystem: a
// primary-side shipper that streams the durable record log (snapshot
// seed + live tail) over TCP, and a follower-side tailer that replays
// it into a warm engine, with position acks, measurable lag, and a
// fencing epoch that keeps a deposed primary from accepting writes
// after its follower promoted.
//
// The wire format reuses the durable layer's CRC framing end to end:
// every frame is [u32 len][u32 crc32(payload)][payload], little-endian,
// and a record frame's payload is byte-identical to the WAL record it
// mirrors. Control frames (handshake, seed end, acks) use payload type
// bytes from 0xF0 up, disjoint from the durable record types.
//
// Stream shape, after each side writes the 8-byte magic:
//
//	follower → primary   hello{version, epoch, advertise}
//	primary  → follower  header{epoch, seedPos, advertise}
//	primary  → follower  seed record frames (durable.AppendStateFrames)
//	primary  → follower  seedEnd{seedPos}
//	primary  → follower  record frames, one per WAL record (the tail)
//	follower → primary   ack{pos} frames, periodically
//
// Fencing: a hello carrying an epoch above the primary's own means the
// dialer has promoted past it — the primary refuses the stream and
// reports itself fenced. Fence() uses exactly this path to depose an
// old primary on purpose.
package replica

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"time"

	"mpn/internal/durable"
)

const (
	streamMagic = "MPNREPL1"
	magicLen    = 8
	frameHdr    = 8
	wireVersion = 1

	// maxAdvertise bounds the advertise-address field in handshakes.
	maxAdvertise = 256
)

// Control payload type bytes, disjoint from durable record types (1..5).
const (
	ctrlHello   byte = 0xF0
	ctrlHeader  byte = 0xF1
	ctrlSeedEnd byte = 0xF2
	ctrlAck     byte = 0xF3
)

// Typed stream errors; test with errors.Is.
var (
	// ErrCorruptStream means the byte stream violated the framing: bad
	// magic, absurd frame length, CRC mismatch, or a malformed control
	// payload. The connection is unusable; the tailer reconnects and
	// reseeds.
	ErrCorruptStream = errors.New("replica: corrupt stream")
	// ErrFenced means the peer's fencing epoch supersedes ours: a
	// deposed primary must stop accepting writes, a stale tailer must
	// stop following.
	ErrFenced = errors.New("replica: fenced by higher epoch")
	// ErrDiverged means the follower's state is not a prefix of the
	// primary's (conflicting POI history or a regressed epoch); the
	// standby cannot catch up by replay and must be rebuilt.
	ErrDiverged = errors.New("replica: follower state diverged from primary")
)

// Reader decodes one side of a replication stream: the magic, then CRC
// frames. It never panics on any input bytes and surfaces every defect
// as a typed error (the fuzz target holds it to that).
type Reader struct {
	r *bufio.Reader
}

// NewReader wraps r. Call Magic before the first Next.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Magic consumes and validates the 8-byte stream magic.
func (r *Reader) Magic() error {
	var m [magicLen]byte
	if _, err := io.ReadFull(r.r, m[:]); err != nil {
		return err
	}
	if string(m[:]) != streamMagic {
		return fmt.Errorf("%w: bad magic %q", ErrCorruptStream, m[:])
	}
	return nil
}

// Next reads one frame and returns its payload. io.EOF means the stream
// ended cleanly at a frame boundary; io.ErrUnexpectedEOF means it was
// cut mid-frame; ErrCorruptStream (wrapped) means the bytes are not a
// valid frame. The returned slice is freshly allocated.
func (r *Reader) Next() ([]byte, error) {
	var hdr [frameHdr]byte
	if _, err := io.ReadFull(r.r, hdr[:1]); err != nil {
		return nil, err // clean EOF at a boundary stays io.EOF
	}
	if _, err := io.ReadFull(r.r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n <= 0 || n > durable.MaxRecord {
		return nil, fmt.Errorf("%w: frame length %d", ErrCorruptStream, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r.r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:]) {
		return nil, fmt.Errorf("%w: frame CRC mismatch", ErrCorruptStream)
	}
	return payload, nil
}

// appendHello encodes the follower's handshake payload.
func appendHello(buf []byte, epoch uint64, advertise string) []byte {
	buf = append(buf, ctrlHello)
	buf = binary.LittleEndian.AppendUint32(buf, wireVersion)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	return appendAddr(buf, advertise)
}

// parseHello decodes a hello payload (type byte included).
func parseHello(p []byte) (epoch uint64, advertise string, err error) {
	if len(p) < 15 || p[0] != ctrlHello {
		return 0, "", fmt.Errorf("%w: malformed hello", ErrCorruptStream)
	}
	if v := binary.LittleEndian.Uint32(p[1:]); v != wireVersion {
		return 0, "", fmt.Errorf("%w: stream version %d (want %d)", ErrCorruptStream, v, wireVersion)
	}
	epoch = binary.LittleEndian.Uint64(p[5:])
	advertise, err = parseAddr(p[13:])
	return epoch, advertise, err
}

// appendHeader encodes the primary's handshake reply.
func appendHeader(buf []byte, epoch, pos uint64, advertise string) []byte {
	buf = append(buf, ctrlHeader)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = binary.LittleEndian.AppendUint64(buf, pos)
	return appendAddr(buf, advertise)
}

// parseHeader decodes a header payload.
func parseHeader(p []byte) (epoch, pos uint64, advertise string, err error) {
	if len(p) < 19 || p[0] != ctrlHeader {
		return 0, 0, "", fmt.Errorf("%w: malformed header", ErrCorruptStream)
	}
	epoch = binary.LittleEndian.Uint64(p[1:])
	pos = binary.LittleEndian.Uint64(p[9:])
	advertise, err = parseAddr(p[17:])
	return epoch, pos, advertise, err
}

// appendSeedEnd / parseSeedEnd frame the end-of-seed marker.
func appendSeedEnd(buf []byte, pos uint64) []byte {
	buf = append(buf, ctrlSeedEnd)
	return binary.LittleEndian.AppendUint64(buf, pos)
}

func parseSeedEnd(p []byte) (pos uint64, err error) {
	if len(p) != 9 || p[0] != ctrlSeedEnd {
		return 0, fmt.Errorf("%w: malformed seed end", ErrCorruptStream)
	}
	return binary.LittleEndian.Uint64(p[1:]), nil
}

// appendAck / parseAck frame a follower position ack.
func appendAck(buf []byte, pos uint64) []byte {
	buf = append(buf, ctrlAck)
	return binary.LittleEndian.AppendUint64(buf, pos)
}

func parseAck(p []byte) (pos uint64, err error) {
	if len(p) != 9 || p[0] != ctrlAck {
		return 0, fmt.Errorf("%w: malformed ack", ErrCorruptStream)
	}
	return binary.LittleEndian.Uint64(p[1:]), nil
}

// appendAddr / parseAddr encode a bounded advertise address.
func appendAddr(buf []byte, addr string) []byte {
	if len(addr) > maxAdvertise {
		addr = addr[:maxAdvertise]
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(addr)))
	return append(buf, addr...)
}

func parseAddr(p []byte) (string, error) {
	if len(p) < 2 {
		return "", fmt.Errorf("%w: short address field", ErrCorruptStream)
	}
	n := int(binary.LittleEndian.Uint16(p))
	if n > maxAdvertise || len(p) != 2+n {
		return "", fmt.Errorf("%w: address field length %d in %d bytes", ErrCorruptStream, n, len(p))
	}
	return string(p[2 : 2+n]), nil
}

// writeFrame writes one CRC frame to w with a bounded deadline when w
// is a net.Conn.
func writeFrame(w io.Writer, payload []byte, timeout time.Duration) error {
	if c, ok := w.(net.Conn); ok && timeout > 0 {
		c.SetWriteDeadline(time.Now().Add(timeout))
		defer c.SetWriteDeadline(time.Time{})
	}
	_, err := w.Write(durable.AppendFrame(make([]byte, 0, frameHdr+len(payload)), payload))
	return err
}

// Fence dials a (presumed deposed) primary's replication address and
// presents epoch in the handshake: any epoch above the primary's own
// makes it refuse writes from then on. advertise is the fencer's
// client-facing address, handed to the deposed primary so it can
// redirect its clients at the node that replaced it. Best-effort — an
// unreachable primary is already not accepting writes.
func Fence(addr string, epoch uint64, advertise string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write([]byte(streamMagic)); err != nil {
		return err
	}
	if err := writeFrame(conn, appendHello(nil, epoch, advertise), timeout); err != nil {
		return err
	}
	// Wait for the primary to react (it closes the connection); the
	// read result itself is irrelevant.
	var b [1]byte
	conn.Read(b[:])
	return nil
}
