package replica

import (
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mpn/internal/durable"
	"mpn/internal/faultinject"
)

// ShipperConfig configures the primary-side WAL shipper.
type ShipperConfig struct {
	// Store is the durable store whose record stream is shipped.
	Store *durable.Store
	// Epoch returns the node's current fencing epoch.
	Epoch func() uint64
	// Advertise is this node's client-facing address, sent to followers
	// in the stream header so clients can be pointed back after a
	// failback.
	Advertise string
	// OnFenced is called (once per offending handshake) when a dialer
	// presents an epoch above ours: this node has been deposed.
	// advertise is the fencer's client-facing address ("" if it sent
	// none) — where the deposed node should point its clients.
	OnFenced func(epoch uint64, advertise string)
	// Buffer bounds each follower's tail subscription; a follower that
	// falls further behind is cut and must reconnect for a full reseed.
	// Default 1024.
	Buffer int
	// WriteTimeout bounds each frame write to a follower. Default 5s.
	WriteTimeout time.Duration
}

// ShipperStats is a point-in-time read of shipping progress.
type ShipperStats struct {
	// Followers is the number of connected follower streams.
	Followers int
	// StreamPos is the primary's latest record position.
	StreamPos uint64
	// AckPos is the lowest position acked across followers (0 with no
	// followers or before the first ack): StreamPos-AckPos is the lag
	// bound in records.
	AckPos uint64
	// Shipped counts tail record frames written to followers.
	Shipped uint64
	// Seeds counts full-state seeds served (initial connects and
	// post-lag reseeds alike).
	Seeds uint64
	// Cuts counts follower streams cut for lag or write failure.
	Cuts uint64
	// FencedBy is the highest epoch a handshake deposed us with (0 if
	// never).
	FencedBy uint64
}

// Shipper serves the replication stream to followers: each accepted
// connection gets a consistent snapshot seed (durable.AppendStateFrames
// of the store mirror) followed by the live record tail, and acks its
// position back. One Shipper serves any number of followers, each on
// its own subscription.
type Shipper struct {
	cfg ShipperConfig

	mu        sync.Mutex
	ln        net.Listener
	followers map[*follower]struct{}
	closed    bool

	wg sync.WaitGroup

	shipped, seeds, cuts atomic.Uint64
	fencedBy             atomic.Uint64
}

// follower is one connected follower stream.
type follower struct {
	conn      net.Conn
	sub       *durable.StreamSub
	advertise string
	acked     atomic.Uint64
}

// NewShipper returns a shipper ready to Serve.
func NewShipper(cfg ShipperConfig) *Shipper {
	if cfg.Buffer <= 0 {
		cfg.Buffer = 1024
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 5 * time.Second
	}
	return &Shipper{cfg: cfg, followers: make(map[*follower]struct{})}
}

// Serve accepts follower connections on ln until Close. It returns when
// the listener dies; each connection is handled on its own goroutine.
func (sh *Shipper) Serve(ln net.Listener) {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		ln.Close()
		return
	}
	sh.ln = ln
	sh.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		sh.wg.Add(1)
		go func() {
			defer sh.wg.Done()
			sh.handleConn(conn)
		}()
	}
}

// Close stops accepting, cuts every follower, and waits for handler
// goroutines to exit.
func (sh *Shipper) Close() {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return
	}
	sh.closed = true
	if sh.ln != nil {
		sh.ln.Close()
	}
	for f := range sh.followers {
		f.conn.Close()
		f.sub.Close()
	}
	sh.mu.Unlock()
	sh.wg.Wait()
}

// Stats returns a snapshot of shipping progress.
func (sh *Shipper) Stats() ShipperStats {
	st := ShipperStats{
		Shipped:  sh.shipped.Load(),
		Seeds:    sh.seeds.Load(),
		Cuts:     sh.cuts.Load(),
		FencedBy: sh.fencedBy.Load(),
	}
	if sh.cfg.Store != nil {
		st.StreamPos = sh.cfg.Store.StreamPos()
	}
	sh.mu.Lock()
	st.Followers = len(sh.followers)
	for f := range sh.followers {
		if a := f.acked.Load(); st.AckPos == 0 || a < st.AckPos {
			st.AckPos = a
		}
	}
	sh.mu.Unlock()
	return st
}

// FollowerAddrs returns the advertise addresses of connected followers,
// sorted — the peer list a primary pushes to clients.
func (sh *Shipper) FollowerAddrs() []string {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var addrs []string
	for f := range sh.followers {
		if f.advertise != "" {
			addrs = append(addrs, f.advertise)
		}
	}
	sort.Strings(addrs)
	return addrs
}

// handleConn runs one follower stream: handshake (with the fencing
// check), seed, then tail until cut.
func (sh *Shipper) handleConn(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(sh.cfg.WriteTimeout))
	rd := NewReader(conn)
	if err := rd.Magic(); err != nil {
		return
	}
	p, err := rd.Next()
	if err != nil {
		return
	}
	helloEpoch, advertise, err := parseHello(p)
	if err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})

	epoch := uint64(0)
	if sh.cfg.Epoch != nil {
		epoch = sh.cfg.Epoch()
	}
	if helloEpoch > epoch {
		// The dialer promoted past us: we are deposed. Report and
		// refuse the stream.
		sh.fencedBy.Store(helloEpoch)
		if sh.cfg.OnFenced != nil {
			sh.cfg.OnFenced(helloEpoch, advertise)
		}
		return
	}

	// Seed: a state clone consistent with a stream position, then the
	// live tail from that position.
	seed, pos, sub := sh.cfg.Store.StreamFrom(sh.cfg.Buffer)
	defer sub.Close()
	sh.seeds.Add(1)

	f := &follower{conn: conn, sub: sub, advertise: advertise}
	f.acked.Store(pos)
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return
	}
	sh.followers[f] = struct{}{}
	sh.mu.Unlock()
	defer func() {
		sh.mu.Lock()
		delete(sh.followers, f)
		sh.mu.Unlock()
	}()

	if _, err := conn.Write([]byte(streamMagic)); err != nil {
		return
	}
	w := sh.cfg.WriteTimeout
	if err := writeFrame(conn, appendHeader(nil, epoch, pos, sh.cfg.Advertise), w); err != nil {
		return
	}
	// The seed frames are already CRC-framed by AppendStateFrames.
	conn.SetWriteDeadline(time.Now().Add(w))
	if _, err := conn.Write(durable.AppendStateFrames(nil, seed)); err != nil {
		return
	}
	conn.SetWriteDeadline(time.Time{})
	if err := writeFrame(conn, appendSeedEnd(nil, pos), w); err != nil {
		return
	}

	// Ack reader: drains follower acks until the connection dies, and
	// then closes the subscription so the tail loop below wakes up —
	// otherwise a silent follower death would park this goroutine on an
	// idle stream forever.
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		defer sub.Close()
		for {
			p, err := rd.Next()
			if err != nil {
				return
			}
			if pos, err := parseAck(p); err == nil {
				f.acked.Store(pos)
			}
		}
	}()

	for rec := range sub.C {
		if eff := faultinject.FireEffect(faultinject.ReplShip); eff.Drop {
			sh.cuts.Add(1)
			conn.Close()
			<-ackDone
			return
		}
		if err := writeFrame(conn, rec.Payload, w); err != nil {
			sh.cuts.Add(1)
			conn.Close()
			<-ackDone
			return
		}
		sh.shipped.Add(1)
	}
	// Subscription closed: store shut down, or this follower lagged
	// past its buffer. Either way the stream ends; a lagged follower
	// reconnects and reseeds.
	if sub.Lagged() {
		sh.cuts.Add(1)
	}
	conn.Close()
	<-ackDone
}
