package replica

import "sync/atomic"

// Role is a node's position in the replication pair.
type Role int32

const (
	// RolePrimary accepts registrations and reports and ships its WAL.
	RolePrimary Role = iota
	// RoleStandby replays the primary's stream and refuses client
	// writes (clients are redirected via peer advertisements).
	RoleStandby
	// RoleFenced is a deposed primary: a higher epoch exists somewhere,
	// so this node refuses writes forever (restart required).
	RoleFenced
)

// String implements fmt.Stringer for logs and stats.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleStandby:
		return "standby"
	case RoleFenced:
		return "fenced"
	}
	return "unknown"
}

// RoleState is the node's role as an atomic state machine. Legal
// transitions: Standby→Primary (Promote) and any→Fenced (Fence); a
// fenced node never serves writes again.
type RoleState struct {
	v atomic.Int32
}

// NewRoleState starts the machine in r.
func NewRoleState(r Role) *RoleState {
	rs := &RoleState{}
	rs.v.Store(int32(r))
	return rs
}

// Get returns the current role.
func (rs *RoleState) Get() Role { return Role(rs.v.Load()) }

// IsPrimary reports whether the node currently serves writes.
func (rs *RoleState) IsPrimary() bool { return rs.Get() == RolePrimary }

// Promote moves Standby→Primary; reports whether the transition
// happened (false when already primary or fenced).
func (rs *RoleState) Promote() bool {
	return rs.v.CompareAndSwap(int32(RoleStandby), int32(RolePrimary))
}

// Fence moves any non-fenced role to Fenced; reports whether this call
// did it.
func (rs *RoleState) Fence() bool {
	for {
		cur := rs.v.Load()
		if cur == int32(RoleFenced) {
			return false
		}
		if rs.v.CompareAndSwap(cur, int32(RoleFenced)) {
			return true
		}
	}
}
