package replica

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"mpn/internal/durable"
	"mpn/internal/geom"
)

// validStream builds a well-formed replication stream (primary→follower
// direction) for the fuzzer to mutate from: magic, header, seed frames,
// seed end, then tail records.
func validStream() []byte {
	st := durable.NewState()
	st.POIBase = 10
	st.POIInserts = []geom.Point{geom.Pt(0.5, 0.5)}
	st.POIDeleted = []int{3}
	st.Epoch = 2
	st.Groups[7] = durable.GroupState{IDs: []uint32{1, 2}, Locs: []geom.Point{geom.Pt(0.1, 0.2), geom.Pt(0.3, 0.4)}}

	b := []byte(streamMagic)
	b = durable.AppendFrame(b, appendHeader(nil, 2, 6, "primary.example:9000"))
	b = durable.AppendStateFrames(b, st)
	b = durable.AppendFrame(b, appendSeedEnd(nil, 6))
	// Tail records: an epoch advance, then a group upsert replayed from
	// the state serialization (its last frame is a group record).
	b = durable.AppendFrame(b, durable.AppendEpochRecord(nil, 3))
	frames := durable.AppendStateFrames(nil, st)
	rd := NewReader(bytes.NewReader(append([]byte(streamMagic), frames...)))
	if err := rd.Magic(); err != nil {
		panic(err)
	}
	var last []byte
	for {
		p, err := rd.Next()
		if err != nil {
			break
		}
		last = p
	}
	if len(last) == 0 || last[0] != durable.RecGroup {
		panic("state serialization did not end with a group record")
	}
	return durable.AppendFrame(b, last)
}

// consumeStream drives a tailer-shaped parse over arbitrary bytes:
// magic, header, seed applied to a fresh state, seed end, then tail
// records applied in order. It returns the number of records accepted
// and the terminating error (nil only for a clean EOF after the seed).
func consumeStream(b []byte) (records int, err error) {
	rd := NewReader(bytes.NewReader(b))
	if err := rd.Magic(); err != nil {
		return 0, err
	}
	p, err := rd.Next()
	if err != nil {
		return 0, err
	}
	if _, _, _, err := parseHeader(p); err != nil {
		return 0, err
	}
	seed := durable.NewState()
	for {
		p, err := rd.Next()
		if err != nil {
			return records, err
		}
		if len(p) > 0 && p[0] == ctrlSeedEnd {
			if _, err := parseSeedEnd(p); err != nil {
				return records, err
			}
			break
		}
		if err := seed.Apply(p); err != nil {
			return records, err
		}
		records++
	}
	for {
		p, err := rd.Next()
		if err == io.EOF {
			return records, nil
		}
		if err != nil {
			return records, err
		}
		rec, err := durable.DecodeRecord(p)
		if err != nil {
			return records, err
		}
		if err := seed.ApplyRecord(rec); err != nil {
			return records, err
		}
		records++
	}
}

// typedStreamError reports whether err is one of the errors the stream
// consumer is allowed to surface for arbitrary input.
func typedStreamError(err error) bool {
	return err == nil ||
		errors.Is(err, ErrCorruptStream) ||
		errors.Is(err, durable.ErrBadRecord) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// FuzzReplStream is the replication-framing robustness fence, the
// stream-side sibling of FuzzWALRecover: for ARBITRARY bytes presented
// as a replication stream, the consumer must never panic and must
// surface every defect as a typed error or clean truncation — never a
// phantom record. CRC framing additionally guarantees prefix stability:
// the records accepted before the error are exactly a prefix of what
// the unmangled stream carries.
func FuzzReplStream(f *testing.F) {
	valid := validStream()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte(streamMagic))
	f.Add([]byte{})
	truncated := append([]byte{}, valid...)
	truncated[9]++ // frame length off by one
	f.Add(truncated)

	baseRecords, baseErr := consumeStream(valid)
	if baseErr != nil {
		f.Fatalf("valid stream rejected: %v", baseErr)
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		records, err := consumeStream(b)
		if !typedStreamError(err) {
			t.Fatalf("untyped stream error: %v", err)
		}
		if records < 0 {
			t.Fatalf("negative record count")
		}
		// A stream that shares the valid prefix can accept at most the
		// valid stream's records plus whatever valid frames the mangled
		// tail happens to contain — but if the input IS the valid
		// stream, the count must match exactly.
		if bytes.Equal(b, valid) && (err != nil || records != baseRecords) {
			t.Fatalf("valid stream: records=%d err=%v (want %d, nil)", records, err, baseRecords)
		}
	})
}
