package netmpn

import (
	"fmt"
	"math/rand"

	"mpn/internal/roadnet"
)

// Walker generates network-constrained movement as edge-referenced
// Positions (the network analog of mobility.NetworkTrajectory, which emits
// Euclidean points). It drives the netmpn simulation and tests.
type Walker struct {
	net   *roadnet.Network
	rng   *rand.Rand
	speed float64

	path   []int
	seg    int
	offset float64 // distance traveled along the current segment
}

// NewWalker starts a walker at a random node traveling at the given
// distance per step.
func NewWalker(net *roadnet.Network, speed float64, seed int64) (*Walker, error) {
	if net == nil || net.NumNodes() < 2 {
		return nil, fmt.Errorf("netmpn: network too small for walking")
	}
	if speed <= 0 {
		return nil, fmt.Errorf("netmpn: speed %v must be positive", speed)
	}
	w := &Walker{net: net, rng: rand.New(rand.NewSource(seed)), speed: speed}
	w.path = []int{net.RandomNode(w.rng)}
	w.newTrip()
	return w, nil
}

// newTrip routes from the current path end to a fresh random destination.
func (w *Walker) newTrip() {
	cur := w.path[len(w.path)-1]
	for {
		dest := w.net.RandomNode(w.rng)
		if dest == cur {
			continue
		}
		path, _, ok := w.net.ShortestPath(cur, dest)
		if ok && len(path) >= 2 {
			w.path = path
			w.seg = 0
			w.offset = 0
			return
		}
	}
}

// Pos returns the walker's current position.
func (w *Walker) Pos() Position {
	a, b := w.path[w.seg], w.path[w.seg+1]
	l := w.net.Nodes[a].P.Dist(w.net.Nodes[b].P)
	t := 0.0
	if l > 0 {
		t = w.offset / l
	}
	if t > 1 {
		t = 1
	}
	return Position{A: a, B: b, T: t}
}

// Step advances one timestamp and returns the new position.
func (w *Walker) Step() Position {
	remaining := w.speed
	for remaining > 0 {
		a, b := w.path[w.seg], w.path[w.seg+1]
		l := w.net.Nodes[a].P.Dist(w.net.Nodes[b].P)
		left := l - w.offset
		if left > remaining {
			w.offset += remaining
			remaining = 0
			break
		}
		remaining -= left
		w.seg++
		w.offset = 0
		if w.seg >= len(w.path)-1 {
			w.newTrip()
		}
	}
	return w.Pos()
}

// SimMetrics summarizes one network MPN simulation.
type SimMetrics struct {
	Timestamps int
	Updates    int
	// RegionValues is the total wire cost of shipped regions in doubles.
	RegionValues int
}

// UpdateFrequency returns updates per 1,000 timestamps.
func (m SimMetrics) UpdateFrequency() float64 {
	if m.Timestamps == 0 {
		return 0
	}
	return float64(m.Updates) * 1000 / float64(m.Timestamps)
}

// Simulate replays m walkers for steps timestamps against the server,
// recomputing the meeting POI with fresh range regions whenever a walker
// escapes — the network analog of the Euclidean simulator.
func Simulate(s *Server, m, steps int, speed float64, agg Aggregate, seed int64) (SimMetrics, error) {
	if m <= 0 || steps <= 1 {
		return SimMetrics{}, fmt.Errorf("netmpn: need m>0 and steps>1")
	}
	walkers := make([]*Walker, m)
	for i := range walkers {
		w, err := NewWalker(s.net, speed, seed+int64(i)*7919)
		if err != nil {
			return SimMetrics{}, err
		}
		walkers[i] = w
	}

	users := make([]Position, m)
	for i, w := range walkers {
		users[i] = w.Pos()
	}
	_, regions, err := s.Plan(users, agg)
	if err != nil {
		return SimMetrics{}, err
	}
	met := SimMetrics{Timestamps: steps, Updates: 1}
	for _, r := range regions {
		met.RegionValues += r.EncodedValues()
	}

	for t := 1; t < steps; t++ {
		escaped := false
		for i, w := range walkers {
			users[i] = w.Step()
			if !regions[i].Contains(users[i]) {
				escaped = true
			}
		}
		if escaped {
			_, regions, err = s.Plan(users, agg)
			if err != nil {
				return SimMetrics{}, err
			}
			met.Updates++
			for _, r := range regions {
				met.RegionValues += r.EncodedValues()
			}
		}
	}
	return met, nil
}
