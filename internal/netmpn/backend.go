package netmpn

import (
	"math"
	"sort"

	"mpn/internal/core"
	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/netmpn/alt"
	"mpn/internal/roadnet"
	"mpn/internal/rtree"
)

// BackendConfig configures the landmark-accelerated network backend.
// The zero value selects Max aggregation, alt.DefaultLandmarks, and no
// neighborhood cache.
type BackendConfig struct {
	// Aggregate selects network MPN (Max) or Sum-MPN (Sum).
	Aggregate Aggregate
	// Landmarks is the ALT landmark count; 0 selects alt.DefaultLandmarks.
	Landmarks int
	// CacheEntries bounds the network neighborhood cache (see cache.go);
	// 0 disables caching. Cached plans are byte-identical to uncached.
	CacheEntries int
	// CacheK is how many network-nearest POIs each cache entry certifies;
	// 0 selects DefaultCacheK. Ignored when the cache is disabled.
	CacheK int
}

// Backend is the road-network planning backend behind core.Plan: it
// implements core.NetBackend over a Server, an ALT landmark overlay, and
// (optionally) a nearest-node-keyed neighborhood cache.
//
// Where the naive Server.Plan pays one full single-source Dijkstra per
// member per query, the backend ranks POIs by the ALT aggregate lower
// bound max_L |d(L,u) − d(L,p)| and computes exact aggregate distances —
// through per-member resumable truncated Dijkstras — only for candidates
// whose bound does not already exceed the current runner-up. The final
// (best, runner-up) pair is replayed through the oracle's own selection
// scan over the examined subset, so the backend's plan is byte-identical
// to Server.Plan's on every input (the fence backend_test.go enforces):
// any omitted POI has exact aggregate ≥ its bound > the final runner-up
// value, so it could not have displaced either register.
//
// A Backend is safe for concurrent use with distinct workspaces and
// plan states; the cache carries its own lock.
type Backend struct {
	s      *Server
	alt    *alt.Index
	agg    Aggregate
	cache  *nbrCache
	grid   *snapGrid
	poiIdx []int32 // node id → index into s.pois, -1 elsewhere
}

// NewBackend builds a backend over the network and POI placement,
// precomputing the landmark distance vectors.
func NewBackend(net *roadnet.Network, poiNodes []int, cfg BackendConfig) (*Backend, error) {
	s, err := NewServer(net, poiNodes)
	if err != nil {
		return nil, err
	}
	idx, err := alt.Build(net, cfg.Landmarks)
	if err != nil {
		return nil, err
	}
	b := &Backend{s: s, alt: idx, agg: cfg.Aggregate, grid: buildSnapGrid(net)}
	b.poiIdx = make([]int32, net.NumNodes())
	for i := range b.poiIdx {
		b.poiIdx[i] = -1
	}
	for j, p := range s.pois {
		b.poiIdx[p] = int32(j)
	}
	if cfg.CacheEntries > 0 {
		b.cache = newNbrCache(cfg.CacheEntries, cfg.CacheK)
	}
	return b, nil
}

// Server exposes the underlying naive server — the differential oracle
// and baseline for the backend's plans.
func (b *Backend) Server() *Server { return b.s }

// Landmarks returns the ALT landmark count in effect.
func (b *Backend) Landmarks() int { return b.alt.NumLandmarks() }

// Snap projects a Euclidean point onto the nearest road segment. The
// scan is deterministic (first edge in adjacency order wins ties), so
// equal inputs always land on equal network positions — what the
// differential fences rely on to feed planner and oracle identical
// queries.
func (b *Backend) Snap(p geom.Point) Position { return b.grid.snap(p) }

// snapSlow is the exhaustive projection scan the grid accelerates; it is
// retained as the differential oracle for the grid's exactness fence.
func (b *Backend) snapSlow(p geom.Point) Position {
	net := b.s.net
	best := math.Inf(1)
	var pos Position
	for a := range net.Adj {
		pa := net.Nodes[a].P
		for _, e := range net.Adj[a] {
			if e.To < a {
				continue // each undirected edge once
			}
			pb := net.Nodes[e.To].P
			ab := pb.Sub(pa)
			den := ab.Dot(ab)
			t := 0.0
			if den > 0 {
				t = p.Sub(pa).Dot(ab) / den
				if t < 0 {
					t = 0
				} else if t > 1 {
					t = 1
				}
			}
			if d2 := p.Dist2(pa.Add(ab.Scale(t))); d2 < best {
				best = d2
				pos = Position{A: a, B: e.To, T: t}
			}
		}
	}
	return pos
}

// posPoint returns the Euclidean location of a network position.
func (s *Server) posPoint(p Position) geom.Point {
	a := s.net.Nodes[p.A].P
	if p.A == p.B {
		return a
	}
	return lerp(a, s.net.Nodes[p.B].P, p.T)
}

// netScratch is the backend's per-workspace scratch (stored in
// core.Workspace.NetScratch): one resumable Dijkstra per member plus the
// candidate-ranking buffers, all reused across plans.
type netScratch struct {
	searches []search
	pos      []Position
	dirty    []bool

	lb    []float64 // per-POI aggregate lower bound
	order []int     // POI indices, ascending (lb, index)
	exact []float64 // exact aggregate for examined POIs
	done  []bool    // whether exact[j] holds a value this plan
}

func (b *Backend) scratch(ws *core.Workspace) *netScratch {
	slot := ws.NetScratch()
	ns, _ := (*slot).(*netScratch)
	if ns == nil {
		ns = new(netScratch)
		*slot = ns
	}
	return ns
}

// grow returns s with length exactly m, preserving capacity (the
// core.Workspace idiom, restated here because core does not export it).
func grow[T any](s []T, m int) []T {
	if cap(s) < m {
		s = append(s[:cap(s)], make([]T, m-cap(s))...)
	}
	return s[:m]
}

// PlanNet implements core.NetBackend: the network planning entry point
// behind core.Plan for KindNetRange requests. Users arrive as Euclidean
// points and are snapped to the nearest road segment; the returned
// Plan.Best carries the meeting POI's node id and Euclidean location,
// and every region is a *Region payload wrapped in core.NetRegion.
//
// req.Cache (the Euclidean neighborhood cache) is ignored: the backend
// carries its own network-keyed cache, configured at construction.
func (b *Backend) PlanNet(ws *core.Workspace, req core.PlanRequest) (core.Plan, core.IncOutcome, error) {
	users := req.Users
	if len(users) == 0 {
		return core.Plan{}, core.IncFull, core.ErrNoUsers
	}
	ns := b.scratch(ws)
	ns.pos = grow(ns.pos, len(users))
	ns.searches = grow(ns.searches, len(users))
	for i, u := range users {
		ns.pos[i] = b.Snap(u)
		ns.searches[i].reset(b.s, ns.pos[i])
	}

	var plan core.Plan
	plan.Stats.GNNCalls = 1
	best, second, checked := b.top2(ns, len(users))
	plan.Stats.CandidatesChecked = checked
	if best.Node == -1 || math.IsInf(best.Dist, 1) {
		return plan, core.IncFull, ErrUnreachable
	}
	plan.Best = gnn.Result{
		Item: rtree.Item{P: b.s.net.Nodes[best.Node].P, ID: best.Node},
		Dist: best.Dist,
	}
	r := radiusOf(best, second, b.agg, len(users))

	full := func() (core.Plan, core.IncOutcome, error) {
		plan.Regions = make([]core.SafeRegion, len(users))
		for i := range users {
			plan.Regions[i] = b.freshRegion(ns, i, r)
		}
		if req.State != nil {
			req.State.Record(plan)
		}
		return plan, core.IncFull, nil
	}

	st := req.State
	if st == nil {
		return full()
	}
	if !st.Usable(0, users, core.KindNetRange) || best.Node != st.BestID() || r <= 0 {
		return full()
	}

	// Mirror of the Euclidean circle incremental protocol (the
	// KindCircle arm of core.Planner.Plan): retained network range regions are
	// position-independent — membership of every point within network
	// radius r_old of the old center is a static fact — so the retained
	// set stays jointly safe as long as each member's possible positions
	// remain within the fresh Theorem 1/5 budget. A clean member roams at
	// most drift(u_i, c_i) + r_old from her current location; a dirty
	// member gets a fresh region of radius r. The mixed set is safe when
	// max_i ρ'_i ≤ gap/2 (MAX) or Σ_i ρ'_i ≤ gap/2 (SUM) — network
	// distance is a metric, so the triangle-inequality argument carries
	// over verbatim.
	gap := math.Inf(1)
	if second.Node != -1 {
		gap = second.Dist - best.Dist
		if gap < 0 {
			gap = 0
		}
	}
	retained := st.Regions()
	ns.dirty = grow(ns.dirty, len(users))
	ndirty := 0
	var maxRho, sumRho float64
	for i := range users {
		nr, ok := retained[i].Net.(*Region)
		if !ok || !nr.hasPos {
			return full() // foreign or decoded payload: no drift basis
		}
		// Cleanliness is judged at the member's snapped network position —
		// the position planning itself uses — so an off-road GPS report a
		// snap away from a covered segment does not spuriously dirty her.
		rho := r
		in := nr.ContainsPoint(b.s.posPoint(ns.pos[i]))
		ns.dirty[i] = !in
		if in {
			rho = ns.searches[i].distToPos(b.s, ns.pos[i], nr.cpos) + nr.Radius
		} else {
			ndirty++
		}
		if rho > maxRho {
			maxRho = rho
		}
		sumRho += rho
	}
	safe := maxRho <= gap/2
	if b.agg == Sum {
		safe = sumRho <= gap/2
	}
	if !safe {
		return full()
	}
	if ndirty == 0 {
		plan.Regions = retained
		return plan, core.IncKept, nil
	}
	regions := make([]core.SafeRegion, len(users))
	for i := range users {
		if ns.dirty[i] {
			regions[i] = b.freshRegion(ns, i, r)
		} else {
			regions[i] = retained[i]
		}
	}
	plan.Regions = regions
	st.Record(plan)
	return plan, core.IncPartial, nil
}

// radiusOf computes the Theorem 1/5 safe radius exactly as Server.Plan
// does (same operations, same order — the fences compare bitwise).
func radiusOf(best, second Result, agg Aggregate, m int) float64 {
	if second.Node == -1 {
		return math.Inf(1) // single POI: never displaced
	}
	gap := second.Dist - best.Dist
	if gap < 0 {
		gap = 0
	}
	if agg == Max {
		return gap / 2
	}
	return gap / (2 * float64(m))
}

// freshRegion grows member i's network range region of radius r around
// her snapped position and exports it as a retainable payload.
func (b *Backend) freshRegion(ns *netScratch, i int, r float64) core.SafeRegion {
	rr := b.s.rangeRegion(ns.pos[i], r)
	return core.NetRegion(b.s.exportRegion(&rr, b.s.posPoint(ns.pos[i])))
}

// top2 finds the best and runner-up meeting POIs under the aggregate
// network distance, byte-identically to Server.Plan's full scan.
// checked counts POIs whose exact aggregate was computed.
//
// The examined subset comes from the neighborhood cache when a certified
// entry covers the group (see cache.go), and from the ALT bound ranking
// otherwise; either way the two-register selection runs over the subset
// in POI order, replaying the oracle's scan.
func (b *Backend) top2(ns *netScratch, m int) (best, second Result, checked int) {
	np := len(b.s.pois)
	ns.exact = grow(ns.exact, np)
	ns.done = grow(ns.done, np)
	for j := range ns.done {
		ns.done[j] = false
	}

	if b.cache != nil {
		if best, second, checked, ok := b.cacheTop2(ns, m); ok {
			return best, second, checked
		}
	}

	// Aggregate ALT lower bound per POI. A member on edge (A,B) at
	// offsets (offA, offB) satisfies d(u,p) = min(offA+d(A,p),
	// offB+d(B,p)), so min(offA+lb(A,p), offB+lb(B,p)) lower-bounds her
	// distance; the MAX/SUM combination of member bounds lower-bounds
	// the aggregate.
	ns.lb = grow(ns.lb, np)
	for j := range ns.lb {
		ns.lb[j] = 0
	}
	for i := 0; i < m; i++ {
		pos := ns.pos[i]
		if pos.A == pos.B {
			vec := b.alt.Vec(pos.A)
			for j, p := range b.s.pois {
				lb := b.alt.BoundTo(vec, p)
				if b.agg == Max {
					if lb > ns.lb[j] {
						ns.lb[j] = lb
					}
				} else {
					ns.lb[j] += lb
				}
			}
			continue
		}
		l := b.s.edgeLen[edgeKey(pos.A, pos.B)]
		offA, offB := pos.T*l, (1-pos.T)*l
		vecA, vecB := b.alt.Vec(pos.A), b.alt.Vec(pos.B)
		for j, p := range b.s.pois {
			lb := offA + b.alt.BoundTo(vecA, p)
			if v := offB + b.alt.BoundTo(vecB, p); v < lb {
				lb = v
			}
			if b.agg == Max {
				if lb > ns.lb[j] {
					ns.lb[j] = lb
				}
			} else {
				ns.lb[j] += lb
			}
		}
	}

	ns.order = grow(ns.order, np)
	for j := range ns.order {
		ns.order[j] = j
	}
	sort.Slice(ns.order, func(x, y int) bool {
		jx, jy := ns.order[x], ns.order[y]
		if ns.lb[jx] != ns.lb[jy] {
			return ns.lb[jx] < ns.lb[jy]
		}
		return jx < jy
	})

	// Examine candidates in ascending bound order, keeping the two
	// smallest exact aggregates seen; once the next bound exceeds the
	// running runner-up no unexamined POI can enter the top two.
	v1, v2 := math.Inf(1), math.Inf(1)
	for _, j := range ns.order {
		if ns.lb[j] > v2 {
			break
		}
		d := ns.exact[j]
		if !ns.done[j] {
			d = b.exactAgg(ns, j, m)
			ns.exact[j] = d
			ns.done[j] = true
			checked++
		}
		if d < v1 {
			v2, v1 = v1, d
		} else if d < v2 {
			v2 = d
		}
	}

	best, second = replayScan(b.s.pois, ns)
	return best, second, checked
}

// exactAgg computes the exact aggregate network distance from all
// members to POI j, advancing each member's resumable search just far
// enough. The member order and floating-point operations match
// Server.Plan's aggregation loop exactly.
func (b *Backend) exactAgg(ns *netScratch, j, m int) float64 {
	p := b.s.pois[j]
	var d float64
	if b.agg == Max {
		for i := 0; i < m; i++ {
			if v := ns.searches[i].distTo(b.s, p); v > d {
				d = v
			}
		}
	} else {
		for i := 0; i < m; i++ {
			d += ns.searches[i].distTo(b.s, p)
		}
	}
	return d
}

// replayScan runs the oracle's two-register selection over the examined
// subset in POI order — the step that makes the accelerated result
// byte-identical to the full scan (earliest-index minimum, then
// earliest-index minimum of the remainder).
func replayScan(pois []int, ns *netScratch) (best, second Result) {
	best = Result{Node: -1, Dist: math.Inf(1)}
	second = Result{Node: -1, Dist: math.Inf(1)}
	for j, p := range pois {
		if !ns.done[j] {
			continue
		}
		d := ns.exact[j]
		switch {
		case d < best.Dist:
			second = best
			best = Result{Node: p, Dist: d}
		case d < second.Dist:
			second = Result{Node: p, Dist: d}
		}
	}
	return best, second
}
