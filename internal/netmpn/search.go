package netmpn

import (
	"math"

	"mpn/internal/heapq"
)

// search is a resumable single-source Dijkstra: it advances the frontier
// only until the distances a caller actually asks for are settled, and
// picks up where it stopped on the next ask. This is what lets the
// landmark-accelerated planner (backend.go) answer "distance from user u
// to POI p" for a handful of candidate POIs without paying the full
// network sweep the naive Server.Plan pays per member.
//
// The settled distances are bit-identical to Server.sssp's: the seeding
// and relaxation follow the same discipline (push iff strictly closer,
// skip stale pops), and a Dijkstra label is final the moment its node
// settles — the min over already-settled in-neighbors of dist+len, a
// value independent of how the frontier orders equal keys, so stopping
// early and resuming later replays a prefix of the very same
// computation. The differential fences in backend_test.go hold the
// planner to that claim.
//
// A search's slices persist across resets (grown once per workspace), so
// steady-state planning performs no per-plan allocations here beyond
// heap growth.
type search struct {
	dist    []float64
	settled []bool
	q       []nodeEntry
	// touched records every node whose dist/settled slot was written, so
	// reset clears O(|explored|) slots instead of O(|V|).
	touched []int32
}

// reset re-seeds the search from a position, clearing only the state the
// previous run dirtied.
func (sr *search) reset(s *Server, from Position) {
	n := s.net.NumNodes()
	if cap(sr.dist) < n {
		sr.dist = make([]float64, n)
		sr.settled = make([]bool, n)
		for i := range sr.dist {
			sr.dist[i] = math.Inf(1)
		}
	} else {
		sr.dist = sr.dist[:n]
		sr.settled = sr.settled[:n]
		for _, t := range sr.touched {
			sr.dist[t] = math.Inf(1)
			sr.settled[t] = false
		}
	}
	sr.touched = sr.touched[:0]
	sr.q = sr.q[:0]
	if from.A == from.B {
		sr.push(from.A, 0)
	} else {
		l := s.edgeLen[edgeKey(from.A, from.B)]
		sr.push(from.A, from.T*l)
		sr.push(from.B, (1-from.T)*l)
	}
}

func (sr *search) push(n int, d float64) {
	if d < sr.dist[n] {
		if math.IsInf(sr.dist[n], 1) {
			sr.touched = append(sr.touched, int32(n))
		}
		sr.dist[n] = d
		sr.q = heapq.Push(sr.q, nodeEntry{node: n, dist: d})
	}
}

// settleNext advances the frontier until one more node settles and
// returns it; ok is false when the reachable component is exhausted.
func (sr *search) settleNext(s *Server) (node int, d float64, ok bool) {
	for len(sr.q) > 0 {
		var e nodeEntry
		e, sr.q = heapq.Pop(sr.q)
		if e.dist > sr.dist[e.node] {
			continue // stale entry, already settled closer
		}
		sr.settled[e.node] = true
		for _, ed := range s.net.Adj[e.node] {
			sr.push(ed.To, e.dist+ed.Len)
		}
		return e.node, e.dist, true
	}
	return 0, 0, false
}

// distTo returns the network distance from the search source to node,
// advancing the frontier until node settles (or the reachable component
// is exhausted, in which case the distance is +Inf).
func (sr *search) distTo(s *Server, node int) float64 {
	for !sr.settled[node] {
		if _, _, ok := sr.settleNext(s); !ok {
			break
		}
	}
	return sr.dist[node]
}

// distToPos returns the network distance from the search source to an
// arbitrary position: the best of entering p's edge through either
// endpoint, and — when the source sits on the same undirected edge — the
// direct along-edge walk.
func (sr *search) distToPos(s *Server, src, p Position) float64 {
	if p.A == p.B {
		return sr.distTo(s, p.A)
	}
	l := s.edgeLen[edgeKey(p.A, p.B)]
	d := sr.distTo(s, p.A) + p.T*l
	if v := sr.distTo(s, p.B) + (1-p.T)*l; v < d {
		d = v
	}
	if src.A != src.B && edgeKey(src.A, src.B) == edgeKey(p.A, p.B) {
		st, pt := src.T, p.T
		if src.A != p.A {
			pt = 1 - pt // express both offsets from src's A endpoint
		}
		if v := math.Abs(st-pt) * l; v < d {
			d = v
		}
	}
	return d
}
