package netmpn

import (
	"math"
	"sort"
	"sync"

	"mpn/internal/geom"
)

// DefaultCacheK is how many network-nearest POIs a neighborhood cache
// entry certifies when BackendConfig.CacheK is zero.
const DefaultCacheK = 16

// nbrCache is the network analogue of internal/nbrcache: entries are
// keyed by the road node nearest the group's Euclidean centroid, and
// each entry stores the key node's J network-nearest POIs together with
// the guarantee radius dJ — the network distance of the J-th (farthest
// stored) POI, +Inf when every POI fits. Any POI absent from the entry
// therefore sits at network distance ≥ dJ from the key node, which is
// the triangle-inequality handle the hit path certifies exact results
// with (see Backend.cacheTop2).
//
// The cache is shared across workers and guarded by one mutex; the hot
// path holds it only for the map lookup and LRU bump, never during
// Dijkstra work.
type nbrCache struct {
	mu      sync.Mutex
	cap     int
	k       int
	entries map[int]*cacheEnt
	clock   uint64 // recency ticks, guarded by mu

	hits, misses, rejected uint64
}

// cacheEnt is one cached neighborhood: the key node's k network-nearest
// POIs (as ascending indices into Server.pois) and the guarantee radius.
type cacheEnt struct {
	pois []int32
	dj   float64
	all  bool // entry covers the entire POI set
	tick uint64
}

func newNbrCache(entries, k int) *nbrCache {
	if k <= 0 {
		k = DefaultCacheK
	}
	return &nbrCache{cap: entries, k: k, entries: make(map[int]*cacheEnt)}
}

// CacheStats reports the neighborhood cache counters: certified hits,
// misses (no entry for the key node), and rejections (entry present but
// the certification bound failed, falling back to the full ALT path).
// All zero when the cache is disabled.
func (b *Backend) CacheStats() (hits, misses, rejected uint64) {
	if b.cache == nil {
		return 0, 0, 0
	}
	b.cache.mu.Lock()
	defer b.cache.mu.Unlock()
	return b.cache.hits, b.cache.misses, b.cache.rejected
}

// get returns the entry for key (nil if absent), bumping its recency.
func (c *nbrCache) get(key int) *cacheEnt {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e != nil {
		c.clock++
		e.tick = c.clock
	}
	return e
}

// put inserts an entry for key, evicting the least recently used entry
// when the cache is full.
func (c *nbrCache) put(key int, e *cacheEnt) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok && len(c.entries) >= c.cap {
		lruKey, lruTick := -1, uint64(math.MaxUint64)
		for k, ent := range c.entries {
			if ent.tick < lruTick {
				lruKey, lruTick = k, ent.tick
			}
		}
		delete(c.entries, lruKey)
	}
	c.clock++
	e.tick = c.clock
	c.entries[key] = e
}

// cacheTop2 attempts the certified cached top-2: exact aggregates are
// computed (through the same resumable searches, hence bit-identical to
// the full scan's values) for the cached candidate POIs only, and the
// result is accepted iff every omitted POI provably aggregates worse
// than the found runner-up:
//
//	MAX: d(uᵢ,p) ≥ dJ − d(uᵢ,key)   ⇒ agg(p) ≥ dJ − minᵢ d(uᵢ,key)
//	SUM: Σᵢ d(uᵢ,p) ≥ m·dJ − Σᵢ d(uᵢ,key)
//
// so requiring second.Dist < bound makes the omission invisible to the
// oracle's selection scan. A failed certification counts as rejected
// and the caller falls back to the ALT ranking (byte-identical result
// either way). On a miss the entry for the key node is built afterwards
// by the caller via buildEntry.
func (b *Backend) cacheTop2(ns *netScratch, m int) (best, second Result, checked int, ok bool) {
	key := b.nearestToCentroid(ns, m)
	ent := b.cache.get(key)
	if ent == nil {
		// Build the neighborhood now so the next co-located group hits.
		b.cache.put(key, b.buildEntry(ns, key))
		b.cache.mu.Lock()
		b.cache.misses++
		b.cache.mu.Unlock()
		return Result{}, Result{}, 0, false
	}
	for _, j := range ent.pois {
		if !ns.done[j] {
			ns.exact[j] = b.exactAgg(ns, int(j), m)
			ns.done[j] = true
			checked++
		}
	}
	best, second = replayScan(b.s.pois, ns)
	if !ent.all {
		var bound float64
		if b.agg == Max {
			minD := math.Inf(1)
			for i := 0; i < m; i++ {
				if d := ns.searches[i].distTo(b.s, key); d < minD {
					minD = d
				}
			}
			bound = ent.dj - minD
		} else {
			var sumD float64
			for i := 0; i < m; i++ {
				sumD += ns.searches[i].distTo(b.s, key)
			}
			bound = float64(m)*ent.dj - sumD
		}
		if best.Node == -1 || !(second.Dist < bound) {
			b.cache.mu.Lock()
			b.cache.rejected++
			b.cache.mu.Unlock()
			return Result{}, Result{}, checked, false
		}
	}
	b.cache.mu.Lock()
	b.cache.hits++
	b.cache.mu.Unlock()
	return best, second, checked, true
}

// nearestToCentroid returns the road node nearest the members'
// Euclidean centroid — the cache key for this group constellation.
func (b *Backend) nearestToCentroid(ns *netScratch, m int) int {
	var cx, cy float64
	for i := 0; i < m; i++ {
		p := b.s.posPoint(ns.pos[i])
		cx += p.X
		cy += p.Y
	}
	inv := 1 / float64(m)
	return b.s.net.NearestNode(geom.Pt(cx*inv, cy*inv))
}

// buildEntry runs one truncated Dijkstra from the key node, collecting
// its k network-nearest POIs and the guarantee radius.
func (b *Backend) buildEntry(ns *netScratch, key int) *cacheEnt {
	var sr search
	sr.reset(b.s, NodePos(key))
	e := &cacheEnt{dj: math.Inf(1)}
	for len(e.pois) < b.cache.k {
		node, d, ok := sr.settleNext(b.s)
		if !ok {
			break
		}
		if j := b.poiIdx[node]; j >= 0 {
			e.pois = append(e.pois, j)
			e.dj = d
		}
	}
	if len(e.pois) >= len(b.s.pois) {
		e.all = true
	}
	if len(e.pois) < b.cache.k {
		// Exhausted the component: every reachable POI is stored, and
		// unreachable ones are at infinite distance anyway.
		e.all = len(e.pois) == len(b.s.pois)
		e.dj = math.Inf(1)
	}
	sort.Slice(e.pois, func(x, y int) bool { return e.pois[x] < e.pois[y] })
	return e
}
