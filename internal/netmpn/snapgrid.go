package netmpn

import (
	"math"

	"mpn/internal/geom"
	"mpn/internal/roadnet"
)

// snapGrid buckets the network's undirected edges into a uniform cell
// grid so Snap projects a point onto the few nearby edges instead of
// every edge in the network. Results are bit-identical to the exhaustive
// scan (see snapSlow): candidate edges carry their exhaustive-scan index,
// and ties on squared distance resolve to the lowest index, exactly the
// order the full scan would have kept.
type snapGrid struct {
	edges []gridEdge
	cells [][]int32 // cell (row-major) -> edge indices
	n     int       // cells per axis
	minX  float64
	minY  float64
	cell  float64 // cell side length
}

// gridEdge is one undirected edge with endpoints resolved, in the
// exhaustive scan's iteration order (a ascending, adjacency order).
type gridEdge struct {
	a, b   int32
	pa, pb geom.Point
}

func buildSnapGrid(net *roadnet.Network) *snapGrid {
	g := &snapGrid{}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for a := range net.Adj {
		pa := net.Nodes[a].P
		minX, maxX = math.Min(minX, pa.X), math.Max(maxX, pa.X)
		minY, maxY = math.Min(minY, pa.Y), math.Max(maxY, pa.Y)
		for _, e := range net.Adj[a] {
			if e.To < a {
				continue // each undirected edge once, as in the full scan
			}
			g.edges = append(g.edges, gridEdge{
				a: int32(a), b: int32(e.To),
				pa: pa, pb: net.Nodes[e.To].P,
			})
		}
	}
	n := int(math.Sqrt(float64(len(g.edges))))
	if n < 1 {
		n = 1
	}
	if n > 256 {
		n = 256
	}
	g.n = n
	g.minX, g.minY = minX, minY
	span := math.Max(maxX-minX, maxY-minY)
	if span <= 0 {
		span = 1
	}
	g.cell = span / float64(n)
	g.cells = make([][]int32, n*n)
	for i, e := range g.edges {
		x0, y0 := g.cellOf(math.Min(e.pa.X, e.pb.X), math.Min(e.pa.Y, e.pb.Y))
		x1, y1 := g.cellOf(math.Max(e.pa.X, e.pb.X), math.Max(e.pa.Y, e.pb.Y))
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				c := cy*n + cx
				g.cells[c] = append(g.cells[c], int32(i))
			}
		}
	}
	return g
}

func (g *snapGrid) cellOf(x, y float64) (cx, cy int) {
	cx = int((x - g.minX) / g.cell)
	cy = int((y - g.minY) / g.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= g.n {
		cx = g.n - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.n {
		cy = g.n - 1
	}
	return cx, cy
}

// project returns the squared distance from p to edge i and the clamped
// edge parameter, with the same floating-point operations as the
// exhaustive scan.
func (g *snapGrid) project(i int32, p geom.Point) (d2, t float64) {
	e := &g.edges[i]
	ab := e.pb.Sub(e.pa)
	den := ab.Dot(ab)
	if den > 0 {
		t = p.Sub(e.pa).Dot(ab) / den
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	return p.Dist2(e.pa.Add(ab.Scale(t))), t
}

// snap finds the network position nearest to p: the grid is searched in
// expanding Chebyshev rings around p's cell, stopping once no farther
// ring can hold a closer edge. Chebyshev cell distance lower-bounds
// Euclidean distance, so the cut is safe; the ≤ in the stop test keeps
// ring candidates that tie the current best, preserving the lowest-index
// tie-break of the exhaustive scan.
func (g *snapGrid) snap(p geom.Point) Position {
	if len(g.edges) == 0 {
		return Position{}
	}
	cx, cy := g.cellOf(p.X, p.Y)
	best := math.Inf(1)
	bestIdx := int32(-1)
	bestT := 0.0
	consider := func(c int) {
		for _, i := range g.cells[c] {
			d2, t := g.project(i, p)
			if d2 < best || (d2 == best && i < bestIdx) {
				best, bestIdx, bestT = d2, i, t
			}
		}
	}
	for ring := 0; ring < 2*g.n; ring++ {
		if bestIdx >= 0 {
			// Any cell at Chebyshev ring r is at least (r−1)·cell from p
			// (p lies somewhere inside its own cell).
			if lb := float64(ring-1) * g.cell; lb > 0 && lb*lb > best {
				break
			}
		}
		x0, x1 := cx-ring, cx+ring
		y0, y1 := cy-ring, cy+ring
		for y := y0; y <= y1; y++ {
			if y < 0 || y >= g.n {
				continue
			}
			for x := x0; x <= x1; x++ {
				if x < 0 || x >= g.n {
					continue
				}
				// Ring perimeter only: interior cells were prior rings.
				if ring > 0 && x != x0 && x != x1 && y != y0 && y != y1 {
					continue
				}
				consider(y*g.n + x)
			}
		}
	}
	e := &g.edges[bestIdx]
	return Position{A: int(e.a), B: int(e.b), T: bestT}
}
