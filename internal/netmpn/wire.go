package netmpn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"mpn/internal/core"
	"mpn/internal/geom"
)

// Region is the exported, self-contained form of a network range safe
// region: the covered road intervals flattened to Euclidean sub-segments.
// Unlike RangeRegion (whose containment test needs the road graph to
// interpret edge ids), a Region answers ContainsPoint from coordinates
// alone, so the same type serves as the planner's core.NetworkRegion
// payload AND as what a wire client decodes — one containment semantics
// on both ends of the protocol.
//
// A Region is immutable after construction; the planner aliases it
// freely across retained plans (kept/partial outcomes) and the epoch
// machinery relies on pointer identity for the fast path.
type Region struct {
	// Center is the Euclidean location of the region's network center
	// (the member's position when the region was planned).
	Center geom.Point
	// Radius is the network safe radius; +Inf marks the whole-network
	// region of a single-POI data set.
	Radius float64
	// Segs holds the covered sub-segments in a deterministic order
	// (ascending edge key, then position along the edge).
	Segs []Segment

	// cpos is the planner-side network position of the center; decoded
	// regions leave it zero (hasPos false). The incremental planner needs
	// it to measure a member's network drift from her retained center.
	cpos   Position
	hasPos bool
}

// Segment is one covered sub-segment of a road edge.
type Segment struct {
	A, B geom.Point
}

// containsEps is the Euclidean slack of the point-on-segment test: far
// above float error on unit-square coordinates (~1e-16), far below road
// spacing (~2.5e-2) — equivalent to the seed RangeRegion's fractional
// tolerance scaled to distance.
const containsEps = 1e-9

// ContainsPoint reports whether p lies on the covered road intervals
// (within containsEps). Whole-network regions contain every point.
func (r *Region) ContainsPoint(p geom.Point) bool {
	if math.IsInf(r.Radius, 1) {
		return true
	}
	e2 := containsEps * containsEps
	for _, s := range r.Segs {
		if distToSeg2(p, s.A, s.B) <= e2 {
			return true
		}
	}
	return false
}

// distToSeg2 is the squared Euclidean distance from p to segment ab.
func distToSeg2(p, a, b geom.Point) float64 {
	ab := b.Sub(a)
	den := ab.Dot(ab)
	if den == 0 {
		return p.Dist2(a)
	}
	t := p.Sub(a).Dot(ab) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist2(a.Add(ab.Scale(t)))
}

// EqualRegion reports structural equality (same center, radius, and
// covered segments). Used by the epoch machinery when pointer identity
// does not already answer.
func (r *Region) EqualRegion(other core.NetworkRegion) bool {
	o, ok := other.(*Region)
	if !ok {
		return false
	}
	if r == o {
		return true
	}
	if r.Center != o.Center || r.Radius != o.Radius || len(r.Segs) != len(o.Segs) {
		return false
	}
	for i := range r.Segs {
		if r.Segs[i] != o.Segs[i] {
			return false
		}
	}
	return true
}

// NumSegs returns how many covered sub-segments the region holds —
// observability for tests and communication accounting.
func (r *Region) NumSegs() int { return len(r.Segs) }

// netRegionTag is the wire type byte of a network range region,
// disjoint from 'C' (circle) and 'T' (tile set).
const netRegionTag = 'N'

// AppendEncode appends the wire form: tag 'N', center, radius, and the
// covered sub-segments, all little-endian float64s. The segment order is
// the deterministic construction order, so byte-identical regions encode
// byte-identically (the property the coordinator's epoch-keyed encoding
// cache certifies).
func (r *Region) AppendEncode(buf []byte) []byte {
	buf = append(buf, netRegionTag)
	buf = appendF64(buf, r.Center.X)
	buf = appendF64(buf, r.Center.Y)
	buf = appendF64(buf, r.Radius)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Segs)))
	for _, s := range r.Segs {
		buf = appendF64(buf, s.A.X)
		buf = appendF64(buf, s.A.Y)
		buf = appendF64(buf, s.B.X)
		buf = appendF64(buf, s.B.Y)
	}
	return buf
}

// WireSize returns the exact encoded length in bytes.
func (r *Region) WireSize() int { return 1 + 3*8 + 4 + 32*len(r.Segs) }

// ErrBadRegionEncoding reports a malformed network-region payload.
var ErrBadRegionEncoding = errors.New("netmpn: bad region encoding")

// DecodeRegion parses an AppendEncode payload. The decoded region
// answers ContainsPoint exactly as the encoder's did; the planner-side
// network position is not carried on the wire.
func DecodeRegion(data []byte) (*Region, error) {
	if len(data) < 1+3*8+4 || data[0] != netRegionTag {
		return nil, ErrBadRegionEncoding
	}
	r := &Region{
		Center: geom.Pt(f64At(data, 1), f64At(data, 9)),
		Radius: f64At(data, 17),
	}
	n := int(binary.LittleEndian.Uint32(data[25:29]))
	if len(data) != 29+32*n {
		return nil, fmt.Errorf("%w: %d segments in %d bytes", ErrBadRegionEncoding, n, len(data))
	}
	if n > 0 {
		r.Segs = make([]Segment, n)
		for i := range r.Segs {
			off := 29 + 32*i
			r.Segs[i] = Segment{
				A: geom.Pt(f64At(data, off), f64At(data, off+8)),
				B: geom.Pt(f64At(data, off+16), f64At(data, off+24)),
			}
		}
	}
	return r, nil
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func f64At(data []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
}

// exportRegion flattens a RangeRegion into its self-contained form. The
// segment order is deterministic: covered edges ascending by (smaller
// endpoint, larger endpoint), intervals in their normalized (sorted,
// merged) order, then any boundary nodes whose incident intervals
// degenerate to nothing, ascending by id.
func (s *Server) exportRegion(rr *RangeRegion, center geom.Point) *Region {
	out := &Region{
		Center: center,
		Radius: rr.Radius,
		cpos:   rr.Center,
		hasPos: true,
	}
	if math.IsInf(rr.Radius, 1) {
		return out // contains everything; no segment list needed
	}
	keys := make([][2]int, 0, len(rr.edges))
	for k := range rr.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		a, b := s.net.Nodes[k[0]].P, s.net.Nodes[k[1]].P
		for _, iv := range rr.edges[k] {
			out.Segs = append(out.Segs, Segment{A: lerp(a, b, iv.Lo), B: lerp(a, b, iv.Hi)})
		}
	}
	// A node at exactly Radius is covered but spans no interval on any
	// incident edge; keep it as a degenerate segment so containment at
	// the boundary matches RangeRegion's node test.
	var boundary []int
	for n, d := range rr.nodeDist {
		if d == rr.Radius {
			boundary = append(boundary, n)
		}
	}
	sort.Ints(boundary)
	for _, n := range boundary {
		p := s.net.Nodes[n].P
		out.Segs = append(out.Segs, Segment{A: p, B: p})
	}
	return out
}

func lerp(a, b geom.Point, t float64) geom.Point {
	return geom.Pt(a.X+(b.X-a.X)*t, a.Y+(b.Y-a.Y)*t)
}
