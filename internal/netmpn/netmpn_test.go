package netmpn

import (
	"math"
	"math/rand"
	"testing"

	"mpn/internal/geom"
	"mpn/internal/roadnet"
)

func testNet(t testing.TB) *roadnet.Network {
	t.Helper()
	net, err := roadnet.Generate(roadnet.Config{
		Rows: 12, Cols: 12, Jitter: 0.2, DropFrac: 0.08, Arterials: 6, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func testServer(t testing.TB, poiEvery int) *Server {
	t.Helper()
	net := testNet(t)
	var pois []int
	for n := 0; n < net.NumNodes(); n += poiEvery {
		pois = append(pois, n)
	}
	s, err := NewServer(net, pois)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewServerErrors(t *testing.T) {
	net := testNet(t)
	if _, err := NewServer(nil, []int{0}); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := NewServer(net, nil); err != ErrNoPOIs {
		t.Fatalf("want ErrNoPOIs got %v", err)
	}
	if _, err := NewServer(net, []int{-1}); err == nil {
		t.Fatal("out-of-range POI accepted")
	}
	// Duplicates collapse.
	s, err := NewServer(net, []int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.pois) != 2 {
		t.Fatalf("pois=%d want 2", len(s.pois))
	}
}

func TestSSSPMatchesShortestPath(t *testing.T) {
	s := testServer(t, 5)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		from := s.net.RandomNode(rng)
		to := s.net.RandomNode(rng)
		_, want, ok := s.net.ShortestPath(from, to)
		if !ok {
			t.Fatal("disconnected")
		}
		got := s.Dist(NodePos(from), to)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("Dist(%d,%d)=%v want %v", from, to, got, want)
		}
	}
}

func TestSSSPFromMidEdge(t *testing.T) {
	s := testServer(t, 5)
	// Take any edge and a position halfway along it.
	a := 0
	b := s.net.Adj[a][0].To
	l := s.EdgeLen(a, b)
	pos := Position{A: a, B: b, T: 0.5}
	d := s.sssp(pos)
	if math.Abs(d[a]-l/2) > 1e-9 || math.Abs(d[b]-l/2) > 1e-9 {
		t.Fatalf("mid-edge distances to endpoints: %v, %v want %v", d[a], d[b], l/2)
	}
}

func TestPlanOptimality(t *testing.T) {
	s := testServer(t, 4)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		users := []Position{
			NodePos(s.net.RandomNode(rng)),
			NodePos(s.net.RandomNode(rng)),
			NodePos(s.net.RandomNode(rng)),
		}
		for _, agg := range []Aggregate{Max, Sum} {
			res, regions, err := s.Plan(users, agg)
			if err != nil {
				t.Fatal(err)
			}
			if len(regions) != len(users) {
				t.Fatal("region count")
			}
			// Brute-force check of the optimum.
			dists := make([][]float64, len(users))
			for i, u := range users {
				dists[i] = s.sssp(u)
			}
			best := math.Inf(1)
			for _, p := range s.pois {
				var d float64
				if agg == Max {
					for i := range users {
						if v := dists[i][p]; v > d {
							d = v
						}
					}
				} else {
					for i := range users {
						d += dists[i][p]
					}
				}
				if d < best {
					best = d
				}
			}
			if math.Abs(res.Dist-best) > 1e-9 {
				t.Fatalf("%v: planned %v brute %v", agg, res.Dist, best)
			}
			// Every region contains its user.
			for i, r := range regions {
				if !r.Contains(users[i]) {
					t.Fatalf("region %d misses its user %v", i, users[i])
				}
			}
		}
	}
}

func TestPlanErrors(t *testing.T) {
	s := testServer(t, 5)
	if _, _, err := s.Plan(nil, Max); err != ErrNoUsers {
		t.Fatalf("want ErrNoUsers got %v", err)
	}
	if _, _, err := s.Plan([]Position{{A: -1, B: 0}}, Max); err != ErrBadPos {
		t.Fatalf("want ErrBadPos got %v", err)
	}
	if _, _, err := s.Plan([]Position{{A: 0, B: 1, T: 2}}, Max); err == nil {
		t.Fatal("T>1 accepted")
	}
	// Edge that does not exist.
	far := s.net.NumNodes() - 1
	if s.EdgeLen(0, far) == 0 {
		if _, _, err := s.Plan([]Position{{A: 0, B: far, T: 0.5}}, Max); err == nil {
			t.Fatal("nonexistent edge accepted")
		}
	}
}

// Theorem 1 soundness in network space: while every user stays inside her
// range region, the planned POI remains optimal.
func TestRegionSoundness(t *testing.T) {
	s := testServer(t, 4)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		users := []Position{
			NodePos(s.net.RandomNode(rng)),
			NodePos(s.net.RandomNode(rng)),
		}
		res, regions, err := s.Plan(users, Max)
		if err != nil {
			t.Fatal(err)
		}
		// Sample in-region node positions for both users and re-check the
		// optimum.
		for sample := 0; sample < 12; sample++ {
			inst := make([]Position, len(users))
			for i, r := range regions {
				inst[i] = sampleRegionNode(r, users[i], rng)
			}
			dists := make([][]float64, len(inst))
			for i, u := range inst {
				dists[i] = s.sssp(u)
			}
			dOf := func(p int) float64 {
				var d float64
				for i := range inst {
					if v := dists[i][p]; v > d {
						d = v
					}
				}
				return d
			}
			planned := dOf(res.Node)
			for _, p := range s.pois {
				if dOf(p) < planned-1e-9 {
					t.Fatalf("in-region instance favors POI %d over planned %d", p, res.Node)
				}
			}
		}
	}
}

// sampleRegionNode picks a covered node of the region (falling back to the
// user's own position).
func sampleRegionNode(r RangeRegion, fallback Position, rng *rand.Rand) Position {
	if len(r.nodeDist) == 0 {
		return fallback
	}
	k := rng.Intn(len(r.nodeDist))
	for n := range r.nodeDist {
		if k == 0 {
			return NodePos(n)
		}
		k--
	}
	return fallback
}

func TestRangeRegionGeometry(t *testing.T) {
	s := testServer(t, 5)
	center := NodePos(7)
	r := s.rangeRegion(center, 0.12)
	if !r.Contains(center) {
		t.Fatal("region misses its center")
	}
	if r.NumEdges() == 0 {
		t.Fatal("no edges covered")
	}
	// Every covered node must be within the radius; nearby uncovered
	// nodes must be beyond it.
	d := s.sssp(center)
	for n, dn := range r.nodeDist {
		if math.Abs(dn-d[n]) > 1e-9 {
			t.Fatalf("node %d recorded dist %v true %v", n, dn, d[n])
		}
		if dn > r.Radius+1e-9 {
			t.Fatalf("node %d at %v beyond radius %v", n, dn, r.Radius)
		}
	}
	for n := 0; n < s.net.NumNodes(); n++ {
		if _, ok := r.nodeDist[n]; !ok && d[n] <= r.Radius-1e-9 {
			t.Fatalf("node %d within radius but not covered", n)
		}
	}
	if r.EncodedValues() < 4 {
		t.Fatal("EncodedValues too small")
	}
}

func TestRangeRegionMidEdgeCenter(t *testing.T) {
	s := testServer(t, 5)
	a := 3
	b := s.net.Adj[3][0].To
	center := Position{A: a, B: b, T: 0.4}
	l := s.EdgeLen(a, b)
	// A radius smaller than the distance to either endpoint: region is a
	// sub-interval of the single edge.
	radius := 0.2 * l * math.Min(0.4, 0.6)
	r := s.rangeRegion(center, radius)
	if !r.Contains(center) {
		t.Fatal("tiny region misses center")
	}
	if r.Contains(NodePos(a)) || r.Contains(NodePos(b)) {
		t.Fatal("tiny region should not reach the edge endpoints")
	}
	// Moving along the edge within the radius stays inside.
	inside := Position{A: a, B: b, T: 0.4 + 0.5*radius/l}
	if !r.Contains(inside) {
		t.Fatal("in-radius point on center edge not covered")
	}
	outside := Position{A: a, B: b, T: 0.4 + 2*radius/l}
	if r.Contains(outside) {
		t.Fatal("out-of-radius point covered")
	}
}

func TestRangeRegionInfinite(t *testing.T) {
	net := testNet(t)
	s, err := NewServer(net, []int{0}) // single POI ⇒ infinite radius
	if err != nil {
		t.Fatal(err)
	}
	_, regions, err := s.Plan([]Position{NodePos(5), NodePos(9)}, Max)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regions {
		if !math.IsInf(r.Radius, 1) {
			t.Fatalf("single-POI radius %v", r.Radius)
		}
		// Any position is inside.
		if !r.Contains(NodePos(net.NumNodes() - 1)) {
			t.Fatal("infinite region misses a node")
		}
	}
}

func TestWalker(t *testing.T) {
	net := testNet(t)
	w, err := NewWalker(net, 0.004, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := w.Pos()
	s := testServer(t, 5)
	for i := 0; i < 500; i++ {
		cur := w.Step()
		if err := s.validate(cur); err != nil {
			t.Fatalf("step %d: invalid position %v: %v", i, cur, err)
		}
		// Per-step Euclidean displacement cannot exceed the walk speed.
		pp := euclid(net, prev)
		cp := euclid(net, cur)
		if d := pp.Dist(cp); d > 0.004+1e-9 {
			t.Fatalf("step %d moved %v", i, d)
		}
		prev = cur
	}
	if _, err := NewWalker(nil, 0.01, 1); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := NewWalker(net, 0, 1); err == nil {
		t.Fatal("zero speed accepted")
	}
}

func euclid(net *roadnet.Network, p Position) geom.Point {
	a := net.Nodes[p.A].P
	if p.A == p.B {
		return a
	}
	b := net.Nodes[p.B].P
	return geom.Pt(a.X+p.T*(b.X-a.X), a.Y+p.T*(b.Y-a.Y))
}

func TestSimulate(t *testing.T) {
	s := testServer(t, 4)
	met, err := Simulate(s, 3, 400, 0.002, Max, 9)
	if err != nil {
		t.Fatal(err)
	}
	if met.Timestamps != 400 || met.Updates < 1 {
		t.Fatalf("metrics %+v", met)
	}
	// Safe regions must beat per-tick polling.
	if met.Updates >= 400 {
		t.Fatalf("regions saved nothing: %d updates", met.Updates)
	}
	if met.UpdateFrequency() <= 0 {
		t.Fatal("update frequency")
	}
	if _, err := Simulate(s, 0, 10, 0.01, Max, 1); err == nil {
		t.Fatal("m=0 accepted")
	}
}

func TestSimulateSum(t *testing.T) {
	s := testServer(t, 4)
	met, err := Simulate(s, 2, 300, 0.002, Sum, 11)
	if err != nil {
		t.Fatal(err)
	}
	if met.Updates < 1 || met.Updates >= 300 {
		t.Fatalf("sum simulation updates=%d", met.Updates)
	}
}

func TestPositionString(t *testing.T) {
	if NodePos(3).String() != "node(3)" {
		t.Fatal("node string")
	}
	if (Position{A: 1, B: 2, T: 0.5}).String() == "" {
		t.Fatal("edge string")
	}
	if !NodePos(1).IsNode() || (Position{A: 1, B: 2, T: 0.5}).IsNode() {
		t.Fatal("IsNode")
	}
}

func BenchmarkNetPlan(b *testing.B) {
	s := testServer(b, 4)
	rng := rand.New(rand.NewSource(5))
	users := []Position{
		NodePos(s.net.RandomNode(rng)),
		NodePos(s.net.RandomNode(rng)),
		NodePos(s.net.RandomNode(rng)),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Plan(users, Max); err != nil {
			b.Fatal(err)
		}
	}
}
