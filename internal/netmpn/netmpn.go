// Package netmpn extends Meeting Point Notification to road-network space
// — the extension sketched in the paper's conclusion (Section 8): "For
// Circle, we may replace a circular region by a range search region over
// road segments."
//
// Users and POIs live on a road network; all distances are shortest-path
// lengths. Because the network distance is a metric, Theorem 1 carries
// over verbatim: with the best two meeting points p° and p² under the
// aggregate network distance, every user may roam within network radius
//
//	rmax = (‖p²,U‖ − ‖p°,U‖) / 2        (MAX)
//	rmax = (‖p²,U‖ − ‖p°,U‖) / (2m)     (SUM)
//
// of her current position without invalidating p°. The safe region is the
// network range region: the set of road-segment intervals reachable
// within rmax, computed by a truncated Dijkstra expansion.
package netmpn

import (
	"errors"
	"fmt"
	"math"

	"mpn/internal/heapq"
	"mpn/internal/roadnet"
)

// Position is a location on the network: a point on the edge from node A
// to node B at fraction T ∈ [0,1] from A. A node itself is represented
// with B == A and T == 0.
type Position struct {
	A, B int
	T    float64
}

// NodePos returns the Position of a network node.
func NodePos(node int) Position { return Position{A: node, B: node} }

// IsNode reports whether the position sits exactly on a node.
func (p Position) IsNode() bool { return p.A == p.B || p.T == 0 || p.T == 1 }

// String implements fmt.Stringer.
func (p Position) String() string {
	if p.A == p.B {
		return fmt.Sprintf("node(%d)", p.A)
	}
	return fmt.Sprintf("edge(%d->%d @%.3f)", p.A, p.B, p.T)
}

// Aggregate mirrors gnn.Aggregate for network distances.
type Aggregate int

const (
	// Max minimizes the maximum network distance.
	Max Aggregate = iota
	// Sum minimizes the total network distance.
	Sum
)

// Server answers network MPN queries: it owns the road network and the POI
// placement (a subset of nodes).
type Server struct {
	net     *roadnet.Network
	pois    []int // node ids hosting POIs
	isPOI   []bool
	edgeLen map[[2]int]float64
}

// Errors returned by the package.
var (
	ErrNoPOIs      = errors.New("netmpn: no POIs")
	ErrNoUsers     = errors.New("netmpn: no users")
	ErrBadPos      = errors.New("netmpn: invalid position")
	ErrUnreachable = errors.New("netmpn: POIs unreachable from some user")
)

// NewServer builds a network MPN server. poiNodes are the node ids that
// host POIs; duplicates are ignored.
func NewServer(net *roadnet.Network, poiNodes []int) (*Server, error) {
	if net == nil || net.NumNodes() == 0 {
		return nil, errors.New("netmpn: empty network")
	}
	s := &Server{
		net:     net,
		isPOI:   make([]bool, net.NumNodes()),
		edgeLen: map[[2]int]float64{},
	}
	for _, n := range poiNodes {
		if n < 0 || n >= net.NumNodes() {
			return nil, fmt.Errorf("netmpn: POI node %d out of range", n)
		}
		if !s.isPOI[n] {
			s.isPOI[n] = true
			s.pois = append(s.pois, n)
		}
	}
	if len(s.pois) == 0 {
		return nil, ErrNoPOIs
	}
	for a := range net.Adj {
		for _, e := range net.Adj[a] {
			s.edgeLen[edgeKey(a, e.To)] = e.Len
		}
	}
	return s, nil
}

func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// EdgeLen returns the length of the edge between nodes a and b (0 if no
// such edge).
func (s *Server) EdgeLen(a, b int) float64 { return s.edgeLen[edgeKey(a, b)] }

// validate checks that a position references an existing edge or node.
func (s *Server) validate(p Position) error {
	if p.A < 0 || p.A >= s.net.NumNodes() || p.B < 0 || p.B >= s.net.NumNodes() {
		return ErrBadPos
	}
	if p.A == p.B {
		return nil
	}
	if p.T < 0 || p.T > 1 {
		return ErrBadPos
	}
	if _, ok := s.edgeLen[edgeKey(p.A, p.B)]; !ok {
		return ErrBadPos
	}
	return nil
}

// sssp runs Dijkstra from a position: distances to every node, seeded with
// the two partial-edge offsets.
func (s *Server) sssp(from Position) []float64 {
	dist := make([]float64, s.net.NumNodes())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	var q []nodeEntry
	push := func(n int, d float64) {
		if d < dist[n] {
			dist[n] = d
			q = heapq.Push(q, nodeEntry{node: n, dist: d})
		}
	}
	if from.A == from.B {
		push(from.A, 0)
	} else {
		l := s.edgeLen[edgeKey(from.A, from.B)]
		push(from.A, from.T*l)
		push(from.B, (1-from.T)*l)
	}
	for len(q) > 0 {
		var e nodeEntry
		e, q = heapq.Pop(q)
		if e.dist > dist[e.node] {
			continue
		}
		for _, ed := range s.net.Adj[e.node] {
			push(ed.To, e.dist+ed.Len)
		}
	}
	return dist
}

// Dist returns the network distance from a position to a node.
func (s *Server) Dist(from Position, node int) float64 {
	return s.sssp(from)[node]
}

// Result is the chosen meeting POI and its aggregate network distance.
type Result struct {
	Node int
	Dist float64
}

// Plan computes the optimal meeting POI and one network range safe region
// per user. The same Theorem 1/5 radius argument applies because the
// network distance is a metric.
//
// Plan pays one full single-source Dijkstra per member and scans every
// POI — the naive baseline. It is retained as the differential oracle
// for the landmark-accelerated Backend (whose plans are byte-identical
// to Plan's on every input, see backend.go) and as the net_plan_naive
// benchmark series the speedup gate compares against.
func (s *Server) Plan(users []Position, agg Aggregate) (Result, []RangeRegion, error) {
	if len(users) == 0 {
		return Result{}, nil, ErrNoUsers
	}
	for _, u := range users {
		if err := s.validate(u); err != nil {
			return Result{}, nil, err
		}
	}
	// One SSSP per user; aggregate per POI.
	dists := make([][]float64, len(users))
	for i, u := range users {
		dists[i] = s.sssp(u)
	}
	best, second := Result{Node: -1, Dist: math.Inf(1)}, Result{Node: -1, Dist: math.Inf(1)}
	for _, p := range s.pois {
		var d float64
		if agg == Max {
			for i := range users {
				if v := dists[i][p]; v > d {
					d = v
				}
			}
		} else {
			for i := range users {
				d += dists[i][p]
			}
		}
		switch {
		case d < best.Dist:
			second = best
			best = Result{Node: p, Dist: d}
		case d < second.Dist:
			second = Result{Node: p, Dist: d}
		}
	}
	if best.Node == -1 || math.IsInf(best.Dist, 1) {
		return Result{}, nil, ErrUnreachable
	}

	var rmax float64
	if second.Node == -1 {
		rmax = math.Inf(1) // single POI: never displaced
	} else {
		gap := second.Dist - best.Dist
		if gap < 0 {
			gap = 0
		}
		if agg == Max {
			rmax = gap / 2
		} else {
			rmax = gap / (2 * float64(len(users)))
		}
	}

	regions := make([]RangeRegion, len(users))
	for i, u := range users {
		regions[i] = s.rangeRegion(u, rmax)
	}
	return best, regions, nil
}

// nodeEntry is one Dijkstra frontier entry; the queues are plain
// []nodeEntry slices driven by the generic internal/heapq primitives, so
// pushes and pops move typed values with no interface boxing (the seed
// implementation went through container/heap, which allocated one
// interface{} conversion per operation on the hottest loop of the
// package).
type nodeEntry struct {
	node int
	dist float64
}

// Less orders the frontier by tentative distance (heapq.Ordered).
func (e nodeEntry) Less(o nodeEntry) bool { return e.dist < o.dist }
