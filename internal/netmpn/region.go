package netmpn

import (
	"math"
	"sort"

	"mpn/internal/heapq"
)

// RangeRegion is a network range safe region: every point of the road
// network within network distance Radius of Center. It stores the covered
// interval of each touched edge so the client-side Contains test is a map
// lookup, matching the paper's "range search region over road segments".
type RangeRegion struct {
	Center Position
	Radius float64
	// nodeDist holds the distance from Center to each node reached within
	// Radius.
	nodeDist map[int]float64
	// edges maps an undirected edge to the covered sub-intervals,
	// expressed as fractions along the edge from the smaller-id endpoint.
	edges map[[2]int][]interval
}

// interval is a covered [Lo,Hi] fraction range of an edge.
type interval struct {
	Lo, Hi float64
}

// rangeRegion runs a truncated Dijkstra from center and records covered
// edge intervals.
func (s *Server) rangeRegion(center Position, radius float64) RangeRegion {
	r := RangeRegion{
		Center:   center,
		Radius:   radius,
		nodeDist: map[int]float64{},
		edges:    map[[2]int][]interval{},
	}
	if math.IsInf(radius, 1) {
		// Whole-network region: mark every edge fully covered.
		for a := range s.net.Adj {
			r.nodeDist[a] = 0
			for _, e := range s.net.Adj[a] {
				r.edges[edgeKey(a, e.To)] = []interval{{0, 1}}
			}
		}
		return r
	}

	// Truncated Dijkstra over nodes.
	dist := make(map[int]float64)
	var q []nodeEntry
	push := func(n int, d float64) {
		if d > radius {
			return
		}
		if old, ok := dist[n]; !ok || d < old {
			dist[n] = d
			q = heapq.Push(q, nodeEntry{node: n, dist: d})
		}
	}
	if center.A == center.B {
		push(center.A, 0)
	} else {
		l := s.edgeLen[edgeKey(center.A, center.B)]
		push(center.A, center.T*l)
		push(center.B, (1-center.T)*l)
		// The center's own edge is partially covered around T even when
		// the endpoints are out of range.
		r.coverAround(center, l, radius)
	}
	for len(q) > 0 {
		var e nodeEntry
		e, q = heapq.Pop(q)
		if d, ok := dist[e.node]; !ok || e.dist > d {
			continue
		}
		for _, ed := range s.net.Adj[e.node] {
			push(ed.To, e.dist+ed.Len)
		}
	}
	r.nodeDist = dist

	// Convert node distances to per-edge covered intervals: from endpoint
	// a, the edge a→b is covered for the first (radius − dist[a]) length.
	for a, da := range dist {
		for _, ed := range s.net.Adj[a] {
			key := edgeKey(a, ed.To)
			if ed.Len == 0 {
				r.addInterval(key, interval{0, 1})
				continue
			}
			reach := (radius - da) / ed.Len
			if reach <= 0 {
				continue
			}
			if reach > 1 {
				reach = 1
			}
			if a < ed.To {
				r.addInterval(key, interval{0, reach})
			} else {
				r.addInterval(key, interval{1 - reach, 1})
			}
		}
	}
	r.normalize()
	return r
}

// coverAround covers the center's own edge for radius on both sides of T.
func (r *RangeRegion) coverAround(center Position, edgeLen, radius float64) {
	if edgeLen == 0 {
		r.addInterval(edgeKey(center.A, center.B), interval{0, 1})
		return
	}
	t := center.T
	if center.A > center.B {
		t = 1 - t // normalize to the smaller-id endpoint
	}
	span := radius / edgeLen
	lo, hi := t-span, t+span
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	if hi > lo {
		r.addInterval(edgeKey(center.A, center.B), interval{lo, hi})
	} else {
		// Zero radius still covers the exact point.
		r.addInterval(edgeKey(center.A, center.B), interval{t, t})
	}
}

func (r *RangeRegion) addInterval(key [2]int, iv interval) {
	r.edges[key] = append(r.edges[key], iv)
}

// normalize merges overlapping intervals per edge.
func (r *RangeRegion) normalize() {
	for key, ivs := range r.edges {
		if len(ivs) <= 1 {
			continue
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].Lo < ivs[j].Lo })
		merged := ivs[:1]
		for _, iv := range ivs[1:] {
			last := &merged[len(merged)-1]
			if iv.Lo <= last.Hi+1e-12 {
				if iv.Hi > last.Hi {
					last.Hi = iv.Hi
				}
			} else {
				merged = append(merged, iv)
			}
		}
		r.edges[key] = merged
	}
}

// Contains reports whether a position lies inside the region.
func (r RangeRegion) Contains(p Position) bool {
	if p.A == p.B {
		_, ok := r.nodeDist[p.A]
		if ok {
			return true
		}
		// A node can also be covered as an interval endpoint.
		return r.coveredAt(p.A, p.B, 0)
	}
	return r.coveredAt(p.A, p.B, p.T)
}

func (r RangeRegion) coveredAt(a, b int, t float64) bool {
	if a > b {
		a, b = b, a
		t = 1 - t
	}
	for _, iv := range r.edges[[2]int{a, b}] {
		if t >= iv.Lo-1e-12 && t <= iv.Hi+1e-12 {
			return true
		}
	}
	return false
}

// NumEdges returns how many road segments the region touches.
func (r RangeRegion) NumEdges() int { return len(r.edges) }

// EncodedValues estimates the wire cost in double-precision values: two
// per covered interval plus the center and radius. Used by communication
// accounting.
func (r RangeRegion) EncodedValues() int {
	n := 4 // center edge ids + T + radius
	for _, ivs := range r.edges {
		n += 2 * len(ivs)
	}
	return n
}
