// Package alt builds a landmark overlay (the "ALT" preprocessing of
// Goldberg and Harrelson: A*, Landmarks, Triangle inequality) over a road
// network. A handful of landmarks L are chosen by farthest-point
// selection and a full shortest-path tree is computed from each once, at
// build time. The triangle inequality then gives, for any two nodes u and
// v, the constant-time lower bound
//
//	d(u,v) ≥ max_L |d(L,u) − d(L,v)|
//
// without touching the graph. The network planner uses these bounds to
// rank meeting-POI candidates before paying for exact distances, and the
// network neighborhood cache uses them to certify cached candidate sets —
// the role the R-tree's MinDist bounds play for the Euclidean stack.
package alt

import (
	"fmt"
	"math"

	"mpn/internal/heapq"
	"mpn/internal/roadnet"
)

// DefaultLandmarks is the landmark count used when a caller passes 0:
// enough for tight bounds on city-scale grids while keeping the overlay
// a few hundred KB.
const DefaultLandmarks = 8

// Index is an immutable landmark distance overlay. Safe for concurrent
// use once built.
type Index struct {
	landmarks []int
	// vec holds the landmark distance vectors in node-major layout:
	// vec[node*L+l] = d(landmark l, node), so one node's vector is
	// contiguous and a LowerBound call walks two cache lines.
	vec []float64
	l   int
}

// Build computes the overlay: numLandmarks shortest-path trees over net
// (0 selects DefaultLandmarks, capped at the node count). Selection is
// farthest-point: the first landmark is the node farthest from node 0,
// each next one maximizes the minimum distance to those already chosen —
// pushing landmarks to the periphery, where triangle bounds are tightest.
func Build(net *roadnet.Network, numLandmarks int) (*Index, error) {
	if net == nil || net.NumNodes() == 0 {
		return nil, fmt.Errorf("alt: empty network")
	}
	if numLandmarks <= 0 {
		numLandmarks = DefaultLandmarks
	}
	n := net.NumNodes()
	if numLandmarks > n {
		numLandmarks = n
	}

	ix := &Index{l: numLandmarks, vec: make([]float64, n*numLandmarks)}
	minDist := make([]float64, n) // distance to nearest chosen landmark
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	dist := make([]float64, n)
	var q []spEntry

	// Seed selection from node 0's tree without recording it as a
	// landmark: its farthest node becomes landmark 0.
	sssp(net, 0, dist, &q)
	next := farthest(dist)
	for l := 0; l < numLandmarks; l++ {
		ix.landmarks = append(ix.landmarks, next)
		sssp(net, next, dist, &q)
		for v := 0; v < n; v++ {
			ix.vec[v*numLandmarks+l] = dist[v]
			if dist[v] < minDist[v] {
				minDist[v] = dist[v]
			}
		}
		next = farthest(minDist)
	}
	return ix, nil
}

// farthest returns the index of the maximum finite entry (0 if none).
func farthest(dist []float64) int {
	best, bestD := 0, -1.0
	for i, d := range dist {
		if !math.IsInf(d, 1) && d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// spEntry is the Dijkstra priority-queue element for heapq.
type spEntry struct {
	node int
	dist float64
}

func (e spEntry) Less(o spEntry) bool { return e.dist < o.dist }

// sssp fills dist with single-source shortest path lengths from src.
func sssp(net *roadnet.Network, src int, dist []float64, q *[]spEntry) {
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	heap := append((*q)[:0], spEntry{node: src})
	for len(heap) > 0 {
		var e spEntry
		e, heap = heapq.Pop(heap)
		if e.dist > dist[e.node] {
			continue
		}
		for _, ed := range net.Adj[e.node] {
			if nd := e.dist + ed.Len; nd < dist[ed.To] {
				dist[ed.To] = nd
				heap = heapq.Push(heap, spEntry{node: ed.To, dist: nd})
			}
		}
	}
	*q = heap
}

// NumLandmarks returns the landmark count.
func (ix *Index) NumLandmarks() int { return ix.l }

// Landmarks returns the chosen landmark node ids (read-only).
func (ix *Index) Landmarks() []int { return ix.landmarks }

// LowerBound returns max_L |d(L,u) − d(L,v)|, a lower bound on the
// network distance between nodes u and v. Non-finite landmark distances
// (unreachable nodes on a disconnected input) contribute nothing.
func (ix *Index) LowerBound(u, v int) float64 {
	lu := ix.vec[u*ix.l : u*ix.l+ix.l]
	lv := ix.vec[v*ix.l : v*ix.l+ix.l]
	bound := 0.0
	for i, du := range lu {
		d := du - lv[i]
		if d < 0 {
			d = -d
		}
		// A NaN (Inf−Inf) or +Inf difference carries no information.
		if d > bound && !math.IsInf(d, 1) && !math.IsNaN(d) {
			bound = d
		}
	}
	return bound
}

// Vec returns node's landmark distance vector (read-only, length
// NumLandmarks). Callers that bound many pairs against one fixed node
// fetch its vector once and use BoundTo.
func (ix *Index) Vec(node int) []float64 {
	return ix.vec[node*ix.l : node*ix.l+ix.l]
}

// BoundTo is LowerBound with u's vector pre-fetched via Vec.
func (ix *Index) BoundTo(uvec []float64, v int) float64 {
	lv := ix.vec[v*ix.l : v*ix.l+ix.l]
	bound := 0.0
	for i, du := range uvec {
		d := du - lv[i]
		if d < 0 {
			d = -d
		}
		if d > bound && !math.IsInf(d, 1) && !math.IsNaN(d) {
			bound = d
		}
	}
	return bound
}
