package alt

import (
	"math"
	"math/rand"
	"testing"

	"mpn/internal/roadnet"
)

func testNet(t testing.TB) *roadnet.Network {
	t.Helper()
	net, err := roadnet.Generate(roadnet.Config{
		Rows: 14, Cols: 14, Jitter: 0.25, DropFrac: 0.1, Arterials: 8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, 4); err == nil {
		t.Fatal("nil network accepted")
	}
}

func TestLandmarkCountCaps(t *testing.T) {
	net := testNet(t)
	ix, err := Build(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumLandmarks() != DefaultLandmarks {
		t.Fatalf("landmarks=%d want %d", ix.NumLandmarks(), DefaultLandmarks)
	}
	ix, err = Build(net, net.NumNodes()+50)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumLandmarks() != net.NumNodes() {
		t.Fatalf("landmark count not capped: %d", ix.NumLandmarks())
	}
}

func TestLandmarksDistinct(t *testing.T) {
	net := testNet(t)
	ix, err := Build(net, 6)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range ix.Landmarks() {
		if l < 0 || l >= net.NumNodes() {
			t.Fatalf("landmark %d out of range", l)
		}
		if seen[l] {
			t.Fatalf("landmark %d chosen twice", l)
		}
		seen[l] = true
	}
}

// The triangle-inequality contract: every lower bound is ≤ the true
// shortest-path distance, and the bound between a node and itself is 0.
func TestLowerBoundSound(t *testing.T) {
	net := testNet(t)
	ix, err := Build(net, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		u, v := net.RandomNode(rng), net.RandomNode(rng)
		_, want, ok := net.ShortestPath(u, v)
		if !ok {
			t.Fatal("disconnected network")
		}
		lb := ix.LowerBound(u, v)
		if lb > want+1e-9 {
			t.Fatalf("LowerBound(%d,%d)=%v exceeds true distance %v", u, v, lb, want)
		}
		if bt := ix.BoundTo(ix.Vec(u), v); bt != lb {
			t.Fatalf("BoundTo disagrees with LowerBound: %v vs %v", bt, lb)
		}
	}
	if lb := ix.LowerBound(3, 3); lb != 0 {
		t.Fatalf("self bound %v", lb)
	}
}

// Landmark distances must be exact shortest-path lengths: the bound
// from a landmark to any node is tight.
func TestBoundTightAtLandmarks(t *testing.T) {
	net := testNet(t)
	ix, err := Build(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for _, l := range ix.Landmarks() {
		for trial := 0; trial < 10; trial++ {
			v := net.RandomNode(rng)
			_, want, ok := net.ShortestPath(l, v)
			if !ok {
				t.Fatal("disconnected")
			}
			if lb := ix.LowerBound(l, v); math.Abs(lb-want) > 1e-9 {
				t.Fatalf("bound from landmark %d to %d = %v want %v", l, v, lb, want)
			}
		}
	}
}
