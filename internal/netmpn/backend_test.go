package netmpn

import (
	"math"
	"math/rand"
	"testing"

	"mpn/internal/core"
	"mpn/internal/geom"
)

func testBackend(t testing.TB, poiEvery int, cfg BackendConfig) *Backend {
	t.Helper()
	net := testNet(t)
	var pois []int
	for n := 0; n < net.NumNodes(); n += poiEvery {
		pois = append(pois, n)
	}
	b, err := NewBackend(net, pois, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sameResult(t *testing.T, tag string, gotNode int, gotDist float64, want Result) {
	t.Helper()
	if gotNode != want.Node {
		t.Fatalf("%s: best node %d, oracle %d", tag, gotNode, want.Node)
	}
	if math.Float64bits(gotDist) != math.Float64bits(want.Dist) {
		t.Fatalf("%s: best dist %v, oracle %v (not bit-identical)", tag, gotDist, want.Dist)
	}
}

func sameRegions(t *testing.T, tag string, got []core.SafeRegion, oracle []RangeRegion, s *Server) {
	t.Helper()
	if len(got) != len(oracle) {
		t.Fatalf("%s: %d regions, oracle %d", tag, len(got), len(oracle))
	}
	for i := range got {
		if got[i].Kind != core.KindNetRange {
			t.Fatalf("%s: region %d kind %v", tag, i, got[i].Kind)
		}
		nr, ok := got[i].Net.(*Region)
		if !ok {
			t.Fatalf("%s: region %d payload %T", tag, i, got[i].Net)
		}
		want := s.exportRegion(&oracle[i], s.posPoint(oracle[i].Center))
		if !nr.EqualRegion(want) {
			t.Fatalf("%s: region %d differs from oracle export (radius %v vs %v, %d vs %d segs)",
				tag, i, nr.Radius, want.Radius, len(nr.Segs), len(want.Segs))
		}
	}
}

// TestBackendMatchesOracle is the ALT correctness fence: across random
// groups, sizes, and both aggregates, the landmark-accelerated plan must
// be byte-identical to the naive full-Dijkstra Server.Plan — same best
// POI, bit-identical aggregate distance, equal safe regions.
func TestBackendMatchesOracle(t *testing.T) {
	for _, agg := range []Aggregate{Max, Sum} {
		b := testBackend(t, 9, BackendConfig{Aggregate: agg})
		ws := core.NewWorkspace()
		rng := rand.New(rand.NewSource(7 + int64(agg)))
		for trial := 0; trial < 60; trial++ {
			m := 1 + rng.Intn(5)
			users := make([]geom.Point, m)
			pos := make([]Position, m)
			for i := range users {
				users[i] = geom.Pt(rng.Float64(), rng.Float64())
				pos[i] = b.Snap(users[i])
			}
			wantBest, wantRegs, err := b.Server().Plan(pos, agg)
			plan, out, gotErr := b.PlanNet(ws, core.PlanRequest{Kind: core.KindNetRange, Users: users})
			if (err != nil) != (gotErr != nil) {
				t.Fatalf("trial %d: oracle err %v, backend err %v", trial, err, gotErr)
			}
			if err != nil {
				continue
			}
			if out != core.IncFull {
				t.Fatalf("trial %d: stateless plan reported %v", trial, out)
			}
			sameResult(t, "plan", plan.Best.Item.ID, plan.Best.Dist, wantBest)
			sameRegions(t, "plan", plan.Regions, wantRegs, b.Server())
			if plan.Stats.CandidatesChecked >= len(b.Server().pois) && len(b.Server().pois) > 4 {
				t.Fatalf("trial %d: ALT pruned nothing (%d of %d candidates examined)",
					trial, plan.Stats.CandidatesChecked, len(b.Server().pois))
			}
		}
	}
}

// TestBackendSinglePOI covers the single-POI degenerate case: infinite
// radius, whole-network regions, kept forever.
func TestBackendSinglePOI(t *testing.T) {
	net := testNet(t)
	b, err := NewBackend(net, []int{5}, BackendConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ws := core.NewWorkspace()
	var st core.PlanState
	users := []geom.Point{geom.Pt(0.1, 0.1), geom.Pt(0.9, 0.8)}
	plan, _, err := b.PlanNet(ws, core.PlanRequest{Kind: core.KindNetRange, Users: users, State: &st})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(plan.Regions[0].Net.(*Region).Radius, 1) {
		t.Fatalf("single POI radius %v, want +Inf", plan.Regions[0].Net.(*Region).Radius)
	}
	users2 := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.2, 0.9)}
	_, out, err := b.PlanNet(ws, core.PlanRequest{Kind: core.KindNetRange, Users: users2, State: &st})
	if err != nil {
		t.Fatal(err)
	}
	if out != core.IncKept {
		t.Fatalf("single-POI update outcome %v, want kept", out)
	}
}

// TestBackendIncSound drives a group of network walkers through many
// update rounds against the incremental path and enforces the Theorem 1
// contract at every step: as long as no member escaped her retained
// region, the naive oracle recomputed at the CURRENT positions must
// still elect the retained meeting POI. It also checks that full
// outcomes are byte-identical to a from-scratch plan and that the walk
// exercised kept, partial, and full at least once each.
func TestBackendIncSound(t *testing.T) {
	for _, agg := range []Aggregate{Max, Sum} {
		b := testBackend(t, 13, BackendConfig{Aggregate: agg})
		net := b.Server().net
		ws, wsFresh := core.NewWorkspace(), core.NewWorkspace()
		var st core.PlanState
		// m = 2 keeps gap/(2m) an exact binary division, so a stationary
		// round's Σρ' equals gap/2 with no rounding excess — the Sum
		// walk's kept rounds depend on it.
		const m = 2
		walkers := make([]*Walker, m)
		for i := range walkers {
			w, err := NewWalker(net, 0.0012, int64(100*i)+int64(agg))
			if err != nil {
				t.Fatal(err)
			}
			walkers[i] = w
		}
		users := make([]geom.Point, m)
		seen := map[core.IncOutcome]int{}
		for step := 0; step < 300; step++ {
			if step%4 != 3 { // every fourth round the group idles in place
				for i, w := range walkers {
					users[i] = b.Server().posPoint(w.Step())
				}
			}
			plan, out, err := b.PlanNet(ws, core.PlanRequest{Kind: core.KindNetRange, Users: users, State: &st})
			if err != nil {
				t.Fatal(err)
			}
			seen[out]++
			if out == core.IncFull {
				fresh, _, err := b.PlanNet(wsFresh, core.PlanRequest{Kind: core.KindNetRange, Users: users})
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, "full-vs-fresh", plan.Best.Item.ID, plan.Best.Dist,
					Result{Node: fresh.Best.Item.ID, Dist: fresh.Best.Dist})
				for i := range plan.Regions {
					if !plan.Regions[i].Net.(*Region).EqualRegion(fresh.Regions[i].Net.(*Region)) {
						t.Fatalf("step %d: full region %d differs from fresh plan", step, i)
					}
				}
			}
			// Soundness: while everyone stays inside, the retained POI
			// must still be optimal at the members' actual locations.
			inside := true
			for i := range users {
				if !plan.Regions[i].Contains(users[i]) {
					inside = false
				}
			}
			if inside {
				pos := make([]Position, m)
				for i := range users {
					pos[i] = b.Snap(users[i])
				}
				oracleBest, _, err := b.Server().Plan(pos, agg)
				if err != nil {
					t.Fatal(err)
				}
				if oracleBest.Dist < planAgg(b, pos, plan.Best.Item.ID, agg) &&
					oracleBest.Node != plan.Best.Item.ID {
					t.Fatalf("step %d (%v): members inside regions but oracle best %d (%v) beats retained %d (%v)",
						step, out, oracleBest.Node, oracleBest.Dist,
						plan.Best.Item.ID, planAgg(b, pos, plan.Best.Item.ID, agg))
				}
			}
		}
		if seen[core.IncKept] == 0 || seen[core.IncPartial] == 0 || seen[core.IncFull] == 0 {
			t.Fatalf("agg %v: walk did not exercise all outcomes: %v", agg, seen)
		}
	}
}

// planAgg computes the aggregate network distance from pos to a POI node
// with the naive per-member Dijkstra.
func planAgg(b *Backend, pos []Position, node int, agg Aggregate) float64 {
	var d float64
	for _, p := range pos {
		v := b.Server().Dist(p, node)
		if agg == Max {
			if v > d {
				d = v
			}
		} else {
			d += v
		}
	}
	return d
}

// TestBackendCachedEquivUncached is the cache fence: with the
// neighborhood cache enabled, every plan must stay byte-identical to the
// uncached backend's across a workload with heavy key-node reuse — and
// the cache must actually serve certified hits on it.
func TestBackendCachedEquivUncached(t *testing.T) {
	for _, agg := range []Aggregate{Max, Sum} {
		plain := testBackend(t, 9, BackendConfig{Aggregate: agg})
		cached := testBackend(t, 9, BackendConfig{Aggregate: agg, CacheEntries: 64, CacheK: 8})
		wsA, wsB := core.NewWorkspace(), core.NewWorkspace()
		rng := rand.New(rand.NewSource(11 + int64(agg)))
		centers := make([]geom.Point, 6)
		for i := range centers {
			centers[i] = geom.Pt(rng.Float64(), rng.Float64())
		}
		for trial := 0; trial < 120; trial++ {
			c := centers[rng.Intn(len(centers))]
			m := 2 + rng.Intn(3)
			users := make([]geom.Point, m)
			for i := range users {
				users[i] = geom.Pt(
					math.Min(1, math.Max(0, c.X+0.02*(rng.Float64()-0.5))),
					math.Min(1, math.Max(0, c.Y+0.02*(rng.Float64()-0.5))),
				)
			}
			req := core.PlanRequest{Kind: core.KindNetRange, Users: users}
			a, _, errA := plain.PlanNet(wsA, req)
			bp, _, errB := cached.PlanNet(wsB, req)
			if (errA != nil) != (errB != nil) {
				t.Fatalf("trial %d: plain err %v, cached err %v", trial, errA, errB)
			}
			if errA != nil {
				continue
			}
			sameResult(t, "cached", bp.Best.Item.ID, bp.Best.Dist,
				Result{Node: a.Best.Item.ID, Dist: a.Best.Dist})
			for i := range a.Regions {
				if !bp.Regions[i].Net.(*Region).EqualRegion(a.Regions[i].Net.(*Region)) {
					t.Fatalf("trial %d: cached region %d differs", trial, i)
				}
			}
		}
		hits, misses, rejected := cached.CacheStats()
		if hits == 0 {
			t.Fatalf("agg %v: cache never hit (misses %d, rejected %d)", agg, misses, rejected)
		}
	}
}

// TestRegionWireRoundTrip checks that a planned region survives the wire
// byte-for-byte and that the decoded copy answers containment like the
// original.
func TestRegionWireRoundTrip(t *testing.T) {
	b := testBackend(t, 9, BackendConfig{})
	ws := core.NewWorkspace()
	users := []geom.Point{geom.Pt(0.3, 0.4), geom.Pt(0.35, 0.45), geom.Pt(0.4, 0.38)}
	plan, _, err := b.PlanNet(ws, core.PlanRequest{Kind: core.KindNetRange, Users: users})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := range plan.Regions {
		nr := plan.Regions[i].Net.(*Region)
		enc := nr.AppendEncode(nil)
		if len(enc) != nr.WireSize() {
			t.Fatalf("region %d: encoded %d bytes, WireSize %d", i, len(enc), nr.WireSize())
		}
		dec, err := DecodeRegion(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.EqualRegion(nr) {
			t.Fatalf("region %d: decode not equal to original", i)
		}
		onNet := b.Server().posPoint(b.Snap(users[i]))
		if !dec.ContainsPoint(onNet) {
			t.Fatalf("region %d: decoded region does not contain its member's snapped location", i)
		}
		for trial := 0; trial < 50; trial++ {
			p := geom.Pt(rng.Float64(), rng.Float64())
			if dec.ContainsPoint(p) != nr.ContainsPoint(p) {
				t.Fatalf("region %d: containment disagrees at %v", i, p)
			}
		}
		if _, err := DecodeRegion(enc[:len(enc)-1]); err == nil {
			t.Fatal("truncated encoding accepted")
		}
	}
}

// TestSnapDeterministic pins the snapping used by the differential
// fences: equal inputs must land on equal positions, and points sitting
// exactly on a node must snap to that node's location.
func TestSnapDeterministic(t *testing.T) {
	b := testBackend(t, 9, BackendConfig{})
	net := b.Server().net
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		if b.Snap(p) != b.Snap(p) {
			t.Fatal("snap not deterministic")
		}
	}
	for n := 0; n < net.NumNodes(); n += 17 {
		pos := b.Snap(net.Nodes[n].P)
		if err := b.Server().validate(pos); err != nil {
			t.Fatalf("node %d snapped to invalid position %v", n, pos)
		}
		if d := b.Server().posPoint(pos).Dist(net.Nodes[n].P); d > 1e-9 {
			t.Fatalf("node %d snapped %v away", n, d)
		}
	}
}

// TestSnapGridMatchesScan fences the snap grid against the exhaustive
// projection scan: bit-identical positions everywhere, including points
// far outside the network's bounding box.
func TestSnapGridMatchesScan(t *testing.T) {
	b := testBackend(t, 9, BackendConfig{})
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		var p geom.Point
		switch trial % 3 {
		case 0: // uniform over the network
			p = geom.Pt(rng.Float64(), rng.Float64())
		case 1: // clustered near roads (grid cells hold few candidates)
			n := b.Server().net.Nodes[rng.Intn(b.Server().net.NumNodes())].P
			p = geom.Pt(n.X+(rng.Float64()-0.5)*0.01, n.Y+(rng.Float64()-0.5)*0.01)
		default: // outside the bounding box
			p = geom.Pt(rng.Float64()*4-1.5, rng.Float64()*4-1.5)
		}
		if got, want := b.Snap(p), b.snapSlow(p); got != want {
			t.Fatalf("trial %d: grid snap %v != scan %v for %v", trial, got, want, p)
		}
	}
}

// TestBackendThroughCoreDispatch checks the registration seam: a planner
// with the backend registered serves KindNetRange through Plan, and one
// without reports ErrNoNetBackend.
func TestBackendThroughCoreDispatch(t *testing.T) {
	b := testBackend(t, 9, BackendConfig{})
	pois := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.1, 0.9)}
	pl, err := core.NewPlanner(pois, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ws := core.NewWorkspace()
	users := []geom.Point{geom.Pt(0.2, 0.3)}
	if _, _, err := pl.Plan(ws, core.PlanRequest{Kind: core.KindNetRange, Users: users}); err != core.ErrNoNetBackend {
		t.Fatalf("unregistered planner: err %v, want ErrNoNetBackend", err)
	}
	pl.RegisterNetBackend(b)
	plan, _, err := pl.Plan(ws, core.PlanRequest{Kind: core.KindNetRange, Users: users})
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := b.PlanNet(core.NewWorkspace(), core.PlanRequest{Kind: core.KindNetRange, Users: users})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "dispatch", plan.Best.Item.ID, plan.Best.Dist,
		Result{Node: direct.Best.Item.ID, Dist: direct.Best.Dist})
}
