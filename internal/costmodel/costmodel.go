// Package costmodel implements the cost model the paper lists as future
// work (Section 8): estimating the update frequency, the communication
// cost, and the running time of a safe-region configuration WITHOUT
// replaying trajectories.
//
// The model combines Monte Carlo placement sampling with a first-passage
// argument. For a sampled group placement it computes the actual safe
// regions (timing them, which calibrates the running-time estimate) and
// measures each user's mean ray-escape distance: the distance to the
// region boundary averaged over travel directions. A user moving with a
// persistent heading at speed V escapes her region after ≈ escape/V
// timestamps, and the group updates when the FIRST user escapes, so the
// expected inter-update gap is E[min_i escape_i]/V and
//
//	update frequency ≈ 1000 · V / E[min_i escape_i]   (per 1k timestamps)
//
// Communication cost per update follows the Fig. 3 protocol analytically:
// 1 report + 2(m−1) probe packets + m notification messages sized by the
// actual region encodings.
package costmodel

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"mpn/internal/core"
	"mpn/internal/geom"
	"mpn/internal/sim"
	"mpn/internal/stats"
	"mpn/internal/tileenc"
)

// Estimate is the model's prediction for one configuration.
type Estimate struct {
	// UpdateFreq is the predicted updates per 1,000 timestamps.
	UpdateFreq float64
	// PacketsPerK is the predicted TCP packets per 1,000 timestamps.
	PacketsPerK float64
	// CPUMsPerUpdate is the measured mean safe-region computation time.
	CPUMsPerUpdate float64
	// MeanEscape is the mean group escape distance E[min_i escape_i].
	MeanEscape float64
	// Samples is how many placements were evaluated.
	Samples int
}

// Config parameterizes an estimation run.
type Config struct {
	// Method is the safe-region strategy to model.
	Method sim.Method
	// Core configures the planner; Directed is forced by Method.
	Core core.Options
	// GroupSize is m.
	GroupSize int
	// Speed is the user speed V (distance per timestamp).
	Speed float64
	// Samples is the Monte Carlo placement count (default 30).
	Samples int
	// Seed drives sampling.
	Seed int64
}

// Predict estimates the cost of running cfg against the POI set.
func Predict(points []geom.Point, cfg Config) (Estimate, error) {
	if cfg.GroupSize <= 0 {
		return Estimate{}, fmt.Errorf("costmodel: group size %d must be positive", cfg.GroupSize)
	}
	if cfg.Speed <= 0 {
		return Estimate{}, fmt.Errorf("costmodel: speed %v must be positive", cfg.Speed)
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 30
	}
	cfg.Core.Directed = cfg.Method == sim.MethodTileD

	planner, err := core.NewPlanner(points, cfg.Core)
	if err != nil {
		return Estimate{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var escapes, cpuMs, pktsPerUpdate []float64
	for s := 0; s < cfg.Samples; s++ {
		users := make([]geom.Point, cfg.GroupSize)
		for i := range users {
			users[i] = geom.Pt(rng.Float64(), rng.Float64())
		}
		start := time.Now()
		req := core.PlanRequest{Kind: core.KindTiles, Users: users}
		switch cfg.Method {
		case sim.MethodCircle:
			req.Kind = core.KindCircle
		case sim.MethodTile:
		default:
			dirs := make([]core.Direction, cfg.GroupSize)
			for i := range dirs {
				dirs[i] = core.Direction{Angle: rng.Float64() * 2 * math.Pi}
			}
			req.Dirs = dirs
		}
		ws := core.GetWorkspace()
		plan, _, err := planner.Plan(ws, req)
		core.PutWorkspace(ws)
		if err != nil {
			return Estimate{}, err
		}
		cpuMs = append(cpuMs, float64(time.Since(start))/float64(time.Millisecond))

		// Group escape distance: the minimum over users of the mean
		// ray-escape distance.
		minEscape := math.Inf(1)
		for i, r := range plan.Regions {
			if e := meanRayEscape(r, users[i]); e < minEscape {
				minEscape = e
			}
		}
		escapes = append(escapes, minEscape)
		pktsPerUpdate = append(pktsPerUpdate, packetsPerUpdate(plan.Regions))
	}

	meanEscape := stats.Mean(escapes)
	est := Estimate{
		CPUMsPerUpdate: stats.Mean(cpuMs),
		MeanEscape:     meanEscape,
		Samples:        cfg.Samples,
	}
	if meanEscape > 0 {
		est.UpdateFreq = 1000 * cfg.Speed / meanEscape
	} else {
		est.UpdateFreq = 1000 // degenerate regions: every step escapes
	}
	est.PacketsPerK = est.UpdateFreq * stats.Mean(pktsPerUpdate)
	return est, nil
}

// meanRayEscape averages, over 16 directions, the distance from u to the
// region boundary along the ray.
func meanRayEscape(r core.SafeRegion, u geom.Point) float64 {
	const rays = 16
	if r.Kind == core.KindCircle {
		// Exact: the user sits at the circle center.
		return r.Circle.R
	}
	if len(r.Tiles) == 0 {
		return 0
	}
	// March each ray in steps of a quarter of the smallest tile side.
	step := math.Inf(1)
	var far float64
	for _, t := range r.Tiles {
		if w := t.Width(); w < step && w > 0 {
			step = w
		}
		if d := t.MaxDist(u); d > far {
			far = d
		}
	}
	if math.IsInf(step, 1) || step == 0 {
		return 0
	}
	step /= 4
	total := 0.0
	for k := 0; k < rays; k++ {
		ang := 2 * math.Pi * float64(k) / rays
		dir := geom.Pt(math.Cos(ang), math.Sin(ang))
		dist := 0.0
		for dist <= far {
			next := dist + step
			p := u.Add(dir.Scale(next))
			if !r.Contains(p) {
				break
			}
			dist = next
		}
		total += dist
	}
	return total / rays
}

// packetsPerUpdate is the analytic Fig. 3 protocol cost for one update.
func packetsPerUpdate(regions []core.SafeRegion) float64 {
	m := len(regions)
	pkts := 1 + 2*(m-1) // report + probe round trips
	for _, r := range regions {
		bytes := 16 // the meeting point
		if r.Kind == core.KindCircle {
			bytes += 24
		} else {
			delta := 0.0
			for _, t := range r.Tiles {
				if w := t.Width(); w > delta {
					delta = w
				}
			}
			bytes += len(tileenc.Encode(r.Tiles, delta))
		}
		pkts += (bytes + sim.PacketPayload - 1) / sim.PacketPayload
	}
	return float64(pkts)
}
