package costmodel

import (
	"math"
	"testing"

	"mpn/internal/core"
	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/sim"
	"mpn/internal/workload"
)

func testPoints(t testing.TB, n int) []geom.Point {
	t.Helper()
	cfg := workload.DefaultPOIConfig()
	cfg.N = n
	pts, err := workload.GeneratePOIs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

func baseConfig(method sim.Method) Config {
	opts := core.DefaultOptions()
	opts.TileLimit = 8
	return Config{
		Method: method, Core: opts, GroupSize: 3,
		Speed: 0.0008, Samples: 20, Seed: 5,
	}
}

func TestPredictBasics(t *testing.T) {
	pts := testPoints(t, 2000)
	for _, method := range []sim.Method{sim.MethodCircle, sim.MethodTile, sim.MethodTileD} {
		est, err := Predict(pts, baseConfig(method))
		if err != nil {
			t.Fatal(err)
		}
		if est.UpdateFreq <= 0 || est.PacketsPerK <= 0 {
			t.Fatalf("%v: non-positive estimate %+v", method, est)
		}
		if est.MeanEscape <= 0 {
			t.Fatalf("%v: zero escape distance", method)
		}
		if est.Samples != 20 {
			t.Fatalf("%v: samples=%d", method, est.Samples)
		}
	}
}

func TestPredictErrors(t *testing.T) {
	pts := testPoints(t, 100)
	cfg := baseConfig(sim.MethodCircle)
	cfg.GroupSize = 0
	if _, err := Predict(pts, cfg); err == nil {
		t.Fatal("m=0 accepted")
	}
	cfg = baseConfig(sim.MethodCircle)
	cfg.Speed = 0
	if _, err := Predict(pts, cfg); err == nil {
		t.Fatal("speed=0 accepted")
	}
	if _, err := Predict(nil, baseConfig(sim.MethodCircle)); err == nil {
		t.Fatal("empty POI set accepted")
	}
}

// The model must rank the methods the way the paper (and the simulator)
// does: tiles escape less often than circles.
func TestPredictOrdering(t *testing.T) {
	pts := testPoints(t, 2000)
	circle, err := Predict(pts, baseConfig(sim.MethodCircle))
	if err != nil {
		t.Fatal(err)
	}
	tile, err := Predict(pts, baseConfig(sim.MethodTile))
	if err != nil {
		t.Fatal(err)
	}
	if tile.UpdateFreq >= circle.UpdateFreq {
		t.Fatalf("model ranks Tile (%v) worse than Circle (%v)",
			tile.UpdateFreq, circle.UpdateFreq)
	}
	if tile.MeanEscape <= circle.MeanEscape {
		t.Fatalf("tile escape %v not larger than circle %v",
			tile.MeanEscape, circle.MeanEscape)
	}
}

// Update-frequency predictions must scale linearly with speed.
func TestPredictSpeedScaling(t *testing.T) {
	pts := testPoints(t, 1500)
	slow := baseConfig(sim.MethodCircle)
	fast := baseConfig(sim.MethodCircle)
	fast.Speed = 2 * slow.Speed
	a, err := Predict(pts, slow)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Predict(pts, fast)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := b.UpdateFreq / a.UpdateFreq; math.Abs(ratio-2) > 1e-9 {
		t.Fatalf("speed doubling changed update freq by %v, want exactly 2 (same placements)", ratio)
	}
}

// Validation against the simulator: the prediction should land within a
// small factor of the measured update frequency for the Circle method
// (whose escape geometry the model captures exactly).
func TestPredictValidatesAgainstSim(t *testing.T) {
	pts := testPoints(t, 2000)
	set, err := workload.GenerateGeoLifeSet(workload.SetConfig{
		NumTrajectories: 3, Steps: 1500, Speed: 0.0008, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	simCfg := sim.MethodConfig(sim.MethodCircle, gnn.Max, 0)
	met, err := sim.Run(pts, set.Trajs, simCfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg := baseConfig(sim.MethodCircle)
	cfg.Samples = 60
	est, err := Predict(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}

	measured := met.UpdateFrequency()
	ratio := est.UpdateFreq / measured
	if ratio < 0.25 || ratio > 4 {
		t.Fatalf("prediction %v vs measured %v (ratio %v) outside 4x band",
			est.UpdateFreq, measured, ratio)
	}
}

func TestMeanRayEscapeCircle(t *testing.T) {
	r := core.CircleRegion(geom.Pt(0.5, 0.5), 0.07)
	if got := meanRayEscape(r, geom.Pt(0.5, 0.5)); got != 0.07 {
		t.Fatalf("circle escape=%v", got)
	}
}

func TestMeanRayEscapeTiles(t *testing.T) {
	// Single square of side 0.1 centered at the user: escape between
	// 0.05 (edge) and 0.0707 (corner).
	r := core.TileRegion(geom.RectAround(geom.Pt(0.5, 0.5), 0.1))
	got := meanRayEscape(r, geom.Pt(0.5, 0.5))
	if got < 0.03 || got > 0.08 {
		t.Fatalf("square escape=%v outside plausible band", got)
	}
	// Empty and degenerate regions.
	if meanRayEscape(core.TileRegion(), geom.Pt(0, 0)) != 0 {
		t.Fatal("empty region escape")
	}
	deg := core.TileRegion(geom.Rect{Min: geom.Pt(0.5, 0.5), Max: geom.Pt(0.5, 0.5)})
	if meanRayEscape(deg, geom.Pt(0.5, 0.5)) != 0 {
		t.Fatal("degenerate region escape")
	}
}

func TestPacketsPerUpdate(t *testing.T) {
	regions := []core.SafeRegion{
		core.CircleRegion(geom.Pt(0, 0), 1),
		core.CircleRegion(geom.Pt(1, 1), 1),
	}
	// 1 report + 2 probes + 2 one-packet notifications = 5.
	if got := packetsPerUpdate(regions); got != 5 {
		t.Fatalf("packets=%v want 5", got)
	}
}
