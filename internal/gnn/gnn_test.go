package gnn

import (
	"math"
	"math/rand"
	"testing"

	"mpn/internal/geom"
	"mpn/internal/rtree"
)

func randomPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	return pts
}

func buildTree(pts []geom.Point) *rtree.Tree {
	items := make([]rtree.Item, len(pts))
	for i, p := range pts {
		items[i] = rtree.Item{P: p, ID: i}
	}
	return rtree.Bulk(items, 16)
}

func TestAggregatePointDist(t *testing.T) {
	users := []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0)}
	p := geom.Pt(1, 0)
	if got := Max.PointDist(p, users); got != 3 {
		t.Fatalf("Max=%v", got)
	}
	if got := Sum.PointDist(p, users); got != 4 {
		t.Fatalf("Sum=%v", got)
	}
}

// Fig. 11 of the paper: sum-optimal meeting point example.
func TestPaperFig11(t *testing.T) {
	// U = {u1, u2}, P = {p1, p2}; ‖p1,U‖sum = 1.5 + 9.5 = 11.
	u1, u2 := geom.Pt(0, 0), geom.Pt(11, 0)
	p1, p2 := geom.Pt(1.5, 0), geom.Pt(17, 0) // p2 clearly worse
	tr := buildTree([]geom.Point{p1, p2})
	res, ok := Optimal(tr, []geom.Point{u1, u2}, Sum)
	if !ok {
		t.Fatal("no result")
	}
	if res.Item.ID != 0 {
		t.Fatalf("sum-optimal should be p1, got id=%d", res.Item.ID)
	}
	if math.Abs(res.Dist-11) > 1e-12 {
		t.Fatalf("sum dist=%v want 11", res.Dist)
	}
}

func TestRectLowerBoundIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	users := randomPoints(4, 32)
	for i := 0; i < 500; i++ {
		r := geom.RectFromPoints(
			geom.Pt(rng.Float64()*2-0.5, rng.Float64()*2-0.5),
			geom.Pt(rng.Float64()*2-0.5, rng.Float64()*2-0.5),
		)
		for _, agg := range []Aggregate{Max, Sum} {
			lb := agg.RectLowerBound(r, users)
			for j := 0; j < 20; j++ {
				p := geom.Pt(
					r.Min.X+rng.Float64()*r.Width(),
					r.Min.Y+rng.Float64()*r.Height(),
				)
				if d := agg.PointDist(p, users); d < lb-1e-9 {
					t.Fatalf("%v: point dist %v below bound %v", agg, d, lb)
				}
			}
		}
	}
}

func TestTopKMatchesBruteForce(t *testing.T) {
	pts := randomPoints(2000, 41)
	tr := buildTree(pts)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(5)
		users := make([]geom.Point, m)
		for i := range users {
			users[i] = geom.Pt(rng.Float64(), rng.Float64())
		}
		k := 1 + rng.Intn(10)
		for _, agg := range []Aggregate{Max, Sum} {
			got := TopK(tr, users, agg, k)
			want := BruteTopK(pts, users, agg, k)
			if len(got) != len(want) {
				t.Fatalf("%v: len %d want %d", agg, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-12 {
					t.Fatalf("%v result %d: dist %v want %v", agg, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

func TestTopKOrdering(t *testing.T) {
	pts := randomPoints(500, 51)
	tr := buildTree(pts)
	users := randomPoints(3, 52)
	for _, agg := range []Aggregate{Max, Sum} {
		res := TopK(tr, users, agg, 50)
		for i := 1; i < len(res); i++ {
			if res[i].Dist < res[i-1].Dist {
				t.Fatalf("%v: results out of order at %d", agg, i)
			}
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	tr := buildTree(nil)
	if res := TopK(tr, randomPoints(2, 61), Max, 3); len(res) != 0 {
		t.Fatal("empty tree should return nothing")
	}
	if _, ok := Optimal(tr, randomPoints(2, 62), Max); ok {
		t.Fatal("Optimal on empty tree should report !ok")
	}
	tr = buildTree(randomPoints(5, 63))
	if res := TopK(tr, nil, Max, 3); res != nil {
		t.Fatal("no users should return nil")
	}
	if res := TopK(tr, randomPoints(2, 64), Max, 0); res != nil {
		t.Fatal("k=0 should return nil")
	}
	if res := TopK(tr, randomPoints(2, 65), Sum, 10); len(res) != 5 {
		t.Fatalf("k>size should return all: got %d", len(res))
	}
}

func TestSingleUserReducesToNN(t *testing.T) {
	pts := randomPoints(300, 71)
	tr := buildTree(pts)
	u := geom.Pt(0.4, 0.6)
	for _, agg := range []Aggregate{Max, Sum} {
		res, ok := Optimal(tr, []geom.Point{u}, agg)
		if !ok {
			t.Fatal("no result")
		}
		nn := tr.KNN(u, 1)[0]
		if res.Item.ID != nn.Item.ID {
			t.Fatalf("%v: GNN of single user %d != NN %d", agg, res.Item.ID, nn.Item.ID)
		}
	}
}

func TestBruteTopKStability(t *testing.T) {
	// All POIs equidistant: brute force must still return k results.
	pts := []geom.Point{geom.Pt(1, 0), geom.Pt(-1, 0), geom.Pt(0, 1), geom.Pt(0, -1)}
	users := []geom.Point{geom.Pt(0, 0)}
	res := BruteTopK(pts, users, Max, 3)
	if len(res) != 3 {
		t.Fatalf("got %d", len(res))
	}
	for _, r := range res {
		if math.Abs(r.Dist-1) > 1e-12 {
			t.Fatalf("dist %v", r.Dist)
		}
	}
}

func BenchmarkTopK2Max(b *testing.B) { benchTopK(b, Max, 3, 2) }
func BenchmarkTopK2Sum(b *testing.B) { benchTopK(b, Sum, 3, 2) }
func BenchmarkTopK101(b *testing.B)  { benchTopK(b, Max, 3, 101) }

func benchTopK(b *testing.B, agg Aggregate, m, k int) {
	pts := randomPoints(21287, 81)
	tr := buildTree(pts)
	users := randomPoints(m, 82)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopK(tr, users, agg, k)
	}
}
