// Package gnn implements group nearest neighbor queries over the R-tree:
// top-k MAX-GNN (minimizing the maximum user–POI distance, Definition 2)
// and top-k SUM-GNN (minimizing the sum of distances, Definition 8).
//
// The search is the best-first aggregate traversal of Papadias et al.
// ("Group nearest neighbor queries", ICDE 2004 — reference [24] of the
// paper): internal nodes are ordered and pruned by the aggregate of
// per-user minimum distances to the node MBR, which lower-bounds the
// aggregate distance of every point in the subtree.
package gnn

import (
	"mpn/internal/geom"
	"mpn/internal/rtree"
)

// Aggregate selects the distance aggregation of the meeting-point
// objective.
type Aggregate int

const (
	// Max minimizes the maximum user distance (MPN, MAX-GNN).
	Max Aggregate = iota
	// Sum minimizes the total user distance (Sum-MPN, SUM-GNN).
	Sum
)

// String implements fmt.Stringer.
func (a Aggregate) String() string {
	if a == Max {
		return "max"
	}
	return "sum"
}

// PointDist returns the aggregate distance ‖p,U‖ for the given users: the
// dominant distance ‖p,U‖⊤ (Definition 5) under Max, or ‖p,U‖sum
// (Definition 7) under Sum.
func (a Aggregate) PointDist(p geom.Point, users []geom.Point) float64 {
	switch a {
	case Max:
		d := 0.0
		for _, u := range users {
			if v := p.Dist(u); v > d {
				d = v
			}
		}
		return d
	default:
		d := 0.0
		for _, u := range users {
			d += p.Dist(u)
		}
		return d
	}
}

// RectLowerBound returns a lower bound of the aggregate distance for every
// point inside r.
func (a Aggregate) RectLowerBound(r geom.Rect, users []geom.Point) float64 {
	switch a {
	case Max:
		d := 0.0
		for _, u := range users {
			if v := r.MinDist(u); v > d {
				d = v
			}
		}
		return d
	default:
		d := 0.0
		for _, u := range users {
			d += r.MinDist(u)
		}
		return d
	}
}

// Result is one GNN answer: the POI and its aggregate distance.
type Result struct {
	Item rtree.Item
	Dist float64
}

// TopK returns the k best meeting points for users under the aggregate,
// in increasing aggregate-distance order. Fewer than k results are
// returned only when the tree holds fewer than k points. TopK(…, 1)[0] is
// the optimal meeting point p° of Definition 2 / Definition 8, and
// TopK(…, 2)[1] is the runner-up needed by Circle-MSR (Algorithm 1).
func TopK(t *rtree.Tree, users []geom.Point, agg Aggregate, k int) []Result {
	if k <= 0 || len(users) == 0 {
		return nil
	}
	out := make([]Result, 0, k)
	t.BestFirst(
		func(r geom.Rect) float64 { return agg.RectLowerBound(r, users) },
		func(it rtree.Item) float64 { return agg.PointDist(it.P, users) },
		func(it rtree.Item, d float64) bool {
			out = append(out, Result{Item: it, Dist: d})
			return len(out) < k
		},
	)
	return out
}

// BruteTopK computes TopK by exhaustive scan. It is the reference
// implementation used by tests and by callers with tiny data sets.
func BruteTopK(points []geom.Point, users []geom.Point, agg Aggregate, k int) []Result {
	if k <= 0 || len(users) == 0 {
		return nil
	}
	out := make([]Result, 0, k+1)
	for id, p := range points {
		d := agg.PointDist(p, users)
		// Insertion sort into the running top-k.
		pos := len(out)
		for pos > 0 && out[pos-1].Dist > d {
			pos--
		}
		if pos >= k {
			continue
		}
		out = append(out, Result{})
		copy(out[pos+1:], out[pos:])
		out[pos] = Result{Item: rtree.Item{P: p, ID: id}, Dist: d}
		if len(out) > k {
			out = out[:k]
		}
	}
	return out
}

// Optimal returns the single best meeting point, or ok=false when the tree
// is empty.
func Optimal(t *rtree.Tree, users []geom.Point, agg Aggregate) (Result, bool) {
	res := TopK(t, users, agg, 1)
	if len(res) == 0 {
		return Result{}, false
	}
	return res[0], true
}
