// Package gnn implements group nearest neighbor queries over the R-tree:
// top-k MAX-GNN (minimizing the maximum user–POI distance, Definition 2)
// and top-k SUM-GNN (minimizing the sum of distances, Definition 8).
//
// The search is the best-first aggregate traversal of Papadias et al.
// ("Group nearest neighbor queries", ICDE 2004 — reference [24] of the
// paper): internal nodes are ordered and pruned by the aggregate of
// per-user minimum distances to the node MBR, which lower-bounds the
// aggregate distance of every point in the subtree.
package gnn

import (
	"mpn/internal/geom"
	"mpn/internal/rtree"
)

// Aggregate selects the distance aggregation of the meeting-point
// objective.
type Aggregate int

const (
	// Max minimizes the maximum user distance (MPN, MAX-GNN).
	Max Aggregate = iota
	// Sum minimizes the total user distance (Sum-MPN, SUM-GNN).
	Sum
)

// String implements fmt.Stringer.
func (a Aggregate) String() string {
	if a == Max {
		return "max"
	}
	return "sum"
}

// PointDist returns the aggregate distance ‖p,U‖ for the given users: the
// dominant distance ‖p,U‖⊤ (Definition 5) under Max, or ‖p,U‖sum
// (Definition 7) under Sum.
func (a Aggregate) PointDist(p geom.Point, users []geom.Point) float64 {
	switch a {
	case Max:
		d := 0.0
		for _, u := range users {
			if v := p.Dist(u); v > d {
				d = v
			}
		}
		return d
	default:
		d := 0.0
		for _, u := range users {
			d += p.Dist(u)
		}
		return d
	}
}

// RectLowerBound returns a lower bound of the aggregate distance for every
// point inside r.
func (a Aggregate) RectLowerBound(r geom.Rect, users []geom.Point) float64 {
	switch a {
	case Max:
		d := 0.0
		for _, u := range users {
			if v := r.MinDist(u); v > d {
				d = v
			}
		}
		return d
	default:
		d := 0.0
		for _, u := range users {
			d += r.MinDist(u)
		}
		return d
	}
}

// Result is one GNN answer: the POI and its aggregate distance.
type Result struct {
	Item rtree.Item
	Dist float64
}

// Scratch carries the reusable state of one goroutine's GNN searches: the
// R-tree traversal scratch (shared with any other index searches the
// caller performs) and the query object passed to the best-first
// traversal. The zero value is ready to use. Not safe for concurrent use.
type Scratch struct {
	// RTree is the underlying index traversal scratch; callers may share
	// it with their own rtree searches between TopKInto calls.
	RTree rtree.Scratch

	q topkQuery
}

// topkQuery implements rtree.BestFirstQuery for the aggregate top-k
// search. It lives in the Scratch so the traversal performs no per-call
// closure or interface allocations.
type topkQuery struct {
	users  []geom.Point
	agg    Aggregate
	target int // stop once len(out) reaches this
	out    []Result
}

func (q *topkQuery) NodeLB(r geom.Rect) float64     { return q.agg.RectLowerBound(r, q.users) }
func (q *topkQuery) ItemDist(it rtree.Item) float64 { return q.agg.PointDist(it.P, q.users) }
func (q *topkQuery) Visit(it rtree.Item, d float64) bool {
	q.out = append(q.out, Result{Item: it, Dist: d})
	return len(q.out) < q.target
}

// TopKInto is TopK appending into the caller-owned slice out (typically
// workspace memory truncated to zero length) and returning it, with all
// traversal state drawn from s. After out and s have grown to the
// query's working size, repeated searches allocate nothing.
func TopKInto(t *rtree.Tree, s *Scratch, users []geom.Point, agg Aggregate, k int, out []Result) []Result {
	if k <= 0 || len(users) == 0 {
		return out
	}
	s.q = topkQuery{users: users, agg: agg, target: len(out) + k, out: out}
	t.BestFirstInto(&s.RTree, &s.q)
	out = s.q.out
	s.q.users, s.q.out = nil, nil // drop references to caller memory
	return out
}

// TopK returns the k best meeting points for users under the aggregate,
// in increasing aggregate-distance order. Fewer than k results are
// returned only when the tree holds fewer than k points. TopK(…, 1)[0] is
// the optimal meeting point p° of Definition 2 / Definition 8, and
// TopK(…, 2)[1] is the runner-up needed by Circle-MSR (Algorithm 1).
// Hot paths reuse a Scratch via TopKInto instead.
func TopK(t *rtree.Tree, users []geom.Point, agg Aggregate, k int) []Result {
	if k <= 0 || len(users) == 0 {
		return nil
	}
	var s Scratch
	return TopKInto(t, &s, users, agg, k, make([]Result, 0, k))
}

// PushTopK inserts (it, d) into the running ascending bounded top-k
// slice out and returns it, dropping the element beyond rank k. Among
// exactly equal distances the earlier-pushed element sorts first. It is
// the one bounded insertion-sort shared by BruteTopK and the
// neighborhood cache's candidate extraction, so the two selections
// cannot drift apart.
func PushTopK(out []Result, it rtree.Item, d float64, k int) []Result {
	pos := len(out)
	for pos > 0 && out[pos-1].Dist > d {
		pos--
	}
	if pos >= k {
		return out
	}
	if len(out) < k {
		out = append(out, Result{})
	}
	copy(out[pos+1:], out[pos:])
	out[pos] = Result{Item: it, Dist: d}
	return out
}

// BruteTopK computes TopK by exhaustive scan. It is the reference
// implementation used by tests and by callers with tiny data sets.
func BruteTopK(points []geom.Point, users []geom.Point, agg Aggregate, k int) []Result {
	if k <= 0 || len(users) == 0 {
		return nil
	}
	out := make([]Result, 0, k)
	for id, p := range points {
		out = PushTopK(out, rtree.Item{P: p, ID: id}, agg.PointDist(p, users), k)
	}
	return out
}

// Optimal returns the single best meeting point, or ok=false when the tree
// is empty.
func Optimal(t *rtree.Tree, users []geom.Point, agg Aggregate) (Result, bool) {
	res := TopK(t, users, agg, 1)
	if len(res) == 0 {
		return Result{}, false
	}
	return res[0], true
}
