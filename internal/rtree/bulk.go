package rtree

import (
	"math"
	"sort"

	"mpn/internal/geom"
)

// Bulk builds a tree from items using the Sort-Tile-Recursive (STR)
// packing algorithm: items are sorted by x, cut into √(n/M) vertical
// slices, each slice sorted by y and packed into full leaves; the process
// repeats one level up until a single root remains. STR yields near-optimal
// space utilization and is how the experiment harness loads the POI sets.
func Bulk(items []Item, maxEntries int) *Tree {
	t := New(maxEntries)
	if len(items) == 0 {
		return t
	}
	own := make([]Item, len(items))
	copy(own, items)

	level := packLeaves(own, t.maxEntries)
	for len(level) > 1 {
		level = packNodes(level, t.maxEntries)
	}
	t.root = level[0]
	t.size = len(items)
	return t
}

// Rebuild re-packs the tree in place with the STR bulk loader, restoring
// near-optimal space utilization after heavy insert/delete churn has
// degraded node occupancy (deletions condense nodes toward the 40% floor
// and reinsertions skew MBRs). The item set is unchanged; the mutation
// version is bumped once, after the new structure is in place, since the
// physical reorganization invalidates any traversal in progress.
func (t *Tree) Rebuild() {
	if t.size > 0 {
		items := make([]Item, 0, t.size)
		t.All(func(it Item) bool { items = append(items, it); return true })
		level := packLeaves(items, t.maxEntries)
		for len(level) > 1 {
			level = packNodes(level, t.maxEntries)
		}
		t.root = level[0]
	}
	t.published()
}

// packLeaves packs sorted slices of items into leaf nodes.
func packLeaves(items []Item, m int) []*node {
	n := len(items)
	leafCount := (n + m - 1) / m
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	sliceSize := sliceCount * m

	sort.Slice(items, func(i, j int) bool { return items[i].P.X < items[j].P.X })

	var leaves []*node
	for start := 0; start < n; start += sliceSize {
		end := start + sliceSize
		if end > n {
			end = n
		}
		sl := items[start:end]
		sort.Slice(sl, func(i, j int) bool { return sl[i].P.Y < sl[j].P.Y })
		for ls := 0; ls < len(sl); ls += m {
			le := ls + m
			if le > len(sl) {
				le = len(sl)
			}
			leaf := &node{leaf: true, entries: make([]entry, 0, le-ls)}
			for _, it := range sl[ls:le] {
				leaf.entries = append(leaf.entries, entry{
					mbr:  geom.Rect{Min: it.P, Max: it.P},
					item: it,
				})
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packNodes groups one level of nodes into parents using the same STR
// tiling on node MBR centers.
func packNodes(children []*node, m int) []*node {
	type boxed struct {
		n   *node
		mbr geom.Rect
	}
	bs := make([]boxed, len(children))
	for i, c := range children {
		bs[i] = boxed{n: c, mbr: c.mbr()}
	}
	parentCount := (len(bs) + m - 1) / m
	sliceCount := int(math.Ceil(math.Sqrt(float64(parentCount))))
	sliceSize := sliceCount * m

	sort.Slice(bs, func(i, j int) bool {
		return bs[i].mbr.Center().X < bs[j].mbr.Center().X
	})

	var parents []*node
	for start := 0; start < len(bs); start += sliceSize {
		end := start + sliceSize
		if end > len(bs) {
			end = len(bs)
		}
		sl := bs[start:end]
		sort.Slice(sl, func(i, j int) bool {
			return sl[i].mbr.Center().Y < sl[j].mbr.Center().Y
		})
		for ls := 0; ls < len(sl); ls += m {
			le := ls + m
			if le > len(sl) {
				le = len(sl)
			}
			p := &node{leaf: false, entries: make([]entry, 0, le-ls)}
			for _, b := range sl[ls:le] {
				p.entries = append(p.entries, entry{mbr: b.mbr, child: b.n})
			}
			parents = append(parents, p)
		}
	}
	return parents
}
