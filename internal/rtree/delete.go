package rtree

// Delete removes the item matching it — same ID at the same location —
// and reports whether it was found. Removal follows Guttman's
// CondenseTree: the leaf entry is dropped, nodes left under the minimum
// fill are dissolved and their surviving items reinserted, ancestor MBRs
// are tightened along the search path, and a root reduced to a single
// non-leaf entry collapses by one level. The mutation version is bumped
// after the structural change completes (see Version); nothing is bumped
// on a miss.
func (t *Tree) Delete(it Item) bool {
	if t.size == 0 {
		return false
	}
	var orphans []Item
	found, _ := t.deleteRec(t.root, it, &orphans)
	if !found {
		return false
	}
	t.size--
	// Collapse a non-leaf root with a single child; a root leaf may hold
	// any count, including zero.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node{leaf: true}
	}
	// Reinsert items orphaned by condensed nodes. They were never
	// subtracted from size, so insertEntry alone restores the invariant.
	for _, o := range orphans {
		t.insertEntry(entry{mbr: pointRect(o.P), item: o})
	}
	t.published()
	return true
}

// deleteRec removes it from the subtree rooted at n, appending the leaf
// items of any condensed (underflowed and dissolved) descendants to
// orphans. It returns whether the item was found and whether n itself is
// now under the minimum fill.
func (t *Tree) deleteRec(n *node, it Item, orphans *[]Item) (found, underflow bool) {
	if n.leaf {
		for i, e := range n.entries {
			if e.item.ID == it.ID && e.item.P == it.P {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return true, len(n.entries) < t.minEntries
			}
		}
		return false, false
	}
	for i := range n.entries {
		e := &n.entries[i]
		if !e.mbr.Contains(it.P) {
			continue
		}
		f, uf := t.deleteRec(e.child, it, orphans)
		if !f {
			continue
		}
		if uf {
			// Condense: dissolve the underflowed child and queue its
			// remaining items for reinsertion.
			collectItems(e.child, orphans)
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
		} else {
			e.mbr = e.child.mbr()
		}
		return true, len(n.entries) < t.minEntries
	}
	return false, false
}

// collectItems appends every item stored under n to out.
func collectItems(n *node, out *[]Item) {
	for _, e := range n.entries {
		if n.leaf {
			*out = append(*out, e.item)
		} else {
			collectItems(e.child, out)
		}
	}
}
