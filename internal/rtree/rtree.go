// Package rtree implements an in-memory R-tree over 2-D points. It is the
// server-side index for the POI data set P in the MPN system architecture
// (Fig. 3 of the paper): the GNN engine and the safe-region candidate
// retrieval both traverse it.
//
// The tree supports one-by-one insertion with quadratic node splitting
// (Guttman's classic heuristic), deletion with underflow condensing and
// orphan reinsertion, Sort-Tile-Recursive (STR) bulk loading plus an
// in-place Rebuild that re-packs a churned tree, and best-first traversal
// parameterized by caller-supplied bounds, from which k-nearest-neighbor
// and aggregate-nearest-neighbor searches are built.
package rtree

import (
	"fmt"
	"math"
	"sync/atomic"

	"mpn/internal/geom"
)

// Item is an indexed point: P is the location, ID identifies the point in
// the caller's data set (typically its slice index).
type Item struct {
	P  geom.Point
	ID int
}

// DefaultMaxEntries is the default node fan-out. 32 entries per node keeps
// the tree shallow for the 21k-POI workloads of the paper while bounding
// split cost.
const DefaultMaxEntries = 32

type entry struct {
	mbr   geom.Rect
	child *node // nil at leaves
	item  Item  // valid at leaves
}

type node struct {
	leaf    bool
	entries []entry
}

// pointRect is the degenerate MBR of a single point.
func pointRect(p geom.Point) geom.Rect { return geom.Rect{Min: p, Max: p} }

func (n *node) mbr() geom.Rect {
	m := n.entries[0].mbr
	for _, e := range n.entries[1:] {
		m = m.Union(e.mbr)
	}
	return m
}

// Tree is an R-tree over Items. The zero value is not usable; construct
// with New or Bulk.
type Tree struct {
	root       *node
	size       int
	maxEntries int
	minEntries int

	// version counts structural mutations (see Version). It is atomic so
	// concurrent readers holding cached results keyed by version can check
	// staleness without a lock, but the tree itself is still not safe for
	// mutation concurrent with searches.
	version atomic.Uint64

	// mutateHook, when non-nil, runs after a mutation's structural change
	// and before its version publication. Tests install it to pin the
	// mutate-then-publish ordering; production trees leave it nil.
	mutateHook func()
}

// Version returns the tree's monotone mutation counter: it starts at 0
// for a freshly built (New or Bulk) tree and increases on every Insert,
// Delete, and Rebuild. Result caches key their entries by it so a cached
// traversal self-invalidates after any POI mutation without scanning the
// tree. The counter is published after the structural change it counts:
// an observer that reads version v and then traverses sees at least the
// first v mutations (never a newer version paired with an older tree).
func (t *Tree) Version() uint64 { return t.version.Load() }

// SetVersion overwrites the mutation counter. It exists for writers that
// maintain logically continuous replacement indexes — the core.Planner
// snapshot writer keeps both of its buffered trees' versions aligned
// with the canonical mutation count so a swap never moves the version
// backwards. Ordinary callers never need it.
func (t *Tree) SetVersion(v uint64) { t.version.Store(v) }

// published runs the test hook (if any) and then publishes one mutation
// on the version counter. Every mutating operation ends with it.
func (t *Tree) published() {
	if t.mutateHook != nil {
		t.mutateHook()
	}
	t.version.Add(1)
}

// New returns an empty tree with the given maximum node fan-out. A
// maxEntries below 4 is raised to 4.
func New(maxEntries int) *Tree {
	if maxEntries < 4 {
		maxEntries = 4
	}
	return &Tree{
		root:       &node{leaf: true},
		maxEntries: maxEntries,
		minEntries: maxEntries * 2 / 5, // 40% fill guarantee on splits
	}
}

// Len returns the number of items stored.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 for a tree holding only a root
// leaf). Exposed for tests and diagnostics.
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.entries[0].child {
		h++
	}
	return h
}

// Insert adds an item to the tree and then bumps the mutation version.
// The bump strictly follows the structural change, so a concurrent
// version reader can never pin the new version against the old tree.
func (t *Tree) Insert(it Item) {
	t.insertEntry(entry{mbr: pointRect(it.P), item: it})
	t.size++
	t.published()
}

// insertEntry places e in the tree, growing the root on a split. It does
// not touch size or version; callers own that accounting.
func (t *Tree) insertEntry(e entry) {
	split := t.insert(t.root, e)
	if split != nil {
		// Root split: grow the tree by one level.
		old := t.root
		t.root = &node{
			leaf: false,
			entries: []entry{
				{mbr: old.mbr(), child: old},
				{mbr: split.mbr(), child: split},
			},
		}
	}
}

// insert recursively places e under n and returns a non-nil new sibling if
// n overflowed and was split.
func (t *Tree) insert(n *node, e entry) *node {
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.maxEntries {
			return t.splitNode(n)
		}
		return nil
	}
	i := chooseSubtree(n, e.mbr)
	child := n.entries[i].child
	newSibling := t.insert(child, e)
	n.entries[i].mbr = n.entries[i].mbr.Union(e.mbr)
	if newSibling != nil {
		n.entries = append(n.entries, entry{mbr: newSibling.mbr(), child: newSibling})
		// Recompute the split child's MBR: entries moved out of it.
		n.entries[i].mbr = child.mbr()
		if len(n.entries) > t.maxEntries {
			return t.splitNode(n)
		}
	}
	return nil
}

// chooseSubtree picks the child whose MBR needs the least enlargement to
// cover r, breaking ties by smaller area.
func chooseSubtree(n *node, r geom.Rect) int {
	best := 0
	bestEnlarge := math.Inf(1)
	bestArea := math.Inf(1)
	for i, e := range n.entries {
		area := e.mbr.Area()
		enlarged := e.mbr.Union(r).Area() - area
		if enlarged < bestEnlarge || (enlarged == bestEnlarge && area < bestArea) {
			best, bestEnlarge, bestArea = i, enlarged, area
		}
	}
	return best
}

// splitNode splits an overflowing node in place using the quadratic
// pick-seeds / pick-next heuristic and returns the new sibling.
func (t *Tree) splitNode(n *node) *node {
	entries := n.entries

	// Pick seeds: the pair wasting the most area if grouped together.
	si, sj := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			waste := entries[i].mbr.Union(entries[j].mbr).Area() -
				entries[i].mbr.Area() - entries[j].mbr.Area()
			if waste > worst {
				worst, si, sj = waste, i, j
			}
		}
	}

	groupA := []entry{entries[si]}
	groupB := []entry{entries[sj]}
	mbrA, mbrB := entries[si].mbr, entries[sj].mbr
	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != si && i != sj {
			rest = append(rest, e)
		}
	}

	// Distribute the remaining entries.
	for len(rest) > 0 {
		// Honor the minimum fill guarantee.
		if len(groupA)+len(rest) == t.minEntries {
			groupA = append(groupA, rest...)
			for _, e := range rest {
				mbrA = mbrA.Union(e.mbr)
			}
			break
		}
		if len(groupB)+len(rest) == t.minEntries {
			groupB = append(groupB, rest...)
			for _, e := range rest {
				mbrB = mbrB.Union(e.mbr)
			}
			break
		}
		// Pick-next: entry with the greatest preference for one group.
		bestIdx, bestDiff := 0, -1.0
		var bestToA bool
		for i, e := range rest {
			dA := mbrA.Union(e.mbr).Area() - mbrA.Area()
			dB := mbrB.Union(e.mbr).Area() - mbrB.Area()
			diff := math.Abs(dA - dB)
			if diff > bestDiff {
				bestDiff, bestIdx, bestToA = diff, i, dA < dB
			}
		}
		e := rest[bestIdx]
		rest[bestIdx] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		if bestToA {
			groupA = append(groupA, e)
			mbrA = mbrA.Union(e.mbr)
		} else {
			groupB = append(groupB, e)
			mbrB = mbrB.Union(e.mbr)
		}
	}

	n.entries = groupA
	return &node{leaf: n.leaf, entries: groupB}
}

// Search invokes fn for every item whose point lies inside r. fn returning
// false stops the search early. It reports whether the search ran to
// completion.
func (t *Tree) Search(r geom.Rect, fn func(Item) bool) bool {
	if t.size == 0 {
		return true
	}
	return searchNode(t.root, r, fn)
}

func searchNode(n *node, r geom.Rect, fn func(Item) bool) bool {
	for _, e := range n.entries {
		if !r.Intersects(e.mbr) {
			continue
		}
		if n.leaf {
			if !fn(e.item) {
				return false
			}
		} else if !searchNode(e.child, r, fn) {
			return false
		}
	}
	return true
}

// All invokes fn for every item in the tree.
func (t *Tree) All(fn func(Item) bool) bool {
	if t.size == 0 {
		return true
	}
	return allNode(t.root, fn)
}

func allNode(n *node, fn func(Item) bool) bool {
	for _, e := range n.entries {
		if n.leaf {
			if !fn(e.item) {
				return false
			}
		} else if !allNode(e.child, fn) {
			return false
		}
	}
	return true
}

// checkInvariants verifies structural invariants: MBR containment, leaf
// depth uniformity, and fan-out bounds. Used by tests.
func (t *Tree) checkInvariants() error {
	if t.size == 0 {
		return nil
	}
	depth := -1
	var walk func(n *node, d int) (geom.Rect, int, error)
	walk = func(n *node, d int) (geom.Rect, int, error) {
		if len(n.entries) == 0 {
			return geom.Rect{}, 0, fmt.Errorf("empty node at depth %d", d)
		}
		if n != t.root && (len(n.entries) > t.maxEntries) {
			return geom.Rect{}, 0, fmt.Errorf("node overflow: %d entries", len(n.entries))
		}
		count := 0
		mbr := n.entries[0].mbr
		for _, e := range n.entries {
			mbr = mbr.Union(e.mbr)
			if n.leaf {
				if depth == -1 {
					depth = d
				} else if depth != d {
					return geom.Rect{}, 0, fmt.Errorf("leaves at depths %d and %d", depth, d)
				}
				count++
				continue
			}
			cm, cc, err := walk(e.child, d+1)
			if err != nil {
				return geom.Rect{}, 0, err
			}
			if !e.mbr.ContainsRect(cm) {
				return geom.Rect{}, 0, fmt.Errorf("entry MBR %v does not contain child MBR %v", e.mbr, cm)
			}
			count += cc
		}
		return mbr, count, nil
	}
	_, count, err := walk(t.root, 0)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size mismatch: counted %d, recorded %d", count, t.size)
	}
	return nil
}
