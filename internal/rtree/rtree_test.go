package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"mpn/internal/geom"
)

func randomItems(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{P: geom.Pt(rng.Float64(), rng.Float64()), ID: i}
	}
	return items
}

func TestInsertAndInvariants(t *testing.T) {
	items := randomItems(500, 1)
	tr := New(8)
	for i, it := range items {
		tr.Insert(it)
		if tr.Len() != i+1 {
			t.Fatalf("Len=%d want %d", tr.Len(), i+1)
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkInvariants(t *testing.T) {
	for _, n := range []int{0, 1, 7, 32, 33, 100, 1000, 5000} {
		items := randomItems(n, int64(n))
		tr := Bulk(items, 16)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	items := randomItems(800, 2)
	for _, tr := range []*Tree{Bulk(items, 16), insertAll(items, 8)} {
		rng := rand.New(rand.NewSource(3))
		for q := 0; q < 50; q++ {
			r := geom.RectFromPoints(
				geom.Pt(rng.Float64(), rng.Float64()),
				geom.Pt(rng.Float64(), rng.Float64()),
			)
			got := map[int]bool{}
			tr.Search(r, func(it Item) bool { got[it.ID] = true; return true })
			want := map[int]bool{}
			for _, it := range items {
				if r.Contains(it.P) {
					want[it.ID] = true
				}
			}
			if len(got) != len(want) {
				t.Fatalf("query %v: got %d items want %d", r, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("query %v: missing id %d", r, id)
				}
			}
		}
	}
}

func insertAll(items []Item, m int) *Tree {
	tr := New(m)
	for _, it := range items {
		tr.Insert(it)
	}
	return tr
}

func TestKNNMatchesBruteForce(t *testing.T) {
	items := randomItems(600, 4)
	trees := map[string]*Tree{
		"bulk":   Bulk(items, 16),
		"insert": insertAll(items, 8),
	}
	rng := rand.New(rand.NewSource(5))
	for name, tr := range trees {
		for q := 0; q < 40; q++ {
			query := geom.Pt(rng.Float64()*1.4-0.2, rng.Float64()*1.4-0.2)
			k := 1 + rng.Intn(20)
			got := tr.KNN(query, k)
			if len(got) != k {
				t.Fatalf("%s: KNN returned %d want %d", name, len(got), k)
			}
			// Brute force.
			dists := make([]float64, len(items))
			for i, it := range items {
				dists[i] = it.P.Dist(query)
			}
			sort.Float64s(dists)
			for i, nb := range got {
				if diff := nb.Dist - dists[i]; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("%s: neighbor %d dist %v want %v", name, i, nb.Dist, dists[i])
				}
				if i > 0 && got[i].Dist < got[i-1].Dist {
					t.Fatalf("%s: results not sorted", name)
				}
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	tr := New(8)
	if got := tr.KNN(geom.Pt(0, 0), 5); len(got) != 0 {
		t.Fatalf("empty tree KNN returned %d", len(got))
	}
	tr.Insert(Item{P: geom.Pt(1, 1), ID: 0})
	if got := tr.KNN(geom.Pt(0, 0), 5); len(got) != 1 {
		t.Fatalf("want all items when k>size, got %d", len(got))
	}
	if got := tr.KNN(geom.Pt(0, 0), 0); got != nil {
		t.Fatalf("k=0 should return nil")
	}
}

func TestAll(t *testing.T) {
	items := randomItems(123, 9)
	tr := Bulk(items, 16)
	seen := map[int]bool{}
	tr.All(func(it Item) bool { seen[it.ID] = true; return true })
	if len(seen) != len(items) {
		t.Fatalf("All visited %d items want %d", len(seen), len(items))
	}
	// Early stop.
	count := 0
	tr.All(func(it Item) bool { count++; return count < 10 })
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestBestFirstOrdering(t *testing.T) {
	items := randomItems(400, 11)
	tr := Bulk(items, 16)
	q := geom.Pt(0.5, 0.5)
	prev := -1.0
	n := 0
	tr.BestFirst(
		func(r geom.Rect) float64 { return r.MinDist(q) },
		func(it Item) float64 { return it.P.Dist(q) },
		func(it Item, d float64) bool {
			if d < prev {
				t.Fatalf("out of order: %v after %v", d, prev)
			}
			prev = d
			n++
			return true
		},
	)
	if n != len(items) {
		t.Fatalf("visited %d want %d", n, len(items))
	}
}

func TestPrunedSearch(t *testing.T) {
	items := randomItems(500, 13)
	tr := Bulk(items, 16)
	// Keep only subtrees intersecting the left half plane x<=0.5.
	half := geom.Rect{Min: geom.Pt(-1, -1), Max: geom.Pt(0.5, 2)}
	got := map[int]bool{}
	tr.PrunedSearch(
		func(r geom.Rect) bool { return r.Intersects(half) },
		func(it Item) bool { got[it.ID] = true; return true },
	)
	for _, it := range items {
		if it.P.X <= 0.5 && !got[it.ID] {
			t.Fatalf("missing item %d at %v", it.ID, it.P)
		}
	}
}

func TestHeight(t *testing.T) {
	tr := New(8)
	if tr.Height() != 1 {
		t.Fatalf("empty height=%d", tr.Height())
	}
	for _, it := range randomItems(1000, 17) {
		tr.Insert(it)
	}
	if h := tr.Height(); h < 3 || h > 6 {
		t.Fatalf("unexpected height %d for 1000 items fan-out 8", h)
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr := New(8)
	p := geom.Pt(0.3, 0.7)
	for i := 0; i < 100; i++ {
		tr.Insert(Item{P: p, ID: i})
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tr.KNN(p, 100)
	if len(got) != 100 {
		t.Fatalf("got %d", len(got))
	}
	for _, nb := range got {
		if nb.Dist != 0 {
			t.Fatalf("dup dist %v", nb.Dist)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	items := randomItems(b.N, 21)
	b.ResetTimer()
	tr := New(DefaultMaxEntries)
	for i := 0; i < b.N; i++ {
		tr.Insert(items[i])
	}
}

func BenchmarkBulkLoad21k(b *testing.B) {
	items := randomItems(21287, 22)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bulk(items, DefaultMaxEntries)
	}
}

func BenchmarkKNN(b *testing.B) {
	items := randomItems(21287, 23)
	tr := Bulk(items, DefaultMaxEntries)
	rng := rand.New(rand.NewSource(24))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.KNN(geom.Pt(rng.Float64(), rng.Float64()), 10)
	}
}

// knnQuery is a scratch-resident BestFirstQuery for the benchmark below:
// a plain kNN without the per-call closure allocations of KNN, so the
// measurement isolates the traversal (and its heap) itself.
type knnQuery struct {
	q     geom.Point
	k     int
	found int
}

func (s *knnQuery) NodeLB(r geom.Rect) float64 { return r.MinDist(s.q) }
func (s *knnQuery) ItemDist(it Item) float64   { return it.P.Dist(s.q) }
func (s *knnQuery) Visit(it Item, d float64) bool {
	s.found++
	return s.found < s.k
}

// BenchmarkBestFirstInto is the reference measurement of the best-first
// traversal — the hottest loop of every GNN search — used to decide
// whether the typed priority queue may be replaced by a generic helper
// (see the heap comment in search.go).
func BenchmarkBestFirstInto(b *testing.B) {
	items := randomItems(21287, 23)
	tr := Bulk(items, DefaultMaxEntries)
	rng := rand.New(rand.NewSource(24))
	var s Scratch
	var q knnQuery
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q = knnQuery{q: geom.Pt(rng.Float64(), rng.Float64()), k: 50}
		tr.BestFirstInto(&s, &q)
	}
}
