package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"mpn/internal/geom"
)

// checkAgainst verifies that tr holds exactly the live items: size, KNN
// results against a brute-force scan, and structural invariants.
func checkAgainst(t *testing.T, tr *Tree, live map[int]Item, rng *rand.Rand) {
	t.Helper()
	if tr.Len() != len(live) {
		t.Fatalf("Len=%d want %d", tr.Len(), len(live))
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	tr.All(func(it Item) bool {
		if want, ok := live[it.ID]; !ok || want.P != it.P {
			t.Fatalf("tree holds unexpected item %+v", it)
		}
		seen[it.ID] = true
		return true
	})
	if len(seen) != len(live) {
		t.Fatalf("All visited %d items want %d", len(seen), len(live))
	}
	if len(live) == 0 {
		return
	}
	q := geom.Pt(rng.Float64(), rng.Float64())
	k := 1 + rng.Intn(10)
	if k > len(live) {
		k = len(live)
	}
	got := tr.KNN(q, k)
	dists := make([]float64, 0, len(live))
	for _, it := range live {
		dists = append(dists, it.P.Dist(q))
	}
	sort.Float64s(dists)
	for i, nb := range got {
		if diff := nb.Dist - dists[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("neighbor %d dist %v want %v", i, nb.Dist, dists[i])
		}
	}
}

func TestDeleteDrainsTree(t *testing.T) {
	for _, build := range []string{"insert", "bulk"} {
		items := randomItems(400, 31)
		var tr *Tree
		if build == "insert" {
			tr = insertAll(items, 8)
		} else {
			tr = Bulk(items, 8)
		}
		live := map[int]Item{}
		for _, it := range items {
			live[it.ID] = it
		}
		rng := rand.New(rand.NewSource(32))
		order := rng.Perm(len(items))
		for step, idx := range order {
			if !tr.Delete(items[idx]) {
				t.Fatalf("%s: delete of present item %d failed", build, idx)
			}
			delete(live, items[idx].ID)
			if step%7 == 0 || len(live) < 20 {
				checkAgainst(t, tr, live, rng)
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("%s: drained tree has Len=%d", build, tr.Len())
		}
		// A drained tree accepts fresh inserts.
		tr.Insert(Item{P: geom.Pt(0.5, 0.5), ID: 999})
		if got := tr.KNN(geom.Pt(0, 0), 1); len(got) != 1 || got[0].Item.ID != 999 {
			t.Fatalf("%s: reuse after drain failed: %+v", build, got)
		}
	}
}

func TestDeleteMiss(t *testing.T) {
	items := randomItems(50, 33)
	tr := Bulk(items, 8)
	v := tr.Version()
	if tr.Delete(Item{P: geom.Pt(2, 2), ID: 0}) {
		t.Fatal("deleted an item whose location is absent")
	}
	// Same location, wrong ID: must miss (IDs disambiguate duplicates).
	if tr.Delete(Item{P: items[3].P, ID: 4999}) {
		t.Fatal("deleted an item with mismatched ID")
	}
	if tr.Version() != v {
		t.Fatalf("miss bumped version %d -> %d", v, tr.Version())
	}
	if tr.Len() != 50 {
		t.Fatalf("Len=%d", tr.Len())
	}
	empty := New(8)
	if empty.Delete(items[0]) {
		t.Fatal("delete on empty tree reported success")
	}
}

func TestDeleteDuplicatePoints(t *testing.T) {
	tr := New(8)
	p := geom.Pt(0.3, 0.7)
	for i := 0; i < 60; i++ {
		tr.Insert(Item{P: p, ID: i})
	}
	for i := 0; i < 60; i += 2 {
		if !tr.Delete(Item{P: p, ID: i}) {
			t.Fatalf("delete dup %d failed", i)
		}
	}
	if tr.Len() != 30 {
		t.Fatalf("Len=%d want 30", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	ids := map[int]bool{}
	tr.All(func(it Item) bool { ids[it.ID] = true; return true })
	for i := 1; i < 60; i += 2 {
		if !ids[i] {
			t.Fatalf("surviving dup %d missing", i)
		}
	}
}

func TestInsertDeleteInterleaving(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	tr := New(8)
	live := map[int]Item{}
	nextID := 0
	for step := 0; step < 3000; step++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			// Delete a random live item.
			var victim Item
			n := rng.Intn(len(live))
			for _, it := range live {
				if n == 0 {
					victim = it
					break
				}
				n--
			}
			if !tr.Delete(victim) {
				t.Fatalf("step %d: delete %+v failed", step, victim)
			}
			delete(live, victim.ID)
		} else {
			it := Item{P: geom.Pt(rng.Float64(), rng.Float64()), ID: nextID}
			nextID++
			tr.Insert(it)
			live[it.ID] = it
		}
		if step%251 == 0 {
			checkAgainst(t, tr, live, rng)
		}
	}
	checkAgainst(t, tr, live, rng)
}

func TestRebuildEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	items := randomItems(1200, 38)
	tr := Bulk(items, 8)
	live := map[int]Item{}
	for _, it := range items {
		live[it.ID] = it
	}
	// Churn hard, then re-pack.
	for _, idx := range rng.Perm(len(items))[:900] {
		tr.Delete(items[idx])
		delete(live, items[idx].ID)
	}
	hBefore := tr.Height()
	v := tr.Version()
	tr.Rebuild()
	if tr.Version() != v+1 {
		t.Fatalf("Rebuild version %d want %d", tr.Version(), v+1)
	}
	if h := tr.Height(); h > hBefore {
		t.Fatalf("Rebuild grew height %d -> %d", hBefore, h)
	}
	checkAgainst(t, tr, live, rng)

	// Rebuild of an empty tree is a no-op apart from the version bump.
	empty := New(8)
	empty.Rebuild()
	if empty.Len() != 0 || empty.Version() != 1 {
		t.Fatalf("empty Rebuild: Len=%d Version=%d", empty.Len(), empty.Version())
	}
}

// TestMutationVersionOrdering is the regression test for the
// version-before-mutation bug: the version counter used to be bumped at
// the top of Insert, so an observer reading between the bump and the
// structural change pinned the new version against the old tree. The
// mutateHook fires after the structural change and before publication;
// from inside it, the mutation must already be visible while the version
// still reads the old value.
func TestMutationVersionOrdering(t *testing.T) {
	tr := New(8)
	for _, it := range randomItems(100, 41) {
		tr.Insert(it)
	}
	probe := Item{P: geom.Pt(0.25, 0.75), ID: 4242}

	contains := func(want Item) bool {
		found := false
		tr.Search(pointRect(want.P), func(it Item) bool {
			found = it == want
			return !found
		})
		return found
	}

	fired := 0
	tr.mutateHook = func() {
		fired++
		if v := tr.Version(); v != 100 {
			t.Fatalf("hook %d: version already %d before publication", fired, v)
		}
		switch fired {
		case 1: // inside Insert: the new item must be searchable
			if !contains(probe) {
				t.Fatal("insert published version before the item was searchable")
			}
		case 2: // inside Delete: the item must already be gone
			if contains(probe) {
				t.Fatal("delete published version before the item was removed")
			}
		}
	}
	tr.Insert(probe)
	if tr.Version() != 101 {
		t.Fatalf("version after insert = %d", tr.Version())
	}
	tr.SetVersion(100) // reset so both hooks assert the same pre-publication value
	if !tr.Delete(probe) {
		t.Fatal("delete failed")
	}
	if fired != 2 {
		t.Fatalf("hook fired %d times", fired)
	}
	if tr.Version() != 101 {
		t.Fatalf("version after delete = %d", tr.Version())
	}
}

func TestSetVersion(t *testing.T) {
	tr := New(8)
	tr.SetVersion(77)
	if tr.Version() != 77 {
		t.Fatalf("Version=%d", tr.Version())
	}
	tr.Insert(Item{P: geom.Pt(0, 0), ID: 0})
	if tr.Version() != 78 {
		t.Fatalf("Version after insert=%d", tr.Version())
	}
}

func BenchmarkDelete(b *testing.B) {
	items := randomItems(21287, 51)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; {
		b.StopTimer()
		tr := Bulk(items, DefaultMaxEntries)
		b.StartTimer()
		for _, it := range items {
			if i >= b.N {
				break
			}
			tr.Delete(it)
			i++
		}
	}
}
