package rtree

import (
	"mpn/internal/geom"
)

// pqEntry is a priority-queue element for best-first traversal: either a
// node to expand or an item ready to be reported.
type pqEntry struct {
	dist float64
	node *node
	item Item
}

// Scratch holds the reusable traversal state of the search primitives:
// the typed best-first priority queue and the explicit stack of the
// pruned depth-first walk. The zero value is ready to use. Reusing one
// Scratch across searches retains the grown backing arrays, so
// steady-state traversals allocate nothing. A Scratch is not safe for
// concurrent use; give each goroutine its own.
type Scratch struct {
	pq    []pqEntry
	stack []*node
}

// pqPush appends e and restores the min-heap order on dist. A typed
// sift-up instead of container/heap avoids boxing every entry through
// the interface{} API (one heap allocation per push).
//
// This heap deliberately stays a hand-typed copy rather than using the
// generic internal/heapq helper (which the colder roadnet Dijkstra
// queue does use): measured on BenchmarkBestFirstInto (top-50 kNN over
// 21,287 points, go1.24 linux/amd64), the generic form ran ~21.0µs/op
// against ~14.1µs/op typed — a ~49% regression, far beyond the 1%
// budget — because pqEntry's pointer field puts Less behind a gcshape
// dictionary call in the innermost loop. Re-evaluate if the compiler
// learns to devirtualize shape-stenciled methods.
func pqPush(q []pqEntry, e pqEntry) []pqEntry {
	q = append(q, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].dist <= q[i].dist {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
	return q
}

// pqPop removes and returns the minimum entry.
func pqPop(q []pqEntry) (pqEntry, []pqEntry) {
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && q[r].dist < q[l].dist {
			least = r
		}
		if q[i].dist <= q[least].dist {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	return top, q
}

// BestFirstQuery parameterizes BestFirstInto. Implementations are
// typically small structs resident in a caller-owned workspace, passed by
// pointer so the interface conversion does not allocate.
type BestFirstQuery interface {
	// NodeLB lower-bounds ItemDist over every item stored under a node
	// with the given MBR.
	NodeLB(geom.Rect) float64
	// ItemDist is an item's exact distance.
	ItemDist(Item) float64
	// Visit receives items in non-decreasing ItemDist order; returning
	// false stops the traversal.
	Visit(Item, float64) bool
}

// BestFirstInto visits items in non-decreasing ItemDist order using q's
// NodeLB to order and prune internal nodes, with all traversal state in
// s. It is the allocation-free core of BestFirst: after s's priority
// queue has grown to the traversal's working size, repeated searches
// allocate nothing.
func (t *Tree) BestFirstInto(s *Scratch, q BestFirstQuery) {
	if t.size == 0 {
		return
	}
	pq := pqPush(s.pq[:0], pqEntry{dist: q.NodeLB(t.root.mbr()), node: t.root})
	for len(pq) > 0 {
		var e pqEntry
		e, pq = pqPop(pq)
		if e.node == nil {
			if !q.Visit(e.item, e.dist) {
				break
			}
			continue
		}
		for _, c := range e.node.entries {
			if e.node.leaf {
				pq = pqPush(pq, pqEntry{dist: q.ItemDist(c.item), item: c.item})
			} else {
				pq = pqPush(pq, pqEntry{dist: q.NodeLB(c.mbr), node: c.child})
			}
		}
	}
	s.pq = pq[:0]
}

// funcBestFirst adapts the closure-based BestFirst API to BestFirstQuery.
type funcBestFirst struct {
	nodeLB   func(geom.Rect) float64
	itemDist func(Item) float64
	visit    func(Item, float64) bool
}

func (f *funcBestFirst) NodeLB(r geom.Rect) float64    { return f.nodeLB(r) }
func (f *funcBestFirst) ItemDist(it Item) float64      { return f.itemDist(it) }
func (f *funcBestFirst) Visit(it Item, d float64) bool { return f.visit(it, d) }

// BestFirst visits items in non-decreasing order of itemDist, using nodeLB
// as a lower bound to order and prune internal nodes: nodeLB(mbr) must be
// ≤ itemDist(it) for every item it stored under a node with that MBR.
// visit returning false stops the traversal.
//
// This single primitive implements kNN (nodeLB = MinDist to the query
// point), aggregate GNN searches (nodeLB = aggregate of MinDists to all
// users, per [24]), and incremental candidate enumeration for safe-region
// verification. Hot paths that cannot afford the per-call scratch
// allocation use BestFirstInto with a reused Scratch instead.
func (t *Tree) BestFirst(
	nodeLB func(geom.Rect) float64,
	itemDist func(Item) float64,
	visit func(Item, float64) bool,
) {
	var s Scratch
	f := funcBestFirst{nodeLB: nodeLB, itemDist: itemDist, visit: visit}
	t.BestFirstInto(&s, &f)
}

// Neighbor is one kNN result.
type Neighbor struct {
	Item Item
	Dist float64
}

// KNN returns the k nearest items to q in increasing distance order. If the
// tree holds fewer than k items, all of them are returned.
func (t *Tree) KNN(q geom.Point, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	out := make([]Neighbor, 0, k)
	t.BestFirst(
		func(r geom.Rect) float64 { return r.MinDist(q) },
		func(it Item) float64 { return it.P.Dist(q) },
		func(it Item, d float64) bool {
			out = append(out, Neighbor{Item: it, Dist: d})
			return len(out) < k
		},
	)
	return out
}

// PruneQuery parameterizes PrunedSearchInto. As with BestFirstQuery,
// implementations live in a caller-owned workspace and are passed by
// pointer, so one traversal performs no allocations at all.
type PruneQuery interface {
	// Keep decides whether a subtree (or a leaf item's point-rect) can
	// contain candidates and should be descended into.
	Keep(geom.Rect) bool
	// VisitItem receives every kept item; returning false stops the
	// search.
	VisitItem(Item) bool
}

// PrunedSearchInto walks the tree iteratively with an explicit stack in
// s, descending only into entries for which q.Keep returns true and
// invoking q.VisitItem on every kept leaf item. It visits items in the
// same depth-first order as the recursive formulation and reports whether
// the search ran to completion.
func (t *Tree) PrunedSearchInto(s *Scratch, q PruneQuery) bool {
	if t.size == 0 {
		return true
	}
	stack := append(s.stack[:0], t.root)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.leaf {
			for _, e := range n.entries {
				if !q.Keep(e.mbr) {
					continue
				}
				if !q.VisitItem(e.item) {
					s.stack = stack[:0]
					return false
				}
			}
			continue
		}
		// Push children in reverse so they pop in entry order, matching
		// the recursive depth-first visit sequence.
		for i := len(n.entries) - 1; i >= 0; i-- {
			if q.Keep(n.entries[i].mbr) {
				stack = append(stack, n.entries[i].child)
			}
		}
	}
	s.stack = stack[:0]
	return true
}

// funcPrune adapts the closure-based PrunedSearch API to PruneQuery.
type funcPrune struct {
	keep func(geom.Rect) bool
	fn   func(Item) bool
}

func (f *funcPrune) Keep(r geom.Rect) bool  { return f.keep(r) }
func (f *funcPrune) VisitItem(it Item) bool { return f.fn(it) }

// PrunedSearch walks the tree, descending only into nodes for which keep
// returns true, and invokes fn on every item in a kept leaf whose own
// point-rect also passes keep. It implements the Theorem 3 / Theorem 6
// index pruning: keep receives an MBR and decides whether the subtree can
// contain candidate meeting points.
func (t *Tree) PrunedSearch(keep func(geom.Rect) bool, fn func(Item) bool) bool {
	var s Scratch
	f := funcPrune{keep: keep, fn: fn}
	return t.PrunedSearchInto(&s, &f)
}
