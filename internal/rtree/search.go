package rtree

import (
	"container/heap"

	"mpn/internal/geom"
)

// pqEntry is a priority-queue element for best-first traversal: either a
// node to expand or an item ready to be reported.
type pqEntry struct {
	dist float64
	node *node
	item Item
}

type pq []pqEntry

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqEntry)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// BestFirst visits items in non-decreasing order of itemDist, using nodeLB
// as a lower bound to order and prune internal nodes: nodeLB(mbr) must be
// ≤ itemDist(it) for every item it stored under a node with that MBR.
// visit returning false stops the traversal.
//
// This single primitive implements kNN (nodeLB = MinDist to the query
// point), aggregate GNN searches (nodeLB = aggregate of MinDists to all
// users, per [24]), and incremental candidate enumeration for safe-region
// verification.
func (t *Tree) BestFirst(
	nodeLB func(geom.Rect) float64,
	itemDist func(Item) float64,
	visit func(Item, float64) bool,
) {
	if t.size == 0 {
		return
	}
	q := pq{{dist: nodeLB(t.root.mbr()), node: t.root}}
	for len(q) > 0 {
		e := heap.Pop(&q).(pqEntry)
		if e.node == nil {
			if !visit(e.item, e.dist) {
				return
			}
			continue
		}
		for _, c := range e.node.entries {
			if e.node.leaf {
				heap.Push(&q, pqEntry{dist: itemDist(c.item), item: c.item})
			} else {
				heap.Push(&q, pqEntry{dist: nodeLB(c.mbr), node: c.child})
			}
		}
	}
}

// Neighbor is one kNN result.
type Neighbor struct {
	Item Item
	Dist float64
}

// KNN returns the k nearest items to q in increasing distance order. If the
// tree holds fewer than k items, all of them are returned.
func (t *Tree) KNN(q geom.Point, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	out := make([]Neighbor, 0, k)
	t.BestFirst(
		func(r geom.Rect) float64 { return r.MinDist(q) },
		func(it Item) float64 { return it.P.Dist(q) },
		func(it Item, d float64) bool {
			out = append(out, Neighbor{Item: it, Dist: d})
			return len(out) < k
		},
	)
	return out
}

// PrunedSearch walks the tree, descending only into nodes for which keep
// returns true, and invokes fn on every item in a kept leaf whose own
// point-rect also passes keep. It implements the Theorem 3 / Theorem 6
// index pruning: keep receives an MBR and decides whether the subtree can
// contain candidate meeting points.
func (t *Tree) PrunedSearch(keep func(geom.Rect) bool, fn func(Item) bool) bool {
	if t.size == 0 {
		return true
	}
	return prunedNode(t.root, keep, fn)
}

func prunedNode(n *node, keep func(geom.Rect) bool, fn func(Item) bool) bool {
	for _, e := range n.entries {
		if !keep(e.mbr) {
			continue
		}
		if n.leaf {
			if !fn(e.item) {
				return false
			}
		} else if !prunedNode(e.child, keep, fn) {
			return false
		}
	}
	return true
}
