package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"mpn/internal/geom"
)

func mustGenerate(t testing.TB, cfg Config) *Network {
	t.Helper()
	n, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestGenerateBasics(t *testing.T) {
	n := mustGenerate(t, DefaultConfig())
	if n.NumNodes() < 1000 {
		t.Fatalf("network too small: %d nodes", n.NumNodes())
	}
	if n.NumEdges() < n.NumNodes() {
		t.Fatalf("network too sparse: %d edges for %d nodes", n.NumEdges(), n.NumNodes())
	}
	for _, nd := range n.Nodes {
		if nd.P.X < 0 || nd.P.X > 1 || nd.P.Y < 0 || nd.P.Y > 1 {
			t.Fatalf("node %d outside unit square: %v", nd.ID, nd.P)
		}
	}
	// Adjacency symmetric.
	for a := range n.Adj {
		for _, e := range n.Adj[a] {
			found := false
			for _, back := range n.Adj[e.To] {
				if back.To == a {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d not symmetric", a, e.To)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Rows: 1, Cols: 5}); err == nil {
		t.Fatal("tiny grid accepted")
	}
	if _, err := Generate(Config{Rows: 5, Cols: 5, DropFrac: 1.5}); err == nil {
		t.Fatal("bad DropFrac accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, DefaultConfig())
	b := mustGenerate(t, DefaultConfig())
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different networks")
	}
	cfg := DefaultConfig()
	cfg.Seed = 2
	c := mustGenerate(t, cfg)
	if a.NumNodes() == c.NumNodes() && a.NumEdges() == c.NumEdges() &&
		a.Nodes[0].P == c.Nodes[0].P {
		t.Fatal("different seeds produced identical networks")
	}
}

func TestConnectivity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DropFrac = 0.3 // aggressive dropping still must leave one component
	n := mustGenerate(t, cfg)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		a, b := n.RandomNode(rng), n.RandomNode(rng)
		if _, _, ok := n.ShortestPath(a, b); !ok {
			t.Fatalf("nodes %d and %d disconnected", a, b)
		}
	}
}

func TestShortestPathProperties(t *testing.T) {
	n := mustGenerate(t, Config{Rows: 12, Cols: 12, Jitter: 0.2, DropFrac: 0.1, Arterials: 5, Seed: 3})
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 100; i++ {
		a, b := n.RandomNode(rng), n.RandomNode(rng)
		path, d, ok := n.ShortestPath(a, b)
		if !ok {
			t.Fatal("disconnected")
		}
		if path[0] != a || path[len(path)-1] != b {
			t.Fatal("path endpoints wrong")
		}
		// Path length consistent with edge sum.
		sum := 0.0
		for k := 1; k < len(path); k++ {
			sum += n.Nodes[path[k-1]].P.Dist(n.Nodes[path[k]].P)
		}
		if math.Abs(sum-d) > 1e-9 {
			t.Fatalf("path sum %v != reported %v", sum, d)
		}
		// Symmetry.
		_, d2, _ := n.ShortestPath(b, a)
		if math.Abs(d-d2) > 1e-9 {
			t.Fatalf("asymmetric distances: %v vs %v", d, d2)
		}
		// Lower bounded by Euclidean distance.
		if d < n.Nodes[a].P.Dist(n.Nodes[b].P)-1e-9 {
			t.Fatal("network distance below Euclidean")
		}
	}
}

func TestTriangleInequality(t *testing.T) {
	n := mustGenerate(t, Config{Rows: 10, Cols: 10, Jitter: 0.1, DropFrac: 0.05, Arterials: 3, Seed: 4})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		a, b, c := n.RandomNode(rng), n.RandomNode(rng), n.RandomNode(rng)
		_, dab, _ := n.ShortestPath(a, b)
		_, dbc, _ := n.ShortestPath(b, c)
		_, dac, _ := n.ShortestPath(a, c)
		if dac > dab+dbc+1e-9 {
			t.Fatalf("triangle inequality violated: d(%d,%d)=%v > %v+%v", a, c, dac, dab, dbc)
		}
	}
}

func TestShortestPathTrivial(t *testing.T) {
	n := mustGenerate(t, Config{Rows: 3, Cols: 3, Seed: 5})
	path, d, ok := n.ShortestPath(0, 0)
	if !ok || d != 0 || len(path) != 1 {
		t.Fatalf("self path: %v %v %v", path, d, ok)
	}
}

func TestNearestNode(t *testing.T) {
	n := mustGenerate(t, Config{Rows: 8, Cols: 8, Seed: 6})
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 50; i++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		got := n.NearestNode(p)
		for _, nd := range n.Nodes {
			if nd.P.Dist(p) < n.Nodes[got].P.Dist(p)-1e-12 {
				t.Fatalf("NearestNode missed closer node %d", nd.ID)
			}
		}
	}
}

func BenchmarkShortestPath(b *testing.B) {
	n := mustGenerate(b, DefaultConfig())
	rng := rand.New(rand.NewSource(13))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := n.RandomNode(rng), n.RandomNode(rng)
		n.ShortestPath(a, c)
	}
}
