// Package roadnet provides a synthetic road network and shortest-path
// routing. It is the substrate for the Brinkhoff-style network-constrained
// trajectory generator [27] that stands in for the paper's Oldenburg data
// set: a perturbed grid of streets with randomly removed segments and a
// sparse set of diagonal arterials, restricted to its largest connected
// component so every routing request succeeds.
package roadnet

import (
	"fmt"
	"math"
	"math/rand"

	"mpn/internal/geom"
	"mpn/internal/heapq"
)

// Node is a road junction.
type Node struct {
	ID int
	P  geom.Point
}

// Edge is a directed road segment (networks are built symmetric).
type Edge struct {
	To  int
	Len float64
}

// Network is a routable road graph embedded in the unit square.
type Network struct {
	Nodes []Node
	Adj   [][]Edge
}

// Config controls network generation.
type Config struct {
	// Rows and Cols set the underlying junction grid (Rows×Cols nodes).
	Rows, Cols int
	// Jitter displaces each junction by up to ±Jitter·cellSize on each
	// axis, bending the streets.
	Jitter float64
	// DropFrac removes this fraction of grid edges (dead ends, rivers).
	DropFrac float64
	// Arterials adds this many long diagonal shortcut roads.
	Arterials int
	// Seed drives the generator deterministically.
	Seed int64
}

// DefaultConfig is a city-scale network: ~1,600 junctions.
func DefaultConfig() Config {
	return Config{Rows: 40, Cols: 40, Jitter: 0.3, DropFrac: 0.12, Arterials: 30, Seed: 1}
}

// Generate builds a network from cfg. The result is always connected (it
// is the largest connected component of the raw perturbed grid) and has at
// least one node.
func Generate(cfg Config) (*Network, error) {
	if cfg.Rows < 2 || cfg.Cols < 2 {
		return nil, fmt.Errorf("roadnet: grid %dx%d too small", cfg.Rows, cfg.Cols)
	}
	if cfg.DropFrac < 0 || cfg.DropFrac >= 1 {
		return nil, fmt.Errorf("roadnet: DropFrac %v out of [0,1)", cfg.DropFrac)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	rows, cols := cfg.Rows, cfg.Cols
	cw := 1.0 / float64(cols-1)
	ch := 1.0 / float64(rows-1)

	nodes := make([]Node, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := r*cols + c
			jx := (rng.Float64()*2 - 1) * cfg.Jitter * cw
			jy := (rng.Float64()*2 - 1) * cfg.Jitter * ch
			nodes[id] = Node{
				ID: id,
				P: geom.Pt(
					clamp01(float64(c)*cw+jx),
					clamp01(float64(r)*ch+jy),
				),
			}
		}
	}

	type rawEdge struct{ a, b int }
	var raw []rawEdge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := r*cols + c
			if c+1 < cols {
				raw = append(raw, rawEdge{id, id + 1})
			}
			if r+1 < rows {
				raw = append(raw, rawEdge{id, id + cols})
			}
		}
	}
	// Drop a fraction of street segments.
	rng.Shuffle(len(raw), func(i, j int) { raw[i], raw[j] = raw[j], raw[i] })
	kept := raw[int(float64(len(raw))*cfg.DropFrac):]

	// Diagonal arterials between random distant junctions.
	for i := 0; i < cfg.Arterials; i++ {
		a := rng.Intn(len(nodes))
		b := rng.Intn(len(nodes))
		if a != b {
			kept = append(kept, rawEdge{a, b})
		}
	}

	adj := make([][]Edge, len(nodes))
	addEdge := func(a, b int) {
		l := nodes[a].P.Dist(nodes[b].P)
		adj[a] = append(adj[a], Edge{To: b, Len: l})
		adj[b] = append(adj[b], Edge{To: a, Len: l})
	}
	for _, e := range kept {
		addEdge(e.a, e.b)
	}

	return largestComponent(&Network{Nodes: nodes, Adj: adj}), nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// largestComponent extracts the biggest connected component and relabels
// its node IDs densely.
func largestComponent(n *Network) *Network {
	comp := make([]int, len(n.Nodes))
	for i := range comp {
		comp[i] = -1
	}
	bestID, bestSize := -1, 0
	nextComp := 0
	var stack []int
	for start := range n.Nodes {
		if comp[start] != -1 {
			continue
		}
		size := 0
		stack = append(stack[:0], start)
		comp[start] = nextComp
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, e := range n.Adj[v] {
				if comp[e.To] == -1 {
					comp[e.To] = nextComp
					stack = append(stack, e.To)
				}
			}
		}
		if size > bestSize {
			bestSize, bestID = size, nextComp
		}
		nextComp++
	}

	remap := make([]int, len(n.Nodes))
	out := &Network{}
	for i, nd := range n.Nodes {
		if comp[i] == bestID {
			remap[i] = len(out.Nodes)
			out.Nodes = append(out.Nodes, Node{ID: len(out.Nodes), P: nd.P})
		} else {
			remap[i] = -1
		}
	}
	out.Adj = make([][]Edge, len(out.Nodes))
	for i := range n.Nodes {
		if comp[i] != bestID {
			continue
		}
		for _, e := range n.Adj[i] {
			out.Adj[remap[i]] = append(out.Adj[remap[i]], Edge{To: remap[e.To], Len: e.Len})
		}
	}
	return out
}

// NumNodes returns the junction count.
func (n *Network) NumNodes() int { return len(n.Nodes) }

// NumEdges returns the undirected edge count.
func (n *Network) NumEdges() int {
	total := 0
	for _, a := range n.Adj {
		total += len(a)
	}
	return total / 2
}

// RandomNode returns a uniformly random junction ID.
func (n *Network) RandomNode(rng *rand.Rand) int {
	return rng.Intn(len(n.Nodes))
}

// NearestNode returns the junction closest to p (linear scan; networks are
// small and this is called once per trajectory).
func (n *Network) NearestNode(p geom.Point) int {
	best, bestD := 0, math.Inf(1)
	for i, nd := range n.Nodes {
		if d := nd.P.Dist2(p); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// spEntry is a Dijkstra priority-queue element. The queue itself is the
// generic internal/heapq min-heap: this path runs during trajectory
// generation, not per update, so unlike the R-tree's best-first queue
// (see the measurement note in rtree/search.go) it can afford the
// generic instantiation in exchange for not duplicating the sift code.
type spEntry struct {
	node int
	dist float64
}

// Less orders entries by distance for heapq.
func (e spEntry) Less(o spEntry) bool { return e.dist < o.dist }

// ShortestPath returns the node sequence and length of the shortest path
// from a to b (Dijkstra). ok is false only if a and b are disconnected,
// which cannot happen on Generate output.
func (n *Network) ShortestPath(a, b int) (path []int, length float64, ok bool) {
	if a == b {
		return []int{a}, 0, true
	}
	dist := make([]float64, len(n.Nodes))
	prev := make([]int, len(n.Nodes))
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[a] = 0
	q := []spEntry{{node: a}}
	for len(q) > 0 {
		var e spEntry
		e, q = heapq.Pop(q)
		if e.dist > dist[e.node] {
			continue
		}
		if e.node == b {
			break
		}
		for _, ed := range n.Adj[e.node] {
			nd := e.dist + ed.Len
			if nd < dist[ed.To] {
				dist[ed.To] = nd
				prev[ed.To] = e.node
				q = heapq.Push(q, spEntry{node: ed.To, dist: nd})
			}
		}
	}
	if math.IsInf(dist[b], 1) {
		return nil, 0, false
	}
	for v := b; v != -1; v = prev[v] {
		path = append(path, v)
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[b], true
}
