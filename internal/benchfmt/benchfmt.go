// Package benchfmt defines the machine-readable benchmark report format
// shared by its producer (cmd/mpnbench -json, committed as
// BENCH_plan.json) and its consumer (cmd/benchgate), so the schema
// cannot silently drift between the two: a field rename that decoded to
// a zero value on one side would otherwise disable the gate for that
// field without any error.
package benchfmt

// Series is one benchmark series: a named measurement at one group size.
type Series struct {
	// Name identifies the measured path: "plan" (planner kernel, owned
	// workspace), "update" (engine synchronous recomputation),
	// "update_inc" (incremental engine, in-region jitter: the kept-plan
	// fast path), "update_escape"/"update_inc_escape" (one member
	// oscillating out of her region, full-replan vs incremental engine),
	// the "multi_group_*" family (G co-located or dispersed groups on
	// one incremental engine, with and without the shared GNN cache;
	// "multi_group_miss" forces an eviction+miss on every lookup to
	// price the worst-case miss path), "notify_encode_full"/
	// "notify_encode_delta" (server-side cost of serializing one
	// kept-path notification round to all m members, full protocol vs
	// epoch-tracked delta protocol), "notify_bytes_full"/
	// "notify_bytes_delta" (WireBytes only: the wire size of that same
	// round), or the "churn_*" family — planning under live POI churn:
	// "churn_plan"/"churn_plan_cached" (planner kernel with a localized
	// mutation batch landing every few iterations, uncached vs the
	// shared GNN cache; the cached series carries the cache counters and
	// cmd/benchgate enforces its hit-rate floor) and "churn_mutate" (one
	// batched ApplyPOIs publication: shadow catch-up, R-tree
	// insert/delete, snapshot swap, cache advance).
	Name        string  `json:"name"`
	GroupSize   int     `json:"group_size"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`

	// WireBytes is the deterministic bytes-on-wire of one notification
	// event (one kept-path recomputation fanned out to all m members,
	// frame length prefixes included) for the notify_bytes_* series;
	// omitted elsewhere. Machine-independent, so cmd/benchgate compares
	// it without normalization and additionally enforces the delta
	// protocol's steady-state reduction ratio.
	WireBytes float64 `json:"wire_bytes,omitempty"`

	// CacheHits/CacheMisses/CacheRejected report the shared GNN cache
	// counters accumulated over the series' benchmark run (cached series
	// only; omitted otherwise), so a hit-rate regression is visible in
	// the committed artifacts even though only ns/op and allocs/op are
	// gated.
	CacheHits     uint64 `json:"cache_hits,omitempty"`
	CacheMisses   uint64 `json:"cache_misses,omitempty"`
	CacheRejected uint64 `json:"cache_rejected,omitempty"`
}

// Report is the full benchmark report with its workload parameters.
type Report struct {
	Description string   `json:"description"`
	GoMaxProcs  int      `json:"gomaxprocs"`
	POIs        int      `json:"pois"`
	TileLimit   int      `json:"tile_limit"`
	Buffer      int      `json:"buffer"`
	Series      []Series `json:"series"`
}
