// Package benchfmt defines the machine-readable benchmark report format
// shared by its producer (cmd/mpnbench -json, committed as
// BENCH_plan.json) and its consumer (cmd/benchgate), so the schema
// cannot silently drift between the two: a field rename that decoded to
// a zero value on one side would otherwise disable the gate for that
// field without any error.
package benchfmt

// Series is one benchmark series: a named measurement at one group size.
type Series struct {
	// Name identifies the measured path: "plan" (planner kernel, owned
	// workspace), "update" (engine synchronous recomputation),
	// "update_inc" (incremental engine, in-region jitter: the kept-plan
	// fast path), or "update_escape"/"update_inc_escape" (one member
	// oscillating out of her region, full-replan vs incremental engine).
	Name        string  `json:"name"`
	GroupSize   int     `json:"group_size"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the full benchmark report with its workload parameters.
type Report struct {
	Description string   `json:"description"`
	GoMaxProcs  int      `json:"gomaxprocs"`
	POIs        int      `json:"pois"`
	TileLimit   int      `json:"tile_limit"`
	Buffer      int      `json:"buffer"`
	Series      []Series `json:"series"`
}
