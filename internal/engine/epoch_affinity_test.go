package engine

import (
	"math/rand"
	"testing"
	"time"

	"mpn/internal/core"
	"mpn/internal/geom"
)

func epochTestPlanner(t *testing.T) *core.Planner {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	pois := make([]geom.Point, 2000)
	for i := range pois {
		pois[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	opts := core.DefaultOptions()
	opts.TileLimit = 8
	opts.Buffer = 30
	planner, err := core.NewPlanner(pois, opts)
	if err != nil {
		t.Fatal(err)
	}
	return planner
}

func nextNotification(t *testing.T, sub *Subscription) Notification {
	t.Helper()
	select {
	case n, ok := <-sub.C:
		if !ok {
			t.Fatal("subscription closed")
		}
		return n
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for notification")
	}
	return Notification{}
}

// TestNotificationEpochs asserts the epoch vector rides every successful
// notification of an incremental engine and follows the core contract:
// registration starts every slot at 1, a kept update advances nothing, a
// forced-full update advances every changed slot, and the vector is a
// private copy (stable after later recomputations).
func TestNotificationEpochs(t *testing.T) {
	planner := epochTestPlanner(t)
	eng := NewWS(PlannerWSFunc(planner, false), Options{
		Shards: 1, Replan: PlannerIncFunc(planner, false),
	})
	defer eng.Close()
	sub := eng.Subscribe(64)
	defer sub.Close()

	users := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.52, 0.51), geom.Pt(0.49, 0.53)}
	id, err := eng.Register(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := nextNotification(t, sub)
	if reg.Seq != 1 || len(reg.Epochs) != len(users) {
		t.Fatalf("registration notification: seq=%d epochs=%v", reg.Seq, reg.Epochs)
	}
	for i, e := range reg.Epochs {
		if e != 1 {
			t.Fatalf("slot %d registration epoch %d, want 1", i, e)
		}
	}
	if got := eng.Epochs(id); len(got) != len(users) {
		t.Fatalf("Epochs() = %v", got)
	}

	// In-region jitter: kept, same vector.
	jit := append([]geom.Point(nil), users...)
	jit[0] = geom.Pt(users[0].X+1e-6, users[0].Y+1e-6)
	if err := eng.Update(id, jit, nil); err != nil {
		t.Fatal(err)
	}
	kept := nextNotification(t, sub)
	if kept.Outcome != core.IncKept {
		t.Skipf("jitter outcome %v, workload unsuitable", kept.Outcome)
	}
	for i, e := range kept.Epochs {
		if e != reg.Epochs[i] {
			t.Fatalf("kept update advanced slot %d: %d → %d", i, reg.Epochs[i], e)
		}
	}

	// Forced-full: the regions are regrown; every slot whose content
	// changed advances, and the emitted vector must not change under a
	// later recomputation (it is a copy, not a view).
	if err := eng.UpdateFull(id, jit, nil); err != nil {
		t.Fatal(err)
	}
	full := nextNotification(t, sub)
	if full.Outcome != core.IncFull {
		t.Fatalf("forced-full outcome %v", full.Outcome)
	}
	for i := range full.Epochs {
		if full.Epochs[i] < kept.Epochs[i] {
			t.Fatalf("slot %d epoch went backwards: %d → %d", i, kept.Epochs[i], full.Epochs[i])
		}
	}
	snapshot := append([]uint64(nil), full.Epochs...)
	if err := eng.UpdateFull(id, jit, nil); err != nil {
		t.Fatal(err)
	}
	_ = nextNotification(t, sub)
	for i := range snapshot {
		if full.Epochs[i] != snapshot[i] {
			t.Fatal("notification epoch vector mutated by a later recomputation")
		}
	}
}

// TestNotificationEpochsNonIncremental: engines without Options.Replan
// carry no epochs at all.
func TestNotificationEpochsNonIncremental(t *testing.T) {
	planner := epochTestPlanner(t)
	eng := NewWS(PlannerWSFunc(planner, false), Options{Shards: 1})
	defer eng.Close()
	sub := eng.Subscribe(8)
	defer sub.Close()
	users := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.52, 0.51)}
	id, err := eng.Register(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := nextNotification(t, sub); n.Epochs != nil {
		t.Fatalf("non-incremental registration carries epochs %v", n.Epochs)
	}
	if err := eng.Update(id, users, nil); err != nil {
		t.Fatal(err)
	}
	if n := nextNotification(t, sub); n.Epochs != nil {
		t.Fatalf("non-incremental update carries epochs %v", n.Epochs)
	}
	if got := eng.Epochs(id); got != nil {
		t.Fatalf("Epochs() = %v on non-incremental engine", got)
	}
}

// TestTileAffinityPlacement: with Options.TileAffinity, groups whose
// centroids share a quantized tile land on the same shard, and the whole
// register/update/submit/unregister lifecycle works through the
// shard-encoding GroupIDs.
func TestTileAffinityPlacement(t *testing.T) {
	planner := epochTestPlanner(t)
	eng := NewWS(PlannerWSFunc(planner, false), Options{
		Shards: 8, TileAffinity: DefaultTileAffinity,
	})
	defer eng.Close()

	// Two co-located groups (same centroid tile) and one far away.
	colocA := []geom.Point{geom.Pt(0.5001, 0.5001), geom.Pt(0.5003, 0.5002)}
	colocB := []geom.Point{geom.Pt(0.5002, 0.5003), geom.Pt(0.5004, 0.5001)}
	far := []geom.Point{geom.Pt(0.1, 0.9), geom.Pt(0.102, 0.898)}

	idA, err := eng.Register(colocA, nil)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := eng.Register(colocB, nil)
	if err != nil {
		t.Fatal(err)
	}
	idFar, err := eng.Register(far, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eng.shardFor(idA) != eng.shardFor(idB) {
		t.Fatal("co-located groups placed on different shards under tile affinity")
	}
	if idA == idB || idA == idFar {
		t.Fatalf("group ids collide: %d %d %d", idA, idB, idFar)
	}

	// Lifecycle through encoded ids.
	for _, id := range []GroupID{idA, idB, idFar} {
		if eng.GroupSize(id) != 2 {
			t.Fatalf("group %d size %d", id, eng.GroupSize(id))
		}
	}
	if err := eng.Update(idA, colocA, nil); err != nil {
		t.Fatal(err)
	}
	sub := eng.Subscribe(8)
	defer sub.Close()
	if err := eng.Submit(idB, colocB, nil); err != nil {
		t.Fatal(err)
	}
	n := nextNotification(t, sub)
	if n.Group != idB {
		t.Fatalf("notification for group %d, want %d", n.Group, idB)
	}
	eng.Unregister(idFar)
	if eng.GroupSize(idFar) != 0 {
		t.Fatal("unregistered group still resolvable")
	}
	if eng.NumGroups() != 2 {
		t.Fatalf("NumGroups=%d want 2", eng.NumGroups())
	}
}
