package engine

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mpn/internal/core"
	"mpn/internal/geom"
)

// testPlanner builds a real planner over a small clustered POI set so the
// engine is exercised against the genuine compute kernel.
func testPlanner(t testing.TB, n int, seed int64) *core.Planner {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pois := make([]geom.Point, n)
	for i := range pois {
		pois[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	opts := core.DefaultOptions()
	opts.TileLimit = 4
	opts.Buffer = 10
	pl, err := core.NewPlanner(pois, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func tilePlan(pl *core.Planner) PlanFunc {
	return func(users []geom.Point, dirs []core.Direction) (geom.Point, []core.SafeRegion, core.Stats, error) {
		p, err := pl.TileMSR(users, dirs)
		if err != nil {
			return geom.Point{}, nil, core.Stats{}, err
		}
		return p.Best.Item.P, p.Regions, p.Stats, nil
	}
}

// quiesce blocks until no shard has queued or running work (test helper).
func (e *Engine) quiesce(t testing.TB) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		busy := false
		for _, sh := range e.shards {
			sh.mu.Lock()
			if len(sh.ready) > 0 {
				busy = true
			}
			for _, st := range sh.groups {
				st.mu.Lock()
				if st.queued || st.running || st.pending != nil {
					busy = true
				}
				st.mu.Unlock()
			}
			sh.mu.Unlock()
		}
		if !busy {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("engine did not quiesce")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRegisterAndAccessors(t *testing.T) {
	e := New(tilePlan(testPlanner(t, 400, 1)), Options{Shards: 4})
	defer e.Close()
	users := []geom.Point{geom.Pt(0.2, 0.2), geom.Pt(0.3, 0.25), geom.Pt(0.25, 0.3)}
	id, err := e.Register(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumGroups() != 1 || e.GroupSize(id) != 3 || e.Updates(id) != 1 {
		t.Fatalf("groups=%d size=%d updates=%d", e.NumGroups(), e.GroupSize(id), e.Updates(id))
	}
	if e.Meeting(id) == (geom.Point{}) {
		t.Fatal("zero meeting point")
	}
	regions := e.Regions(id)
	if len(regions) != 3 {
		t.Fatalf("regions=%d", len(regions))
	}
	for i, u := range users {
		if !regions[i].Contains(u) {
			t.Fatalf("region %d misses its user", i)
		}
		if e.NeedsUpdate(id, i, u) {
			t.Fatalf("in-region location %d flagged", i)
		}
	}
	if !e.NeedsUpdate(id, 99, users[0]) || !e.NeedsUpdate(id, -1, users[0]) {
		t.Fatal("out-of-range index must be conservative")
	}
	if !e.NeedsUpdate(GroupID(999), 0, users[0]) {
		t.Fatal("unknown group must be conservative")
	}
	if s := e.Stats(id); s.GNNCalls == 0 {
		t.Fatal("stats not recorded")
	}
}

func TestRegisterErrors(t *testing.T) {
	e := New(tilePlan(testPlanner(t, 100, 2)), Options{Shards: 2})
	defer e.Close()
	if _, err := e.Register(nil, nil); !errors.Is(err, ErrNoUsers) {
		t.Fatalf("want ErrNoUsers, got %v", err)
	}
	if err := e.Submit(GroupID(42), []geom.Point{geom.Pt(0.5, 0.5)}, nil); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("want ErrUnknownGroup, got %v", err)
	}
	id, err := e.Register([]geom.Point{geom.Pt(0.4, 0.4), geom.Pt(0.5, 0.5)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(id, []geom.Point{geom.Pt(0.4, 0.4)}, nil); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if err := e.Update(id, []geom.Point{geom.Pt(0.4, 0.4)}, nil); err == nil {
		t.Fatal("size mismatch accepted by Update")
	}
}

func TestSubmitNotifies(t *testing.T) {
	e := New(tilePlan(testPlanner(t, 400, 3)), Options{Shards: 4, Workers: 2})
	defer e.Close()
	sub := e.Subscribe(64)
	users := []geom.Point{geom.Pt(0.3, 0.3), geom.Pt(0.35, 0.32)}
	id, err := e.Register(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := <-sub.C
	if first.Group != id || first.Seq != 1 || !first.Changed {
		t.Fatalf("bad registration notification %+v", first)
	}
	moved := []geom.Point{geom.Pt(0.7, 0.7), geom.Pt(0.72, 0.68)}
	if err := e.Submit(id, moved, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-sub.C:
		if n.Group != id || n.Seq != 2 {
			t.Fatalf("bad notification %+v", n)
		}
		if len(n.Regions) != 2 || !n.Regions[0].Contains(moved[0]) || !n.Regions[1].Contains(moved[1]) {
			t.Fatal("notification regions do not cover the submitted locations")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no notification")
	}
	if e.Updates(id) != 2 {
		t.Fatalf("updates=%d", e.Updates(id))
	}
}

// TestCoalescing gates the planner so a burst of submissions piles up
// behind one running recomputation; the burst must collapse into a single
// extra recomputation covering all of it.
func TestCoalescing(t *testing.T) {
	pl := testPlanner(t, 300, 4)
	inner := tilePlan(pl)
	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	var gating sync.Mutex
	gateOn := false
	plan := func(users []geom.Point, dirs []core.Direction) (geom.Point, []core.SafeRegion, core.Stats, error) {
		gating.Lock()
		g := gateOn
		gating.Unlock()
		if g {
			started <- struct{}{}
			<-gate
		}
		return inner(users, dirs)
	}
	e := New(plan, Options{Shards: 1, Workers: 1})
	defer e.Close()
	users := []geom.Point{geom.Pt(0.4, 0.4), geom.Pt(0.45, 0.42)}
	id, err := e.Register(users, nil) // gate off: registration is instant
	if err != nil {
		t.Fatal(err)
	}
	sub := e.Subscribe(64)
	gating.Lock()
	gateOn = true
	gating.Unlock()

	// First submission occupies the single worker...
	if err := e.Submit(id, []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.52, 0.5)}, nil); err != nil {
		t.Fatal(err)
	}
	<-started // worker is now blocked inside the planner
	// ...and a burst of 9 more lands while it runs.
	const burst = 9
	final := []geom.Point{geom.Pt(0.6, 0.6), geom.Pt(0.62, 0.61)}
	for i := 0; i < burst; i++ {
		loc := final
		if i < burst-1 {
			loc = []geom.Point{geom.Pt(0.5+float64(i)*0.01, 0.5), geom.Pt(0.52, 0.5)}
		}
		if err := e.Submit(id, loc, nil); err != nil {
			t.Fatal(err)
		}
	}
	gating.Lock()
	gateOn = false
	gating.Unlock()
	close(gate)

	n1 := <-sub.C
	if n1.Seq != 2 || n1.Coalesced != 1 {
		t.Fatalf("first recompute: %+v", n1)
	}
	n2 := <-sub.C
	if n2.Seq != 3 || n2.Coalesced != burst {
		t.Fatalf("burst did not coalesce: seq=%d coalesced=%d", n2.Seq, n2.Coalesced)
	}
	if !n2.Regions[0].Contains(final[0]) || !n2.Regions[1].Contains(final[1]) {
		t.Fatal("coalesced recompute did not use the latest locations")
	}
	select {
	case n := <-sub.C:
		t.Fatalf("unexpected extra notification %+v", n)
	case <-time.After(50 * time.Millisecond):
	}
	if e.Updates(id) != 3 {
		t.Fatalf("updates=%d want 3", e.Updates(id))
	}
}

// TestShardContention storms many groups from many goroutines and checks
// that the final submission for every group is eventually reflected —
// coalescing may skip intermediates but must never lose the last word.
func TestShardContention(t *testing.T) {
	pl := testPlanner(t, 500, 5)
	e := New(tilePlan(pl), Options{Shards: 8, Workers: 2, QueueDepth: 64})
	defer e.Close()

	const groups, writers, rounds = 40, 8, 10
	ids := make([]GroupID, groups)
	finals := make([][]geom.Point, groups)
	for g := range ids {
		base := geom.Pt(0.1+0.8*float64(g)/groups, 0.5)
		id, err := e.Register([]geom.Point{base, geom.Pt(base.X+0.02, 0.52)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[g] = id
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < rounds; r++ {
				for g := 0; g < groups; g++ {
					u := []geom.Point{
						geom.Pt(rng.Float64(), rng.Float64()),
						geom.Pt(rng.Float64(), rng.Float64()),
					}
					if err := e.Submit(ids[g], u, nil); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// One deterministic final submission per group.
	for g := range ids {
		finals[g] = []geom.Point{
			geom.Pt(0.2+0.6*float64(g)/groups, 0.3),
			geom.Pt(0.2+0.6*float64(g)/groups, 0.34),
		}
		if err := e.Submit(ids[g], finals[g], nil); err != nil {
			t.Fatal(err)
		}
	}
	e.quiesce(t)
	for g, id := range ids {
		regions := e.Regions(id)
		for i, u := range finals[g] {
			if !regions[i].Contains(u) {
				t.Fatalf("group %d: final location %d not inside its region", g, i)
			}
		}
	}
}

// TestUpdateSupersedesQueuedSubmit: a synchronous Update discards an
// older snapshot that was already queued when it began — the Update's
// locations are newer — so stale locations can never overwrite the final
// state. A gate keeps the single worker busy so the older submission
// stays queued for the duration.
func TestUpdateSupersedesQueuedSubmit(t *testing.T) {
	pl := testPlanner(t, 300, 11)
	inner := tilePlan(pl)
	gate := make(chan struct{})
	started := make(chan struct{}, 4)
	var gating sync.Mutex
	gateOn := false
	plan := func(users []geom.Point, dirs []core.Direction) (geom.Point, []core.SafeRegion, core.Stats, error) {
		gating.Lock()
		g := gateOn
		gating.Unlock()
		if g {
			started <- struct{}{}
			<-gate
		}
		return inner(users, dirs)
	}
	e := New(plan, Options{Shards: 1, Workers: 1})
	defer e.Close()
	decoy, err := e.Register([]geom.Point{geom.Pt(0.9, 0.9), geom.Pt(0.92, 0.9)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, err := e.Register([]geom.Point{geom.Pt(0.4, 0.4), geom.Pt(0.42, 0.4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gating.Lock()
	gateOn = true
	gating.Unlock()
	// Occupy the worker with the decoy group, then queue an old snapshot
	// for the group under test.
	if err := e.Submit(decoy, []geom.Point{geom.Pt(0.9, 0.9), geom.Pt(0.92, 0.9)}, nil); err != nil {
		t.Fatal(err)
	}
	<-started
	old := []geom.Point{geom.Pt(0.2, 0.2), geom.Pt(0.22, 0.2)}
	if err := e.Submit(id, old, nil); err != nil {
		t.Fatal(err)
	}
	gating.Lock()
	gateOn = false
	gating.Unlock()
	// The synchronous Update is newer than the queued snapshot.
	fresh := []geom.Point{geom.Pt(0.7, 0.7), geom.Pt(0.72, 0.7)}
	if err := e.Update(id, fresh, nil); err != nil {
		t.Fatal(err)
	}
	close(gate)
	e.quiesce(t)
	regions := e.Regions(id)
	for i, u := range fresh {
		if !regions[i].Contains(u) {
			t.Fatalf("stale queued snapshot overwrote the synchronous update (region %d)", i)
		}
	}
	if e.Updates(id) != 2 {
		t.Fatalf("updates=%d want 2 (registration + sync update; stale submit dropped)", e.Updates(id))
	}
}

func TestSubmitTagOnNotification(t *testing.T) {
	e := New(tilePlan(testPlanner(t, 300, 12)), Options{Shards: 1})
	defer e.Close()
	users := []geom.Point{geom.Pt(0.4, 0.4), geom.Pt(0.44, 0.4)}
	sub := e.Subscribe(8)
	id, err := e.RegisterTag(users, nil, "reg-tag")
	if err != nil {
		t.Fatal(err)
	}
	if n := <-sub.C; n.Tag != "reg-tag" {
		t.Fatalf("registration tag %v", n.Tag)
	}
	if err := e.SubmitTag(id, users, nil, "up-tag"); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-sub.C:
		if n.Tag != "up-tag" {
			t.Fatalf("submission tag %v", n.Tag)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no notification")
	}
}

func TestPlanErrorNotification(t *testing.T) {
	pl := testPlanner(t, 300, 6)
	inner := tilePlan(pl)
	fail := false
	var mu sync.Mutex
	plan := func(users []geom.Point, dirs []core.Direction) (geom.Point, []core.SafeRegion, core.Stats, error) {
		mu.Lock()
		f := fail
		mu.Unlock()
		if f {
			return geom.Point{}, nil, core.Stats{}, errors.New("boom")
		}
		return inner(users, dirs)
	}
	e := New(plan, Options{Shards: 1})
	defer e.Close()
	users := []geom.Point{geom.Pt(0.4, 0.4), geom.Pt(0.44, 0.4)}
	id, err := e.Register(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	meeting := e.Meeting(id)
	sub := e.Subscribe(8)
	mu.Lock()
	fail = true
	mu.Unlock()
	if err := e.Submit(id, users, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-sub.C:
		if n.Err == nil {
			t.Fatalf("want error notification, got %+v", n)
		}
		if n.Meeting != meeting {
			t.Fatal("error notification should carry the previous plan")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no notification")
	}
	if e.Updates(id) != 1 {
		t.Fatal("failed recompute must not advance Seq")
	}
	if e.Meeting(id) != meeting {
		t.Fatal("failed recompute must keep the previous plan")
	}
}

func TestUnregister(t *testing.T) {
	e := New(tilePlan(testPlanner(t, 200, 7)), Options{Shards: 2})
	defer e.Close()
	users := []geom.Point{geom.Pt(0.5, 0.5)}
	id, err := e.Register(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Unregister(id)
	if e.NumGroups() != 0 {
		t.Fatal("group not removed")
	}
	if err := e.Submit(id, users, nil); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("want ErrUnknownGroup, got %v", err)
	}
	if err := e.Update(id, users, nil); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("want ErrUnknownGroup, got %v", err)
	}
}

func TestClose(t *testing.T) {
	e := New(tilePlan(testPlanner(t, 200, 8)), Options{Shards: 2})
	sub := e.Subscribe(8)
	users := []geom.Point{geom.Pt(0.5, 0.5)}
	id, err := e.Register(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-sub.C // drain the registration notification
	e.Close()
	e.Close() // idempotent
	if _, ok := <-sub.C; ok {
		t.Fatal("subscription channel not closed")
	}
	if err := e.Submit(id, users, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := e.Register(users, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	// Subscribing after close yields an already-closed channel.
	if _, ok := <-e.Subscribe(1).C; ok {
		t.Fatal("post-close subscription not closed")
	}
}

func TestSubscriptionDrop(t *testing.T) {
	e := New(tilePlan(testPlanner(t, 200, 9)), Options{Shards: 1})
	defer e.Close()
	sub := e.Subscribe(1)
	users := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.52, 0.5)}
	id, err := e.Register(users, nil) // fills the buffer of 1
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.Update(id, users, nil); err != nil { // sync: emits immediately
			t.Fatal(err)
		}
	}
	if sub.Dropped() != 3 {
		t.Fatalf("dropped=%d want 3", sub.Dropped())
	}
	sub.Close()
	if err := e.Update(id, users, nil); err != nil {
		t.Fatal(err)
	}
}
