package engine

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"mpn/internal/core"
	"mpn/internal/geom"
)

// benchGroups is how many live groups the update benchmarks spread load
// over — enough that per-group serialization never caps parallelism.
const benchGroups = 64

func benchLocs(rng *rand.Rand) []geom.Point {
	base := geom.Pt(0.1+0.8*rng.Float64(), 0.1+0.8*rng.Float64())
	return []geom.Point{base, geom.Pt(base.X+0.01, base.Y+0.015)}
}

// singleMutexRegistry is the pre-engine baseline: one registry mutex held
// across the whole recomputation, exactly what the synchronous
// coordinator did per TCP report.
type singleMutexRegistry struct {
	plan PlanFunc

	mu     sync.Mutex
	nextID GroupID
	groups map[GroupID]*struct {
		meeting geom.Point
		regions []core.SafeRegion
	}
}

func newSingleMutexRegistry(plan PlanFunc) *singleMutexRegistry {
	return &singleMutexRegistry{plan: plan, groups: map[GroupID]*struct {
		meeting geom.Point
		regions []core.SafeRegion
	}{}}
}

func (r *singleMutexRegistry) Register(users []geom.Point) (GroupID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	meeting, regions, _, err := r.plan(users, nil)
	if err != nil {
		return 0, err
	}
	r.nextID++
	r.groups[r.nextID] = &struct {
		meeting geom.Point
		regions []core.SafeRegion
	}{meeting, regions}
	return r.nextID, nil
}

func (r *singleMutexRegistry) Update(id GroupID, users []geom.Point) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	meeting, regions, _, err := r.plan(users, nil)
	if err != nil {
		return err
	}
	g := r.groups[id]
	g.meeting, g.regions = meeting, regions
	return nil
}

// BenchmarkEngineParallelUpdates drives synchronous recomputations for
// many groups from all procs through the sharded engine: computations for
// different groups run concurrently, contending only on lock-striped
// registry lookups.
func BenchmarkEngineParallelUpdates(b *testing.B) {
	pl := testPlanner(b, 2000, 42)
	e := New(tilePlan(pl), Options{Shards: runtime.GOMAXPROCS(0)})
	defer e.Close()
	rng := rand.New(rand.NewSource(1))
	ids := make([]GroupID, benchGroups)
	for i := range ids {
		id, err := e.Register(benchLocs(rng), nil)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(int64(next.Add(1)) << 32))
		for pb.Next() {
			id := ids[next.Add(1)%benchGroups]
			if err := e.Update(id, benchLocs(rng), nil); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkSingleMutexParallelUpdates is the baseline the engine must
// beat: identical plan work, but every recomputation serializes on one
// registry mutex.
func BenchmarkSingleMutexParallelUpdates(b *testing.B) {
	pl := testPlanner(b, 2000, 42)
	r := newSingleMutexRegistry(tilePlan(pl))
	rng := rand.New(rand.NewSource(1))
	ids := make([]GroupID, benchGroups)
	for i := range ids {
		id, err := r.Register(benchLocs(rng))
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(int64(next.Add(1)) << 32))
		for pb.Next() {
			id := ids[next.Add(1)%benchGroups]
			if err := r.Update(id, benchLocs(rng)); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkEngineAsyncBurst measures the asynchronous path end to end:
// b.N submissions fan out over the shard queues and the benchmark waits
// until the worker pool has fully drained them. Coalescing means the
// engine may satisfy b.N submissions with fewer recomputations — the
// recomputes/op metric reports the collapse factor.
func BenchmarkEngineAsyncBurst(b *testing.B) {
	pl := testPlanner(b, 2000, 42)
	e := New(tilePlan(pl), Options{Shards: runtime.GOMAXPROCS(0), Workers: 1, QueueDepth: 4096})
	defer e.Close()
	rng := rand.New(rand.NewSource(1))
	ids := make([]GroupID, benchGroups)
	for i := range ids {
		id, err := e.Register(benchLocs(rng), nil)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	before := 0
	for _, id := range ids {
		before += e.Updates(id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Submit(ids[i%benchGroups], benchLocs(rng), nil); err != nil {
			b.Fatal(err)
		}
	}
	e.quiesce(b)
	b.StopTimer()
	after := 0
	for _, id := range ids {
		after += e.Updates(id)
	}
	b.ReportMetric(float64(after-before)/float64(b.N), "recomputes/op")
}
