package engine

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpn/internal/core"
	"mpn/internal/faultinject"
	"mpn/internal/geom"
)

// stubPlan is a trivial planner for failure-semantics tests: one region
// per user, meeting at the centroid, optionally blocking inside the
// planner so a test can wedge a shard worker at will.
type stubPlan struct {
	blocking atomic.Bool
	entered  chan struct{} // one send per blocked call entering the planner
	release  chan struct{} // closed to let blocked calls finish
}

func newStubPlan() *stubPlan {
	return &stubPlan{entered: make(chan struct{}, 64), release: make(chan struct{})}
}

func (p *stubPlan) fn(users []geom.Point, dirs []core.Direction) (geom.Point, []core.SafeRegion, core.Stats, error) {
	if p.blocking.Load() {
		p.entered <- struct{}{}
		<-p.release
	}
	var cx, cy float64
	for _, u := range users {
		cx += u.X
		cy += u.Y
	}
	inv := 1 / float64(len(users))
	return geom.Pt(cx*inv, cy*inv), make([]core.SafeRegion, len(users)), core.Stats{}, nil
}

func threeUsers() []geom.Point {
	return []geom.Point{geom.Pt(0.2, 0.2), geom.Pt(0.3, 0.25), geom.Pt(0.25, 0.3)}
}

// TestSubmitOverloadedBounded saturates a one-deep shard queue behind a
// wedged worker and checks the admission contract: Submit fails with
// ErrOverloaded after (but not much after) the configured wait, the shed
// is counted, and the shed snapshot survives as the group's pending
// update — the next accepted submission coalesces it.
func TestSubmitOverloadedBounded(t *testing.T) {
	const wait = 60 * time.Millisecond
	p := newStubPlan()
	e := New(p.fn, Options{Shards: 1, Workers: 1, QueueDepth: 1, AdmissionWait: wait})
	sub := e.Subscribe(64)
	g1, err := e.Register(threeUsers(), nil)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := e.Register(threeUsers(), nil)
	if err != nil {
		t.Fatal(err)
	}
	g3, err := e.Register(threeUsers(), nil)
	if err != nil {
		t.Fatal(err)
	}

	p.blocking.Store(true)
	if err := e.Submit(g1, threeUsers(), nil); err != nil {
		t.Fatal(err)
	}
	<-p.entered // the only worker is now wedged inside the planner
	if err := e.Submit(g2, threeUsers(), nil); err != nil {
		t.Fatal(err) // fills the queue (depth 1)
	}

	start := time.Now()
	err = e.Submit(g3, threeUsers(), nil)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated Submit: err = %v, want ErrOverloaded", err)
	}
	if elapsed < wait-5*time.Millisecond {
		t.Fatalf("shed after %v, before the %v admission wait", elapsed, wait)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("shed took %v — admission wait is not bounded", elapsed)
	}
	if got := e.Shed(); got != 1 {
		t.Fatalf("Shed() = %d, want 1", got)
	}
	var total uint64
	for _, ss := range e.ShardStats() {
		total += ss.Shed
	}
	if total != 1 {
		t.Fatalf("sum of ShardStats.Shed = %d, want 1", total)
	}

	// Unwedge and resubmit g3: the accepted submission must coalesce the
	// shed snapshot (Coalesced == 2 on g3's notification).
	p.blocking.Store(false)
	close(p.release)
	if err := e.Submit(g3, threeUsers(), nil); err != nil {
		t.Fatalf("post-overload Submit: %v", err)
	}
	e.quiesce(t)
	e.Close()
	for n := range sub.C {
		if n.Group == g3 && n.Seq > 1 {
			if n.Coalesced != 2 {
				t.Fatalf("g3 recomputation coalesced %d submissions, want 2 (accepted + shed)", n.Coalesced)
			}
			return
		}
	}
	t.Fatal("no recomputation notification for the shed-then-resubmitted group")
}

// TestSubmitOverloadedFailFast checks that a negative AdmissionWait
// sheds immediately instead of blocking.
func TestSubmitOverloadedFailFast(t *testing.T) {
	p := newStubPlan()
	e := New(p.fn, Options{Shards: 1, Workers: 1, QueueDepth: 1, AdmissionWait: -1})
	defer e.Close()
	defer close(p.release) // unwedge the worker before Close's drain
	g1, _ := e.Register(threeUsers(), nil)
	g2, _ := e.Register(threeUsers(), nil)
	g3, _ := e.Register(threeUsers(), nil)

	p.blocking.Store(true)
	if err := e.Submit(g1, threeUsers(), nil); err != nil {
		t.Fatal(err)
	}
	<-p.entered
	if err := e.Submit(g2, threeUsers(), nil); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := e.Submit(g3, threeUsers(), nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("fail-fast shed took %v", elapsed)
	}
	p.blocking.Store(false)
}

// TestWorkerPanicIsolation injects a planner panic into a worker
// recomputation: the notification must carry a *PanicError and repeat
// the previous plan, and the worker pool must survive to serve the next
// submission.
func TestWorkerPanicIsolation(t *testing.T) {
	p := newStubPlan()
	e := New(p.fn, Options{Shards: 1, Workers: 1})
	defer e.Close()
	id, err := e.Register(threeUsers(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sub := e.Subscribe(64) // after Register: the first notification is the panic
	before := e.Meeting(id)

	faultinject.Arm(faultinject.Script{faultinject.EnginePlan: faultinject.PanicOn(1, "kaboom")})
	defer faultinject.Disarm()

	if err := e.Submit(id, threeUsers(), nil); err != nil {
		t.Fatal(err)
	}
	n := <-sub.C
	var pe *PanicError
	if !errors.As(n.Err, &pe) {
		t.Fatalf("notification Err = %v, want *PanicError", n.Err)
	}
	if pe.Value != "kaboom" {
		t.Fatalf("PanicError.Value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError.Stack is empty")
	}
	if n.Seq != 1 {
		t.Fatalf("error notification Seq = %d, want 1 (repeat of last success)", n.Seq)
	}
	if n.Meeting != before {
		t.Fatalf("error notification Meeting = %v, want previous %v", n.Meeting, before)
	}

	// The shard's only worker recovered: the next submission must plan.
	moved := []geom.Point{geom.Pt(0.6, 0.6), geom.Pt(0.7, 0.65), geom.Pt(0.65, 0.7)}
	if err := e.Submit(id, moved, nil); err != nil {
		t.Fatal(err)
	}
	n = <-sub.C
	if n.Err != nil {
		t.Fatalf("post-panic recomputation failed: %v", n.Err)
	}
	if n.Seq != 2 {
		t.Fatalf("post-panic Seq = %d, want 2", n.Seq)
	}
}

// TestRegisterAndUpdatePanics checks the synchronous paths: a planner
// panic during Register or Update comes back to the caller as a
// *PanicError, and the group (for Update) keeps its previous plan.
func TestRegisterAndUpdatePanics(t *testing.T) {
	p := newStubPlan()
	e := New(p.fn, Options{Shards: 1})
	defer e.Close()
	id, err := e.Register(threeUsers(), nil)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Meeting(id)

	faultinject.Arm(faultinject.Script{faultinject.EnginePlan: faultinject.PanicEvery(1, 42)})
	var pe *PanicError
	if _, err := e.Register(threeUsers(), nil); !errors.As(err, &pe) {
		t.Fatalf("Register during panic schedule: err = %v, want *PanicError", err)
	}
	if err := e.Update(id, threeUsers(), nil); !errors.As(err, &pe) {
		t.Fatalf("Update during panic schedule: err = %v, want *PanicError", err)
	}
	faultinject.Disarm()

	if got := e.Meeting(id); got != before {
		t.Fatalf("meeting moved across a panicked Update: %v -> %v", before, got)
	}
	if err := e.Update(id, threeUsers(), nil); err != nil {
		t.Fatalf("post-panic Update: %v", err)
	}
}

// TestPanicInvalidatesRetainedState checks the incremental engine's
// recovery rule: after a replanner panic the retained plan state is
// dropped, so the next recomputation sees an invalid state and replans
// from scratch rather than trusting half-written regions.
func TestPanicInvalidatesRetainedState(t *testing.T) {
	var sawValid []bool
	var mu sync.Mutex
	replan := func(ws *core.Workspace, st *core.PlanState, users []geom.Point, dirs []core.Direction) (geom.Point, []core.SafeRegion, core.Stats, core.IncOutcome, error) {
		mu.Lock()
		sawValid = append(sawValid, st.Valid())
		mu.Unlock()
		regions := make([]core.SafeRegion, len(users))
		st.Record(core.Plan{Regions: regions})
		return geom.Pt(0.5, 0.5), regions, core.Stats{}, core.IncFull, nil
	}
	e := NewWS(nil, Options{Shards: 1, Replan: replan})
	defer e.Close()
	id, err := e.Register(threeUsers(), nil)
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.Script{faultinject.EnginePlan: faultinject.PanicOn(1, "torn")})
	var pe *PanicError
	if err := e.Update(id, threeUsers(), nil); !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	faultinject.Disarm()

	if err := e.Update(id, threeUsers(), nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// Call 1: registration (invalid zero state). The panicked update
	// never reached the replanner (the failpoint fires before it). Call
	// 2: the post-panic update, which must see an invalidated state.
	if len(sawValid) != 2 {
		t.Fatalf("replanner ran %d times, want 2", len(sawValid))
	}
	if sawValid[1] {
		t.Fatal("post-panic recomputation saw a valid retained state; panic must invalidate it")
	}
}

// TestClosePostContract hammers synchronous Updates and Submits against
// a concurrent Close: every call returns nil or ErrClosed (never a
// panic, never a send on a closed channel), Close waits for in-flight
// operations, and the engine's goroutines drain.
func TestClosePostContract(t *testing.T) {
	baseline := runtime.NumGoroutine()
	p := newStubPlan()
	close(p.release) // never block
	e := New(p.fn, Options{Shards: 2, Workers: 2, QueueDepth: 1024})
	sub := e.Subscribe(1 << 14)

	const groups = 8
	ids := make([]GroupID, groups)
	for i := range ids {
		id, err := e.Register(threeUsers(), nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	var wg sync.WaitGroup
	var bad atomic.Value
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				if i%2 == 0 {
					err = e.Update(ids[(w+i)%groups], threeUsers(), nil)
				} else {
					err = e.Submit(ids[(w+i)%groups], threeUsers(), nil)
				}
				if err != nil && !errors.Is(err, ErrClosed) {
					bad.Store(err)
					return
				}
				if errors.Is(err, ErrClosed) {
					return
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	e.Close()
	close(stop)
	wg.Wait()
	if err := bad.Load(); err != nil {
		t.Fatalf("operation racing Close returned %v, want nil or ErrClosed", err)
	}
	// Drain to the close: after Close returns the channel must be closed
	// (a blocked receive here would be the old race).
	for range sub.C {
	}
	if err := e.Update(ids[0], threeUsers(), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Update: %v, want ErrClosed", err)
	}
	if err := e.Submit(ids[0], threeUsers(), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Submit: %v, want ErrClosed", err)
	}
	if _, err := e.Register(threeUsers(), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Register: %v, want ErrClosed", err)
	}

	// Goroutine accounting: everything the engine spawned must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCloseDrainDeadline wedges the only worker and queues more work
// behind it: Close must give up after the drain deadline, abandon the
// queue (counted), and return in bounded time.
func TestCloseDrainDeadline(t *testing.T) {
	p := newStubPlan()
	e := New(p.fn, Options{
		Shards: 1, Workers: 1, QueueDepth: 16,
		AdmissionWait: -1, CloseTimeout: 40 * time.Millisecond,
	})
	var ids []GroupID
	for i := 0; i < 4; i++ {
		id, err := e.Register(threeUsers(), nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	p.blocking.Store(true)
	if err := e.Submit(ids[0], threeUsers(), nil); err != nil {
		t.Fatal(err)
	}
	<-p.entered // worker wedged
	for _, id := range ids[1:] {
		if err := e.Submit(id, threeUsers(), nil); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	e.Close()
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("Close took %v despite a %v drain deadline", elapsed, 40*time.Millisecond)
	}
	var abandoned uint64
	for _, ss := range e.ShardStats() {
		abandoned += ss.Abandoned
	}
	if abandoned != 3 {
		t.Fatalf("abandoned = %d, want 3 (queued behind the wedged worker)", abandoned)
	}
	close(p.release) // let the wedged worker go home
}
