package engine

import (
	"math/rand"
	"sync"
	"testing"

	"mpn/internal/geom"
	"mpn/internal/nbrcache"
)

// TestEngineChurnConcurrent is the system-level handoff fence: POI
// mutation batches applied through core.Planner.ApplyPOIs while engine
// workers and synchronous updaters replan concurrently through the
// cached incremental adapters. Run under -race this exercises the whole
// snapshot pipeline (RCU publish, shadow replay, cache Advance,
// incremental version invalidation) end to end; the in-test assertions
// check that every group converges on a plan computed against the final
// published index version.
func TestEngineChurnConcurrent(t *testing.T) {
	pl := testPlanner(t, 1200, 21)
	cache := nbrcache.New(nbrcache.Config{})
	pl.ShareCache(cache)
	e := NewWS(PlannerCachedWSFunc(pl, false, cache), Options{
		Shards: 4, Workers: 2, QueueDepth: 64,
		Replan: PlannerIncCachedFunc(pl, false, cache),
	})
	defer e.Close()

	rng := rand.New(rand.NewSource(22))
	const ngroups = 12
	ids := make([]GroupID, ngroups)
	groups := make([][]geom.Point, ngroups)
	for g := range ids {
		c := geom.Pt(0.2+0.6*rng.Float64(), 0.2+0.6*rng.Float64())
		groups[g] = []geom.Point{
			geom.Pt(c.X, c.Y),
			geom.Pt(c.X+0.01, c.Y-0.008),
			geom.Pt(c.X-0.009, c.Y+0.011),
		}
		id, err := e.Register(groups[g], nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[g] = id
	}

	rounds := 30
	if testing.Short() {
		rounds = 8
	}

	var wg sync.WaitGroup
	// Two submitter streams: one synchronous (Update), one through the
	// worker queues (Submit), over disjoint group halves so per-group
	// submissions stay ordered.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + s)))
			users := make([]geom.Point, 3)
			for r := 0; r < rounds; r++ {
				for g := s; g < ngroups; g += 2 {
					for i, u := range groups[g] {
						users[i] = geom.Pt(u.X+0.02*(rng.Float64()-0.5), u.Y+0.02*(rng.Float64()-0.5))
					}
					var err error
					if s == 0 {
						err = e.Update(ids[g], users, nil)
					} else {
						err = e.Submit(ids[g], users, nil)
					}
					if err != nil {
						t.Errorf("submit group %d: %v", g, err)
						return
					}
				}
			}
		}(s)
	}
	// One writer stream of mutation batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(200))
		var inserted []int
		for r := 0; r < 3*rounds; r++ {
			ins := []geom.Point{geom.Pt(rng.Float64(), rng.Float64())}
			var del []int
			if len(inserted) > 4 && rng.Intn(2) == 0 {
				i := rng.Intn(len(inserted))
				del = append(del, inserted[i])
				inserted[i] = inserted[len(inserted)-1]
				inserted = inserted[:len(inserted)-1]
			}
			ids, err := pl.ApplyPOIs(ins, del)
			if err != nil {
				t.Errorf("ApplyPOIs: %v", err)
				return
			}
			inserted = append(inserted, ids...)
		}
	}()
	wg.Wait()
	e.quiesce(t)

	// With the churn finished, one forced-full update per group must land
	// every group on the final published version with covering regions.
	final := pl.Tree().Version()
	for g, id := range ids {
		if err := e.UpdateFull(id, groups[g], nil); err != nil {
			t.Fatalf("final update group %d: %v", g, err)
		}
		if v := e.Stats(id).IndexVersion; v != final {
			t.Fatalf("group %d: IndexVersion %d, want final %d", g, v, final)
		}
		regions := e.Regions(id)
		for i, u := range groups[g] {
			if !regions[i].Contains(u) {
				t.Fatalf("group %d: region %d misses its user", g, i)
			}
		}
	}
}
