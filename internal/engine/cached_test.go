package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"mpn/internal/core"
	"mpn/internal/geom"
	"mpn/internal/nbrcache"
)

// TestEngineSharedCacheDifferential drives two engines — one with the
// shared neighborhood cache, one without — through identical update
// streams for several co-located groups and asserts the resulting
// meeting points and regions are byte-identical, while the cache
// actually absorbed traversals (cross-group hits from one cache shared
// by all shards and the synchronous path).
func TestEngineSharedCacheDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	pts := make([]geom.Point, 2000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	opts := core.DefaultOptions()
	opts.TileLimit = 5
	opts.Buffer = 10
	pl, err := core.NewPlanner(pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	cache := nbrcache.New(nbrcache.Config{})

	build := func(c *nbrcache.Cache) *Engine {
		return NewWS(PlannerCachedWSFunc(pl, false, c), Options{
			Shards: 3, Replan: PlannerIncCachedFunc(pl, false, c),
		})
	}
	cachedEng := build(cache)
	defer cachedEng.Close()
	plainEng := build(nil)
	defer plainEng.Close()

	// Eight groups clustered in one hotspot: same centroid tile.
	const G = 8
	groupUsers := make([][]geom.Point, G)
	cachedIDs := make([]GroupID, G)
	plainIDs := make([]GroupID, G)
	for g := 0; g < G; g++ {
		groupUsers[g] = []geom.Point{
			geom.Pt(0.6+0.0008*float64(g), 0.6),
			geom.Pt(0.601, 0.599-0.0008*float64(g)),
			geom.Pt(0.5995, 0.6012),
		}
		if cachedIDs[g], err = cachedEng.Register(groupUsers[g], nil); err != nil {
			t.Fatal(err)
		}
		if plainIDs[g], err = plainEng.Register(groupUsers[g], nil); err != nil {
			t.Fatal(err)
		}
	}

	for step := 0; step < 30; step++ {
		for g := 0; g < G; g++ {
			for i := range groupUsers[g] {
				groupUsers[g][i] = geom.Pt(
					groupUsers[g][i].X+1e-4*(rng.Float64()-0.5),
					groupUsers[g][i].Y+1e-4*(rng.Float64()-0.5),
				)
			}
			if err := cachedEng.Update(cachedIDs[g], groupUsers[g], nil); err != nil {
				t.Fatal(err)
			}
			if err := plainEng.Update(plainIDs[g], groupUsers[g], nil); err != nil {
				t.Fatal(err)
			}
			if cm, pm := cachedEng.Meeting(cachedIDs[g]), plainEng.Meeting(plainIDs[g]); cm != pm {
				t.Fatalf("step %d group %d: meeting %v != %v", step, g, cm, pm)
			}
			if cr, pr := cachedEng.Regions(cachedIDs[g]), plainEng.Regions(plainIDs[g]); !reflect.DeepEqual(cr, pr) {
				t.Fatalf("step %d group %d: regions diverged", step, g)
			}
		}
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("co-located groups never shared a traversal: %+v", st)
	}
	// The whole run had G co-located groups over one tile: far fewer
	// misses than lookups.
	if st.Misses > st.Hits {
		t.Fatalf("hit rate below half on a fully co-located workload: %+v", st)
	}
}
