package engine

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"mpn/internal/core"
	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/rtree"
)

// fakeReplan is a scripted ReplanWSFunc that records, per call, which
// PlanState it was handed and whether that state was valid at entry, so
// the engine's state threading (one retained state per group, serialized
// access, forced-full invalidation) can be asserted exactly without
// geometric noise. Semantics mirror the real replanners: invalid state →
// full; any member outside her region → full (regions here are coarse
// circles, so this path stands in for partial too); otherwise kept.
type fakeReplan struct {
	mu      sync.Mutex
	states  []*core.PlanState
	valid   []bool // state validity at call entry
	blockOn int    // 1-based call number to park on (0 = never)
	entered chan struct{}
	release chan struct{}
}

func (f *fakeReplan) fn(_ *core.Workspace, st *core.PlanState, users []geom.Point, _ []core.Direction) (geom.Point, []core.SafeRegion, core.Stats, core.IncOutcome, error) {
	f.mu.Lock()
	f.states = append(f.states, st)
	f.valid = append(f.valid, st.Valid())
	call := len(f.states)
	f.mu.Unlock()
	if f.blockOn == call {
		f.entered <- struct{}{}
		<-f.release
	}
	if st.Valid() && len(st.Regions()) == len(users) {
		kept := true
		for i, u := range users {
			if !st.Regions()[i].Contains(u) {
				kept = false
				break
			}
		}
		if kept {
			return st.Regions()[0].Circle.C, st.Regions(), core.Stats{}, core.IncKept, nil
		}
	}
	regions := make([]core.SafeRegion, len(users))
	for i, u := range users {
		regions[i] = core.CircleRegion(u, 0.2)
	}
	plan := core.Plan{
		Best:    gnn.Result{Item: rtree.Item{P: users[0], ID: 1}},
		Regions: regions,
	}
	st.Record(plan)
	return users[0], regions, core.Stats{}, core.IncFull, nil
}

func (f *fakeReplan) calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.states)
}

// TestReplanStateThreading drives an incremental engine over a scripted
// replanner and checks the plumbing the real planners rely on: each
// group gets exactly one retained PlanState across registration, updates
// and worker recomputations; UpdateFull and SubmitFull invalidate it
// before the call; distinct groups never share state; and the outcome
// reaches subscribers on the notification.
func TestReplanStateThreading(t *testing.T) {
	f := &fakeReplan{}
	e := NewWS(nil, Options{Shards: 2, Workers: 1, Replan: f.fn})
	defer e.Close()
	sub := e.Subscribe(64)

	users := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.52, 0.5)}
	id, err := e.Register(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := <-sub.C; n.Seq != 1 || n.Outcome != core.IncFull {
		t.Fatalf("registration notification: %+v", n)
	}

	// Same locations: the retained state satisfies the update.
	if err := e.Update(id, users, nil); err != nil {
		t.Fatal(err)
	}
	if n := <-sub.C; n.Outcome != core.IncKept {
		t.Fatalf("unchanged update: outcome %v", n.Outcome)
	}

	// Forced full: the state must be invalid when the replanner runs.
	if err := e.UpdateFull(id, users, nil); err != nil {
		t.Fatal(err)
	}
	if n := <-sub.C; n.Outcome != core.IncFull {
		t.Fatalf("forced-full update: outcome %v", n.Outcome)
	}

	// Async forced full through the worker pool.
	if err := e.SubmitFull(id, users, nil); err != nil {
		t.Fatal(err)
	}
	if n := <-sub.C; n.Outcome != core.IncFull {
		t.Fatalf("forced-full submit: outcome %v", n.Outcome)
	}
	e.quiesce(t)

	// A second group must get its own state.
	id2, err := e.Register([]geom.Point{geom.Pt(0.1, 0.1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-sub.C
	if err := e.Update(id2, []geom.Point{geom.Pt(0.1, 0.1)}, nil); err != nil {
		t.Fatal(err)
	}
	if n := <-sub.C; n.Outcome != core.IncKept {
		t.Fatalf("second group unchanged update: outcome %v", n.Outcome)
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.states) != 6 {
		t.Fatalf("replanner saw %d calls, want 6", len(f.states))
	}
	wantValid := []bool{
		false, // registration: zero state
		true,  // kept update
		false, // UpdateFull invalidated the state first
		false, // SubmitFull likewise
		false, // second group's registration: fresh zero state
		true,  // second group's kept update
	}
	for i, v := range wantValid {
		if f.valid[i] != v {
			t.Fatalf("call %d: state valid=%v want %v", i+1, f.valid[i], v)
		}
	}
	// Registration plans through a local state that is then copied into
	// the group (calls 1 and 5); every later call for a group must hit
	// that group's one retained state.
	if f.states[2] != f.states[1] || f.states[3] != f.states[1] {
		t.Fatal("updates for one group used different PlanStates")
	}
	if f.states[5] == f.states[1] {
		t.Fatal("second group shares the first group's PlanState")
	}
}

// TestIncrementalCoalescedInvalidation parks the single worker inside a
// recomputation while a burst lands, and checks that the coalesced
// snapshot invalidates the retained plan exactly once — and that a
// SubmitFull folded into the burst keeps its forced-full demand.
func TestIncrementalCoalescedInvalidation(t *testing.T) {
	f := &fakeReplan{blockOn: 2, entered: make(chan struct{}, 1), release: make(chan struct{})}
	e := NewWS(nil, Options{Shards: 1, Workers: 1, Replan: f.fn})
	defer e.Close()
	sub := e.Subscribe(64)

	base := []geom.Point{geom.Pt(0.5, 0.5)}
	id, err := e.Register(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-sub.C

	// Call 2 (async) parks the worker.
	if err := e.Submit(id, base, nil); err != nil {
		t.Fatal(err)
	}
	<-f.entered
	// Burst: a plain submit inside the retained region plus a forced-full
	// one; they coalesce into a single pending snapshot that must keep
	// the full demand.
	if err := e.SubmitFull(id, base, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(id, base, nil); err != nil {
		t.Fatal(err)
	}
	close(f.release)

	if n := <-sub.C; n.Seq != 2 || n.Coalesced != 1 || n.Outcome != core.IncKept {
		t.Fatalf("parked recompute: %+v", n)
	}
	n := <-sub.C
	if n.Seq != 3 || n.Coalesced != 2 {
		t.Fatalf("burst did not coalesce: %+v", n)
	}
	if n.Outcome != core.IncFull {
		t.Fatalf("forced-full demand lost in coalescing: outcome %v", n.Outcome)
	}
	f.mu.Lock()
	if f.valid[2] {
		f.mu.Unlock()
		t.Fatal("coalesced recompute saw a valid state despite SubmitFull")
	}
	f.mu.Unlock()
	if c := f.calls(); c != 3 {
		t.Fatalf("replanner ran %d times, want 3", c)
	}
}

// TestIncrementalReportAfterUnregister: once a group is gone, late
// reports — sync, async, forced-full — are refused, and the retained
// plan state has been dropped.
func TestIncrementalReportAfterUnregister(t *testing.T) {
	pl := testPlanner(t, 300, 21)
	e := NewWS(nil, Options{Shards: 2, Replan: PlannerIncFunc(pl, false)})
	defer e.Close()
	users := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.52, 0.48)}
	id, err := e.Register(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := e.lookup(id)
	e.Unregister(id)
	if err := e.Update(id, users, nil); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("Update after Unregister: %v", err)
	}
	if err := e.UpdateFull(id, users, nil); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("UpdateFull after Unregister: %v", err)
	}
	if err := e.Submit(id, users, nil); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("Submit after Unregister: %v", err)
	}
	if err := e.SubmitFull(id, users, nil); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("SubmitFull after Unregister: %v", err)
	}
	st.replanMu.Lock()
	valid := st.planState.Valid()
	st.replanMu.Unlock()
	if valid {
		t.Fatal("unregistered group still pins a retained plan")
	}
}

// TestIncrementalEngineEndToEnd exercises the real incremental planner
// through the engine: duplicate reports are kept, a whole-group teleport
// replans fully, and a single member's stride is served without touching
// the others' regions.
func TestIncrementalEngineEndToEnd(t *testing.T) {
	pl := testPlanner(t, 400, 22)
	e := NewWS(nil, Options{Shards: 1, Replan: PlannerIncFunc(pl, false)})
	defer e.Close()
	sub := e.Subscribe(64)

	users := []geom.Point{geom.Pt(0.40, 0.40), geom.Pt(0.44, 0.42), geom.Pt(0.42, 0.45)}
	id, err := e.Register(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := <-sub.C; n.Outcome != core.IncFull {
		t.Fatalf("registration outcome %v", n.Outcome)
	}

	// Duplicate report.
	if err := e.Update(id, users, nil); err != nil {
		t.Fatal(err)
	}
	n := <-sub.C
	if n.Outcome != core.IncKept || n.Changed {
		t.Fatalf("duplicate report: %+v", n)
	}

	// Whole-group teleport: the optimum moves, plan replans fully.
	moved := []geom.Point{geom.Pt(0.80, 0.78), geom.Pt(0.84, 0.80), geom.Pt(0.82, 0.83)}
	if err := e.Update(id, moved, nil); err != nil {
		t.Fatal(err)
	}
	if n = <-sub.C; n.Outcome != core.IncFull {
		t.Fatalf("teleport outcome %v", n.Outcome)
	}
	for i, u := range moved {
		if !n.Regions[i].Contains(u) {
			t.Fatalf("teleport region %d misses its user", i)
		}
	}
	teleported := n.Regions

	// Single-member streams: walk user 0 outward until an update is
	// served partially, and check the clean members kept their regions.
	step := moved
	sawPartial := false
	for i := 1; i <= 12 && !sawPartial; i++ {
		step = []geom.Point{
			geom.Pt(0.80-0.005*float64(i), 0.78-0.004*float64(i)),
			moved[1], moved[2],
		}
		if err := e.Update(id, step, nil); err != nil {
			t.Fatal(err)
		}
		n = <-sub.C
		switch n.Outcome {
		case core.IncPartial:
			sawPartial = true
			if !n.Regions[0].Contains(step[0]) {
				t.Fatal("partial regrow misses the reporting user")
			}
			for _, j := range []int{1, 2} {
				if !reflect.DeepEqual(n.Regions[j], teleported[j]) {
					t.Fatalf("clean member %d's region changed on a partial update", j)
				}
			}
		case core.IncFull:
			teleported = n.Regions // churn: new baseline for the clean check
		}
	}
	if !sawPartial {
		t.Fatal("walking stream never produced a partial outcome")
	}
}
