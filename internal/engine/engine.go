// Package engine is the concurrent heart of the MPN server: a sharded,
// lock-striped registry of monitored groups that turns the single-group
// compute kernel (core.Planner via a PlanFunc) into a high-throughput
// asynchronous service.
//
// Architecture:
//
//   - Groups are hashed over S independent shards. Each shard owns its
//     slice of the registry under its own mutex, so registration, lookup
//     and submission on different shards never contend.
//   - Each shard has a bounded FIFO run queue drained by a pool of worker
//     goroutines. Submitting a location update enqueues the group;
//     workers pop groups and recompute the meeting point and safe regions
//     via the PlanFunc, outside all registry locks.
//   - Updates coalesce: a group holds at most one pending location
//     snapshot and sits in the run queue at most once. A burst of
//     submissions for the same group while a recomputation is queued or
//     running collapses into a single recomputation over the latest
//     locations (Notification.Coalesced reports how many submissions a
//     recomputation covered).
//   - Results fan out on subscription channels: every recomputation emits
//     a Notification carrying the meeting point, the fresh safe regions,
//     and whether the meeting point actually moved. Sends never block; a
//     slow subscriber drops frames and the drop count is observable.
//
// The engine guarantees at most one in-flight asynchronous recomputation
// per group, so successful notifications for one group are emitted in
// strictly increasing Seq order (error notifications repeat the Seq of
// the last successful plan), and a submission is never lost: if locations
// arrive while the group is being recomputed, the worker re-enqueues the
// group when it finishes.
package engine

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mpn/internal/core"
	"mpn/internal/faultinject"
	"mpn/internal/geom"
	"mpn/internal/nbrcache"
)

// PlanFunc computes a meeting point and one safe region per user. It must
// be safe for concurrent use (core.Planner is — including concurrently
// with POI mutation: every planner call pins one immutable index
// snapshot for its whole duration, so an engine recomputation racing a
// core.Planner.ApplyPOIs sees either entirely the old or entirely the
// new POI set, never a mix; core.Stats.IndexVersion in the emitted
// Notification reports which).
type PlanFunc func(users []geom.Point, dirs []core.Direction) (geom.Point, []core.SafeRegion, core.Stats, error)

// PlanWSFunc is the workspace-aware variant of PlanFunc: the engine hands
// it the calling goroutine's reusable core.Workspace, so steady-state
// recomputations allocate only their returned regions. Implementations
// must be safe for concurrent use with distinct workspaces.
type PlanWSFunc func(ws *core.Workspace, users []geom.Point, dirs []core.Direction) (geom.Point, []core.SafeRegion, core.Stats, error)

// ReplanWSFunc is the incremental variant of PlanWSFunc: the engine
// additionally hands it the group's retained core.PlanState, which the
// implementation reads to decide how much of the previous plan survives
// the update and overwrites with the fresh plan. The engine serializes
// calls per group (each group's state is guarded by its replan lock), so
// implementations may mutate st freely; they must be safe for concurrent
// use across groups with distinct workspaces and states.
type ReplanWSFunc func(ws *core.Workspace, st *core.PlanState, users []geom.Point, dirs []core.Direction) (geom.Point, []core.SafeRegion, core.Stats, core.IncOutcome, error)

// PlannerFunc adapts a core.Planner to a PlanFunc: CircleMSR when circle
// is set, TileMSR otherwise. Each call borrows a pooled workspace; engines
// should prefer PlannerWSFunc with NewWS, which reuses one workspace per
// worker.
func PlannerFunc(pl *core.Planner, circle bool) PlanFunc {
	planWS := PlannerWSFunc(pl, circle)
	return func(users []geom.Point, dirs []core.Direction) (geom.Point, []core.SafeRegion, core.Stats, error) {
		ws := core.GetWorkspace()
		defer core.PutWorkspace(ws)
		return planWS(ws, users, dirs)
	}
}

// PlannerWSFunc adapts a core.Planner to a PlanWSFunc: circle planning
// when circle is set, tiles otherwise.
func PlannerWSFunc(pl *core.Planner, circle bool) PlanWSFunc {
	return PlannerKindWSFunc(pl, kindFor(circle), nil)
}

// kindFor maps the engine adapters' legacy circle flag to a region kind.
func kindFor(circle bool) core.RegionKind {
	if circle {
		return core.KindCircle
	}
	return core.KindTiles
}

// PlannerKindWSFunc adapts a core.Planner to a PlanWSFunc for any region
// kind — the single unpacking point of the core.Plan result shape for
// the engine. KindNetRange requires a backend registered on the planner
// (see core.Planner.RegisterNetBackend). A non-nil cache routes top-k
// retrievals through the shared neighborhood cache; plans are
// byte-identical either way.
func PlannerKindWSFunc(pl *core.Planner, kind core.RegionKind, cache *nbrcache.Cache) PlanWSFunc {
	return func(ws *core.Workspace, users []geom.Point, dirs []core.Direction) (geom.Point, []core.SafeRegion, core.Stats, error) {
		p, _, err := pl.Plan(ws, core.PlanRequest{Kind: kind, Users: users, Dirs: dirs, Cache: cache})
		if err != nil {
			return geom.Point{}, nil, core.Stats{}, err
		}
		return p.Best.Item.P, p.Regions, p.Stats, nil
	}
}

// PlannerKindIncFunc is the incremental counterpart of
// PlannerKindWSFunc: the returned ReplanWSFunc threads the group's
// retained core.PlanState through core.Plan, so kept and partial
// outcomes flow to the engine for any region kind.
func PlannerKindIncFunc(pl *core.Planner, kind core.RegionKind, cache *nbrcache.Cache) ReplanWSFunc {
	return func(ws *core.Workspace, st *core.PlanState, users []geom.Point, dirs []core.Direction) (geom.Point, []core.SafeRegion, core.Stats, core.IncOutcome, error) {
		p, out, err := pl.Plan(ws, core.PlanRequest{Kind: kind, Users: users, Dirs: dirs, Cache: cache, State: st})
		if err != nil {
			return geom.Point{}, nil, core.Stats{}, out, err
		}
		return p.Best.Item.P, p.Regions, p.Stats, out, nil
	}
}

// PlannerIncFunc adapts a core.Planner to a ReplanWSFunc for circle or
// tile planning. Wire it into Options.Replan to give the engine
// incremental safe-region maintenance.
func PlannerIncFunc(pl *core.Planner, circle bool) ReplanWSFunc {
	return PlannerKindIncFunc(pl, kindFor(circle), nil)
}

// PlannerCachedWSFunc is PlannerWSFunc with every recomputation's top-k
// retrieval routed through one shared neighborhood cache: all shard
// workers (and the synchronous paths) consult the same cache, so
// co-located groups anywhere in the engine reuse each other's index
// traversals. Plans are byte-identical to the uncached adapter's; a nil
// cache degrades to PlannerWSFunc.
func PlannerCachedWSFunc(pl *core.Planner, circle bool, cache *nbrcache.Cache) PlanWSFunc {
	return PlannerKindWSFunc(pl, kindFor(circle), cache)
}

// PlannerIncCachedFunc is PlannerIncFunc over the shared neighborhood
// cache (see PlannerCachedWSFunc); a nil cache yields the plain
// incremental adapter.
func PlannerIncCachedFunc(pl *core.Planner, circle bool, cache *nbrcache.Cache) ReplanWSFunc {
	return PlannerKindIncFunc(pl, kindFor(circle), cache)
}

// GroupID identifies a registered group.
type GroupID uint64

// Errors returned by the engine.
var (
	ErrClosed       = errors.New("engine: closed")
	ErrUnknownGroup = errors.New("engine: unknown group")
	ErrNoUsers      = errors.New("engine: empty user group")
	// ErrOverloaded is returned by Submit when the target shard's run
	// queue stayed full for the whole admission wait: the submission was
	// shed, not queued (see Options.AdmissionWait and ShardStats.Shed).
	// The recorded snapshot is retained as the group's pending update, so
	// a later accepted submission recomputes over fresh locations.
	ErrOverloaded = errors.New("engine: shard queue full, submission shed")
)

// PanicError is the error a notification carries when the planner
// panicked during a recomputation. The engine recovers planner panics on
// every path (shard workers, synchronous Update, registration), so one
// bad group cannot kill a shard's worker pool; the group keeps its
// previous plan, the retained incremental state is invalidated (the next
// recomputation replans from scratch), and the panic surfaces as a
// notification with Err set to a *PanicError.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: planner panic: %v", e.Value)
}

// Default bounds for the zero values of Options.AdmissionWait and
// Options.CloseTimeout.
const (
	DefaultAdmissionWait = time.Second
	DefaultCloseTimeout  = 5 * time.Second
)

// Journal receives the engine's durably significant group transitions
// (see Options.Journal). GroupCommitted reports a committed plan
// recomputation with the member locations it ran from; GroupRemoved
// reports unregistration. Both are called with internal locks held and
// must return quickly without re-entering the engine.
type Journal interface {
	GroupCommitted(tag any, users []geom.Point, dirs []core.Direction)
	GroupRemoved(tag any)
}

// Options configure the engine. The zero value of any field selects its
// default.
type Options struct {
	// Shards is the number of independent registry shards (default
	// GOMAXPROCS, minimum 1).
	Shards int
	// Workers is the number of recomputation workers per shard (default
	// 1). Total compute parallelism is Shards × Workers. The worker pool
	// starts lazily on the first Submit, so a server using only the
	// synchronous path spawns no goroutines.
	Workers int
	// QueueDepth bounds each shard's run queue (default 1024). Submit
	// waits up to AdmissionWait while the shard queue is full —
	// backpressure toward the transport — then sheds the submission with
	// ErrOverloaded. Coalescing keeps at most one entry per group, so a
	// depth of at least the shard's group count never blocks.
	QueueDepth int
	// AdmissionWait bounds how long Submit may block when the target
	// shard's run queue is full before giving up with ErrOverloaded.
	// Zero selects DefaultAdmissionWait; negative disables waiting
	// entirely (a full queue sheds immediately).
	AdmissionWait time.Duration
	// CloseTimeout bounds how long Close waits for queued recomputations
	// to drain before abandoning the remaining queue entries (counted in
	// ShardStats.Abandoned). Zero selects DefaultCloseTimeout; negative
	// waits without bound.
	CloseTimeout time.Duration
	// Replan, when non-nil, enables incremental safe-region maintenance:
	// the engine retains each group's last plan state and hands it to
	// Replan on every recomputation (registration included), so updates
	// that leave the result set unchanged regrow only the regions they
	// invalidate (see Notification.Outcome). When nil, every
	// recomputation goes through the full planner.
	Replan ReplanWSFunc
	// Journal, when non-nil, observes every durably significant group
	// transition: each committed recomputation (registration included)
	// and the group's removal. Calls are made with the group's state
	// lock held, so per group they arrive in exactly commit order —
	// the property a write-ahead log needs. Implementations must be
	// fast and must not call back into the engine; slice arguments are
	// valid only for the duration of the call (the durable store
	// encodes and enqueues without blocking). The tag is the one given
	// at RegisterTag, the group's stable identity across its lifetime.
	Journal Journal
	// TileAffinity, when positive, places new groups onto shards by
	// their quantized centroid tile (side length = TileAffinity) instead
	// of hashing the group id: co-located groups land on the same
	// shard, so they share that shard's worker-local workspace state —
	// warmed scratch sized for the local geometry — on top of any global
	// GNN cache. The shard index is encoded in the returned GroupID, so
	// lookups stay O(1). Zero disables affinity (the default id hash).
	TileAffinity float64
}

// DefaultTileAffinity is the centroid quantization WithTileAffinity-style
// callers use when they have no better number: 1/128 of the unit domain,
// matching the shared GNN cache's default tile size so "same cache tile"
// and "same shard" coincide.
const DefaultTileAffinity = 1.0 / 128

// affinityShardBits is how many low GroupID bits carry the shard index
// when Options.TileAffinity is set.
const affinityShardBits = 16

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.TileAffinity > 0 && o.Shards > 1<<affinityShardBits {
		o.Shards = 1 << affinityShardBits
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.AdmissionWait == 0 {
		o.AdmissionWait = DefaultAdmissionWait
	}
	if o.CloseTimeout == 0 {
		o.CloseTimeout = DefaultCloseTimeout
	}
	return o
}

// Notification reports one completed recomputation.
type Notification struct {
	// Group is the recomputed group.
	Group GroupID
	// Seq is the group's recomputation sequence number, starting at 1
	// with the registration plan. Per group, successful notifications
	// arrive in strictly increasing Seq order; a notification with Err
	// set repeats the Seq of the last successful plan.
	Seq uint64
	// Meeting is the fresh optimal meeting point.
	Meeting geom.Point
	// Regions are the fresh safe regions, in user order.
	Regions []core.SafeRegion
	// Stats counts the work of this recomputation alone.
	Stats core.Stats
	// Coalesced is the number of submissions this recomputation covered
	// (>1 when a burst collapsed).
	Coalesced int
	// Changed reports whether Meeting differs from the previous plan's
	// meeting point.
	Changed bool
	// Outcome reports how much of the previous plan this recomputation
	// reused when the engine runs an incremental replanner (see
	// Options.Replan): core.IncKept (nothing changed, regions are the
	// retained plan), core.IncPartial (only invalidated regions were
	// regrown), or core.IncFull (from-scratch replan — always the value
	// on non-incremental engines).
	Outcome core.IncOutcome
	// Epochs are the per-member region epochs after this recomputation,
	// parallel to Regions (see core.PlanState.Epochs): Epochs[i]
	// advances exactly when member i's region content changes, so a
	// consumer retaining the previous vector knows which regions it can
	// skip re-encoding and re-sending. Nil on non-incremental engines
	// and on error notifications; the slice is a private copy, safe to
	// retain.
	Epochs []uint64
	// Err is non-nil when the planner failed; Meeting and Regions then
	// hold the previous plan.
	Err error
	// Tag is the opaque tag of the newest submission this recomputation
	// covered (RegisterTag/SubmitTag), nil otherwise. The TCP server
	// threads the member-id ordering through it so deliveries can be
	// checked against membership churn.
	Tag any
}

// Subscription is one listener on the engine's notification stream.
type Subscription struct {
	// C delivers notifications. It is closed by Subscription.Close and by
	// Engine.Close.
	C <-chan Notification

	engine  *Engine
	ch      chan Notification
	dropped atomic.Uint64
	once    sync.Once
}

// Dropped returns how many notifications were discarded because the
// subscriber was not draining C fast enough.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscription and closes C.
func (s *Subscription) Close() {
	s.engine.unsubscribe(s)
	s.once.Do(func() { close(s.ch) })
}

// update is one submitted location snapshot.
type update struct {
	users []geom.Point
	dirs  []core.Direction
	count int  // submissions coalesced into this snapshot
	full  bool // some coalesced submission demanded a full replan
	tag   any  // opaque caller tag of the newest submission
}

// groupState is the engine-side state of one group. The registry shard
// maps GroupID → *groupState; all mutable fields are guarded by mu.
type groupState struct {
	id   GroupID
	size int
	tag  any // RegisterTag's tag: the group's identity for Journal calls

	mu      sync.Mutex
	pending *update // latest unprocessed locations, nil if none
	queued  bool    // state sits in the shard run queue
	running bool    // a worker is recomputing this group
	removed bool    // unregistered; workers skip it

	meeting geom.Point
	regions []core.SafeRegion
	stats   core.Stats // accumulated across recomputations
	seq     uint64     // completed recomputations

	// replanMu serializes incremental recomputations for this group and
	// guards planState. It is held across the whole planning call — per
	// group there is at most one asynchronous recomputation in flight, so
	// it only ever contends with a racing synchronous Update. Never
	// acquired while holding mu.
	replanMu  sync.Mutex
	planState core.PlanState // retained plan, used only when Options.Replan is set
}

// shard is one lock stripe of the registry plus its run queue.
type shard struct {
	mu       sync.Mutex
	notEmpty *sync.Cond // run queue gained work or shard closed
	notFull  *sync.Cond // run queue has space, shard closed, or a waiter expired
	groups   map[GroupID]*groupState
	ready    []*groupState // FIFO run queue
	depth    int
	closed   bool

	shed      atomic.Uint64 // submissions rejected with ErrOverloaded
	abandoned atomic.Uint64 // queued entries dropped by Close's drain deadline
}

func newShard(depth int) *shard {
	sh := &shard{groups: make(map[GroupID]*groupState), depth: depth}
	sh.notEmpty = sync.NewCond(&sh.mu)
	sh.notFull = sync.NewCond(&sh.mu)
	return sh
}

// push appends st to the run queue, applying bounded-wait admission:
// when the queue is at capacity the producer blocks at most wait
// (non-positive wait fails immediately) before the submission is shed
// with ErrOverloaded. Returns ErrClosed when the shard closed.
func (sh *shard) push(st *groupState, wait time.Duration) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.ready) >= sh.depth && !sh.closed && wait > 0 {
		// sync.Cond has no timed wait; an AfterFunc flips expired under
		// the shard lock and broadcasts. Because the callback takes
		// sh.mu, it cannot fire between this goroutine's condition check
		// and its Wait — no missed wakeup, the wait is strictly bounded.
		expired := false
		timer := time.AfterFunc(wait, func() {
			sh.mu.Lock()
			expired = true
			sh.mu.Unlock()
			sh.notFull.Broadcast()
		})
		for len(sh.ready) >= sh.depth && !sh.closed && !expired {
			sh.notFull.Wait()
		}
		timer.Stop()
	}
	if sh.closed {
		return ErrClosed
	}
	if len(sh.ready) >= sh.depth {
		sh.shed.Add(1)
		return ErrOverloaded
	}
	sh.ready = append(sh.ready, st)
	sh.notEmpty.Signal()
	return nil
}

// pushUnbounded appends st to the run queue ignoring capacity: a worker
// re-enqueueing a group after a compute must never block on (or be shed
// from) its own queue. Overshoot is at most one entry per worker.
// Returns false when the shard closed.
func (sh *shard) pushUnbounded(st *groupState) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return false
	}
	sh.ready = append(sh.ready, st)
	sh.notEmpty.Signal()
	return true
}

// pop removes the next group to recompute, blocking until work arrives.
// Returns nil when the shard is closed and drained.
func (sh *shard) pop() *groupState {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for len(sh.ready) == 0 && !sh.closed {
		sh.notEmpty.Wait()
	}
	if len(sh.ready) == 0 {
		return nil
	}
	st := sh.ready[0]
	sh.ready = sh.ready[1:]
	sh.notFull.Signal()
	return st
}

func (sh *shard) close() {
	sh.mu.Lock()
	sh.closed = true
	sh.notEmpty.Broadcast()
	sh.notFull.Broadcast()
	sh.mu.Unlock()
}

// abandon discards every queued entry, counting them, so Close's drain
// deadline can stop waiting on a wedged or oversized backlog. Workers
// then see an empty, closed queue and exit after their current
// recomputation.
func (sh *shard) abandon() {
	sh.mu.Lock()
	sh.abandoned.Add(uint64(len(sh.ready)))
	sh.ready = nil
	sh.notEmpty.Broadcast()
	sh.mu.Unlock()
}

// Engine is the sharded concurrent group engine. All methods are safe for
// concurrent use.
type Engine struct {
	plan      PlanWSFunc
	replan    ReplanWSFunc // non-nil iff Options.Replan was set
	journal   Journal      // non-nil iff Options.Journal was set
	opts      Options
	shards    []*shard
	nextID    atomic.Uint64
	wg        sync.WaitGroup
	startOnce sync.Once
	closed    atomic.Bool

	// opGate tracks in-flight synchronous operations: Register, Submit
	// and Update hold it for read over their whole call (computation and
	// emission included); Close acquires it for write after flagging
	// closed, so it returns only after every operation that was admitted
	// before the flag has finished. This is what makes the post-Close
	// contract exact: once Close returns, no Update is still computing
	// and no notification is still being emitted.
	opGate sync.RWMutex

	subMu sync.RWMutex
	subs  map[*Subscription]struct{}
	nsubs atomic.Int64 // len(subs), readable without subMu
}

// beginOp admits one synchronous operation, taking opGate for read. It
// returns false (gate released) when the engine is closed. The check
// happens under the read lock, so an operation admitted here is
// guaranteed to finish before Close returns.
func (e *Engine) beginOp() bool {
	e.opGate.RLock()
	if e.closed.Load() {
		e.opGate.RUnlock()
		return false
	}
	return true
}

// New builds an engine over the given plan function. The worker pool
// starts lazily on the first Submit; Close releases it. Workspace-aware
// planners should use NewWS, which lets each worker reuse one
// core.Workspace across recomputations.
func New(plan PlanFunc, opts Options) *Engine {
	if plan == nil {
		panic("engine: nil PlanFunc")
	}
	return NewWS(func(_ *core.Workspace, users []geom.Point, dirs []core.Direction) (geom.Point, []core.SafeRegion, core.Stats, error) {
		return plan(users, dirs)
	}, opts)
}

// NewWS builds an engine over a workspace-aware plan function: each shard
// worker owns one long-lived core.Workspace reused across all its
// recomputations, and the synchronous Register/Update paths borrow one
// from the core pool, so steady-state planning is allocation-free. plan
// may be nil only when Options.Replan is set (every recomputation then
// goes through the incremental replanner).
func NewWS(plan PlanWSFunc, opts Options) *Engine {
	if plan == nil && opts.Replan == nil {
		panic("engine: nil PlanWSFunc")
	}
	opts = opts.withDefaults()
	e := &Engine{
		plan:    plan,
		replan:  opts.Replan,
		journal: opts.Journal,
		opts:    opts,
		shards:  make([]*shard, opts.Shards),
		subs:    make(map[*Subscription]struct{}),
	}
	for i := range e.shards {
		e.shards[i] = newShard(opts.QueueDepth)
	}
	return e
}

// start spawns the worker pool (once, on first Submit). Workers started
// after Close see closed, drained shards and exit immediately.
func (e *Engine) start() {
	for _, sh := range e.shards {
		for w := 0; w < e.opts.Workers; w++ {
			e.wg.Add(1)
			go e.worker(sh)
		}
	}
}

// Options returns the resolved configuration.
func (e *Engine) Options() Options { return e.opts }

func (e *Engine) shardFor(id GroupID) *shard {
	if e.opts.TileAffinity > 0 {
		// Affinity ids carry their shard index in the low bits (assigned
		// < len(shards) at registration; the modulo only guards foreign
		// ids).
		return e.shards[(uint64(id)&(1<<affinityShardBits-1))%uint64(len(e.shards))]
	}
	// Fibonacci hashing spreads sequential ids across shards.
	h := uint64(id) * 0x9e3779b97f4a7c15
	return e.shards[h%uint64(len(e.shards))]
}

// affinityShard maps a group's quantized centroid tile to a shard index,
// so groups whose centroids share a tile share a shard (and its workers'
// warmed workspaces).
func (e *Engine) affinityShard(users []geom.Point) uint64 {
	var cx, cy float64
	for _, u := range users {
		cx += u.X
		cy += u.Y
	}
	inv := 1 / float64(len(users))
	tx := int64(math.Floor(cx * inv / e.opts.TileAffinity))
	ty := int64(math.Floor(cy * inv / e.opts.TileAffinity))
	h := uint64(tx)*0x9e3779b97f4a7c15 ^ uint64(ty)*0xc2b2ae3d27d4eb4f
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h % uint64(len(e.shards))
}

// Register adds a group, computes its first plan synchronously (so the
// caller can read regions immediately), and emits the Seq-1 notification.
func (e *Engine) Register(users []geom.Point, dirs []core.Direction) (GroupID, error) {
	return e.RegisterTag(users, dirs, nil)
}

// RegisterTag is Register with an opaque tag carried on the registration
// notification (see Notification.Tag).
func (e *Engine) RegisterTag(users []geom.Point, dirs []core.Direction, tag any) (GroupID, error) {
	if !e.beginOp() {
		return 0, ErrClosed
	}
	defer e.opGate.RUnlock()
	if len(users) == 0 {
		return 0, ErrNoUsers
	}
	ws := core.GetWorkspace()
	var pstate core.PlanState
	var meeting geom.Point
	var regions []core.SafeRegion
	var stats core.Stats
	var err error
	if e.replan != nil {
		// Seed the retained plan state through the replanner (the zero
		// state forces the full path), so the first escape report can
		// already be served incrementally.
		meeting, regions, stats, _, err = e.runReplan(ws, &pstate, users, dirs)
	} else {
		meeting, regions, stats, err = e.runPlan(ws, users, dirs)
	}
	core.PutWorkspace(ws)
	if err != nil {
		return 0, err
	}
	seq := e.nextID.Add(1)
	id := GroupID(seq)
	if e.opts.TileAffinity > 0 {
		id = GroupID(seq<<affinityShardBits | e.affinityShard(users))
	}
	st := &groupState{
		id: id, size: len(users), tag: tag,
		meeting: meeting, regions: regions, stats: stats, seq: 1,
		planState: pstate,
	}
	sh := e.shardFor(id)
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return 0, ErrClosed
	}
	sh.groups[id] = st
	sh.mu.Unlock()
	if e.journal != nil {
		// The registration commit. No lock needed for ordering: a
		// submission for this group cannot exist before the id returns.
		e.journal.GroupCommitted(tag, users, dirs)
	}
	if e.hasSubscribers() {
		var epochs []uint64
		if e.replan != nil {
			// Under replanMu: a submission racing this registration could
			// already be advancing the state on a worker.
			st.replanMu.Lock()
			epochs = append([]uint64(nil), st.planState.Epochs()...)
			st.replanMu.Unlock()
		}
		e.emit(Notification{
			Group: id, Seq: 1, Meeting: meeting, Regions: regions,
			Stats: stats, Coalesced: 1, Changed: true, Tag: tag,
			Epochs: epochs,
		})
	}
	return id, nil
}

// Unregister removes a group. Queued or in-flight recomputations for it
// are discarded.
func (e *Engine) Unregister(id GroupID) {
	sh := e.shardFor(id)
	sh.mu.Lock()
	st := sh.groups[id]
	delete(sh.groups, id)
	sh.mu.Unlock()
	if st != nil {
		st.mu.Lock()
		st.removed = true
		st.pending = nil
		if e.journal != nil {
			// Under st.mu, after removed is set: commits serialize on the
			// same lock and skip removed groups, so per group the removal
			// is the journal's final record.
			e.journal.GroupRemoved(st.tag)
		}
		st.mu.Unlock()
		// Drop the retained plan so the dead state pins no regions. An
		// in-flight recomputation may still record into it; the state is
		// unreachable once that finishes (and its result is discarded).
		st.replanMu.Lock()
		st.planState.Invalidate()
		st.replanMu.Unlock()
	}
}

// lookup returns the group's state, or nil.
func (e *Engine) lookup(id GroupID) *groupState {
	sh := e.shardFor(id)
	sh.mu.Lock()
	st := sh.groups[id]
	sh.mu.Unlock()
	return st
}

// validate checks a location snapshot against the group's size.
func (st *groupState) validate(users []geom.Point) error {
	if len(users) != st.size {
		return fmt.Errorf("engine: group has %d users, got %d locations", st.size, len(users))
	}
	return nil
}

// Submit schedules an asynchronous recomputation from the users' current
// locations. It returns once the update is recorded: bursts for the same
// group coalesce into one recomputation over the latest snapshot, and the
// result arrives on the subscription stream. Submit blocks only when the
// shard's run queue is full, and then at most Options.AdmissionWait
// before shedding the submission with ErrOverloaded.
func (e *Engine) Submit(id GroupID, users []geom.Point, dirs []core.Direction) error {
	return e.submit(id, users, dirs, nil, false)
}

// SubmitFull is Submit with the incremental state invalidated when the
// recomputation runs: the plan is recomputed from scratch even if every
// member is inside her retained region. The demand survives coalescing —
// if the submission collapses into a burst, the burst's recomputation is
// full.
func (e *Engine) SubmitFull(id GroupID, users []geom.Point, dirs []core.Direction) error {
	return e.submit(id, users, dirs, nil, true)
}

// SubmitTag is Submit with an opaque tag: the notification for the
// recomputation that covers this submission carries the tag of the
// newest coalesced submission (see Notification.Tag).
func (e *Engine) SubmitTag(id GroupID, users []geom.Point, dirs []core.Direction, tag any) error {
	return e.submit(id, users, dirs, tag, false)
}

func (e *Engine) submit(id GroupID, users []geom.Point, dirs []core.Direction, tag any, full bool) error {
	if !e.beginOp() {
		return ErrClosed
	}
	defer e.opGate.RUnlock()
	faultinject.Fire(faultinject.EngineSubmit)
	e.startOnce.Do(e.start)
	st := e.lookup(id)
	if st == nil {
		return ErrUnknownGroup
	}
	if err := st.validate(users); err != nil {
		return err
	}
	up := &update{
		users: append([]geom.Point(nil), users...),
		dirs:  append([]core.Direction(nil), dirs...),
		count: 1,
		full:  full,
		tag:   tag,
	}
	st.mu.Lock()
	if st.removed {
		st.mu.Unlock()
		return ErrUnknownGroup
	}
	if st.pending != nil {
		up.count += st.pending.count
		up.full = up.full || st.pending.full
	}
	st.pending = up
	enqueue := !st.queued && !st.running
	if enqueue {
		st.queued = true
	}
	st.mu.Unlock()
	if !enqueue {
		return nil
	}
	if err := e.shardFor(id).push(st, e.opts.AdmissionWait); err != nil {
		// The shard refused the enqueue. The recorded snapshot stays
		// pending — the next accepted submission (or an already-running
		// recomputation's requeue pass) coalesces it — but the group must
		// not look queued when it is not in the queue.
		st.mu.Lock()
		st.queued = false
		st.mu.Unlock()
		return err
	}
	return nil
}

// compute runs one recomputation over the snapshot, routing through the
// incremental replanner when one is configured. The group's replan lock
// is held across the whole planning call: it guards the retained plan
// state, serializing a synchronous Update against the at-most-one
// asynchronous recomputation in flight. forceFull invalidates the
// retained state first, so the replanner takes the from-scratch path.
// wantEpochs asks for a snapshot of the post-recomputation epoch vector
// (a copy, taken while the lock is still held); callers that will not
// emit a notification pass false and skip the copy.
func (e *Engine) compute(st *groupState, ws *core.Workspace, users []geom.Point, dirs []core.Direction, forceFull, wantEpochs bool) (geom.Point, []core.SafeRegion, []uint64, core.Stats, core.IncOutcome, error) {
	if e.replan == nil {
		meeting, regions, stats, err := e.runPlan(ws, users, dirs)
		return meeting, regions, nil, stats, core.IncFull, err
	}
	st.replanMu.Lock()
	defer st.replanMu.Unlock()
	if forceFull {
		st.planState.Invalidate()
	}
	meeting, regions, stats, outcome, err := e.runReplan(ws, &st.planState, users, dirs)
	if err != nil {
		var pe *PanicError
		if errors.As(err, &pe) {
			// The panic may have left the retained state half-written.
			// Drop it so the group's next recomputation replans from
			// scratch off a clean slate instead of trusting torn state.
			st.planState.Invalidate()
		}
		return meeting, regions, nil, stats, outcome, err
	}
	var epochs []uint64
	if wantEpochs {
		epochs = append([]uint64(nil), st.planState.Epochs()...)
	}
	return meeting, regions, epochs, stats, outcome, err
}

// runPlan invokes the full planner through the EnginePlan failpoint with
// panic isolation: a panic — the planner's own or an injected one —
// comes back as a *PanicError instead of unwinding the calling
// goroutine (which on the worker path would kill a pool worker).
func (e *Engine) runPlan(ws *core.Workspace, users []geom.Point, dirs []core.Direction) (meeting geom.Point, regions []core.SafeRegion, stats core.Stats, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	faultinject.Fire(faultinject.EnginePlan)
	return e.plan(ws, users, dirs)
}

// runReplan is runPlan for the incremental replanner. Callers holding
// the group's replan lock must invalidate the retained state when the
// returned error is a *PanicError (see compute).
func (e *Engine) runReplan(ws *core.Workspace, st *core.PlanState, users []geom.Point, dirs []core.Direction) (meeting geom.Point, regions []core.SafeRegion, stats core.Stats, outcome core.IncOutcome, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	faultinject.Fire(faultinject.EnginePlan)
	return e.replan(ws, st, users, dirs)
}

// Update recomputes synchronously on the caller's goroutine and emits the
// notification before returning. A pending snapshot that was already
// queued when Update began is superseded — Update's locations are newer —
// and discarded, so an older Submit cannot overwrite this result; a
// Submit that arrives during the computation is kept and recomputed
// after. Seq assignment stays strictly increasing through the shared
// per-group state, but a synchronous Update racing an asynchronous
// recomputation already in flight may emit out of Seq order (each runs
// its own computation, last store wins).
func (e *Engine) Update(id GroupID, users []geom.Point, dirs []core.Direction) error {
	return e.update(id, users, dirs, false)
}

// UpdateFull is Update with the incremental state invalidated first, so
// the plan is recomputed from scratch even when every member is inside
// her retained region — the synchronous forced-full escape hatch. On a
// non-incremental engine it is identical to Update.
func (e *Engine) UpdateFull(id GroupID, users []geom.Point, dirs []core.Direction) error {
	return e.update(id, users, dirs, true)
}

func (e *Engine) update(id GroupID, users []geom.Point, dirs []core.Direction, forceFull bool) error {
	if !e.beginOp() {
		return ErrClosed
	}
	defer e.opGate.RUnlock()
	st := e.lookup(id)
	if st == nil {
		return ErrUnknownGroup
	}
	if err := st.validate(users); err != nil {
		return err
	}
	st.mu.Lock()
	superseded := st.pending
	st.mu.Unlock()
	if superseded != nil && superseded.full {
		// This call may discard that snapshot below; honor its forced-full
		// demand rather than dropping it.
		forceFull = true
	}
	ws := core.GetWorkspace()
	meeting, regions, epochs, stats, outcome, err := e.compute(st, ws, users, dirs, forceFull, e.hasSubscribers())
	core.PutWorkspace(ws)
	if err != nil {
		return err
	}
	st.mu.Lock()
	covered := 1
	if superseded != nil && st.pending == superseded {
		// Still the same snapshot that predates this call: drop it and
		// count its submissions as covered by this recomputation. The
		// group may stay queued; the worker skips a nil pending.
		covered += superseded.count
		st.pending = nil
	}
	changed := meeting != st.meeting
	st.meeting = meeting
	st.regions = regions
	st.stats.Add(stats)
	st.seq++
	if e.journal != nil && !st.removed {
		e.journal.GroupCommitted(st.tag, users, dirs)
	}
	// Assemble the notification only when someone is listening: the
	// zero-subscriber steady state pays for the recomputation alone.
	emit := !st.removed && e.hasSubscribers()
	var n Notification
	if emit {
		n = Notification{
			Group: st.id, Seq: st.seq, Meeting: meeting, Regions: regions,
			Stats: stats, Coalesced: covered, Changed: changed,
			Outcome: outcome, Epochs: epochs,
		}
	}
	st.mu.Unlock()
	if emit {
		e.emit(n)
	}
	return nil
}

// worker drains one shard's run queue. Each worker owns one long-lived
// workspace, reused across every recomputation it performs, so a warm
// worker plans without allocating scratch.
func (e *Engine) worker(sh *shard) {
	defer e.wg.Done()
	ws := core.NewWorkspace()
	for {
		st := sh.pop()
		if st == nil {
			return
		}
		st.mu.Lock()
		st.queued = false
		if st.removed || st.pending == nil || st.running {
			// running can't be set here (a group is enqueued at most
			// once and only re-enqueued after running clears), but the
			// guard keeps the invariant local.
			st.mu.Unlock()
			continue
		}
		up := st.pending
		st.pending = nil
		st.running = true
		st.mu.Unlock()

		meeting, regions, epochs, stats, outcome, err := e.compute(st, ws, up.users, up.dirs, up.full, e.hasSubscribers())

		st.mu.Lock()
		var n Notification
		emit := !st.removed && e.hasSubscribers()
		if err != nil {
			// Keep the previous plan (and its Seq); surface the failure.
			if emit {
				n = Notification{
					Group: st.id, Seq: st.seq, Meeting: st.meeting,
					Regions: st.regions, Coalesced: up.count, Err: err,
					Tag: up.tag,
				}
			}
		} else {
			changed := meeting != st.meeting
			st.meeting = meeting
			st.regions = regions
			st.stats.Add(stats)
			st.seq++
			if e.journal != nil && !st.removed {
				// Prefer the covering submission's tag: it describes the
				// snapshot this commit was computed from. Untagged Submit
				// falls back to the group's registration identity.
				jt := up.tag
				if jt == nil {
					jt = st.tag
				}
				e.journal.GroupCommitted(jt, up.users, up.dirs)
			}
			if emit {
				n = Notification{
					Group: st.id, Seq: st.seq, Meeting: meeting,
					Regions: regions, Stats: stats, Coalesced: up.count,
					Changed: changed, Outcome: outcome, Epochs: epochs,
					Tag: up.tag,
				}
			}
		}
		requeue := st.pending != nil && !st.removed
		if requeue {
			st.queued = true
		}
		st.running = false
		st.mu.Unlock()

		if emit {
			e.emit(n)
		}
		if requeue {
			sh.pushUnbounded(st)
		}
	}
}

// Subscribe attaches a notification listener with the given channel
// buffer (minimum 1). Sends never block: when the buffer is full the
// notification is dropped and counted.
func (e *Engine) Subscribe(buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan Notification, buffer)
	s := &Subscription{engine: e, ch: ch, C: ch}
	e.subMu.Lock()
	if e.closed.Load() {
		e.subMu.Unlock()
		s.once.Do(func() { close(ch) })
		return s
	}
	e.subs[s] = struct{}{}
	e.nsubs.Store(int64(len(e.subs)))
	e.subMu.Unlock()
	return s
}

func (e *Engine) unsubscribe(s *Subscription) {
	e.subMu.Lock()
	delete(e.subs, s)
	e.nsubs.Store(int64(len(e.subs)))
	e.subMu.Unlock()
}

// hasSubscribers reports whether any subscription is attached, without
// taking subMu. Recomputation paths consult it before assembling a
// Notification: with no listeners the payload is never built or copied. A
// subscription attached concurrently with an in-flight recomputation may
// miss that one notification — the stream is already lossy by design
// (sends never block and drop on full buffers).
func (e *Engine) hasSubscribers() bool { return e.nsubs.Load() > 0 }

// emit fans a notification out to every subscriber without blocking.
func (e *Engine) emit(n Notification) {
	e.subMu.RLock()
	for s := range e.subs {
		select {
		case s.ch <- n:
		default:
			s.dropped.Add(1)
		}
	}
	e.subMu.RUnlock()
}

// Meeting returns the group's current meeting point (zero if unknown).
func (e *Engine) Meeting(id GroupID) geom.Point {
	st := e.lookup(id)
	if st == nil {
		return geom.Point{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.meeting
}

// Size returns the group's member count (fixed at registration), or 0
// for an unknown group.
func (e *Engine) Size(id GroupID) int {
	st := e.lookup(id)
	if st == nil {
		return 0
	}
	return st.size
}

// Regions returns a copy of the group's safe regions.
func (e *Engine) Regions(id GroupID) []core.SafeRegion {
	st := e.lookup(id)
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]core.SafeRegion, len(st.regions))
	copy(out, st.regions)
	return out
}

// Epochs returns a copy of the group's current per-member region epoch
// vector (see Notification.Epochs). Nil on non-incremental engines and
// unknown groups.
func (e *Engine) Epochs(id GroupID) []uint64 {
	if e.replan == nil {
		return nil
	}
	st := e.lookup(id)
	if st == nil {
		return nil
	}
	st.replanMu.Lock()
	defer st.replanMu.Unlock()
	return append([]uint64(nil), st.planState.Epochs()...)
}

// Region returns user i's safe region (zero region when out of range).
func (e *Engine) Region(id GroupID, i int) core.SafeRegion {
	st := e.lookup(id)
	if st == nil {
		return core.SafeRegion{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if i < 0 || i >= len(st.regions) {
		return core.SafeRegion{}
	}
	return st.regions[i]
}

// NeedsUpdate reports whether user i at loc escapes her safe region. It
// is conservative: unknown groups and out-of-range indices need updates.
func (e *Engine) NeedsUpdate(id GroupID, i int, loc geom.Point) bool {
	st := e.lookup(id)
	if st == nil {
		return true
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if i < 0 || i >= len(st.regions) {
		return true
	}
	return !st.regions[i].Contains(loc)
}

// Stats returns the group's accumulated computation counters.
func (e *Engine) Stats(id GroupID) core.Stats {
	st := e.lookup(id)
	if st == nil {
		return core.Stats{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// Updates returns how many recomputations completed for the group
// (registration counts as the first).
func (e *Engine) Updates(id GroupID) int {
	st := e.lookup(id)
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return int(st.seq)
}

// GroupSize returns the group's user count (0 if unknown).
func (e *Engine) GroupSize(id GroupID) int {
	st := e.lookup(id)
	if st == nil {
		return 0
	}
	return st.size
}

// NumGroups returns the registered group count across all shards.
func (e *Engine) NumGroups() int {
	n := 0
	for _, sh := range e.shards {
		sh.mu.Lock()
		n += len(sh.groups)
		sh.mu.Unlock()
	}
	return n
}

// Close shuts the engine down with a drain deadline. The post-Close
// contract:
//
//   - Synchronous operations (Register, Update, Submit) that were
//     admitted before Close have fully finished — computation and
//     notification emission included — by the time Close returns; calls
//     arriving after return ErrClosed. This is the opGate: Close waits
//     for every in-flight caller, so an Update returning nil has had its
//     notification offered to subscribers before any channel closes.
//   - Recomputations already running or already queued get
//     Options.CloseTimeout to complete and emit. When the deadline
//     passes, the remaining queue entries are abandoned (counted in
//     ShardStats.Abandoned) and workers exit after their current
//     recomputation; a worker wedged inside the planner past a second
//     deadline is left behind rather than hanging Close. A snapshot
//     accepted while its group's recomputation was in flight may be
//     discarded without a notification — Close is a shutdown, not a
//     flush.
//   - Every subscription channel is closed last, after all emission has
//     ceased.
func (e *Engine) Close() {
	if !e.closed.CompareAndSwap(false, true) {
		return
	}
	// Closing the shards first wakes producers blocked in admission
	// waits (they return ErrClosed and release the op gate) and tells
	// workers to exit once their queues drain.
	for _, sh := range e.shards {
		sh.close()
	}
	// Wait for in-flight synchronous operations to finish.
	e.opGate.Lock()
	e.opGate.Unlock() //nolint:staticcheck // gate barrier, not a critical section
	// Drain the worker pool under the deadline.
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	if d := e.opts.CloseTimeout; d > 0 {
		t := time.NewTimer(d)
		select {
		case <-done:
			t.Stop()
		case <-t.C:
			// Deadline passed with work still queued: abandon the queues
			// so workers stop after their current recomputation, then
			// give them one more deadline to come home.
			for _, sh := range e.shards {
				sh.abandon()
			}
			t2 := time.NewTimer(d)
			select {
			case <-done:
				t2.Stop()
			case <-t2.C:
				// A recomputation is wedged inside the planner. Leaving
				// its worker behind is safe: the subscription map empties
				// below before any channel closes, so a late emit sends
				// nowhere.
			}
		}
	} else {
		<-done
	}
	e.subMu.Lock()
	for s := range e.subs {
		delete(e.subs, s)
		s.once.Do(func() { close(s.ch) })
	}
	e.nsubs.Store(0)
	e.subMu.Unlock()
}

// ShardStats is one shard's admission and shutdown accounting.
type ShardStats struct {
	// Queued is the current run-queue length.
	Queued int
	// Shed counts submissions rejected with ErrOverloaded because the
	// queue stayed full for the whole admission wait.
	Shed uint64
	// Abandoned counts queued recomputations discarded when Close's
	// drain deadline passed.
	Abandoned uint64
}

// ShardStats returns a snapshot of every shard's admission counters,
// indexed by shard.
func (e *Engine) ShardStats() []ShardStats {
	out := make([]ShardStats, len(e.shards))
	for i, sh := range e.shards {
		sh.mu.Lock()
		q := len(sh.ready)
		sh.mu.Unlock()
		out[i] = ShardStats{Queued: q, Shed: sh.shed.Load(), Abandoned: sh.abandoned.Load()}
	}
	return out
}

// Shed returns the total number of submissions rejected with
// ErrOverloaded across all shards — the headline overload counter.
func (e *Engine) Shed() uint64 {
	var n uint64
	for _, sh := range e.shards {
		n += sh.shed.Load()
	}
	return n
}
