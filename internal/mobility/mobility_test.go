package mobility

import (
	"math"
	"testing"

	"mpn/internal/geom"
	"mpn/internal/roadnet"
)

func TestGeoLifeStyleBasics(t *testing.T) {
	cfg := DefaultWaypointConfig()
	cfg.Steps = 5000
	traj, err := GeoLifeStyle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != cfg.Steps {
		t.Fatalf("len=%d want %d", len(traj), cfg.Steps)
	}
	for i, p := range traj {
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("step %d escapes unit square: %v", i, p)
		}
		if i > 0 {
			if d := traj[i-1].Dist(p); d > cfg.Speed+1e-12 {
				t.Fatalf("step %d moved %v > speed %v", i, d, cfg.Speed)
			}
		}
	}
}

func TestGeoLifeStyleDeterminism(t *testing.T) {
	cfg := DefaultWaypointConfig()
	cfg.Steps = 100
	a, _ := GeoLifeStyle(cfg)
	b, _ := GeoLifeStyle(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
	cfg.Seed = 2
	c, _ := GeoLifeStyle(cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical trajectories")
	}
}

func TestGeoLifeStyleHeadingPersistence(t *testing.T) {
	// With small TurnSigma, consecutive step directions should correlate:
	// mean absolute turn per step well below a uniform-random baseline
	// (π/2).
	cfg := DefaultWaypointConfig()
	cfg.Steps = 4000
	cfg.TurnProb = 0
	cfg.TurnSigma = 0.05
	traj, _ := GeoLifeStyle(cfg)
	sum, cnt := 0.0, 0
	for i := 2; i < len(traj); i++ {
		v1 := traj[i-1].Sub(traj[i-2])
		v2 := traj[i].Sub(traj[i-1])
		if v1.Norm() == 0 || v2.Norm() == 0 {
			continue
		}
		sum += geom.AngleDiff(v1.Angle(), v2.Angle())
		cnt++
	}
	if mean := sum / float64(cnt); mean > 0.3 {
		t.Fatalf("mean turn %v too large for persistent heading", mean)
	}
}

func TestGeoLifeStyleErrors(t *testing.T) {
	if _, err := GeoLifeStyle(WaypointConfig{Steps: 0}); err == nil {
		t.Fatal("Steps=0 accepted")
	}
	if _, err := GeoLifeStyle(WaypointConfig{Steps: 5, Speed: -1}); err == nil {
		t.Fatal("negative speed accepted")
	}
}

func testNetwork(t testing.TB) *roadnet.Network {
	t.Helper()
	net, err := roadnet.Generate(roadnet.Config{
		Rows: 15, Cols: 15, Jitter: 0.2, DropFrac: 0.1, Arterials: 5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNetworkTrajectoryBasics(t *testing.T) {
	net := testNetwork(t)
	cfg := DefaultNetworkConfig()
	cfg.Steps = 3000
	traj, err := NetworkTrajectory(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != cfg.Steps {
		t.Fatalf("len=%d want %d", len(traj), cfg.Steps)
	}
	for i := 1; i < len(traj); i++ {
		if d := traj[i-1].Dist(traj[i]); d > cfg.Speed+1e-9 {
			t.Fatalf("step %d moved %v > speed %v", i, d, cfg.Speed)
		}
	}
	// Positions should hug the network: every sample within a short
	// distance of some node or edge — check via nearest node distance
	// bounded by max edge length.
	maxEdge := 0.0
	for a := range net.Adj {
		for _, e := range net.Adj[a] {
			if e.Len > maxEdge {
				maxEdge = e.Len
			}
		}
	}
	for i, p := range traj {
		nd := net.Nodes[net.NearestNode(p)].P
		if nd.Dist(p) > maxEdge {
			t.Fatalf("step %d strayed from network: %v", i, p)
		}
	}
}

func TestNetworkTrajectoryErrors(t *testing.T) {
	net := testNetwork(t)
	if _, err := NetworkTrajectory(net, NetworkConfig{Steps: 0}); err == nil {
		t.Fatal("Steps=0 accepted")
	}
	if _, err := NetworkTrajectory(nil, DefaultNetworkConfig()); err == nil {
		t.Fatal("nil network accepted")
	}
}

func TestResampleSpeed(t *testing.T) {
	cfg := DefaultWaypointConfig()
	cfg.Steps = 2000
	traj, _ := GeoLifeStyle(cfg)

	full, err := ResampleSpeed(traj, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(traj) {
		t.Fatalf("len=%d", len(full))
	}

	half, err := ResampleSpeed(traj, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(half) != len(traj) {
		t.Fatalf("len=%d", len(half))
	}
	// Half-speed trajectory must cover roughly half the arc length.
	if ratio := arcLen(half) / arcLen(traj); ratio < 0.3 || ratio > 0.7 {
		t.Fatalf("half-speed arc ratio %v not ≈ 0.5", ratio)
	}
	// It must start where the original starts and end near the midpoint
	// sample of the original.
	if half[0] != traj[0] {
		t.Fatal("resampled start moved")
	}
	mid := traj[len(traj)/2-1]
	if half[len(half)-1].Dist(mid) > 0.01 {
		t.Fatalf("resampled end %v far from original midpoint %v", half[len(half)-1], mid)
	}
	// Per-step displacement should be nearly uniform.
	maxStep, minStep := 0.0, math.Inf(1)
	for i := 1; i < len(half); i++ {
		d := half[i-1].Dist(half[i])
		if d > maxStep {
			maxStep = d
		}
		if d < minStep {
			minStep = d
		}
	}
	if maxStep > 3*cfg.Speed {
		t.Fatalf("resampled step %v too large", maxStep)
	}
}

func arcLen(tr Trajectory) float64 {
	s := 0.0
	for i := 1; i < len(tr); i++ {
		s += tr[i-1].Dist(tr[i])
	}
	return s
}

func TestResampleSpeedErrors(t *testing.T) {
	traj := Trajectory{geom.Pt(0, 0), geom.Pt(1, 0)}
	for _, f := range []float64{0, -0.5, 1.5} {
		if _, err := ResampleSpeed(traj, f); err == nil {
			t.Fatalf("fraction %v accepted", f)
		}
	}
	if _, err := ResampleSpeed(nil, 0.5); err == nil {
		t.Fatal("empty trajectory accepted")
	}
}

func TestResampleSpeedStationary(t *testing.T) {
	traj := Trajectory{geom.Pt(0.5, 0.5), geom.Pt(0.5, 0.5), geom.Pt(0.5, 0.5)}
	out, err := ResampleSpeed(traj, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range out {
		if p != geom.Pt(0.5, 0.5) {
			t.Fatal("stationary resample moved")
		}
	}
}

func TestHeading(t *testing.T) {
	traj := Trajectory{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(2, 1),
	}
	if h := Heading(traj, 2, 2); math.Abs(h) > 1e-12 {
		t.Fatalf("eastward heading=%v", h)
	}
	// Displacement from (1,0) to (2,1): 45°.
	if h := Heading(traj, 3, 2); math.Abs(h-math.Pi/4) > 1e-12 {
		t.Fatalf("heading=%v want π/4", h)
	}
	// Edge cases.
	if h := Heading(traj, 0, 5); h != 0 {
		t.Fatal("t=0 heading should be 0")
	}
	if h := Heading(nil, 3, 2); h != 0 {
		t.Fatal("empty trajectory heading should be 0")
	}
	if h := Heading(traj, 99, 1); math.Abs(h-math.Pi/2) > 1e-12 {
		t.Fatalf("clamped-t heading=%v want π/2", h)
	}
}

func TestDeviationBound(t *testing.T) {
	// Straight line: deviation clamps to minTheta.
	straight := Trajectory{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0)}
	if d := DeviationBound(straight, 3, 3, 0.2); d != 0.2 {
		t.Fatalf("straight deviation=%v want clamp 0.2", d)
	}
	// Right-angle turn: deviation at least π/4 relative to the mean
	// heading.
	turn := Trajectory{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1)}
	if d := DeviationBound(turn, 2, 2, 0.1); d < math.Pi/4-1e-9 {
		t.Fatalf("turn deviation=%v", d)
	}
}

func BenchmarkGeoLifeStyle10k(b *testing.B) {
	cfg := DefaultWaypointConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := GeoLifeStyle(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetworkTrajectory10k(b *testing.B) {
	net := testNetwork(b)
	cfg := DefaultNetworkConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := NetworkTrajectory(net, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
