// Package mobility generates the moving-user trajectories that drive the
// experiments, standing in for the paper's two query workloads:
//
//   - GeoLifeStyle: a waypoint model with heading persistence and speed
//     variation, the surrogate for the GeoLife taxi trajectories. Heading
//     persistence is the property the directed tile ordering exploits [26].
//   - NetworkTrajectory: Brinkhoff-style movement on a road network
//     (shortest paths between random destinations), the surrogate for the
//     Oldenburg trajectory set [27].
//
// The package also implements the paper's speed-scaling protocol
// (Section 7.2, "Effect of user speed"): for speed x·V the first x
// fraction of a trajectory is resampled uniformly to the full timestamp
// count, and the recent-heading estimator used by Tile-D.
package mobility

import (
	"fmt"
	"math"
	"math/rand"

	"mpn/internal/geom"
	"mpn/internal/roadnet"
)

// Trajectory is one user's location per timestamp.
type Trajectory []geom.Point

// WaypointConfig parameterizes the GeoLife-style generator.
type WaypointConfig struct {
	// Steps is the number of timestamps (the paper's sets have >10,000).
	Steps int
	// Speed is the distance traveled per timestamp at the speed limit V.
	Speed float64
	// TurnSigma is the standard deviation of the per-step heading jitter
	// in radians; small values yield the heading persistence of real
	// vehicle traces.
	TurnSigma float64
	// TurnProb is the probability of a sharp turn (junction behaviour).
	TurnProb float64
	// SpeedJitter varies the per-step speed uniformly in
	// [(1−SpeedJitter)·Speed, Speed].
	SpeedJitter float64
	// Start is the initial location; the zero value starts at a random
	// point when Randomize is set.
	Start geom.Point
	// Randomize picks a random start position (using Seed) instead of
	// Start.
	Randomize bool
	// Seed drives the generator deterministically.
	Seed int64
}

// DefaultWaypointConfig mirrors urban taxi motion on the unit square.
func DefaultWaypointConfig() WaypointConfig {
	return WaypointConfig{
		Steps:       10000,
		Speed:       0.0004,
		TurnSigma:   0.08,
		TurnProb:    0.01,
		SpeedJitter: 0.4,
		Randomize:   true,
		Seed:        1,
	}
}

// GeoLifeStyle generates a heading-persistent waypoint trajectory clipped
// to the unit square (headings reflect off the borders).
func GeoLifeStyle(cfg WaypointConfig) (Trajectory, error) {
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("mobility: Steps %d must be positive", cfg.Steps)
	}
	if cfg.Speed < 0 {
		return nil, fmt.Errorf("mobility: negative Speed %v", cfg.Speed)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	pos := cfg.Start
	if cfg.Randomize {
		pos = geom.Pt(rng.Float64(), rng.Float64())
	}
	heading := rng.Float64() * 2 * math.Pi

	traj := make(Trajectory, cfg.Steps)
	traj[0] = pos
	for t := 1; t < cfg.Steps; t++ {
		if rng.Float64() < cfg.TurnProb {
			heading += (rng.Float64() - 0.5) * math.Pi // sharp turn up to ±90°
		} else {
			heading += rng.NormFloat64() * cfg.TurnSigma
		}
		speed := cfg.Speed * (1 - cfg.SpeedJitter*rng.Float64())
		nx := pos.X + speed*math.Cos(heading)
		ny := pos.Y + speed*math.Sin(heading)
		// Reflect at the borders.
		if nx < 0 || nx > 1 {
			heading = math.Pi - heading
			nx = clamp01(nx)
		}
		if ny < 0 || ny > 1 {
			heading = -heading
			ny = clamp01(ny)
		}
		pos = geom.Pt(nx, ny)
		traj[t] = pos
	}
	return traj, nil
}

// NetworkConfig parameterizes the Brinkhoff-style generator.
type NetworkConfig struct {
	// Steps is the number of timestamps.
	Steps int
	// Speed is the distance per timestamp at the speed limit V.
	Speed float64
	// SpeedJitter varies per-trip speed in [(1−j)·Speed, Speed].
	SpeedJitter float64
	// Seed drives destination choice and jitter.
	Seed int64
}

// DefaultNetworkConfig mirrors the Oldenburg workload scale.
func DefaultNetworkConfig() NetworkConfig {
	return NetworkConfig{Steps: 10000, Speed: 0.0004, SpeedJitter: 0.4, Seed: 1}
}

// NetworkTrajectory generates network-constrained movement: starting at a
// random junction, the user repeatedly routes to a random destination along
// the shortest path, emitting one position per timestamp.
func NetworkTrajectory(net *roadnet.Network, cfg NetworkConfig) (Trajectory, error) {
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("mobility: Steps %d must be positive", cfg.Steps)
	}
	if net == nil || net.NumNodes() == 0 {
		return nil, fmt.Errorf("mobility: empty network")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	cur := net.RandomNode(rng)
	traj := make(Trajectory, 0, cfg.Steps)
	traj = append(traj, net.Nodes[cur].P)

	for len(traj) < cfg.Steps {
		dest := net.RandomNode(rng)
		if dest == cur {
			continue
		}
		path, _, ok := net.ShortestPath(cur, dest)
		if !ok {
			continue // cannot happen on Generate output
		}
		speed := cfg.Speed * (1 - cfg.SpeedJitter*rng.Float64())
		if speed <= 0 {
			speed = cfg.Speed
		}
		traj = walkPolyline(traj, nodePoints(net, path), speed, cfg.Steps)
		cur = dest
	}
	return traj[:cfg.Steps], nil
}

func nodePoints(net *roadnet.Network, path []int) []geom.Point {
	pts := make([]geom.Point, len(path))
	for i, id := range path {
		pts[i] = net.Nodes[id].P
	}
	return pts
}

// walkPolyline appends per-timestamp positions advancing dist `speed` per
// step along the polyline, stopping early at maxLen samples.
func walkPolyline(traj Trajectory, pts []geom.Point, speed float64, maxLen int) Trajectory {
	if len(pts) < 2 {
		return traj
	}
	seg := 0
	segPos := 0.0
	for len(traj) < maxLen {
		remaining := speed
		for remaining > 0 {
			segLen := pts[seg].Dist(pts[seg+1])
			left := segLen - segPos
			if left > remaining {
				segPos += remaining
				remaining = 0
			} else {
				remaining -= left
				seg++
				segPos = 0
				if seg >= len(pts)-1 {
					// Destination reached mid-step: emit it and stop.
					traj = append(traj, pts[len(pts)-1])
					return traj
				}
			}
		}
		segLen := pts[seg].Dist(pts[seg+1])
		frac := 0.0
		if segLen > 0 {
			frac = segPos / segLen
		}
		traj = append(traj, geom.Segment{A: pts[seg], B: pts[seg+1]}.At(frac))
	}
	return traj
}

// ResampleSpeed implements the paper's speed-scaling protocol: for speed
// fraction x ∈ (0,1], take the trajectory prefix covering the first x
// fraction of timestamps and resample it uniformly (by arc length) back to
// the original timestamp count. The result is a consistent trajectory
// traveling the same roads at x·V.
func ResampleSpeed(traj Trajectory, frac float64) (Trajectory, error) {
	if len(traj) == 0 {
		return nil, fmt.Errorf("mobility: empty trajectory")
	}
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("mobility: speed fraction %v out of (0,1]", frac)
	}
	n := len(traj)
	prefix := traj[:maxInt(2, int(math.Ceil(frac*float64(n))))]
	if len(prefix) > n {
		prefix = traj
	}

	// Cumulative arc length of the prefix.
	cum := make([]float64, len(prefix))
	for i := 1; i < len(prefix); i++ {
		cum[i] = cum[i-1] + prefix[i-1].Dist(prefix[i])
	}
	total := cum[len(cum)-1]
	out := make(Trajectory, n)
	if total == 0 {
		for i := range out {
			out[i] = prefix[0]
		}
		return out, nil
	}
	seg := 0
	for i := 0; i < n; i++ {
		target := total * float64(i) / float64(n-1)
		for seg < len(cum)-2 && cum[seg+1] < target {
			seg++
		}
		segLen := cum[seg+1] - cum[seg]
		frac := 0.0
		if segLen > 0 {
			frac = (target - cum[seg]) / segLen
		}
		out[i] = geom.Segment{A: prefix[seg], B: prefix[seg+1]}.At(frac)
	}
	return out, nil
}

// Heading estimates the user's travel direction at timestamp t from the
// displacement over the last window steps. A stationary window returns 0.
func Heading(traj Trajectory, t, window int) float64 {
	if t <= 0 || len(traj) == 0 {
		return 0
	}
	if t >= len(traj) {
		t = len(traj) - 1
	}
	from := t - window
	if from < 0 {
		from = 0
	}
	v := traj[t].Sub(traj[from])
	if v.Norm() == 0 {
		return 0
	}
	return v.Angle()
}

// DeviationBound estimates θ, the maximum deviation of recent step
// directions from the current heading (the quantity the directed ordering
// learns from recent travel [26]). It returns at least minTheta to keep
// the cone usable when the user moves in a straight line.
func DeviationBound(traj Trajectory, t, window int, minTheta float64) float64 {
	h := Heading(traj, t, window)
	from := t - window
	if from < 1 {
		from = 1
	}
	if t >= len(traj) {
		t = len(traj) - 1
	}
	dev := 0.0
	for k := from; k <= t; k++ {
		step := traj[k].Sub(traj[k-1])
		if step.Norm() == 0 {
			continue
		}
		if d := geom.AngleDiff(step.Angle(), h); d > dev {
			dev = d
		}
	}
	if dev < minTheta {
		return minTheta
	}
	return dev
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
