package sim

import (
	"testing"

	"mpn/internal/core"
	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/mobility"
	"mpn/internal/workload"
)

// testWorkload builds a small but realistic POI set and trajectory group.
func testWorkload(t testing.TB, m int) ([]geom.Point, []mobility.Trajectory) {
	t.Helper()
	poiCfg := workload.DefaultPOIConfig()
	poiCfg.N = 2000
	pts, err := workload.GeneratePOIs(poiCfg)
	if err != nil {
		t.Fatal(err)
	}
	set, err := workload.GenerateGeoLifeSet(workload.SetConfig{
		NumTrajectories: m, Steps: 600, Speed: 0.0008, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pts, set.Trajs
}

func quickConfig(method Method) Config {
	cfg := MethodConfig(method, gnn.Max, 0)
	cfg.Core.TileLimit = 8
	cfg.MaxSteps = 400
	return cfg
}

func TestRunCircle(t *testing.T) {
	pts, group := testWorkload(t, 3)
	met, err := Run(pts, group, quickConfig(MethodCircle))
	if err != nil {
		t.Fatal(err)
	}
	if met.Timestamps != 400 {
		t.Fatalf("timestamps=%d", met.Timestamps)
	}
	if met.Updates < 2 {
		t.Fatalf("suspiciously few updates: %d", met.Updates)
	}
	if met.Packets == 0 || met.UplinkMessages == 0 || met.DownlinkMessages == 0 {
		t.Fatalf("empty accounting: %+v", met)
	}
	if met.UpdateFrequency() <= 0 || met.PacketsPerK() <= 0 {
		t.Fatal("derived metrics must be positive")
	}
}

func TestTileBeatsCircleOnUpdates(t *testing.T) {
	// The paper's headline: tile-based safe regions at least halve the
	// update frequency of circles (Fig. 13). With a small α the gap may
	// be narrower, but Tile must not lose.
	pts, group := testWorkload(t, 3)
	circ, err := Run(pts, group, quickConfig(MethodCircle))
	if err != nil {
		t.Fatal(err)
	}
	tile, err := Run(pts, group, quickConfig(MethodTile))
	if err != nil {
		t.Fatal(err)
	}
	if tile.Updates >= circ.Updates {
		t.Fatalf("Tile updates %d not below Circle %d", tile.Updates, circ.Updates)
	}
}

func TestTileDNotWorseThanTile(t *testing.T) {
	pts, group := testWorkload(t, 3)
	tile, err := Run(pts, group, quickConfig(MethodTile))
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := Run(pts, group, quickConfig(MethodTileD))
	if err != nil {
		t.Fatal(err)
	}
	// Directed ordering targets the travel cone; allow a modest slack
	// since small workloads are noisy.
	if float64(tiled.Updates) > 1.3*float64(tile.Updates) {
		t.Fatalf("Tile-D updates %d much worse than Tile %d", tiled.Updates, tile.Updates)
	}
}

func TestBufferedFasterThanUnbuffered(t *testing.T) {
	pts, group := testWorkload(t, 3)
	plain := quickConfig(MethodTileD)
	buffered := quickConfig(MethodTileD)
	buffered.Core.Buffer = 50

	pm, err := Run(pts, group, plain)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := Run(pts, group, buffered)
	if err != nil {
		t.Fatal(err)
	}
	// The buffered variant accesses the index once per update.
	if bm.PlanStats.IndexAccesses != bm.Updates {
		t.Fatalf("buffered index accesses %d != updates %d",
			bm.PlanStats.IndexAccesses, bm.Updates)
	}
	if pm.PlanStats.IndexAccesses <= pm.Updates {
		t.Fatalf("unbuffered should access the index repeatedly: %d accesses over %d updates",
			pm.PlanStats.IndexAccesses, pm.Updates)
	}
}

func TestRunSumAggregate(t *testing.T) {
	pts, group := testWorkload(t, 3)
	cfg := MethodConfig(MethodTile, gnn.Sum, 0)
	cfg.Core.TileLimit = 5
	cfg.MaxSteps = 200
	met, err := Run(pts, group, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if met.Updates < 1 {
		t.Fatal("no updates")
	}
}

func TestRunErrors(t *testing.T) {
	pts, group := testWorkload(t, 2)
	if _, err := Run(pts, nil, quickConfig(MethodCircle)); err != ErrNoGroup {
		t.Fatalf("want ErrNoGroup got %v", err)
	}
	short := []mobility.Trajectory{group[0][:1]}
	if _, err := Run(pts, short, quickConfig(MethodCircle)); err != ErrShortTraject {
		t.Fatalf("want ErrShortTraject got %v", err)
	}
	if _, err := Run(nil, group, quickConfig(MethodCircle)); err == nil {
		t.Fatal("empty POI set accepted")
	}
}

func TestPacketAccounting(t *testing.T) {
	pts, group := testWorkload(t, 3)
	met, err := Run(pts, group, quickConfig(MethodCircle))
	if err != nil {
		t.Fatal(err)
	}
	m := len(group)
	// Circle regions always fit one packet, so per non-initial update:
	// 1 report + 2(m−1) probe packets + m notifications. Initial update:
	// m reports + m notifications.
	perUpdate := 1 + 2*(m-1) + m
	wantPackets := m + m + (met.Updates-1)*perUpdate
	if met.Packets != wantPackets {
		t.Fatalf("packets=%d want %d (updates=%d)", met.Packets, wantPackets, met.Updates)
	}
	// Message counts match the protocol.
	wantUp := m + (met.Updates-1)*(1+(m-1))
	if met.UplinkMessages != wantUp {
		t.Fatalf("uplink=%d want %d", met.UplinkMessages, wantUp)
	}
}

func TestMethodString(t *testing.T) {
	if MethodCircle.String() != "Circle" || MethodTile.String() != "Tile" || MethodTileD.String() != "Tile-D" {
		t.Fatal("method names")
	}
}

func TestDescribe(t *testing.T) {
	cfg := MethodConfig(MethodTileD, gnn.Max, 100)
	if got := Describe(cfg); got != "Tile-D-b100" {
		t.Fatalf("Describe=%q", got)
	}
	cfg = MethodConfig(MethodCircle, gnn.Sum, 0)
	if got := Describe(cfg); got != "Circle (sum)" {
		t.Fatalf("Describe=%q", got)
	}
}

func TestDirectedFlagForcedByMethod(t *testing.T) {
	pts, group := testWorkload(t, 2)
	cfg := quickConfig(MethodTile)
	cfg.Core.Directed = true // must be overridden to false for plain Tile
	if _, err := Run(pts, group, cfg); err != nil {
		t.Fatal(err)
	}
	cfg = quickConfig(MethodTileD)
	cfg.Core.Directed = false // must be overridden to true for Tile-D
	if _, err := Run(pts, group, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsZeroDivision(t *testing.T) {
	var m Metrics
	if m.UpdateFrequency() != 0 || m.PacketsPerK() != 0 || m.CPUPerUpdate() != 0 {
		t.Fatal("zero metrics should not divide by zero")
	}
}

func TestRegionBytes(t *testing.T) {
	c := core.CircleRegion(geom.Pt(0.5, 0.5), 0.1)
	if got := regionBytes(c); got != 24 {
		t.Fatalf("circle bytes=%d want 24", got)
	}
}
