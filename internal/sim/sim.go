// Package sim drives the client-server architecture of Fig. 3: a server
// holding the POI R-tree, and a group of moving clients holding their
// current safe regions. It replays trajectories timestamp by timestamp,
// detects safe-region escapes, executes the three-message update protocol,
// and accounts update frequency, TCP packets, and server CPU time exactly
// as the paper's experiments do (Section 7.1, "Measures").
//
// Packet model: the maximum transmission unit is 576 bytes with a 40-byte
// header, so one packet carries (576−40)/8 = 67 double-precision values =
// 536 payload bytes. A circle costs three values; a tile region is shipped
// with the tileenc lossless compression, as the tile methods do in the
// paper [12]. With Config.DeltaWire the notification accounting follows
// the delta protocol of internal/proto instead: a member whose region
// epoch did not advance receives a DeltaNotifyBytes stub rather than a
// re-encoded region.
package sim

import (
	"errors"
	"fmt"
	"time"

	"mpn/internal/core"
	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/mobility"
	"mpn/internal/nbrcache"
	"mpn/internal/tileenc"
)

// PacketPayload is the usable bytes per TCP packet: 67 doubles.
const PacketPayload = 536

// Method selects the safe-region strategy under test.
type Method int

const (
	// MethodCircle is Circle-MSR (Section 4).
	MethodCircle Method = iota
	// MethodTile is Tile-MSR with the undirected ordering.
	MethodTile
	// MethodTileD is Tile-MSR with the directed ordering (Tile-D).
	MethodTileD
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodCircle:
		return "Circle"
	case MethodTile:
		return "Tile"
	default:
		return "Tile-D"
	}
}

// Config parameterizes one simulation run.
type Config struct {
	// Method is the safe-region strategy.
	Method Method
	// Core configures the planner (aggregate, α, L, buffer, pruning). The
	// Directed flag is forced to match Method.
	Core core.Options
	// HeadingWindow is the number of recent steps used to estimate each
	// user's heading and deviation bound for Tile-D. Zero means 20.
	HeadingWindow int
	// MinTheta floors the learned deviation bound. Zero means π/6.
	MinTheta float64
	// MaxSteps truncates the trajectories (0 = full length), letting the
	// harness trade fidelity for wall-clock time.
	MaxSteps int
	// Incremental routes every recomputation through the incremental
	// planners (TileMSRIncInto / CircleMSRIncInto), retaining the group's
	// plan state across updates — the maintenance protocol the paper's
	// independent safe regions propose. The default (false) keeps the
	// historical full-replan accounting, where every update regrows all
	// m regions from scratch.
	Incremental bool
	// SharedCache, when non-nil, serves GNN result-set retrievals from
	// the shared neighborhood cache (see internal/nbrcache). Plans are
	// unaffected; only the index-traversal cost changes.
	SharedCache *nbrcache.Cache
	// DeltaWire models the delta notification protocol on the wire
	// (TNotifyDelta, internal/proto): a member whose region epoch did
	// not advance since her last notification receives a small
	// region-less delta frame instead of a re-encoded region. Only
	// meaningful together with Incremental (without retained plan state
	// every region is fresh every update); plans and update counts are
	// unchanged — only the bytes/packets accounting moves.
	DeltaWire bool
}

// DeltaNotifyBytes is the modeled wire size of a region-less delta
// notification: length prefix, type, varint group/user/epoch, flags, and
// record count — ~10 bytes on the wire; 12 is the conservative model
// (matching the proto layer's worst case for small ids).
const DeltaNotifyBytes = 12

// Metrics aggregates one run's costs.
type Metrics struct {
	// Timestamps is the number of simulated ticks.
	Timestamps int
	// Updates counts server recomputations (including the initial
	// registration).
	Updates int
	// UplinkMessages counts client→server messages (location reports and
	// probe replies).
	UplinkMessages int
	// DownlinkMessages counts server→client messages (probe requests and
	// result notifications).
	DownlinkMessages int
	// Packets is the total TCP packet count across all messages.
	Packets int
	// ServerCPU is the cumulative safe-region computation time.
	ServerCPU time.Duration
	// RegionBytes is the total encoded safe-region payload shipped.
	RegionBytes int
	// PlanStats accumulates planner work counters.
	PlanStats core.Stats
	// FullReplans, PartialReplans and KeptPlans break Updates down by
	// incremental outcome. Without Config.Incremental every update is a
	// full replan.
	FullReplans    int
	PartialReplans int
	KeptPlans      int
	// FullNotifies and DeltaNotifies break the downlink result
	// notifications down by wire form: a full notify re-ships the
	// member's encoded region, a delta notify (Config.DeltaWire, epoch
	// unchanged) ships the DeltaNotifyBytes stub. Without DeltaWire
	// every notification is full.
	FullNotifies  int
	DeltaNotifies int
}

// UpdateFrequency returns updates per 1,000 timestamps, the paper's
// update-frequency measure.
func (m Metrics) UpdateFrequency() float64 {
	if m.Timestamps == 0 {
		return 0
	}
	return float64(m.Updates) * 1000 / float64(m.Timestamps)
}

// PacketsPerK returns packets per 1,000 timestamps (communication cost).
func (m Metrics) PacketsPerK() float64 {
	if m.Timestamps == 0 {
		return 0
	}
	return float64(m.Packets) * 1000 / float64(m.Timestamps)
}

// CPUPerUpdate returns the average safe-region computation time per
// update.
func (m Metrics) CPUPerUpdate() time.Duration {
	if m.Updates == 0 {
		return 0
	}
	return m.ServerCPU / time.Duration(m.Updates)
}

// Errors returned by Run.
var (
	ErrNoGroup      = errors.New("sim: empty user group")
	ErrShortTraject = errors.New("sim: trajectory too short")
)

// Run replays the group's trajectories against the POI set and returns the
// accumulated metrics. All trajectories are truncated to the shortest one
// (and to cfg.MaxSteps if set).
func Run(points []geom.Point, group []mobility.Trajectory, cfg Config) (Metrics, error) {
	if len(group) == 0 {
		return Metrics{}, ErrNoGroup
	}
	steps := len(group[0])
	for _, tr := range group {
		if len(tr) < steps {
			steps = len(tr)
		}
	}
	if cfg.MaxSteps > 0 && cfg.MaxSteps < steps {
		steps = cfg.MaxSteps
	}
	if steps < 2 {
		return Metrics{}, ErrShortTraject
	}
	if cfg.HeadingWindow <= 0 {
		cfg.HeadingWindow = 20
	}
	if cfg.MinTheta <= 0 {
		cfg.MinTheta = 0.5235987755982988 // π/6
	}
	cfg.Core.Directed = cfg.Method == MethodTileD

	planner, err := core.NewPlanner(points, cfg.Core)
	if err != nil {
		return Metrics{}, err
	}

	s := &session{
		planner: planner,
		group:   group,
		cfg:     cfg,
		m:       len(group),
		ws:      core.NewWorkspace(),
	}

	var met Metrics
	met.Timestamps = steps

	// Initial registration at t=0: every user reports in, the server
	// computes and distributes the first result.
	s.update(0, &met, true)

	for t := 1; t < steps; t++ {
		escaped := false
		for i, tr := range group {
			if !s.regions[i].Contains(tr[t]) {
				escaped = true
				break
			}
		}
		if escaped {
			s.update(t, &met, false)
		}
	}
	return met, nil
}

// session is the mutable server/client state of one run.
type session struct {
	planner *core.Planner
	group   []mobility.Trajectory
	cfg     Config
	m       int
	regions []core.SafeRegion

	// Incremental-protocol state: the retained plan and the reusable
	// workspace (the real server's workers hold one each; the simulated
	// server holds one per run). prevEpochs retains the epoch vector of
	// the last distributed plan for the DeltaWire accounting — the
	// simulated counterpart of the coordinator's per-client epoch
	// tracking.
	state      core.PlanState
	ws         *core.Workspace
	prevEpochs []uint64
}

// update executes the three-step protocol of Fig. 3 at timestamp t and
// refreshes the safe regions.
func (s *session) update(t int, met *Metrics, initial bool) {
	met.Updates++

	// Step 1: the escaping user reports her location (one uplink message,
	// 2 values). At registration every user reports.
	reporters := 1
	if initial {
		reporters = s.m
	}
	met.UplinkMessages += reporters
	met.Packets += reporters // 16 bytes each, one packet per message

	// Step 2: the server probes the other users (downlink requests) and
	// receives their locations (uplink replies).
	probed := s.m - reporters
	if probed > 0 {
		met.DownlinkMessages += probed
		met.UplinkMessages += probed
		met.Packets += 2 * probed
	}

	users := make([]geom.Point, s.m)
	for i, tr := range s.group {
		users[i] = tr[t]
	}

	// Step 3: recompute the meeting point and safe regions (timed — this
	// is the paper's "running time per update"). With Config.Incremental
	// the recomputation runs the paper's maintenance protocol: the
	// retained plan state is validated against the fresh locations and
	// only what the movement invalidated is regrown. Either way the
	// shared neighborhood cache, when configured, serves the result-set
	// retrieval (a nil cache degrades the *CachedInto entry points to the
	// plain ones).
	start := time.Now()
	var dirs []core.Direction
	if s.cfg.Method == MethodTileD {
		// Heading estimation stays inside the timed window: it is part of
		// the per-update server cost the figures have always charged to
		// Tile-D.
		dirs = make([]core.Direction, s.m)
		for i, tr := range s.group {
			dirs[i] = core.Direction{
				Angle: mobility.Heading(tr, t, s.cfg.HeadingWindow),
				Theta: mobility.DeviationBound(tr, t, s.cfg.HeadingWindow, s.cfg.MinTheta),
			}
		}
	}
	req := core.PlanRequest{Kind: core.KindTiles, Users: users, Dirs: dirs, Cache: s.cfg.SharedCache}
	if s.cfg.Method == MethodCircle {
		req.Kind = core.KindCircle
	}
	if s.cfg.Incremental {
		req.State = &s.state
	}
	plan, out, err := s.planner.Plan(s.ws, req)
	met.ServerCPU += time.Since(start)
	switch out {
	case core.IncKept:
		met.KeptPlans++
	case core.IncPartial:
		met.PartialReplans++
	default:
		met.FullReplans++
	}
	if err != nil {
		// Cannot happen with validated inputs; fall back to point regions
		// so the simulation can proceed.
		plan.Regions = make([]core.SafeRegion, s.m)
		for i, u := range users {
			plan.Regions[i] = core.TileRegion(geom.Rect{Min: u, Max: u})
		}
	}
	met.PlanStats.Add(plan.Stats)
	s.regions = plan.Regions

	// Notify every user: meeting point (2 values) + her safe region — or,
	// under the delta protocol, a region-less delta frame for every
	// member whose region epoch did not advance since the last
	// distribution (the epoch-tracked coordinator never re-encodes or
	// re-ships an unchanged region).
	epochs := s.state.Epochs()
	for i, r := range plan.Regions {
		unchanged := s.cfg.DeltaWire && s.cfg.Incremental && !initial &&
			i < len(s.prevEpochs) && i < len(epochs) && epochs[i] == s.prevEpochs[i]
		met.DownlinkMessages++
		if unchanged {
			met.DeltaNotifies++
			met.Packets += (DeltaNotifyBytes + PacketPayload - 1) / PacketPayload
			continue
		}
		met.FullNotifies++
		bytes := 16 + regionBytes(r)
		met.RegionBytes += regionBytes(r)
		met.Packets += (bytes + PacketPayload - 1) / PacketPayload
	}
	s.prevEpochs = append(s.prevEpochs[:0], epochs...)
}

// regionBytes is the encoded payload size of a safe region: three doubles
// for a circle, the tileenc compression for tile regions.
func regionBytes(r core.SafeRegion) int {
	if r.Kind == core.KindCircle {
		return 24
	}
	delta := 0.0
	for _, t := range r.Tiles {
		if w := t.Width(); w > delta {
			delta = w
		}
	}
	return len(tileenc.Encode(r.Tiles, delta))
}

// MethodConfig builds the Config for one of the paper's named
// configurations: Circle, Tile, Tile-D, and their buffered variants
// (buffer > 0 yields Tile-D-b when directed). agg selects MPN or Sum-MPN.
func MethodConfig(method Method, agg gnn.Aggregate, buffer int) Config {
	opts := core.DefaultOptions()
	opts.Aggregate = agg
	opts.Buffer = buffer
	return Config{Method: method, Core: opts}
}

// Describe names a configuration the way the paper's figures do.
func Describe(cfg Config) string {
	name := cfg.Method.String()
	if cfg.Method != MethodCircle && cfg.Core.Buffer > 0 {
		name = fmt.Sprintf("%s-b%d", name, cfg.Core.Buffer)
	}
	if cfg.Core.Aggregate == gnn.Sum {
		name += " (sum)"
	}
	return name
}
