package sim

import (
	"testing"
	"time"

	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/mobility"
	"mpn/internal/workload"
)

// oldenburgWorkload builds a network-constrained trajectory group.
func oldenburgWorkload(t testing.TB, m int) ([]geom.Point, []mobility.Trajectory) {
	t.Helper()
	poiCfg := workload.DefaultPOIConfig()
	poiCfg.N = 1500
	pts, err := workload.GeneratePOIs(poiCfg)
	if err != nil {
		t.Fatal(err)
	}
	set, err := workload.GenerateOldenburgSet(workload.SetConfig{
		NumTrajectories: m, Steps: 400, Speed: 0.001, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pts, set.Trajs
}

func TestRunOldenburgAllMethods(t *testing.T) {
	pts, group := oldenburgWorkload(t, 3)
	for _, method := range []Method{MethodCircle, MethodTile, MethodTileD} {
		cfg := MethodConfig(method, gnn.Max, 0)
		cfg.Core.TileLimit = 6
		met, err := Run(pts, group, cfg)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if met.Updates < 1 || met.Timestamps != 400 {
			t.Fatalf("%v: %+v", method, met)
		}
	}
}

func TestRunFullTrajectoryLength(t *testing.T) {
	pts, group := oldenburgWorkload(t, 2)
	cfg := MethodConfig(MethodCircle, gnn.Max, 0)
	cfg.MaxSteps = 0 // no truncation
	met, err := Run(pts, group, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if met.Timestamps != 400 {
		t.Fatalf("timestamps=%d want full 400", met.Timestamps)
	}
}

func TestCPUAccounting(t *testing.T) {
	pts, group := oldenburgWorkload(t, 2)
	cfg := MethodConfig(MethodTile, gnn.Max, 20)
	cfg.Core.TileLimit = 5
	cfg.MaxSteps = 150
	met, err := Run(pts, group, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if met.ServerCPU <= 0 {
		t.Fatal("no CPU recorded")
	}
	if met.CPUPerUpdate() <= 0 || met.CPUPerUpdate() > time.Second {
		t.Fatalf("implausible CPU per update: %v", met.CPUPerUpdate())
	}
	if met.RegionBytes <= 0 {
		t.Fatal("no region bytes recorded")
	}
}

func TestSumBufferedOldenburg(t *testing.T) {
	pts, group := oldenburgWorkload(t, 3)
	cfg := MethodConfig(MethodTileD, gnn.Sum, 30)
	cfg.Core.TileLimit = 5
	cfg.MaxSteps = 150
	met, err := Run(pts, group, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if met.PlanStats.IndexAccesses != met.Updates {
		t.Fatalf("buffered sum run: %d index accesses for %d updates",
			met.PlanStats.IndexAccesses, met.Updates)
	}
}

// Update frequency must be monotone-ish in speed on the same trajectories:
// the resampled half-speed set cannot trigger more updates than full speed
// by a large margin.
func TestSpeedMonotonicity(t *testing.T) {
	poiCfg := workload.DefaultPOIConfig()
	poiCfg.N = 1500
	pts, err := workload.GeneratePOIs(poiCfg)
	if err != nil {
		t.Fatal(err)
	}
	set, err := workload.GenerateGeoLifeSet(workload.SetConfig{
		NumTrajectories: 3, Steps: 800, Speed: 0.001, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	slowSet, err := set.ResampleSpeed(0.25)
	if err != nil {
		t.Fatal(err)
	}
	cfg := MethodConfig(MethodCircle, gnn.Max, 0)
	fast, err := Run(pts, set.Trajs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(pts, slowSet.Trajs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if float64(slow.Updates) > 0.9*float64(fast.Updates) {
		t.Fatalf("quarter speed (%d updates) not clearly below full speed (%d)",
			slow.Updates, fast.Updates)
	}
}
