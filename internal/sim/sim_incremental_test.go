package sim

import (
	"testing"

	"mpn/internal/gnn"
	"mpn/internal/nbrcache"
)

// TestRunIncrementalProtocol replays one workload under the incremental
// maintenance protocol and checks the outcome accounting: every update
// is classified, the non-incremental run classifies everything as a
// full replan, and the incremental run actually reuses plans (partial
// or kept outcomes appear — the protocol the paper proposes).
func TestRunIncrementalProtocol(t *testing.T) {
	pois, group := testWorkload(t, 3)

	base := MethodConfig(MethodTile, gnn.Max, 0)
	base.Core.TileLimit = 8
	base.MaxSteps = 400

	full, err := Run(pois, group, base)
	if err != nil {
		t.Fatal(err)
	}
	if full.FullReplans != full.Updates || full.PartialReplans != 0 || full.KeptPlans != 0 {
		t.Fatalf("non-incremental outcome mix %d/%d/%d over %d updates",
			full.FullReplans, full.PartialReplans, full.KeptPlans, full.Updates)
	}

	inc := base
	inc.Incremental = true
	incMet, err := Run(pois, group, inc)
	if err != nil {
		t.Fatal(err)
	}
	if got := incMet.FullReplans + incMet.PartialReplans + incMet.KeptPlans; got != incMet.Updates {
		t.Fatalf("incremental outcomes %d do not sum to updates %d", got, incMet.Updates)
	}
	if incMet.PartialReplans+incMet.KeptPlans == 0 {
		t.Fatalf("incremental run never reused a plan: %d full / %d partial / %d kept",
			incMet.FullReplans, incMet.PartialReplans, incMet.KeptPlans)
	}
}

// TestRunCacheInvariance: the shared neighborhood cache changes only
// where the result sets come from, never what they are — update
// frequency, packets, and region bytes must match the uncached run
// exactly, incremental or not.
func TestRunCacheInvariance(t *testing.T) {
	pois, group := testWorkload(t, 3)
	for _, incremental := range []bool{false, true} {
		cfg := MethodConfig(MethodTile, gnn.Max, 0)
		cfg.Core.TileLimit = 8
		cfg.MaxSteps = 300
		cfg.Incremental = incremental

		plain, err := Run(pois, group, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.SharedCache = nbrcache.New(nbrcache.Config{})
		cached, err := Run(pois, group, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if cached.Updates != plain.Updates || cached.Packets != plain.Packets ||
			cached.RegionBytes != plain.RegionBytes ||
			cached.FullReplans != plain.FullReplans ||
			cached.PartialReplans != plain.PartialReplans ||
			cached.KeptPlans != plain.KeptPlans {
			t.Fatalf("incremental=%v: cached run diverged: %+v vs %+v", incremental, cached, plain)
		}
	}
}

// TestRunDeltaWireAccounting: the delta wire protocol changes only the
// bytes/packets accounting, never the protocol itself — updates,
// outcome mix, and messages match the full-wire run exactly, while
// unchanged regions stop shipping bytes (DeltaNotifies > 0, region
// bytes and packets strictly shrink on a kept/partial-heavy workload).
func TestRunDeltaWireAccounting(t *testing.T) {
	pois, group := testWorkload(t, 3)
	cfg := MethodConfig(MethodTile, gnn.Max, 0)
	cfg.Core.TileLimit = 8
	cfg.MaxSteps = 400
	cfg.Incremental = true

	full, err := Run(pois, group, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.DeltaNotifies != 0 || full.FullNotifies != full.Updates*len(group) {
		t.Fatalf("full-wire notify mix: %d full / %d delta over %d updates",
			full.FullNotifies, full.DeltaNotifies, full.Updates)
	}

	cfg.DeltaWire = true
	delta, err := Run(pois, group, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Updates != full.Updates || delta.KeptPlans != full.KeptPlans ||
		delta.PartialReplans != full.PartialReplans || delta.FullReplans != full.FullReplans ||
		delta.UplinkMessages != full.UplinkMessages || delta.DownlinkMessages != full.DownlinkMessages {
		t.Fatalf("delta wire changed the protocol:\n full  %+v\n delta %+v", full, delta)
	}
	if delta.PartialReplans+delta.KeptPlans == 0 {
		t.Skip("workload produced no reuse; nothing for deltas to save")
	}
	if delta.DeltaNotifies == 0 {
		t.Fatal("delta wire run shipped no delta notifications")
	}
	if delta.FullNotifies+delta.DeltaNotifies != full.FullNotifies {
		t.Fatalf("notify totals diverge: %d+%d vs %d",
			delta.FullNotifies, delta.DeltaNotifies, full.FullNotifies)
	}
	if delta.RegionBytes >= full.RegionBytes {
		t.Fatalf("delta wire did not shrink region bytes: %d vs %d", delta.RegionBytes, full.RegionBytes)
	}
	if delta.Packets > full.Packets {
		t.Fatalf("delta wire inflated packets: %d vs %d", delta.Packets, full.Packets)
	}
}
