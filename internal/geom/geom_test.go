package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-1, -1), Pt(2, 3), 5},
		{Pt(0, 0), Pt(0, 2), 2},
	}
	for _, tc := range tests {
		if got := tc.p.Dist(tc.q); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("Dist(%v,%v)=%v want %v", tc.p, tc.q, got, tc.want)
		}
		if got := tc.p.Dist2(tc.q); !almostEq(got, tc.want*tc.want, 1e-12) {
			t.Errorf("Dist2(%v,%v)=%v want %v", tc.p, tc.q, got, tc.want*tc.want)
		}
	}
}

func TestPointVectorOps(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add=%v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub=%v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale=%v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot=%v", got)
	}
	if got := Pt(0, 3).Norm(); got != 3 {
		t.Errorf("Norm=%v", got)
	}
	if got := Pt(1, 0).Angle(); got != 0 {
		t.Errorf("Angle=%v", got)
	}
	if got := Pt(0, 1).Angle(); !almostEq(got, math.Pi/2, 1e-12) {
		t.Errorf("Angle=%v", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(2, 4)}
	if r.Width() != 2 || r.Height() != 4 || r.Area() != 8 {
		t.Fatalf("dims wrong: %v %v %v", r.Width(), r.Height(), r.Area())
	}
	if r.Center() != Pt(1, 2) {
		t.Fatalf("center=%v", r.Center())
	}
	if !r.Contains(Pt(1, 1)) || !r.Contains(Pt(0, 0)) || !r.Contains(Pt(2, 4)) {
		t.Fatal("Contains should include interior and boundary")
	}
	if r.Contains(Pt(2.001, 1)) {
		t.Fatal("Contains outside point")
	}
	if !r.IsValid() {
		t.Fatal("valid rect reported invalid")
	}
	if (Rect{Min: Pt(1, 0), Max: Pt(0, 1)}).IsValid() {
		t.Fatal("invalid rect reported valid")
	}
}

func TestRectFromPoints(t *testing.T) {
	r := RectFromPoints(Pt(3, 1), Pt(0, 5))
	want := Rect{Min: Pt(0, 1), Max: Pt(3, 5)}
	if r != want {
		t.Fatalf("got %v want %v", r, want)
	}
}

func TestRectAround(t *testing.T) {
	r := RectAround(Pt(1, 1), 2)
	want := Rect{Min: Pt(0, 0), Max: Pt(2, 2)}
	if r != want {
		t.Fatalf("got %v want %v", r, want)
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{Min: Pt(0, 0), Max: Pt(2, 2)}
	b := Rect{Min: Pt(1, 1), Max: Pt(3, 3)}
	c := Rect{Min: Pt(5, 5), Max: Pt(6, 6)}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("a,b should intersect")
	}
	if a.Intersects(c) {
		t.Fatal("a,c should not intersect")
	}
	got := a.Intersect(b)
	if got != (Rect{Min: Pt(1, 1), Max: Pt(2, 2)}) {
		t.Fatalf("Intersect=%v", got)
	}
	if a.Intersect(c).IsValid() {
		t.Fatal("disjoint intersection should be invalid")
	}
	// Touching edge counts as intersecting.
	d := Rect{Min: Pt(2, 0), Max: Pt(3, 2)}
	if !a.Intersects(d) {
		t.Fatal("touching rects should intersect")
	}
}

func TestRectUnion(t *testing.T) {
	a := Rect{Min: Pt(0, 0), Max: Pt(1, 1)}
	b := Rect{Min: Pt(2, -1), Max: Pt(3, 0.5)}
	got := a.Union(b)
	want := Rect{Min: Pt(0, -1), Max: Pt(3, 1)}
	if got != want {
		t.Fatalf("Union=%v want %v", got, want)
	}
	got = a.UnionPoint(Pt(-1, 5))
	want = Rect{Min: Pt(-1, 0), Max: Pt(1, 5)}
	if got != want {
		t.Fatalf("UnionPoint=%v want %v", got, want)
	}
}

func TestMinMaxDist(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(2, 2)}
	tests := []struct {
		p        Point
		min, max float64
	}{
		{Pt(1, 1), 0, math.Sqrt2},                // inside: min 0, max to corner
		{Pt(3, 1), 1, math.Hypot(3, 1)},          // right of rect
		{Pt(-1, -1), math.Sqrt2, 3 * math.Sqrt2}, // diagonal
		{Pt(1, 5), 3, math.Hypot(1, 5)},          // above
	}
	for _, tc := range tests {
		if got := r.MinDist(tc.p); !almostEq(got, tc.min, 1e-12) {
			t.Errorf("MinDist(%v)=%v want %v", tc.p, got, tc.min)
		}
		if got := r.MaxDist(tc.p); !almostEq(got, tc.max, 1e-12) {
			t.Errorf("MaxDist(%v)=%v want %v", tc.p, got, tc.max)
		}
	}
}

// Property: MinDist and MaxDist bracket the distance to any point of the
// rectangle, and are attained by some point of the rectangle.
func TestMinMaxDistProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		r := RectFromPoints(
			Pt(rng.Float64()*10-5, rng.Float64()*10-5),
			Pt(rng.Float64()*10-5, rng.Float64()*10-5),
		)
		p := Pt(rng.Float64()*20-10, rng.Float64()*20-10)
		lo, hi := r.MinDist(p), r.MaxDist(p)
		if lo > hi {
			t.Fatalf("MinDist %v > MaxDist %v", lo, hi)
		}
		// Sample interior points; all must fall within [lo, hi].
		for j := 0; j < 20; j++ {
			q := Pt(
				r.Min.X+rng.Float64()*r.Width(),
				r.Min.Y+rng.Float64()*r.Height(),
			)
			d := p.Dist(q)
			if d < lo-1e-9 || d > hi+1e-9 {
				t.Fatalf("sample dist %v outside [%v,%v]", d, lo, hi)
			}
		}
		// MinDist is attained at the closest point.
		if got := p.Dist(r.ClosestPoint(p)); !almostEq(got, lo, 1e-9) {
			t.Fatalf("ClosestPoint dist %v != MinDist %v", got, lo)
		}
		// MaxDist is attained at one of the corners.
		attained := false
		for _, c := range r.Corners() {
			if almostEq(p.Dist(c), hi, 1e-9) {
				attained = true
			}
		}
		if !attained {
			t.Fatalf("MaxDist %v not attained at any corner", hi)
		}
	}
}

func TestMinDist2Consistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		r := RectFromPoints(
			Pt(rng.Float64(), rng.Float64()),
			Pt(rng.Float64(), rng.Float64()),
		)
		p := Pt(rng.Float64()*3-1, rng.Float64()*3-1)
		if !almostEq(r.MinDist(p)*r.MinDist(p), r.MinDist2(p), 1e-9) {
			t.Fatal("MinDist2 inconsistent with MinDist")
		}
		if !almostEq(r.MaxDist(p)*r.MaxDist(p), r.MaxDist2(p), 1e-9) {
			t.Fatal("MaxDist2 inconsistent with MaxDist")
		}
	}
}

func TestQuadrants(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(4, 4)}
	qs := r.Quadrants()
	var area float64
	for _, q := range qs {
		if !q.IsValid() {
			t.Fatalf("invalid quadrant %v", q)
		}
		if !r.ContainsRect(q) {
			t.Fatalf("quadrant %v escapes parent", q)
		}
		area += q.Area()
	}
	if !almostEq(area, r.Area(), 1e-12) {
		t.Fatalf("quadrant areas sum to %v want %v", area, r.Area())
	}
}

func TestCircle(t *testing.T) {
	c := Circle{C: Pt(0, 0), R: 2}
	if !c.Contains(Pt(1, 1)) || !c.Contains(Pt(2, 0)) {
		t.Fatal("Contains")
	}
	if c.Contains(Pt(2.1, 0)) {
		t.Fatal("Contains outside")
	}
	if got := c.MinDist(Pt(5, 0)); !almostEq(got, 3, 1e-12) {
		t.Fatalf("MinDist=%v", got)
	}
	if got := c.MinDist(Pt(1, 0)); got != 0 {
		t.Fatalf("MinDist inside=%v", got)
	}
	if got := c.MaxDist(Pt(5, 0)); !almostEq(got, 7, 1e-12) {
		t.Fatalf("MaxDist=%v", got)
	}
	br := c.BoundingRect()
	if br != (Rect{Min: Pt(-2, -2), Max: Pt(2, 2)}) {
		t.Fatalf("BoundingRect=%v", br)
	}
}

func TestInscribedSquare(t *testing.T) {
	c := Circle{C: Pt(1, 1), R: 1}
	sq := c.InscribedSquare()
	if !almostEq(sq.Width(), math.Sqrt2, 1e-12) {
		t.Fatalf("side=%v want √2", sq.Width())
	}
	// All corners lie on the circle.
	for _, corner := range sq.Corners() {
		if !almostEq(c.C.Dist(corner), c.R, 1e-12) {
			t.Fatalf("corner %v not on circle", corner)
		}
	}
}

func TestSegmentIntersectLine(t *testing.T) {
	s := Segment{A: Pt(0, -1), B: Pt(0, 1)}
	// Line y=0 crosses at origin.
	got := s.IntersectLine(Pt(-1, 0), Pt(1, 0))
	if len(got) != 1 || !almostEq(got[0].X, 0, 1e-12) || !almostEq(got[0].Y, 0, 1e-12) {
		t.Fatalf("got %v", got)
	}
	// Parallel non-collinear: no intersection.
	if got := s.IntersectLine(Pt(1, 0), Pt(1, 1)); got != nil {
		t.Fatalf("parallel: got %v", got)
	}
	// Collinear: endpoints returned.
	if got := s.IntersectLine(Pt(0, 5), Pt(0, 6)); len(got) != 2 {
		t.Fatalf("collinear: got %v", got)
	}
	// Line crossing beyond segment extent: none.
	if got := s.IntersectLine(Pt(-1, 5), Pt(1, 5)); got != nil {
		t.Fatalf("beyond: got %v", got)
	}
}

func TestAngleHelpers(t *testing.T) {
	if got := NormalizeAngle(3 * math.Pi); !almostEq(got, math.Pi, 1e-12) {
		t.Fatalf("NormalizeAngle=%v", got)
	}
	if got := NormalizeAngle(-3 * math.Pi); !almostEq(got, math.Pi, 1e-12) {
		t.Fatalf("NormalizeAngle=%v", got)
	}
	if got := AngleDiff(0.1, -0.1); !almostEq(got, 0.2, 1e-12) {
		t.Fatalf("AngleDiff=%v", got)
	}
	if got := AngleDiff(math.Pi-0.05, -math.Pi+0.05); !almostEq(got, 0.1, 1e-12) {
		t.Fatalf("AngleDiff wraparound=%v", got)
	}
}

// Property: FocalDiffMin is a true lower bound over dense sampling, and is
// attained (within tolerance) by some sample.
func TestFocalDiffMinProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 1000; i++ {
		tile := RectAround(Pt(rng.Float64()*4-2, rng.Float64()*4-2), rng.Float64()+0.1)
		pp := Pt(rng.Float64()*8-4, rng.Float64()*8-4)
		po := Pt(rng.Float64()*8-4, rng.Float64()*8-4)
		got := FocalDiffMin(tile, pp, po)

		sampleMin := math.Inf(1)
		const grid = 24
		for a := 0; a <= grid; a++ {
			for b := 0; b <= grid; b++ {
				l := Pt(
					tile.Min.X+float64(a)/grid*tile.Width(),
					tile.Min.Y+float64(b)/grid*tile.Height(),
				)
				v := pp.Dist(l) - po.Dist(l)
				if v < sampleMin {
					sampleMin = v
				}
			}
		}
		if got > sampleMin+1e-9 {
			t.Fatalf("FocalDiffMin=%v exceeds sampled min %v (tile=%v pp=%v po=%v)",
				got, sampleMin, tile, pp, po)
		}
		// The analytic min should be close to the sampled min (sampling is
		// a grid so allow discretization slack proportional to tile size).
		slack := 2 * tile.Width() / grid
		if sampleMin-got > slack {
			t.Fatalf("FocalDiffMin=%v too far below sampled min %v", got, sampleMin)
		}
	}
}

func TestFocalDiffMax(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 300; i++ {
		tile := RectAround(Pt(rng.Float64()*2, rng.Float64()*2), rng.Float64()+0.1)
		pp := Pt(rng.Float64()*4-2, rng.Float64()*4-2)
		po := Pt(rng.Float64()*4-2, rng.Float64()*4-2)
		maxv := FocalDiffMax(tile, pp, po)
		minv := FocalDiffMin(tile, pp, po)
		if maxv < minv-1e-12 {
			t.Fatalf("max %v < min %v", maxv, minv)
		}
		for j := 0; j < 50; j++ {
			l := Pt(
				tile.Min.X+rng.Float64()*tile.Width(),
				tile.Min.Y+rng.Float64()*tile.Height(),
			)
			v := pp.Dist(l) - po.Dist(l)
			if v > maxv+1e-9 {
				t.Fatalf("sample %v exceeds FocalDiffMax %v", v, maxv)
			}
		}
	}
}

// FocalDiff values are bounded by ±‖p′,p°‖ (triangle inequality).
func TestFocalDiffTriangleBound(t *testing.T) {
	f := func(cx, cy, side, px, py, ox, oy float64) bool {
		side = math.Mod(math.Abs(side), 3) + 0.01
		tile := RectAround(Pt(math.Mod(cx, 5), math.Mod(cy, 5)), side)
		pp, po := Pt(math.Mod(px, 5), math.Mod(py, 5)), Pt(math.Mod(ox, 5), math.Mod(oy, 5))
		d := pp.Dist(po)
		v := FocalDiffMin(tile, pp, po)
		return v >= -d-1e-9 && v <= d+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
