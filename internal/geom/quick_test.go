package geom

import (
	"math"
	"testing"
	"testing/quick"
)

// bounded maps arbitrary floats into a sane coordinate range so the
// properties are numerically meaningful.
func bounded(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 100)
}

func TestQuickUnionContains(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		r := RectFromPoints(Pt(bounded(ax), bounded(ay)), Pt(bounded(bx), bounded(by)))
		s := RectFromPoints(Pt(bounded(cx), bounded(cy)), Pt(bounded(dx), bounded(dy)))
		u := r.Union(s)
		return u.ContainsRect(r) && u.ContainsRect(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		r := RectFromPoints(Pt(bounded(ax), bounded(ay)), Pt(bounded(bx), bounded(by)))
		s := RectFromPoints(Pt(bounded(cx), bounded(cy)), Pt(bounded(dx), bounded(dy)))
		if r.Intersects(s) != s.Intersects(r) {
			return false
		}
		i1, i2 := r.Intersect(s), s.Intersect(r)
		return i1 == i2 && (i1.IsValid() == r.Intersects(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Pt(bounded(ax), bounded(ay))
		b := Pt(bounded(bx), bounded(by))
		c := Pt(bounded(cx), bounded(cy))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMinMaxDistVsCenter(t *testing.T) {
	f := func(ax, ay, bx, by, px, py float64) bool {
		r := RectFromPoints(Pt(bounded(ax), bounded(ay)), Pt(bounded(bx), bounded(by)))
		p := Pt(bounded(px), bounded(py))
		dc := p.Dist(r.Center())
		return r.MinDist(p) <= dc+1e-9 && dc <= r.MaxDist(p)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNormalizeAngleRange(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		a = math.Mod(a, 50) // bound the unwinding loop
		n := NormalizeAngle(a)
		if n <= -math.Pi || n > math.Pi {
			return false
		}
		// Equivalent modulo 2π.
		diff := math.Mod(a-n, 2*math.Pi)
		return math.Abs(diff) < 1e-6 || math.Abs(math.Abs(diff)-2*math.Pi) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickQuadrantsPartition(t *testing.T) {
	f := func(cx, cy, side, px, py float64) bool {
		side = math.Abs(bounded(side)) + 0.001
		r := RectAround(Pt(bounded(cx), bounded(cy)), side)
		p := Pt(
			r.Min.X+math.Abs(math.Mod(bounded(px), 1))*r.Width(),
			r.Min.Y+math.Abs(math.Mod(bounded(py), 1))*r.Height(),
		)
		// Any point of r lies in at least one quadrant.
		for _, q := range r.Quadrants() {
			if q.Contains(p) {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
