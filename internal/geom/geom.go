// Package geom provides the 2-D geometry kernel used throughout the MPN
// library: points, rectangles (axis-aligned), circles, and the min/max
// distance primitives of Definition 1 in the paper, plus the hyperbola-based
// minimization of ‖p′,l‖−‖p°,l‖ over a square tile required by the
// Sum-MPN verification (Section 6.3.1, Fig. 12).
//
// All coordinates are float64 in an arbitrary planar coordinate system; the
// experiment harness uses the unit square [0,1]².
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane. It doubles as a user location and a
// point of interest, matching the paper's convention of denoting both a
// user and her location by the same symbol.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance ‖p,q‖.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance. It avoids the square root
// for comparison-only code paths (index traversal, nearest-neighbor heaps).
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by the vector q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector p−q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k about the origin.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Angle returns the direction of the vector p in radians, in (−π, π].
func (p Point) Angle() float64 { return math.Atan2(p.Y, p.X) }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle given by its lower-left and upper-right
// corners. A Rect with Min==Max is a degenerate point rectangle, which is a
// valid region. Tiles (square regions of Section 5) are represented as
// Rects whose side lengths are equal.
type Rect struct {
	Min, Max Point
}

// RectFromPoints returns the smallest Rect containing both p and q.
func RectFromPoints(p, q Point) Rect {
	return Rect{
		Min: Point{math.Min(p.X, q.X), math.Min(p.Y, q.Y)},
		Max: Point{math.Max(p.X, q.X), math.Max(p.Y, q.Y)},
	}
}

// RectAround returns the axis-aligned square of side length side centered
// at c. This is the tile constructor ☐(c, δ) from Algorithm 3.
func RectAround(c Point, side float64) Rect {
	h := side / 2
	return Rect{Min: Point{c.X - h, c.Y - h}, Max: Point{c.X + h, c.Y + h}}
}

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Width returns the extent along the x axis.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the extent along the y axis.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// IsValid reports whether Min ≤ Max on both axes.
func (r Rect) IsValid() bool {
	return r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return r.Contains(s.Min) && r.Contains(s.Max)
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Union returns the smallest Rect containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// UnionPoint returns the smallest Rect containing r and p.
func (r Rect) UnionPoint(p Point) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, p.X), math.Min(r.Min.Y, p.Y)},
		Max: Point{math.Max(r.Max.X, p.X), math.Max(r.Max.Y, p.Y)},
	}
}

// Intersect returns the intersection of r and s. If they do not intersect,
// the returned Rect is invalid (IsValid reports false).
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
}

// Corners returns the four corner points of r in counter-clockwise order
// starting at Min.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// ClosestPoint returns the point of r closest to p (p itself if inside).
func (r Rect) ClosestPoint(p Point) Point {
	return Point{clamp(p.X, r.Min.X, r.Max.X), clamp(p.Y, r.Min.Y, r.Max.Y)}
}

// MinDist returns ‖p,r‖min, the minimum distance from p to any point of r
// (Definition 1, Eq. 1). Zero when p lies inside r.
func (r Rect) MinDist(p Point) float64 {
	dx := axisDist(p.X, r.Min.X, r.Max.X)
	dy := axisDist(p.Y, r.Min.Y, r.Max.Y)
	return math.Hypot(dx, dy)
}

// MinDist2 returns the squared minimum distance from p to r.
func (r Rect) MinDist2(p Point) float64 {
	dx := axisDist(p.X, r.Min.X, r.Max.X)
	dy := axisDist(p.Y, r.Min.Y, r.Max.Y)
	return dx*dx + dy*dy
}

// MaxDist returns ‖p,r‖max, the maximum distance from p to any point of r
// (Definition 1, Eq. 2). The maximum is attained at one of the corners.
func (r Rect) MaxDist(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.Min.X), math.Abs(p.X-r.Max.X))
	dy := math.Max(math.Abs(p.Y-r.Min.Y), math.Abs(p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// MaxDist2 returns the squared maximum distance from p to r.
func (r Rect) MaxDist2(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.Min.X), math.Abs(p.X-r.Max.X))
	dy := math.Max(math.Abs(p.Y-r.Min.Y), math.Abs(p.Y-r.Max.Y))
	return dx*dx + dy*dy
}

// Quadrants splits r into its four equal quadrant sub-rectangles. It is the
// "divide s into four sub-tiles" step of Divide-Verify (Algorithm 2).
func (r Rect) Quadrants() [4]Rect {
	c := r.Center()
	return [4]Rect{
		{Min: r.Min, Max: c},
		{Min: Point{c.X, r.Min.Y}, Max: Point{r.Max.X, c.Y}},
		{Min: c, Max: r.Max},
		{Min: Point{r.Min.X, c.Y}, Max: Point{c.X, r.Max.Y}},
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%v - %v]", r.Min, r.Max)
}

// axisDist is the 1-D distance from v to the interval [lo, hi]; zero when
// v falls inside the interval.
func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Circle is a disk with center C and radius R. Circular safe regions
// (Section 4) are values of this type.
type Circle struct {
	C Point
	R float64
}

// Contains reports whether p lies in the closed disk.
func (c Circle) Contains(p Point) bool {
	return c.C.Dist2(p) <= c.R*c.R
}

// MinDist returns the minimum distance from p to the disk: ‖p,c‖−R,
// clamped at zero when p is inside.
func (c Circle) MinDist(p Point) float64 {
	d := c.C.Dist(p) - c.R
	if d < 0 {
		return 0
	}
	return d
}

// MaxDist returns the maximum distance from p to the disk: ‖p,c‖+R.
func (c Circle) MaxDist(p Point) float64 {
	return c.C.Dist(p) + c.R
}

// BoundingRect returns the tight axis-aligned bounding rectangle.
func (c Circle) BoundingRect() Rect {
	return Rect{
		Min: Point{c.C.X - c.R, c.C.Y - c.R},
		Max: Point{c.C.X + c.R, c.C.Y + c.R},
	}
}

// InscribedSquare returns the maximal axis-aligned square inscribed in the
// circle; its side length is √2·R. Tile-MSR uses it to seed each user's
// tile region (Algorithm 3, lines 1–4).
func (c Circle) InscribedSquare() Rect {
	return RectAround(c.C, math.Sqrt2*c.R)
}

// String implements fmt.Stringer.
func (c Circle) String() string {
	return fmt.Sprintf("circle(%v, r=%.6g)", c.C, c.R)
}

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Point
}

// Len returns the segment's length.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// At returns the point A + t·(B−A) for t ∈ [0,1].
func (s Segment) At(t float64) Point {
	return Point{s.A.X + t*(s.B.X-s.A.X), s.A.Y + t*(s.B.Y-s.A.Y)}
}

// IntersectLine returns the intersection points (0, 1 or 2 of them, but for
// a segment against an infinite line at most 1 unless collinear) between the
// segment and the infinite line through p and q. Collinear overlap returns
// the segment endpoints.
func (s Segment) IntersectLine(p, q Point) []Point {
	d := q.Sub(p)     // line direction
	e := s.B.Sub(s.A) // segment direction
	denom := d.X*e.Y - d.Y*e.X
	w := s.A.Sub(p)
	if math.Abs(denom) < 1e-18 {
		// Parallel. Collinear if w is parallel to d as well.
		if math.Abs(d.X*w.Y-d.Y*w.X) < 1e-12 {
			return []Point{s.A, s.B}
		}
		return nil
	}
	t := (d.Y*w.X - d.X*w.Y) / denom // parameter along the segment
	if t < 0 || t > 1 {
		return nil
	}
	return []Point{s.At(t)}
}

// NormalizeAngle maps an angle to (−π, π].
func NormalizeAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// AngleDiff returns the absolute angular difference between a and b in
// [0, π]. It is used by the directed tile ordering to test whether a tile's
// subtended angle deviates from the user's heading by more than θ.
func AngleDiff(a, b float64) float64 {
	d := math.Abs(NormalizeAngle(a - b))
	return d
}
