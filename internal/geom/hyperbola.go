package geom

import "math"

// This file implements the focal-difference minimization of Section 6.3.1.
//
// For the Sum-MPN verification (Algorithm 6) we need, for a candidate point
// p′ and the current optimum p°, the minimum over all locations l in a
// square tile s of the difference  f(l) = ‖p′,l‖ − ‖p°,l‖.
//
// The level sets f(l) = r are confocal hyperbola branches with foci p′ and
// p° (Fig. 12). The gradient of f vanishes only on the two axis rays beyond
// the foci, where f is constant at ±‖p′,p°‖ — its global extremes — so any
// interior minimum over the tile is also attained on the tile boundary
// (the ray enters the tile through an edge). It therefore suffices to
// minimize f exactly along each of the four edges. Along an edge, f is
// smooth with at most a handful of critical points (tangencies to confocal
// branches plus the axis crossing); we locate them by a sign-change scan of
// df/dt followed by bisection, which yields the edge minimum to near
// machine precision.

// FocalDiffMin returns min over l ∈ tile of ‖pPrime,l‖ − ‖pOpt,l‖.
func FocalDiffMin(tile Rect, pPrime, pOpt Point) float64 {
	if pPrime == pOpt {
		return 0
	}
	c := tile.Corners()
	best := math.Inf(1)
	for i := 0; i < 4; i++ {
		v := edgeFocalDiffMin(c[i], c[(i+1)%4], pPrime, pOpt)
		if v < best {
			best = v
		}
	}
	return best
}

// FocalDiffMax returns max over l ∈ tile of ‖pPrime,l‖ − ‖pOpt,l‖. By
// symmetry, max f = −min(−f) = −min(‖pOpt,l‖ − ‖pPrime,l‖).
func FocalDiffMax(tile Rect, pPrime, pOpt Point) float64 {
	return -FocalDiffMin(tile, pOpt, pPrime)
}

// edgeFocalDiffMin minimizes f(l)=‖pp,l‖−‖po,l‖ along the segment a→b.
func edgeFocalDiffMin(a, b, pp, po Point) float64 {
	e := b.Sub(a)
	f := func(t float64) float64 {
		l := Point{a.X + t*e.X, a.Y + t*e.Y}
		return pp.Dist(l) - po.Dist(l)
	}
	// df/dt; at a focus the derivative is undefined — return NaN and let
	// the scan skip that sample (foci are also global extremes of ±d which
	// neighboring samples approach continuously).
	g := func(t float64) float64 {
		l := Point{a.X + t*e.X, a.Y + t*e.Y}
		d1, d2 := pp.Dist(l), po.Dist(l)
		if d1 == 0 || d2 == 0 {
			return math.NaN()
		}
		return (l.Sub(pp).Dot(e))/d1 - (l.Sub(po).Dot(e))/d2
	}

	best := math.Min(f(0), f(1))

	const steps = 32
	prevT := 0.0
	prevG := g(0)
	for i := 1; i <= steps; i++ {
		t := float64(i) / steps
		gi := g(t)
		if math.IsNaN(gi) {
			// Sample sits exactly on a focus: evaluate and move on.
			if v := f(t); v < best {
				best = v
			}
			prevT, prevG = t, gi
			continue
		}
		if !math.IsNaN(prevG) && (prevG == 0 || prevG*gi < 0) {
			// Bracketed a critical point: bisect.
			lo, hi, glo := prevT, t, prevG
			for iter := 0; iter < 60; iter++ {
				mid := (lo + hi) / 2
				gm := g(mid)
				if math.IsNaN(gm) || gm == 0 {
					lo, hi = mid, mid
					break
				}
				if glo*gm < 0 {
					hi = mid
				} else {
					lo, glo = mid, gm
				}
			}
			if v := f((lo + hi) / 2); v < best {
				best = v
			}
		}
		prevT, prevG = t, gi
	}
	return best
}
