// Package heapq is a generic slice-backed binary min-heap: the one
// sift-up/sift-down implementation behind the R-tree's best-first
// priority queue and the road network's Dijkstra queue, which used to be
// two hand-maintained copies of the same code.
//
// Elements order themselves through a Less method on the concrete type,
// so instantiations are monomorphized per element type with no
// interface{} boxing — the property the original typed copies existed
// for. Whether the generic form also matches their *speed* on the
// hottest path (R-tree best-first) is decided by measurement, not
// assumption: see BenchmarkBestFirstInto in internal/rtree and the
// adoption note on the pqEntry heap in rtree/search.go.
package heapq

// Ordered constrains heap elements to types that can compare themselves.
type Ordered[T any] interface {
	// Less reports whether the receiver sorts strictly before other.
	Less(other T) bool
}

// Push appends e to the heap q and restores min-heap order, returning
// the grown slice. The input must already be heap-ordered.
func Push[T Ordered[T]](q []T, e T) []T {
	q = append(q, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q[i].Less(q[parent]) {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
	return q
}

// Pop removes and returns the minimum element, returning the shrunk
// slice. The input must be non-empty and heap-ordered.
func Pop[T Ordered[T]](q []T) (T, []T) {
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && q[r].Less(q[l]) {
			least = r
		}
		if !q[least].Less(q[i]) {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	return top, q
}
