package heapq

import (
	"math/rand"
	"sort"
	"testing"
)

type elem struct {
	d   float64
	tag int
}

func (e elem) Less(o elem) bool { return e.d < o.d }

// TestHeapSortsRandomStreams: pushing a random stream and popping it all
// must yield the values in non-decreasing order, across sizes including
// duplicates.
func TestHeapSortsRandomStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		vals := make([]float64, n)
		q := make([]elem, 0, n)
		for i := range vals {
			vals[i] = float64(rng.Intn(n)) // duplicates likely
			q = Push(q, elem{d: vals[i], tag: i})
		}
		sort.Float64s(vals)
		for i := 0; i < n; i++ {
			var top elem
			top, q = Pop(q)
			if top.d != vals[i] {
				t.Fatalf("n=%d pop %d: got %v want %v", n, i, top.d, vals[i])
			}
		}
		if len(q) != 0 {
			t.Fatalf("n=%d: %d leftovers", n, len(q))
		}
	}
}

// TestHeapInterleavedPushPop mixes pushes and pops and cross-checks
// against a sorted reference multiset.
func TestHeapInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var q []elem
	var ref []float64
	for step := 0; step < 5000; step++ {
		if len(ref) == 0 || rng.Intn(3) != 0 {
			v := rng.Float64()
			q = Push(q, elem{d: v})
			ref = append(ref, v)
			sort.Float64s(ref)
		} else {
			var top elem
			top, q = Pop(q)
			if top.d != ref[0] {
				t.Fatalf("step %d: popped %v want %v", step, top.d, ref[0])
			}
			ref = ref[1:]
		}
	}
}

// typedEntry mirrors rtree's pqEntry shape (float key + pointer +
// payload) with a hand-typed sift pair, so the benchmark pair below
// documents the generic-vs-typed cost on the shape that matters. The
// recorded outcome (go1.24 linux/amd64): generic ≈ 1.5× typed on the
// R-tree best-first traversal — why rtree keeps its typed copy.
type typedEntry struct {
	d float64
	p *int
}

func typedPush(q []typedEntry, e typedEntry) []typedEntry {
	q = append(q, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].d <= q[i].d {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
	return q
}

func typedPop(q []typedEntry) (typedEntry, []typedEntry) {
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && q[r].d < q[l].d {
			least = r
		}
		if q[i].d <= q[least].d {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	return top, q
}

type genericEntry struct {
	d float64
	p *int
}

func (e genericEntry) Less(o genericEntry) bool { return e.d < o.d }

const benchHeapSize = 256

func BenchmarkTypedHeap(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]float64, benchHeapSize)
	for i := range keys {
		keys[i] = rng.Float64()
	}
	q := make([]typedEntry, 0, benchHeapSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q = q[:0]
		for _, k := range keys {
			q = typedPush(q, typedEntry{d: k})
		}
		for len(q) > 0 {
			_, q = typedPop(q)
		}
	}
}

func BenchmarkGenericHeap(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]float64, benchHeapSize)
	for i := range keys {
		keys[i] = rng.Float64()
	}
	q := make([]genericEntry, 0, benchHeapSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q = q[:0]
		for _, k := range keys {
			q = Push(q, genericEntry{d: k})
		}
		for len(q) > 0 {
			_, q = Pop(q)
		}
	}
}
