// Package experiments regenerates every figure of the paper's evaluation
// (Section 7). Each FigXX method runs the relevant parameter sweep over
// both trajectory workloads and returns text-table figures whose rows and
// series mirror the paper's plots:
//
//	Fig. 13 — vary group size m (MPN): update frequency, packets, CPU
//	Fig. 14 — vary data size n (MPN): update frequency, packets
//	Fig. 15 — vary user speed (MPN): update frequency, packets
//	Fig. 16 — vary buffer b (MPN): CPU, update frequency
//	Fig. 17 — vary group size m (Sum-MPN): update frequency, packets, CPU
//	Fig. 18 — vary data size n (Sum-MPN): update frequency, packets
//	Fig. 19 — vary buffer b (Sum-MPN): CPU, update frequency
//
// The Scale type trades wall-clock time for fidelity; Full reproduces the
// paper's workload sizes, Quick and Bench shrink the trajectory length and
// group count while keeping the POI cardinality and all algorithm
// parameters at their paper defaults.
package experiments

import (
	"fmt"
	"time"

	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/mobility"
	"mpn/internal/nbrcache"
	"mpn/internal/sim"
	"mpn/internal/stats"
	"mpn/internal/workload"
)

// Scale fixes the workload sizes of a suite.
type Scale struct {
	// Steps is the trajectory length replayed per run.
	Steps int
	// NumGroups is how many user groups results are averaged over.
	NumGroups int
	// NumTrajectories is the trajectory-set size (must be ≥
	// NumGroups·max group size).
	NumTrajectories int
	// POIN is the POI cardinality N.
	POIN int
	// Speed is the speed limit V (distance per timestamp). The default
	// 5e-5 matches a ~50 km/h vehicle sampled at 1 Hz against the POI
	// spacing of the 21k-point set (≈ 0.7% of the mean spacing per tick),
	// mirroring the paper's real-workload regime.
	Speed float64
	// Seed drives all generation.
	Seed int64
}

// Full is the paper's scale: 60 trajectories of 10,000 timestamps in 10
// groups over 21,287 POIs.
var Full = Scale{
	Steps: 10000, NumGroups: 10, NumTrajectories: 60,
	POIN: workload.DefaultPOICount, Speed: 5e-5, Seed: 7,
}

// Quick keeps N and all algorithm parameters but shortens trajectories and
// averages over fewer groups; it reproduces every qualitative shape in
// minutes on one core.
var Quick = Scale{
	Steps: 1500, NumGroups: 2, NumTrajectories: 12,
	POIN: workload.DefaultPOICount, Speed: 5e-5, Seed: 7,
}

// Bench is the smallest useful scale, used by the testing.B benchmarks.
var Bench = Scale{
	Steps: 400, NumGroups: 1, NumTrajectories: 6,
	POIN: 4000, Speed: 1e-4, Seed: 7,
}

// Figure is one plot of the paper rendered as rows (x-axis values) by
// series (methods).
type Figure struct {
	ID     string
	Title  string
	XLabel string
	Metric string
	Series []string
	Rows   []Row
}

// Row is one x-axis point with one value per series.
type Row struct {
	X      string
	Values map[string]float64
}

// Get returns the value of series s in the row (0 when missing).
func (r Row) Get(s string) float64 { return r.Values[s] }

// Table renders the figure as an aligned text table.
func (f Figure) Table() string {
	t := stats.Table{
		Title:   fmt.Sprintf("%s — %s [%s]", f.ID, f.Title, f.Metric),
		Columns: append([]string{f.XLabel}, f.Series...),
	}
	for _, row := range f.Rows {
		cells := []string{row.X}
		for _, s := range f.Series {
			cells = append(cells, stats.FormatFloat(row.Values[s]))
		}
		t.AddRow(cells...)
	}
	return t.String()
}

// Suite holds the generated workloads shared by all experiments.
type Suite struct {
	Scale  Scale
	Params workload.Params
	POIs   []geom.Point
	Sets   []*workload.TrajectorySet // GeoLife-style, Oldenburg-style

	// Incremental replays every run under the paper's incremental
	// maintenance protocol (sim.Config.Incremental): the server retains
	// each group's plan and regrows only what an update invalidates, so
	// the CPU-per-update figures measure the protocol the paper actually
	// proposes. False replays the historical full-replan accounting.
	Incremental bool
	// GNNCacheBytes, when positive, gives every run a shared
	// neighborhood cache of that byte budget (see internal/nbrcache).
	GNNCacheBytes int64
	// DeltaWire replays the figures under the delta notification
	// protocol (sim.Config.DeltaWire): members whose region epoch did
	// not advance receive a region-less delta frame, so the
	// packets/bytes measures reflect what the epoch-tracked coordinator
	// actually ships. Requires Incremental to have any effect.
	DeltaWire bool
}

// NewSuite generates the POI set and both trajectory workloads.
func NewSuite(scale Scale) (*Suite, error) {
	if scale.Steps < 2 || scale.NumGroups < 1 {
		return nil, fmt.Errorf("experiments: invalid scale %+v", scale)
	}
	poiCfg := workload.DefaultPOIConfig()
	poiCfg.N = scale.POIN
	poiCfg.Seed = scale.Seed
	pois, err := workload.GeneratePOIs(poiCfg)
	if err != nil {
		return nil, err
	}
	setCfg := workload.SetConfig{
		NumTrajectories: scale.NumTrajectories,
		Steps:           scale.Steps,
		Speed:           scale.Speed,
		Seed:            scale.Seed,
	}
	geo, err := workload.GenerateGeoLifeSet(setCfg)
	if err != nil {
		return nil, err
	}
	old, err := workload.GenerateOldenburgSet(setCfg)
	if err != nil {
		return nil, err
	}
	return &Suite{
		Scale:  scale,
		Params: workload.DefaultParams(),
		POIs:   pois,
		Sets:   []*workload.TrajectorySet{geo, old},
	}, nil
}

// result is the average of sim metrics over the suite's groups.
type result struct {
	updateFreq float64
	packetsK   float64
	cpuMS      float64
}

// runAvg simulates cfg over NumGroups groups of size m drawn from set and
// averages the three reported measures.
func (s *Suite) runAvg(pois []geom.Point, set *workload.TrajectorySet, m int, cfg sim.Config) (result, error) {
	groups, err := set.Groups(m, s.Scale.NumGroups)
	if err != nil {
		return result{}, err
	}
	cfg.Incremental = s.Incremental
	cfg.DeltaWire = s.DeltaWire
	if s.GNNCacheBytes > 0 {
		cfg.SharedCache = nbrcache.New(nbrcache.Config{MaxBytes: s.GNNCacheBytes})
	}
	var uf, pk, cpu []float64
	for _, g := range groups {
		met, err := sim.Run(pois, g, cfg)
		if err != nil {
			return result{}, err
		}
		uf = append(uf, met.UpdateFrequency())
		pk = append(pk, met.PacketsPerK())
		cpu = append(cpu, float64(met.CPUPerUpdate())/float64(time.Millisecond))
	}
	return result{
		updateFreq: stats.Mean(uf),
		packetsK:   stats.Mean(pk),
		cpuMS:      stats.Mean(cpu),
	}, nil
}

// methodConfigs returns the three standard series of Figs. 13–15/17–18.
func methodConfigs(agg gnn.Aggregate) []sim.Config {
	return []sim.Config{
		sim.MethodConfig(sim.MethodCircle, agg, 0),
		sim.MethodConfig(sim.MethodTile, agg, 0),
		sim.MethodConfig(sim.MethodTileD, agg, 0),
	}
}

var methodNames = []string{"Circle", "Tile", "Tile-D"}

// sweep runs the standard three methods across x-axis points produced by
// prepare and assembles one figure per (dataset, metric).
func (s *Suite) sweep(
	figBase, title, xLabel string,
	agg gnn.Aggregate,
	xs []string,
	metrics []string, // subset of "updates", "packets", "cpu"
	prepare func(xIdx int, set *workload.TrajectorySet) ([]geom.Point, *workload.TrajectorySet, int, error),
) ([]Figure, error) {
	figs := make([]Figure, 0, len(s.Sets)*len(metrics))
	sub := 'a'
	for _, metric := range metrics {
		for _, set := range s.Sets {
			fig := Figure{
				ID:     fmt.Sprintf("%s%c", figBase, sub),
				Title:  fmt.Sprintf("%s (%s)", title, set.Name),
				XLabel: xLabel,
				Metric: metricLabel(metric),
				Series: methodNames,
			}
			sub++
			for xi, x := range xs {
				row := Row{X: x, Values: map[string]float64{}}
				pois, useSet, m, err := prepare(xi, set)
				if err != nil {
					return nil, err
				}
				for mi, cfg := range methodConfigs(agg) {
					res, err := s.runAvg(pois, useSet, m, cfg)
					if err != nil {
						return nil, err
					}
					row.Values[methodNames[mi]] = pick(res, metric)
				}
				fig.Rows = append(fig.Rows, row)
			}
			figs = append(figs, fig)
		}
	}
	return figs, nil
}

func metricLabel(metric string) string {
	switch metric {
	case "updates":
		return "updates / 1k timestamps"
	case "packets":
		return "packets / 1k timestamps"
	default:
		return "CPU ms / update"
	}
}

func pick(r result, metric string) float64 {
	switch metric {
	case "updates":
		return r.updateFreq
	case "packets":
		return r.packetsK
	default:
		return r.cpuMS
	}
}

// Fig13 varies the group size m for MPN (update frequency, communication
// cost, and running time on both data sets — six sub-figures).
func (s *Suite) Fig13() ([]Figure, error) { return s.groupSizeSweep("Fig13", gnn.Max) }

// Fig17 is the Sum-MPN analog of Fig13.
func (s *Suite) Fig17() ([]Figure, error) { return s.groupSizeSweep("Fig17", gnn.Sum) }

func (s *Suite) groupSizeSweep(id string, agg gnn.Aggregate) ([]Figure, error) {
	sizes := s.Params.GroupSizes
	xs := make([]string, len(sizes))
	for i, m := range sizes {
		xs[i] = fmt.Sprintf("m=%d", m)
	}
	return s.sweep(id, "vary group size", "m", agg, xs,
		[]string{"updates", "packets", "cpu"},
		func(xi int, set *workload.TrajectorySet) ([]geom.Point, *workload.TrajectorySet, int, error) {
			return s.POIs, set, sizes[xi], nil
		})
}

// Fig14 varies the POI data size n for MPN.
func (s *Suite) Fig14() ([]Figure, error) { return s.dataSizeSweep("Fig14", gnn.Max) }

// Fig18 is the Sum-MPN analog of Fig14.
func (s *Suite) Fig18() ([]Figure, error) { return s.dataSizeSweep("Fig18", gnn.Sum) }

func (s *Suite) dataSizeSweep(id string, agg gnn.Aggregate) ([]Figure, error) {
	fracs := s.Params.DataFracs
	xs := make([]string, len(fracs))
	subsets := make([][]geom.Point, len(fracs))
	for i, f := range fracs {
		xs[i] = fmt.Sprintf("%.2fN", f)
		sub, err := workload.SubsetPOIs(s.POIs, f, s.Scale.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		subsets[i] = sub
	}
	return s.sweep(id, "vary data size", "n", agg, xs,
		[]string{"updates", "packets"},
		func(xi int, set *workload.TrajectorySet) ([]geom.Point, *workload.TrajectorySet, int, error) {
			return subsets[xi], set, s.Params.DefaultM, nil
		})
}

// Fig15 varies the user speed for MPN.
func (s *Suite) Fig15() ([]Figure, error) {
	fracs := s.Params.SpeedFracs
	xs := make([]string, len(fracs))
	resampled := make(map[string][]*workload.TrajectorySet)
	for i, f := range fracs {
		xs[i] = fmt.Sprintf("%.2fV", f)
	}
	for _, set := range s.Sets {
		var list []*workload.TrajectorySet
		for _, f := range fracs {
			rs, err := set.ResampleSpeed(f)
			if err != nil {
				return nil, err
			}
			list = append(list, rs)
		}
		resampled[set.Name] = list
	}
	return s.sweep("Fig15", "vary user speed", "speed", gnn.Max, xs,
		[]string{"updates", "packets"},
		func(xi int, set *workload.TrajectorySet) ([]geom.Point, *workload.TrajectorySet, int, error) {
			return s.POIs, resampled[set.Name][xi], s.Params.DefaultM, nil
		})
}

// Fig16 varies the buffering parameter b for MPN, comparing Tile-D with
// Tile-D-b on CPU time and update frequency.
func (s *Suite) Fig16() ([]Figure, error) { return s.bufferSweep("Fig16", gnn.Max) }

// Fig19 is the Sum-MPN analog of Fig16.
func (s *Suite) Fig19() ([]Figure, error) { return s.bufferSweep("Fig19", gnn.Sum) }

func (s *Suite) bufferSweep(id string, agg gnn.Aggregate) ([]Figure, error) {
	bs := s.Params.Buffers
	series := []string{"Tile-D", "Tile-D-b"}
	var figs []Figure
	sub := 'a'
	for _, metric := range []string{"cpu", "updates"} {
		for _, set := range s.Sets {
			fig := Figure{
				ID:     fmt.Sprintf("%s%c", id, sub),
				Title:  fmt.Sprintf("vary buffer b (%s)", set.Name),
				XLabel: "b",
				Metric: metricLabel(metric),
				Series: series,
			}
			sub++
			// Tile-D is independent of b: one run reused per row.
			base, err := s.runAvg(s.POIs, set, s.Params.DefaultM,
				sim.MethodConfig(sim.MethodTileD, agg, 0))
			if err != nil {
				return nil, err
			}
			for _, b := range bs {
				buf, err := s.runAvg(s.POIs, set, s.Params.DefaultM,
					sim.MethodConfig(sim.MethodTileD, agg, b))
				if err != nil {
					return nil, err
				}
				figs0 := map[string]float64{
					"Tile-D":   pick(base, metric),
					"Tile-D-b": pick(buf, metric),
				}
				fig.Rows = append(fig.Rows, Row{X: fmt.Sprintf("b=%d", b), Values: figs0})
			}
			figs = append(figs, fig)
		}
	}
	return figs, nil
}

// All regenerates every figure in paper order.
func (s *Suite) All() ([]Figure, error) {
	var out []Figure
	for _, gen := range []func() ([]Figure, error){
		s.Fig13, s.Fig14, s.Fig15, s.Fig16, s.Fig17, s.Fig18, s.Fig19,
	} {
		figs, err := gen()
		if err != nil {
			return nil, err
		}
		out = append(out, figs...)
	}
	return out, nil
}

// Mobility re-exported helpers keep cmd binaries free of deep imports.
type Trajectory = mobility.Trajectory
