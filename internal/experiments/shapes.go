package experiments

import (
	"fmt"
	"strings"
)

// ShapeResult is one verdict on a qualitative claim of the paper.
type ShapeResult struct {
	Figure string
	Claim  string
	Pass   bool
	Detail string
}

// String renders the verdict as a line.
func (r ShapeResult) String() string {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	out := fmt.Sprintf("[%s] %s: %s", status, r.Figure, r.Claim)
	if r.Detail != "" {
		out += " (" + r.Detail + ")"
	}
	return out
}

// CheckShapes evaluates the paper's qualitative claims against generated
// figures: who wins, by roughly what factor, and the expected trends.
// Slack factors absorb the noise of reduced-scale runs.
func CheckShapes(figs []Figure) []ShapeResult {
	var out []ShapeResult
	for _, f := range figs {
		switch {
		case strings.Contains(f.Metric, "updates"):
			out = append(out, checkMethodOrdering(f)...)
			if f.XLabel == "speed" {
				out = append(out, checkMonotone(f, "update frequency grows with speed", 0.9))
			}
		case strings.Contains(f.Metric, "packets"):
			out = append(out, checkMethodOrdering(f)...)
		case strings.Contains(f.Metric, "CPU"):
			out = append(out, checkCPUOrdering(f)...)
		}
	}
	return out
}

// checkMethodOrdering verifies Tile ≤ Circle and Tile-D ≤ Tile (with 10%
// slack) on every row, when those series exist.
func checkMethodOrdering(f Figure) []ShapeResult {
	var out []ShapeResult
	has := map[string]bool{}
	for _, s := range f.Series {
		has[s] = true
	}
	if has["Circle"] && has["Tile"] {
		pass, detail := true, ""
		for _, row := range f.Rows {
			if row.Get("Tile") > row.Get("Circle")*1.02 {
				pass = false
				detail = fmt.Sprintf("row %s: Tile %.4g > Circle %.4g", row.X, row.Get("Tile"), row.Get("Circle"))
				break
			}
		}
		out = append(out, ShapeResult{f.ID, "Tile ≤ Circle", pass, detail})
	}
	if has["Tile"] && has["Tile-D"] {
		pass, detail := true, ""
		for _, row := range f.Rows {
			if row.Get("Tile-D") > row.Get("Tile")*1.10 {
				pass = false
				detail = fmt.Sprintf("row %s: Tile-D %.4g > Tile %.4g", row.X, row.Get("Tile-D"), row.Get("Tile"))
				break
			}
		}
		out = append(out, ShapeResult{f.ID, "Tile-D ≤ Tile", pass, detail})
	}
	if has["Tile-D"] && has["Tile-D-b"] {
		// Buffered update frequency converges to Tile-D at the largest b.
		last := f.Rows[len(f.Rows)-1]
		ratio := 0.0
		if v := last.Get("Tile-D"); v > 0 {
			ratio = last.Get("Tile-D-b") / v
		}
		out = append(out, ShapeResult{
			f.ID, "Tile-D-b update frequency converges to Tile-D",
			ratio > 0 && ratio < 1.15,
			fmt.Sprintf("ratio %.3f at %s", ratio, last.X),
		})
	}
	return out
}

// checkCPUOrdering verifies Circle ≪ tile methods, and Tile-D-b ≪ Tile-D
// when the buffered series is present.
func checkCPUOrdering(f Figure) []ShapeResult {
	var out []ShapeResult
	has := map[string]bool{}
	for _, s := range f.Series {
		has[s] = true
	}
	if has["Circle"] && has["Tile"] {
		pass, detail := true, ""
		for _, row := range f.Rows {
			if row.Get("Circle") > row.Get("Tile")*0.5 {
				pass = false
				detail = fmt.Sprintf("row %s: Circle %.4g not ≪ Tile %.4g", row.X, row.Get("Circle"), row.Get("Tile"))
				break
			}
		}
		out = append(out, ShapeResult{f.ID, "Circle CPU ≪ tile methods", pass, detail})
	}
	if has["Tile-D"] && has["Tile-D-b"] {
		pass, detail := true, ""
		for _, row := range f.Rows {
			if row.Get("Tile-D-b") > row.Get("Tile-D")*0.8 {
				pass = false
				detail = fmt.Sprintf("row %s: buffered %.4g not below %.4g", row.X, row.Get("Tile-D-b"), row.Get("Tile-D"))
				break
			}
		}
		out = append(out, ShapeResult{f.ID, "buffering cuts CPU substantially", pass, detail})
	}
	return out
}

// checkMonotone verifies the series grow from first to last row (each
// series' last value ≥ slack × first value).
func checkMonotone(f Figure, claim string, slack float64) ShapeResult {
	first, last := f.Rows[0], f.Rows[len(f.Rows)-1]
	for _, s := range f.Series {
		if last.Get(s) < first.Get(s)*slack {
			return ShapeResult{f.ID, claim, false,
				fmt.Sprintf("%s: %.4g -> %.4g", s, first.Get(s), last.Get(s))}
		}
	}
	return ShapeResult{f.ID, claim, true, ""}
}
