package experiments

import (
	"strings"
	"testing"
)

func figWith(metric string, series []string, rows ...Row) Figure {
	return Figure{ID: "T", Title: "t", XLabel: "m", Metric: metric, Series: series, Rows: rows}
}

func TestCheckShapesOrderingPass(t *testing.T) {
	f := figWith("updates / 1k timestamps", []string{"Circle", "Tile", "Tile-D"},
		Row{X: "m=2", Values: map[string]float64{"Circle": 100, "Tile": 60, "Tile-D": 50}},
		Row{X: "m=3", Values: map[string]float64{"Circle": 120, "Tile": 70, "Tile-D": 65}},
	)
	results := CheckShapes([]Figure{f})
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if !r.Pass {
			t.Fatalf("unexpected failure: %v", r)
		}
		if r.String() == "" || !strings.HasPrefix(r.String(), "[PASS]") {
			t.Fatalf("formatting: %q", r.String())
		}
	}
}

func TestCheckShapesOrderingFail(t *testing.T) {
	f := figWith("updates / 1k timestamps", []string{"Circle", "Tile"},
		Row{X: "m=2", Values: map[string]float64{"Circle": 50, "Tile": 90}},
	)
	results := CheckShapes([]Figure{f})
	if len(results) != 1 || results[0].Pass {
		t.Fatalf("inversion not flagged: %v", results)
	}
	if !strings.HasPrefix(results[0].String(), "[FAIL]") {
		t.Fatalf("formatting: %q", results[0].String())
	}
}

func TestCheckShapesSpeedMonotone(t *testing.T) {
	f := Figure{
		ID: "Fig15a", XLabel: "speed", Metric: "updates / 1k timestamps",
		Series: []string{"Circle"},
		Rows: []Row{
			{X: "0.25V", Values: map[string]float64{"Circle": 100}},
			{X: "1.00V", Values: map[string]float64{"Circle": 300}},
		},
	}
	results := CheckShapes([]Figure{f})
	found := false
	for _, r := range results {
		if strings.Contains(r.Claim, "speed") {
			found = true
			if !r.Pass {
				t.Fatalf("monotone speed flagged: %v", r)
			}
		}
	}
	if !found {
		t.Fatal("speed claim missing")
	}
	// Decreasing series must fail.
	f.Rows[1].Values["Circle"] = 10
	for _, r := range CheckShapes([]Figure{f}) {
		if strings.Contains(r.Claim, "speed") && r.Pass {
			t.Fatal("decreasing speed series passed")
		}
	}
}

func TestCheckShapesCPU(t *testing.T) {
	f := figWith("CPU ms / update", []string{"Tile-D", "Tile-D-b"},
		Row{X: "b=10", Values: map[string]float64{"Tile-D": 20, "Tile-D-b": 2}},
		Row{X: "b=100", Values: map[string]float64{"Tile-D": 20, "Tile-D-b": 5}},
	)
	for _, r := range CheckShapes([]Figure{f}) {
		if !r.Pass {
			t.Fatalf("buffering CPU claim failed: %v", r)
		}
	}
	// Buffered slower than unbuffered must fail.
	f.Rows[0].Values["Tile-D-b"] = 19
	failed := false
	for _, r := range CheckShapes([]Figure{f}) {
		if !r.Pass {
			failed = true
		}
	}
	if !failed {
		t.Fatal("slow buffered variant passed")
	}
}

func TestCheckShapesBufferedConvergence(t *testing.T) {
	f := figWith("updates / 1k timestamps", []string{"Tile-D", "Tile-D-b"},
		Row{X: "b=10", Values: map[string]float64{"Tile-D": 100, "Tile-D-b": 130}},
		Row{X: "b=100", Values: map[string]float64{"Tile-D": 100, "Tile-D-b": 102}},
	)
	ok := false
	for _, r := range CheckShapes([]Figure{f}) {
		if strings.Contains(r.Claim, "converges") && r.Pass {
			ok = true
		}
	}
	if !ok {
		t.Fatal("convergence claim not verified")
	}
}

// The real tiny-scale suite must pass the robust ordering claims.
func TestCheckShapesOnRealFigures(t *testing.T) {
	s := tinySuite(t)
	figs, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range CheckShapes(figs) {
		// CPU ordering and update ordering are robust even at tiny scale;
		// log-only for claims with known tiny-scale noise.
		if !r.Pass {
			if strings.Contains(r.Claim, "Tile-D ≤ Tile") {
				t.Logf("tiny-scale noise: %v", r)
				continue
			}
			t.Fatalf("shape violated at tiny scale: %v", r)
		}
	}
}
