package experiments

import (
	"strings"
	"testing"
)

// tinyScale keeps the harness tests fast while exercising every code path.
var tinyScale = Scale{
	Steps: 120, NumGroups: 1, NumTrajectories: 6,
	POIN: 1500, Speed: 0.0008, Seed: 7,
}

func tinySuite(t testing.TB) *Suite {
	t.Helper()
	s, err := NewSuite(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the parameter grid so one test run covers every figure
	// without minutes of wall clock.
	s.Params.GroupSizes = []int{2, 3}
	s.Params.DataFracs = []float64{0.5, 1.0}
	s.Params.SpeedFracs = []float64{0.5, 1.0}
	s.Params.Buffers = []int{10, 50}
	return s
}

func TestNewSuite(t *testing.T) {
	s := tinySuite(t)
	if len(s.POIs) != tinyScale.POIN {
		t.Fatalf("POIs=%d", len(s.POIs))
	}
	if len(s.Sets) != 2 || s.Sets[0].Name != "geolife" || s.Sets[1].Name != "oldenburg" {
		t.Fatalf("unexpected sets")
	}
	if _, err := NewSuite(Scale{}); err == nil {
		t.Fatal("zero scale accepted")
	}
}

func TestFig13Shape(t *testing.T) {
	s := tinySuite(t)
	figs, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 6 { // 3 metrics × 2 data sets
		t.Fatalf("Fig13 produced %d sub-figures want 6", len(figs))
	}
	for _, f := range figs {
		if len(f.Rows) != len(s.Params.GroupSizes) {
			t.Fatalf("%s: %d rows want %d", f.ID, len(f.Rows), len(s.Params.GroupSizes))
		}
		if len(f.Series) != 3 {
			t.Fatalf("%s: series %v", f.ID, f.Series)
		}
		for _, row := range f.Rows {
			for _, series := range f.Series {
				if v := row.Get(series); v < 0 {
					t.Fatalf("%s: negative metric %v", f.ID, v)
				}
			}
		}
	}
	// The update-frequency sub-figures must show Tile ≤ Circle.
	for _, f := range figs[:2] {
		for _, row := range f.Rows {
			if row.Get("Tile") > row.Get("Circle") {
				t.Fatalf("%s row %s: Tile %v > Circle %v",
					f.ID, row.X, row.Get("Tile"), row.Get("Circle"))
			}
		}
	}
}

func TestFig14Shape(t *testing.T) {
	s := tinySuite(t)
	figs, err := s.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 { // 2 metrics × 2 data sets
		t.Fatalf("Fig14 produced %d figures", len(figs))
	}
}

func TestFig15Shape(t *testing.T) {
	s := tinySuite(t)
	figs, err := s.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("Fig15 produced %d figures", len(figs))
	}
	// Update frequency must not decrease with speed (faster users escape
	// sooner) — compare first and last row per series.
	for _, f := range figs[:2] {
		first, last := f.Rows[0], f.Rows[len(f.Rows)-1]
		for _, series := range f.Series {
			if last.Get(series) < first.Get(series)*0.5 {
				t.Fatalf("%s %s: updates dropped sharply with speed (%v -> %v)",
					f.ID, series, first.Get(series), last.Get(series))
			}
		}
	}
}

func TestFig16Shape(t *testing.T) {
	s := tinySuite(t)
	figs, err := s.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("Fig16 produced %d figures", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 2 || f.Series[0] != "Tile-D" || f.Series[1] != "Tile-D-b" {
			t.Fatalf("%s: series %v", f.ID, f.Series)
		}
		if len(f.Rows) != len(s.Params.Buffers) {
			t.Fatalf("%s: rows %d", f.ID, len(f.Rows))
		}
	}
}

func TestFigSumVariants(t *testing.T) {
	s := tinySuite(t)
	if figs, err := s.Fig17(); err != nil || len(figs) != 6 {
		t.Fatalf("Fig17: %v / %d figures", err, len(figs))
	}
	if figs, err := s.Fig18(); err != nil || len(figs) != 4 {
		t.Fatalf("Fig18: %v / %d figures", err, len(figs))
	}
	if figs, err := s.Fig19(); err != nil || len(figs) != 4 {
		t.Fatalf("Fig19: %v / %d figures", err, len(figs))
	}
}

func TestFigureTable(t *testing.T) {
	f := Figure{
		ID: "FigX", Title: "demo", XLabel: "m", Metric: "updates",
		Series: []string{"A", "B"},
		Rows: []Row{
			{X: "m=2", Values: map[string]float64{"A": 1, "B": 2}},
		},
	}
	out := f.Table()
	for _, want := range []string{"FigX", "demo", "m=2", "A", "B"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

// TestIncrementalHarness replays Fig13 under the paper's incremental
// maintenance protocol with a shared GNN cache: the harness must
// produce the same figure structure with sane (non-negative) metrics.
func TestIncrementalHarness(t *testing.T) {
	s := tinySuite(t)
	s.Incremental = true
	s.GNNCacheBytes = 1 << 20
	figs, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 6 {
		t.Fatalf("incremental Fig13 produced %d sub-figures want 6", len(figs))
	}
	for _, f := range figs {
		for _, row := range f.Rows {
			for _, series := range f.Series {
				if v := row.Get(series); v < 0 {
					t.Fatalf("%s: negative metric %v", f.ID, v)
				}
			}
		}
	}
}
