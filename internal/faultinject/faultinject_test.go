package faultinject

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

func TestDisarmedFireIsNoOp(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("armed with no script")
	}
	Fire(EnginePlan) // must not panic or block
	if got := Hits(EnginePlan); got != 0 {
		t.Fatalf("disarmed hits = %d", got)
	}
}

func TestPanicOnExactHit(t *testing.T) {
	Arm(Script{EnginePlan: PanicOn(3, "boom")})
	defer Disarm()
	fire := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		Fire(EnginePlan)
		return false
	}
	for i := 1; i <= 5; i++ {
		got := fire()
		if want := i == 3; got != want {
			t.Fatalf("hit %d: panicked=%v, want %v", i, got, want)
		}
	}
	if got := Hits(EnginePlan); got != 5 {
		t.Fatalf("hits = %d, want 5", got)
	}
}

func TestHitCountersArePerPoint(t *testing.T) {
	Arm(Script{EnginePlan: PanicEvery(2, "x")})
	defer Disarm()
	Fire(CoordDeliver)
	Fire(CoordDeliver)
	Fire(EnginePlan) // hit 1 for EnginePlan: no panic despite two prior CoordDeliver hits
	if got := Hits(CoordDeliver); got != 2 {
		t.Fatalf("CoordDeliver hits = %d", got)
	}
}

func TestStallFirst(t *testing.T) {
	const d = 20 * time.Millisecond
	Arm(Script{EngineSubmit: StallFirst(1, d)})
	defer Disarm()
	start := time.Now()
	Fire(EngineSubmit)
	if el := time.Since(start); el < d {
		t.Fatalf("first hit stalled only %v", el)
	}
	start = time.Now()
	Fire(EngineSubmit)
	if el := time.Since(start); el > d/2 {
		t.Fatalf("second hit stalled %v, want none", el)
	}
}

// pipeConn runs a reader goroutine collecting everything the wrapped
// side writes.
func pipeConn(t *testing.T) (wrapped net.Conn, rx func() []byte) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	var buf bytes.Buffer
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = io.Copy(&buf, b)
	}()
	return a, func() []byte {
		a.Close()
		<-done
		return buf.Bytes()
	}
}

func TestConnDropEveryNth(t *testing.T) {
	inner, rx := pipeConn(t)
	c := WrapConn(inner, ConnOpts{DropEveryNth: 2})
	frames := [][]byte{[]byte("aa"), []byte("bb"), []byte("cc"), []byte("dd"), []byte("ee")}
	for _, f := range frames {
		if n, err := c.Write(f); err != nil || n != len(f) {
			t.Fatalf("write: n=%d err=%v", n, err)
		}
	}
	if got, want := string(rx()), "aaccee"; got != want {
		t.Fatalf("peer saw %q, want %q", got, want)
	}
	dropped, _, _ := c.Faults()
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
}

func TestConnTearPreservesBytes(t *testing.T) {
	inner, rx := pipeConn(t)
	c := WrapConn(inner, ConnOpts{Seed: 7, TearEveryNth: 1, TearPause: time.Millisecond})
	msg := []byte("hello-torn-frame")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	if got := string(rx()); got != string(msg) {
		t.Fatalf("peer saw %q, want %q", got, string(msg))
	}
	if _, torn, _ := c.Faults(); torn != 1 {
		t.Fatalf("torn = %d, want 1", torn)
	}
}

func TestConnCutAfter(t *testing.T) {
	inner, _ := pipeConn(t)
	c := WrapConn(inner, ConnOpts{CutAfter: 1})
	if _, err := c.Write([]byte("last")); err != nil {
		t.Fatalf("the cut write itself succeeds: %v", err)
	}
	if _, err := c.Write([]byte("after")); err == nil {
		t.Fatal("write after cut succeeded")
	}
}

func TestConnDeterministicTearOffsets(t *testing.T) {
	// Same seed and workload ⇒ same split positions: the two runs must
	// present identical write sequences to their peers.
	run := func() []int {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		var sizes []int
		done := make(chan struct{})
		go func() {
			defer close(done)
			buf := make([]byte, 64)
			for {
				n, err := b.Read(buf)
				if n > 0 {
					sizes = append(sizes, n)
				}
				if err != nil {
					return
				}
			}
		}()
		c := WrapConn(a, ConnOpts{Seed: 42, TearEveryNth: 1, TearPause: time.Millisecond})
		for i := 0; i < 4; i++ {
			if _, err := c.Write([]byte("0123456789abcdef")); err != nil {
				t.Fatal(err)
			}
		}
		a.Close()
		<-done
		return sizes
	}
	first, second := run(), run()
	if len(first) != len(second) {
		t.Fatalf("runs diverged: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("runs diverged at %d: %v vs %v", i, first, second)
		}
	}
}
