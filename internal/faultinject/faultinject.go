// Package faultinject is the repo's deterministic fault-injection
// harness: named failpoints compiled into the production paths of the
// engine and the wire protocol, plus a fault-injecting net.Conn wrapper
// for transport-level chaos (see conn.go).
//
// Failpoints are behind one atomic pointer: when nothing is armed,
// Fire() is a single atomic load and a branch — cheap enough to leave in
// every hot path (the benchgate series prove no measurable regression).
// Arming installs a Script mapping points to rules; every Fire counts
// hits per point (1-based, deterministic under a deterministic workload)
// and asks the rule what to do on that hit: nothing, stall for a
// duration, or panic with a value. Tests therefore express schedules
// like "the third planner call panics" or "every fourth delivery stalls
// 5ms" exactly, with no randomness unless the rule itself closes over a
// seeded source.
//
// The harness is test infrastructure living in the production binary on
// purpose: the chaos suite drives the real TCP stack, the real engine
// worker pool, and the real coordinator through fault schedules, and
// differentially fences the surviving clients' final plans against a
// fault-free run.
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// Point names one failpoint site. The constants below are the sites
// wired into the production packages; tests may also define private
// points for their own plumbing.
type Point string

// Failpoints wired into the production paths.
const (
	// EnginePlan fires inside every engine recomputation, immediately
	// before the planner call (sync and worker paths alike). A panic
	// here exercises the engine's panic isolation; a stall holds a shard
	// worker busy, which together with a small queue depth forces
	// admission-control sheds.
	EnginePlan Point = "engine.plan"
	// EngineSubmit fires at the top of every asynchronous submission,
	// before admission.
	EngineSubmit Point = "engine.submit"
	// CoordDeliver fires at the top of every coordinator delivery
	// (fan-out of one completed plan).
	CoordDeliver Point = "proto.coord.deliver"
	// ClientRead fires before every client frame read.
	ClientRead Point = "proto.client.read"
	// WALAppend fires in the durable store's writer before each log
	// frame is written. ShortWrite and Drop effects are interpreted by
	// the WAL itself (see FireEffect): a short write leaves a torn frame
	// on disk and wedges the log, a drop loses the frame silently.
	WALAppend Point = "durable.wal.append"
	// WALSync fires before each fsync of the durable log. A panic here
	// models a crash after writing but before the data is durable.
	WALSync Point = "durable.wal.sync"
	// WALWrite fires in the durable store's flush, immediately before the
	// framed batch hits the file. A Fail effect here simulates a transient
	// disk write error (EIO without touching the file), which exercises
	// the store's reopen-with-backoff recovery instead of the torn-tail
	// machinery that ShortWrite models.
	WALWrite Point = "durable.wal.write"
	// ReplShip fires in the replication shipper before each tail record is
	// sent to a follower. A Drop effect is interpreted as a stream cut:
	// the shipper closes that follower's connection mid-stream, forcing a
	// reconnect-and-reseed.
	ReplShip Point = "replica.ship"
	// ReplTail fires in the replication tailer before each received tail
	// record is applied. A Drop effect cuts the stream from the follower
	// side.
	ReplTail Point = "replica.tail"
	// ReplHello fires while the tailer builds its handshake hello. A Drop
	// effect makes it present a stale fencing epoch (0), modeling a
	// follower that rejoined with forgotten state.
	ReplHello Point = "replica.hello"
)

// Effect is what a rule tells a firing failpoint to do. The zero Effect
// is a no-op. Stall is applied before Panic when both are set.
// ShortWrite and Drop are advisory: Fire ignores them, and only call
// sites that use FireEffect (the durable WAL) act on them.
type Effect struct {
	// Stall sleeps the firing goroutine for the duration.
	Stall time.Duration
	// Panic, when non-nil, panics with this value after any stall.
	Panic any
	// ShortWrite, when positive, asks the WAL to write only the first
	// ShortWrite bytes of the frame and then wedge — the on-disk shape
	// of a crash mid-write (a torn tail).
	ShortWrite int
	// Drop asks the WAL to silently discard the frame. Replication call
	// sites reinterpret it per point: at ReplShip/ReplTail it cuts the
	// stream, at ReplHello it presents a stale epoch.
	Drop bool
	// Fail asks the call site to behave as if the operation returned an
	// I/O error without performing it — a transient disk fault at
	// WALWrite.
	Fail bool
}

// Rule decides the effect of each hit of one point. Hit numbers are
// 1-based and counted per point from the moment the script was armed.
type Rule func(hit uint64) Effect

// PanicOn returns a rule that panics with val on exactly the n-th hit.
func PanicOn(n uint64, val any) Rule {
	return func(hit uint64) Effect {
		if hit == n {
			return Effect{Panic: val}
		}
		return Effect{}
	}
}

// PanicEvery returns a rule that panics with val on every n-th hit.
func PanicEvery(n uint64, val any) Rule {
	return func(hit uint64) Effect {
		if n > 0 && hit%n == 0 {
			return Effect{Panic: val}
		}
		return Effect{}
	}
}

// StallEvery returns a rule that sleeps d on every n-th hit.
func StallEvery(n uint64, d time.Duration) Rule {
	return func(hit uint64) Effect {
		if n > 0 && hit%n == 0 {
			return Effect{Stall: d}
		}
		return Effect{}
	}
}

// StallFirst returns a rule that sleeps d on each of the first n hits —
// the shape that saturates a queue: the first computations wedge while
// submissions keep arriving.
func StallFirst(n uint64, d time.Duration) Rule {
	return func(hit uint64) Effect {
		if hit <= n {
			return Effect{Stall: d}
		}
		return Effect{}
	}
}

// Script maps points to rules. Points absent from the script are no-ops.
type Script map[Point]Rule

// script is the armed form: rules plus per-point hit counters.
type script struct {
	rules Script
	mu    sync.Mutex
	hits  map[Point]uint64
}

var active atomic.Pointer[script]

// Armed reports whether a script is installed.
func Armed() bool { return active.Load() != nil }

// Arm installs s, replacing any previous script and resetting all hit
// counters. Arming is global to the process; tests that arm must Disarm
// (t.Cleanup) and must not run in parallel with other arming tests.
func Arm(s Script) {
	active.Store(&script{rules: s, hits: make(map[Point]uint64, len(s))})
}

// Disarm removes the active script; every Fire returns to a single
// atomic load.
func Disarm() { active.Store(nil) }

// Hits returns how many times p fired since the current script was
// armed (0 when disarmed) — observability for schedules that need to
// assert a fault actually happened.
func Hits(p Point) uint64 {
	s := active.Load()
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits[p]
}

// Fire evaluates the failpoint p: a no-op unless a script is armed and
// has a rule for p, in which case the rule's effect for this hit is
// applied (stall, then panic). Production call sites invoke Fire
// unconditionally; the disarmed cost is one atomic load.
func Fire(p Point) {
	s := active.Load()
	if s == nil {
		return
	}
	rule, ok := s.rules[p]
	s.mu.Lock()
	s.hits[p]++
	hit := s.hits[p]
	s.mu.Unlock()
	if !ok {
		return
	}
	eff := rule(hit)
	if eff.Stall > 0 {
		time.Sleep(eff.Stall)
	}
	if eff.Panic != nil {
		panic(eff.Panic)
	}
}

// FireEffect evaluates the failpoint p like Fire — applying any stall
// and panic — and additionally returns the rule's effect so the call
// site can act on the parts only it can implement (ShortWrite, Drop).
// Returns the zero Effect when disarmed.
func FireEffect(p Point) Effect {
	s := active.Load()
	if s == nil {
		return Effect{}
	}
	rule, ok := s.rules[p]
	s.mu.Lock()
	s.hits[p]++
	hit := s.hits[p]
	s.mu.Unlock()
	if !ok {
		return Effect{}
	}
	eff := rule(hit)
	if eff.Stall > 0 {
		time.Sleep(eff.Stall)
	}
	if eff.Panic != nil {
		panic(eff.Panic)
	}
	return eff
}
