package faultinject

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// ConnOpts schedules transport faults on a wrapped connection. All
// schedules are counter-based over the wrapper's Write calls — the wire
// protocol writes exactly one frame per Write, so "every Nth write" is
// "every Nth frame" — which keeps a fault run deterministic for a given
// schedule and workload. Zero values disable each fault.
type ConnOpts struct {
	// Seed feeds the wrapper's private rand source, used only to pick
	// tear split positions. The same seed and workload tear at the same
	// offsets.
	Seed int64
	// DropEveryNth swallows every Nth outbound frame entirely: the
	// caller sees a successful write, the peer sees nothing. Because
	// whole frames vanish, the stream stays framed — this models frame
	// loss above a reliable transport (a crashed proxy flushing its
	// buffer, a dropped queue entry), not TCP corruption.
	DropEveryNth int
	// TearEveryNth splits every Nth outbound frame into two raw writes
	// with a pause between them, exercising every reader's partial-read
	// handling.
	TearEveryNth int
	// TearPause is the gap between the two halves of a torn frame
	// (default 1ms when tearing is enabled).
	TearPause time.Duration
	// DelayEveryNth sleeps Delay before every Nth outbound frame.
	DelayEveryNth int
	// Delay is the sleep applied by DelayEveryNth.
	Delay time.Duration
	// CutAfter hard-closes the connection after the Nth outbound frame
	// has been written — a mid-stream connection cut.
	CutAfter int
}

// Conn wraps a net.Conn with the fault schedule in ConnOpts. Reads pass
// through untouched; faults are injected on the write side, where frame
// alignment is known.
type Conn struct {
	net.Conn
	opts ConnOpts

	mu     sync.Mutex
	rng    *rand.Rand
	writes int
	// Dropped, Torn, Delayed count applied faults (guarded by mu).
	dropped, torn, delayed int
}

// WrapConn wraps inner with the given fault schedule.
func WrapConn(inner net.Conn, opts ConnOpts) *Conn {
	if opts.TearEveryNth > 0 && opts.TearPause <= 0 {
		opts.TearPause = time.Millisecond
	}
	return &Conn{Conn: inner, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Faults reports how many frames were dropped, torn, and delayed.
func (c *Conn) Faults() (dropped, torn, delayed int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped, c.torn, c.delayed
}

// Write applies the fault schedule to one outbound frame.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	n := c.writes
	drop := c.opts.DropEveryNth > 0 && n%c.opts.DropEveryNth == 0
	tear := c.opts.TearEveryNth > 0 && n%c.opts.TearEveryNth == 0
	delay := c.opts.DelayEveryNth > 0 && n%c.opts.DelayEveryNth == 0
	cut := c.opts.CutAfter > 0 && n >= c.opts.CutAfter
	split := 0
	if tear && len(p) > 1 {
		split = 1 + c.rng.Intn(len(p)-1)
	}
	switch {
	case drop:
		c.dropped++
	case tear:
		c.torn++
	case delay:
		c.delayed++
	}
	c.mu.Unlock()

	if delay {
		time.Sleep(c.opts.Delay)
	}
	if drop {
		// Pretend success; the peer never sees the frame.
		return len(p), nil
	}
	if tear && split > 0 {
		if _, err := c.Conn.Write(p[:split]); err != nil {
			return 0, err
		}
		time.Sleep(c.opts.TearPause)
		m, err := c.Conn.Write(p[split:])
		return split + m, err
	}
	written, err := c.Conn.Write(p)
	if err == nil && cut {
		_ = c.Conn.Close()
	}
	return written, err
}
