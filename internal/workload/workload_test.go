package workload

import (
	"testing"
)

func TestGeneratePOIs(t *testing.T) {
	cfg := DefaultPOIConfig()
	cfg.N = 5000
	pts, err := GeneratePOIs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != cfg.N {
		t.Fatalf("got %d points want %d", len(pts), cfg.N)
	}
	for _, p := range pts {
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("POI outside unit square: %v", p)
		}
	}
	// Determinism.
	pts2, _ := GeneratePOIs(cfg)
	for i := range pts {
		if pts[i] != pts2[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestGeneratePOIsClustered(t *testing.T) {
	// Clustered output should concentrate mass: the densest 10% of a
	// 10×10 histogram should hold far more than 10% of the points.
	cfg := DefaultPOIConfig()
	cfg.N = 20000
	pts, err := GeneratePOIs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var hist [100]int
	for _, p := range pts {
		cx := int(p.X * 10)
		cy := int(p.Y * 10)
		if cx > 9 {
			cx = 9
		}
		if cy > 9 {
			cy = 9
		}
		hist[cy*10+cx]++
	}
	// Count mass in the 10 densest cells.
	top := 0
	for k := 0; k < 10; k++ {
		bi, bv := -1, -1
		for i, v := range hist {
			if v > bv {
				bi, bv = i, v
			}
		}
		top += bv
		hist[bi] = -1
	}
	if frac := float64(top) / float64(cfg.N); frac < 0.2 {
		t.Fatalf("top-decile mass %v too uniform for a clustered set", frac)
	}
}

func TestGeneratePOIsErrors(t *testing.T) {
	if _, err := GeneratePOIs(POIConfig{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestSubsetPOIs(t *testing.T) {
	cfg := DefaultPOIConfig()
	cfg.N = 1000
	pts, _ := GeneratePOIs(cfg)
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		sub, err := SubsetPOIs(pts, frac, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := int(1000 * frac)
		if len(sub) != want {
			t.Fatalf("frac %v: got %d want %d", frac, len(sub), want)
		}
	}
	// Deterministic.
	a, _ := SubsetPOIs(pts, 0.5, 3)
	b, _ := SubsetPOIs(pts, 0.5, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("subset not deterministic")
		}
	}
	if _, err := SubsetPOIs(pts, 0, 1); err == nil {
		t.Fatal("frac=0 accepted")
	}
	if _, err := SubsetPOIs(pts, 1.5, 1); err == nil {
		t.Fatal("frac>1 accepted")
	}
}

func smallSetConfig() SetConfig {
	return SetConfig{NumTrajectories: 12, Steps: 500, Speed: 0.0004, Seed: 5}
}

func TestGenerateGeoLifeSet(t *testing.T) {
	set, err := GenerateGeoLifeSet(smallSetConfig())
	if err != nil {
		t.Fatal(err)
	}
	if set.Name != "geolife" || len(set.Trajs) != 12 {
		t.Fatalf("set %q with %d trajectories", set.Name, len(set.Trajs))
	}
	for _, tr := range set.Trajs {
		if len(tr) != 500 {
			t.Fatalf("trajectory length %d", len(tr))
		}
	}
	// Trajectories must differ from each other.
	if set.Trajs[0][10] == set.Trajs[1][10] && set.Trajs[0][100] == set.Trajs[1][100] {
		t.Fatal("trajectories identical")
	}
}

func TestGenerateOldenburgSet(t *testing.T) {
	set, err := GenerateOldenburgSet(smallSetConfig())
	if err != nil {
		t.Fatal(err)
	}
	if set.Name != "oldenburg" || len(set.Trajs) != 12 {
		t.Fatalf("set %q with %d trajectories", set.Name, len(set.Trajs))
	}
}

func TestSetErrors(t *testing.T) {
	if _, err := GenerateGeoLifeSet(SetConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := GenerateOldenburgSet(SetConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestGroups(t *testing.T) {
	set, _ := GenerateGeoLifeSet(smallSetConfig()) // 12 trajectories
	groups, err := set.Groups(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("got %d groups", len(groups))
	}
	for _, g := range groups {
		if len(g) != 3 {
			t.Fatalf("group size %d", len(g))
		}
	}
	// Growing m keeps earlier members: group 0 of size 2 is a prefix of
	// group 0 of size 3.
	small, _ := set.Groups(2, 4)
	if &small[0][0][0] != &groups[0][0][0] {
		t.Fatal("group membership not stable under m growth")
	}
	if _, err := set.Groups(5, 4); err == nil {
		t.Fatal("oversized groups accepted")
	}
	if _, err := set.Groups(0, 4); err == nil {
		t.Fatal("groupSize=0 accepted")
	}
}

func TestSetResampleSpeed(t *testing.T) {
	set, _ := GenerateGeoLifeSet(smallSetConfig())
	slow, err := set.ResampleSpeed(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(slow.Trajs) != len(set.Trajs) {
		t.Fatal("trajectory count changed")
	}
	if slow.Name == set.Name {
		t.Fatal("resampled set should be renamed")
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.DefaultM != 3 || p.TileLimit != 30 || p.SplitLevel != 2 {
		t.Fatalf("Table 2 defaults wrong: %+v", p)
	}
	if len(p.GroupSizes) != 5 || p.GroupSizes[0] != 2 || p.GroupSizes[4] != 6 {
		t.Fatal("group size range wrong")
	}
	if len(p.DataFracs) != 4 || len(p.SpeedFracs) != 4 {
		t.Fatal("fraction ranges wrong")
	}
}
