// Package workload generates the data sets and parameter grids of the
// paper's evaluation (Section 7.1):
//
//   - a POI set standing in for the 21,287-point pocketgpsworld.com
//     snapshot: a mixture of Gaussian city clusters over the unit square
//     with a uniform background, matching the density skew that drives the
//     experiments;
//   - the two trajectory sets ("GeoLife"-style and "Oldenburg"-style),
//     each 60 trajectories of 10,000+ timestamps partitioned into 10 user
//     groups as in the paper;
//   - the Table 2 parameter grid with its defaults and ranges.
package workload

import (
	"fmt"
	"math/rand"

	"mpn/internal/geom"
	"mpn/internal/mobility"
	"mpn/internal/roadnet"
)

// DefaultPOICount is N, the cardinality of the paper's real POI set.
const DefaultPOICount = 21287

// POIConfig controls POI generation.
type POIConfig struct {
	// N is the number of points.
	N int
	// Clusters is the number of Gaussian city clusters.
	Clusters int
	// Sigma is the cluster standard deviation.
	Sigma float64
	// UniformFrac is the fraction of points drawn uniformly (rural POIs).
	UniformFrac float64
	// Seed drives generation deterministically.
	Seed int64
}

// DefaultPOIConfig mimics the UK POI snapshot: strong urban clustering
// with a thin uniform background.
func DefaultPOIConfig() POIConfig {
	return POIConfig{
		N:           DefaultPOICount,
		Clusters:    40,
		Sigma:       0.03,
		UniformFrac: 0.25,
		Seed:        42,
	}
}

// GeneratePOIs returns cfg.N points in the unit square.
func GeneratePOIs(cfg POIConfig) ([]geom.Point, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("workload: N %d must be positive", cfg.N)
	}
	if cfg.Clusters <= 0 {
		cfg.Clusters = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	centers := make([]geom.Point, cfg.Clusters)
	weights := make([]float64, cfg.Clusters)
	totalW := 0.0
	for i := range centers {
		centers[i] = geom.Pt(rng.Float64(), rng.Float64())
		// Zipf-ish city sizes.
		weights[i] = 1 / float64(i+1)
		totalW += weights[i]
	}

	pts := make([]geom.Point, 0, cfg.N)
	for len(pts) < cfg.N {
		if rng.Float64() < cfg.UniformFrac {
			pts = append(pts, geom.Pt(rng.Float64(), rng.Float64()))
			continue
		}
		// Weighted cluster choice.
		target := rng.Float64() * totalW
		ci := 0
		for acc := weights[0]; acc < target && ci < cfg.Clusters-1; {
			ci++
			acc += weights[ci]
		}
		p := geom.Pt(
			centers[ci].X+rng.NormFloat64()*cfg.Sigma,
			centers[ci].Y+rng.NormFloat64()*cfg.Sigma,
		)
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			continue // resample points that fall outside the space
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// SubsetPOIs returns a deterministic random subset containing frac of the
// points, for the data-size experiments (n ∈ {0.25, 0.5, 0.75, 1.0}·N).
func SubsetPOIs(pts []geom.Point, frac float64, seed int64) ([]geom.Point, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("workload: fraction %v out of (0,1]", frac)
	}
	n := int(float64(len(pts)) * frac)
	if n < 1 {
		n = 1
	}
	if n >= len(pts) {
		out := make([]geom.Point, len(pts))
		copy(out, pts)
		return out, nil
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(pts))
	out := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		out[i] = pts[perm[i]]
	}
	return out, nil
}

// TrajectorySet is a named collection of trajectories (one workload of
// Section 7.1).
type TrajectorySet struct {
	Name  string
	Trajs []mobility.Trajectory
}

// SetConfig controls trajectory-set generation.
type SetConfig struct {
	// NumTrajectories is the set size (the paper uses 60).
	NumTrajectories int
	// Steps is the timestamp count per trajectory (>10,000 in the paper).
	Steps int
	// Speed is the speed limit V in distance per timestamp.
	Speed float64
	// Seed drives generation.
	Seed int64
}

// DefaultSetConfig mirrors the paper's workloads at full scale.
func DefaultSetConfig() SetConfig {
	return SetConfig{NumTrajectories: 60, Steps: 10000, Speed: 0.0004, Seed: 7}
}

// GenerateGeoLifeSet builds the waypoint-model trajectory set.
func GenerateGeoLifeSet(cfg SetConfig) (*TrajectorySet, error) {
	if cfg.NumTrajectories <= 0 {
		return nil, fmt.Errorf("workload: NumTrajectories %d must be positive", cfg.NumTrajectories)
	}
	set := &TrajectorySet{Name: "geolife"}
	for i := 0; i < cfg.NumTrajectories; i++ {
		wc := mobility.DefaultWaypointConfig()
		wc.Steps = cfg.Steps
		wc.Speed = cfg.Speed
		wc.Seed = cfg.Seed + int64(i)*1000003
		traj, err := mobility.GeoLifeStyle(wc)
		if err != nil {
			return nil, err
		}
		set.Trajs = append(set.Trajs, traj)
	}
	return set, nil
}

// GenerateOldenburgSet builds the network-constrained trajectory set over
// a freshly generated road network.
func GenerateOldenburgSet(cfg SetConfig) (*TrajectorySet, error) {
	if cfg.NumTrajectories <= 0 {
		return nil, fmt.Errorf("workload: NumTrajectories %d must be positive", cfg.NumTrajectories)
	}
	netCfg := roadnet.DefaultConfig()
	netCfg.Seed = cfg.Seed
	net, err := roadnet.Generate(netCfg)
	if err != nil {
		return nil, err
	}
	set := &TrajectorySet{Name: "oldenburg"}
	for i := 0; i < cfg.NumTrajectories; i++ {
		nc := mobility.DefaultNetworkConfig()
		nc.Steps = cfg.Steps
		nc.Speed = cfg.Speed
		nc.Seed = cfg.Seed + int64(i)*999983
		traj, err := mobility.NetworkTrajectory(net, nc)
		if err != nil {
			return nil, err
		}
		set.Trajs = append(set.Trajs, traj)
	}
	return set, nil
}

// Groups partitions the set into numGroups user groups of groupSize
// trajectories each, as the paper partitions its 60 trajectories into 10
// groups. Group g gets trajectories g·K … g·K+groupSize−1 where K =
// len/numGroups, so growing the group size keeps earlier members stable.
func (s *TrajectorySet) Groups(groupSize, numGroups int) ([][]mobility.Trajectory, error) {
	if groupSize <= 0 || numGroups <= 0 {
		return nil, fmt.Errorf("workload: groupSize %d / numGroups %d must be positive", groupSize, numGroups)
	}
	per := len(s.Trajs) / numGroups
	if per == 0 || groupSize > per {
		return nil, fmt.Errorf("workload: cannot form %d groups of %d from %d trajectories",
			numGroups, groupSize, len(s.Trajs))
	}
	groups := make([][]mobility.Trajectory, numGroups)
	for g := 0; g < numGroups; g++ {
		groups[g] = s.Trajs[g*per : g*per+groupSize]
	}
	return groups, nil
}

// ResampleSpeed applies mobility.ResampleSpeed to every trajectory of the
// set, returning a new set for the speed experiments.
func (s *TrajectorySet) ResampleSpeed(frac float64) (*TrajectorySet, error) {
	out := &TrajectorySet{Name: fmt.Sprintf("%s@%.2fV", s.Name, frac)}
	for _, tr := range s.Trajs {
		rs, err := mobility.ResampleSpeed(tr, frac)
		if err != nil {
			return nil, err
		}
		out.Trajs = append(out.Trajs, rs)
	}
	return out, nil
}

// Params is the Table 2 experiment grid.
type Params struct {
	// DataFracs are the data-size fractions of N.
	DataFracs []float64
	// GroupSizes are the user group sizes m.
	GroupSizes []int
	// SpeedFracs are the speed fractions of V.
	SpeedFracs []float64
	// Buffers are the buffering parameter values b (Figs. 16 and 19).
	Buffers []int
	// Defaults.
	DefaultM         int
	DefaultDataFrac  float64
	DefaultSpeedFrac float64
	DefaultBuffer    int
	TileLimit        int // α
	SplitLevel       int // L
}

// DefaultParams returns the paper's Table 2 values plus the Fig. 16 buffer
// range and the recommended b=100 default.
func DefaultParams() Params {
	return Params{
		DataFracs:        []float64{0.25, 0.5, 0.75, 1.0},
		GroupSizes:       []int{2, 3, 4, 5, 6},
		SpeedFracs:       []float64{0.25, 0.5, 0.75, 1.0},
		Buffers:          []int{10, 25, 50, 75, 100},
		DefaultM:         3,
		DefaultDataFrac:  1.0,
		DefaultSpeedFrac: 1.0,
		DefaultBuffer:    100,
		TileLimit:        30,
		SplitLevel:       2,
	}
}
