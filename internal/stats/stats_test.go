package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean=%v", got)
	}
	if got := Mean([]float64{-1, 1}); got != 0 {
		t.Fatalf("Mean=%v", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-element stddev")
	}
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("StdDev=%v want 2", got)
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("Median=%v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("Median=%v", got)
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Fatal("Median mutated input")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Fatalf("GeoMean=%v want 10", got)
	}
	if got := GeoMean([]float64{-5, 0}); got != 0 {
		t.Fatalf("GeoMean of nonpositives=%v", got)
	}
	if got := GeoMean([]float64{-5, 4}); got != 4 {
		t.Fatalf("GeoMean should skip nonpositives: %v", got)
	}
}

func TestTable(t *testing.T) {
	tab := Table{Title: "demo", Columns: []string{"x", "longcolumn"}}
	tab.AddRow("1", "2")
	tab.AddRow("333333", "4")
	out := tab.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "longcolumn") {
		t.Fatalf("table output missing parts:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Alignment: header and data rows equal width.
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("misaligned header/separator:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12345:   "12345",
		42.25:   "42.2",
		1.23456: "1.23",
		0.00123: "0.00123",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Fatalf("FormatFloat(%v)=%q want %q", in, got, want)
		}
	}
}
