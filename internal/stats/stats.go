// Package stats provides the small numeric-aggregation and table-rendering
// helpers used by the experiment harness to print the paper's figures as
// aligned text tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the median of xs (0 for an empty slice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// GeoMean returns the geometric mean of positive xs; zero/negative entries
// are skipped.
func GeoMean(xs []float64) float64 {
	s, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Table is a simple aligned text table with a heading.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// FormatFloat renders a metric value compactly (3 significant digits for
// small magnitudes, fixed for large).
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
