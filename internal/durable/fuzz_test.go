package durable

import (
	"errors"
	"os"
	"testing"

	"mpn/internal/geom"
)

// validPair returns well-formed snapshot and log bytes the fuzzer
// mutates from.
func validPair() (snap, wal []byte) {
	st := newState()
	st.POIBase = 10
	st.POIInserts = []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.25, 0.75)}
	st.POIDeleted = []int{3, 11}
	st.Groups[7] = GroupState{IDs: []uint32{1, 2}, Locs: []geom.Point{geom.Pt(0.1, 0.2), geom.Pt(0.3, 0.4)}}

	dir, err := os.MkdirTemp("", "durable-fuzz-seed")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	if err := writeSnapshot(snapName(dir, 1), st); err != nil {
		panic(err)
	}
	snap, _ = os.ReadFile(snapName(dir, 1))

	wal = []byte(walMagic)
	wal = frame(wal, appendGroup(nil, 8, []uint32{5}, []geom.Point{geom.Pt(0.9, 0.9)}))
	wal = frame(wal, appendPOIs(nil, 12, []geom.Point{geom.Pt(0.6, 0.6)}, []int{0}))
	wal = frame(wal, appendUnreg(nil, 7))
	return snap, wal
}

// FuzzWALRecover is the recovery robustness fence: for ARBITRARY
// snapshot and log bytes, Recover must never panic, must either return
// a typed error or a state that is a valid prefix of some record
// stream, and must never restore phantom state (internally inconsistent
// groups or POI ids outside the recorded id space).
func FuzzWALRecover(f *testing.F) {
	snap, wal := validPair()
	f.Add(snap, wal)
	f.Add([]byte{}, wal)
	f.Add(snap, []byte{})
	f.Add(snap[:len(snap)-3], wal[:len(wal)-5])
	f.Add([]byte(snapMagic), []byte(walMagic))

	f.Fuzz(func(t *testing.T, snapBytes, walBytes []byte) {
		dir := t.TempDir()
		if len(snapBytes) > 0 {
			if err := os.WriteFile(snapName(dir, 1), snapBytes, 0o644); err != nil {
				t.Skip()
			}
		}
		if len(walBytes) > 0 {
			if err := os.WriteFile(walName(dir, 1), walBytes, 0o644); err != nil {
				t.Skip()
			}
		}

		st, info, err := Recover(dir)
		if err != nil {
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("untyped recovery error: %v", err)
			}
			return
		}

		// Recovered state must be internally consistent — no phantom
		// shapes a replay of valid records could not have produced.
		if st == nil {
			t.Fatal("nil state without error")
		}
		for gid, g := range st.Groups {
			if len(g.IDs) == 0 || len(g.IDs) != len(g.Locs) {
				t.Fatalf("group %d inconsistent: %d ids, %d locs", gid, len(g.IDs), len(g.Locs))
			}
		}
		limit := st.poiNext()
		seen := make(map[int]bool, len(st.POIDeleted))
		for _, id := range st.POIDeleted {
			if id < 0 || id >= limit {
				t.Fatalf("phantom deleted POI %d (id space %d)", id, limit)
			}
			if seen[id] {
				t.Fatalf("duplicate deleted POI %d", id)
			}
			seen[id] = true
		}
		if st.POIBase >= 0 && len(st.POIDeleted) > st.POIBase+len(st.POIInserts) {
			t.Fatalf("more deletions (%d) than ids (%d)", len(st.POIDeleted), st.POIBase+len(st.POIInserts))
		}
		if info.LogBytes < 0 || info.TornBytes < 0 {
			t.Fatalf("negative accounting: %+v", info)
		}

		// The valid prefix must be stable: recovering again over the
		// truncated prefix yields the same state.
		if info.TornBytes > 0 && len(walBytes) > 0 {
			if err := os.WriteFile(walName(dir, 1), walBytes[:info.LogBytes], 0o644); err == nil {
				st2, info2, err := Recover(dir)
				if err != nil || info2.TornBytes != 0 || len(st2.Groups) != len(st.Groups) {
					t.Fatalf("prefix not stable: %v %+v vs %+v", err, info2, info)
				}
			}
		}
	})
}
