package durable

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mpn/internal/faultinject"
	"mpn/internal/geom"
)

// Policy selects when the log is fsynced.
type Policy int

const (
	// PolicyInterval fsyncs at most once per Config.Interval (plus on
	// clean close). A crash loses at most one interval of records.
	PolicyInterval Policy = iota
	// PolicyAlways fsyncs after every write batch. A crash loses only
	// records still queued behind the writer.
	PolicyAlways
	// PolicyOff never fsyncs during operation (clean close still
	// does). In the deterministic crash model a crash loses everything
	// appended since the log was opened or compacted.
	PolicyOff
)

// ParsePolicy parses the -fsync flag forms "always", "interval", "off".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return PolicyAlways, nil
	case "interval":
		return PolicyInterval, nil
	case "off":
		return PolicyOff, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always|interval|off)", s)
}

// Config configures a Store.
type Config struct {
	// Dir is the state directory (created if missing).
	Dir string
	// Fsync is the sync policy; the zero value is PolicyInterval.
	Fsync Policy
	// Interval is the PolicyInterval sync period. Default 10ms.
	Interval time.Duration
	// Queue bounds the hook→writer queue. When full, records are shed
	// and counted — durability never blocks the caller. Default 1024.
	Queue int
	// CompactAt is the log size (bytes) that triggers snapshot
	// compaction. Default 1MiB.
	CompactAt int64
	// CompactEvery, when positive, also compacts once the live log is
	// older than this — so a low-traffic server does not replay (or ship
	// to a follower) a WAL of unbounded age. 0 disables the age trigger.
	CompactEvery time.Duration
	// CompactAfterRecords, when positive, also compacts once this many
	// records landed in the live log regardless of byte size. 0 disables
	// the record-count trigger.
	CompactAfterRecords int
	// ReopenAttempts bounds reopen-with-backoff after a transient write
	// or sync error: the writer rebuilds a fresh snapshot+log pair from
	// its mirror up to this many times before wedging permanently.
	// Default 5.
	ReopenAttempts int
	// ReopenBackoff is the base delay before the first reopen attempt;
	// it doubles per attempt with seeded jitter. Default 5ms.
	ReopenBackoff time.Duration
	// ReopenSeed seeds the reopen jitter (deterministic tests). 0 means
	// seed 1.
	ReopenSeed int64
	// POIBase is the size of the base POI table the server boots with;
	// recovery fails if a recovered snapshot disagrees (the serving
	// config changed under the state directory). Negative accepts
	// whatever was recorded.
	POIBase int
}

// Stats is a point-in-time read of the store's counters.
type Stats struct {
	// Appended counts records committed to the log buffer.
	Appended uint64
	// Shed counts records dropped: queue full, store wedged/closed, or
	// discarded by an injected fault.
	Shed uint64
	// Syncs counts fsync calls that succeeded.
	Syncs uint64
	// Compactions counts snapshot compactions.
	Compactions uint64
	// Errors counts write/sync/compaction failures.
	Errors uint64
	// Reopens counts successful reopen-with-backoff recoveries from
	// transient I/O errors.
	Reopens uint64
	// Wedged reports that the log stopped accepting writes (torn write
	// injected, unrecovered I/O error, or Crash).
	Wedged bool
}

// Store is the durable sink for serving-state records: non-blocking
// hooks feed a bounded queue drained by one writer goroutine that
// frames, batches, writes, fsyncs per policy, and compacts the log
// into a snapshot when it grows past Config.CompactAt.
type Store struct {
	cfg Config

	ch      chan []byte
	quit    chan struct{} // closed by Close: drain, sync, exit
	crashCh chan struct{} // closed by Crash: truncate to synced, exit
	done    chan struct{} // closed when the writer has exited

	lifeMu  sync.Mutex
	stopped bool

	closed atomic.Bool
	wedged atomic.Bool

	appended, shed, syncs, compactions, errs, reopens atomic.Uint64

	// Stream subscriptions. The writer mutates the mirror and forwards
	// records under subMu, so StreamFrom can clone a state consistent
	// with a stream position.
	subMu sync.Mutex
	subs  []*StreamSub
	pos   atomic.Uint64 // monotone record position (this process only)

	// Writer-goroutine-owned state. Crash-path truncation also runs on
	// the writer goroutine (crashCh / panic recovery), never outside.
	f                *os.File
	seq              uint64
	hasSnap          bool // snap-<seq> exists on disk
	written          int64
	synced           int64
	compactAfter     int64
	lastSync         time.Time
	lastCompact      time.Time
	recsSinceCompact int
	mirror           *State
	buf              []byte
	rng              *rand.Rand
	ioErr            bool // transient I/O error: reopen-with-backoff may recover
	permWedged       bool // torn write, crash, or reopen exhausted: stay wedged
}

// Open recovers the durable state in cfg.Dir and opens the store for
// appending: the torn tail (if any) is truncated on disk and the writer
// resumes at the end of the valid prefix. The returned State is the
// caller's to keep — the store mirrors it internally — and reflects
// exactly what a post-crash restart would see.
func Open(cfg Config) (*Store, *State, RecoverInfo, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Millisecond
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 1024
	}
	if cfg.CompactAt <= 0 {
		cfg.CompactAt = 1 << 20
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, RecoverInfo{}, err
	}
	st, info, err := Recover(cfg.Dir)
	if err != nil {
		return nil, nil, info, err
	}
	if cfg.POIBase >= 0 && st.POIBase >= 0 && st.POIBase != cfg.POIBase {
		return nil, nil, info, fmt.Errorf("durable: state dir has POI base %d, server configured with %d", st.POIBase, cfg.POIBase)
	}
	if st.POIBase < 0 {
		st.POIBase = cfg.POIBase
	}

	seq := info.LogSeq
	if seq == 0 && info.SnapshotSeq == 0 {
		seq = 1
	}
	path := walName(cfg.Dir, seq)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, info, err
	}
	valid := info.LogBytes
	if fi, err := f.Stat(); err == nil && fi.Size() == 0 {
		// Fresh log: stamp the magic before any record can land.
		if _, err := f.Write([]byte(walMagic)); err != nil {
			f.Close()
			return nil, nil, info, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, info, err
		}
		valid = magicLen
	} else if info.TornBytes > 0 || valid < magicLen {
		// Enforce the torn-tail rule on disk before appending. A log
		// with a damaged magic has an empty valid prefix: restart it.
		if valid < magicLen {
			if err := f.Truncate(0); err != nil {
				f.Close()
				return nil, nil, info, err
			}
			if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
				f.Close()
				return nil, nil, info, err
			}
			valid = magicLen
		} else if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, info, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, info, err
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, nil, info, err
	}

	seed := cfg.ReopenSeed
	if seed == 0 {
		seed = 1
	}
	s := &Store{
		cfg:          cfg,
		ch:           make(chan []byte, cfg.Queue),
		quit:         make(chan struct{}),
		crashCh:      make(chan struct{}),
		done:         make(chan struct{}),
		f:            f,
		seq:          seq,
		hasSnap:      info.SnapshotSeq == seq && info.SnapshotSeq != 0,
		written:      valid,
		synced:       valid,
		compactAfter: cfg.CompactAt,
		lastSync:     time.Now(),
		lastCompact:  time.Now(),
		mirror:       st.clone(),
		rng:          rand.New(rand.NewSource(seed)),
	}
	go s.writer()
	return s, st, info, nil
}

// Clone deep-copies a State — the store's mirror, a replication seed.
func (st *State) Clone() *State {
	c := &State{
		POIBase:    st.POIBase,
		POIInserts: append([]geom.Point(nil), st.POIInserts...),
		POIDeleted: append([]int(nil), st.POIDeleted...),
		Groups:     make(map[uint32]GroupState, len(st.Groups)),
		Epoch:      st.Epoch,
	}
	for gid, g := range st.Groups {
		c.Groups[gid] = GroupState{
			IDs:  append([]uint32(nil), g.IDs...),
			Locs: append([]geom.Point(nil), g.Locs...),
		}
	}
	if len(st.deleted) > 0 {
		c.deleted = make(map[int]bool, len(st.deleted))
		for id := range st.deleted {
			c.deleted[id] = true
		}
	}
	return c
}

// clone is the package-internal alias for Clone.
func (st *State) clone() *State { return st.Clone() }

// GroupUpsert records a group registration or committed location
// update. Non-blocking: sheds when the queue is full or the store is
// wedged. The slices are copied into the encoded record immediately, so
// the caller may reuse them.
func (s *Store) GroupUpsert(gid uint32, ids []uint32, locs []geom.Point) {
	if len(ids) == 0 || len(ids) != len(locs) {
		return
	}
	s.enqueue(appendGroup(make([]byte, 0, 9+len(ids)*20), gid, ids, locs))
}

// GroupUnregister records a group teardown.
func (s *Store) GroupUnregister(gid uint32) {
	s.enqueue(appendUnreg(make([]byte, 0, 5), gid))
}

// POIBatch records one applied ApplyPOIs batch. baseExt is the size of
// the external POI id space when the batch was applied — the id its
// first insert received, whether or not it had inserts.
func (s *Store) POIBatch(baseExt int, inserts []geom.Point, deleteIDs []int) {
	if len(inserts) == 0 && len(deleteIDs) == 0 {
		return
	}
	s.enqueue(appendPOIs(make([]byte, 0, 17+len(inserts)*16+len(deleteIDs)*8), baseExt, inserts, deleteIDs))
}

// EpochRecord journals the adoption of a fencing epoch (boot,
// promotion) so recovery — and every follower seeded from this log —
// restores the fence. Zero epochs are ignored.
func (s *Store) EpochRecord(epoch uint64) {
	if epoch == 0 {
		return
	}
	s.enqueue(AppendEpochRecord(make([]byte, 0, 9), epoch))
}

// enqueue hands one encoded payload to the writer, shedding instead of
// blocking.
func (s *Store) enqueue(payload []byte) {
	if s.closed.Load() || s.wedged.Load() {
		s.shed.Add(1)
		return
	}
	select {
	case s.ch <- payload:
	default:
		s.shed.Add(1)
	}
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Appended:    s.appended.Load(),
		Shed:        s.shed.Load(),
		Syncs:       s.syncs.Load(),
		Compactions: s.compactions.Load(),
		Errors:      s.errs.Load(),
		Reopens:     s.reopens.Load(),
		Wedged:      s.wedged.Load(),
	}
}

// StreamRecord is one live log record delivered to a stream subscriber:
// the raw record payload plus its monotone position in this process's
// record stream (positions are not persistent across restarts).
type StreamRecord struct {
	Pos     uint64
	Payload []byte
}

// StreamSub is a live subscription to the record stream. Records arrive
// on C strictly in position order. A subscriber that falls more than
// its buffer behind is cut: the store marks it lagged and closes C, and
// the consumer must re-seed with a fresh StreamFrom (the replication
// shipper turns this into a follower full resync). C is also closed
// when the store's writer exits (Close, Crash, or wedge-by-panic).
type StreamSub struct {
	C <-chan StreamRecord

	s      *Store
	ch     chan StreamRecord
	lagged bool // guarded by s.subMu
	closed bool // guarded by s.subMu
}

// Lagged reports whether the subscription was cut for falling behind
// (as opposed to the store shutting down).
func (sub *StreamSub) Lagged() bool {
	sub.s.subMu.Lock()
	defer sub.s.subMu.Unlock()
	return sub.lagged
}

// Close detaches the subscription. Idempotent; safe concurrently with
// the store cutting it.
func (sub *StreamSub) Close() {
	sub.s.subMu.Lock()
	defer sub.s.subMu.Unlock()
	sub.s.dropSubLocked(sub, false)
}

// dropSubLocked closes and unregisters sub. Callers hold subMu.
func (s *Store) dropSubLocked(sub *StreamSub, lagged bool) {
	if sub.closed {
		return
	}
	sub.closed = true
	sub.lagged = lagged
	close(sub.ch)
	for i, x := range s.subs {
		if x == sub {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			break
		}
	}
}

// StreamFrom atomically clones the mirrored state and subscribes to
// every record applied after it: the returned State is consistent with
// the returned position, and the subscription's first record is
// position+1. buffer bounds the subscription channel (default 256); a
// subscriber that overflows it is cut (see StreamSub).
func (s *Store) StreamFrom(buffer int) (*State, uint64, *StreamSub) {
	if buffer <= 0 {
		buffer = 256
	}
	s.subMu.Lock()
	defer s.subMu.Unlock()
	st := s.mirror.Clone()
	pos := s.pos.Load()
	sub := &StreamSub{s: s, ch: make(chan StreamRecord, buffer)}
	sub.C = sub.ch
	s.subs = append(s.subs, sub)
	return st, pos, sub
}

// StreamPos returns the position of the last record applied to the
// mirror — what a fully caught-up subscriber has seen.
func (s *Store) StreamPos() uint64 { return s.pos.Load() }

// forwardLocked fans one record out to every subscriber, cutting any
// whose buffer is full. Callers hold subMu.
func (s *Store) forwardLocked(rec StreamRecord) {
	for i := 0; i < len(s.subs); {
		sub := s.subs[i]
		select {
		case sub.ch <- rec:
			i++
		default:
			sub.closed = true
			sub.lagged = true
			close(sub.ch)
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
		}
	}
}

// closeSubs closes every subscription on writer exit.
func (s *Store) closeSubs() {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for _, sub := range s.subs {
		if !sub.closed {
			sub.closed = true
			close(sub.ch)
		}
	}
	s.subs = nil
}

// Close drains the queue, flushes, fsyncs, and stops the writer. Safe
// to call more than once and after Crash.
func (s *Store) Close() error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.stopped {
		return nil
	}
	s.stopped = true
	s.closed.Store(true)
	close(s.quit)
	<-s.done
	return nil
}

// Crash simulates a process kill at this instant: the writer stops
// without draining and the log is truncated to the last fsynced offset
// — the deterministic model of "what the disk is guaranteed to hold".
// Records appended but not yet synced are lost, exactly as the fsync
// policy allows. Safe to call more than once and after Close (then a
// no-op: a clean close already synced everything).
func (s *Store) Crash() {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.stopped {
		return
	}
	s.stopped = true
	s.closed.Store(true)
	close(s.crashCh)
	<-s.done
}

// writer is the single goroutine owning the log file. A panic inside it
// (the WALSync failpoint models crash-before-fsync this way) is
// recovered as a crash: truncate to the synced offset and wedge.
func (s *Store) writer() {
	defer close(s.done)
	defer s.closeSubs()
	defer func() {
		if r := recover(); r != nil {
			s.errs.Add(1)
			s.permWedged = true
			s.doCrash()
		}
	}()

	var tickC <-chan time.Time
	if s.cfg.Fsync == PolicyInterval {
		t := time.NewTicker(s.cfg.Interval)
		defer t.Stop()
		tickC = t.C
	}
	var compactC <-chan time.Time
	if s.cfg.CompactEvery > 0 {
		period := s.cfg.CompactEvery / 4
		if period < time.Millisecond {
			period = time.Millisecond
		}
		ct := time.NewTicker(period)
		defer ct.Stop()
		compactC = ct.C
	}

	batch := make([][]byte, 0, 128)
	for {
		select {
		case <-s.crashCh:
			s.permWedged = true
			s.doCrash()
			return
		case <-s.quit:
			batch = batch[:0]
			for {
				select {
				case p := <-s.ch:
					batch = append(batch, p)
				default:
					s.writeBatch(batch)
					s.syncNow()
					s.f.Close()
					return
				}
			}
		case p := <-s.ch:
			batch = append(batch[:0], p)
			for len(batch) < cap(batch) {
				select {
				case q := <-s.ch:
					batch = append(batch, q)
				default:
					goto have
				}
			}
		have:
			s.writeBatch(batch)
			s.maybeSync()
			if s.maybeReopen() {
				return
			}
			if !s.wedged.Load() && s.shouldCompact() {
				s.compact()
				if s.maybeReopen() {
					return
				}
			}
		case <-tickC:
			if s.written > s.synced {
				s.syncNow()
				if s.maybeReopen() {
					return
				}
			}
		case <-compactC:
			if !s.wedged.Load() && s.shouldCompact() {
				s.compact()
				if s.maybeReopen() {
					return
				}
			}
		}
	}
}

// shouldCompact evaluates the three compaction triggers: log byte size
// (CompactAt), record count (CompactAfterRecords), and log age
// (CompactEvery). Count and age only fire when the live log holds
// records — there is nothing to fold otherwise.
func (s *Store) shouldCompact() bool {
	if s.written >= s.compactAfter {
		return true
	}
	if s.written <= magicLen {
		return false
	}
	if s.cfg.CompactAfterRecords > 0 && s.recsSinceCompact >= s.cfg.CompactAfterRecords {
		return true
	}
	if s.cfg.CompactEvery > 0 && time.Since(s.lastCompact) >= s.cfg.CompactEvery {
		return true
	}
	return false
}

// maybeReopen runs reopen-with-backoff when the store wedged on a
// transient I/O error. Returns true when the writer must exit (Close or
// Crash arrived while backing off).
func (s *Store) maybeReopen() bool {
	if !s.wedged.Load() || !s.ioErr || s.permWedged {
		return false
	}
	attempts := s.cfg.ReopenAttempts
	if attempts <= 0 {
		attempts = 5
	}
	backoff := s.cfg.ReopenBackoff
	if backoff <= 0 {
		backoff = 5 * time.Millisecond
	}
	for i := 0; i < attempts; i++ {
		d := backoff << uint(i)
		d += time.Duration(s.rng.Int63n(int64(backoff)))
		select {
		case <-s.quit:
			// Exit path: nothing more can be written; the deferred
			// close paths run in writer(). Close the file best-effort.
			s.f.Close()
			return true
		case <-s.crashCh:
			s.permWedged = true
			s.doCrash()
			return true
		case <-time.After(d):
		}
		if _, err := s.rotate(); err == nil {
			s.ioErr = false
			s.wedged.Store(false)
			s.reopens.Add(1)
			return false
		}
		s.errs.Add(1)
	}
	// Exhausted: the store stays wedged for the process lifetime.
	s.permWedged = true
	return false
}

// doCrash truncates the log to the synced offset and wedges the store.
// Runs on the writer goroutine only.
func (s *Store) doCrash() {
	s.wedged.Store(true)
	if s.f != nil {
		s.f.Truncate(s.synced)
		s.f.Sync()
		s.f.Close()
	}
}

// writeBatch frames and writes a batch of payloads, interpreting the
// WALAppend failpoint: Drop discards one record; ShortWrite commits the
// records before it, writes a partial frame (which reaches disk — the
// crash happened mid-write), and wedges the log.
func (s *Store) writeBatch(batch [][]byte) {
	if len(batch) == 0 {
		return
	}
	if s.wedged.Load() {
		s.shed.Add(uint64(len(batch)))
		return
	}
	s.buf = s.buf[:0]
	pend := 0 // batch[:pend] framed into s.buf
	for i, p := range batch {
		eff := faultinject.FireEffect(faultinject.WALAppend)
		if eff.Drop {
			s.shed.Add(1)
			continue
		}
		if eff.ShortWrite > 0 {
			s.flush(batch[:pend])
			fr := frame(nil, p)
			k := eff.ShortWrite
			if k > len(fr) {
				k = len(fr)
			}
			if _, err := s.f.Write(fr[:k]); err == nil {
				s.written += int64(k)
				s.f.Sync()
				s.synced = s.written
			}
			// A torn frame on disk is a crash artifact, not a transient
			// error: reopen must not resurrect this store.
			s.permWedged = true
			s.wedged.Store(true)
			s.shed.Add(uint64(len(batch) - i))
			return
		}
		if i != pend {
			batch[pend] = p
		}
		s.buf = frame(s.buf, p)
		pend++
	}
	s.flush(batch[:pend])
}

// flush writes the framed buffer, applies the payloads to the mirror,
// and forwards them to stream subscribers. A write error wedges the
// store — the log's tail state is unknown, so appending more would
// interleave garbage — but marks it recoverable: reopen-with-backoff
// rebuilds a fresh snapshot+log pair from the mirror. The WALWrite
// failpoint's Fail effect models exactly that transient error.
func (s *Store) flush(payloads [][]byte) {
	if len(s.buf) == 0 {
		return
	}
	if eff := faultinject.FireEffect(faultinject.WALWrite); eff.Fail {
		s.errs.Add(1)
		s.shed.Add(uint64(len(payloads)))
		s.buf = s.buf[:0]
		s.ioErr = true
		s.wedged.Store(true)
		return
	}
	n, err := s.f.Write(s.buf)
	s.written += int64(n)
	s.buf = s.buf[:0]
	if err != nil {
		s.errs.Add(1)
		s.shed.Add(uint64(len(payloads)))
		s.ioErr = true
		s.wedged.Store(true)
		return
	}
	s.subMu.Lock()
	for _, p := range payloads {
		if err := s.mirror.apply(p); err != nil {
			s.errs.Add(1)
			continue
		}
		s.forwardLocked(StreamRecord{Pos: s.pos.Add(1), Payload: p})
	}
	s.subMu.Unlock()
	s.recsSinceCompact += len(payloads)
	s.appended.Add(uint64(len(payloads)))
}

// maybeSync applies the fsync policy after a write.
func (s *Store) maybeSync() {
	switch s.cfg.Fsync {
	case PolicyAlways:
		s.syncNow()
	case PolicyInterval:
		if time.Since(s.lastSync) >= s.cfg.Interval {
			s.syncNow()
		}
	}
}

// syncNow fsyncs the log. The WALSync failpoint fires first: a stall
// models a slow disk (backpressure fills the queue and sheds), a panic
// models a crash before the data became durable.
func (s *Store) syncNow() {
	if s.wedged.Load() || s.written == s.synced {
		return
	}
	faultinject.Fire(faultinject.WALSync)
	if err := s.f.Sync(); err != nil {
		s.errs.Add(1)
		s.wedged.Store(true)
		return
	}
	s.synced = s.written
	s.syncs.Add(1)
	s.lastSync = time.Now()
}

// compact folds the mirror into a fresh snapshot and starts a new
// empty log, removing the old pair. If the snapshot was renamed into
// place but the fresh log could not be opened, the old pair is already
// superseded — appending to the old log would write records recovery
// never replays — so the store wedges with a recoverable I/O error and
// reopen-with-backoff retries the rotation. Other failures keep
// appending to the old log and retry after another CompactAt bytes.
func (s *Store) compact() {
	renamed, err := s.rotate()
	if err == nil {
		s.compactions.Add(1)
		return
	}
	s.errs.Add(1)
	if renamed {
		s.ioErr = true
		s.wedged.Store(true)
		return
	}
	s.compactAfter = s.written + s.cfg.CompactAt
}

// rotate writes the mirror as snapshot seq+1 (temp + fsync + rename),
// opens a fresh log at the same seq, and commits the store onto the new
// pair, removing the old one. It returns renamed=true once the new
// snapshot is in place — from that point the old pair is superseded
// even on error. rotate is also the reopen path after a transient I/O
// error: the mirror holds everything durable plus everything written
// since, so the rebuilt pair loses nothing the old log held.
func (s *Store) rotate() (renamed bool, err error) {
	newSeq := s.seq + 1
	tmp := filepath.Join(s.cfg.Dir, fmt.Sprintf("snap-%08d.tmp", newSeq))
	// Clone under subMu: rotate may run concurrently with StreamFrom
	// reading the mirror. The writer itself is the only mutator.
	s.subMu.Lock()
	snap := s.mirror.Clone()
	s.subMu.Unlock()
	if err := writeSnapshot(tmp, snap); err != nil {
		os.Remove(tmp)
		return false, err
	}
	if err := os.Rename(tmp, snapName(s.cfg.Dir, newSeq)); err != nil {
		os.Remove(tmp)
		return false, err
	}
	syncDir(s.cfg.Dir)

	nf, err := os.OpenFile(walName(s.cfg.Dir, newSeq), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err == nil {
		if _, werr := nf.Write([]byte(walMagic)); werr != nil {
			err = werr
		} else if werr := nf.Sync(); werr != nil {
			err = werr
		}
	}
	if err != nil {
		if nf != nil {
			nf.Close()
		}
		return true, err
	}
	syncDir(s.cfg.Dir)

	oldSeq, oldSnap := s.seq, s.hasSnap
	s.f.Close()
	s.f = nf
	s.seq = newSeq
	s.hasSnap = true
	s.written, s.synced = magicLen, magicLen
	s.compactAfter = s.cfg.CompactAt
	s.lastSync = time.Now()
	s.lastCompact = time.Now()
	s.recsSinceCompact = 0

	os.Remove(walName(s.cfg.Dir, oldSeq))
	if oldSnap {
		os.Remove(snapName(s.cfg.Dir, oldSeq))
	}
	syncDir(s.cfg.Dir)
	return true, nil
}

// writeSnapshot serializes st to path and fsyncs it: magic, then the
// framed record sequence from AppendStateFrames (meta first, epoch if
// recorded, cumulative POIs, groups sorted by gid).
func writeSnapshot(path string, st *State) error {
	buf := AppendStateFrames([]byte(snapMagic), st)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and unlinks are durable.
// Best-effort: not every platform supports it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
