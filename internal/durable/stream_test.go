package durable

import (
	"os"
	"testing"
	"time"

	"mpn/internal/faultinject"
	"mpn/internal/geom"
)

// TestReopenAfterTransientWriteError: a transient disk write error
// (WALWrite Fail) must not wedge the store for the process lifetime —
// the writer rebuilds a fresh snapshot+log pair from its mirror and
// keeps accepting records, counting the recovery in Stats.Reopens.
func TestReopenAfterTransientWriteError(t *testing.T) {
	dir := t.TempDir()
	loc := []geom.Point{geom.Pt(0.5, 0.5)}
	s, _ := openStore(t, dir, Config{
		Fsync: PolicyAlways, ReopenAttempts: 3, ReopenBackoff: time.Millisecond,
	})
	s.GroupUpsert(1, []uint32{1}, loc)
	waitFor(t, "first append", func() bool { return s.Stats().Appended == 1 })

	faultinject.Arm(faultinject.Script{
		faultinject.WALWrite: func(hit uint64) faultinject.Effect {
			if hit == 1 {
				return faultinject.Effect{Fail: true}
			}
			return faultinject.Effect{}
		},
	})
	defer faultinject.Disarm()

	// This record hits the injected write error and is shed; the store
	// must reopen rather than stay wedged.
	s.GroupUpsert(2, []uint32{2}, loc)
	waitFor(t, "reopen", func() bool {
		st := s.Stats()
		return st.Reopens == 1 && !st.Wedged
	})

	// Post-reopen records must land durably.
	s.GroupUpsert(3, []uint32{3}, loc)
	waitFor(t, "post-reopen append", func() bool { return s.Stats().Appended >= 2 })
	s.Close()

	st, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Groups[1]; !ok {
		t.Fatal("pre-fault group lost across reopen")
	}
	if _, ok := st.Groups[3]; !ok {
		t.Fatal("post-reopen group lost")
	}
	if _, ok := st.Groups[2]; ok {
		t.Fatal("shed record resurrected")
	}
}

// TestReopenExhaustionWedgesPermanently: when every reopen attempt
// fails (the state directory is gone), the store must give up after the
// configured cap and stay wedged instead of retrying forever.
func TestReopenExhaustionWedgesPermanently(t *testing.T) {
	dir := t.TempDir()
	loc := []geom.Point{geom.Pt(0.5, 0.5)}
	s, _ := openStore(t, dir, Config{
		Fsync: PolicyAlways, ReopenAttempts: 2, ReopenBackoff: time.Millisecond,
	})
	s.GroupUpsert(1, []uint32{1}, loc)
	waitFor(t, "append", func() bool { return s.Stats().Appended == 1 })

	// Every flush fails, and the missing directory makes every rotate
	// (snapshot rebuild) fail too.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.Script{
		faultinject.WALWrite: func(uint64) faultinject.Effect { return faultinject.Effect{Fail: true} },
	})
	defer faultinject.Disarm()

	s.GroupUpsert(2, []uint32{2}, loc)
	waitFor(t, "permanent wedge", func() bool {
		st := s.Stats()
		return st.Wedged && st.Errors >= 3 // 1 write fail + 2 failed reopens
	})
	if s.Stats().Reopens != 0 {
		t.Fatalf("reopen claimed success with no directory: %+v", s.Stats())
	}
	// Further records shed without waking the reopen loop again.
	before := s.Stats().Shed
	s.GroupUpsert(3, []uint32{3}, loc)
	waitFor(t, "shed while wedged", func() bool { return s.Stats().Shed > before })
	s.Close()
}

// TestCompactionTriggers: the record-count and age triggers must each
// compact on their own, far below the byte-size threshold.
func TestCompactionTriggers(t *testing.T) {
	loc := []geom.Point{geom.Pt(0.5, 0.5)}

	t.Run("record-count", func(t *testing.T) {
		dir := t.TempDir()
		s, _ := openStore(t, dir, Config{Fsync: PolicyAlways, CompactAfterRecords: 5})
		for i := 0; i < 8; i++ {
			s.GroupUpsert(uint32(i), []uint32{1}, loc)
		}
		waitFor(t, "record-count compaction", func() bool { return s.Stats().Compactions >= 1 })
		s.Close()
		st, info, err := Recover(dir)
		if err != nil || len(st.Groups) != 8 {
			t.Fatalf("after compaction: %v groups=%d", err, len(st.Groups))
		}
		if info.SnapshotSeq < 2 {
			t.Fatalf("no snapshot written: %+v", info)
		}
	})

	t.Run("age", func(t *testing.T) {
		dir := t.TempDir()
		s, _ := openStore(t, dir, Config{Fsync: PolicyAlways, CompactEvery: 20 * time.Millisecond})
		s.GroupUpsert(1, []uint32{1}, loc)
		waitFor(t, "age compaction", func() bool { return s.Stats().Compactions >= 1 })
		s.Close()
		st, info, err := Recover(dir)
		if err != nil || len(st.Groups) != 1 {
			t.Fatalf("after compaction: %v groups=%d", err, len(st.Groups))
		}
		if info.SnapshotSeq < 2 {
			t.Fatalf("no snapshot written: %+v", info)
		}
	})
}

// TestStreamFromSeedAndTail: StreamFrom's clone must be consistent with
// its position, and applying the tail records it delivers must
// reproduce exactly the state a recovery would see.
func TestStreamFromSeedAndTail(t *testing.T) {
	dir := t.TempDir()
	loc := []geom.Point{geom.Pt(0.5, 0.5)}
	s, _ := openStore(t, dir, Config{Fsync: PolicyAlways})
	for i := 1; i <= 3; i++ {
		s.GroupUpsert(uint32(i), []uint32{uint32(i)}, loc)
	}
	waitFor(t, "3 records applied", func() bool { return s.StreamPos() == 3 })

	seed, pos, sub := s.StreamFrom(16)
	defer sub.Close()
	if pos != 3 || len(seed.Groups) != 3 {
		t.Fatalf("seed: pos=%d groups=%d", pos, len(seed.Groups))
	}

	s.GroupUpsert(4, []uint32{4}, loc)
	s.GroupUnregister(1)
	want := pos
	for i := 0; i < 2; i++ {
		select {
		case rec, ok := <-sub.C:
			if !ok {
				t.Fatalf("stream closed early (lagged=%v)", sub.Lagged())
			}
			want++
			if rec.Pos != want {
				t.Fatalf("record pos %d, want %d", rec.Pos, want)
			}
			if err := seed.Apply(rec.Payload); err != nil {
				t.Fatalf("apply tail record: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("tail record never arrived")
		}
	}
	s.Close()

	st, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seed.Groups) != len(st.Groups) {
		t.Fatalf("tailed state has %d groups, recovery %d", len(seed.Groups), len(st.Groups))
	}
	for gid := range st.Groups {
		if _, ok := seed.Groups[gid]; !ok {
			t.Fatalf("tailed state missing group %d", gid)
		}
	}
}

// TestStreamLagCutsSubscriber: a subscriber that stops draining must be
// cut (channel closed, Lagged reported) instead of blocking the writer
// or buffering without bound.
func TestStreamLagCutsSubscriber(t *testing.T) {
	dir := t.TempDir()
	loc := []geom.Point{geom.Pt(0.5, 0.5)}
	s, _ := openStore(t, dir, Config{Fsync: PolicyAlways})
	_, _, sub := s.StreamFrom(1)
	for i := 0; i < 10; i++ {
		s.GroupUpsert(uint32(i), []uint32{1}, loc)
	}
	waitFor(t, "all appended", func() bool { return s.Stats().Appended == 10 })

	// Drain whatever landed; the channel must be closed after at most
	// buffer-many records.
	n := 0
	for range sub.C {
		n++
	}
	if n > 1 {
		t.Fatalf("buffered %d records past a 1-deep buffer", n)
	}
	if !sub.Lagged() {
		t.Fatal("cut subscriber not marked lagged")
	}
	s.Close()
}

// TestEpochRoundTrip: a journaled fencing epoch must survive recovery,
// compaction (the snapshot carries it), and a follower-style
// AppendStateFrames replay; a regressing epoch record must be rejected.
func TestEpochRoundTrip(t *testing.T) {
	dir := t.TempDir()
	loc := []geom.Point{geom.Pt(0.5, 0.5)}
	s, _ := openStore(t, dir, Config{Fsync: PolicyAlways, CompactAfterRecords: 3})
	s.EpochRecord(7)
	for i := 0; i < 5; i++ {
		s.GroupUpsert(uint32(i), []uint32{1}, loc)
	}
	waitFor(t, "compaction with epoch", func() bool { return s.Stats().Compactions >= 1 })
	s.Close()

	st, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 7 {
		t.Fatalf("epoch after recovery: %d", st.Epoch)
	}

	// A seed built from AppendStateFrames must restore the epoch too.
	frames := AppendStateFrames(nil, st)
	replica := NewState()
	for len(frames) > 0 {
		payload, size, ok := nextFrame(frames)
		if !ok {
			t.Fatal("torn frame in state serialization")
		}
		if err := replica.Apply(payload); err != nil {
			t.Fatalf("apply state frame: %v", err)
		}
		frames = frames[size:]
	}
	if replica.Epoch != 7 {
		t.Fatalf("epoch after state replay: %d", replica.Epoch)
	}

	// Monotonicity: a lower epoch is a corrupt or replayed-stale record.
	if err := replica.Apply(AppendEpochRecord(nil, 3)); err == nil {
		t.Fatal("regressing epoch accepted")
	}
	if err := replica.Apply(AppendEpochRecord(nil, 9)); err != nil || replica.Epoch != 9 {
		t.Fatalf("advancing epoch rejected: %v epoch=%d", err, replica.Epoch)
	}
}
