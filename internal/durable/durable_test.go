package durable

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"mpn/internal/faultinject"
	"mpn/internal/geom"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func openStore(t *testing.T, dir string, cfg Config) (*Store, *State) {
	t.Helper()
	cfg.Dir = dir
	if cfg.POIBase == 0 {
		cfg.POIBase = -1
	}
	s, st, _, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, st
}

// TestRoundTrip: a mixed record stream written through the store must
// recover exactly — group upserts (registration and update collapse to
// the last write), unregistrations, and POI batches.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, st := openStore(t, dir, Config{Fsync: PolicyAlways, POIBase: 100})
	if len(st.Groups) != 0 || st.POIBase != 100 {
		t.Fatalf("fresh state: %+v", st)
	}

	s.GroupUpsert(7, []uint32{1, 2}, []geom.Point{geom.Pt(0.1, 0.2), geom.Pt(0.3, 0.4)})
	s.GroupUpsert(9, []uint32{5}, []geom.Point{geom.Pt(0.9, 0.9)})
	s.GroupUpsert(7, []uint32{1, 2}, []geom.Point{geom.Pt(0.15, 0.25), geom.Pt(0.35, 0.45)})
	s.POIBatch(100, []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.6, 0.6)}, []int{3})
	s.POIBatch(102, nil, []int{101})
	s.GroupUnregister(9)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, info, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if info.TornBytes != 0 || info.LogRecords != 6 {
		t.Fatalf("info: %+v", info)
	}
	if len(got.Groups) != 1 {
		t.Fatalf("groups: %+v", got.Groups)
	}
	g := got.Groups[7]
	if !reflect.DeepEqual(g.IDs, []uint32{1, 2}) ||
		g.Locs[0] != geom.Pt(0.15, 0.25) || g.Locs[1] != geom.Pt(0.35, 0.45) {
		t.Fatalf("group 7: %+v", g)
	}
	if got.POIBase != 100 || len(got.POIInserts) != 2 ||
		!reflect.DeepEqual(got.POIDeleted, []int{3, 101}) {
		t.Fatalf("POIs: base=%d ins=%v del=%v", got.POIBase, got.POIInserts, got.POIDeleted)
	}
}

// TestTornTail: garbage appended to a valid log must be truncated —
// in-memory by Recover, on disk by Open — and the valid prefix kept.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, Config{Fsync: PolicyAlways})
	s.GroupUpsert(1, []uint32{1}, []geom.Point{geom.Pt(0.1, 0.1)})
	s.GroupUpsert(2, []uint32{2}, []geom.Point{geom.Pt(0.2, 0.2)})
	s.Close()

	path := walName(dir, 1)
	for _, garbage := range [][]byte{
		{0xff},                         // torn header
		{9, 0, 0, 0, 1, 2, 3, 4, 5},    // frame header promising more than present
		{1, 0, 0, 0, 0, 0, 0, 0, 0x42}, // whole frame, wrong CRC
	} {
		clean, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(garbage)
		f.Close()

		st, info, err := Recover(dir)
		if err != nil {
			t.Fatalf("Recover with garbage %v: %v", garbage, err)
		}
		if info.TornBytes != int64(len(garbage)) || len(st.Groups) != 2 {
			t.Fatalf("garbage %v: torn=%d groups=%d", garbage, info.TornBytes, len(st.Groups))
		}

		// Open must truncate the tail and keep appending cleanly.
		s2, st2 := openStore(t, dir, Config{Fsync: PolicyAlways})
		if len(st2.Groups) != 2 {
			t.Fatalf("Open after garbage: groups=%d", len(st2.Groups))
		}
		s2.GroupUpsert(3, []uint32{3}, []geom.Point{geom.Pt(0.3, 0.3)})
		waitFor(t, "append", func() bool { return s2.Stats().Appended == 1 })
		s2.Close()
		st3, info3, err := Recover(dir)
		if err != nil || info3.TornBytes != 0 || len(st3.Groups) != 3 {
			t.Fatalf("after truncate+append: %v %+v groups=%d", err, info3, len(st3.Groups))
		}
		// Drop group 3 again and restore the pre-garbage file so the
		// next garbage flavor starts from the same clean log.
		if err := os.WriteFile(path, clean, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// A destroyed magic means an empty valid prefix, not an error.
	if err := os.WriteFile(path, []byte("NOTAWAL!"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, info, err := Recover(dir)
	if err != nil || len(st.Groups) != 0 || info.LogBytes != 0 {
		t.Fatalf("bad magic: %v %+v", err, info)
	}
	s4, _ := openStore(t, dir, Config{Fsync: PolicyAlways})
	s4.GroupUpsert(9, []uint32{9}, []geom.Point{geom.Pt(0.9, 0.9)})
	waitFor(t, "append", func() bool { return s4.Stats().Appended == 1 })
	s4.Close()
	st, _, err = Recover(dir)
	if err != nil || len(st.Groups) != 1 {
		t.Fatalf("restarted log: %v groups=%d", err, len(st.Groups))
	}
}

// TestCrashFsyncSemantics pins the deterministic loss model of each
// policy: always keeps everything the writer wrote, off keeps nothing
// unsynced, and a clean Close keeps everything regardless of policy.
func TestCrashFsyncSemantics(t *testing.T) {
	loc := []geom.Point{geom.Pt(0.5, 0.5)}

	t.Run("always-survives-crash", func(t *testing.T) {
		dir := t.TempDir()
		s, _ := openStore(t, dir, Config{Fsync: PolicyAlways})
		s.GroupUpsert(1, []uint32{1}, loc)
		waitFor(t, "sync", func() bool { st := s.Stats(); return st.Appended == 1 && st.Syncs >= 1 })
		s.Crash()
		st, _, err := Recover(dir)
		if err != nil || len(st.Groups) != 1 {
			t.Fatalf("always: %v groups=%d", err, len(st.Groups))
		}
	})

	t.Run("off-loses-unsynced", func(t *testing.T) {
		dir := t.TempDir()
		s, _ := openStore(t, dir, Config{Fsync: PolicyOff})
		s.GroupUpsert(1, []uint32{1}, loc)
		waitFor(t, "append", func() bool { return s.Stats().Appended == 1 })
		s.Crash()
		st, _, err := Recover(dir)
		if err != nil || len(st.Groups) != 0 {
			t.Fatalf("off: %v groups=%d", err, len(st.Groups))
		}
	})

	t.Run("off-survives-clean-close", func(t *testing.T) {
		dir := t.TempDir()
		s, _ := openStore(t, dir, Config{Fsync: PolicyOff})
		s.GroupUpsert(1, []uint32{1}, loc)
		s.Close()
		st, _, err := Recover(dir)
		if err != nil || len(st.Groups) != 1 {
			t.Fatalf("off+close: %v groups=%d", err, len(st.Groups))
		}
	})

	t.Run("interval-bounded-loss", func(t *testing.T) {
		dir := t.TempDir()
		s, _ := openStore(t, dir, Config{Fsync: PolicyInterval, Interval: time.Millisecond})
		s.GroupUpsert(1, []uint32{1}, loc)
		waitFor(t, "interval sync", func() bool { st := s.Stats(); return st.Appended == 1 && st.Syncs >= 1 })
		s.GroupUpsert(2, []uint32{2}, loc)
		s.Crash()
		st, _, err := Recover(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := st.Groups[1]; !ok {
			t.Fatal("interval: synced group lost")
		}
		// Group 2 may or may not have made the last sync — both are
		// within the policy's contract; what is not allowed is damage.
		if len(st.Groups) > 2 {
			t.Fatalf("interval: %d groups", len(st.Groups))
		}
	})
}

// TestCompaction: once the log passes CompactAt the store must fold it
// into a snapshot, start a fresh log, delete the old pair, and recover
// the identical state from the new pair.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, Config{Fsync: PolicyAlways, CompactAt: 2048, POIBase: 10})
	for i := 0; i < 200; i++ {
		gid := uint32(i % 5)
		s.GroupUpsert(gid, []uint32{gid * 10}, []geom.Point{geom.Pt(float64(i)/200, 0.5)})
	}
	s.POIBatch(10, []geom.Point{geom.Pt(0.7, 0.7)}, []int{4})
	waitFor(t, "compaction", func() bool { return s.Stats().Compactions >= 1 })
	s.GroupUnregister(4)
	s.Close()

	snaps, wals, err := scanDir(dir)
	if err != nil || len(snaps) != 1 || len(wals) != 1 || snaps[0] != wals[0] || snaps[0] < 2 {
		t.Fatalf("dir after compaction: snaps=%v wals=%v err=%v", snaps, wals, err)
	}

	st, info, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if info.SnapshotSeq != snaps[0] {
		t.Fatalf("recovered from seq %d, want %d", info.SnapshotSeq, snaps[0])
	}
	if len(st.Groups) != 4 {
		t.Fatalf("groups after compaction: %d (%v)", len(st.Groups), st.Groups)
	}
	if st.POIBase != 10 || len(st.POIInserts) != 1 || !reflect.DeepEqual(st.POIDeleted, []int{4}) {
		t.Fatalf("POIs: %+v", st)
	}
	for gid := uint32(0); gid < 4; gid++ {
		g, ok := st.Groups[gid]
		if !ok || len(g.IDs) != 1 || g.IDs[0] != gid*10 {
			t.Fatalf("group %d: %+v ok=%v", gid, g, ok)
		}
	}
}

// TestCorruptSnapshotIsTyped: damage inside a snapshot file — which is
// written atomically and can never be a torn tail — must surface as
// ErrCorruptSnapshot, never as silently recovered phantom state.
func TestCorruptSnapshotIsTyped(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, Config{Fsync: PolicyAlways, CompactAt: 512})
	for i := 0; i < 100; i++ {
		s.GroupUpsert(uint32(i), []uint32{1}, []geom.Point{geom.Pt(0.1, 0.2)})
	}
	waitFor(t, "compaction", func() bool { return s.Stats().Compactions >= 1 })
	s.Close()

	snaps, _, _ := scanDir(dir)
	path := snapName(dir, snaps[len(snaps)-1])
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dir); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("corrupt snapshot: err=%v", err)
	}
	if _, _, _, err := Open(Config{Dir: dir, POIBase: -1}); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("Open on corrupt snapshot: err=%v", err)
	}
}

// TestWALFailpoints drives the injected fault paths: a short write
// leaves a torn frame recovery truncates; a dropped frame is shed; a
// sync panic is absorbed as crash-before-fsync (records since the last
// sync are lost, earlier ones survive, the process does not die).
func TestWALFailpoints(t *testing.T) {
	loc := []geom.Point{geom.Pt(0.5, 0.5)}

	t.Run("short-write-torn-frame", func(t *testing.T) {
		dir := t.TempDir()
		s, _ := openStore(t, dir, Config{Fsync: PolicyAlways})
		s.GroupUpsert(1, []uint32{1}, loc)
		waitFor(t, "first append", func() bool { return s.Stats().Appended == 1 })
		faultinject.Arm(faultinject.Script{
			faultinject.WALAppend: func(hit uint64) faultinject.Effect {
				if hit == 1 { // second record overall: first after arming
					return faultinject.Effect{ShortWrite: 5}
				}
				return faultinject.Effect{}
			},
		})
		defer faultinject.Disarm()
		s.GroupUpsert(2, []uint32{2}, loc)
		waitFor(t, "wedge", func() bool { return s.Stats().Wedged })
		// Wedged: later records shed, not written.
		s.GroupUpsert(3, []uint32{3}, loc)
		waitFor(t, "shed", func() bool { return s.Stats().Shed >= 2 })
		s.Close()

		st, info, err := Recover(dir)
		if err != nil {
			t.Fatal(err)
		}
		if info.TornBytes != 5 {
			t.Fatalf("torn bytes: %+v", info)
		}
		if len(st.Groups) != 1 {
			t.Fatalf("groups: %v", st.Groups)
		}
		if _, ok := st.Groups[1]; !ok {
			t.Fatal("pre-fault group lost")
		}
	})

	t.Run("drop", func(t *testing.T) {
		dir := t.TempDir()
		s, _ := openStore(t, dir, Config{Fsync: PolicyAlways})
		faultinject.Arm(faultinject.Script{
			faultinject.WALAppend: func(hit uint64) faultinject.Effect {
				if hit == 1 {
					return faultinject.Effect{Drop: true}
				}
				return faultinject.Effect{}
			},
		})
		defer faultinject.Disarm()
		s.GroupUpsert(1, []uint32{1}, loc)
		s.GroupUpsert(2, []uint32{2}, loc)
		waitFor(t, "second append", func() bool { return s.Stats().Appended == 1 })
		s.Close()
		st, _, err := Recover(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, dropped := st.Groups[1]; dropped || len(st.Groups) != 1 {
			t.Fatalf("drop: %v", st.Groups)
		}
	})

	t.Run("crash-before-fsync", func(t *testing.T) {
		dir := t.TempDir()
		s, _ := openStore(t, dir, Config{Fsync: PolicyAlways})
		s.GroupUpsert(1, []uint32{1}, loc)
		waitFor(t, "first sync", func() bool { return s.Stats().Syncs >= 1 })
		faultinject.Arm(faultinject.Script{
			faultinject.WALSync: faultinject.PanicOn(1, "crash before fsync"),
		})
		defer faultinject.Disarm()
		s.GroupUpsert(2, []uint32{2}, loc)
		waitFor(t, "wedge", func() bool { return s.Stats().Wedged })
		s.Close() // no-op drain: the writer is gone; must not hang or panic

		st, info, err := Recover(dir)
		if err != nil {
			t.Fatal(err)
		}
		if info.TornBytes != 0 {
			t.Fatalf("crash left torn bytes: %+v", info)
		}
		if _, ok := st.Groups[1]; !ok {
			t.Fatal("synced group lost")
		}
		if _, ok := st.Groups[2]; ok {
			t.Fatal("unsynced group survived a crash before fsync")
		}
	})
}

// TestShedNeverBlocks: with the writer wedged on a stalling fsync, a
// burst far beyond the queue depth must return immediately and be
// accounted as shed — durability can never block the planning path.
func TestShedNeverBlocks(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, Config{Fsync: PolicyAlways, Queue: 8})
	faultinject.Arm(faultinject.Script{
		faultinject.WALSync: faultinject.StallFirst(1000, 50*time.Millisecond),
	})
	defer faultinject.Disarm()

	loc := []geom.Point{geom.Pt(0.5, 0.5)}
	start := time.Now()
	for i := 0; i < 5000; i++ {
		s.GroupUpsert(uint32(i), []uint32{1}, loc)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("enqueue burst took %v: the hook blocked", d)
	}
	st := s.Stats()
	if st.Shed == 0 {
		t.Fatalf("no sheds under a stalled writer: %+v", st)
	}
	faultinject.Disarm()
	s.Close()
}

// TestRecoveryGoroutineAccounting is the race-enabled leak fence for
// the store lifecycle: open/append/crash/recover/reopen cycles, with
// concurrent hook traffic, must leave no writer goroutine behind.
func TestRecoveryGoroutineAccounting(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	loc := []geom.Point{geom.Pt(0.5, 0.5)}

	for cycle := 0; cycle < 5; cycle++ {
		s, st := openStore(t, dir, Config{Fsync: PolicyInterval, Interval: time.Millisecond})
		if cycle > 0 && len(st.Groups) == 0 {
			t.Fatalf("cycle %d: recovered empty state", cycle)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					s.GroupUpsert(uint32(w*1000+i%17), []uint32{uint32(w)}, loc)
				}
			}(w)
		}
		wg.Wait()
		if cycle%2 == 0 {
			waitFor(t, "a sync", func() bool { return s.Stats().Syncs >= 1 })
			s.Crash()
		} else {
			s.Close()
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d -> %d", base, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPOIBaseMismatch: reopening a state dir with a different base POI
// table must fail loudly instead of replaying ids onto the wrong table.
func TestPOIBaseMismatch(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, Config{Fsync: PolicyAlways, POIBase: 100})
	s.POIBatch(100, []geom.Point{geom.Pt(0.5, 0.5)}, nil)
	waitFor(t, "append", func() bool { return s.Stats().Appended == 1 })
	s.Close()
	if _, _, _, err := Open(Config{Dir: dir, POIBase: 50}); err == nil {
		t.Fatal("POI base mismatch accepted")
	}
	s2, st, _, err := Open(Config{Dir: dir, POIBase: 100})
	if err != nil || len(st.POIInserts) != 1 {
		t.Fatalf("matching base rejected: %v %+v", err, st)
	}
	s2.Close()
}

// TestLeftoverWALIgnored: a crash between snapshot rename and old-pair
// removal leaves the previous wal behind; recovery must replay only the
// log matching the newest snapshot.
func TestLeftoverWALIgnored(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, Config{Fsync: PolicyAlways, CompactAt: 1024})
	for i := 0; i < 100; i++ {
		s.GroupUpsert(uint32(i%3), []uint32{1}, []geom.Point{geom.Pt(0.1, 0.1)})
	}
	waitFor(t, "compaction", func() bool { return s.Stats().Compactions >= 1 })
	s.Close()

	// Fabricate the leftover: an old-seq wal holding a group that was
	// never part of the compacted state.
	stale := frame([]byte(walMagic), appendGroup(nil, 999, []uint32{9}, []geom.Point{geom.Pt(0.9, 0.9)}))
	if err := os.WriteFile(walName(dir, 1), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	st, info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, phantom := st.Groups[999]; phantom {
		t.Fatal("stale wal replayed over the snapshot")
	}
	if info.LogSeq == 1 {
		t.Fatalf("recovered against the stale log: %+v", info)
	}
	if err := os.Remove(filepath.Join(dir, "wal-00000001")); err != nil {
		t.Fatal(err)
	}
}
