package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// RecoverInfo describes what recovery found, for logging and tests.
type RecoverInfo struct {
	// SnapshotSeq is the sequence of the snapshot the state was loaded
	// from, 0 when recovery started from an empty state.
	SnapshotSeq uint64
	// LogSeq is the sequence of the live log (0 when the directory held
	// nothing; Open then starts at 1).
	LogSeq uint64
	// LogRecords counts log records replayed on top of the snapshot.
	LogRecords int
	// LogBytes is the valid log length in bytes (magic included).
	LogBytes int64
	// TornBytes counts trailing log bytes discarded by the torn-tail
	// rule (0 for a cleanly closed log).
	TornBytes int64
}

// snapName / walName build the on-disk file names for a sequence.
func snapName(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d", seq))
}
func walName(dir string, seq uint64) string { return filepath.Join(dir, fmt.Sprintf("wal-%08d", seq)) }

// scanDir lists the snapshot and log sequences present in dir.
func scanDir(dir string) (snaps, wals []uint64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		var seq uint64
		if n, _ := fmt.Sscanf(e.Name(), "snap-%d", &seq); n == 1 {
			snaps = append(snaps, seq)
		} else if n, _ := fmt.Sscanf(e.Name(), "wal-%d", &seq); n == 1 {
			wals = append(wals, seq)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return snaps, wals, nil
}

// Recover reads the durable state from dir without opening it for
// appending: the newest snapshot (validated end to end) plus a replay
// of its log, truncated in memory at the first bad frame. It never
// panics on any directory contents. A missing or empty directory
// recovers the empty state. A damaged snapshot is a typed error
// (ErrCorruptSnapshot): snapshots are written atomically, so damage
// there is not a torn tail and recovery refuses to guess.
//
// Recover is read-only; it does not truncate the torn tail on disk
// (Open does, before appending).
func Recover(dir string) (*State, RecoverInfo, error) {
	st := newState()
	var info RecoverInfo
	snaps, wals, err := scanDir(dir)
	if os.IsNotExist(err) {
		return st, info, nil
	}
	if err != nil {
		return nil, info, err
	}

	if len(snaps) > 0 {
		seq := snaps[len(snaps)-1]
		if err := loadSnapshot(snapName(dir, seq), st); err != nil {
			return nil, info, err
		}
		info.SnapshotSeq = seq
	}

	// The live log is the one matching the snapshot seq; with no
	// snapshot it is the lowest log present (normally wal-00000001).
	// Logs from other sequences are compaction leftovers: a crash
	// between renaming the snapshot and removing the old pair leaves
	// the old wal behind, already folded into the snapshot.
	logSeq := info.SnapshotSeq
	if len(snaps) == 0 && len(wals) > 0 {
		logSeq = wals[0]
	}
	info.LogSeq = logSeq
	path := walName(dir, logSeq)
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return st, info, nil
	}
	if err != nil {
		return nil, info, err
	}
	valid, n := replayLog(b, st)
	info.LogRecords = n
	info.LogBytes = valid
	info.TornBytes = int64(len(b)) - valid
	return st, info, nil
}

// loadSnapshot reads and validates one snapshot file into st. Any
// defect — bad magic, torn frame, trailing garbage, invalid record, a
// non-meta first record — is ErrCorruptSnapshot.
func loadSnapshot(path string, st *State) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	if len(b) < magicLen || string(b[:magicLen]) != snapMagic {
		return fmt.Errorf("%w: bad magic in %s", ErrCorruptSnapshot, filepath.Base(path))
	}
	b = b[magicLen:]
	first := true
	for len(b) > 0 {
		payload, size, ok := nextFrame(b)
		if !ok {
			return fmt.Errorf("%w: torn frame in %s", ErrCorruptSnapshot, filepath.Base(path))
		}
		if first && payload[0] != RecMeta {
			return fmt.Errorf("%w: %s does not start with a meta record", ErrCorruptSnapshot, filepath.Base(path))
		}
		first = false
		if err := st.apply(payload); err != nil {
			return fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
		}
		b = b[size:]
	}
	if first {
		return fmt.Errorf("%w: %s holds no records", ErrCorruptSnapshot, filepath.Base(path))
	}
	return nil
}

// replayLog applies the valid prefix of log bytes b (magic included) to
// st and returns the prefix length and the number of records applied.
// The torn-tail rule: a missing or damaged magic means an empty valid
// prefix; the first short, oversized, CRC-failing, or semantically
// invalid frame ends the replay there. Records beyond a bad frame are
// unreachable by construction — the writer appends sequentially, so
// bytes after a torn frame are from a dead write.
func replayLog(b []byte, st *State) (valid int64, records int) {
	if len(b) < magicLen || string(b[:magicLen]) != walMagic {
		return 0, 0
	}
	off := int64(magicLen)
	b = b[magicLen:]
	for len(b) > 0 {
		payload, size, ok := nextFrame(b)
		if !ok {
			break
		}
		if err := st.apply(payload); err != nil {
			break
		}
		off += int64(size)
		records++
		b = b[size:]
	}
	return off, records
}
