// Package durable is the server's crash-safety subsystem: a CRC-framed,
// append-only write-ahead log plus periodic snapshot compaction for the
// authoritative serving state — group registrations, membership,
// last-committed member locations, and ApplyPOIs batches — with a
// recovery path that replays snapshot+log and tolerates a torn tail.
//
// On-disk layout (one directory per server):
//
//	snap-<seq>  MPNSNAP1 magic, then CRC-framed records (meta first)
//	wal-<seq>   MPNWAL01 magic, then CRC-framed records, append-only
//
// Every frame is [u32 len][u32 crc32(payload)][payload], little-endian.
// A snapshot is written whole to a temp file, fsynced, and renamed into
// place, so a snapshot is either entirely valid or evidence of real
// corruption (ErrCorruptSnapshot). The log is append-only and may end
// mid-frame after a crash: recovery truncates at the first bad frame
// (the torn-tail rule) and never panics on any input bytes.
//
// The Store accepts state-change records through non-blocking hooks
// backed by a bounded queue and a single writer goroutine, so
// durability can never block planning: when the queue is full the
// record is shed and counted. The fsync policy is configurable
// (always | interval | off); the deterministic crash model is that
// Crash() truncates the log to the last fsynced offset, giving each
// policy exact, testable loss semantics without OS interposition.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"mpn/internal/geom"
)

// Typed recovery errors. Recover wraps these with positional detail;
// test with errors.Is.
var (
	// ErrCorruptSnapshot means a snapshot file failed its magic, a
	// frame CRC, or record validation. Snapshots are written atomically
	// (temp + fsync + rename), so this is real damage, not a torn tail.
	ErrCorruptSnapshot = errors.New("durable: corrupt snapshot")
	// ErrBadRecord means a CRC-valid frame decoded to a record that is
	// internally inconsistent (unknown type, short payload, phantom POI
	// ids). In a log this truncates the tail; in a snapshot it is
	// wrapped in ErrCorruptSnapshot.
	ErrBadRecord = errors.New("durable: invalid record")
)

// Record type bytes (payload[0]).
const (
	recGroup  = 1 // group upsert: registration or committed update
	recUnreg  = 2 // group unregistration
	recPOIs   = 3 // one ApplyPOIs batch (external ids)
	recMeta   = 4 // snapshot header: POI base table size
	maxRecord = 1 << 26
)

const (
	snapMagic = "MPNSNAP1"
	walMagic  = "MPNWAL01"
	magicLen  = 8
	frameHdr  = 8 // u32 len + u32 crc
)

// GroupState is one group's durable state: member ids and their last
// committed locations, parallel slices sorted as registered.
type GroupState struct {
	IDs  []uint32
	Locs []geom.Point
}

// State is the recovered (or mirrored) authoritative state. POI
// mutations are tracked relative to the base table the server boots
// with: POIInserts carry external ids POIBase..POIBase+len-1, and
// POIDeleted lists tombstoned external ids in ascending order.
type State struct {
	POIBase    int // -1 until the first meta/POI record fixes it
	POIInserts []geom.Point
	POIDeleted []int
	Groups     map[uint32]GroupState

	deleted map[int]bool // working set behind POIDeleted
}

// newState returns an empty state with an unknown POI base.
func newState() *State {
	return &State{POIBase: -1, Groups: make(map[uint32]GroupState)}
}

// poiNext returns the next expected external insert id.
func (st *State) poiNext() int {
	base := st.POIBase
	if base < 0 {
		base = 0
	}
	return base + len(st.POIInserts)
}

// appendGroup encodes a group upsert record.
func appendGroup(buf []byte, gid uint32, ids []uint32, locs []geom.Point) []byte {
	buf = append(buf, recGroup)
	buf = binary.LittleEndian.AppendUint32(buf, gid)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = binary.LittleEndian.AppendUint32(buf, id)
	}
	for _, p := range locs {
		buf = binary.LittleEndian.AppendUint64(buf, floatBits(p.X))
		buf = binary.LittleEndian.AppendUint64(buf, floatBits(p.Y))
	}
	return buf
}

// appendUnreg encodes a group unregistration record.
func appendUnreg(buf []byte, gid uint32) []byte {
	buf = append(buf, recUnreg)
	return binary.LittleEndian.AppendUint32(buf, gid)
}

// appendPOIs encodes one ApplyPOIs batch. baseExt is the external id
// the batch's first insert received — equivalently, the size of the
// external id space when the batch was applied — which recovery uses to
// validate that replay stays aligned with the original id assignment.
func appendPOIs(buf []byte, baseExt int, inserts []geom.Point, deleteIDs []int) []byte {
	buf = append(buf, recPOIs)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(baseExt))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(inserts)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(deleteIDs)))
	for _, p := range inserts {
		buf = binary.LittleEndian.AppendUint64(buf, floatBits(p.X))
		buf = binary.LittleEndian.AppendUint64(buf, floatBits(p.Y))
	}
	for _, id := range deleteIDs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
	}
	return buf
}

// appendMeta encodes the snapshot header record.
func appendMeta(buf []byte, poiBase int) []byte {
	buf = append(buf, recMeta)
	return binary.LittleEndian.AppendUint64(buf, uint64(poiBase))
}

// floatBits / fromBits convert between float64 and its IEEE-754 bits.
func floatBits(f float64) uint64 { return math.Float64bits(f) }
func fromBits(b uint64) float64  { return math.Float64frombits(b) }

// apply decodes one record payload and applies it to st, validating
// every length and id so corrupted-but-CRC-valid bytes can never
// restore phantom state. Returns ErrBadRecord (wrapped) on anything
// inconsistent.
func (st *State) apply(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("%w: empty payload", ErrBadRecord)
	}
	typ, body := payload[0], payload[1:]
	switch typ {
	case recGroup:
		if len(body) < 8 {
			return fmt.Errorf("%w: short group record", ErrBadRecord)
		}
		gid := binary.LittleEndian.Uint32(body)
		n := int(binary.LittleEndian.Uint32(body[4:]))
		if n <= 0 || len(body) != 8+n*4+n*16 {
			return fmt.Errorf("%w: group record size %d for %d members", ErrBadRecord, len(body), n)
		}
		ids := make([]uint32, n)
		locs := make([]geom.Point, n)
		off := 8
		for i := range ids {
			ids[i] = binary.LittleEndian.Uint32(body[off:])
			off += 4
		}
		for i := range locs {
			locs[i].X = fromBits(binary.LittleEndian.Uint64(body[off:]))
			locs[i].Y = fromBits(binary.LittleEndian.Uint64(body[off+8:]))
			off += 16
		}
		st.Groups[gid] = GroupState{IDs: ids, Locs: locs}
	case recUnreg:
		if len(body) != 4 {
			return fmt.Errorf("%w: short unregister record", ErrBadRecord)
		}
		delete(st.Groups, binary.LittleEndian.Uint32(body))
	case recPOIs:
		if len(body) < 16 {
			return fmt.Errorf("%w: short POI record", ErrBadRecord)
		}
		baseExt := int(binary.LittleEndian.Uint64(body))
		nIns := int(binary.LittleEndian.Uint32(body[8:]))
		nDel := int(binary.LittleEndian.Uint32(body[12:]))
		if nIns < 0 || nDel < 0 || len(body) != 16+nIns*16+nDel*8 {
			return fmt.Errorf("%w: POI record size %d for %d+%d ops", ErrBadRecord, len(body), nIns, nDel)
		}
		if st.POIBase < 0 && len(st.POIInserts) == 0 {
			// No snapshot fixed the base: the first batch does (its
			// baseExt is the table length when it was applied).
			st.POIBase = baseExt
		}
		if baseExt != st.poiNext() {
			return fmt.Errorf("%w: POI batch base %d, expected %d", ErrBadRecord, baseExt, st.poiNext())
		}
		off := 16
		ins := make([]geom.Point, nIns)
		for i := range ins {
			ins[i].X = fromBits(binary.LittleEndian.Uint64(body[off:]))
			ins[i].Y = fromBits(binary.LittleEndian.Uint64(body[off+8:]))
			off += 16
		}
		dels := make([]int, nDel)
		for i := range dels {
			dels[i] = int(binary.LittleEndian.Uint64(body[off:]))
			off += 8
		}
		// Validate deletes against the id space before mutating anything.
		limit := st.poiNext() + nIns
		for _, id := range dels {
			if id < 0 || id >= limit {
				return fmt.Errorf("%w: delete of phantom POI %d (id space %d)", ErrBadRecord, id, limit)
			}
			if st.deleted[id] {
				return fmt.Errorf("%w: double delete of POI %d", ErrBadRecord, id)
			}
		}
		st.POIInserts = append(st.POIInserts, ins...)
		if st.deleted == nil {
			st.deleted = make(map[int]bool)
		}
		for _, id := range dels {
			st.deleted[id] = true
			st.POIDeleted = append(st.POIDeleted, id)
		}
	case recMeta:
		if len(body) != 8 {
			return fmt.Errorf("%w: short meta record", ErrBadRecord)
		}
		base := int(binary.LittleEndian.Uint64(body))
		if base < 0 || base > 1<<40 {
			return fmt.Errorf("%w: absurd POI base %d", ErrBadRecord, base)
		}
		if st.POIBase >= 0 && st.POIBase != base {
			return fmt.Errorf("%w: conflicting POI base %d vs %d", ErrBadRecord, base, st.POIBase)
		}
		st.POIBase = base
	default:
		return fmt.Errorf("%w: unknown record type %d", ErrBadRecord, typ)
	}
	return nil
}

// frame appends one CRC frame around payload to buf.
func frame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// nextFrame parses the frame at the head of b. It returns the payload
// and the total frame size, or ok=false when the bytes do not form a
// whole valid frame (short header, short body, absurd length, or CRC
// mismatch) — the torn-tail condition.
func nextFrame(b []byte) (payload []byte, size int, ok bool) {
	if len(b) < frameHdr {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n <= 0 || n > maxRecord || len(b) < frameHdr+n {
		return nil, 0, false
	}
	payload = b[frameHdr : frameHdr+n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[4:]) {
		return nil, 0, false
	}
	return payload, frameHdr + n, true
}
