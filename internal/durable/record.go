// Package durable is the server's crash-safety subsystem: a CRC-framed,
// append-only write-ahead log plus periodic snapshot compaction for the
// authoritative serving state — group registrations, membership,
// last-committed member locations, and ApplyPOIs batches — with a
// recovery path that replays snapshot+log and tolerates a torn tail.
//
// On-disk layout (one directory per server):
//
//	snap-<seq>  MPNSNAP1 magic, then CRC-framed records (meta first)
//	wal-<seq>   MPNWAL01 magic, then CRC-framed records, append-only
//
// Every frame is [u32 len][u32 crc32(payload)][payload], little-endian.
// A snapshot is written whole to a temp file, fsynced, and renamed into
// place, so a snapshot is either entirely valid or evidence of real
// corruption (ErrCorruptSnapshot). The log is append-only and may end
// mid-frame after a crash: recovery truncates at the first bad frame
// (the torn-tail rule) and never panics on any input bytes.
//
// The Store accepts state-change records through non-blocking hooks
// backed by a bounded queue and a single writer goroutine, so
// durability can never block planning: when the queue is full the
// record is shed and counted. The fsync policy is configurable
// (always | interval | off); the deterministic crash model is that
// Crash() truncates the log to the last fsynced offset, giving each
// policy exact, testable loss semantics without OS interposition.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"mpn/internal/geom"
)

// Typed recovery errors. Recover wraps these with positional detail;
// test with errors.Is.
var (
	// ErrCorruptSnapshot means a snapshot file failed its magic, a
	// frame CRC, or record validation. Snapshots are written atomically
	// (temp + fsync + rename), so this is real damage, not a torn tail.
	ErrCorruptSnapshot = errors.New("durable: corrupt snapshot")
	// ErrBadRecord means a CRC-valid frame decoded to a record that is
	// internally inconsistent (unknown type, short payload, phantom POI
	// ids). In a log this truncates the tail; in a snapshot it is
	// wrapped in ErrCorruptSnapshot.
	ErrBadRecord = errors.New("durable: invalid record")
)

// Record type bytes (payload[0]). Exported so stream consumers (the
// replication tailer) can dispatch on decoded records.
const (
	RecGroup byte = 1 // group upsert: registration or committed update
	RecUnreg byte = 2 // group unregistration
	RecPOIs  byte = 3 // one ApplyPOIs batch (external ids)
	RecMeta  byte = 4 // snapshot header: POI base table size
	RecEpoch byte = 5 // fencing epoch adopted (monotone, never decreases)
)

// MaxRecord bounds one record payload; a frame claiming more is corrupt.
const MaxRecord = 1 << 26

const (
	snapMagic = "MPNSNAP1"
	walMagic  = "MPNWAL01"
	magicLen  = 8
	frameHdr  = 8 // u32 len + u32 crc
)

// GroupState is one group's durable state: member ids and their last
// committed locations, parallel slices sorted as registered.
type GroupState struct {
	IDs  []uint32
	Locs []geom.Point
}

// State is the recovered (or mirrored) authoritative state. POI
// mutations are tracked relative to the base table the server boots
// with: POIInserts carry external ids POIBase..POIBase+len-1, and
// POIDeleted lists tombstoned external ids in ascending order.
type State struct {
	POIBase    int // -1 until the first meta/POI record fixes it
	POIInserts []geom.Point
	POIDeleted []int
	Groups     map[uint32]GroupState
	// Epoch is the fencing epoch last recorded (0 = never recorded): a
	// node refuses to serve writes for any epoch below one it has seen,
	// which is what keeps a deposed primary from accepting registrations
	// after its follower promoted.
	Epoch uint64

	deleted map[int]bool // working set behind POIDeleted
}

// NewState returns an empty state with an unknown POI base — the seed
// for replays and replication mirrors.
func NewState() *State {
	return &State{POIBase: -1, Groups: make(map[uint32]GroupState)}
}

// newState is the package-internal alias.
func newState() *State { return NewState() }

// poiNext returns the next expected external insert id.
func (st *State) poiNext() int {
	base := st.POIBase
	if base < 0 {
		base = 0
	}
	return base + len(st.POIInserts)
}

// appendGroup encodes a group upsert record.
func appendGroup(buf []byte, gid uint32, ids []uint32, locs []geom.Point) []byte {
	buf = append(buf, RecGroup)
	buf = binary.LittleEndian.AppendUint32(buf, gid)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = binary.LittleEndian.AppendUint32(buf, id)
	}
	for _, p := range locs {
		buf = binary.LittleEndian.AppendUint64(buf, floatBits(p.X))
		buf = binary.LittleEndian.AppendUint64(buf, floatBits(p.Y))
	}
	return buf
}

// appendUnreg encodes a group unregistration record.
func appendUnreg(buf []byte, gid uint32) []byte {
	buf = append(buf, RecUnreg)
	return binary.LittleEndian.AppendUint32(buf, gid)
}

// appendPOIs encodes one ApplyPOIs batch. baseExt is the external id
// the batch's first insert received — equivalently, the size of the
// external id space when the batch was applied — which recovery uses to
// validate that replay stays aligned with the original id assignment.
func appendPOIs(buf []byte, baseExt int, inserts []geom.Point, deleteIDs []int) []byte {
	buf = append(buf, RecPOIs)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(baseExt))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(inserts)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(deleteIDs)))
	for _, p := range inserts {
		buf = binary.LittleEndian.AppendUint64(buf, floatBits(p.X))
		buf = binary.LittleEndian.AppendUint64(buf, floatBits(p.Y))
	}
	for _, id := range deleteIDs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
	}
	return buf
}

// appendMeta encodes the snapshot header record.
func appendMeta(buf []byte, poiBase int) []byte {
	buf = append(buf, RecMeta)
	return binary.LittleEndian.AppendUint64(buf, uint64(poiBase))
}

// AppendEpochRecord encodes a fencing-epoch record payload. The store's
// EpochRecord hook journals one whenever a node adopts a new epoch —
// boot, promotion — so recovery (and every follower seeded from this
// log) restores the fence.
func AppendEpochRecord(buf []byte, epoch uint64) []byte {
	buf = append(buf, RecEpoch)
	return binary.LittleEndian.AppendUint64(buf, epoch)
}

// floatBits / fromBits convert between float64 and its IEEE-754 bits.
func floatBits(f float64) uint64 { return math.Float64bits(f) }
func fromBits(b uint64) float64  { return math.Float64frombits(b) }

// Record is one structurally decoded log record, for consumers that
// need the fields rather than the state fold: the replication tailer
// dispatches decoded records into the serving engine. Which fields are
// meaningful depends on Type.
type Record struct {
	Type byte // RecGroup, RecUnreg, RecPOIs, RecMeta, or RecEpoch

	GID  uint32       // RecGroup, RecUnreg
	IDs  []uint32     // RecGroup
	Locs []geom.Point // RecGroup

	POIBase int          // RecPOIs (the batch's baseExt), RecMeta
	Inserts []geom.Point // RecPOIs
	Deletes []int        // RecPOIs

	Epoch uint64 // RecEpoch
}

// DecodeRecord parses one record payload, validating every length and
// range that can be checked without state. Stateful validation — POI
// base alignment, phantom deletes, epoch monotonicity — happens in
// State.Apply. Returns ErrBadRecord (wrapped) on anything inconsistent.
func DecodeRecord(payload []byte) (Record, error) {
	var rec Record
	if len(payload) == 0 {
		return rec, fmt.Errorf("%w: empty payload", ErrBadRecord)
	}
	rec.Type = payload[0]
	body := payload[1:]
	switch rec.Type {
	case RecGroup:
		if len(body) < 8 {
			return rec, fmt.Errorf("%w: short group record", ErrBadRecord)
		}
		rec.GID = binary.LittleEndian.Uint32(body)
		n := int(binary.LittleEndian.Uint32(body[4:]))
		if n <= 0 || len(body) != 8+n*4+n*16 {
			return rec, fmt.Errorf("%w: group record size %d for %d members", ErrBadRecord, len(body), n)
		}
		rec.IDs = make([]uint32, n)
		rec.Locs = make([]geom.Point, n)
		off := 8
		for i := range rec.IDs {
			rec.IDs[i] = binary.LittleEndian.Uint32(body[off:])
			off += 4
		}
		for i := range rec.Locs {
			rec.Locs[i].X = fromBits(binary.LittleEndian.Uint64(body[off:]))
			rec.Locs[i].Y = fromBits(binary.LittleEndian.Uint64(body[off+8:]))
			off += 16
		}
	case RecUnreg:
		if len(body) != 4 {
			return rec, fmt.Errorf("%w: short unregister record", ErrBadRecord)
		}
		rec.GID = binary.LittleEndian.Uint32(body)
	case RecPOIs:
		if len(body) < 16 {
			return rec, fmt.Errorf("%w: short POI record", ErrBadRecord)
		}
		rec.POIBase = int(binary.LittleEndian.Uint64(body))
		nIns := int(binary.LittleEndian.Uint32(body[8:]))
		nDel := int(binary.LittleEndian.Uint32(body[12:]))
		if nIns < 0 || nDel < 0 || len(body) != 16+nIns*16+nDel*8 {
			return rec, fmt.Errorf("%w: POI record size %d for %d+%d ops", ErrBadRecord, len(body), nIns, nDel)
		}
		if rec.POIBase < 0 || rec.POIBase > 1<<40 {
			return rec, fmt.Errorf("%w: absurd POI batch base %d", ErrBadRecord, rec.POIBase)
		}
		off := 16
		rec.Inserts = make([]geom.Point, nIns)
		for i := range rec.Inserts {
			rec.Inserts[i].X = fromBits(binary.LittleEndian.Uint64(body[off:]))
			rec.Inserts[i].Y = fromBits(binary.LittleEndian.Uint64(body[off+8:]))
			off += 16
		}
		rec.Deletes = make([]int, nDel)
		for i := range rec.Deletes {
			rec.Deletes[i] = int(binary.LittleEndian.Uint64(body[off:]))
			off += 8
		}
	case RecMeta:
		if len(body) != 8 {
			return rec, fmt.Errorf("%w: short meta record", ErrBadRecord)
		}
		rec.POIBase = int(binary.LittleEndian.Uint64(body))
		if rec.POIBase < 0 || rec.POIBase > 1<<40 {
			return rec, fmt.Errorf("%w: absurd POI base %d", ErrBadRecord, rec.POIBase)
		}
	case RecEpoch:
		if len(body) != 8 {
			return rec, fmt.Errorf("%w: short epoch record", ErrBadRecord)
		}
		rec.Epoch = binary.LittleEndian.Uint64(body)
		if rec.Epoch == 0 {
			return rec, fmt.Errorf("%w: zero fencing epoch", ErrBadRecord)
		}
	default:
		return rec, fmt.Errorf("%w: unknown record type %d", ErrBadRecord, rec.Type)
	}
	return rec, nil
}

// Apply decodes one record payload and applies it to st, validating
// every length and id so corrupted-but-CRC-valid bytes can never
// restore phantom state. Returns ErrBadRecord (wrapped) on anything
// inconsistent.
func (st *State) Apply(payload []byte) error {
	rec, err := DecodeRecord(payload)
	if err != nil {
		return err
	}
	return st.ApplyRecord(rec)
}

// ApplyRecord folds one decoded record into st with the stateful half
// of validation (POI base alignment, phantom/double deletes, epoch
// monotonicity).
func (st *State) ApplyRecord(rec Record) error {
	switch rec.Type {
	case RecGroup:
		st.Groups[rec.GID] = GroupState{IDs: rec.IDs, Locs: rec.Locs}
	case RecUnreg:
		delete(st.Groups, rec.GID)
	case RecPOIs:
		if st.POIBase < 0 && len(st.POIInserts) == 0 {
			// No snapshot fixed the base: the first batch does (its
			// baseExt is the table length when it was applied).
			st.POIBase = rec.POIBase
		}
		if rec.POIBase != st.poiNext() {
			return fmt.Errorf("%w: POI batch base %d, expected %d", ErrBadRecord, rec.POIBase, st.poiNext())
		}
		// Validate deletes against the id space before mutating anything.
		limit := st.poiNext() + len(rec.Inserts)
		for _, id := range rec.Deletes {
			if id < 0 || id >= limit {
				return fmt.Errorf("%w: delete of phantom POI %d (id space %d)", ErrBadRecord, id, limit)
			}
			if st.deleted[id] {
				return fmt.Errorf("%w: double delete of POI %d", ErrBadRecord, id)
			}
		}
		st.POIInserts = append(st.POIInserts, rec.Inserts...)
		if st.deleted == nil {
			st.deleted = make(map[int]bool)
		}
		for _, id := range rec.Deletes {
			st.deleted[id] = true
			st.POIDeleted = append(st.POIDeleted, id)
		}
	case RecMeta:
		if st.POIBase >= 0 && st.POIBase != rec.POIBase {
			return fmt.Errorf("%w: conflicting POI base %d vs %d", ErrBadRecord, rec.POIBase, st.POIBase)
		}
		st.POIBase = rec.POIBase
	case RecEpoch:
		if rec.Epoch < st.Epoch {
			return fmt.Errorf("%w: fencing epoch went backwards (%d after %d)", ErrBadRecord, rec.Epoch, st.Epoch)
		}
		st.Epoch = rec.Epoch
	default:
		return fmt.Errorf("%w: unknown record type %d", ErrBadRecord, rec.Type)
	}
	return nil
}

// apply is the package-internal alias for Apply.
func (st *State) apply(payload []byte) error { return st.Apply(payload) }

// frame appends one CRC frame around payload to buf.
func frame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// AppendFrame appends one CRC frame around payload to buf — the exact
// wire shape the WAL, snapshots, and the replication stream all share.
func AppendFrame(buf, payload []byte) []byte { return frame(buf, payload) }

// AppendStateFrames serializes st as a framed record sequence: meta
// first (the snapshot invariant recovery checks), then the fencing
// epoch when one was ever recorded, the cumulative POI batch, and every
// group sorted by gid. It is the body of a snapshot file and the seed
// of a replication stream — a fresh State that applies these frames in
// order is equivalent to st.
func AppendStateFrames(buf []byte, st *State) []byte {
	base := st.POIBase
	if base < 0 {
		base = 0
	}
	buf = frame(buf, appendMeta(nil, base))
	if st.Epoch > 0 {
		buf = frame(buf, AppendEpochRecord(nil, st.Epoch))
	}
	if len(st.POIInserts) > 0 || len(st.POIDeleted) > 0 {
		dels := append([]int(nil), st.POIDeleted...)
		sort.Ints(dels)
		buf = frame(buf, appendPOIs(nil, base, st.POIInserts, dels))
	}
	gids := make([]uint32, 0, len(st.Groups))
	for gid := range st.Groups {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		g := st.Groups[gid]
		buf = frame(buf, appendGroup(nil, gid, g.IDs, g.Locs))
	}
	return buf
}

// nextFrame parses the frame at the head of b. It returns the payload
// and the total frame size, or ok=false when the bytes do not form a
// whole valid frame (short header, short body, absurd length, or CRC
// mismatch) — the torn-tail condition.
func nextFrame(b []byte) (payload []byte, size int, ok bool) {
	if len(b) < frameHdr {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n <= 0 || n > MaxRecord || len(b) < frameHdr+n {
		return nil, 0, false
	}
	payload = b[frameHdr : frameHdr+n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[4:]) {
		return nil, 0, false
	}
	return payload, frameHdr + n, true
}
