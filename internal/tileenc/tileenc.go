// Package tileenc implements the compact wire encoding of tile-based safe
// regions used for the communication-cost accounting of the experiments
// (the "lossless compression" of the authors' preliminary ICDE'13 work
// [12], reproduced here as a grid/varint codec).
//
// A tile region produced by Tile-MSR consists of axis-aligned squares
// whose side lengths are δ/2^j for a handful of levels j. The codec
// quantizes all coordinates onto a lattice of pitch δ·2⁻¹⁶ anchored at the
// region's bounding-box corner and encodes each tile as three varints
// (side length and zig-zag position deltas in lattice units) after a
// 25-byte header. Quantization is inward (Min is rounded up, Max down), so
// the decoded region is always a subset of the original — the safe-region
// guarantee is preserved — with per-coordinate error below δ·2⁻¹⁶. The
// codec is idempotent: encoding a decoded region reproduces it exactly.
//
// A typical tile costs 3–6 bytes versus 24 bytes (three float64 values)
// for the naive representation the paper charges to the Circle method.
package tileenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"mpn/internal/geom"
)

// Version identifies the wire format.
const Version = 1

// pitchShift fixes the lattice pitch at delta·2^-pitchShift.
const pitchShift = 16

// Errors returned by Decode.
var (
	ErrCorrupt = errors.New("tileenc: corrupt payload")
	ErrVersion = errors.New("tileenc: unsupported version")
)

// Encode serializes the tiles of a safe region. delta is the base tile
// side length δ of the producing Tile-MSR run; it anchors the quantization
// lattice. Encoding an empty region yields a valid payload that decodes to
// an empty region.
func Encode(tiles []geom.Rect, delta float64) []byte {
	if delta <= 0 || math.IsInf(delta, 0) || math.IsNaN(delta) {
		delta = 1
	}
	pitch := delta / (1 << pitchShift)

	// Lattice origin: the lower-left corner of the bounding box.
	var origin geom.Point
	if len(tiles) > 0 {
		origin = tiles[0].Min
		for _, t := range tiles[1:] {
			origin.X = math.Min(origin.X, t.Min.X)
			origin.Y = math.Min(origin.Y, t.Min.Y)
		}
	}

	type qtile struct {
		ix, iy, w, h int64
	}
	qs := make([]qtile, 0, len(tiles))
	for _, t := range tiles {
		// Inward quantization keeps the decoded tile inside the original.
		ix := int64(math.Ceil((t.Min.X - origin.X) / pitch))
		iy := int64(math.Ceil((t.Min.Y - origin.Y) / pitch))
		ax := int64(math.Floor((t.Max.X - origin.X) / pitch))
		ay := int64(math.Floor((t.Max.Y - origin.Y) / pitch))
		if ax < ix {
			ax = ix
		}
		if ay < iy {
			ay = iy
		}
		qs = append(qs, qtile{ix: ix, iy: iy, w: ax - ix, h: ay - iy})
	}
	// Position-sorted delta encoding compresses the spiral tile order into
	// small varints.
	sort.Slice(qs, func(i, j int) bool {
		if qs[i].iy != qs[j].iy {
			return qs[i].iy < qs[j].iy
		}
		return qs[i].ix < qs[j].ix
	})

	buf := make([]byte, 0, 32+6*len(qs))
	buf = append(buf, 'T', Version)
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(origin.X))
	buf = append(buf, scratch[:]...)
	binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(origin.Y))
	buf = append(buf, scratch[:]...)
	binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(pitch))
	buf = append(buf, scratch[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(qs)))

	var px, py, pw, ph int64
	for _, q := range qs {
		buf = binary.AppendVarint(buf, q.ix-px)
		buf = binary.AppendVarint(buf, q.iy-py)
		buf = binary.AppendVarint(buf, q.w-pw)
		buf = binary.AppendVarint(buf, q.h-ph)
		px, py, pw, ph = q.ix, q.iy, q.w, q.h
	}
	return buf
}

// Decode reconstructs the (inward-quantized) tiles from an Encode payload.
func Decode(data []byte) ([]geom.Rect, error) {
	if len(data) < 2 || data[0] != 'T' {
		return nil, ErrCorrupt
	}
	if data[1] != Version {
		return nil, ErrVersion
	}
	rest := data[2:]
	if len(rest) < 24 {
		return nil, ErrCorrupt
	}
	ox := math.Float64frombits(binary.LittleEndian.Uint64(rest[0:8]))
	oy := math.Float64frombits(binary.LittleEndian.Uint64(rest[8:16]))
	pitch := math.Float64frombits(binary.LittleEndian.Uint64(rest[16:24]))
	if pitch <= 0 || math.IsNaN(pitch) || math.IsInf(pitch, 0) {
		return nil, ErrCorrupt
	}
	rest = rest[24:]

	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	rest = rest[n:]
	if count > uint64(len(rest))+1 {
		// Each tile needs at least 4 varint bytes; a wildly large count is
		// corruption, not a huge region.
		return nil, ErrCorrupt
	}

	tiles := make([]geom.Rect, 0, count)
	var px, py, pw, ph int64
	for i := uint64(0); i < count; i++ {
		var vals [4]int64
		for k := 0; k < 4; k++ {
			v, n := binary.Varint(rest)
			if n <= 0 {
				return nil, ErrCorrupt
			}
			vals[k] = v
			rest = rest[n:]
		}
		px += vals[0]
		py += vals[1]
		pw += vals[2]
		ph += vals[3]
		if pw < 0 || ph < 0 {
			return nil, fmt.Errorf("%w: negative tile extent", ErrCorrupt)
		}
		tiles = append(tiles, geom.Rect{
			Min: geom.Pt(ox+float64(px)*pitch, oy+float64(py)*pitch),
			Max: geom.Pt(ox+float64(px+pw)*pitch, oy+float64(py+ph)*pitch),
		})
	}
	return tiles, nil
}

// EncodedSize returns the payload size in bytes without materializing it
// twice; it simply encodes (the codec is cheap and allocation is the
// dominant cost the caller avoids by calling Encode once instead).
func EncodedSize(tiles []geom.Rect, delta float64) int {
	return len(Encode(tiles, delta))
}

// NaiveSize returns the byte size of the uncompressed representation the
// paper charges for squares: three float64 values (center x, center y,
// side) per tile.
func NaiveSize(tiles []geom.Rect) int {
	return 24 * len(tiles)
}
