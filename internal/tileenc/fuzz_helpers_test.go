package tileenc

import "mpn/internal/geom"

// pt aliases the geometry constructor for the robustness tests.
func pt(x, y float64) geom.Point { return geom.Pt(x, y) }
