package tileenc

import (
	"math"
	"math/rand"
	"testing"

	"mpn/internal/geom"
)

// regionLike builds a plausible Tile-MSR output: a spiral of δ tiles around
// a center with some quarter tiles mixed in.
func regionLike(center geom.Point, delta float64, n int, rng *rand.Rand) []geom.Rect {
	tiles := make([]geom.Rect, 0, n)
	for i := 0; i < n; i++ {
		gx := float64(rng.Intn(9) - 4)
		gy := float64(rng.Intn(9) - 4)
		c := geom.Pt(center.X+gx*delta, center.Y+gy*delta)
		side := delta
		if rng.Intn(3) == 0 {
			side = delta / 2
			c = c.Add(geom.Pt(delta/4, -delta/4))
		}
		tiles = append(tiles, geom.RectAround(c, side))
	}
	return tiles
}

func TestRoundTripSubsetAndError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		delta := rng.Float64()*0.01 + 1e-4
		tiles := regionLike(geom.Pt(rng.Float64(), rng.Float64()), delta, 1+rng.Intn(40), rng)
		enc := Encode(tiles, delta)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != len(tiles) {
			t.Fatalf("decoded %d tiles want %d", len(dec), len(tiles))
		}
		pitch := delta / (1 << 16)
		// Every decoded tile must be inside some original tile, within a
		// pitch of the same geometry.
		for _, d := range dec {
			matched := false
			for _, o := range tiles {
				if o.Min.X-1e-12 <= d.Min.X && d.Max.X <= o.Max.X+1e-12 &&
					o.Min.Y-1e-12 <= d.Min.Y && d.Max.Y <= o.Max.Y+1e-12 &&
					math.Abs(o.Min.X-d.Min.X) <= 2*pitch+1e-12 &&
					math.Abs(o.Max.Y-d.Max.Y) <= 2*pitch+1e-12 {
					matched = true
					break
				}
			}
			if !matched {
				t.Fatalf("decoded tile %v matches no original", d)
			}
		}
	}
}

func TestIdempotence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		delta := rng.Float64()*0.01 + 1e-4
		tiles := regionLike(geom.Pt(rng.Float64(), rng.Float64()), delta, 1+rng.Intn(30), rng)
		once, err := Decode(Encode(tiles, delta))
		if err != nil {
			t.Fatal(err)
		}
		twice, err := Decode(Encode(once, delta))
		if err != nil {
			t.Fatal(err)
		}
		if len(once) != len(twice) {
			t.Fatalf("idempotence: %d vs %d tiles", len(once), len(twice))
		}
		// Set-based comparison: quantization jitter may reorder tiles that
		// tie on a sort key, so match each re-encoded tile to its nearest
		// first-pass tile.
		tol := delta / (1 << 14)
		for _, tw := range twice {
			best := math.Inf(1)
			for _, on := range once {
				d := math.Max(
					math.Max(math.Abs(on.Min.X-tw.Min.X), math.Abs(on.Min.Y-tw.Min.Y)),
					math.Max(math.Abs(on.Max.X-tw.Max.X), math.Abs(on.Max.Y-tw.Max.Y)),
				)
				if d < best {
					best = d
				}
			}
			if best > tol {
				t.Fatalf("re-encoded tile %v drifted by %v", tw, best)
			}
		}
	}
}

func TestEmptyRegion(t *testing.T) {
	enc := Encode(nil, 0.01)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Fatalf("empty region decoded to %d tiles", len(dec))
	}
}

func TestCompressionBeatsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	delta := 0.003
	tiles := regionLike(geom.Pt(0.5, 0.5), delta, 30, rng)
	enc := EncodedSize(tiles, delta)
	naive := NaiveSize(tiles)
	if enc >= naive {
		t.Fatalf("encoded %dB not smaller than naive %dB", enc, naive)
	}
	// Per-tile marginal cost should be small (≤ 8 bytes amortized).
	marginal := float64(enc-26) / float64(len(tiles))
	if marginal > 8 {
		t.Fatalf("marginal per-tile cost %.1fB too large", marginal)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{'X', Version},
		{'T', 99},
		{'T', Version, 1, 2, 3}, // truncated header
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Fatalf("case %d: corrupt payload accepted", i)
		}
	}
	// Truncated tile stream.
	enc := Encode([]geom.Rect{geom.RectAround(geom.Pt(0, 0), 1)}, 1)
	if _, err := Decode(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Garbage count.
	bad := Encode(nil, 1)
	bad = append(bad[:26], 0xff, 0xff, 0xff, 0xff)
	if _, err := Decode(bad); err == nil {
		t.Fatal("garbage count accepted")
	}
}

func TestDegenerateDelta(t *testing.T) {
	tiles := []geom.Rect{geom.RectAround(geom.Pt(0.5, 0.5), 0.1)}
	for _, d := range []float64{0, -1, math.Inf(1), math.NaN()} {
		enc := Encode(tiles, d)
		if _, err := Decode(enc); err != nil {
			t.Fatalf("delta=%v: %v", d, err)
		}
	}
}

func TestVersionGuard(t *testing.T) {
	enc := Encode(nil, 1)
	enc[1] = Version + 1
	if _, err := Decode(enc); err != ErrVersion {
		t.Fatalf("want ErrVersion got %v", err)
	}
}

func BenchmarkEncode30Tiles(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tiles := regionLike(geom.Pt(0.5, 0.5), 0.003, 30, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(tiles, 0.003)
	}
}

func BenchmarkDecode30Tiles(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	enc := Encode(regionLike(geom.Pt(0.5, 0.5), 0.003, 30, rng), 0.003)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
