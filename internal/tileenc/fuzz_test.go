package tileenc

import (
	"math/rand"
	"testing"
)

// Decode must never panic or allocate absurdly on arbitrary input — only
// return an error or a well-formed region. This is a randomized robustness
// sweep (stdlib-only stand-in for a fuzz target).
func TestDecodeRandomBytesRobust(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20000; trial++ {
		n := rng.Intn(120)
		buf := make([]byte, n)
		rng.Read(buf)
		if rng.Intn(2) == 0 && n >= 2 {
			// Bias toward plausible headers to reach deeper code paths.
			buf[0] = 'T'
			buf[1] = Version
		}
		tiles, err := Decode(buf)
		if err != nil {
			continue
		}
		for _, tile := range tiles {
			if !tile.IsValid() {
				t.Fatalf("decoded invalid tile %v from random input", tile)
			}
		}
	}
}

// Mutating single bytes of a valid payload must either fail cleanly or
// produce valid tiles.
func TestDecodeBitflipRobust(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tiles := regionLike(pt(0.5, 0.5), 0.01, 20, rng)
	valid := Encode(tiles, 0.01)
	for i := range valid {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), valid...)
			mut[i] ^= flip
			decoded, err := Decode(mut)
			if err != nil {
				continue
			}
			for _, tile := range decoded {
				if !tile.IsValid() {
					t.Fatalf("byte %d flip %x: invalid tile %v", i, flip, tile)
				}
			}
		}
	}
}
