package tileenc

import (
	"math/rand"
	"testing"

	"mpn/internal/geom"
)

// FuzzDecode is the native fuzz target over the codec: Decode must never
// panic on arbitrary input — only return an error or well-formed tiles —
// and whatever decodes must survive a re-encode/re-decode round trip
// with its tile count intact. The round trip cannot assert exact
// geometric equality: the re-encode anchors a fresh quantization lattice
// (different δ, origin at the decoded bounding box), so inward rounding
// may legitimately shrink tiles by up to one lattice pitch — only
// decodability, validity, and the count are invariant. The seed corpus
// covers the interesting shapes: empty payloads, bare headers, single
// tiles, realistic multi-level regions, and an empty region. CI runs a
// short `go test -fuzz=FuzzDecode` smoke on top of the seeds.
func FuzzDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(9))
	f.Add([]byte{})
	f.Add([]byte{'T'})
	f.Add([]byte{'T', Version})
	f.Add([]byte{'T', Version + 1, 0, 0})
	f.Add(Encode(nil, 1))
	f.Add(Encode([]geom.Rect{{Min: pt(0.1, 0.1), Max: pt(0.2, 0.2)}}, 0.1))
	f.Add(Encode(regionLike(pt(0.5, 0.5), 0.01, 20, rng), 0.01))
	f.Add(Encode(regionLike(pt(0.25, 0.75), 0.003, 60, rng), 0.003))
	f.Fuzz(func(t *testing.T, data []byte) {
		tiles, err := Decode(data)
		if err != nil {
			return
		}
		for _, tile := range tiles {
			if !tile.IsValid() {
				t.Fatalf("decoded invalid tile %v", tile)
			}
		}
		// Round trip on decoded output: re-encoding with a derived delta
		// must stay decodable with the tile count preserved (see the
		// target comment for why exact geometry is not asserted).
		delta := 0.0
		for _, tile := range tiles {
			if w := tile.Width(); w > delta {
				delta = w
			}
		}
		if delta <= 0 {
			delta = 1
		}
		again, err := Decode(Encode(tiles, delta))
		if err != nil {
			t.Fatalf("re-encode of decoded tiles failed to decode: %v", err)
		}
		if len(again) != len(tiles) {
			t.Fatalf("re-encode changed tile count %d → %d", len(tiles), len(again))
		}
	})
}

// Decode must never panic or allocate absurdly on arbitrary input — only
// return an error or a well-formed region. This is a randomized robustness
// sweep predating the FuzzDecode target; it keeps the deterministic
// 20k-trial coverage in every plain `go test` run.
func TestDecodeRandomBytesRobust(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20000; trial++ {
		n := rng.Intn(120)
		buf := make([]byte, n)
		rng.Read(buf)
		if rng.Intn(2) == 0 && n >= 2 {
			// Bias toward plausible headers to reach deeper code paths.
			buf[0] = 'T'
			buf[1] = Version
		}
		tiles, err := Decode(buf)
		if err != nil {
			continue
		}
		for _, tile := range tiles {
			if !tile.IsValid() {
				t.Fatalf("decoded invalid tile %v from random input", tile)
			}
		}
	}
}

// Mutating single bytes of a valid payload must either fail cleanly or
// produce valid tiles.
func TestDecodeBitflipRobust(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tiles := regionLike(pt(0.5, 0.5), 0.01, 20, rng)
	valid := Encode(tiles, 0.01)
	for i := range valid {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), valid...)
			mut[i] ^= flip
			decoded, err := Decode(mut)
			if err != nil {
				continue
			}
			for _, tile := range decoded {
				if !tile.IsValid() {
					t.Fatalf("byte %d flip %x: invalid tile %v", i, flip, tile)
				}
			}
		}
	}
}
