package proto

import (
	"errors"
	"testing"
	"time"

	"mpn/internal/core"
	"mpn/internal/geom"
)

func TestAsyncEndToEnd(t *testing.T) {
	// The submit hook adapts the synchronous test planner into the
	// SubmitFunc + Deliver shape the engine-backed server uses:
	// submissions return immediately and results come back on a separate
	// goroutine. The closure captures coord, assigned below, before any
	// connection can trigger a replan.
	plan := testPlan(t, "tile")
	var coord *Coordinator
	coord = NewAsyncCoordinator(func(gid uint32, ids []uint32, users []geom.Point) (geom.Point, []core.SafeRegion, []uint64, bool) {
		go func() {
			meeting, regions, err := plan(users)
			coord.Deliver(gid, ids, meeting, regions, err)
		}()
		return geom.Point{}, nil, nil, false
	}, nil)

	u1 := newTestUser(t, coord, 5, 0, geom.Pt(0.30, 0.30))
	u2 := newTestUser(t, coord, 5, 1, geom.Pt(0.35, 0.32))
	for i, u := range []*testUser{u1, u2} {
		if err := u.client.Register(2); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
	}
	first1, first2 := u1.waitNotify(t), u2.waitNotify(t)
	if first1 != first2 {
		t.Fatalf("members notified of different meeting points: %v %v", first1, first2)
	}
	if u1.client.NeedsUpdate(u1.loc) {
		t.Fatal("fresh region misses its own user")
	}

	// An escape report flows submit → deliver → notify.
	u1.setLoc(geom.Pt(0.72, 0.70))
	u2.setLoc(geom.Pt(0.36, 0.33))
	if err := u1.client.Report(); err != nil {
		t.Fatal(err)
	}
	second1, second2 := u1.waitNotify(t), u2.waitNotify(t)
	if second1 != second2 {
		t.Fatalf("second round mismatch: %v %v", second1, second2)
	}
	if coord.NumGroups() != 1 {
		t.Fatalf("groups=%d", coord.NumGroups())
	}
}

// TestSubmitInlineResult covers the registration fast path: the backend
// returns the plan synchronously (ok=true) and members are notified
// inline, with no Deliver round trip.
func TestSubmitInlineResult(t *testing.T) {
	plan := testPlan(t, "tile")
	coord := NewAsyncCoordinator(func(gid uint32, ids []uint32, users []geom.Point) (geom.Point, []core.SafeRegion, []uint64, bool) {
		meeting, regions, err := plan(users)
		if err != nil {
			return geom.Point{}, nil, nil, false
		}
		return meeting, regions, nil, true
	}, nil)
	u1 := newTestUser(t, coord, 4, 0, geom.Pt(0.3, 0.3))
	u2 := newTestUser(t, coord, 4, 1, geom.Pt(0.34, 0.31))
	if err := u1.client.Register(2); err != nil {
		t.Fatal(err)
	}
	if err := u2.client.Register(2); err != nil {
		t.Fatal(err)
	}
	if p1, p2 := u1.waitNotify(t), u2.waitNotify(t); p1 != p2 {
		t.Fatalf("inline delivery diverged: %v %v", p1, p2)
	}
	if u1.client.NeedsUpdate(geom.Pt(0.3, 0.3)) {
		t.Fatal("inline region misses its own user")
	}
}

func TestDeliverStaleOrUnknownDropped(t *testing.T) {
	var coord *Coordinator
	coord = NewAsyncCoordinator(func(gid uint32, ids []uint32, users []geom.Point) (geom.Point, []core.SafeRegion, []uint64, bool) {
		return geom.Point{}, nil, nil, false
	}, nil)

	// Unknown group: no-op.
	coord.Deliver(99, nil, geom.Pt(0.5, 0.5), nil, nil)

	u1 := newTestUser(t, coord, 1, 0, geom.Pt(0.3, 0.3))
	if err := u1.client.Register(1); err != nil {
		t.Fatal(err)
	}
	// The submit hook above dropped the replan; deliver stale results:
	// one whose region count doesn't match the membership, one computed
	// for a different member set (same size, different ids).
	deadline := time.Now().Add(5 * time.Second)
	for coord.NumGroups() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("group never formed")
		}
		time.Sleep(time.Millisecond)
	}
	coord.Deliver(1, nil, geom.Pt(0.5, 0.5), make([]core.SafeRegion, 3), nil)
	coord.Deliver(1, []uint32{7}, geom.Pt(0.5, 0.5),
		[]core.SafeRegion{core.CircleRegion(geom.Pt(0.5, 0.5), 0.1)}, nil)
	select {
	case p := <-u1.notifyCh:
		t.Fatalf("stale delivery notified members: %v", p)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestDeliverError(t *testing.T) {
	var coord *Coordinator
	coord = NewAsyncCoordinator(func(gid uint32, ids []uint32, users []geom.Point) (geom.Point, []core.SafeRegion, []uint64, bool) {
		go func() {
			coord.Deliver(gid, nil, geom.Point{}, nil, errors.New("planner exploded"))
		}()
		return geom.Point{}, nil, nil, false
	}, nil)

	u1 := newTestUser(t, coord, 2, 0, geom.Pt(0.3, 0.3))
	if err := u1.client.Register(1); err != nil {
		t.Fatal(err)
	}
	// The client surfaces the server error by stopping Run.
	select {
	case err := <-u1.runErr:
		if err == nil {
			t.Fatal("client stopped without the server error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no error notification")
	}
}
