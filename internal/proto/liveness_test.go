package proto

import (
	"io"
	"log"
	"net"
	"testing"
	"time"

	"mpn/internal/geom"
)

// A client that never reads must not wedge the coordinator: notifications
// queue in the member outbox (dropping when full) while the lock stays
// available. This is the regression test for the synchronous-transport
// deadlock where replanLocked blocked on a pipe write while holding the
// coordinator mutex.
func TestSlowClientDoesNotBlockCoordinator(t *testing.T) {
	coord := NewCoordinator(testPlan(t, "circle"), nil)
	// Kicks off: this test is about lock liveness under sustained drops,
	// so the slow client must survive the whole flood.
	coord.SetSlowClientLimit(-1)
	serverSide, clientSide := net.Pipe()
	go func() { _ = coord.ServeConn(serverSide) }()
	defer clientSide.Close()

	// Single-user group: registration triggers an immediate notify, and
	// every report triggers another. The client deliberately never reads,
	// so the member writer blocks on its first frame and the outbox
	// absorbs the rest.
	if err := Write(clientSide, Message{
		Type: TRegister, Group: 1, User: 0, GroupSize: 1, Loc: geom.Pt(0.2, 0.2),
	}); err != nil {
		t.Fatal(err)
	}
	waitGroups(t, coord, 1)

	// Flood far more reports than the outbox holds. Each Write is
	// consumed by ServeConn's read loop; if the coordinator ever held its
	// lock while writing, this loop would deadlock.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 2*outboxSize; i++ {
			if err := Write(clientSide, Message{
				Type: TReport, Group: 1, User: 0,
				Loc: geom.Pt(0.2+float64(i)*1e-5, 0.2),
			}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator wedged by a non-reading client")
	}
	// The coordinator lock must still be available.
	if got := coord.NumGroups(); got != 1 {
		t.Fatalf("groups=%d", got)
	}
}

func waitGroups(t *testing.T, c *Coordinator, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.NumGroups() != want {
		if time.Now().After(deadline) {
			t.Fatalf("groups never reached %d", want)
		}
		time.Sleep(time.Millisecond)
	}
}

// Outbox overflow drops frames rather than blocking the sender.
func TestMemberOutboxOverflow(t *testing.T) {
	// A writer whose peer never reads.
	serverSide, clientSide := net.Pipe()
	defer clientSide.Close()
	defer serverSide.Close()
	m := newMember(1, serverSide, log.New(io.Discard, "", 0))
	defer func() {
		// close() must return even with a blocked writer once the peer
		// pipe is closed.
		clientSide.Close()
		m.close()
	}()

	// First send is picked up by the writer goroutine and blocks on the
	// pipe; the following outboxSize sends fill the queue; one more must
	// be rejected.
	accepted := 0
	for i := 0; i < outboxSize+8; i++ {
		if m.send(Message{Type: TNotify, Group: 1, User: 1}) {
			accepted++
		}
	}
	if accepted > outboxSize+1 {
		t.Fatalf("accepted %d frames into a %d-slot outbox", accepted, outboxSize)
	}
	if accepted < outboxSize {
		t.Fatalf("outbox rejected too early: %d", accepted)
	}
}
