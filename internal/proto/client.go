package proto

import (
	"encoding/binary"
	"errors"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mpn/internal/core"
	"mpn/internal/faultinject"
	"mpn/internal/geom"
)

// LocFunc supplies the client's current location when the server probes.
type LocFunc func() geom.Point

// NotifyFunc receives each fresh meeting point and safe region.
type NotifyFunc func(meeting geom.Point, region core.SafeRegion)

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithoutDelta disables delta negotiation: the client registers without
// FlagDeltaCapable, so the server ships every notification as a full
// TNotify frame. The reassembled plan is identical either way; the
// differential fences compare a full client against a delta client to
// prove it.
func WithoutDelta() ClientOption { return func(c *Client) { c.delta = false } }

// WithoutCompactProbe disables compact-probe negotiation: the client
// registers without FlagCompactProbe and the server probes it with
// classic TProbe frames. The exchange is semantically identical; only
// the wire layout differs.
func WithoutCompactProbe() ClientOption { return func(c *Client) { c.compact = false } }

// GroupNotifyFunc receives each observer update: the group's current
// meeting point and every member's safe region keyed by user id. The map
// is the callback's to keep.
type GroupNotifyFunc func(meeting geom.Point, regions map[uint32]core.SafeRegion)

// AsObserver subscribes the client to the group instead of joining it
// (FlagObserver): the client never reports or answers probes, and every
// notification delivers the complete set of member regions, retained and
// readable through GroupRegions/MemberRegion. Combine with
// WithGroupNotify to stream updates.
func AsObserver() ClientOption { return func(c *Client) { c.observer = true } }

// WithGroupNotify installs the observer-side update callback (see
// GroupNotifyFunc). Only observer clients invoke it.
func WithGroupNotify(fn GroupNotifyFunc) ClientOption {
	return func(c *Client) { c.onGroup = fn }
}

// PeerUpdateFunc receives each TPeers advertisement the server pushes:
// the fencing epoch that published the list and the cluster's
// client-facing addresses, primary first. The slice is the callback's to
// keep.
type PeerUpdateFunc func(epoch uint64, peers []string)

// WithPeerUpdate installs the peer-advertisement callback: whenever the
// server pushes a TPeers frame (after registration, or alongside a write
// refusal on a non-primary node), fn receives it. ReconnectClient wires
// this internally to steer its redial list through a failover.
func WithPeerUpdate(fn PeerUpdateFunc) ClientOption {
	return func(c *Client) { c.onPeers = fn }
}

// WithHeartbeat enables the client's liveness machinery: Run sends a
// TPing every interval, and — when the connection supports read
// deadlines — arms a read deadline of 2.5× the interval before every
// frame read. A healthy server answers each ping with a TPong, so the
// deadline keeps sliding; a silently dead peer (half-open TCP, wedged
// middlebox) fails the read within ~2.5 intervals and Run returns the
// timeout instead of blocking forever. Non-positive intervals disable
// the heartbeat (the default).
func WithHeartbeat(interval time.Duration) ClientOption {
	return func(c *Client) { c.heartbeat = interval }
}

// Client is the user-side state machine: it registers, answers probes
// with the location supplier, reports escapes, and surfaces notifications.
//
// By default the client negotiates the delta protocol (FlagDeltaCapable):
// a delta-enabled server then sends only changed regions, and the client
// reassembles the current plan from its retained region. A delta frame
// it cannot apply — no retained region yet, or an epoch that does not
// match its retained one — is answered with TNack, and the server
// repairs the client with a full TNotify; the plan exposed through
// Meeting/Region/NeedsUpdate is byte-identical to the full protocol's at
// every step.
type Client struct {
	conn      io.ReadWriter
	group     uint32
	user      uint32
	delta     bool
	compact   bool
	observer  bool
	heartbeat time.Duration

	pongs atomic.Uint64

	loc      LocFunc
	onNotify NotifyFunc
	onGroup  GroupNotifyFunc
	onPeers  PeerUpdateFunc

	wmu sync.Mutex

	mu      sync.RWMutex
	meeting geom.Point
	region  core.SafeRegion
	haveReg bool
	epoch   uint64
	// obsRegions is the observer-mode retained state: every member's
	// last delivered region, replaced wholesale on DeltaReset frames.
	obsRegions map[uint32]core.SafeRegion
}

// NewClient wires a client over conn. loc must be non-nil; onNotify may be
// nil. Delta notifications are negotiated by default; pass WithoutDelta
// to force the full-frame protocol.
func NewClient(conn io.ReadWriter, group, user uint32, loc LocFunc, onNotify NotifyFunc, opts ...ClientOption) (*Client, error) {
	if loc == nil {
		return nil, errors.New("proto: nil location supplier")
	}
	c := &Client{conn: conn, group: group, user: user, delta: true, compact: true, loc: loc, onNotify: onNotify}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

func (c *Client) write(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return Write(c.conn, m)
}

// Register joins the group (groupSize = m).
func (c *Client) Register(groupSize uint32) error {
	var flags uint8
	if c.delta {
		flags |= FlagDeltaCapable
	}
	if c.compact {
		flags |= FlagCompactProbe
	}
	if c.observer {
		flags |= FlagObserver
	}
	return c.write(Message{
		Type: TRegister, Group: c.group, User: c.user,
		GroupSize: groupSize, Flags: flags, Loc: c.loc(),
	})
}

// Report sends the user's current location to the server (step 1 — call
// when NeedsUpdate fires).
func (c *Client) Report() error {
	return c.write(Message{Type: TReport, Group: c.group, User: c.user, Loc: c.loc()})
}

// NeedsUpdate reports whether the location escapes the current safe
// region. Before the first notification it returns false (the client has
// nothing to compare against).
func (c *Client) NeedsUpdate(loc geom.Point) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if !c.haveReg {
		return false
	}
	return !c.region.Contains(loc)
}

// Meeting returns the last notified meeting point.
func (c *Client) Meeting() geom.Point {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.meeting
}

// Region returns the last notified safe region.
func (c *Client) Region() core.SafeRegion {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.region
}

// Epoch returns the epoch of the retained region (0 before the first
// notification) — observability for tests and monitoring.
func (c *Client) Epoch() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epoch
}

// Pongs returns how many heartbeat replies the client has received —
// observability for liveness tests and monitoring.
func (c *Client) Pongs() uint64 { return c.pongs.Load() }

// GroupRegions returns a copy of the observer's retained member regions
// (user id → region). Empty before the first observer frame, and on
// non-observer clients.
func (c *Client) GroupRegions() map[uint32]core.SafeRegion {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[uint32]core.SafeRegion, len(c.obsRegions))
	for uid, r := range c.obsRegions {
		out[uid] = r
	}
	return out
}

// MemberRegion returns the observer's retained region for one member
// and whether it is known.
func (c *Client) MemberRegion(uid uint32) (core.SafeRegion, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.obsRegions[uid]
	return r, ok
}

// Run processes server frames until EOF or error. Run answers probes
// automatically (in the layout they arrived in, so a classic server
// keeps its classic replies); notifications — full or delta — update
// Meeting/Region and invoke the callback. With WithHeartbeat it also
// pings the server and arms read deadlines. It returns nil on clean EOF.
func (c *Client) Run() error {
	if c.heartbeat > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go c.pinger(stop)
	}
	deadliner, _ := c.conn.(interface{ SetReadDeadline(time.Time) error })
	for {
		faultinject.Fire(faultinject.ClientRead)
		if c.heartbeat > 0 && deadliner != nil {
			_ = deadliner.SetReadDeadline(time.Now().Add(c.heartbeat * 5 / 2))
		}
		msg, err := Read(c.conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		switch msg.Type {
		case TProbe, TProbeC:
			reply := Message{Type: TProbeReply, Group: c.group, User: c.user, Loc: c.loc()}
			if msg.Type == TProbeC {
				reply.Type = TProbeReplyC
			}
			if err := c.write(reply); err != nil {
				return err
			}
		case TPong:
			c.pongs.Add(1)
		case TPeers:
			if c.onPeers != nil {
				c.onPeers(msg.Epoch, msg.Peers)
			}
		case TNotify:
			region, err := DecodeRegion(msg.Region)
			if err != nil {
				return err
			}
			c.mu.Lock()
			c.meeting = msg.Meeting
			c.region = region
			c.haveReg = true
			c.epoch = msg.Epoch
			c.mu.Unlock()
			if c.onNotify != nil {
				c.onNotify(msg.Meeting, region)
			}
		case TNotifyDelta:
			if err := c.applyDelta(msg); err != nil {
				return err
			}
		case TError:
			return errors.New("proto: server error: " + msg.Text)
		default:
			return errors.New("proto: unexpected " + msg.Type.String() + " from server")
		}
	}
}

// pinger sends a TPing every heartbeat interval until stop closes or a
// write fails (Run then notices through its own read error — either the
// read deadline or the broken connection).
func (c *Client) pinger(stop <-chan struct{}) {
	t := time.NewTicker(c.heartbeat)
	defer t.Stop()
	var seq uint64
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			seq++
			if err := c.write(Message{Type: TPing, Epoch: seq}); err != nil {
				return
			}
		}
	}
}

// applyDelta folds a TNotifyDelta frame into the retained plan. A frame
// carrying a record for this user replaces the region (records are
// complete regions, so one frame repairs any gap); a frame without one
// confirms the retained region is still current at msg.Epoch — if the
// client's retained epoch disagrees, or there is no retained region, it
// answers TNack and waits for the server's full repair instead of
// exposing state it cannot verify.
func (c *Client) applyDelta(msg Message) error {
	if c.observer {
		return c.applyObserverDelta(msg)
	}
	var rec *RegionDelta
	for i := range msg.Deltas {
		if msg.Deltas[i].Member == c.user {
			rec = &msg.Deltas[i]
			break
		}
	}
	c.mu.Lock()
	if rec == nil && (!c.haveReg || c.epoch != msg.Epoch) {
		c.mu.Unlock()
		return c.write(Message{Type: TNack, Group: c.group, User: c.user, Epoch: msg.Epoch})
	}
	if rec != nil {
		region, err := DecodeRegion(rec.Region)
		if err != nil {
			c.mu.Unlock()
			return err
		}
		c.region = region
		c.haveReg = true
		c.epoch = rec.Epoch
	}
	if msg.MeetingChanged {
		c.meeting = msg.Meeting
	}
	meeting, region := c.meeting, c.region
	c.mu.Unlock()
	if c.onNotify != nil {
		c.onNotify(meeting, region)
	}
	return nil
}

// applyObserverDelta folds a group-state frame into the observer's
// retained member map. Records are complete regions, so application is
// unconditional; a DeltaReset frame first discards everything retained —
// that is how departed members disappear from the map. An observer that
// has no state yet and receives a non-reset frame cannot tell which
// members it is missing, so it NACKs and the server repairs it with a
// full frame.
func (c *Client) applyObserverDelta(msg Message) error {
	decoded := make([]core.SafeRegion, len(msg.Deltas))
	for i := range msg.Deltas {
		r, err := DecodeRegion(msg.Deltas[i].Region)
		if err != nil {
			return err
		}
		decoded[i] = r
	}
	c.mu.Lock()
	if c.obsRegions == nil && !msg.DeltaReset {
		c.mu.Unlock()
		return c.write(Message{Type: TNack, Group: c.group, User: c.user})
	}
	if msg.DeltaReset || c.obsRegions == nil {
		c.obsRegions = make(map[uint32]core.SafeRegion, len(msg.Deltas))
	}
	for i := range msg.Deltas {
		c.obsRegions[msg.Deltas[i].Member] = decoded[i]
	}
	if msg.MeetingChanged {
		c.meeting = msg.Meeting
	}
	meeting := c.meeting
	var snapshot map[uint32]core.SafeRegion
	if c.onGroup != nil {
		snapshot = make(map[uint32]core.SafeRegion, len(c.obsRegions))
		for uid, r := range c.obsRegions {
			snapshot[uid] = r
		}
	}
	c.mu.Unlock()
	if c.onGroup != nil {
		c.onGroup(meeting, snapshot)
	}
	return nil
}

// appendF / readF are the shared float64 wire helpers.
func appendF(buf []byte, v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return append(buf, b[:]...)
}

func readF(data []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
}
