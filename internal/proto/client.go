package proto

import (
	"encoding/binary"
	"errors"
	"io"
	"math"
	"sync"

	"mpn/internal/core"
	"mpn/internal/geom"
)

// LocFunc supplies the client's current location when the server probes.
type LocFunc func() geom.Point

// NotifyFunc receives each fresh meeting point and safe region.
type NotifyFunc func(meeting geom.Point, region core.SafeRegion)

// Client is the user-side state machine: it registers, answers probes
// with the location supplier, reports escapes, and surfaces notifications.
type Client struct {
	conn  io.ReadWriter
	group uint32
	user  uint32

	loc      LocFunc
	onNotify NotifyFunc

	wmu sync.Mutex

	mu      sync.RWMutex
	meeting geom.Point
	region  core.SafeRegion
	haveReg bool
}

// NewClient wires a client over conn. loc must be non-nil; onNotify may be
// nil.
func NewClient(conn io.ReadWriter, group, user uint32, loc LocFunc, onNotify NotifyFunc) (*Client, error) {
	if loc == nil {
		return nil, errors.New("proto: nil location supplier")
	}
	return &Client{conn: conn, group: group, user: user, loc: loc, onNotify: onNotify}, nil
}

func (c *Client) write(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return Write(c.conn, m)
}

// Register joins the group (groupSize = m).
func (c *Client) Register(groupSize uint32) error {
	return c.write(Message{
		Type: TRegister, Group: c.group, User: c.user,
		GroupSize: groupSize, Loc: c.loc(),
	})
}

// Report sends the user's current location to the server (step 1 — call
// when NeedsUpdate fires).
func (c *Client) Report() error {
	return c.write(Message{Type: TReport, Group: c.group, User: c.user, Loc: c.loc()})
}

// NeedsUpdate reports whether the location escapes the current safe
// region. Before the first notification it returns false (the client has
// nothing to compare against).
func (c *Client) NeedsUpdate(loc geom.Point) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if !c.haveReg {
		return false
	}
	return !c.region.Contains(loc)
}

// Meeting returns the last notified meeting point.
func (c *Client) Meeting() geom.Point {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.meeting
}

// Region returns the last notified safe region.
func (c *Client) Region() core.SafeRegion {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.region
}

// Run processes server frames until EOF or error. Run answers probes
// automatically; notifications update Meeting/Region and invoke the
// callback. It returns nil on clean EOF.
func (c *Client) Run() error {
	for {
		msg, err := Read(c.conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		switch msg.Type {
		case TProbe:
			if err := c.write(Message{
				Type: TProbeReply, Group: c.group, User: c.user, Loc: c.loc(),
			}); err != nil {
				return err
			}
		case TNotify:
			region, err := DecodeRegion(msg.Region)
			if err != nil {
				return err
			}
			c.mu.Lock()
			c.meeting = msg.Meeting
			c.region = region
			c.haveReg = true
			c.mu.Unlock()
			if c.onNotify != nil {
				c.onNotify(msg.Meeting, region)
			}
		case TError:
			return errors.New("proto: server error: " + msg.Text)
		default:
			return errors.New("proto: unexpected " + msg.Type.String() + " from server")
		}
	}
}

// appendF / readF are the shared float64 wire helpers.
func appendF(buf []byte, v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return append(buf, b[:]...)
}

func readF(data []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
}
