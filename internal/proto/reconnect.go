package proto

import (
	"errors"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mpn/internal/core"
	"mpn/internal/geom"
)

// DialFunc dials one connection attempt for a ReconnectClient.
type DialFunc func() (io.ReadWriteCloser, error)

// AddrDialFunc dials one named address for a multi-address
// ReconnectClient (see NewReconnectClientAddrs).
type AddrDialFunc func(addr string) (io.ReadWriteCloser, error)

// ErrDisconnected is returned by ReconnectClient.Report while no live
// connection exists (a reconnect is in progress). The caller's next
// escape report, after the session resumes, carries the fresh location —
// nothing needs to be queued.
var ErrDisconnected = errors.New("proto: not connected")

// Backoff configures ReconnectClient's retry schedule: the delay starts
// at Min, multiplies by Factor per consecutive failure up to Max, and
// each sleep is stretched by a random factor in [1, 1+Jitter] drawn from
// a private source seeded with Seed — deterministic for a given seed, so
// chaos schedules replay exactly.
type Backoff struct {
	Min    time.Duration
	Max    time.Duration
	Factor float64
	Jitter float64
	Seed   int64
}

// withDefaults resolves zero fields.
func (b Backoff) withDefaults() Backoff {
	if b.Min <= 0 {
		b.Min = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 15 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	return b
}

// ReconnectClient wraps the client state machine with automatic
// reconnection: when the session dies — connection error, server
// restart, heartbeat timeout, a kick by the slow-client policy — it
// redials with exponential backoff plus jitter, re-registers, and
// resumes through the server's existing full-snapshot path (a fresh
// member always receives a full TNotify first, so the retained plan
// self-repairs; no session state needs to survive on the server). To
// callers, a restarted server is invisible beyond latency: Meeting,
// Region and NeedsUpdate keep answering from the last notified plan
// across the gap.
type ReconnectClient struct {
	dial      DialFunc
	group     uint32
	user      uint32
	groupSize uint32
	loc       LocFunc
	onNotify  NotifyFunc
	opts      []ClientOption
	backoff   Backoff
	rng       *rand.Rand

	// userPeers and userGroup are the caller's WithPeerUpdate and
	// WithGroupNotify callbacks, extracted from opts at construction so
	// the client can interpose its own retention/adoption handlers and
	// still forward every event.
	userPeers PeerUpdateFunc
	userGroup GroupNotifyFunc

	reconnects atomic.Uint64
	connected  atomic.Bool

	mu      sync.Mutex
	conn    io.Closer // live connection, for Stop to interrupt a blocked read
	cur     *Client   // live session, for Report forwarding
	stopped bool
	stop    chan struct{}
	done    chan struct{}

	// Address book for multi-address clients (nil addrDial on classic
	// single-dial clients): dial attempts walk addrs round-robin, and a
	// server-pushed TPeers advertisement with a fresh-enough epoch
	// replaces the list wholesale (see adoptPeers).
	amu       sync.Mutex
	addrDial  AddrDialFunc
	addrs     []string
	addrIdx   int
	adopted   bool // an adoption repositioned addrIdx since the last dial
	peerEpoch uint64

	// Retained plan, updated by every notification on any session.
	pmu     sync.RWMutex
	meeting geom.Point
	region  core.SafeRegion
	haveReg bool
	// obsRegions is the observer-mode retained group view, surviving
	// reconnects just like the member-mode plan above.
	obsRegions map[uint32]core.SafeRegion
}

// NewReconnectClient builds a reconnecting client. dial and loc must be
// non-nil; onNotify may be nil. opts are applied to every underlying
// Client (session defaults: delta and compact probes negotiated).
// Call Start to begin.
func NewReconnectClient(dial DialFunc, group, user, groupSize uint32, loc LocFunc, onNotify NotifyFunc, backoff Backoff, opts ...ClientOption) (*ReconnectClient, error) {
	if dial == nil {
		return nil, errors.New("proto: nil dial function")
	}
	if loc == nil {
		return nil, errors.New("proto: nil location supplier")
	}
	rc := newReconnectClient(group, user, groupSize, loc, onNotify, backoff, opts)
	rc.dial = dial
	return rc, nil
}

// NewReconnectClientAddrs builds a reconnecting client over a list of
// candidate server addresses — the zero-downtime failover entry point.
// Dial attempts walk the list round-robin: every attempt that ends (a
// failed dial, a refused registration, a dead session) advances to the
// next address, so a client pointed at a dead primary converges on the
// promoted follower within one rotation. Server-pushed TPeers
// advertisements replace the list wholesale (primary first) when their
// fencing epoch is not older than the last adopted one, so the address
// book follows the cluster through promotions without reconfiguration.
// addrs must be non-empty; everything else is as NewReconnectClient.
func NewReconnectClientAddrs(dial AddrDialFunc, addrs []string, group, user, groupSize uint32, loc LocFunc, onNotify NotifyFunc, backoff Backoff, opts ...ClientOption) (*ReconnectClient, error) {
	if dial == nil {
		return nil, errors.New("proto: nil dial function")
	}
	if len(addrs) == 0 {
		return nil, errors.New("proto: empty address list")
	}
	if loc == nil {
		return nil, errors.New("proto: nil location supplier")
	}
	rc := newReconnectClient(group, user, groupSize, loc, onNotify, backoff, opts)
	rc.addrDial = dial
	rc.addrs = append([]string(nil), addrs...)
	rc.dial = func() (io.ReadWriteCloser, error) { return dial(rc.currentAddr()) }
	return rc, nil
}

// newReconnectClient is the shared construction path: it captures the
// caller's peer/group callbacks so the session loop can interpose its
// own adoption and retention handlers in front of them.
func newReconnectClient(group, user, groupSize uint32, loc LocFunc, onNotify NotifyFunc, backoff Backoff, opts []ClientOption) *ReconnectClient {
	b := backoff.withDefaults()
	rc := &ReconnectClient{
		group: group, user: user, groupSize: groupSize,
		loc: loc, onNotify: onNotify, opts: opts, backoff: b,
		rng:  rand.New(rand.NewSource(b.Seed)),
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	// Probe the options on a throwaway Client to learn the caller's
	// callbacks (options are plain field setters, so this is safe).
	var probe Client
	for _, o := range opts {
		o(&probe)
	}
	rc.userPeers = probe.onPeers
	rc.userGroup = probe.onGroup
	return rc
}

// currentAddr returns the address the next dial attempt should use and
// clears the adoption marker: the attempt now "owns" this address, and
// rotate will advance past it if the attempt ends.
func (rc *ReconnectClient) currentAddr() string {
	rc.amu.Lock()
	defer rc.amu.Unlock()
	rc.adopted = false
	return rc.addrs[rc.addrIdx%len(rc.addrs)]
}

// rotate advances the address book to the next candidate after an ended
// attempt — unless an adoption already repositioned it (the adopted
// primary must be tried before rotating away from it).
func (rc *ReconnectClient) rotate() {
	rc.amu.Lock()
	defer rc.amu.Unlock()
	if rc.adopted || len(rc.addrs) == 0 {
		return
	}
	rc.addrIdx = (rc.addrIdx + 1) % len(rc.addrs)
}

// adoptPeers folds a server-pushed TPeers advertisement into the address
// book. Advertisements from older fencing epochs than the last adopted
// one are discarded — a delayed frame from a deposed primary must not
// point the client back at a dead node.
func (rc *ReconnectClient) adoptPeers(epoch uint64, peers []string) {
	if rc.addrDial != nil && len(peers) > 0 {
		rc.amu.Lock()
		if epoch >= rc.peerEpoch {
			rc.peerEpoch = epoch
			rc.addrs = append(rc.addrs[:0], peers...)
			rc.addrIdx = 0
			rc.adopted = true
		}
		rc.amu.Unlock()
	}
	if rc.userPeers != nil {
		rc.userPeers(epoch, peers)
	}
}

// Addrs returns a copy of the current address book (observability for
// tests and monitoring); nil on single-dial clients.
func (rc *ReconnectClient) Addrs() []string {
	rc.amu.Lock()
	defer rc.amu.Unlock()
	return append([]string(nil), rc.addrs...)
}

// PeerEpoch returns the fencing epoch of the last adopted peer
// advertisement (0 before any adoption).
func (rc *ReconnectClient) PeerEpoch() uint64 {
	rc.amu.Lock()
	defer rc.amu.Unlock()
	return rc.peerEpoch
}

// Start launches the session loop in its own goroutine. It runs until
// Stop.
func (rc *ReconnectClient) Start() {
	go func() {
		defer close(rc.done)
		rc.run()
	}()
}

// Stop ends the session loop: the live connection (if any) is closed and
// Start's goroutine is joined. Safe to call more than once.
func (rc *ReconnectClient) Stop() {
	rc.mu.Lock()
	already := rc.stopped
	rc.stopped = true
	conn := rc.conn
	if !already {
		close(rc.stop)
	}
	rc.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	if !already {
		<-rc.done
	}
}

// Connected reports whether a registered session is currently live.
func (rc *ReconnectClient) Connected() bool { return rc.connected.Load() }

// Reconnects returns how many times the session died and the loop went
// back to dialing (the initial connection does not count).
func (rc *ReconnectClient) Reconnects() uint64 { return rc.reconnects.Load() }

// Report sends the user's current location on the live session;
// ErrDisconnected while reconnecting.
func (rc *ReconnectClient) Report() error {
	rc.mu.Lock()
	cl := rc.cur
	rc.mu.Unlock()
	if cl == nil || !rc.connected.Load() {
		return ErrDisconnected
	}
	return cl.Report()
}

// Meeting returns the last notified meeting point, surviving reconnects.
func (rc *ReconnectClient) Meeting() geom.Point {
	rc.pmu.RLock()
	defer rc.pmu.RUnlock()
	return rc.meeting
}

// Region returns the last notified safe region, surviving reconnects.
func (rc *ReconnectClient) Region() core.SafeRegion {
	rc.pmu.RLock()
	defer rc.pmu.RUnlock()
	return rc.region
}

// NeedsUpdate reports whether loc escapes the retained safe region
// (false before the first notification, like Client.NeedsUpdate).
func (rc *ReconnectClient) NeedsUpdate(loc geom.Point) bool {
	rc.pmu.RLock()
	defer rc.pmu.RUnlock()
	if !rc.haveReg {
		return false
	}
	return !rc.region.Contains(loc)
}

// GroupRegions returns a copy of the observer-mode retained group view
// (user id → region), surviving reconnects. Empty on non-observer
// clients and before the first observer frame.
func (rc *ReconnectClient) GroupRegions() map[uint32]core.SafeRegion {
	rc.pmu.RLock()
	defer rc.pmu.RUnlock()
	out := make(map[uint32]core.SafeRegion, len(rc.obsRegions))
	for uid, r := range rc.obsRegions {
		out[uid] = r
	}
	return out
}

// retain records a notification into the cross-session plan and forwards
// it to the caller's callback.
func (rc *ReconnectClient) retain(meeting geom.Point, region core.SafeRegion) {
	rc.pmu.Lock()
	rc.meeting = meeting
	rc.region = region
	rc.haveReg = true
	rc.pmu.Unlock()
	if rc.onNotify != nil {
		rc.onNotify(meeting, region)
	}
}

// retainGroup is the observer-mode analogue of retain: each session's
// group snapshots replace the retained view (observer frames always
// carry complete regions, and a fresh session starts from a DeltaReset
// frame, so wholesale replacement is correct), then flow on to the
// caller's WithGroupNotify callback.
func (rc *ReconnectClient) retainGroup(meeting geom.Point, regions map[uint32]core.SafeRegion) {
	rc.pmu.Lock()
	rc.meeting = meeting
	rc.obsRegions = regions
	rc.pmu.Unlock()
	if rc.userGroup != nil {
		// Forward a copy: the retained map must not be aliased by a
		// callback that mutates its argument.
		fwd := make(map[uint32]core.SafeRegion, len(regions))
		for uid, r := range regions {
			fwd[uid] = r
		}
		rc.userGroup(meeting, fwd)
	}
}

// run is the session loop: dial, register, pump frames; on any session
// death, back off, rotate the address book (multi-address clients), and
// start over. The backoff resets after every successful registration, so
// an isolated restart costs one Min-scale delay while a hard-down server
// is approached at Max cadence — and with several candidate addresses,
// the whole ring is walked before the delay compounds much.
func (rc *ReconnectClient) run() {
	// Every session interposes the adoption and retention handlers; the
	// caller's own callbacks (captured at construction) are forwarded
	// from inside them.
	sessionOpts := append(append([]ClientOption(nil), rc.opts...),
		WithPeerUpdate(rc.adoptPeers), WithGroupNotify(rc.retainGroup))
	delay := rc.backoff.Min
	for attempt := 0; ; attempt++ {
		if rc.isStopped() {
			return
		}
		if attempt > 0 {
			rc.reconnects.Add(1)
			if !rc.sleep(delay) {
				return
			}
			delay = rc.nextDelay(delay)
		}
		conn, err := rc.dial()
		if err != nil {
			rc.rotate()
			continue
		}
		cl, err := NewClient(conn, rc.group, rc.user, rc.loc, rc.retain, sessionOpts...)
		if err != nil {
			_ = conn.Close()
			rc.rotate()
			continue
		}
		rc.mu.Lock()
		if rc.stopped {
			rc.mu.Unlock()
			_ = conn.Close()
			return
		}
		rc.conn = conn
		rc.cur = cl
		rc.mu.Unlock()
		if err := cl.Register(rc.groupSize); err == nil {
			rc.connected.Store(true)
			delay = rc.backoff.Min
			_ = cl.Run() // until the session dies (error) or closes (nil)
			rc.connected.Store(false)
		}
		rc.mu.Lock()
		rc.conn = nil
		rc.cur = nil
		rc.mu.Unlock()
		_ = conn.Close()
		rc.rotate()
	}
}

func (rc *ReconnectClient) isStopped() bool {
	select {
	case <-rc.stop:
		return true
	default:
		return false
	}
}

// sleep waits d or until Stop; it reports whether the loop should keep
// going.
func (rc *ReconnectClient) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-rc.stop:
		return false
	case <-t.C:
		return true
	}
}

// nextDelay advances the exponential schedule and applies jitter.
func (rc *ReconnectClient) nextDelay(d time.Duration) time.Duration {
	d = time.Duration(float64(d) * rc.backoff.Factor)
	if d > rc.backoff.Max {
		d = rc.backoff.Max
	}
	if rc.backoff.Jitter > 0 {
		d = time.Duration(float64(d) * (1 + rc.backoff.Jitter*rc.rng.Float64()))
	}
	return d
}
