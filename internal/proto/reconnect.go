package proto

import (
	"errors"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mpn/internal/core"
	"mpn/internal/geom"
)

// DialFunc dials one connection attempt for a ReconnectClient.
type DialFunc func() (io.ReadWriteCloser, error)

// ErrDisconnected is returned by ReconnectClient.Report while no live
// connection exists (a reconnect is in progress). The caller's next
// escape report, after the session resumes, carries the fresh location —
// nothing needs to be queued.
var ErrDisconnected = errors.New("proto: not connected")

// Backoff configures ReconnectClient's retry schedule: the delay starts
// at Min, multiplies by Factor per consecutive failure up to Max, and
// each sleep is stretched by a random factor in [1, 1+Jitter] drawn from
// a private source seeded with Seed — deterministic for a given seed, so
// chaos schedules replay exactly.
type Backoff struct {
	Min    time.Duration
	Max    time.Duration
	Factor float64
	Jitter float64
	Seed   int64
}

// withDefaults resolves zero fields.
func (b Backoff) withDefaults() Backoff {
	if b.Min <= 0 {
		b.Min = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 15 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	return b
}

// ReconnectClient wraps the client state machine with automatic
// reconnection: when the session dies — connection error, server
// restart, heartbeat timeout, a kick by the slow-client policy — it
// redials with exponential backoff plus jitter, re-registers, and
// resumes through the server's existing full-snapshot path (a fresh
// member always receives a full TNotify first, so the retained plan
// self-repairs; no session state needs to survive on the server). To
// callers, a restarted server is invisible beyond latency: Meeting,
// Region and NeedsUpdate keep answering from the last notified plan
// across the gap.
type ReconnectClient struct {
	dial      DialFunc
	group     uint32
	user      uint32
	groupSize uint32
	loc       LocFunc
	onNotify  NotifyFunc
	opts      []ClientOption
	backoff   Backoff
	rng       *rand.Rand

	reconnects atomic.Uint64
	connected  atomic.Bool

	mu      sync.Mutex
	conn    io.Closer // live connection, for Stop to interrupt a blocked read
	cur     *Client   // live session, for Report forwarding
	stopped bool
	stop    chan struct{}
	done    chan struct{}

	// Retained plan, updated by every notification on any session.
	pmu     sync.RWMutex
	meeting geom.Point
	region  core.SafeRegion
	haveReg bool
}

// NewReconnectClient builds a reconnecting client. dial and loc must be
// non-nil; onNotify may be nil. opts are applied to every underlying
// Client (session defaults: delta and compact probes negotiated).
// Call Start to begin.
func NewReconnectClient(dial DialFunc, group, user, groupSize uint32, loc LocFunc, onNotify NotifyFunc, backoff Backoff, opts ...ClientOption) (*ReconnectClient, error) {
	if dial == nil {
		return nil, errors.New("proto: nil dial function")
	}
	if loc == nil {
		return nil, errors.New("proto: nil location supplier")
	}
	b := backoff.withDefaults()
	return &ReconnectClient{
		dial: dial, group: group, user: user, groupSize: groupSize,
		loc: loc, onNotify: onNotify, opts: opts, backoff: b,
		rng:  rand.New(rand.NewSource(b.Seed)),
		stop: make(chan struct{}), done: make(chan struct{}),
	}, nil
}

// Start launches the session loop in its own goroutine. It runs until
// Stop.
func (rc *ReconnectClient) Start() {
	go func() {
		defer close(rc.done)
		rc.run()
	}()
}

// Stop ends the session loop: the live connection (if any) is closed and
// Start's goroutine is joined. Safe to call more than once.
func (rc *ReconnectClient) Stop() {
	rc.mu.Lock()
	already := rc.stopped
	rc.stopped = true
	conn := rc.conn
	if !already {
		close(rc.stop)
	}
	rc.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	if !already {
		<-rc.done
	}
}

// Connected reports whether a registered session is currently live.
func (rc *ReconnectClient) Connected() bool { return rc.connected.Load() }

// Reconnects returns how many times the session died and the loop went
// back to dialing (the initial connection does not count).
func (rc *ReconnectClient) Reconnects() uint64 { return rc.reconnects.Load() }

// Report sends the user's current location on the live session;
// ErrDisconnected while reconnecting.
func (rc *ReconnectClient) Report() error {
	rc.mu.Lock()
	cl := rc.cur
	rc.mu.Unlock()
	if cl == nil || !rc.connected.Load() {
		return ErrDisconnected
	}
	return cl.Report()
}

// Meeting returns the last notified meeting point, surviving reconnects.
func (rc *ReconnectClient) Meeting() geom.Point {
	rc.pmu.RLock()
	defer rc.pmu.RUnlock()
	return rc.meeting
}

// Region returns the last notified safe region, surviving reconnects.
func (rc *ReconnectClient) Region() core.SafeRegion {
	rc.pmu.RLock()
	defer rc.pmu.RUnlock()
	return rc.region
}

// NeedsUpdate reports whether loc escapes the retained safe region
// (false before the first notification, like Client.NeedsUpdate).
func (rc *ReconnectClient) NeedsUpdate(loc geom.Point) bool {
	rc.pmu.RLock()
	defer rc.pmu.RUnlock()
	if !rc.haveReg {
		return false
	}
	return !rc.region.Contains(loc)
}

// retain records a notification into the cross-session plan and forwards
// it to the caller's callback.
func (rc *ReconnectClient) retain(meeting geom.Point, region core.SafeRegion) {
	rc.pmu.Lock()
	rc.meeting = meeting
	rc.region = region
	rc.haveReg = true
	rc.pmu.Unlock()
	if rc.onNotify != nil {
		rc.onNotify(meeting, region)
	}
}

// run is the session loop: dial, register, pump frames; on any session
// death, back off and start over. The backoff resets after every
// successful registration, so an isolated restart costs one Min-scale
// delay while a hard-down server is approached at Max cadence.
func (rc *ReconnectClient) run() {
	delay := rc.backoff.Min
	for attempt := 0; ; attempt++ {
		if rc.isStopped() {
			return
		}
		if attempt > 0 {
			rc.reconnects.Add(1)
			if !rc.sleep(delay) {
				return
			}
			delay = rc.nextDelay(delay)
		}
		conn, err := rc.dial()
		if err != nil {
			continue
		}
		cl, err := NewClient(conn, rc.group, rc.user, rc.loc, rc.retain, rc.opts...)
		if err != nil {
			_ = conn.Close()
			continue
		}
		rc.mu.Lock()
		if rc.stopped {
			rc.mu.Unlock()
			_ = conn.Close()
			return
		}
		rc.conn = conn
		rc.cur = cl
		rc.mu.Unlock()
		if err := cl.Register(rc.groupSize); err == nil {
			rc.connected.Store(true)
			delay = rc.backoff.Min
			_ = cl.Run() // until the session dies (error) or closes (nil)
			rc.connected.Store(false)
		}
		rc.mu.Lock()
		rc.conn = nil
		rc.cur = nil
		rc.mu.Unlock()
		_ = conn.Close()
	}
}

func (rc *ReconnectClient) isStopped() bool {
	select {
	case <-rc.stop:
		return true
	default:
		return false
	}
}

// sleep waits d or until Stop; it reports whether the loop should keep
// going.
func (rc *ReconnectClient) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-rc.stop:
		return false
	case <-t.C:
		return true
	}
}

// nextDelay advances the exponential schedule and applies jitter.
func (rc *ReconnectClient) nextDelay(d time.Duration) time.Duration {
	d = time.Duration(float64(d) * rc.backoff.Factor)
	if d > rc.backoff.Max {
		d = rc.backoff.Max
	}
	if rc.backoff.Jitter > 0 {
		d = time.Duration(float64(d) * (1 + rc.backoff.Jitter*rc.rng.Float64()))
	}
	return d
}
