package proto

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"mpn/internal/core"
	"mpn/internal/geom"
)

// --- heartbeat ---------------------------------------------------------------

// A pinging client against a live coordinator: pongs flow back and both
// sides count them. Registration is not required for liveness traffic.
func TestHeartbeatPingPong(t *testing.T) {
	coord := NewCoordinator(testPlan(t, "circle"), nil)
	serverSide, clientSide := net.Pipe()
	go func() { _ = coord.ServeConn(serverSide) }()
	defer clientSide.Close()

	cl, err := NewClient(clientSide, 1, 0,
		func() geom.Point { return geom.Pt(0.2, 0.2) }, nil,
		WithHeartbeat(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- cl.Run() }()

	deadline := time.Now().Add(5 * time.Second)
	for cl.Pongs() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("pongs=%d after 5s", cl.Pongs())
		}
		time.Sleep(time.Millisecond)
	}
	if got := coord.Stats().Heartbeats; got < 3 {
		t.Fatalf("server heartbeats=%d", got)
	}
	clientSide.Close()
	if err := <-runErr; err != nil && !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("run: %v", err)
	}
}

// A peer that accepts writes but never answers is a dead server from the
// client's perspective: the sliding read deadline must fail the read and
// Run must return a timeout instead of blocking forever.
func TestHeartbeatDetectsSilentServer(t *testing.T) {
	serverSide, clientSide := net.Pipe()
	defer serverSide.Close()
	defer clientSide.Close()
	// Drain the client's pings so its writes never block, but say nothing.
	go func() {
		buf := make([]byte, 256)
		for {
			if _, err := serverSide.Read(buf); err != nil {
				return
			}
		}
	}()

	cl, err := NewClient(clientSide, 1, 0,
		func() geom.Point { return geom.Point{} }, nil,
		WithHeartbeat(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	runErr := cl.Run()
	if runErr == nil {
		t.Fatal("Run returned nil against a silent server")
	}
	var ne net.Error
	if !errors.As(runErr, &ne) || !ne.Timeout() {
		t.Fatalf("want timeout, got %v", runErr)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

// --- compact probes ----------------------------------------------------------

// A mixed group: one member negotiates compact probes, one opts out. The
// server must probe each in the layout it negotiated and accept both
// reply layouts; the probe round completes for everyone either way.
func TestCompactProbeNegotiation(t *testing.T) {
	coord := NewCoordinator(testPlan(t, "tile"), nil)

	type member struct {
		client   *Client
		loc      geom.Point
		locMu    sync.Mutex
		notifyCh chan geom.Point
	}
	mk := func(user uint32, start geom.Point, opts ...ClientOption) *member {
		serverSide, clientSide := net.Pipe()
		go func() { _ = coord.ServeConn(serverSide) }()
		t.Cleanup(func() { clientSide.Close() })
		m := &member{loc: start, notifyCh: make(chan geom.Point, 16)}
		cl, err := NewClient(clientSide, 1, user,
			func() geom.Point {
				m.locMu.Lock()
				defer m.locMu.Unlock()
				return m.loc
			},
			func(meeting geom.Point, _ core.SafeRegion) { m.notifyCh <- meeting },
			opts...)
		if err != nil {
			t.Fatal(err)
		}
		m.client = cl
		go func() { _ = cl.Run() }()
		return m
	}

	compact := mk(0, geom.Pt(0.30, 0.30))
	classic := mk(1, geom.Pt(0.35, 0.32), WithoutCompactProbe())
	members := []*member{compact, classic}
	for _, m := range members {
		if err := m.client.Register(2); err != nil {
			t.Fatal(err)
		}
	}
	wait := func(m *member) geom.Point {
		select {
		case p := <-m.notifyCh:
			return p
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for notification")
			return geom.Point{}
		}
	}
	for _, m := range members {
		wait(m)
	}

	// The compact member escapes: the probe round hits the classic member
	// as TProbe and would hit other compact members as TProbeC. Both reply
	// layouts must be accepted and a fresh plan must land everywhere.
	compact.locMu.Lock()
	compact.loc = geom.Pt(0.70, 0.70)
	compact.locMu.Unlock()
	if err := compact.client.Report(); err != nil {
		t.Fatal(err)
	}
	m1, m2 := wait(compact), wait(classic)
	if m1 != m2 {
		t.Fatalf("meeting mismatch after mixed probe round: %v vs %v", m1, m2)
	}

	// Now the classic member escapes, so the compact member is probed with
	// TProbeC and must reply in kind.
	classic.locMu.Lock()
	classic.loc = geom.Pt(0.10, 0.60)
	classic.locMu.Unlock()
	if err := classic.client.Report(); err != nil {
		t.Fatal(err)
	}
	m1, m2 = wait(compact), wait(classic)
	if m1 != m2 {
		t.Fatalf("meeting mismatch after compact probe round: %v vs %v", m1, m2)
	}
	if got := coord.Stats().CompactProbes; got == 0 {
		t.Fatal("no compact probes sent to a compact-negotiated member")
	}
}

// --- reconnect ---------------------------------------------------------------

// restartableServer is a coordinator behind a real TCP listener that can
// be killed and brought back on a fresh port, like a crashed process.
type restartableServer struct {
	t    *testing.T
	plan PlanFunc
	// gate, when set, is installed as the coordinator's write gate on
	// every (re)start.
	gate  WriteGateFunc
	mu    sync.Mutex
	coord *Coordinator
	ln    net.Listener
	conns []net.Conn
}

func (s *restartableServer) start() {
	s.t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.t.Fatal(err)
	}
	coord := NewCoordinator(s.plan, nil)
	if s.gate != nil {
		coord.SetWriteGate(s.gate)
	}
	s.mu.Lock()
	s.ln, s.coord, s.conns = ln, coord, nil
	s.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, conn)
			s.mu.Unlock()
			go func() { _ = coord.ServeConn(conn) }()
		}
	}()
}

func (s *restartableServer) addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ln.Addr().String()
}

func (s *restartableServer) kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ln.Close()
	for _, c := range s.conns {
		c.Close()
	}
	s.conns = nil
}

// A server restart must be invisible to ReconnectClient callers beyond
// latency: the session redials with backoff, re-registers, and the full
// snapshot on the fresh registration repopulates the plan. The retained
// plan keeps answering during the outage.
func TestReconnectClientSurvivesServerRestart(t *testing.T) {
	srv := &restartableServer{t: t, plan: testPlan(t, "circle")}
	srv.start()
	defer srv.kill()

	notifyCh := make(chan geom.Point, 64)
	rc, err := NewReconnectClient(
		func() (io.ReadWriteCloser, error) { return net.Dial("tcp", srv.addr()) },
		1, 0, 1, // single-user group: registration completes it immediately
		func() geom.Point { return geom.Pt(0.25, 0.25) },
		func(meeting geom.Point, _ core.SafeRegion) { notifyCh <- meeting },
		Backoff{Min: 10 * time.Millisecond, Max: 200 * time.Millisecond, Factor: 2, Jitter: 0.2, Seed: 7},
	)
	if err != nil {
		t.Fatal(err)
	}
	rc.Start()
	defer rc.Stop()

	waitNotify := func(what string) geom.Point {
		select {
		case p := <-notifyCh:
			return p
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
			return geom.Point{}
		}
	}
	first := waitNotify("initial snapshot")
	if !rc.Connected() {
		// Connected flips just before Run; the notification proves the
		// session is up, so a brief lag is the only legal reason here.
		time.Sleep(50 * time.Millisecond)
	}

	// Kill the server. The client must notice, keep serving the retained
	// plan, and report ErrDisconnected on the dead session.
	srv.kill()
	deadline := time.Now().Add(5 * time.Second)
	for rc.Connected() {
		if time.Now().After(deadline) {
			t.Fatal("client never noticed the dead server")
		}
		time.Sleep(time.Millisecond)
	}
	if got := rc.Meeting(); got != first {
		t.Fatalf("retained meeting lost during outage: %v vs %v", got, first)
	}
	if !rc.NeedsUpdate(geom.Pt(9, 9)) {
		t.Fatal("retained region lost during outage")
	}
	if err := rc.Report(); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("Report while down: %v", err)
	}

	// Bring a fresh server up (new port — the dial function re-reads the
	// address). The client must reconnect and receive a full snapshot.
	srv.start()
	second := waitNotify("post-restart snapshot")
	if second != first {
		// Same inputs, same deterministic planner: the replayed plan must
		// match the original.
		t.Fatalf("post-restart plan diverged: %v vs %v", second, first)
	}
	if rc.Reconnects() == 0 {
		t.Fatal("reconnects counter never moved")
	}
	deadline = time.Now().Add(5 * time.Second)
	for !rc.Connected() {
		if time.Now().After(deadline) {
			t.Fatal("Connected never recovered")
		}
		time.Sleep(time.Millisecond)
	}
	if err := rc.Report(); err != nil {
		t.Fatalf("Report after recovery: %v", err)
	}
}

// Stop must interrupt a blocked read and join the loop goroutine even
// while the server is healthy.
func TestReconnectClientStopWhileConnected(t *testing.T) {
	srv := &restartableServer{t: t, plan: testPlan(t, "circle")}
	srv.start()
	defer srv.kill()

	rc, err := NewReconnectClient(
		func() (io.ReadWriteCloser, error) { return net.Dial("tcp", srv.addr()) },
		1, 0, 1,
		func() geom.Point { return geom.Pt(0.25, 0.25) }, nil,
		Backoff{Min: 10 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	rc.Start()
	deadline := time.Now().Add(5 * time.Second)
	for !rc.Connected() {
		if time.Now().After(deadline) {
			t.Fatal("never connected")
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() { rc.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop wedged on a live connection")
	}
	rc.Stop() // idempotent
}

// The exponential schedule is deterministic per seed, grows by Factor,
// and caps at Max.
func TestBackoffSchedule(t *testing.T) {
	mk := func(seed int64) *ReconnectClient {
		rc, err := NewReconnectClient(
			func() (io.ReadWriteCloser, error) { return nil, errors.New("nope") },
			1, 0, 1, func() geom.Point { return geom.Point{} }, nil,
			Backoff{Min: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: 0.5, Seed: seed},
		)
		if err != nil {
			t.Fatal(err)
		}
		return rc
	}
	a, b := mk(3), mk(3)
	d1, d2 := a.backoff.Min, b.backoff.Min
	for i := 0; i < 8; i++ {
		d1, d2 = a.nextDelay(d1), b.nextDelay(d2)
		if d1 != d2 {
			t.Fatalf("step %d: same seed diverged: %v vs %v", i, d1, d2)
		}
		if d1 < a.backoff.Min || d1 > time.Duration(float64(a.backoff.Max)*1.5) {
			t.Fatalf("step %d: delay %v outside [Min, Max*(1+Jitter)]", i, d1)
		}
	}
	// Without jitter the schedule is exactly geometric, capped.
	c := mk(0)
	c.backoff.Jitter = 0
	want := []time.Duration{20, 40, 80, 80, 80}
	d := c.backoff.Min
	for i, w := range want {
		d = c.nextDelay(d)
		if d != w*time.Millisecond {
			t.Fatalf("step %d: %v want %v", i, d, w*time.Millisecond)
		}
	}
}
