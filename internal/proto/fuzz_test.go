package proto

import (
	"bytes"
	"testing"

	"mpn/internal/geom"
)

// fuzzSeedMessages covers every frame-layout family: classic fixed
// header, compact delta, and the all-varint heartbeat/compact-probe
// frames.
func fuzzSeedMessages() []Message {
	return []Message{
		{Type: TRegister, Group: 7, User: 2, GroupSize: 3,
			Flags: FlagDeltaCapable | FlagCompactProbe, Loc: geom.Pt(0.25, 0.5)},
		{Type: TReport, Group: 1, User: 0, Loc: geom.Pt(-1, 2)},
		{Type: TNotify, Group: 3, User: 1, Epoch: 9,
			Meeting: geom.Pt(0.4, 0.6), Region: []byte{1, 2, 3, 4}},
		{Type: TNotifyDelta, Group: 3, User: 1, Epoch: 12,
			MeetingChanged: true, Meeting: geom.Pt(0.4, 0.6),
			Deltas: []RegionDelta{
				{Member: 0, Epoch: 12, Region: []byte{9, 8, 7}},
				{Member: 2, Epoch: 4},
			}},
		{Type: TNotifyDelta, Group: 300, User: 70000, Epoch: 1},
		{Type: TNack, Group: 3, User: 1, Epoch: 11},
		{Type: TError, Text: "planner exploded"},
		{Type: TPing, Epoch: 42},
		{Type: TPong, Epoch: 1 << 40},
		{Type: TProbeC, Group: 9, User: 4},
		{Type: TProbeReplyC, Group: 9, User: 4, Loc: geom.Pt(0.1, 0.9)},
		{Type: TPeers, Epoch: 3, Peers: []string{"primary:9000", "standby:9001"}},
		{Type: TPeers, Epoch: 1 << 33, Peers: []string{""}},
		{Type: TPeers},
	}
}

// FuzzFrame feeds arbitrary payloads to the frame parser. The invariants:
// the parser never panics (truncation, overflow, forged counts — all must
// come back as ErrCorruptFrame), and any payload it accepts re-encodes to
// a stable canonical form (encode∘parse is idempotent at the byte level —
// byte comparison rather than struct comparison so NaN point coordinates,
// which compare unequal to themselves, cannot false-positive).
func FuzzFrame(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		f.Add(m.appendPayload(nil))
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := parsePayload(payload)
		if err != nil {
			return
		}
		re := m.appendPayload(nil)
		m2, err := parsePayload(re)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v\nmessage: %+v\nbytes: %x", err, m, re)
		}
		re2 := m2.appendPayload(nil)
		if !bytes.Equal(re, re2) {
			t.Fatalf("encode∘parse not idempotent:\n first: %x\nsecond: %x", re, re2)
		}
	})
}

// TestFrameTruncationIsCorrupt asserts that every strict prefix of every
// seed frame is rejected with ErrCorruptFrame — a torn frame can never
// silently parse as a shorter valid one, and never panics.
func TestFrameTruncationIsCorrupt(t *testing.T) {
	for _, m := range fuzzSeedMessages() {
		payload := m.appendPayload(nil)
		for i := 0; i < len(payload); i++ {
			got, err := parsePayload(payload[:i])
			if err != ErrCorruptFrame {
				t.Fatalf("%v frame truncated to %d/%d bytes: err = %v (parsed %+v), want ErrCorruptFrame",
					m.Type, i, len(payload), err, got)
			}
		}
		if _, err := parsePayload(payload); err != nil {
			t.Fatalf("full %v frame rejected: %v", m.Type, err)
		}
	}
}

// TestCompactFrameRoundTrip round-trips the varint frame family through
// the public Write/Read pair.
func TestCompactFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		{Type: TPing, Epoch: 7},
		{Type: TPong, Epoch: 7},
		{Type: TProbeC, Group: 123456, User: 3},
		{Type: TProbeReplyC, Group: 123456, User: 3, Loc: geom.Pt(0.31, 0.77)},
	}
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	// Heartbeats must be tiny: 4-byte length prefix + type + 1-byte seq.
	if buf.Len() > 4*16 {
		t.Fatalf("compact frames took %d bytes on the wire", buf.Len())
	}
	for _, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.Group != want.Group || got.User != want.User ||
			got.Epoch != want.Epoch || got.Loc != want.Loc {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}
