package proto

import (
	"bytes"
	"net"
	"testing"
	"time"

	"mpn/internal/core"
	"mpn/internal/geom"
)

// obsUpdate is one observer callback delivery.
type obsUpdate struct {
	meeting geom.Point
	regions map[uint32]core.SafeRegion
}

// testObserver wires an AsObserver client over a pipe to the coordinator.
type testObserver struct {
	client   *Client
	updates  chan obsUpdate
	runErr   chan error
	connSide net.Conn
}

func newTestObserver(t *testing.T, coord *Coordinator, group, user uint32) *testObserver {
	t.Helper()
	serverSide, clientSide := net.Pipe()
	go func() { _ = coord.ServeConn(serverSide) }()

	o := &testObserver{updates: make(chan obsUpdate, 16), runErr: make(chan error, 1), connSide: clientSide}
	cl, err := NewClient(clientSide, group, user,
		func() geom.Point { return geom.Point{} },
		nil,
		AsObserver(),
		WithGroupNotify(func(meeting geom.Point, regions map[uint32]core.SafeRegion) {
			o.updates <- obsUpdate{meeting: meeting, regions: regions}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	o.client = cl
	go func() { o.runErr <- cl.Run() }()
	t.Cleanup(func() { clientSide.Close() })
	return o
}

func (o *testObserver) waitUpdate(t *testing.T) obsUpdate {
	t.Helper()
	select {
	case u := <-o.updates:
		return u
	case err := <-o.runErr:
		t.Fatalf("observer stopped: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for observer update")
	}
	return obsUpdate{}
}

// sameRegion compares two safe regions by wire encoding (SafeRegion is
// not comparable — tile regions hold slices).
func sameRegion(a, b core.SafeRegion) bool {
	return bytes.Equal(EncodeRegion(a), EncodeRegion(b))
}

// TestObserverEndToEnd: an observer subscribed before the group forms
// receives the group's first plan — every member's region in one frame —
// and tracks subsequent replans; its retained state always converges to
// what the members themselves hold.
func TestObserverEndToEnd(t *testing.T) {
	coord := NewCoordinator(testPlan(t, "tile"), nil)

	obs := newTestObserver(t, coord, 1, 100)
	if err := obs.client.Register(2); err != nil {
		t.Fatal(err)
	}

	u1 := newTestUser(t, coord, 1, 0, geom.Pt(0.30, 0.30))
	u2 := newTestUser(t, coord, 1, 1, geom.Pt(0.35, 0.32))
	for i, u := range []*testUser{u1, u2} {
		if err := u.client.Register(2); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
	}
	m1 := u1.waitNotify(t)
	u2.waitNotify(t)

	first := obs.waitUpdate(t)
	if first.meeting != m1 {
		t.Fatalf("observer meeting %v, members got %v", first.meeting, m1)
	}
	if len(first.regions) != 2 {
		t.Fatalf("observer got %d regions, want 2", len(first.regions))
	}
	if !sameRegion(first.regions[0], u1.client.Region()) || !sameRegion(first.regions[1], u2.client.Region()) {
		t.Fatal("observer regions differ from members' own")
	}

	// A replan reaches the observer too, and its retained map converges
	// to the members' fresh regions.
	u1.setLoc(geom.Pt(0.70, 0.70))
	if err := u1.client.Report(); err != nil {
		t.Fatal(err)
	}
	u1.waitNotify(t)
	u2.waitNotify(t)

	deadline := time.After(5 * time.Second)
	for {
		r0, ok0 := obs.client.MemberRegion(0)
		r1, ok1 := obs.client.MemberRegion(1)
		if ok0 && ok1 && sameRegion(r0, u1.client.Region()) && sameRegion(r1, u2.client.Region()) {
			break
		}
		select {
		case <-deadline:
			t.Fatal("observer state never converged after replan")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if n := coord.Stats().ObserverFrames; n < 2 {
		t.Fatalf("ObserverFrames=%d, want >=2", n)
	}
}

// TestObserverLateSubscription: an observer that subscribes after the
// group distributed a plan is caught up immediately from the encoding
// cache — no replan, no member traffic.
func TestObserverLateSubscription(t *testing.T) {
	coord := NewCoordinator(testPlan(t, "circle"), nil)

	u1 := newTestUser(t, coord, 7, 0, geom.Pt(0.40, 0.40))
	u2 := newTestUser(t, coord, 7, 1, geom.Pt(0.45, 0.42))
	for _, u := range []*testUser{u1, u2} {
		if err := u.client.Register(2); err != nil {
			t.Fatal(err)
		}
	}
	u1.waitNotify(t)
	u2.waitNotify(t)

	obs := newTestObserver(t, coord, 7, 200)
	if err := obs.client.Register(2); err != nil {
		t.Fatal(err)
	}
	up := obs.waitUpdate(t)
	if up.meeting != u1.client.Meeting() {
		t.Fatalf("late observer meeting %v, members hold %v", up.meeting, u1.client.Meeting())
	}
	if len(up.regions) != 2 ||
		!sameRegion(up.regions[0], u1.client.Region()) ||
		!sameRegion(up.regions[1], u2.client.Region()) {
		t.Fatal("late observer catch-up does not match member state")
	}
}

// TestObserverTornDownWithGroup: when the last member leaves, the group
// dissolves and the observer's connection is closed by the server — an
// observer cannot outlive its group and silently watch a future group
// under a reused id.
func TestObserverTornDownWithGroup(t *testing.T) {
	coord := NewCoordinator(testPlan(t, "circle"), nil)

	obs := newTestObserver(t, coord, 3, 50)
	if err := obs.client.Register(1); err != nil {
		t.Fatal(err)
	}
	u1 := newTestUser(t, coord, 3, 0, geom.Pt(0.50, 0.50))
	if err := u1.client.Register(1); err != nil {
		t.Fatal(err)
	}
	u1.waitNotify(t)
	obs.waitUpdate(t)

	// The only member disconnects: group dissolves, observer gets kicked.
	u1.disconnect()
	select {
	case <-obs.runErr:
		// Run returned (EOF or closed pipe) — the server tore us down.
	case <-time.After(5 * time.Second):
		t.Fatal("observer connection survived group dissolution")
	}
	waitGroups(t, coord, 0)
}

// TestObserverOnlyGroupGC: an observer subscribed to a group whose
// members never arrive does not leak the group when it disconnects.
func TestObserverOnlyGroupGC(t *testing.T) {
	coord := NewCoordinator(testPlan(t, "circle"), nil)

	obs := newTestObserver(t, coord, 9, 1)
	if err := obs.client.Register(4); err != nil {
		t.Fatal(err)
	}
	waitGroups(t, coord, 1)
	obs.connSide.Close()
	waitGroups(t, coord, 0)
}

// TestObserverDuplicateIDRejected: a user id may not be both a member
// and an observer of the same group — disconnect routing would be
// ambiguous otherwise.
func TestObserverDuplicateIDRejected(t *testing.T) {
	coord := NewCoordinator(testPlan(t, "circle"), nil)

	u1 := newTestUser(t, coord, 4, 0, geom.Pt(0.40, 0.40))
	if err := u1.client.Register(2); err != nil {
		t.Fatal(err)
	}
	obs := newTestObserver(t, coord, 4, 0) // same uid as the member
	if err := obs.client.Register(2); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-obs.runErr:
		if err == nil {
			t.Fatal("duplicate-id observer registration not rejected")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no rejection for duplicate-id observer")
	}
}
