// Package proto implements the client/server protocol of the paper's
// system architecture (Fig. 3) as a transport-agnostic wire format plus a
// server-side coordinator and a client state machine.
//
// The three message exchanges of the paper map to these frame types:
//
//	Register    client → server   join a group with an initial location
//	Report      client → server   step 1: an escaping user reports
//	Probe       server → client   step 2a: the server asks the others
//	ProbeReply  client → server   step 2b: they answer
//	Notify      server → client   step 3: meeting point + safe region
//	NotifyDelta server → client   step 3, delta form: only changed regions
//	Nack        client → server   a delta could not be applied; send full
//	Ping/Pong   either direction  liveness heartbeat (compact varint layout)
//
// The probe round also has a compact all-varint form (TProbeC and
// TProbeReplyC, negotiated via FlagCompactProbe) that drops the classic
// 58-byte fixed header — a probe is 4–6 bytes on the wire.
//
// Frames are length-prefixed little-endian binary; safe regions travel in
// the mpn region encoding (25-byte circles — one tag byte plus three
// float64 values — and varint-compressed tile grids).
//
// # Delta notifications
//
// A client that sets FlagDeltaCapable on its Register frame opts into
// TNotifyDelta: a compact frame (varint header, ~10 bytes on the wire
// when nothing changed) that carries only the regions whose epoch
// advanced since the server last delivered to that client, each as a
// (member id, epoch, encoded region) record. Regions are state, not
// diffs-of-diffs — every record carries the member's complete encoded
// region — so a single delta frame always repairs an arbitrary epoch
// gap. The frame's Epoch field is the recipient's own-region epoch after
// the update; a client holding a different epoch and receiving no record
// for itself answers with TNack, and the server repairs it with a full
// TNotify. Full TNotify frames also carry the recipient's epoch so the
// client can resynchronize its tracking.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"mpn/internal/geom"
)

// MsgType identifies a frame.
type MsgType uint8

// Frame types. TRegister through TNack use the classic fixed-header
// layout (TNotifyDelta excepted); TPing and up use compact all-varint
// layouts (see appendCompactPayload).
const (
	TRegister MsgType = iota + 1
	TReport
	TProbe
	TProbeReply
	TNotify
	TError
	TNotifyDelta
	TNack
	// TPing and TPong are the heartbeat: either peer may send TPing
	// (Epoch carries an opaque sequence number) and the other answers
	// TPong echoing it. Three payload bytes in the steady state.
	TPing
	TPong
	// TProbeC and TProbeReplyC are the compact probe round — the same
	// exchange as TProbe/TProbeReply without the 58-byte classic header,
	// negotiated via FlagCompactProbe on Register. A probe is typically
	// 4–6 payload bytes; the reply adds the 16-byte location.
	TProbeC
	TProbeReplyC
	// TPeers is a server→client peer advertisement: the cluster's current
	// client-facing addresses (primary first) stamped with the fencing
	// epoch that published them. The server pushes one after a successful
	// registration and alongside every write refusal on a non-primary
	// node, so a failover-capable client always knows where to dial next.
	// Epoch carries the fencing epoch; Peers the addresses. Clients adopt
	// an advertisement only when its epoch is not older than the last one
	// adopted, so a delayed frame from a deposed primary cannot point
	// them back at a dead node.
	TPeers
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case TRegister:
		return "register"
	case TReport:
		return "report"
	case TProbe:
		return "probe"
	case TProbeReply:
		return "probe-reply"
	case TNotify:
		return "notify"
	case TError:
		return "error"
	case TNotifyDelta:
		return "notify-delta"
	case TNack:
		return "nack"
	case TPing:
		return "ping"
	case TPong:
		return "pong"
	case TProbeC:
		return "probe-compact"
	case TProbeReplyC:
		return "probe-reply-compact"
	case TPeers:
		return "peers"
	default:
		return fmt.Sprintf("msgtype(%d)", uint8(t))
	}
}

// FlagDeltaCapable, set on a Register frame, announces that the client
// understands TNotifyDelta frames. The server only sends deltas to
// members that negotiated them (and only when its own delta mode is on),
// so a client that opts out — or never sets the flag — receives full
// TNotify frames forever. Note the negotiation is within this wire
// version: the classic frame layout itself changed when the Flags and
// Epoch fields were added (fixed header 49 → 58 bytes), so peers from
// before that change cannot interoperate regardless of the flag.
const FlagDeltaCapable uint8 = 1 << 0

// FlagCompactProbe, set on a Register frame, announces that the client
// understands the compact probe round (TProbeC/TProbeReplyC). The server
// probes such a member compactly and the client answers in kind; a
// member without the flag keeps the classic TProbe/TProbeReply exchange,
// so old clients interoperate with new servers and vice versa.
const FlagCompactProbe uint8 = 1 << 1

// FlagObserver, set on a Register frame, subscribes the connection to a
// group's notifications WITHOUT joining it: an observer does not count
// toward the group size, is never probed, and never reports. Whenever
// the group's members are notified of a fresh plan, each observer
// receives one TNotifyDelta frame whose Deltas carry every member's
// complete encoded region that changed since the observer's last
// delivery (all of them after subscription, a drop, or a membership
// change). Observer frames always use the delta layout regardless of
// FlagDeltaCapable, and their Epoch field is zero — an observer has no
// own-region epoch. Observers are torn down with the group when its
// last member leaves.
const FlagObserver uint8 = 1 << 2

// deltaMeeting marks a TNotifyDelta frame that carries a meeting point
// (it changed since the last delivery to this client).
const deltaMeeting uint8 = 1 << 0

// deltaReset marks a TNotifyDelta frame as complete state: the recipient
// must discard every retained member region before applying the frame's
// records. The coordinator sets it on full observer deliveries —
// subscription catch-up, drop repair, membership change — so an observer
// never keeps a region of a member that left the group.
const deltaReset uint8 = 1 << 1

// MaxFrame bounds a frame's payload, protecting the reader from corrupt
// length prefixes. Tile regions are a few hundred bytes; 1 MiB is
// generous.
const MaxFrame = 1 << 20

// RegionDelta is one changed-region record of a TNotifyDelta frame: the
// member's complete encoded region stamped with its fresh epoch.
type RegionDelta struct {
	Member uint32
	Epoch  uint64
	Region []byte
}

// Message is one protocol frame. Fields are used according to Type:
// Register carries Group/User/GroupSize/Flags/Loc; Report and ProbeReply
// carry Group/User/Loc; Probe carries Group/User; Notify carries
// Group/User/Meeting/Epoch/Region; NotifyDelta carries
// Group/User/Epoch/Deltas (and Meeting when MeetingChanged); Nack
// carries Group/User/Epoch; Error carries Text; Ping and Pong carry a
// heartbeat sequence number in Epoch; ProbeC carries Group/User and
// ProbeReplyC carries Group/User/Loc; Peers carries Epoch (the fencing
// epoch) and Peers (the cluster's client-facing addresses).
type Message struct {
	Type      MsgType
	Group     uint32
	User      uint32
	GroupSize uint32
	Flags     uint8
	Epoch     uint64
	Loc       geom.Point
	Meeting   geom.Point
	Region    []byte
	Text      string

	// MeetingChanged, DeltaReset and Deltas belong to TNotifyDelta
	// frames: the meeting point is serialized only when it changed,
	// DeltaReset marks a complete-state (observer repair) frame, and
	// Deltas holds the changed-region records.
	MeetingChanged bool
	DeltaReset     bool
	Deltas         []RegionDelta

	// Peers belongs to TPeers frames: the cluster's client-facing
	// addresses, primary first (Epoch carries the fencing epoch that
	// published them).
	Peers []string
}

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("proto: frame exceeds MaxFrame")
	ErrCorruptFrame  = errors.New("proto: corrupt frame")
)

// appendPayload serializes m into buf and returns the extended slice
// (without the length prefix).
func (m Message) appendPayload(buf []byte) []byte {
	if m.Type == TNotifyDelta {
		return m.appendDeltaPayload(buf)
	}
	if m.Type >= TPing {
		return m.appendCompactPayload(buf)
	}
	buf = append(buf, byte(m.Type))
	buf = binary.LittleEndian.AppendUint32(buf, m.Group)
	buf = binary.LittleEndian.AppendUint32(buf, m.User)
	buf = binary.LittleEndian.AppendUint32(buf, m.GroupSize)
	buf = append(buf, m.Flags)
	buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
	buf = appendPoint(buf, m.Loc)
	buf = appendPoint(buf, m.Meeting)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Region)))
	buf = append(buf, m.Region...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Text)))
	buf = append(buf, m.Text...)
	return buf
}

// appendDeltaPayload is the compact TNotifyDelta layout. Everything that
// can be a varint is one: the steady-state frame — nothing changed — is
// about six payload bytes, versus the ~58-byte fixed header of a classic
// frame before any region bytes.
func (m Message) appendDeltaPayload(buf []byte) []byte {
	buf = append(buf, byte(TNotifyDelta))
	buf = binary.AppendUvarint(buf, uint64(m.Group))
	buf = binary.AppendUvarint(buf, uint64(m.User))
	fl := uint8(0)
	if m.MeetingChanged {
		fl |= deltaMeeting
	}
	if m.DeltaReset {
		fl |= deltaReset
	}
	buf = append(buf, fl)
	buf = binary.AppendUvarint(buf, m.Epoch)
	if m.MeetingChanged {
		buf = appendPoint(buf, m.Meeting)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Deltas)))
	for _, d := range m.Deltas {
		buf = binary.AppendUvarint(buf, uint64(d.Member))
		buf = binary.AppendUvarint(buf, d.Epoch)
		buf = binary.AppendUvarint(buf, uint64(len(d.Region)))
		buf = append(buf, d.Region...)
	}
	return buf
}

// appendCompactPayload serializes the all-varint frame family (TPing and
// up): heartbeats are type + uvarint sequence, compact probes are type +
// uvarint group + uvarint user (+ the 16-byte location on the reply),
// peer advertisements are type + uvarint epoch + uvarint count +
// length-prefixed addresses.
func (m Message) appendCompactPayload(buf []byte) []byte {
	buf = append(buf, byte(m.Type))
	switch m.Type {
	case TPing, TPong:
		buf = binary.AppendUvarint(buf, m.Epoch)
	case TProbeC, TProbeReplyC:
		buf = binary.AppendUvarint(buf, uint64(m.Group))
		buf = binary.AppendUvarint(buf, uint64(m.User))
		if m.Type == TProbeReplyC {
			buf = appendPoint(buf, m.Loc)
		}
	case TPeers:
		buf = binary.AppendUvarint(buf, m.Epoch)
		buf = binary.AppendUvarint(buf, uint64(len(m.Peers)))
		for _, a := range m.Peers {
			buf = binary.AppendUvarint(buf, uint64(len(a)))
			buf = append(buf, a...)
		}
	}
	return buf
}

func appendPoint(buf []byte, p geom.Point) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.X))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Y))
}

// AppendFrame serializes m — length prefix included — into buf and
// returns the extended slice. It is Write without the io round trip, for
// callers that batch frames or account wire bytes.
func (m Message) AppendFrame(buf []byte) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = m.appendPayload(buf)
	n := len(buf) - start - 4
	if n > MaxFrame {
		return buf[:start], ErrFrameTooLarge
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(n))
	return buf, nil
}

// Write frames and writes m.
func Write(w io.Writer, m Message) error {
	frame, err := m.AppendFrame(make([]byte, 0, 80+len(m.Region)+len(m.Text)))
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// Read reads one framed message.
func Read(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Message{}, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Message{}, err
	}
	return parsePayload(payload)
}

func parsePayload(p []byte) (Message, error) {
	if len(p) == 0 {
		return Message{}, ErrCorruptFrame
	}
	if MsgType(p[0]) == TNotifyDelta {
		return parseDeltaPayload(p)
	}
	if MsgType(p[0]) >= TPing {
		return parseCompactPayload(p)
	}
	// Fixed part: type(1) + group(4) + user(4) + size(4) + flags(1) +
	// epoch(8) + 2 points(32) + region len(4).
	const fixed = 1 + 4 + 4 + 4 + 1 + 8 + 32 + 4
	if len(p) < fixed {
		return Message{}, ErrCorruptFrame
	}
	var m Message
	m.Type = MsgType(p[0])
	if m.Type < TRegister || m.Type > TNack {
		return Message{}, ErrCorruptFrame
	}
	m.Group = binary.LittleEndian.Uint32(p[1:])
	m.User = binary.LittleEndian.Uint32(p[5:])
	m.GroupSize = binary.LittleEndian.Uint32(p[9:])
	m.Flags = p[13]
	m.Epoch = binary.LittleEndian.Uint64(p[14:])
	m.Loc = readPoint(p[22:])
	m.Meeting = readPoint(p[38:])
	regionLen := binary.LittleEndian.Uint32(p[54:])
	rest := p[58:]
	if uint64(len(rest)) < uint64(regionLen)+4 {
		return Message{}, ErrCorruptFrame
	}
	if regionLen > 0 {
		m.Region = append([]byte(nil), rest[:regionLen]...)
	}
	rest = rest[regionLen:]
	textLen := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if uint32(len(rest)) != textLen {
		return Message{}, ErrCorruptFrame
	}
	if textLen > 0 {
		m.Text = string(rest)
	}
	return m, nil
}

// parseDeltaPayload decodes the compact TNotifyDelta layout with the
// same defensiveness as the fixed layout: any truncation, overflow, or
// trailing garbage is ErrCorruptFrame, never a panic.
func parseDeltaPayload(p []byte) (Message, error) {
	m := Message{Type: TNotifyDelta}
	rest := p[1:]
	u32 := func() (uint32, bool) {
		v, n := binary.Uvarint(rest)
		if n <= 0 || v > math.MaxUint32 {
			return 0, false
		}
		rest = rest[n:]
		return uint32(v), true
	}
	u64 := func() (uint64, bool) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, false
		}
		rest = rest[n:]
		return v, true
	}
	var ok bool
	if m.Group, ok = u32(); !ok {
		return m, ErrCorruptFrame
	}
	if m.User, ok = u32(); !ok {
		return m, ErrCorruptFrame
	}
	if len(rest) < 1 {
		return m, ErrCorruptFrame
	}
	fl := rest[0]
	rest = rest[1:]
	if fl&^(deltaMeeting|deltaReset) != 0 {
		return m, ErrCorruptFrame
	}
	m.DeltaReset = fl&deltaReset != 0
	if m.Epoch, ok = u64(); !ok {
		return m, ErrCorruptFrame
	}
	if fl&deltaMeeting != 0 {
		if len(rest) < 16 {
			return m, ErrCorruptFrame
		}
		m.MeetingChanged = true
		m.Meeting = readPoint(rest)
		rest = rest[16:]
	}
	count, ok := u64()
	if !ok || count > uint64(len(rest))/3 {
		// Each record needs at least 3 varint bytes; a count beyond what
		// the remaining payload could possibly hold is corruption, not a
		// huge frame — and it must be rejected BEFORE sizing the slice,
		// or a small corrupt frame could demand a ~40× larger
		// preallocation (RegionDelta headers) than its own bytes.
		return m, ErrCorruptFrame
	}
	if count > 0 {
		// Cap the preallocation: real frames carry at most a group's
		// worth of records, and append will grow the rare larger (still
		// payload-backed) frame without handing a forged count a 40×
		// memory amplification.
		m.Deltas = make([]RegionDelta, 0, int(min(count, 64)))
	}
	for i := uint64(0); i < count; i++ {
		var d RegionDelta
		if d.Member, ok = u32(); !ok {
			return m, ErrCorruptFrame
		}
		if d.Epoch, ok = u64(); !ok {
			return m, ErrCorruptFrame
		}
		rl, ok := u64()
		if !ok || rl > uint64(len(rest)) {
			return m, ErrCorruptFrame
		}
		if rl > 0 {
			d.Region = append([]byte(nil), rest[:rl]...)
			rest = rest[rl:]
		}
		m.Deltas = append(m.Deltas, d)
	}
	if len(rest) != 0 {
		return m, ErrCorruptFrame
	}
	return m, nil
}

// parseCompactPayload decodes the all-varint frame family (TPing and
// up) with the codec's usual defensiveness: unknown types, truncation,
// overflow, and trailing garbage are all ErrCorruptFrame, never a panic.
func parseCompactPayload(p []byte) (Message, error) {
	m := Message{Type: MsgType(p[0])}
	rest := p[1:]
	u32 := func() (uint32, bool) {
		v, n := binary.Uvarint(rest)
		if n <= 0 || v > math.MaxUint32 {
			return 0, false
		}
		rest = rest[n:]
		return uint32(v), true
	}
	var ok bool
	switch m.Type {
	case TPing, TPong:
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return m, ErrCorruptFrame
		}
		m.Epoch = v
		rest = rest[n:]
	case TProbeC, TProbeReplyC:
		if m.Group, ok = u32(); !ok {
			return m, ErrCorruptFrame
		}
		if m.User, ok = u32(); !ok {
			return m, ErrCorruptFrame
		}
		if m.Type == TProbeReplyC {
			if len(rest) < 16 {
				return m, ErrCorruptFrame
			}
			m.Loc = readPoint(rest)
			rest = rest[16:]
		}
	case TPeers:
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return m, ErrCorruptFrame
		}
		m.Epoch = v
		rest = rest[n:]
		count, n := binary.Uvarint(rest)
		if n <= 0 {
			return m, ErrCorruptFrame
		}
		rest = rest[n:]
		if count > uint64(len(rest)) {
			// Every address needs at least its one-byte length prefix; a
			// count beyond the remaining payload is corruption and must be
			// rejected BEFORE sizing the slice (same forged-count hazard
			// as parseDeltaPayload).
			return m, ErrCorruptFrame
		}
		if count > 0 {
			m.Peers = make([]string, 0, int(min(count, 16)))
		}
		for i := uint64(0); i < count; i++ {
			l, n := binary.Uvarint(rest)
			if n <= 0 || l > uint64(len(rest)-n) {
				return m, ErrCorruptFrame
			}
			rest = rest[n:]
			m.Peers = append(m.Peers, string(rest[:l]))
			rest = rest[l:]
		}
	default:
		return m, ErrCorruptFrame
	}
	if len(rest) != 0 {
		return m, ErrCorruptFrame
	}
	return m, nil
}

func readPoint(p []byte) geom.Point {
	return geom.Pt(
		math.Float64frombits(binary.LittleEndian.Uint64(p[0:8])),
		math.Float64frombits(binary.LittleEndian.Uint64(p[8:16])),
	)
}
