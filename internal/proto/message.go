// Package proto implements the client/server protocol of the paper's
// system architecture (Fig. 3) as a transport-agnostic wire format plus a
// server-side coordinator and a client state machine.
//
// The three message exchanges of the paper map to five frame types:
//
//	Register    client → server   join a group with an initial location
//	Report      client → server   step 1: an escaping user reports
//	Probe       server → client   step 2a: the server asks the others
//	ProbeReply  client → server   step 2b: they answer
//	Notify      server → client   step 3: meeting point + safe region
//
// Frames are length-prefixed little-endian binary; safe regions travel in
// the mpn region encoding (24-byte circles, varint-compressed tile grids).
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"mpn/internal/geom"
)

// MsgType identifies a frame.
type MsgType uint8

// Frame types.
const (
	TRegister MsgType = iota + 1
	TReport
	TProbe
	TProbeReply
	TNotify
	TError
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case TRegister:
		return "register"
	case TReport:
		return "report"
	case TProbe:
		return "probe"
	case TProbeReply:
		return "probe-reply"
	case TNotify:
		return "notify"
	case TError:
		return "error"
	default:
		return fmt.Sprintf("msgtype(%d)", uint8(t))
	}
}

// MaxFrame bounds a frame's payload, protecting the reader from corrupt
// length prefixes. Tile regions are a few hundred bytes; 1 MiB is
// generous.
const MaxFrame = 1 << 20

// Message is one protocol frame. Fields are used according to Type:
// Register carries Group/User/GroupSize/Loc; Report and ProbeReply carry
// Group/User/Loc; Probe carries Group/User; Notify carries
// Group/User/Meeting/Region; Error carries Text.
type Message struct {
	Type      MsgType
	Group     uint32
	User      uint32
	GroupSize uint32
	Loc       geom.Point
	Meeting   geom.Point
	Region    []byte
	Text      string
}

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("proto: frame exceeds MaxFrame")
	ErrCorruptFrame  = errors.New("proto: corrupt frame")
)

// Append serializes m into buf and returns the extended slice (without the
// length prefix).
func (m Message) appendPayload(buf []byte) []byte {
	buf = append(buf, byte(m.Type))
	buf = binary.LittleEndian.AppendUint32(buf, m.Group)
	buf = binary.LittleEndian.AppendUint32(buf, m.User)
	buf = binary.LittleEndian.AppendUint32(buf, m.GroupSize)
	buf = appendPoint(buf, m.Loc)
	buf = appendPoint(buf, m.Meeting)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Region)))
	buf = append(buf, m.Region...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Text)))
	buf = append(buf, m.Text...)
	return buf
}

func appendPoint(buf []byte, p geom.Point) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.X))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Y))
}

// Write frames and writes m.
func Write(w io.Writer, m Message) error {
	payload := m.appendPayload(make([]byte, 0, 64+len(m.Region)+len(m.Text)))
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Read reads one framed message.
func Read(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Message{}, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Message{}, err
	}
	return parsePayload(payload)
}

func parsePayload(p []byte) (Message, error) {
	// Fixed part: type(1) + group(4) + user(4) + size(4) + 2 points(32) +
	// region len(4).
	const fixed = 1 + 4 + 4 + 4 + 32 + 4
	if len(p) < fixed {
		return Message{}, ErrCorruptFrame
	}
	var m Message
	m.Type = MsgType(p[0])
	if m.Type < TRegister || m.Type > TError {
		return Message{}, ErrCorruptFrame
	}
	m.Group = binary.LittleEndian.Uint32(p[1:])
	m.User = binary.LittleEndian.Uint32(p[5:])
	m.GroupSize = binary.LittleEndian.Uint32(p[9:])
	m.Loc = readPoint(p[13:])
	m.Meeting = readPoint(p[29:])
	regionLen := binary.LittleEndian.Uint32(p[45:])
	rest := p[49:]
	if uint32(len(rest)) < regionLen+4 {
		return Message{}, ErrCorruptFrame
	}
	if regionLen > 0 {
		m.Region = append([]byte(nil), rest[:regionLen]...)
	}
	rest = rest[regionLen:]
	textLen := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if uint32(len(rest)) != textLen {
		return Message{}, ErrCorruptFrame
	}
	if textLen > 0 {
		m.Text = string(rest)
	}
	return m, nil
}

func readPoint(p []byte) geom.Point {
	return geom.Pt(
		math.Float64frombits(binary.LittleEndian.Uint64(p[0:8])),
		math.Float64frombits(binary.LittleEndian.Uint64(p[8:16])),
	)
}
