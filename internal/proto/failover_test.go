package proto

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"mpn/internal/core"
	"mpn/internal/geom"
)

// --- TPeers codec ------------------------------------------------------------

// The peer-advertisement frame round-trips through the public Write/Read
// pair, and a forged count beyond the remaining payload is rejected
// before any allocation keyed to it.
func TestPeersFrameCodec(t *testing.T) {
	var buf bytes.Buffer
	want := Message{Type: TPeers, Epoch: 42, Peers: []string{"primary:9000", "standby-a:9001", ""}}
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TPeers || got.Epoch != want.Epoch || len(got.Peers) != len(want.Peers) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range want.Peers {
		if got.Peers[i] != want.Peers[i] {
			t.Fatalf("peer %d: %q want %q", i, got.Peers[i], want.Peers[i])
		}
	}

	// Forged count: type + epoch 0 + count 200 with no address bytes.
	if _, err := parsePayload([]byte{byte(TPeers), 0, 200, 1}); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("forged count: %v want ErrCorruptFrame", err)
	}
	// Forged address length overrunning the payload.
	if _, err := parsePayload([]byte{byte(TPeers), 0, 1, 50, 'x'}); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("forged addr length: %v want ErrCorruptFrame", err)
	}
	// Trailing garbage after a well-formed list.
	good := Message{Type: TPeers, Epoch: 1, Peers: []string{"a"}}.appendPayload(nil)
	if _, err := parsePayload(append(good, 0)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("trailing garbage: %v want ErrCorruptFrame", err)
	}
}

// --- write gate --------------------------------------------------------------

// A gated-off coordinator must refuse a registration with a peer
// redirect followed by an error — the zero-downtime failover handshake a
// client sees when it dials a standby.
func TestWriteGateRefusesRegistration(t *testing.T) {
	coord := NewCoordinator(testPlan(t, "circle"), nil)
	refusal := errors.New("standby: writes go to the primary")
	coord.SetWriteGate(func() ([]string, uint64, error) {
		return []string{"primary:9000"}, 7, refusal
	})
	serverSide, clientSide := net.Pipe()
	defer clientSide.Close()
	go func() { _ = coord.ServeConn(serverSide) }()

	if err := Write(clientSide, Message{Type: TRegister, Group: 1, User: 0, GroupSize: 1}); err != nil {
		t.Fatal(err)
	}
	peers, err := Read(clientSide)
	if err != nil {
		t.Fatal(err)
	}
	if peers.Type != TPeers || peers.Epoch != 7 || len(peers.Peers) != 1 || peers.Peers[0] != "primary:9000" {
		t.Fatalf("want peer redirect, got %+v", peers)
	}
	errMsg, err := Read(clientSide)
	if err != nil {
		t.Fatal(err)
	}
	if errMsg.Type != TError {
		t.Fatalf("want TError after redirect, got %+v", errMsg)
	}
	if got := coord.Stats().WriteRefusals; got != 1 {
		t.Fatalf("WriteRefusals=%d want 1", got)
	}
	if coord.NumGroups() != 0 {
		t.Fatal("refused registration created a group")
	}
}

// A member registered while the node was primary must have its next
// report refused — through its outbox, with the redirect first — after
// the gate closes (the node was deposed mid-session).
func TestWriteGateRefusesReportAfterDeposal(t *testing.T) {
	coord := NewCoordinator(testPlan(t, "circle"), nil)
	var deposed atomic.Bool
	coord.SetWriteGate(func() ([]string, uint64, error) {
		if deposed.Load() {
			return []string{"new-primary:9000"}, 9, errors.New("fenced: a newer primary exists")
		}
		return []string{"self:9000"}, 1, nil
	})
	serverSide, clientSide := net.Pipe()
	defer clientSide.Close()
	go func() { _ = coord.ServeConn(serverSide) }()

	cl, err := NewClient(clientSide, 1, 0, func() geom.Point { return geom.Pt(0.25, 0.25) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	var gotEpoch atomic.Uint64
	WithPeerUpdate(func(epoch uint64, peers []string) { gotEpoch.Store(epoch) })(cl)
	if err := cl.Register(1); err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- cl.Run() }()

	// The registration-time push advertises the primary's own peer list.
	deadline := time.Now().Add(5 * time.Second)
	for gotEpoch.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("registration peer push never arrived")
		}
		time.Sleep(time.Millisecond)
	}

	deposed.Store(true)
	if err := cl.Report(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err == nil || err.Error() != "proto: server error: fenced: a newer primary exists" {
			t.Fatalf("session ended with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("refused report never ended the session")
	}
	if gotEpoch.Load() != 9 {
		t.Fatalf("refusal peer epoch %d want 9", gotEpoch.Load())
	}
	if got := coord.Stats().WriteRefusals; got != 1 {
		t.Fatalf("WriteRefusals=%d want 1", got)
	}
}

// --- multi-address reconnect -------------------------------------------------

// A multi-address client pointed at a dead first server must walk the
// ring to the live one and re-register there; the deterministic planner
// proves the recovered plan matches.
func TestReconnectClientAddrsFailover(t *testing.T) {
	a := &restartableServer{t: t, plan: testPlan(t, "circle")}
	b := &restartableServer{t: t, plan: testPlan(t, "circle")}
	a.start()
	b.start()
	defer a.kill()
	defer b.kill()

	notifyCh := make(chan geom.Point, 64)
	rc, err := NewReconnectClientAddrs(
		func(addr string) (io.ReadWriteCloser, error) { return net.Dial("tcp", addr) },
		[]string{a.addr(), b.addr()},
		1, 0, 1,
		func() geom.Point { return geom.Pt(0.25, 0.25) },
		func(meeting geom.Point, _ core.SafeRegion) { notifyCh <- meeting },
		Backoff{Min: 5 * time.Millisecond, Max: 50 * time.Millisecond, Seed: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	rc.Start()
	defer rc.Stop()

	waitNotify := func(what string) geom.Point {
		select {
		case p := <-notifyCh:
			return p
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
			return geom.Point{}
		}
	}
	first := waitNotify("plan from server A")

	// Kill A: the client must rotate to B and resume.
	a.kill()
	second := waitNotify("plan from server B")
	if second != first {
		t.Fatalf("failover plan diverged: %v vs %v", second, first)
	}
	if rc.Reconnects() == 0 {
		t.Fatal("reconnects counter never moved")
	}
}

// A server-pushed peer advertisement replaces the client's address book
// (fresh epochs only), steering the next reconnect at the advertised
// node even though it was never configured.
func TestReconnectClientAdoptsPeers(t *testing.T) {
	target := &restartableServer{t: t, plan: testPlan(t, "circle")}
	target.start()
	defer target.kill()

	// The first server advertises the target as the cluster's address.
	first := &restartableServer{t: t, plan: testPlan(t, "circle")}
	first.gate = func() ([]string, uint64, error) {
		return []string{target.addr()}, 5, nil
	}
	first.start()
	defer first.kill()

	notifyCh := make(chan geom.Point, 64)
	rc, err := NewReconnectClientAddrs(
		func(addr string) (io.ReadWriteCloser, error) { return net.Dial("tcp", addr) },
		[]string{first.addr()},
		1, 0, 1,
		func() geom.Point { return geom.Pt(0.25, 0.25) },
		func(meeting geom.Point, _ core.SafeRegion) { notifyCh <- meeting },
		Backoff{Min: 5 * time.Millisecond, Max: 50 * time.Millisecond, Seed: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	rc.Start()
	defer rc.Stop()

	select {
	case <-notifyCh:
	case <-time.After(10 * time.Second):
		t.Fatal("no plan from the first server")
	}
	deadline := time.Now().Add(5 * time.Second)
	for rc.PeerEpoch() != 5 {
		if time.Now().After(deadline) {
			t.Fatalf("peer advertisement never adopted (epoch %d)", rc.PeerEpoch())
		}
		time.Sleep(time.Millisecond)
	}
	if addrs := rc.Addrs(); len(addrs) != 1 || addrs[0] != target.addr() {
		t.Fatalf("address book %v, want [%s]", addrs, target.addr())
	}

	// A stale advertisement (older epoch) must be ignored.
	rc.adoptPeers(3, []string{"dead-primary:1"})
	if addrs := rc.Addrs(); addrs[0] != target.addr() {
		t.Fatalf("stale advertisement adopted: %v", addrs)
	}

	// Kill the configured server: the client follows the adoption to the
	// target, which was never in its configured list.
	first.kill()
	select {
	case <-notifyCh:
	case <-time.After(10 * time.Second):
		t.Fatal("client never reached the advertised server")
	}
	ok := false
	for wait := time.Now().Add(5 * time.Second); time.Now().Before(wait); time.Sleep(time.Millisecond) {
		if rc.Connected() {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatal("Connected never recovered on the advertised server")
	}
}

// An observer ReconnectClient must re-subscribe after a failover and
// keep serving the retained group view during the gap.
func TestReconnectObserverSurvivesRestart(t *testing.T) {
	srv := &restartableServer{t: t, plan: testPlan(t, "circle")}
	srv.start()
	defer srv.kill()

	member, err := NewReconnectClient(
		func() (io.ReadWriteCloser, error) { return net.Dial("tcp", srv.addr()) },
		1, 0, 1,
		func() geom.Point { return geom.Pt(0.25, 0.25) }, nil,
		Backoff{Min: 5 * time.Millisecond, Max: 50 * time.Millisecond, Seed: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	member.Start()
	defer member.Stop()

	groupFrames := make(chan int, 64)
	obs, err := NewReconnectClient(
		func() (io.ReadWriteCloser, error) { return net.Dial("tcp", srv.addr()) },
		1, 100, 1,
		func() geom.Point { return geom.Point{} }, nil,
		Backoff{Min: 5 * time.Millisecond, Max: 50 * time.Millisecond, Seed: 2},
		AsObserver(),
		WithGroupNotify(func(_ geom.Point, regions map[uint32]core.SafeRegion) {
			groupFrames <- len(regions)
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	obs.Start()
	defer obs.Stop()

	waitGroup := func(what string) {
		select {
		case n := <-groupFrames:
			if n != 1 {
				t.Fatalf("%s: observer saw %d regions, want 1", what, n)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
		}
	}
	waitGroup("initial observer frame")
	if got := obs.GroupRegions(); len(got) != 1 {
		t.Fatalf("retained group view has %d regions", len(got))
	}

	srv.kill()
	deadline := time.Now().Add(5 * time.Second)
	for obs.Connected() {
		if time.Now().After(deadline) {
			t.Fatal("observer never noticed the dead server")
		}
		time.Sleep(time.Millisecond)
	}
	// The retained view answers during the outage.
	if got := obs.GroupRegions(); len(got) != 1 {
		t.Fatalf("retained group view lost during outage (%d regions)", len(got))
	}

	// After the restart both sessions re-register: the member re-forms
	// the group, and the observer's re-subscription is caught up with a
	// complete frame.
	srv.start()
	waitGroup("post-restart observer frame")
}
